// Package dohcost reproduces "An Empirical Study of the Cost of
// DNS-over-HTTPS" (Boettger et al., IMC '19) as a runnable Go system: every
// DNS transport the paper compares (UDP, TCP, DNS-over-TLS, DNS-over-HTTPS
// on HTTP/1.1 and HTTP/2), the resolver deployments they talked to, a
// simulated network to carry it all hermetically, and one experiment runner
// per table and figure in the paper.
//
// This package is the facade: it wires the substrate packages together for
// the common workflows. Construct an Environment (a simulated client +
// local/Cloudflare-like/Google-like resolver topology), obtain Resolvers
// over any transport, exchange queries, and run the paper's experiments.
//
//	env, err := dohcost.NewEnvironment(dohcost.EnvironmentConfig{Seed: 1})
//	defer env.Close()
//	r, err := env.DoH(dohcost.Cloudflare, dohcost.Options{Persistent: true})
//	resp, err := r.Exchange(ctx, dohcost.NewQuery("example.com", dohcost.TypeA))
//
// The experiment entry points mirror the paper's artefacts: RunFigure1,
// RunTables (Tables 1–2), RunFigure2 (head-of-line blocking), RunOverhead
// (Figures 3–5), and RunFigure6 (page-load study). Each returns a result
// with a Render function producing the rows the paper reports.
package dohcost

import (
	"context"
	"fmt"
	"net"

	"dohcost/internal/core"
	"dohcost/internal/dialer"
	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/loadgen"
	"dohcost/internal/netsim"
	"dohcost/internal/proxy"
	"dohcost/internal/qtrace"
	"dohcost/internal/steer"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
)

// Re-exported fundamental types. The facade aliases rather than wraps so
// the full substrate capability stays reachable.
type (
	// Resolver is a DNS client over some transport.
	Resolver = dnstransport.Resolver
	// Cost is the measured wire cost of one exchange.
	Cost = dnstransport.Cost
	// CostRecorder receives per-exchange costs.
	CostRecorder = dnstransport.CostRecorder
	// CostFunc adapts a function to CostRecorder.
	CostFunc = dnstransport.CostFunc
	// Message is a DNS message in unpacked form.
	Message = dnswire.Message
	// Name is a domain name in presentation form.
	Name = dnswire.Name
	// Type is a DNS RR type.
	Type = dnswire.Type
)

// Common query types.
const (
	TypeA     = dnswire.TypeA
	TypeAAAA  = dnswire.TypeAAAA
	TypeCNAME = dnswire.TypeCNAME
	TypeTXT   = dnswire.TypeTXT
	TypeCAA   = dnswire.TypeCAA
)

// ResolverHost identifies one of the environment's resolver deployments.
type ResolverHost string

// The environment's resolvers: the university-local resolver and the two
// cloud deployments with Cloudflare-like and Google-like certificates.
const (
	Local      ResolverHost = core.LocalHost
	Cloudflare ResolverHost = core.CFHost
	Google     ResolverHost = core.GOHost
)

// Options tunes a resolver handle.
type Options struct {
	// Persistent keeps connections across exchanges (stream transports).
	Persistent bool
	// HTTP1 selects pipelined HTTP/1.1 instead of HTTP/2 for DoH.
	HTTP1 bool
	// Recorder receives per-exchange wire costs when set.
	Recorder CostRecorder
}

// EnvironmentConfig configures the simulated study network.
type EnvironmentConfig = core.TopologyConfig

// Environment is the standard study topology, ready to hand out resolvers.
type Environment struct {
	topo        *core.Topology
	proxies     []*proxy.Proxy
	proxyChains []proxyChain
}

// proxyChain records the certificate material of a started proxy.
type proxyChain struct {
	host  string
	chain *tlsx.Chain
}

// NewEnvironment builds and starts the simulated network.
func NewEnvironment(cfg EnvironmentConfig) (*Environment, error) {
	topo, err := core.NewTopology(cfg)
	if err != nil {
		return nil, err
	}
	return &Environment{topo: topo}, nil
}

// Close stops all deployments, including any started proxies.
func (e *Environment) Close() {
	for _, p := range e.proxies {
		p.Close()
	}
	e.proxies = nil
	e.topo.Close()
}

// UDP returns a classic RFC 1035 resolver toward host, with the RFC 7766
// TCP fallback for truncated responses.
func (e *Environment) UDP(host ResolverHost, opts Options) (Resolver, error) {
	c, err := e.topo.UDPResolver(core.ClientHost, string(host))
	if err != nil {
		return nil, err
	}
	c.Recorder = opts.Recorder
	// The TCP retry leg of a truncated exchange is wire traffic too: give
	// the fallback the same recorder so its cost is not silently dropped.
	if fb, ok := c.Fallback.(*dnstransport.StreamClient); ok {
		fb.Recorder = opts.Recorder
	}
	return c, nil
}

// DoT returns a DNS-over-TLS resolver toward host (RFC 7858).
func (e *Environment) DoT(host ResolverHost, opts Options) (Resolver, error) {
	c, err := e.topo.DoTResolver(core.ClientHost, string(host))
	if err != nil {
		return nil, err
	}
	c.Persistent = opts.Persistent
	c.Recorder = opts.Recorder
	return c, nil
}

// DoH returns a DNS-over-HTTPS resolver toward host (RFC 8484).
func (e *Environment) DoH(host ResolverHost, opts Options) (Resolver, error) {
	mode := dnstransport.ModeH2
	if opts.HTTP1 {
		mode = dnstransport.ModeH1
	}
	c, err := e.topo.DoHResolver(core.ClientHost, string(host), mode, opts.Persistent)
	if err != nil {
		return nil, err
	}
	c.Recorder = opts.Recorder
	return c, nil
}

// NewQuery builds a recursion-desired query with EDNS(0), accepting names
// with or without the trailing dot.
func NewQuery(name string, t Type) *Message {
	return dnswire.NewQuery(0, dnswire.Name(name).Canonical(), t)
}

// ParseType maps an RR type mnemonic ("A", "AAAA", …) to its Type.
func ParseType(s string) (Type, bool) { return dnswire.ParseType(s) }

// WithCache wraps any resolver with a sharded, TTL-respecting,
// singleflight-coalescing cache — the production-mode counterpart of the
// paper's deliberately cold-cache methodology. Closing the returned
// resolver closes the upstream.
func WithCache(upstream Resolver, opts ...CacheOption) Resolver {
	return dnscache.New(upstream, opts...)
}

// Cache configuration, re-exported from the sharded cache.
type (
	// CacheOption configures WithCache.
	CacheOption = dnscache.Option
	// CacheStats counts cache effectiveness.
	CacheStats = dnscache.Stats
)

// Re-exported cache options.
var (
	CacheMaxEntries  = dnscache.WithMaxEntries
	CacheTTLBounds   = dnscache.WithTTLBounds
	CacheShards      = dnscache.WithShards
	CacheNegativeTTL = dnscache.WithNegativeTTL
	// CacheMemoryBudget bounds the cache by accounted bytes (entry payload
	// + key + index overhead) instead of entry count — the bound that stays
	// honest when answer sizes vary.
	CacheMemoryBudget = dnscache.WithMemoryBudget
	// CacheTinyLFU enables frequency-gated admission: an insert that would
	// evict must beat its victims' estimated lookup frequency (per-shard
	// count-min sketch with doorkeeper), protecting the working set from
	// one-hit-wonder floods.
	CacheTinyLFU = dnscache.WithTinyLFU
	// CacheMessageEntries restores the pre-wire-path storage (*Message
	// entries served by deep clone) — kept for comparison benchmarks; the
	// default packed-wire entries are both faster and immutable.
	CacheMessageEntries = dnscache.WithMessageEntries
	// CacheServeStale keeps expired entries answerable for a window past
	// expiry (RFC 8767), served immediately while one background refresh
	// re-populates them.
	CacheServeStale = dnscache.WithServeStale
	// CachePrefetch refreshes hot entries in the background when a hit
	// finds them within the window of expiry.
	CachePrefetch = dnscache.WithPrefetch
	// CacheRefreshTimeout bounds each background refresh exchange.
	CacheRefreshTimeout = dnscache.WithRefreshTimeout
)

// Upstream pooling, re-exported from dnstransport.
type (
	// Pool multiplexes queries over persistent upstream connections with
	// health tracking and failover.
	Pool = dnstransport.Pool
	// PoolUpstream names one upstream and how to connect to it.
	PoolUpstream = dnstransport.PoolUpstream
	// PoolConfig tunes a Pool.
	PoolConfig = dnstransport.PoolConfig
	// UpstreamStats snapshots one pooled upstream's health.
	UpstreamStats = dnstransport.UpstreamStats
)

// NewPool builds a pooled resolver over the given upstreams.
func NewPool(upstreams []PoolUpstream, cfg PoolConfig) (*Pool, error) {
	return dnstransport.NewPool(upstreams, cfg)
}

// Adaptive upstream steering, re-exported from internal/steer: the layer
// between the cache and the pool that decides which upstream answers each
// query from a live per-upstream EWMA SRTT + success model. A
// ForwardingProxyConfig selects the policy by name (Policy, HedgeDelay,
// ExploreEvery); these re-exports serve embedders composing the layers by
// hand.
type (
	// Steerer routes queries over a pool's upstreams by policy.
	Steerer = steer.Steerer
	// SteeringPolicy selects failover, fastest or hedged routing.
	SteeringPolicy = steer.Policy
	// SteeringConfig tunes a Steerer.
	SteeringConfig = steer.Config
	// SteeringBackend is the upstream capability a Steerer drives (a *Pool).
	SteeringBackend = steer.Backend
	// SteeringReport is the steering section of a proxy cost report.
	SteeringReport = steer.Report
	// SteeringUpstreamScore is one upstream's live latency/health model.
	SteeringUpstreamScore = steer.UpstreamScore
)

// The steering policies.
const (
	// SteerFailover preserves the pool's static preference order.
	SteerFailover = steer.PolicyFailover
	// SteerFastest routes to the lowest-SRTT upstream with exploration.
	SteerFastest = steer.PolicyFastest
	// SteerHedged races a delayed second exchange, first answer wins.
	SteerHedged = steer.PolicyHedged
)

// ParseSteeringPolicy maps a policy name to its SteeringPolicy.
var ParseSteeringPolicy = steer.ParsePolicy

// NewSteerer wraps a pool (or any SteeringBackend) with a steering layer.
func NewSteerer(backend SteeringBackend, cfg SteeringConfig) *Steerer {
	return steer.New(backend, cfg)
}

// Forwarding proxy, re-exported from internal/proxy.
type (
	// ForwardingProxy serves the full listener set through cache →
	// singleflight → upstream pool.
	ForwardingProxy = proxy.Proxy
	// ForwardingProxyConfig assembles a ForwardingProxy.
	ForwardingProxyConfig = proxy.Config
	// ProxyCostReport is the /debug/cost payload of a ForwardingProxy.
	ProxyCostReport = proxy.CostReport
)

// Per-query lifecycle tracing (internal/qtrace), armed through
// ForwardingProxyConfig.Tracing: every served query records monotonic
// phase spans (parse, guard, cache, steer, hedge legs, dial, upstream,
// write) and a tail-based sampler keeps errored queries, queries slower
// than an adaptive per-class p99, and a 1-in-N healthy baseline in a
// lock-free ring served on /debug/trace.
type (
	// TraceConfig tunes the tracer (zero values take defaults).
	TraceConfig = qtrace.Config
	// QueryTracer owns the sampling policy and kept-trace rings; obtain a
	// ForwardingProxy's with its Tracer method.
	QueryTracer = qtrace.Tracer
	// TraceStats is the sampler's decision counters and live thresholds.
	TraceStats = qtrace.Stats
	// TraceFilter selects traces from the rings.
	TraceFilter = qtrace.Filter
	// TraceView is one kept trace rendered for JSON consumers.
	TraceView = qtrace.View
	// TraceSpanView is one phase interval of a TraceView.
	TraceSpanView = qtrace.SpanView
	// TraceQueryLog is the size-rotated JSONL query log
	// (TraceConfig.Log).
	TraceQueryLog = qtrace.QueryLog
)

// NewQueryTracer builds a standalone tracer, for embedders serving DNS
// without the proxy assembly: install it on a Telemetry sink with
// SetTracer.
func NewQueryTracer(cfg TraceConfig) *QueryTracer { return qtrace.New(cfg) }

// OpenTraceQueryLog opens (appending) a JSONL query log rotated at
// maxBytes (0 = the 64 MiB default), for TraceConfig.Log.
func OpenTraceQueryLog(path string, maxBytes int64) (*TraceQueryLog, error) {
	return qtrace.OpenQueryLog(path, maxBytes)
}

// Abuse guard (internal/guard), armed through ForwardingProxyConfig.Guard:
// per-client response rate limiting with RRL slip/TC=1 on UDP and honest
// REFUSED on stream transports, RFC 7873 server cookies whose holders
// bypass the UDP limits, and a cache-miss circuit breaker in front of the
// upstream path.
type (
	// AbuseGuard is the live guard; obtain a ForwardingProxy's with its
	// Guard method.
	AbuseGuard = guard.Guard
	// AbuseGuardConfig tunes the guard (zero values take defaults).
	AbuseGuardConfig = guard.Config
	// AbuseGuardReport is the guard's decision counters and breaker state.
	AbuseGuardReport = guard.Report
)

// ErrMissBudget is how the guard's circuit breaker refuses a cache miss;
// the serving layer answers REFUSED when an exchange returns it.
var ErrMissBudget = guard.ErrMissBudget

// Resilient upstream connectivity (internal/dialer), wired through
// ForwardingProxyConfig.Dialer / .Bootstrap / .Storm: a Happy-Eyeballs
// (RFC 8305) racing dialer with per-upstream winner memory, a
// reachability prober that seeds the steering scoreboard before the
// listeners come up, and an error-storm detector that triggers re-probes
// on suspected network changes.
type (
	// RacingDialer races IPv4 and IPv6 dial attempts with staggered
	// starts and remembers the winning family per upstream.
	RacingDialer = dialer.HappyEyeballs
	// RacingDialerConfig assembles a RacingDialer.
	RacingDialerConfig = dialer.Config
	// RacingDialerReport is the dialer section of a proxy cost report.
	RacingDialerReport = dialer.Report
	// BootstrapProber sweeps upstream×protocol reachability and caches
	// verdicts.
	BootstrapProber = dialer.Prober
	// BootstrapTarget is one upstream×protocol probe.
	BootstrapTarget = dialer.Target
	// BootstrapVerdict is one cached probe outcome.
	BootstrapVerdict = dialer.Verdict
	// BootstrapReport is the prober's verdict table snapshot.
	BootstrapReport = dialer.ProbeReport
	// ErrorStorm detects runs of consecutive upstream failures and fires
	// a (rate-limited) network-change callback.
	ErrorStorm = dialer.Storm
)

// NewRacingDialer builds a Happy-Eyeballs dialer; Config.Resolve and
// Config.Dial are required.
func NewRacingDialer(cfg RacingDialerConfig) *RacingDialer { return dialer.New(cfg) }

// NewAbuseGuard builds a standalone guard around a telemetry sink (nil is
// fine), for embedders serving DNS without the proxy assembly.
func NewAbuseGuard(cfg AbuseGuardConfig, tel *Telemetry) *AbuseGuard { return guard.New(cfg, tel) }

// Per-query cost telemetry, re-exported from internal/telemetry. A
// ForwardingProxy always carries a Telemetry sink; embedders can also
// build one with NewTelemetry and pass it through ForwardingProxyConfig
// to share a sink across deployments, or register a TransactionListener
// (the DNSSummary idiom) to stream one summary per completed query.
type (
	// Telemetry is the lock-free sharded metrics sink.
	Telemetry = telemetry.Metrics
	// TelemetryOption configures NewTelemetry.
	TelemetryOption = telemetry.Option
	// TelemetrySnapshot is a merged view of a Telemetry at one instant.
	TelemetrySnapshot = telemetry.Snapshot
	// TransactionSummary is one completed query's cost record.
	TransactionSummary = telemetry.Summary
	// TransactionListener receives one TransactionSummary per query.
	TransactionListener = telemetry.Listener
	// TransactionListenerFunc adapts a function to TransactionListener.
	TransactionListenerFunc = telemetry.ListenerFunc
)

// NewTelemetry builds a telemetry sink (one shard per CPU).
func NewTelemetry(opts ...TelemetryOption) *Telemetry { return telemetry.New(opts...) }

// TelemetryWithListener registers a per-transaction listener at
// construction time.
var TelemetryWithListener = telemetry.WithListener

// NewForwardingProxy builds a forwarding proxy from explicit configuration.
func NewForwardingProxy(cfg ForwardingProxyConfig) (*ForwardingProxy, error) {
	return proxy.New(cfg)
}

// StartProxy deploys a forwarding proxy on the environment's network at
// host, forwarding cache misses to the named study resolvers in failover
// order (DoT toward resolvers with TLS deployments, TCP toward the local
// one). The proxy serves UDP/TCP :53, DoT :853 and DoH :443 with its own
// certificate chain, retrievable via ProxyChain for client trust.
func (e *Environment) StartProxy(host string, upstreams ...ResolverHost) (*ForwardingProxy, error) {
	if len(upstreams) == 0 {
		return nil, fmt.Errorf("dohcost: StartProxy needs at least one upstream")
	}
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(host))
	if err != nil {
		return nil, err
	}
	var ups []PoolUpstream
	for _, u := range upstreams {
		ups = append(ups, e.poolUpstream(host, u))
	}
	p, err := proxy.New(proxy.Config{
		Upstreams: ups,
		Chain:     chain,
		Endpoints: []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
	})
	if err != nil {
		return nil, err
	}
	if err := p.Start(e.topo.Net, host); err != nil {
		p.Close()
		return nil, err
	}
	e.proxies = append(e.proxies, p)
	e.proxyChains = append(e.proxyChains, proxyChain{host: host, chain: chain})
	return p, nil
}

// ProxyChain returns the certificate chain of a proxy started by
// StartProxy, for building DoT/DoH clients that trust it.
func (e *Environment) ProxyChain(host string) *tlsx.Chain {
	for _, pc := range e.proxyChains {
		if pc.host == host {
			return pc.chain
		}
	}
	return nil
}

// ProxyUDP returns a classic UDP resolver toward a proxy started with
// StartProxy, with the same RFC 7766 TCP fallback Environment.UDP wires.
func (e *Environment) ProxyUDP(host string, opts Options) (Resolver, error) {
	pc, err := e.topo.Net.ListenPacket("")
	if err != nil {
		return nil, err
	}
	c := dnstransport.NewUDPClient(pc, netsim.Addr(host+":53"))
	fb := dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
		return e.topo.Net.DialContext(ctx, core.ClientHost, host+":53")
	})
	fb.Recorder = opts.Recorder
	c.Fallback = fb
	c.Recorder = opts.Recorder
	return c, nil
}

// ProxyDoH returns a DoH resolver toward a proxy started with StartProxy,
// trusting the proxy's own certificate chain.
func (e *Environment) ProxyDoH(host string, opts Options) (Resolver, error) {
	chain := e.ProxyChain(host)
	if chain == nil {
		return nil, fmt.Errorf("dohcost: no proxy started at %s", host)
	}
	mode := dnstransport.ModeH2
	if opts.HTTP1 {
		mode = dnstransport.ModeH1
	}
	return &dnstransport.DoHClient{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return e.topo.Net.DialContext(ctx, core.ClientHost, host+":443")
		},
		TLS:        chain.ClientConfig(host),
		Mode:       mode,
		Persistent: opts.Persistent,
		Recorder:   opts.Recorder,
	}, nil
}

// poolUpstream wires one study resolver as a pool target: DoT where the
// deployment has a TLS stack, plain TCP otherwise.
func (e *Environment) poolUpstream(from string, host ResolverHost) PoolUpstream {
	return PoolUpstream{Name: string(host), Dial: func(ctx context.Context) (Resolver, error) {
		if c, err := e.topo.DoTResolver(from, string(host)); err == nil {
			return c, nil
		}
		return dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
			return e.topo.Net.DialContext(ctx, from, string(host)+":53")
		}), nil
	}}
}

// Network impairment and multi-client load generation, re-exported from
// internal/netsim and internal/loadgen. An ImpairmentProfile names one of
// the degraded access-network regimes ("broadband", "4g", "3g",
// "lossy-wifi", "satellite"); a LoadScenario replays an Alexa-derived
// workload from N concurrent clients against a forwarding proxy over any
// subset of the four transports under one of those profiles.
type (
	// ImpairmentProfile is a named access-network impairment (link delay,
	// jitter, loss, reordering, MTU, bandwidth).
	ImpairmentProfile = netsim.Profile
	// LoadScenario configures one load-generation run.
	LoadScenario = loadgen.Scenario
	// LoadResult is one load-generation run's harvest.
	LoadResult = loadgen.Result
	// TransportLoadResult is one transport's slice of a LoadResult.
	TransportLoadResult = loadgen.TransportResult
	// AttackLoadResult is the flooder population's slice of a LoadResult.
	AttackLoadResult = loadgen.AttackResult
)

// DialFaultProfile is a named dial-level impairment regime for an
// upstream's dual-homed addresses ("broken-v6", "flaky-dial"), applied
// through LoadScenario.DialFault or netsim directly.
type DialFaultProfile = netsim.DialProfile

// Impairment profile registry and scenario rendering, re-exported.
var (
	// ImpairmentProfiles lists the built-in profiles.
	ImpairmentProfiles = netsim.Profiles
	// ImpairmentProfileNames lists the built-in profile names.
	ImpairmentProfileNames = netsim.ProfileNames
	// LookupImpairmentProfile resolves a profile by name.
	LookupImpairmentProfile = netsim.LookupProfile
	// DialFaultProfiles lists the built-in dial-fault profiles.
	DialFaultProfiles = netsim.DialProfiles
	// DialFaultProfileNames lists the built-in dial-fault profile names.
	DialFaultProfileNames = netsim.DialProfileNames
	// LookupDialFaultProfile resolves a dial-fault profile by name.
	LookupDialFaultProfile = netsim.LookupDialProfile
	// RenderScenario formats a LoadResult as a per-transport table.
	RenderScenario = loadgen.Render
)

// RunScenario executes a load-generation scenario: it deploys an upstream
// resolver and a forwarding proxy on a fresh simulated network, applies the
// scenario's impairment profile to every client's access link, replays the
// workload per transport, and harvests the telemetry.
func RunScenario(s LoadScenario) (*LoadResult, error) { return loadgen.Run(s) }

// Experiment results and runners, re-exported from the study core.
type (
	// Figure1Result is the queries-per-page survey (Figure 1).
	Figure1Result = core.Fig1Result
	// Figure2Result is the head-of-line-blocking comparison (Figure 2).
	Figure2Result = core.Fig2Result
	// OverheadResult covers byte/packet/layer costs (Figures 3–5).
	OverheadResult = core.OverheadResult
	// Figure6Result is the page-load study (Figure 6).
	Figure6Result = core.Fig6Result
	// TablesResult is the landscape survey (Tables 1–2).
	TablesResult = core.TableResult
)

// RunFigure1 regenerates Figure 1 (and the §4 corpus statistics).
func RunFigure1(pages int, seed int64) *Figure1Result {
	return core.RunFig1(core.Fig1Config{Pages: pages, Seed: seed})
}

// RunTables regenerates Tables 1 and 2 by deploying and probing the nine
// providers.
func RunTables(seed int64) (*TablesResult, error) { return core.RunTables(seed) }

// RunFigure2 regenerates Figure 2. A zero config runs the paper's
// parameters (100 queries, 10 qps, 1-in-25 delayed 1 s), which takes about
// 80 seconds of real time across the eight runs.
func RunFigure2(cfg core.Fig2Config) (*Figure2Result, error) { return core.RunFig2(cfg) }

// RunOverhead regenerates Figures 3, 4 and 5 over a sample of the synthetic
// Alexa corpus.
func RunOverhead(domains int, seed int64) (*OverheadResult, error) {
	return core.RunOverhead(core.OverheadConfig{Domains: domains, Seed: seed})
}

// RunOverheadUnder is RunOverhead with the client's access link degraded by
// the named impairment profile ("broadband", "4g", "3g", "lossy-wifi",
// "satellite") — the §4 measurements re-run in the regimes where the cost
// ranking shifts.
func RunOverheadUnder(profile string, domains int, seed int64) (*OverheadResult, error) {
	return core.RunOverhead(core.OverheadConfig{Domains: domains, Seed: seed, Profile: profile})
}

// RunFigure6 regenerates Figure 6.
func RunFigure6(cfg core.Fig6Config) (*Figure6Result, error) { return core.RunFig6(cfg) }

// Render functions, re-exported for the cmd tools and examples.
var (
	RenderFigure1  = core.RenderFig1
	RenderFigure2  = core.RenderFig2
	RenderFig3Fig4 = core.RenderFig3Fig4
	RenderFig5     = core.RenderFig5
	RenderFigure6  = core.RenderFig6
	RenderTables   = core.RenderTables
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// String implements fmt.Stringer for ResolverHost.
func (h ResolverHost) String() string { return string(h) }

// Command dohserver runs a standalone multi-transport DNS deployment on the
// simulated network and drives a smoke query over each transport — the
// quickest way to see the whole stack (UDP, TCP, DoT, DoH over HTTP/1.1 and
// HTTP/2) answer end to end.
//
// Usage:
//
//	dohserver [-host resolver.example] [-addr 192.0.2.1] [-queries 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

func main() {
	host := flag.String("host", "resolver.example", "simulated server host name")
	addr := flag.String("addr", "192.0.2.1", "address every A query resolves to")
	queries := flag.Int("queries", 5, "smoke queries per transport")
	flag.Parse()

	ip, err := netip.ParseAddr(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohserver: bad -addr:", err)
		os.Exit(1)
	}

	n := netsim.New(time.Now().UnixNano())
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(*host))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohserver:", err)
		os.Exit(1)
	}
	srv := &dnsserver.Server{
		Handler:   dnsserver.Static(ip, 300),
		Chain:     chain,
		Endpoints: []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
	}
	run, err := srv.Start(n, *host)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohserver:", err)
		os.Exit(1)
	}
	defer run.Close()
	fmt.Printf("deployment up at %s: udp/tcp :53, dot :853, doh :443 (/dns-query, wire+json)\n\n", *host)

	pc, err := n.ListenPacket("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohserver:", err)
		os.Exit(1)
	}
	clients := []struct {
		name string
		r    dnstransport.Resolver
	}{
		{"udp", dnstransport.NewUDPClient(pc, netsim.Addr(*host+":53"))},
		{"tcp", dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", *host+":53") })},
		{"dot", dnstransport.NewDoTClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", *host+":853") }, chain.ClientConfig(*host))},
		{"doh-h1", &dnstransport.DoHClient{
			Dial: func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", *host+":443") },
			TLS:  chain.ClientConfig(*host), Mode: dnstransport.ModeH1, Persistent: true,
		}},
		{"doh-h2", &dnstransport.DoHClient{
			Dial: func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", *host+":443") },
			TLS:  chain.ClientConfig(*host), Mode: dnstransport.ModeH2, Persistent: true,
		}},
	}
	for _, c := range clients {
		defer c.r.Close()
		var total time.Duration
		for i := 0; i < *queries; i++ {
			q := dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("smoke%d.example.", i)), dnswire.TypeA)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			start := time.Now()
			resp, err := c.r.Exchange(ctx, q)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dohserver: %s query %d: %v\n", c.name, i, err)
				os.Exit(1)
			}
			if len(resp.Answers) != 1 {
				fmt.Fprintf(os.Stderr, "dohserver: %s query %d: unexpected answers %v\n", c.name, i, resp.Answers)
				os.Exit(1)
			}
			total += time.Since(start)
		}
		fmt.Printf("%-7s %d/%d ok, avg %v\n", c.name, *queries, *queries, (total / time.Duration(*queries)).Round(time.Microsecond))
	}
}

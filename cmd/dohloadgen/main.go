// Command dohloadgen runs the multi-client load-generation harness: N
// concurrent simulated stub resolvers replaying an Alexa-derived workload
// against the forwarding proxy over any subset of Do53/UDP, TCP, DoT and
// DoH, with every client's access link degraded by a named impairment
// profile (broadband, 4g, 3g, lossy-wifi, satellite).
//
// All reported numbers come from the telemetry subsystem: per-transport
// latency quantiles, message bytes, UDP retransmissions, TC→TCP fallbacks
// and failure counts on the client side, and cache/upstream counters on
// the proxy side. Closed-loop runs with the same seed reproduce their
// aggregate counters exactly.
//
// Steering sweeps compare upstream-selection policies end to end: -policy
// picks failover/fastest/hedged, -upstreams deploys several recursive
// resolvers behind the proxy, and -degraded-upstream-rtt slows the
// preferred one — the regime where the policies separate.
//
// Usage:
//
//	dohloadgen [-profile 3g] [-transports udp,doh] [-clients 50]
//	           [-queries 2000] [-seed 1] [-arrival closed|open]
//	           [-rate 20] [-think 0] [-names 16]
//	           [-zipf-names 10000000] [-zipf-s 1.0]
//	           [-cache-budget 8m] [-cache-admission tinylfu]
//	           [-policy hedged] [-hedge-delay 40ms] [-upstreams 2]
//	           [-degraded-upstream-rtt 600ms] [-serve-stale 1m]
//	           [-prefetch 10s] [-attackers 2] [-attack-qps 5000]
//	           [-guard] [-guard-qps 2000] [-guard-burst 50] [-guard-slip 2]
//	           [-guard-miss-rate 25]
//	           [-he] [-he-stagger 250ms] [-dial-fault broken-v6]
//	           [-flap-after 200ms] [-flap-for 100ms] [-bootstrap-probe]
//	           [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dohcost/internal/dnscache"
	"dohcost/internal/guard"
	"dohcost/internal/loadgen"
	"dohcost/internal/netsim"
)

func main() {
	var (
		profile     = flag.String("profile", "", "impairment profile on client access links: "+strings.Join(netsim.ProfileNames(), ", ")+" (empty = ideal)")
		transports  = flag.String("transports", strings.Join(loadgen.Transports, ","), "comma-separated transports to drive, in order")
		clients     = flag.Int("clients", 10, "concurrent clients per transport")
		queries     = flag.Int("queries", 1000, "total queries per transport")
		seed        = flag.Int64("seed", 1, "seed for workload, arrivals and link impairment schedules")
		arrival     = flag.String("arrival", "closed", "arrival model: closed (wait for response) or open (Poisson)")
		rate        = flag.Float64("rate", 20, "open-loop per-client arrival rate (queries/second)")
		think       = flag.Duration("think", 0, "closed-loop pause between response and next query")
		names       = flag.Int("names", 16, "distinct query names per client (smaller = hotter proxy cache; ignored with -zipf-names)")
		zipfNames   = flag.Int("zipf-names", 0, "draw names Zipf-distributed over this many distinct names shared by all clients (heavy-tailed popularity; 0 = per-client cycles)")
		zipfS       = flag.Float64("zipf-s", 1.0, "Zipf exponent for -zipf-names")
		cacheBudget = flag.String("cache-budget", "", "bound the proxy cache by accounted bytes, e.g. 8m or 512k (empty = entry-count bound)")
		cacheAdm    = flag.String("cache-admission", "", "proxy cache admission policy: lru or tinylfu (empty = tinylfu when -cache-budget is set)")
		timeout     = flag.Duration("timeout", 10*time.Second, "whole-query client timeout")
		udpTimeout  = flag.Duration("udp-attempt-timeout", 0, "UDP per-attempt wait before retransmitting (0 = derive from profile)")
		upstreamRTT = flag.Duration("upstream-rtt", 4*time.Millisecond, "clean proxy-to-upstream round trip")
		policy      = flag.String("policy", "failover", "proxy upstream steering policy: failover, fastest or hedged")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "hedged policy: wait before the second exchange (0 = adaptive)")
		upstreams   = flag.Int("upstreams", 1, "recursive resolvers behind the proxy")
		degradedRTT = flag.Duration("degraded-upstream-rtt", 0, "slow the preferred upstream's link to this round trip (0 = none)")
		serveStale  = flag.Duration("serve-stale", 0, "proxy cache RFC 8767 stale window (0 disables)")
		prefetch    = flag.Duration("prefetch", 0, "proxy cache near-expiry prefetch window (0 disables)")
		udpBatch    = flag.Int("udp-batch", 0, "serve the proxy's UDP listener with the batched loop at this vector size (0 = per-packet)")
		attackers   = flag.Int("attackers", 0, "flooder clients blasting random-subdomain UDP queries alongside every transport leg (0 = none)")
		attackQPS   = flag.Float64("attack-qps", 0, "per-flooder target query rate (0 = default 200)")
		guardOn     = flag.Bool("guard", false, "arm the proxy's abuse guard (RRL, DNS cookies, miss breaker)")
		guardQPS    = flag.Float64("guard-qps", 0, "guard: per-client sustained response rate (0 = default 50)")
		guardBurst  = flag.Int("guard-burst", 0, "guard: per-client token-bucket burst (0 = 2×qps)")
		guardSlip   = flag.Int("guard-slip", 0, "guard: every Nth rate-limited UDP response is a TC=1 slip (0 = default 2, negative = never)")
		guardMiss   = flag.Float64("guard-miss-rate", 0, "guard: per-client sustained cache-miss rate before the breaker refuses (0 = default 20)")
		he          = flag.Bool("he", false, "dual-home every upstream (v4.<host>/v6.<host>) and dial through the Happy-Eyeballs racing dialer")
		heStagger   = flag.Duration("he-stagger", 0, "Happy Eyeballs connection-attempt delay between racing dials (0 = RFC 8305 default 250ms)")
		dialFault   = flag.String("dial-fault", "", "dial impairment profile on the upstream homes: "+strings.Join(netsim.DialProfileNames(), ", ")+" (empty = none; needs -he to matter)")
		flapAfter   = flag.Duration("flap-after", 0, "sever upstream 0's link this long after the clients start (0 = no flap)")
		flapFor     = flag.Duration("flap-for", 0, "how long the -flap-after outage lasts (0 = default 100ms)")
		bootstrap   = flag.Bool("bootstrap-probe", false, "probe every upstream before the listeners come up and seed the steering scoreboard with the verdicts")
		trace       = flag.Bool("trace", false, "arm the proxy's per-query lifecycle tracing; the result grows sampler stats and a slowest-traces digest")
		traceSample = flag.Int("trace-sample", 0, "tracing: keep 1-in-N unremarkable traces as baseline (0 = default 64)")
		asJSON      = flag.Bool("json", false, "print the full result as JSON instead of the table")
	)
	flag.Parse()

	var trs []string
	for _, t := range strings.Split(*transports, ",") {
		if t = strings.TrimSpace(t); t != "" {
			trs = append(trs, t)
		}
	}
	var budget int64
	if *cacheBudget != "" {
		var err error
		if budget, err = dnscache.ParseByteSize(*cacheBudget); err != nil {
			fmt.Fprintln(os.Stderr, "dohloadgen: -cache-budget:", err)
			os.Exit(1)
		}
	}
	var gcfg *guard.Config
	if *guardOn {
		gcfg = &guard.Config{
			ClientQPS: *guardQPS,
			Burst:     *guardBurst,
			SlipEvery: *guardSlip,
			MissRate:  *guardMiss,
		}
	}
	res, err := loadgen.Run(loadgen.Scenario{
		Profile:             *profile,
		Transports:          trs,
		Clients:             *clients,
		Queries:             *queries,
		Seed:                *seed,
		Arrival:             *arrival,
		Rate:                *rate,
		Think:               *think,
		Names:               *names,
		ZipfNames:           *zipfNames,
		ZipfS:               *zipfS,
		CacheBudget:         budget,
		CacheAdmission:      *cacheAdm,
		Timeout:             *timeout,
		UDPAttemptTimeout:   *udpTimeout,
		UpstreamRTT:         *upstreamRTT,
		Policy:              *policy,
		HedgeDelay:          *hedgeDelay,
		Upstreams:           *upstreams,
		DegradedUpstreamRTT: *degradedRTT,
		ServeStale:          *serveStale,
		PrefetchWindow:      *prefetch,
		UDPBatch:            *udpBatch,
		Attackers:           *attackers,
		AttackQPS:           *attackQPS,
		Guard:               gcfg,
		HappyEyeballs:       *he,
		HEStagger:           *heStagger,
		DialFault:           *dialFault,
		FlapAfter:           *flapAfter,
		FlapFor:             *flapFor,
		BootstrapProbe:      *bootstrap,
		Trace:               *trace,
		TraceSample:         *traceSample,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohloadgen:", err)
		os.Exit(1)
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dohloadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		return
	}
	fmt.Print(loadgen.Render(res))
}

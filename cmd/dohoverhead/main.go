// Command dohoverhead regenerates the paper's Figures 3, 4 and 5: total
// bytes and packets per DNS resolution for UDP and DoH (persistent and
// per-query connections) against Cloudflare-like and Google-like
// deployments, and the per-layer breakdown of the DoH cost into HTTP body,
// HTTP headers, HTTP/2 management, TLS and TCP.
//
// Usage:
//
//	dohoverhead [-domains 500] [-seed N] [-profile 3g] [-fig3] [-fig4] [-fig5] [-raw]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dohcost/internal/core"
	"dohcost/internal/netsim"
)

func main() {
	domains := flag.Int("domains", 500, "names to resolve per scenario")
	seed := flag.Int64("seed", 2019, "simulation seed")
	fig3 := flag.Bool("fig3", false, "only bytes per resolution")
	fig4 := flag.Bool("fig4", false, "only packets per resolution")
	fig5 := flag.Bool("fig5", false, "only the layer breakdown")
	raw := flag.Bool("raw", false, "dump every resolution's cost as TSV")
	profile := flag.String("profile", "", "impairment profile on the client access link: "+strings.Join(netsim.ProfileNames(), ", ")+" (empty = ideal)")
	flag.Parse()

	res, err := core.RunOverhead(core.OverheadConfig{Domains: *domains, Seed: *seed, Profile: *profile})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohoverhead:", err)
		os.Exit(1)
	}
	all := !*fig3 && !*fig4 && !*fig5
	if all || *fig3 || *fig4 {
		fmt.Print(core.RenderFig3Fig4(res))
		fmt.Println()
	}
	if all || *fig5 {
		fmt.Print(core.RenderFig5(res))
	}
	if *raw {
		fmt.Println("\nscenario\tbytes\tpackets\tbody\thdr\tmgmt\ttls\ttcp")
		for _, s := range res.Scenarios {
			for _, c := range s.Costs {
				wc := c.WireCost()
				bd := c.Breakdown()
				fmt.Printf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
					s.Scenario, wc.Bytes, wc.Packets, bd.Body, bd.Hdr, bd.Mgmt, bd.TLS, bd.TCP)
			}
		}
	}
}

// Command dohresolve is a dig-like lookup tool against the study's
// simulated environment: resolve one name over a chosen transport and print
// the response, timing, and wire cost.
//
// Usage:
//
//	dohresolve [-transport udp|dot|doh|doh1] [-server local|cloudflare|google]
//	           [-type A] [-n 1] name
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dohcost"
)

func main() {
	transport := flag.String("transport", "doh", "udp, dot, doh (HTTP/2) or doh1 (HTTP/1.1)")
	server := flag.String("server", "cloudflare", "local, cloudflare or google")
	qtype := flag.String("type", "A", "query type (A, AAAA, CNAME, TXT, CAA)")
	count := flag.Int("n", 1, "repeat the query to observe connection reuse")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dohresolve [flags] name")
		os.Exit(2)
	}
	name := flag.Arg(0)

	env, err := dohcost.NewEnvironment(dohcost.EnvironmentConfig{Seed: time.Now().UnixNano()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohresolve:", err)
		os.Exit(1)
	}
	defer env.Close()

	host := map[string]dohcost.ResolverHost{
		"local": dohcost.Local, "cloudflare": dohcost.Cloudflare, "google": dohcost.Google,
	}[strings.ToLower(*server)]
	if host == "" {
		fmt.Fprintln(os.Stderr, "dohresolve: unknown -server", *server)
		os.Exit(2)
	}

	var costs []dohcost.Cost
	opts := dohcost.Options{Persistent: true, Recorder: dohcost.CostFunc(func(c dohcost.Cost) { costs = append(costs, c) })}
	var r dohcost.Resolver
	switch strings.ToLower(*transport) {
	case "udp":
		r, err = env.UDP(host, opts)
	case "dot":
		r, err = env.DoT(host, opts)
	case "doh":
		r, err = env.DoH(host, opts)
	case "doh1":
		opts.HTTP1 = true
		r, err = env.DoH(host, opts)
	default:
		fmt.Fprintln(os.Stderr, "dohresolve: unknown -transport", *transport)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohresolve:", err)
		os.Exit(1)
	}
	defer r.Close()

	t, ok := dohcost.ParseType(strings.ToUpper(*qtype))
	if !ok {
		fmt.Fprintln(os.Stderr, "dohresolve: unknown -type", *qtype)
		os.Exit(2)
	}
	for i := 0; i < *count; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		resp, err := r.Exchange(ctx, dohcost.NewQuery(name, t))
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dohresolve:", err)
			os.Exit(1)
		}
		fmt.Printf(";; query %d via %s/%s took %v\n", i+1, *transport, host, time.Since(start).Round(time.Microsecond))
		fmt.Print(resp.String())
		if len(costs) > i {
			fmt.Printf(";; wire cost: %s (setup included: %v)\n\n", costs[i].WireCost(), costs[i].IncludesSetup)
		}
	}
}

// Command dohproxy runs the production forwarding proxy on the simulated
// network: a full listener set (UDP/TCP :53, DoT :853, DoH :443) answering
// through the sharded cache, singleflight, and a pool of persistent
// upstream connections with failover — then drives a workload through every
// transport and reports latencies, cache effectiveness and upstream health.
//
// The proxy's per-query cost telemetry is exposed on a real (not
// simulated) HTTP socket while the tool runs: -metrics-addr serves
// Prometheus text on /metrics and the JSON cost report on /debug/cost,
// and -hold keeps the process alive after the workload so both can be
// curled; -cost-json prints the /debug/cost payload to stdout at exit.
//
// Usage:
//
//	dohproxy [-host proxy.dns] [-upstreams 2] [-conns 2] [-shards 16]
//	         [-cache-budget 64m] [-cache-admission tinylfu]
//	         [-names 50] [-queries 400] [-upstream-rtt 8ms]
//	         [-policy failover|fastest|hedged] [-hedge-delay 25ms]
//	         [-serve-stale 1m] [-prefetch 10s]
//	         [-udp-batch 32] [-udp-listen 127.0.0.1:5300] [-udp-shards 4]
//	         [-guard] [-guard-qps 50] [-guard-burst 100] [-guard-slip 2]
//	         [-guard-miss-rate 20] [-guard-inflight-miss 1024] [-guard-no-cookies]
//	         [-he] [-he-stagger 250ms] [-bootstrap-probe]
//	         [-trace] [-trace-sample 64] [-query-log trace.jsonl] [-slow-ms 50]
//	         [-pprof] [-metrics-addr 127.0.0.1:9090] [-hold 30s] [-cost-json]
//
// With -trace, every query records phase spans (parse, guard, cache,
// steer, dial, upstream, write) and the tail sampler keeps errored, slow
// and 1-in-N baseline traces on /debug/trace; -slow-ms additionally
// prints one console line per over-threshold query with its phase
// breakdown, and -query-log appends every kept trace as JSONL.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"time"

	"dohcost/internal/dialer"
	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/netsim"
	"dohcost/internal/proxy"
	"dohcost/internal/qtrace"
	"dohcost/internal/stats"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
)

// options carries the parsed flag set; run takes it whole so call sites
// stay self-describing as flags accumulate.
type options struct {
	host           string
	upstreams      int
	conns          int
	shards         int
	cacheBudget    string
	cacheAdmission string
	names          int
	queries        int
	upstreamRTT    time.Duration
	policy         string
	hedgeDelay     time.Duration
	serveStale     time.Duration
	prefetch       time.Duration
	metricsAddr    string
	hold           time.Duration
	costJSON       bool
	udpBatch       int
	udpListen      string
	udpShards      int

	guardOn           bool
	guardQPS          float64
	guardBurst        int
	guardSlip         int
	guardMissRate     float64
	guardInflightMiss int
	guardNoCookies    bool

	he             bool
	heStagger      time.Duration
	bootstrapProbe bool

	traceOn     bool
	traceSample int
	queryLog    string
	slowMS      float64
	pprofOn     bool
}

func main() {
	var o options
	flag.StringVar(&o.host, "host", "proxy.dns", "proxy host name on the simulated network")
	flag.IntVar(&o.upstreams, "upstreams", 2, "number of upstream resolvers (failover order)")
	flag.IntVar(&o.conns, "conns", 2, "persistent connections per upstream")
	flag.IntVar(&o.shards, "shards", 16, "cache shards")
	flag.StringVar(&o.cacheBudget, "cache-budget", "", "bound the cache by accounted bytes instead of entries, e.g. 64m or 512k (empty = entry-count bound)")
	flag.StringVar(&o.cacheAdmission, "cache-admission", "", "cache admission policy: lru or tinylfu (empty = tinylfu when -cache-budget is set, else lru)")
	flag.IntVar(&o.names, "names", 50, "distinct query names (smaller = hotter cache)")
	flag.IntVar(&o.queries, "queries", 400, "queries per transport")
	flag.DurationVar(&o.upstreamRTT, "upstream-rtt", 8*time.Millisecond, "proxy↔upstream round-trip time")
	flag.StringVar(&o.policy, "policy", "failover", "upstream steering policy: failover, fastest or hedged")
	flag.DurationVar(&o.hedgeDelay, "hedge-delay", 0, "hedged policy: wait before the second exchange (0 = adaptive SRTT+4·RTTVAR)")
	flag.DurationVar(&o.serveStale, "serve-stale", 0, "serve expired cache entries this long past expiry while refreshing in the background (RFC 8767; 0 disables)")
	flag.DurationVar(&o.prefetch, "prefetch", 0, "refresh hot cache entries when a hit finds them within this much of expiry (0 disables)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/cost on this real TCP address (e.g. 127.0.0.1:9090); empty disables")
	flag.DurationVar(&o.hold, "hold", 0, "keep serving the observability endpoints this long after the workload")
	flag.BoolVar(&o.costJSON, "cost-json", false, "print the /debug/cost JSON report to stdout at exit")
	flag.IntVar(&o.udpBatch, "udp-batch", 0, "serve UDP with the batched loop at this vector size (recvmmsg/sendmmsg where supported; 0 = per-packet)")
	flag.StringVar(&o.udpListen, "udp-listen", "", "also serve classic UDP DNS on real kernel sockets at this address (e.g. 127.0.0.1:5300); empty disables")
	flag.IntVar(&o.udpShards, "udp-shards", 0, "SO_REUSEPORT socket count for -udp-listen (0 = one per CPU)")
	flag.BoolVar(&o.guardOn, "guard", false, "arm the abuse guard: per-client RRL with slip/TC on UDP, REFUSED on streams, DNS cookies, cache-miss circuit breaker")
	flag.Float64Var(&o.guardQPS, "guard-qps", 0, "guard: per-client sustained response rate (0 = default 50)")
	flag.IntVar(&o.guardBurst, "guard-burst", 0, "guard: per-client token-bucket burst (0 = 2×qps)")
	flag.IntVar(&o.guardSlip, "guard-slip", 0, "guard: every Nth rate-limited UDP response is a TC=1 slip instead of a silent drop (0 = default 2, negative = never slip)")
	flag.Float64Var(&o.guardMissRate, "guard-miss-rate", 0, "guard: per-client sustained cache-miss rate before the breaker refuses (0 = default 20)")
	flag.IntVar(&o.guardInflightMiss, "guard-inflight-miss", 0, "guard: global ceiling on concurrent upstream-bound misses (0 = default 1024)")
	flag.BoolVar(&o.guardNoCookies, "guard-no-cookies", false, "guard: disable RFC 7873 server cookies (cookie holders otherwise bypass UDP rate limits)")
	flag.BoolVar(&o.he, "he", false, "dual-home each upstream (v4.<host>/v6.<host>) and dial through the Happy-Eyeballs racing dialer")
	flag.DurationVar(&o.heStagger, "he-stagger", 0, "Happy Eyeballs connection-attempt delay between racing dials (0 = RFC 8305 default 250ms)")
	flag.BoolVar(&o.bootstrapProbe, "bootstrap-probe", false, "probe every upstream before the listeners come up and seed the steering scoreboard")
	flag.BoolVar(&o.traceOn, "trace", false, "arm per-query lifecycle tracing: phase spans, tail-sampled onto /debug/trace")
	flag.IntVar(&o.traceSample, "trace-sample", 0, "tracing: keep 1-in-N unremarkable traces as baseline (0 = default 64)")
	flag.StringVar(&o.queryLog, "query-log", "", "tracing: append every kept trace as a JSONL record to this file, rotated at 64 MiB (implies -trace)")
	flag.Float64Var(&o.slowMS, "slow-ms", 0, "tracing: print one console line with a phase breakdown per query slower than this many ms (implies -trace)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount /debug/pprof and Go runtime gauges on -metrics-addr")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dohproxy:", err)
		os.Exit(1)
	}
}

// tracingConfig maps the -trace* / -slow-ms / -query-log flags to a
// qtrace configuration, or nil when tracing is not armed. -slow-ms and
// -query-log each imply -trace.
func tracingConfig(o options) (*qtrace.Config, error) {
	if !o.traceOn && o.slowMS <= 0 && o.queryLog == "" {
		return nil, nil
	}
	cfg := &qtrace.Config{SampleEvery: o.traceSample}
	if o.slowMS > 0 {
		cfg.SlowFloor = time.Duration(o.slowMS * float64(time.Millisecond))
		cfg.SlowLog = os.Stdout
	}
	if o.queryLog != "" {
		ql, err := qtrace.OpenQueryLog(o.queryLog, 0)
		if err != nil {
			return nil, fmt.Errorf("-query-log: %w", err)
		}
		cfg.Log = ql
	}
	return cfg, nil
}

// guardConfig maps the -guard-* flags to a guard configuration, or nil
// when the guard is not armed.
func guardConfig(o options) *guard.Config {
	if !o.guardOn {
		return nil
	}
	return &guard.Config{
		ClientQPS:       o.guardQPS,
		Burst:           o.guardBurst,
		SlipEvery:       o.guardSlip,
		MissRate:        o.guardMissRate,
		MaxInflightMiss: o.guardInflightMiss,
		DisableCookies:  o.guardNoCookies,
	}
}

func run(o options) error {
	host, upstreams, conns, shards, names, queries := o.host, o.upstreams, o.conns, o.shards, o.names, o.queries
	upstreamRTT, metricsAddr, hold, costJSON := o.upstreamRTT, o.metricsAddr, o.hold, o.costJSON
	if names < 1 {
		return fmt.Errorf("-names must be ≥ 1, got %d", names)
	}
	if queries < 1 {
		return fmt.Errorf("-queries must be ≥ 1, got %d", queries)
	}
	var cacheBudget int64
	if o.cacheBudget != "" {
		var err error
		if cacheBudget, err = dnscache.ParseByteSize(o.cacheBudget); err != nil {
			return fmt.Errorf("-cache-budget: %w", err)
		}
	}
	n := netsim.New(time.Now().UnixNano())

	// The shared metrics sink: the proxy's server-side view, also fed by
	// the racing dialer's per-family attempt counters when -he is set.
	tel := telemetry.New()
	var he *dialer.HappyEyeballs
	if o.he {
		he = dialer.New(dialer.Config{
			Resolve: func(ctx context.Context, uhost string) ([]string, []string, error) {
				return []string{"v4." + uhost + ":53"}, []string{"v6." + uhost + ":53"}, nil
			},
			Dial: func(ctx context.Context, addr string) (net.Conn, error) {
				return n.DialContext(ctx, host, addr)
			},
			Stagger:   o.heStagger,
			PreferV6:  true, // lead with v6, as RFC 8305 clients do
			Telemetry: tel,
		})
	}

	// Deploy the upstream recursive resolvers — dual-homed as v4.<host>
	// and v6.<host> when the Happy-Eyeballs dialer races families.
	var (
		poolUps []dnstransport.PoolUpstream
		probes  []dialer.Target
	)
	for i := 0; i < upstreams; i++ {
		uhost := fmt.Sprintf("recursive%d.upstream", i)
		homes := []string{uhost}
		if o.he {
			homes = []string{"v4." + uhost, "v6." + uhost}
		}
		for _, home := range homes {
			n.SetLink(host, home, netsim.Link{Delay: upstreamRTT / 2})
			srv := &dnsserver.Server{Handler: dnsserver.Static(netip.MustParseAddr("192.0.2.1"), 300)}
			run, err := srv.Start(n, home)
			if err != nil {
				return err
			}
			defer run.Close()
		}
		dialConn := func(uhost string) func(ctx context.Context) (net.Conn, error) {
			return func(ctx context.Context) (net.Conn, error) {
				if he != nil {
					return he.DialContext(ctx, uhost)
				}
				return n.DialContext(ctx, host, uhost+":53")
			}
		}(uhost)
		poolUps = append(poolUps, dnstransport.PoolUpstream{Name: uhost, Dial: func(ctx context.Context) (dnstransport.Resolver, error) {
			return dnstransport.NewTCPClient(dialConn), nil
		}})
		if o.bootstrapProbe {
			probes = append(probes, dialer.Target{
				Upstream: uhost,
				Proto:    "tcp",
				Probe: func(ctx context.Context) (time.Duration, error) {
					r := dnstransport.NewTCPClient(dialConn)
					defer r.Close()
					t0 := time.Now()
					resp, err := r.Exchange(ctx, dnswire.NewQuery(0, "probe.bootstrap.invalid.", dnswire.TypeA))
					if err != nil {
						return 0, err
					}
					if resp.RCode != dnswire.RCodeSuccess {
						return 0, fmt.Errorf("probe rcode %v", resp.RCode)
					}
					return time.Since(t0), nil
				},
			})
		}
	}
	var prober *dialer.Prober
	if o.bootstrapProbe {
		prober = &dialer.Prober{Targets: probes}
	}

	// The proxy itself, with its own certificate.
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(host))
	if err != nil {
		return err
	}
	trcfg, err := tracingConfig(o)
	if err != nil {
		return err
	}
	p, err := proxy.New(proxy.Config{
		Upstreams:      poolUps,
		Pool:           dnstransport.PoolConfig{ConnsPerUpstream: conns},
		CacheShards:    shards,
		CacheBudget:    cacheBudget,
		CacheAdmission: o.cacheAdmission,
		Chain:          chain,
		Endpoints:      []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
		Policy:         o.policy,
		HedgeDelay:     o.hedgeDelay,
		ServeStale:     o.serveStale,
		PrefetchWindow: o.prefetch,
		UDPBatch:       o.udpBatch,
		UDPListen:      o.udpListen,
		UDPShards:      o.udpShards,
		Guard:          guardConfig(o),
		Dialer:         he,
		Bootstrap:      prober,
		Telemetry:      tel,
		Tracing:        trcfg,
		Profiling:      o.pprofOn,
	})
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.Start(n, host); err != nil {
		return err
	}
	fmt.Printf("proxy up at %s: udp/tcp :53, dot :853, doh :443 — %d upstream(s) × %d conns, %d cache shards, policy %s\n",
		host, upstreams, conns, shards, o.policy)
	if o.udpBatch > 0 {
		fmt.Printf("udp serving: batched, vector %d\n", o.udpBatch)
	}
	if addr := p.UDPAddr(); addr != nil {
		fmt.Printf("udp real socket: %s (%d shard(s))\n", addr, p.UDPShardCount())
	}

	// The observability plane listens on a real socket so operators can
	// scrape it while the simulated-network workload runs.
	if metricsAddr != "" {
		l, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer l.Close()
		fmt.Printf("observability: curl http://%s/metrics | http://%s/debug/cost\n", l.Addr(), l.Addr())
		if trcfg != nil {
			fmt.Printf("tracing: curl http://%s/debug/trace?min_ms=10\n", l.Addr())
		}
		if o.pprofOn {
			fmt.Printf("profiling: curl http://%s/debug/pprof/\n", l.Addr())
		}
		go http.Serve(l, p.Observability())
	}
	fmt.Println()

	// One client per transport, each on its own source host: the guard
	// budgets per source IP, so sharing one host would let the first leg
	// drain the budget the later legs are measured against.
	pc, err := n.ListenPacket("client-udp:5353")
	if err != nil {
		return err
	}
	clients := []struct {
		name string
		r    dnstransport.Resolver
	}{
		{"udp", dnstransport.NewUDPClient(pc, netsim.Addr(host+":53"))},
		{"tcp", dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client-tcp", host+":53") })},
		{"dot", dnstransport.NewDoTClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client-dot", host+":853") }, chain.ClientConfig(host))},
		{"doh-h2", &dnstransport.DoHClient{
			Dial: func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client-doh", host+":443") },
			TLS:  chain.ClientConfig(host), Persistent: true,
		}},
	}

	fmt.Printf("%-8s %8s %8s %10s %10s %10s\n", "proto", "ok", "limited", "p50", "p95", "qps")
	for _, c := range clients {
		defer c.r.Close()
		var lat []float64
		limited := 0
		start := time.Now()
		for i := 0; i < queries; i++ {
			q := dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("name%d.example.", i%names)), dnswire.TypeA)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			t0 := time.Now()
			resp, err := c.r.Exchange(ctx, q)
			cancel()
			// With the guard armed, over-limit outcomes are legitimate
			// verdicts of the demo workload, not failures: REFUSED
			// (stream rate limit or miss breaker), TC=1 slips, and UDP
			// timeouts from silent drops. Count them; the guard report
			// below itemizes which it was.
			if o.guardOn && (err != nil || resp.RCode == dnswire.RCodeRefused || (resp.Truncated && len(resp.Answers) == 0)) {
				limited++
				continue
			}
			if err != nil {
				return fmt.Errorf("%s query %d: %w", c.name, i, err)
			}
			if resp.RCode != dnswire.RCodeSuccess {
				return fmt.Errorf("%s query %d: rcode %v", c.name, i, resp.RCode)
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		elapsed := time.Since(start)
		cdf := stats.NewCDF(lat)
		fmt.Printf("%-8s %8d %8d %9.2fms %9.2fms %10.0f\n",
			c.name, queries-limited, limited, cdf.Quantile(0.5), cdf.Quantile(0.95),
			float64(queries)/elapsed.Seconds())
	}

	cs := p.CacheStats()
	hitRate := 0.0
	if total := cs.Hits + cs.StaleHits + cs.Misses + cs.Coalesced; total > 0 {
		hitRate = float64(cs.Hits+cs.StaleHits) / float64(total) * 100
	}
	fmt.Printf("\ncache: %d hits / %d stale / %d misses / %d coalesced (%.1f%% hit rate), %d evictions\n",
		cs.Hits, cs.StaleHits, cs.Misses, cs.Coalesced, hitRate, cs.Evictions)
	if cacheBudget > 0 {
		fmt.Printf("cache budget: %d B live of %d B, %d admission rejects, %d arena epochs\n",
			cs.BytesLive, cacheBudget, cs.AdmissionRejects, cs.ArenaEpochs)
	}
	for _, u := range p.UpstreamStats() {
		state := "up"
		if u.Down {
			state = "down"
		}
		fmt.Printf("upstream %-22s %5d exchanges, %d failures, %s\n", u.Name, u.Exchanges, u.Failures, state)
	}
	steering := p.SteeringReport()
	for _, u := range steering.Upstreams {
		fmt.Printf("steer    %-22s srtt %.2fms ±%.2fms, success %.2f (%d samples)\n",
			u.Name, u.SRTTMs, u.RTTVarMs, u.SuccessRate, u.Samples)
	}
	if he != nil {
		for _, h := range he.Report().Hosts {
			fmt.Printf("dialer   %-22s winner %-3s (age %.0fms, %d consecutive fails)\n",
				h.Host, h.Winner, h.WinnerAgeMs, h.Fails)
		}
	}
	if b := p.Bootstrap(); b != nil {
		br := b.Report()
		fmt.Printf("bootstrap: %d sweep(s)\n", br.Sweeps)
		for _, v := range br.Verdicts {
			if v.OK {
				fmt.Printf("probe    %-22s %-4s ok in %.2fms\n", v.Upstream, v.Proto, v.RTTMs)
			} else {
				fmt.Printf("probe    %-22s %-4s FAILED: %s\n", v.Upstream, v.Proto, v.Err)
			}
		}
	}
	if g := p.Guard(); g != nil {
		gr := g.Report()
		fmt.Printf("guard: %d allowed / %d dropped / %d slipped / %d refused (%d breaker), cookies %d issued / %d validated\n",
			gr.Allowed, gr.Drops, gr.Slips, gr.Refusals, gr.BreakerRefusals, gr.CookiesIssued, gr.CookiesValidated)
	}
	if tr := p.Tracer(); tr != nil {
		st := tr.Stats()
		fmt.Printf("trace: %d offered, kept %d errored / %d slow / %d baseline, %d ring-dropped, %d log-dropped\n",
			st.Offered, st.KeptErrored, st.KeptSlow, st.KeptBaseline, st.RingDropped, st.LogDropped)
		fmt.Printf("trace slow thresholds: cache %.2fms, upstream %.2fms, error %.2fms\n",
			st.SlowThresholdMs["cache"], st.SlowThresholdMs["upstream"], st.SlowThresholdMs["error"])
	}

	// Server-side view of the same workload, from the telemetry subsystem:
	// accept-to-response latency per listener transport, and the upstream
	// exchange cost the cache absorbed.
	snap := p.Telemetry().Snapshot()
	fmt.Printf("\ntelemetry (server side):\n")
	fmt.Printf("%-8s %8s %10s %10s %10s\n", "proto", "queries", "p50", "p95", "p99")
	for _, proto := range []string{"udp", "tcp", "dot", "doh"} {
		d := snap.Latency[proto]
		if d == nil {
			continue
		}
		fmt.Printf("%-8s %8d %9.2fms %9.2fms %9.2fms\n", proto, d.Count, d.P50Ms, d.P95Ms, d.P99Ms)
	}
	fmt.Printf("verdicts: ok=%d servfail=%d canceled=%d — upstream: %d exchanges, %d dials, %d B up, %d B down\n",
		snap.Verdicts["ok"], snap.Verdicts["servfail"], snap.Verdicts["canceled"],
		snap.PoolExchanges, snap.PoolDials, snap.UpstreamBytesSent, snap.UpstreamBytesReceived)
	if len(snap.Dials) > 0 {
		for _, fam := range []string{"v4", "v6", "unknown"} {
			d := snap.Dials[fam]
			if d == nil {
				continue
			}
			fmt.Printf("dials %-8s ok=%d error=%d backoff=%d wins=%d\n",
				fam, d["ok"], d["error"], d["backoff"], snap.DialWins[fam])
		}
	}

	if hold > 0 {
		fmt.Printf("\nholding %v for observability scrapes...\n", hold)
		time.Sleep(hold)
	}
	if costJSON {
		out, err := json.MarshalIndent(p.CostReport(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", out)
	}
	return nil
}

// Command dohprobe regenerates the paper's Tables 1 and 2: it deploys the
// nine surveyed DoH providers on the simulated network and probes their
// feature matrices (content types, TLS versions, CT/CAA/OCSP, QUIC, DoT).
//
// Usage:
//
//	dohprobe [-seed N] [-table1] [-table2]
//
// With no table flag, both tables print.
package main

import (
	"flag"
	"fmt"
	"os"

	"dohcost/internal/landscape"
	"dohcost/internal/netsim"
)

func main() {
	seed := flag.Int64("seed", 2019, "simulation seed")
	t1 := flag.Bool("table1", false, "print only Table 1 (provider list)")
	t2 := flag.Bool("table2", false, "print only Table 2 (probed features)")
	flag.Parse()

	providers := landscape.DefaultProviders()
	if *t1 && !*t2 {
		fmt.Print(landscape.RenderTable1(providers))
		return
	}

	n := netsim.New(*seed)
	dep, err := landscape.Deploy(n, providers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohprobe: deploy:", err)
		os.Exit(1)
	}
	defer dep.Close()

	probed, err := landscape.NewProber(dep).ProbeAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohprobe: probe:", err)
		os.Exit(1)
	}
	if !*t2 {
		fmt.Println("Table 1 — compared DoH resolvers")
		fmt.Println()
		fmt.Print(landscape.RenderTable1(providers))
		fmt.Println()
	}
	if !*t1 {
		fmt.Println("Table 2 — probed DoH resolver features")
		fmt.Println()
		fmt.Print(landscape.RenderTable2(probed))
	}
	if diffs := landscape.Diff(landscape.ExpectedTable2(providers), probed); len(diffs) > 0 {
		fmt.Println("\nWARNING: probe deviates from deployed ground truth:")
		for _, d := range diffs {
			fmt.Println("  ", d)
		}
		os.Exit(1)
	}
}

// Command dohbench regenerates the paper's Figure 2: per-query resolution
// times for DNS over UDP, TLS, pipelined HTTP/1.1 and HTTP/2, with and
// without resolver-side delay injection (1 in every 25 queries stalled for
// one second), under Poisson query arrivals.
//
// Usage:
//
//	dohbench [-queries 100] [-rate 10] [-every 25] [-delay 1s] [-seed N]
//	         [-profile 3g] [-series]
//
// The default run matches the paper's parameters and takes roughly
// 8×10 seconds of wall time. -series additionally dumps every (sent-at,
// resolution-time) point as TSV for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dohcost/internal/core"
	"dohcost/internal/netsim"
)

func main() {
	queries := flag.Int("queries", 100, "queries per run")
	rate := flag.Float64("rate", 10, "mean Poisson arrival rate (queries/s)")
	every := flag.Int("every", 25, "delay one in every N queries")
	delay := flag.Duration("delay", time.Second, "injected delay")
	seed := flag.Int64("seed", 2019, "simulation seed")
	series := flag.Bool("series", false, "dump raw per-query series as TSV")
	profile := flag.String("profile", "", "impairment profile on the client access link: "+strings.Join(netsim.ProfileNames(), ", ")+" (empty = ideal)")
	flag.Parse()

	res, err := core.RunFig2(core.Fig2Config{
		Queries: *queries, Rate: *rate, DelayEvery: *every, Delay: *delay, Seed: *seed,
		Profile: *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohbench:", err)
		os.Exit(1)
	}
	fmt.Print(core.RenderFig2(res))
	if *series {
		fmt.Println("\nscenario\ttransport\tsent_s\tresolution_ms")
		for _, sc := range []struct {
			label string
			data  map[string][]core.QuerySample
		}{{"baseline", res.Baseline}, {"delayed", res.Delayed}} {
			for _, tr := range core.Fig2Transports {
				for _, s := range sc.data[tr] {
					fmt.Printf("%s\t%s\t%.3f\t%.3f\n", sc.label, tr,
						s.SentAt.Seconds(), float64(s.Resolution)/float64(time.Millisecond))
				}
			}
		}
	}
}

// Command dohpageload regenerates the paper's Figure 1 (DNS queries per
// page across the ranking) and Figure 6 (cumulative DNS resolution time and
// onload time per page load for local/cloud resolvers over legacy DNS and
// DoH, from the local vantage and from simulated PlanetLab nodes).
//
// Usage:
//
//	dohpageload [-fig1] [-fig1pages 100000] [-pages 200] [-loads 3]
//	            [-planetlab 0] [-workers 16] [-seed N] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dohcost/internal/core"
	"dohcost/internal/stats"
)

func main() {
	fig1Only := flag.Bool("fig1", false, "only Figure 1 (no page loads)")
	fig1Pages := flag.Int("fig1pages", 100000, "ranking depth for Figure 1")
	pages := flag.Int("pages", 200, "pages for the Figure 6 load study (paper: 1000)")
	loads := flag.Int("loads", 3, "loads per page, cold cache")
	planetlab := flag.Int("planetlab", 0, "simulated PlanetLab nodes (paper: 39)")
	workers := flag.Int("workers", 16, "parallel browser instances")
	seed := flag.Int64("seed", 2019, "simulation seed")
	plot := flag.Bool("plot", false, "render ASCII CDF plots")
	flag.Parse()

	f1 := core.RunFig1(core.Fig1Config{Pages: *fig1Pages, Seed: *seed})
	fmt.Print(core.RenderFig1(f1))
	if *fig1Only {
		return
	}
	fmt.Println()

	start := time.Now()
	res, err := core.RunFig6(core.Fig6Config{
		Pages: *pages, Loads: *loads, Seed: *seed, Workers: *workers, PlanetLab: *planetlab,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohpageload:", err)
		os.Exit(1)
	}
	fmt.Print(core.RenderFig6(res))
	fmt.Printf("(%d page loads in %v)\n", (*pages)*(*loads)*len(core.Fig6Configs), time.Since(start).Round(time.Second))

	if *plot {
		dns := map[string][]float64{}
		load := map[string][]float64{}
		for _, s := range res.Local {
			dns[s.Config] = s.DNSms
			load[s.Config] = s.Loadms
		}
		fmt.Println("\nCDF of cumulative DNS time (ms):")
		fmt.Print(stats.ASCIICDF(dns, 72, 16, "ms"))
		fmt.Println("\nCDF of onload time (ms):")
		fmt.Print(stats.ASCIICDF(load, 72, 16, "ms"))
	}
}

//go:build linux && (amd64 || arm64)

// Kernel batch implementation: recvmmsg/sendmmsg through the stdlib
// syscall package (the module deliberately has no dependencies, so the
// mmsghdr layout x/sys/unix would provide is declared here for the 64-bit
// ABIs this file builds on — amd64 and arm64 share it). Batch reads and
// writes go through syscall.RawConn, so a drained socket parks the reader
// on the runtime poller exactly like a blocked ReadFrom would.

package udpio

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// sysIovec is struct iovec on 64-bit Linux.
type sysIovec struct {
	base *byte
	len  uint64
}

// sysMsghdr is struct msghdr on 64-bit Linux (8-byte pointers, size_t
// lengths, explicit padding after the 32-bit fields).
type sysMsghdr struct {
	name       *byte
	namelen    uint32
	_          [4]byte
	iov        *sysIovec
	iovlen     uint64
	control    *byte
	controllen uint64
	flags      int32
	_          [4]byte
}

// sysMmsghdr is struct mmsghdr: one msghdr plus the kernel-written
// received/sent length.
type sysMmsghdr struct {
	hdr sysMsghdr
	len uint32
	_   [4]byte
}

// mmsgVec is one direction's reusable syscall vectors, sized on first use
// and rewritten in place every batch.
type mmsgVec struct {
	hdrs []sysMmsghdr
	iovs []sysIovec
	sas  []syscall.RawSockaddrAny
}

// grow makes the vectors hold at least n messages.
func (v *mmsgVec) grow(n int) {
	if len(v.hdrs) >= n {
		return
	}
	v.hdrs = make([]sysMmsghdr, n)
	v.iovs = make([]sysIovec, n)
	v.sas = make([]syscall.RawSockaddrAny, n)
}

// mmsgConn is the Linux BatchConn over a *net.UDPConn.
type mmsgConn struct {
	c  *net.UDPConn
	rc syscall.RawConn
	// v4 records the socket's address family, fixed at bind: outgoing
	// sockaddrs must match it (an AF_INET6 socket reaches v4 peers via
	// mapped addresses, which ReadBatch surfaces as 16-byte IPs anyway).
	v4 bool

	rmu sync.Mutex
	rv  mmsgVec

	wmu sync.Mutex
	wv  mmsgVec
}

// newMmsgConn wraps uc if its raw descriptor is reachable; ok=false sends
// the caller to the portable fallback.
func newMmsgConn(uc *net.UDPConn) (BatchConn, bool) {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, false
	}
	v4 := true
	if la, ok := uc.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() == nil {
		v4 = false
	}
	return &mmsgConn{c: uc, rc: rc, v4: v4}, true
}

// ReadBatch implements BatchConn with one recvmmsg per wakeup: the call
// parks on the poller while the queue is empty and drains up to len(ms)
// datagrams in a single syscall once it isn't.
func (c *mmsgConn) ReadBatch(ms []Message) (int, error) {
	k := len(ms)
	if k == 0 {
		return 0, nil
	}
	if k > MaxBatch {
		k = MaxBatch
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.rv.grow(k)
	for i := 0; i < k; i++ {
		c.rv.iovs[i] = sysIovec{base: &ms[i].Buf[0], len: uint64(len(ms[i].Buf))}
		c.rv.hdrs[i] = sysMmsghdr{hdr: sysMsghdr{
			name:    (*byte)(unsafe.Pointer(&c.rv.sas[i])),
			namelen: syscall.SizeofSockaddrAny,
			iov:     &c.rv.iovs[i],
			iovlen:  1,
		}}
	}
	var n int
	var rerr error
	err := c.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.rv.hdrs[0])), uintptr(k), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the poller until readable
		}
		if errno != 0 {
			rerr = errno
			return true
		}
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	if rerr != nil {
		return 0, rerr
	}
	for i := 0; i < n; i++ {
		ms[i].N = int(c.rv.hdrs[i].len)
		ms[i].Addr = reuseUDPAddr(&c.rv.sas[i], ms[i].Addr)
	}
	return n, nil
}

// WriteBatch implements BatchConn: every message leaves in as few
// sendmmsg calls as the kernel allows (normally one).
func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	k := len(ms)
	if k == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wv.grow(k)
	for i := 0; i < k; i++ {
		nl, err := c.putSockaddr(&c.wv.sas[i], ms[i].Addr)
		if err != nil {
			return 0, err
		}
		buf := ms[i].Buf[:ms[i].N]
		iov := sysIovec{len: uint64(len(buf))}
		if len(buf) > 0 {
			iov.base = &buf[0]
		}
		c.wv.iovs[i] = iov
		c.wv.hdrs[i] = sysMmsghdr{hdr: sysMsghdr{
			name:    (*byte)(unsafe.Pointer(&c.wv.sas[i])),
			namelen: nl,
			iov:     &c.wv.iovs[i],
			iovlen:  1,
		}}
	}
	sent := 0
	for sent < k {
		var n int
		var serr error
		err := c.rc.Write(func(fd uintptr) bool {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&c.wv.hdrs[sent])), uintptr(k-sent), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false
			}
			if errno != 0 {
				serr = errno
				return true
			}
			n = int(r1)
			return true
		})
		if err != nil {
			return sent, err
		}
		if serr != nil {
			return sent, serr
		}
		sent += n
	}
	return sent, nil
}

// WriteTo implements BatchConn for single slow-path responses.
func (c *mmsgConn) WriteTo(b []byte, addr net.Addr) (int, error) { return c.c.WriteTo(b, addr) }

// LocalAddr implements BatchConn.
func (c *mmsgConn) LocalAddr() net.Addr { return c.c.LocalAddr() }

// SetReadDeadline implements BatchConn; RawConn.Read honors it.
func (c *mmsgConn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// Close implements BatchConn.
func (c *mmsgConn) Close() error { return c.c.Close() }

// Batched implements BatchConn: reads and writes are vector syscalls.
func (c *mmsgConn) Batched() bool { return true }

// errAddrFamily reports a write destination the socket's family cannot
// express.
var errAddrFamily = errors.New("udpio: destination address family does not match socket")

// reuseUDPAddr converts a kernel sockaddr to *net.UDPAddr, rewriting prev
// in place when it is already a reusable UDPAddr — the steady state of a
// serving loop's read vector, which therefore allocates no addresses.
func reuseUDPAddr(sa *syscall.RawSockaddrAny, prev net.Addr) net.Addr {
	ua, _ := prev.(*net.UDPAddr)
	if ua == nil || cap(ua.IP) < 16 {
		ua = &net.UDPAddr{IP: make(net.IP, 0, 16)}
	}
	ua.Zone = ""
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		ua.IP = append(ua.IP[:0], sa4.Addr[:]...)
		ua.Port = ntohs(sa4.Port)
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		ua.IP = append(ua.IP[:0], sa6.Addr[:]...)
		ua.Port = ntohs(sa6.Port)
		if sa6.Scope_id != 0 {
			// Numeric zones round-trip through putSockaddr without an
			// interface-name lookup on the hot path.
			ua.Zone = strconv.FormatUint(uint64(sa6.Scope_id), 10)
		}
	}
	return ua
}

// putSockaddr renders addr into sa in the socket's address family and
// returns the sockaddr length.
func (c *mmsgConn) putSockaddr(sa *syscall.RawSockaddrAny, addr net.Addr) (uint32, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, errAddrFamily
	}
	if c.v4 {
		ip4 := ua.IP.To4()
		if ip4 == nil {
			return 0, errAddrFamily
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: htons(ua.Port)}
		copy(sa4.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	ip16 := ua.IP.To16()
	if ip16 == nil {
		return 0, errAddrFamily
	}
	sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
	*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: htons(ua.Port)}
	copy(sa6.Addr[:], ip16)
	if ua.Zone != "" {
		if sc, err := strconv.ParseUint(ua.Zone, 10, 32); err == nil {
			sa6.Scope_id = uint32(sc)
		}
	}
	return syscall.SizeofSockaddrInet6, nil
}

// htons converts a host-order port to a uint16 whose in-memory bytes are
// network order — what the raw sockaddr structs carry.
func htons(port int) uint16 {
	var v uint16
	b := (*[2]byte)(unsafe.Pointer(&v))
	b[0], b[1] = byte(port>>8), byte(port)
	return v
}

// ntohs converts the raw sockaddr port field back to host order.
func ntohs(port uint16) int {
	b := (*[2]byte)(unsafe.Pointer(&port))
	return int(b[0])<<8 | int(b[1])
}

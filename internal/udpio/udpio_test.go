package udpio

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// echoBatch runs a batch server over conn: every received datagram is
// echoed back with a one-byte "ok:" prefix via WriteBatch.
func echoBatch(t *testing.T, conn BatchConn, done chan struct{}) {
	t.Helper()
	ms := make([]Message, MaxBatch)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048)
	}
	out := make([]Message, MaxBatch)
	for i := range out {
		out[i].Buf = make([]byte, 2048)
	}
	go func() {
		defer close(done)
		for {
			n, err := conn.ReadBatch(ms)
			if err != nil {
				return
			}
			for i := 0; i < n; i++ {
				out[i].N = ms[i].N + 1
				out[i].Buf[0] = '+'
				copy(out[i].Buf[1:], ms[i].Buf[:ms[i].N])
				out[i].Addr = ms[i].Addr
			}
			if _, err := conn.WriteBatch(out[:n]); err != nil {
				t.Errorf("WriteBatch: %v", err)
				return
			}
		}
	}()
}

// runEcho drives k datagrams through a batch echo server on conn and
// verifies every payload comes back intact and prefixed.
func runEcho(t *testing.T, conn BatchConn, k int) {
	t.Helper()
	done := make(chan struct{})
	echoBatch(t, conn, done)

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	want := map[string]bool{}
	for i := 0; i < k; i++ {
		msg := fmt.Sprintf("datagram-%03d", i)
		if _, err := client.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		want["+"+msg] = true
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	for len(want) > 0 {
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("echo read with %d replies outstanding: %v", len(want), err)
		}
		got := string(buf[:n])
		if !want[got] {
			t.Fatalf("unexpected or duplicate reply %q", got)
		}
		delete(want, got)
	}
	conn.Close()
	<-done
}

func TestWrapKernelBatchRoundTrip(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn := Wrap(pc)
	if runtime.GOOS == "linux" && (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") && !conn.Batched() {
		t.Fatal("Wrap of a *net.UDPConn on linux should be kernel-batched")
	}
	runEcho(t, conn, 100)
}

func TestFallbackRoundTrip(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn := BatchConn(&fallbackConn{pc: pc})
	if conn.Batched() {
		t.Fatal("fallbackConn claims to be batched")
	}
	runEcho(t, conn, 100)
}

func TestReadBatchCollectsMultiple(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn := Wrap(pc)
	defer conn.Close()
	if !conn.Batched() {
		t.Skip("no kernel batch support on this platform")
	}
	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const k = 16
	for i := 0; i < k; i++ {
		if _, err := client.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ms := make([]Message, MaxBatch)
	for i := range ms {
		ms[i].Buf = make([]byte, 64)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := 0
	reads := 0
	seen := map[byte]bool{}
	for got < k {
		n, err := conn.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", got, err)
		}
		reads++
		for i := 0; i < n; i++ {
			if ms[i].N != 1 {
				t.Fatalf("datagram length = %d, want 1", ms[i].N)
			}
			if seen[ms[i].Buf[0]] {
				t.Fatalf("duplicate datagram %d", ms[i].Buf[0])
			}
			seen[ms[i].Buf[0]] = true
			if ua, ok := ms[i].Addr.(*net.UDPAddr); !ok || ua.Port == 0 {
				t.Fatalf("source address not a usable UDPAddr: %v", ms[i].Addr)
			}
		}
		got += n
	}
	// The datagrams were all queued before the first read; recvmmsg should
	// have needed far fewer wakeups than datagrams.
	if reads == k {
		t.Logf("note: %d reads for %d datagrams (no batching observed; scheduling-dependent)", reads, k)
	}
}

func TestCloneAddrDetachesFromReadVector(t *testing.T) {
	orig := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 1).To4(), Port: 1234}
	clone := CloneAddr(orig).(*net.UDPAddr)
	orig.IP[0] = 99
	orig.Port = 4321
	if clone.Port != 1234 || clone.IP.String() != "192.0.2.1" {
		t.Fatalf("clone mutated with original: %v", clone)
	}
}

func TestListenShards(t *testing.T) {
	conns, err := ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if reusePortSupported {
		if len(conns) != 4 {
			t.Fatalf("got %d shards, want 4", len(conns))
		}
	} else if len(conns) != 1 {
		t.Fatalf("got %d shards, want 1 without SO_REUSEPORT", len(conns))
	}
	port := conns[0].LocalAddr().(*net.UDPAddr).Port
	for i, c := range conns {
		if p := c.LocalAddr().(*net.UDPAddr).Port; p != port {
			t.Fatalf("shard %d bound port %d, shard 0 bound %d", i, p, port)
		}
	}

	// Every datagram sent to the shared port must arrive at exactly one
	// shard: drain all shards and count.
	const sent = 200
	for i := 0; i < sent; i++ {
		// Distinct source sockets spread flows across the reuseport hash.
		c, err := net.Dial("udp", conns[0].LocalAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	ms := make([]Message, MaxBatch)
	for i := range ms {
		ms[i].Buf = make([]byte, 64)
	}
	for got < sent && time.Now().Before(deadline) {
		for _, c := range conns {
			c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, err := c.ReadBatch(ms)
			if err != nil {
				continue // deadline: this shard is drained for now
			}
			got += n
		}
	}
	if got != sent {
		t.Fatalf("shards received %d datagrams, sent %d", got, sent)
	}
}

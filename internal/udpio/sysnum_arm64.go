//go:build linux && arm64

package udpio

// arm64 syscall numbers for the mmsg pair (asm-generic table); pinned
// here for symmetry with amd64, where the stdlib table lacks sendmmsg.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)

//go:build !linux

package udpio

import "syscall"

// reusePortSupported: off this branch ListenShards clamps to one socket —
// SO_REUSEPORT numbering and semantics vary per platform, and the
// portable build only promises correctness, not sharding.
const reusePortSupported = false

// reusePortControl is unused when reusePortSupported is false; it exists
// so the portable ListenShards compiles unchanged.
func reusePortControl(network, address string, c syscall.RawConn) error { return nil }

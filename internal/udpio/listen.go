package udpio

import (
	"context"
	"fmt"
	"net"
	"runtime"
)

// ListenShards opens shards UDP sockets bound to the same address with
// SO_REUSEPORT, so the kernel hashes incoming flows across them and each
// shard's reader drains a private receive queue — no cross-CPU contention
// on one socket lock, the standard layout for 1M+ qps UDP serving.
//
// shards ≤ 0 means one per CPU (GOMAXPROCS). On platforms without
// SO_REUSEPORT support the count is clamped to a single socket, so callers
// can treat the returned slice's length as the effective shard count.
// Each returned conn is Wrapped: kernel-batched where supported, the
// per-packet fallback otherwise.
func ListenShards(network, addr string, shards int) ([]BatchConn, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if !reusePortSupported {
		shards = 1
	}
	lc := net.ListenConfig{}
	if shards > 1 {
		lc.Control = reusePortControl
	}
	conns := make([]BatchConn, 0, shards)
	for i := 0; i < shards; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("udpio: shard %d: %w", i, err)
		}
		if i == 0 {
			// Later shards bind the concrete port the first one got, so
			// ":0" requests end up sharing one ephemeral port.
			addr = pc.LocalAddr().String()
		}
		conns = append(conns, Wrap(pc))
	}
	return conns, nil
}

//go:build linux && amd64

package udpio

// x86-64 syscall numbers for the mmsg pair. The stdlib syscall table on
// this arch predates sendmmsg, so both are pinned here; Linux syscall
// numbers are a stable ABI.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)

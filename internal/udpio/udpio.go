// Package udpio is the kernel-assisted batched UDP I/O layer beneath the
// serving fast path: where net.PacketConn costs one syscall per datagram,
// a BatchConn moves up to MaxBatch datagrams per syscall via recvmmsg and
// sendmmsg, and ListenShards opens one SO_REUSEPORT socket per CPU so
// concurrent readers never contend on a single kernel receive queue.
//
// The package has two implementations behind one interface:
//
//   - On Linux (64-bit), Wrap of a *net.UDPConn returns a conn whose
//     ReadBatch/WriteBatch are real recvmmsg/sendmmsg vector syscalls,
//     integrated with the runtime poller through syscall.RawConn so a
//     blocked batch read parks the goroutine instead of spinning.
//   - Everywhere else — other platforms, netsim conns, tests — Wrap
//     returns a per-packet fallback that loops ReadFrom/WriteTo under the
//     same interface, so serving code written against BatchConn runs
//     unchanged (and is proven byte-identical by the equivalence test in
//     internal/dnsserver).
//
// The caller owns every buffer: Message.Buf is filled in place on reads
// and transmitted in place on writes, so a serving loop with pooled
// buffers stays allocation-free across batches.
package udpio

import (
	"net"
	"time"
)

// MaxBatch caps how many datagrams one ReadBatch or WriteBatch call may
// carry. 64 messages × the linux UDP default rmem fits comfortably, and
// beyond this the per-syscall amortization curve is flat.
const MaxBatch = 64

// Message is one datagram travelling through a batch call. On reads the
// implementation fills Buf in place, sets N to the datagram length and
// Addr to the source; on writes it transmits Buf[:N] to Addr.
//
// Batch implementations may reuse the Addr value (a *net.UDPAddr rewritten
// in place) across ReadBatch calls on the same Message slot — a caller
// handing an address to a goroutine that outlives the next ReadBatch must
// CloneAddr it first.
type Message struct {
	// Buf is the datagram payload storage, owned by the caller.
	Buf []byte
	// N is the payload length within Buf.
	N int
	// Addr is the datagram's source (reads) or destination (writes).
	Addr net.Addr
}

// BatchConn is a datagram endpoint with vectored I/O. One ReadBatch call
// blocks until at least one datagram is available and returns as many as
// the kernel had queued (up to len(ms)); one WriteBatch call transmits
// every message it is given. Reads and writes may run concurrently with
// each other and WriteTo may be called from many goroutines, but ReadBatch
// and WriteBatch themselves are each single-caller (the serving loop gives
// every shard one reader and flushes its own batches).
type BatchConn interface {
	// ReadBatch fills ms with received datagrams and returns how many.
	ReadBatch(ms []Message) (int, error)
	// WriteBatch transmits every message and returns how many were sent;
	// a short count is always accompanied by the error that stopped it.
	WriteBatch(ms []Message) (int, error)
	// WriteTo sends one datagram outside any batch — the slow-path escape
	// hatch for responses produced asynchronously.
	WriteTo(b []byte, addr net.Addr) (int, error)
	// LocalAddr returns the bound address.
	LocalAddr() net.Addr
	// SetReadDeadline bounds blocked ReadBatch calls.
	SetReadDeadline(t time.Time) error
	// Close releases the endpoint; blocked calls return net.ErrClosed.
	Close() error
	// Batched reports whether reads and writes are true kernel vector
	// syscalls (false for the per-packet fallback).
	Batched() bool
}

// Wrap adapts any net.PacketConn to BatchConn: a *net.UDPConn on a
// platform with recvmmsg/sendmmsg support gets the kernel batch
// implementation, everything else the per-packet fallback.
func Wrap(pc net.PacketConn) BatchConn {
	if uc, ok := pc.(*net.UDPConn); ok {
		if bc, ok := newMmsgConn(uc); ok {
			return bc
		}
	}
	return &fallbackConn{pc: pc}
}

// CloneAddr returns a copy of addr safe to retain after the Message slot
// it came from is reused by a later ReadBatch. Address types other than
// *net.UDPAddr are returned as-is: only the kernel batch implementation
// rewrites addresses in place, and it always produces *net.UDPAddr.
func CloneAddr(addr net.Addr) net.Addr {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return addr
	}
	c := &net.UDPAddr{Port: ua.Port, Zone: ua.Zone, IP: make(net.IP, len(ua.IP))}
	copy(c.IP, ua.IP)
	return c
}

// fallbackConn is the portable BatchConn: one datagram per syscall under
// the batch interface. ReadBatch returns after a single ReadFrom so a
// lightly loaded serve loop keeps per-packet latency; WriteBatch loops.
type fallbackConn struct {
	pc net.PacketConn
}

// ReadBatch implements BatchConn by reading exactly one datagram.
func (f *fallbackConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := f.pc.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N, ms[0].Addr = n, addr
	return 1, nil
}

// WriteBatch implements BatchConn by looping WriteTo.
func (f *fallbackConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := f.pc.WriteTo(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

// WriteTo implements BatchConn.
func (f *fallbackConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	return f.pc.WriteTo(b, addr)
}

// LocalAddr implements BatchConn.
func (f *fallbackConn) LocalAddr() net.Addr { return f.pc.LocalAddr() }

// SetReadDeadline implements BatchConn.
func (f *fallbackConn) SetReadDeadline(t time.Time) error { return f.pc.SetReadDeadline(t) }

// Close implements BatchConn.
func (f *fallbackConn) Close() error { return f.pc.Close() }

// Batched implements BatchConn: the fallback is per-packet.
func (f *fallbackConn) Batched() bool { return false }

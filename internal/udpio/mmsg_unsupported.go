//go:build !linux || !(amd64 || arm64)

package udpio

import "net"

// newMmsgConn on platforms without the recvmmsg/sendmmsg fast path: ok is
// always false and Wrap falls back to per-packet I/O.
func newMmsgConn(uc *net.UDPConn) (BatchConn, bool) { return nil, false }

//go:build linux

package udpio

import "syscall"

// soReusePort is SO_REUSEPORT, which the stdlib syscall package does not
// export on Linux (it predates the option). The value is uapi-stable.
const soReusePort = 0xf

// reusePortSupported reports that ListenShards can open true sharded
// sockets on this platform.
const reusePortSupported = true

// reusePortControl sets SO_REUSEPORT on the socket before bind, the
// prerequisite for several sockets sharing one port with kernel-side flow
// hashing.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

package guard

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dohcost/internal/telemetry"
)

// fakeClock is a hand-advanced clock for deterministic guard tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// packQuery builds a minimal packed DNS query for name; cookieData, when
// non-nil, rides in an EDNS COOKIE option.
func packQuery(t testing.TB, name string, cookieData []byte) []byte {
	t.Helper()
	w := make([]byte, 0, 128)
	w = binary.BigEndian.AppendUint16(w, 0x1234) // ID
	w = binary.BigEndian.AppendUint16(w, 0x0100) // RD
	w = binary.BigEndian.AppendUint16(w, 1)      // QDCOUNT
	w = binary.BigEndian.AppendUint16(w, 0)
	w = binary.BigEndian.AppendUint16(w, 0)
	ar := uint16(0)
	if cookieData != nil {
		ar = 1
	}
	w = binary.BigEndian.AppendUint16(w, ar)
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			if i == start {
				t.Fatalf("empty label in %q", name)
			}
			w = append(w, byte(i-start))
			w = append(w, name[start:i]...)
			start = i + 1
		}
	}
	w = append(w, 0)                        // root
	w = binary.BigEndian.AppendUint16(w, 1) // TYPE A
	w = binary.BigEndian.AppendUint16(w, 1) // CLASS IN
	if cookieData != nil {
		w = append(w, 0)                         // OPT root name
		w = binary.BigEndian.AppendUint16(w, 41) // TYPE OPT
		w = binary.BigEndian.AppendUint16(w, 1232)
		w = append(w, 0, 0, 0, 0) // TTL
		w = binary.BigEndian.AppendUint16(w, uint16(4+len(cookieData)))
		w = binary.BigEndian.AppendUint16(w, EDNS0CookieCode)
		w = binary.BigEndian.AppendUint16(w, uint16(len(cookieData)))
		w = append(w, cookieData...)
	}
	return w
}

func TestBucketAllowsBurstThenSlips(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{ClientQPS: 10, Burst: 5, SlipEvery: 2, Now: clk.Now}, nil)
	q := packQuery(t, "example.com", nil)
	key := uint64(42)
	for i := 0; i < 5; i++ {
		if a := g.CheckUDP(key, q); a != ActionAllow {
			t.Fatalf("query %d: got %v, want allow", i, a)
		}
	}
	// Limited responses alternate drop, slip, drop, slip (SlipEvery=2).
	want := []Action{ActionDrop, ActionSlip, ActionDrop, ActionSlip}
	for i, w := range want {
		if a := g.CheckUDP(key, q); a != w {
			t.Fatalf("limited query %d: got %v, want %v", i, a, w)
		}
	}
	r := g.Report()
	if r.Allowed != 5 || r.Drops != 2 || r.Slips != 2 {
		t.Fatalf("report = %+v, want 5 allowed / 2 drops / 2 slips", r)
	}
}

func TestBucketRefills(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{ClientQPS: 10, Burst: 5, Now: clk.Now}, nil)
	q := packQuery(t, "example.com", nil)
	key := uint64(7)
	for i := 0; i < 5; i++ {
		g.CheckUDP(key, q)
	}
	if a := g.CheckUDP(key, q); a == ActionAllow {
		t.Fatal("bucket should be empty")
	}
	clk.Advance(500 * time.Millisecond) // 10 QPS × 0.5 s = 5 tokens
	allowed := 0
	for i := 0; i < 10; i++ {
		if g.CheckUDP(key, q) == ActionAllow {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("after 500ms refill got %d allowed, want 5", allowed)
	}
}

func TestStreamRefusesInsteadOfDropping(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{ClientQPS: 10, Burst: 2, Now: clk.Now}, nil)
	key := uint64(9)
	if a := g.CheckStream(key); a != ActionAllow {
		t.Fatalf("first stream query: %v", a)
	}
	g.CheckStream(key)
	if a := g.CheckStream(key); a != ActionRefuse {
		t.Fatalf("over-limit stream query: got %v, want refuse", a)
	}
}

func TestCookieHandshakeBypassesRateLimit(t *testing.T) {
	clk := newFakeClock()
	tel := telemetry.New()
	g := New(Config{ClientQPS: 1, Burst: 1, SlipEvery: 1, CookieSecret: 0xfeed, Now: clk.Now}, tel)
	key := ClientKey(&net.UDPAddr{IP: net.IPv4(192, 0, 2, 1), Port: 5353})

	cc := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	q := packQuery(t, "example.com", cc) // client cookie only
	if a := g.CheckUDP(key, q); a != ActionAllow {
		t.Fatalf("first query: %v", a)
	}
	// Bucket now empty; the slip response teaches the client its cookie.
	if a := g.CheckUDP(key, q); a != ActionSlip {
		t.Fatal("expected slip")
	}
	resp, ok := g.AppendLimited(nil, q, key, ActionSlip)
	if !ok {
		t.Fatal("AppendLimited failed")
	}
	rcc, rsc, ok := cookieOption(resp)
	if !ok || len(rsc) != serverCookieLen || string(rcc) != string(cc) {
		t.Fatalf("slip response cookie: ok=%v cc=%x sc=%x", ok, rcc, rsc)
	}
	// Replaying with the issued server cookie bypasses the empty bucket.
	full := append(append([]byte{}, cc...), rsc...)
	q2 := packQuery(t, "example.com", full)
	for i := 0; i < 10; i++ {
		if a := g.CheckUDP(key, q2); a != ActionAllow {
			t.Fatalf("cookie-validated query %d: got %v", i, a)
		}
	}
	if r := g.Report(); r.CookiesValidated != 10 || r.CookiesIssued != 1 {
		t.Fatalf("report = %+v", r)
	}
	snap := tel.Snapshot()
	if snap.GuardCookiesValidated != 10 || snap.GuardCookiesIssued != 1 || snap.GuardSlips != 1 {
		t.Fatalf("telemetry = validated %d issued %d slips %d",
			snap.GuardCookiesValidated, snap.GuardCookiesIssued, snap.GuardSlips)
	}
}

func TestCookieRejections(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{CookieSecret: 0xfeed, CookieRotation: time.Hour, Now: clk.Now}, nil)
	key := uint64(1111)
	cc := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	sc := g.appendServerCookie(nil, cc, key, clk.Now())[clientCookieLen:]

	if !g.validCookie(cc, sc, key, clk.Now()) {
		t.Fatal("fresh cookie should validate")
	}
	if g.validCookie(cc, sc, key+1, clk.Now()) {
		t.Fatal("cookie bound to another client key validated")
	}
	tampered := append([]byte{}, sc...)
	tampered[serverCookieLen-1] ^= 1
	if g.validCookie(cc, tampered, key, clk.Now()) {
		t.Fatal("tampered hash validated")
	}
	cc2 := []byte{8, 8, 8, 8, 8, 8, 8, 8}
	if g.validCookie(cc2, sc, key, clk.Now()) {
		t.Fatal("cookie for a different client cookie validated")
	}
	// Valid across one rotation (the epoch the timestamp names), dead
	// after two.
	clk.Advance(90 * time.Minute)
	if !g.validCookie(cc, sc, key, clk.Now()) {
		t.Fatal("cookie should survive one rotation")
	}
	clk.Advance(90 * time.Minute)
	if g.validCookie(cc, sc, key, clk.Now()) {
		t.Fatal("cookie older than two rotations validated")
	}
	// Future-dated beyond clock skew.
	future := g.appendServerCookie(nil, cc, key, clk.Now().Add(10*time.Minute))[clientCookieLen:]
	if g.validCookie(cc, future, key, clk.Now()) {
		t.Fatal("future-dated cookie validated")
	}
}

func TestBreakerPerClientAndCeiling(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{MissRate: 5, MissHalfLife: time.Second, MaxInflightMiss: 3, Now: clk.Now}, nil)
	ctx := NewContext(context.Background(), 77)

	// Per-client: threshold = 5 × 1 / ln2 ≈ 7.2, so the 8th rapid miss
	// trips; each admitted miss is released immediately here.
	trippedAt := 0
	for i := 1; i <= 20; i++ {
		err := g.AdmitMiss(ctx)
		if err == nil {
			g.MissDone()
			continue
		}
		if !errors.Is(err, ErrMissBudget) {
			t.Fatalf("unexpected error %v", err)
		}
		trippedAt = i
		break
	}
	if trippedAt != 8 {
		t.Fatalf("breaker tripped at miss %d, want 8", trippedAt)
	}
	// Decay forgives: after a quiet spell the client is admitted again.
	clk.Advance(10 * time.Second)
	if err := g.AdmitMiss(ctx); err != nil {
		t.Fatalf("after decay: %v", err)
	}
	g.MissDone()

	// Global ceiling applies even without a client key (background work).
	bg := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.AdmitMiss(bg); err != nil {
			t.Fatalf("inflight %d: %v", i, err)
		}
	}
	if err := g.AdmitMiss(bg); !errors.Is(err, ErrMissBudget) {
		t.Fatalf("over-ceiling admit: %v", err)
	}
	g.MissDone()
	if err := g.AdmitMiss(bg); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if r := g.Report(); r.InflightMisses != 3 || r.BreakerRefusals != 2 {
		t.Fatalf("report = %+v", r)
	}
}

func TestAppendLimitedShapes(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{Now: clk.Now}, nil)
	q := packQuery(t, "www.example.com", nil)

	slip, ok := g.AppendLimited(nil, q, 5, ActionSlip)
	if !ok {
		t.Fatal("slip synthesis failed")
	}
	if got, want := binary.BigEndian.Uint16(slip), uint16(0x1234); got != want {
		t.Fatalf("ID %#x, want %#x", got, want)
	}
	flags := binary.BigEndian.Uint16(slip[2:])
	if flags&(1<<15) == 0 || flags&(1<<9) == 0 || flags&0xF != 0 {
		t.Fatalf("slip flags %#x: want QR, TC, NOERROR", flags)
	}
	if flags&(1<<8) == 0 {
		t.Fatalf("slip flags %#x: RD not preserved", flags)
	}
	if qd, an, ns, ar := binary.BigEndian.Uint16(slip[4:]), binary.BigEndian.Uint16(slip[6:]),
		binary.BigEndian.Uint16(slip[8:]), binary.BigEndian.Uint16(slip[10:]); qd != 1 || an != 0 || ns != 0 || ar != 0 {
		t.Fatalf("slip counts %d/%d/%d/%d", qd, an, ns, ar)
	}
	qend, _ := questionEnd(q)
	if len(slip) != qend {
		t.Fatalf("slip length %d, want question echo %d", len(slip), qend)
	}

	refuse, ok := g.AppendLimited(nil, q, 5, ActionRefuse)
	if !ok {
		t.Fatal("refuse synthesis failed")
	}
	if flags := binary.BigEndian.Uint16(refuse[2:]); flags&0xF != 5 || flags&(1<<9) != 0 {
		t.Fatalf("refuse flags %#x: want REFUSED, no TC", flags)
	}

	// Malformed queries are un-echoable: drop instead.
	for _, bad := range [][]byte{nil, {1, 2, 3}, q[:11], q[:14]} {
		if _, ok := g.AppendLimited(nil, bad, 5, ActionSlip); ok {
			t.Fatalf("AppendLimited accepted malformed query %x", bad)
		}
	}
}

func TestClientKeyIdentity(t *testing.T) {
	u1 := ClientKey(&net.UDPAddr{IP: net.IPv4(203, 0, 113, 9), Port: 1111})
	u2 := ClientKey(&net.UDPAddr{IP: net.IPv4(203, 0, 113, 9), Port: 2222})
	tc := ClientKey(&net.TCPAddr{IP: net.IPv4(203, 0, 113, 9), Port: 3333})
	if u1 != u2 || u1 != tc {
		t.Fatal("same host should share one key across ports and transports")
	}
	other := ClientKey(&net.UDPAddr{IP: net.IPv4(203, 0, 113, 10), Port: 1111})
	if other == u1 {
		t.Fatal("distinct hosts collided")
	}
	s1 := ClientKey(strAddr("c3:5353"))
	s2 := ClientKey(strAddr("c3:9999"))
	s3 := ClientKey(strAddr("c4:5353"))
	if s1 != s2 || s1 == s3 {
		t.Fatalf("string addr keys: %x %x %x", s1, s2, s3)
	}
}

// strAddr mimics netsim's string-backed net.Addr.
type strAddr string

func (a strAddr) Network() string { return "sim" }
func (a strAddr) String() string  { return string(a) }

// TestTokensConservation is the bucket-invariant property test: however
// many goroutines hammer however many clients, with refills racing checks,
// no slot ever exceeds its burst, so the table-wide token sum stays within
// touched-slots × burst. Run with -race for the aliasing coverage.
func TestTokensConservation(t *testing.T) {
	clk := newFakeClock()
	const burst = 10
	g := New(Config{ClientQPS: 1000, Burst: burst, Shards: 4, Slots: 64, Now: clk.Now}, nil)
	q := packQuery(t, "example.com", nil)

	const goroutines = 8
	const keysPerG = 16
	stop := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() { // refills race the checks
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(time.Millisecond)
			}
		}
	}()
	touched := make(map[[2]int]bool)
	var touchedMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for iter := 0; iter < 500; iter++ {
				key := base*keysPerG + uint64(iter%keysPerG)
				g.CheckUDP(key, q)
				g.chargeMiss(key, clk.Now().UnixNano())
				shardIdx := int(key & uint64(len(g.shards)-1))
				slotIdx := int((key >> 20) & uint64(len(g.shards[0].slots)-1))
				touchedMu.Lock()
				touched[[2]int{shardIdx, slotIdx}] = true
				touchedMu.Unlock()
			}
		}(uint64(i))
	}
	wg.Wait()
	close(stop)
	clockWG.Wait()

	sums := g.tokensSnapshot()
	total := 0.0
	for _, s := range sums {
		total += s
	}
	if limit := float64(len(touched)) * burst; total > limit+1e-6 {
		t.Fatalf("token sum %.2f exceeds touched-slots×burst %.2f", total, limit)
	}
	perShardSlots := len(g.shards[0].slots)
	for i, s := range sums {
		if lim := float64(perShardSlots) * burst; s > lim+1e-6 {
			t.Fatalf("shard %d sum %.2f exceeds slots×burst %.2f", i, s, lim)
		}
	}
}

func TestNilGuardAllowsEverything(t *testing.T) {
	var g *Guard
	q := packQuery(t, "example.com", nil)
	if a := g.CheckUDP(1, q); a != ActionAllow {
		t.Fatal("nil guard dropped")
	}
	if a := g.CheckStream(1); a != ActionAllow {
		t.Fatal("nil guard refused")
	}
	if err := g.AdmitMiss(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.MissDone()
	if _, ok := g.AppendLimited(nil, q, 1, ActionSlip); ok {
		t.Fatal("nil guard synthesized a response")
	}
	if _, ok := g.ServerCookie(nil, q, 1); ok {
		t.Fatal("nil guard issued a cookie")
	}
	if r := g.Report(); r != (Report{}) {
		t.Fatalf("nil guard report %+v", r)
	}
}

// TestAllowPathZeroAlloc pins the tentpole's hot-path contract: admitting a
// query — with or without a cookie to validate — allocates nothing, so the
// guard does not cost the wire fast path its 0-alloc cache hit.
func TestAllowPathZeroAlloc(t *testing.T) {
	tel := telemetry.New()
	g := New(Config{ClientQPS: 1e9, Burst: 1 << 20, CookieSecret: 0xfeed}, tel)
	plain := packQuery(t, "example.com", nil)
	key := uint64(1234)
	cc := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	full := g.appendServerCookie(append([]byte{}, cc...), cc, key, time.Now())
	cookied := packQuery(t, "example.com", full)

	if n := testing.AllocsPerRun(200, func() { g.CheckUDP(key, plain) }); n != 0 {
		t.Fatalf("plain allow path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.CheckUDP(key, cookied) }); n != 0 {
		t.Fatalf("cookie-validated allow path allocates %.1f/op", n)
	}
}

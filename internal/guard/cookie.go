package guard

import (
	"encoding/binary"
	"time"
)

// DNS cookies (RFC 7873) separate clients that can receive our responses
// from spoofed sources that cannot. A client sends an 8-byte client cookie;
// the server answers with a server cookie only the true owner of the source
// address ever sees, because it travels in a response to that address. A
// later query presenting a valid server cookie has proven its return path,
// and the guard exempts it from the UDP rate limits — the RFC's intended
// split between "real client behind a shared IP" and "spoofed reflection
// source".
//
// The server cookie uses the RFC 9018 interoperable layout: one byte of
// version (1), three reserved zero bytes, a four-byte unix timestamp, and
// an eight-byte SipHash-2-4 over (client cookie, version|timestamp, client
// key) under a per-epoch secret. Epochs rotate every CookieRotation: a
// cookie is validated against the secret of the epoch its own timestamp
// names, so cookies stay valid across one rotation and a stolen secret
// ages out.

// EDNS0CookieCode is the EDNS(0) option code for COOKIE (RFC 7873).
const EDNS0CookieCode = 10

// Cookie length bounds from RFC 7873: the client part is exactly 8 octets;
// a server part, when present, is 8 to 32.
const (
	clientCookieLen = 8
	serverCookieLen = 16 // our fixed RFC 9018-shaped server part
	fullCookieLen   = clientCookieLen + serverCookieLen
)

// cookieClockSkew is how far into the future a cookie timestamp may sit
// before validation rejects it (client/server clock disagreement bound).
const cookieClockSkew = 5 * time.Minute

// dnsHeaderLen is the fixed DNS message header size.
const dnsHeaderLen = 12

// skipName advances past the (possibly compressed) name at off, returning
// the offset just after it, or ok=false when the bytes run out. It never
// follows pointers — for skipping, a pointer ends the name.
func skipName(wire []byte, off int) (int, bool) {
	for {
		if off >= len(wire) {
			return 0, false
		}
		b := wire[off]
		switch {
		case b == 0:
			return off + 1, true
		case b&0xC0 == 0xC0:
			if off+2 > len(wire) {
				return 0, false
			}
			return off + 2, true
		case b&0xC0 != 0:
			return 0, false
		default:
			off += 1 + int(b)
		}
	}
}

// questionEnd returns the offset just past the first question of a packed
// query — the prefix a slip/refuse response echoes back. ok=false when the
// message is too short, has no question, or the question is malformed.
func questionEnd(wire []byte) (int, bool) {
	if len(wire) < dnsHeaderLen || binary.BigEndian.Uint16(wire[4:]) == 0 {
		return 0, false
	}
	off, ok := skipName(wire, dnsHeaderLen)
	if !ok || off+4 > len(wire) {
		return 0, false
	}
	return off + 4, true
}

// cookieOption scans a packed DNS message for an EDNS COOKIE option and
// returns its client part (exactly 8 bytes) and server part (possibly
// empty, at most 32 bytes), both borrowed from wire. It tolerates any
// malformed input by reporting ok=false; it allocates nothing.
func cookieOption(wire []byte) (cc, sc []byte, ok bool) {
	if len(wire) < dnsHeaderLen {
		return nil, nil, false
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	if rrs == 0 {
		// No records beyond the question, so no OPT and no cookie: the
		// common cookie-less query skips the name walk entirely.
		return nil, nil, false
	}
	off := dnsHeaderLen
	for i := 0; i < qd; i++ {
		var k bool
		if off, k = skipName(wire, off); !k || off+4 > len(wire) {
			return nil, nil, false
		}
		off += 4
	}
	for i := 0; i < rrs; i++ {
		var k bool
		if off, k = skipName(wire, off); !k || off+10 > len(wire) {
			return nil, nil, false
		}
		typ := binary.BigEndian.Uint16(wire[off:])
		rdlen := int(binary.BigEndian.Uint16(wire[off+8:]))
		off += 10
		if off+rdlen > len(wire) {
			return nil, nil, false
		}
		if typ == 41 { // OPT
			for opt := wire[off : off+rdlen]; len(opt) >= 4; {
				code := binary.BigEndian.Uint16(opt)
				n := int(binary.BigEndian.Uint16(opt[2:]))
				if 4+n > len(opt) {
					break
				}
				if code == EDNS0CookieCode {
					data := opt[4 : 4+n]
					if len(data) < clientCookieLen || len(data) > clientCookieLen+32 {
						return nil, nil, false
					}
					return data[:clientCookieLen], data[clientCookieLen:], true
				}
				opt = opt[4+n:]
			}
		}
		off += rdlen
	}
	return nil, nil, false
}

// epochOf maps a unix-seconds timestamp to its rotation epoch.
func (g *Guard) epochOf(unix int64) uint64 {
	return uint64(unix) / uint64(g.cfg.CookieRotation/time.Second)
}

// epochSecret derives the SipHash key for one epoch from the base secret.
// Compromise of one epoch's key does not reveal the base secret (the
// derivation is itself a PRF application), and rotation bounds how long a
// leaked or brute-forced cookie stays valid.
func (g *Guard) epochSecret(epoch uint64) (uint64, uint64) {
	return siphash24(g.k0, g.k1, epoch), siphash24(g.k0^0x9e3779b97f4a7c15, g.k1, epoch)
}

// cookieHash computes the 8-byte hash part of a server cookie for one
// (client cookie, timestamp, client key) triple under the epoch secret the
// timestamp selects.
func (g *Guard) cookieHash(cc []byte, unixTS uint32, clientKey uint64) uint64 {
	k0e, k1e := g.epochSecret(g.epochOf(int64(unixTS)))
	ccWord := binary.LittleEndian.Uint64(cc)
	meta := uint64(1)<<56 | uint64(unixTS)
	return siphash24(k0e, k1e, ccWord, meta, clientKey)
}

// validCookie reports whether sc is a server cookie this guard issued to
// clientKey for client cookie cc, recently enough to still count.
func (g *Guard) validCookie(cc, sc []byte, clientKey uint64, now time.Time) bool {
	if len(cc) != clientCookieLen || len(sc) != serverCookieLen || sc[0] != 1 {
		return false
	}
	ts := binary.BigEndian.Uint32(sc[4:8])
	nowUnix := now.Unix()
	if int64(ts) > nowUnix+int64(cookieClockSkew/time.Second) ||
		int64(ts) < nowUnix-2*int64(g.cfg.CookieRotation/time.Second) {
		return false
	}
	return binary.BigEndian.Uint64(sc[8:16]) == g.cookieHash(cc, ts, clientKey)
}

// appendServerCookie appends the full 24-byte COOKIE option data (client
// cookie echoed + fresh server cookie) to dst.
func (g *Guard) appendServerCookie(dst []byte, cc []byte, clientKey uint64, now time.Time) []byte {
	ts := uint32(now.Unix())
	dst = append(dst, cc[:clientCookieLen]...)
	dst = append(dst, 1, 0, 0, 0) // version, reserved
	dst = binary.BigEndian.AppendUint32(dst, ts)
	return binary.BigEndian.AppendUint64(dst, g.cookieHash(cc, ts, clientKey))
}

// Package guard is the abuse-resilience layer consulted by the serve path
// before any cache or upstream work. A proxy fronting millions of users
// meets hostile traffic along three axes, and the guard answers each:
//
//   - Spoofed-source floods that turn the server into a UDP amplifier.
//     Per-client token buckets bound the response rate any one source can
//     extract, and over-limit responses degrade RRL-style: most are
//     dropped, but every SlipEvery-th "slips" out as a minimal TC=1
//     truncation, so a real client whose address is being spoofed still
//     learns to retry over TCP (where the source address is proven) while
//     the amplification factor for the attacker collapses below 1.
//   - Real clients unfairly sharing limits with spoofers. DNS cookies
//     (RFC 7873) let a client prove it owns its source address; queries
//     carrying a server cookie we issued bypass the UDP rate limits
//     entirely, so fairness degrades only for sources that never complete
//     the (free) cookie handshake.
//   - Random-subdomain ("water torture") floods that bypass the cache and
//     exhaust the upstream pool. A cache-miss circuit breaker charges
//     every miss to its client's exponentially-decayed miss-rate score and
//     refuses the flood's misses (REFUSED, cheap) once the score crosses
//     the threshold, while a global in-flight-miss ceiling bounds total
//     concurrent upstream work no matter how the attack is distributed.
//
// The allow path — the path every honest query takes — allocates nothing
// and costs a hash, a striped mutex and a few arithmetic operations, so
// the wire fast path's zero-allocation cache hit survives guarding. All
// methods are safe for concurrent use, and a nil *Guard allows everything,
// so servers never branch on "is the guard on".
package guard

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"dohcost/internal/telemetry"
)

// Action is the guard's verdict on one incoming query.
type Action uint8

// Actions, in escalation order.
const (
	// ActionAllow admits the query to the serve path.
	ActionAllow Action = iota
	// ActionDrop discards the datagram silently (UDP rate limiting; no
	// bytes leave, so a spoofed source yields zero amplification).
	ActionDrop
	// ActionSlip answers with a minimal TC=1 truncation instead of
	// dropping — the RRL escape hatch that sends real clients to TCP.
	ActionSlip
	// ActionRefuse answers with RCode REFUSED (stream rate limiting and
	// the miss breaker; on connection-oriented transports the source is
	// proven, so an honest refusal beats a silent drop).
	ActionRefuse
)

// String returns the metrics label for the action.
func (a Action) String() string {
	switch a {
	case ActionDrop:
		return "drop"
	case ActionSlip:
		return "slip"
	case ActionRefuse:
		return "refuse"
	}
	return "allow"
}

// ErrMissBudget is returned by AdmitMiss when the miss breaker refuses a
// cache miss — per-client miss-rate threshold crossed or the global
// in-flight-miss ceiling reached. Handlers translate it into a REFUSED
// response rather than SERVFAIL: the server is healthy and declining work,
// not failing at it.
var ErrMissBudget = errors.New("guard: cache-miss budget exhausted")

// Config tunes a Guard. The zero value of every field selects a
// production-shaped default; a Guard is "off" by being nil, not by config.
type Config struct {
	// ClientQPS is each client's sustained query rate before UDP rate
	// limiting begins (default 50). Clients are identified by source
	// address (port excluded) hashed into a fixed slot table; see bucket.go
	// for the collision semantics.
	ClientQPS float64
	// Burst is the bucket depth — how many queries a client may send
	// back-to-back before the sustained rate applies (default 2×ClientQPS,
	// minimum 8).
	Burst int
	// SlipEvery makes every Nth rate-limited UDP response a minimal TC=1
	// truncation instead of a silent drop (default 2; negative disables
	// slipping entirely).
	SlipEvery int
	// Slots is the total client-slot count (default 4096, rounded up to a
	// power of two) and Shards the lock stripes over them (default 16).
	Slots, Shards int
	// DisableCookies turns off DNS cookie validation and issuance.
	DisableCookies bool
	// CookieSecret seeds the server-cookie PRF; zero draws a random secret
	// at construction (cookies then do not survive process restarts, which
	// RFC 7873 permits — clients just re-handshake).
	CookieSecret uint64
	// CookieRotation is the server-cookie epoch length (default 1h).
	// Cookies validate against the epoch their timestamp names and expire
	// two rotations after issue.
	CookieRotation time.Duration
	// MissRate is the per-client sustained cache-miss rate (misses/second)
	// above which the breaker refuses that client's misses (default 20).
	MissRate float64
	// MissHalfLife is the decay half-life of the per-client miss score
	// (default 10s): shorter forgives bursts faster, longer holds the
	// breaker open against intermittent floods.
	MissHalfLife time.Duration
	// MaxInflightMiss is the global ceiling on concurrent upstream-bound
	// misses (default 1024); at the ceiling every new miss is refused
	// until one completes, bounding upstream pool pressure no matter how
	// an attack is distributed across sources.
	MaxInflightMiss int
	// Now overrides the clock (tests and deterministic fuzzing).
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ClientQPS <= 0 {
		c.ClientQPS = 50
	}
	if c.Burst <= 0 {
		c.Burst = int(2 * c.ClientQPS)
		if c.Burst < 8 {
			c.Burst = 8
		}
	}
	switch {
	case c.SlipEvery == 0:
		c.SlipEvery = 2
	case c.SlipEvery < 0:
		c.SlipEvery = 0 // never slip
	}
	if c.Slots <= 0 {
		c.Slots = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.CookieRotation <= 0 {
		c.CookieRotation = time.Hour
	}
	if c.MissRate <= 0 {
		c.MissRate = 20
	}
	if c.MissHalfLife <= 0 {
		c.MissHalfLife = 10 * time.Second
	}
	if c.MaxInflightMiss <= 0 {
		c.MaxInflightMiss = 1024
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Guard is one deployment's abuse-resilience state. Create it with New and
// share it across every listener of the deployment: the per-client state
// is keyed by source address, so a client's budget spans transports.
type Guard struct {
	cfg    Config
	shards []bucketShard

	// Derived hot-path constants.
	ratePerNs      float64 // tokens per nanosecond
	burst          float64
	missHalfLifeNs int64
	missThreshold  float64 // decayed-score equivalent of MissRate sustained

	// Cookie base secret.
	k0, k1 uint64

	// Breaker global state.
	inflight atomic.Int64

	// Decision counters (the guard's own Report; the telemetry sink gets
	// the same increments for /metrics).
	allowed          atomic.Uint64
	drops            atomic.Uint64
	slips            atomic.Uint64
	refusals         atomic.Uint64
	breakerRefusals  atomic.Uint64
	cookiesValidated atomic.Uint64
	cookiesIssued    atomic.Uint64

	tel *telemetry.Metrics
}

// New builds a Guard. tel, when non-nil, receives the guard's decision
// counters alongside the Guard's own Report accounting; nil keeps the
// guard fully functional without a metrics sink.
func New(cfg Config, tel *telemetry.Metrics) *Guard {
	cfg = cfg.withDefaults()
	nshards := nextPow2(cfg.Shards)
	slotsPerShard := nextPow2((cfg.Slots + nshards - 1) / nshards)
	g := &Guard{
		cfg:            cfg,
		shards:         newShards(nshards, slotsPerShard),
		ratePerNs:      cfg.ClientQPS / float64(time.Second),
		burst:          float64(cfg.Burst),
		missHalfLifeNs: int64(cfg.MissHalfLife),
		missThreshold:  cfg.MissRate * cfg.MissHalfLife.Seconds() / math.Ln2,
		k0:             cfg.CookieSecret,
		tel:            tel,
	}
	if g.k0 == 0 {
		g.k0, g.k1 = rand.Uint64(), rand.Uint64()
	} else {
		// A fixed secret still gets two independent key words.
		g.k1 = siphash24(g.k0, g.k0, 0x646e73636f6f6b69)
	}
	return g
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ClientKey reduces a source address to the guard's client identity: the
// address with the port stripped, hashed. Queries from one host over any
// port or transport share one budget — the per-client fairness unit — and
// the key feeds the cookie PRF, binding issued cookies to the address they
// were served to. Allocation-free for the address types the serve paths
// produce (*net.UDPAddr, *net.TCPAddr, and netsim's string addresses).
func ClientKey(addr net.Addr) uint64 {
	switch a := addr.(type) {
	case *net.UDPAddr:
		return keyBytes(a.IP)
	case *net.TCPAddr:
		return keyBytes(a.IP)
	}
	if addr == nil {
		return 0
	}
	s := addr.String()
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			s = s[:i]
			break
		}
	}
	return keyString(s)
}

// keyBytes hashes an address's bytes (FNV-1a: the key spreads slots and
// labels cookies; it carries no secret).
func keyBytes(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// keyString is keyBytes over a string, avoiding the []byte conversion.
func keyString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// CheckUDP admits, drops, slips or (never, on UDP) refuses one datagram
// from the client identified by key. wire is the raw packet: a valid
// server cookie inside bypasses the rate limit entirely. The allow path
// allocates nothing.
func (g *Guard) CheckUDP(key uint64, wire []byte) Action {
	if g == nil {
		return ActionAllow
	}
	now := g.cfg.Now()
	if !g.cfg.DisableCookies {
		if cc, sc, ok := cookieOption(wire); ok && g.validCookie(cc, sc, key, now) {
			g.cookiesValidated.Add(1)
			g.tel.GuardCookieValid()
			g.allowed.Add(1)
			return ActionAllow
		}
	}
	allowed, slip := g.allowQuery(key, now.UnixNano())
	switch {
	case allowed:
		g.allowed.Add(1)
		return ActionAllow
	case slip:
		g.slips.Add(1)
		g.tel.GuardSlip()
		return ActionSlip
	default:
		g.drops.Add(1)
		g.tel.GuardDrop()
		return ActionDrop
	}
}

// CheckStream admits or refuses one query arriving over a stream transport
// (TCP, DoT, DoH). The source address of a stream is proven by the
// handshake, so there is no amplification to prevent: over-limit queries
// get an honest REFUSED instead of drops or slips, and cookies are
// irrelevant.
func (g *Guard) CheckStream(key uint64) Action {
	if g == nil {
		return ActionAllow
	}
	allowed, _ := g.allowQuery(key, g.cfg.Now().UnixNano())
	if allowed {
		g.allowed.Add(1)
		return ActionAllow
	}
	g.refusals.Add(1)
	g.tel.GuardRefusal()
	return ActionRefuse
}

// AdmitMiss charges one upstream-bound cache miss to the client carried in
// ctx (via NewContext) and decides whether it may proceed. On success the
// miss occupies one global in-flight slot until MissDone. Misses with no
// client in ctx — internal background refreshes — skip the per-client
// score but still respect the global ceiling.
func (g *Guard) AdmitMiss(ctx context.Context) error {
	if g == nil {
		return nil
	}
	if key, ok := KeyFromContext(ctx); ok {
		if !g.chargeMiss(key, g.cfg.Now().UnixNano()) {
			g.breakerRefusals.Add(1)
			g.refusals.Add(1)
			g.tel.GuardBreakerRefusal()
			return ErrMissBudget
		}
	}
	if g.inflight.Add(1) > int64(g.cfg.MaxInflightMiss) {
		g.inflight.Add(-1)
		g.breakerRefusals.Add(1)
		g.refusals.Add(1)
		g.tel.GuardBreakerRefusal()
		return ErrMissBudget
	}
	return nil
}

// MissDone releases the in-flight slot an admitted miss held. Call exactly
// once per successful AdmitMiss.
func (g *Guard) MissDone() {
	if g != nil {
		g.inflight.Add(-1)
	}
}

// AppendLimited synthesizes the minimal response a Slip or Refuse decision
// sends — the query's header and question echoed back with QR set, record
// sections emptied, and either TC=1 (slip) or RCode REFUSED — appended to
// dst. When the query carried a client cookie (and cookies are enabled),
// an OPT record with a fresh server cookie rides along, so even a
// rate-limited client can graduate to the cookie bypass on its next try.
// ok=false means the query was too malformed to echo; drop instead.
func (g *Guard) AppendLimited(dst, query []byte, key uint64, a Action) ([]byte, bool) {
	qend, ok := questionEnd(query)
	if !ok || g == nil {
		return dst, false
	}
	base := len(dst)
	dst = append(dst, query[:qend]...)
	hdr := dst[base:]
	// QR=1, opcode and RD preserved, AA/TC cleared, RA=1.
	flags := binary.BigEndian.Uint16(hdr[2:])
	flags = flags&(0xF<<11|1<<8) | 1<<15 | 1<<7
	if a == ActionSlip {
		flags |= 1 << 9 // TC
	}
	if a == ActionRefuse {
		flags |= 5 // REFUSED
	}
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[6:], 0)  // ANCOUNT
	binary.BigEndian.PutUint16(hdr[8:], 0)  // NSCOUNT
	binary.BigEndian.PutUint16(hdr[10:], 0) // ARCOUNT
	if g.cfg.DisableCookies {
		return dst, true
	}
	cc, _, hasCookie := cookieOption(query)
	if !hasCookie {
		return dst, true
	}
	// Attach OPT: root name, TYPE=41, CLASS(udpsize)=1232, TTL=0,
	// RDLEN=4+24, COOKIE option.
	dst = append(dst, 0, 0, 41, 0x04, 0xD0, 0, 0, 0, 0, 0, 4+fullCookieLen,
		0, EDNS0CookieCode, 0, fullCookieLen)
	dst = g.appendServerCookie(dst, cc, key, g.cfg.Now())
	g.cookiesIssued.Add(1)
	g.tel.GuardCookieIssued()
	binary.BigEndian.PutUint16(dst[base+10:], 1) // ARCOUNT=1
	return dst, true
}

// ServerCookie computes the full 24-byte COOKIE option payload (client
// cookie echoed + fresh server cookie) for a query whose raw bytes carried
// a client cookie; ok=false when the query has no well-formed cookie
// option or cookies are disabled. The Message serving path uses it to
// attach cookies to ordinary responses.
func (g *Guard) ServerCookie(dst []byte, queryWire []byte, key uint64) ([]byte, bool) {
	if g == nil || g.cfg.DisableCookies {
		return dst, false
	}
	cc, _, ok := cookieOption(queryWire)
	if !ok {
		return dst, false
	}
	g.cookiesIssued.Add(1)
	g.tel.GuardCookieIssued()
	return g.appendServerCookie(dst, cc, key, g.cfg.Now()), true
}

// ctxKey carries the client key through the Message serving path to the
// miss breaker.
type ctxKey struct{}

// NewContext returns ctx carrying the client key for AdmitMiss.
func NewContext(ctx context.Context, key uint64) context.Context {
	return context.WithValue(ctx, ctxKey{}, key)
}

// KeyFromContext returns the client key installed by NewContext.
func KeyFromContext(ctx context.Context) (uint64, bool) {
	k, ok := ctx.Value(ctxKey{}).(uint64)
	return k, ok
}

// Report is the guard section of /debug/cost: configuration echo plus live
// decision counters and breaker state.
type Report struct {
	// ClientQPS/Burst/SlipEvery echo the resolved rate-limit config.
	ClientQPS float64 `json:"client_qps"`
	Burst     int     `json:"burst"`
	SlipEvery int     `json:"slip_every"`
	// Allowed through Refusals count decisions; BreakerRefusals is the
	// subset of Refusals issued by the miss breaker.
	Allowed         uint64 `json:"allowed_total"`
	Drops           uint64 `json:"drops_total"`
	Slips           uint64 `json:"slips_total"`
	Refusals        uint64 `json:"refusals_total"`
	BreakerRefusals uint64 `json:"breaker_refusals_total"`
	// CookiesValidated counts rate-limit bypasses earned by valid server
	// cookies; CookiesIssued counts server cookies attached to responses.
	CookiesValidated uint64 `json:"cookies_validated_total"`
	CookiesIssued    uint64 `json:"cookies_issued_total"`
	// InflightMisses and MaxInflightMiss are the breaker's live occupancy
	// and ceiling; MissRate the per-client threshold.
	InflightMisses  int64   `json:"inflight_misses"`
	MaxInflightMiss int     `json:"max_inflight_miss"`
	MissRate        float64 `json:"miss_rate"`
	// CookieEpoch is the current server-cookie rotation epoch (0 with
	// cookies disabled).
	CookieEpoch uint64 `json:"cookie_epoch,omitempty"`
}

// Report snapshots the guard. Nil-safe: a nil Guard reports the zero value.
func (g *Guard) Report() Report {
	if g == nil {
		return Report{}
	}
	r := Report{
		ClientQPS:        g.cfg.ClientQPS,
		Burst:            g.cfg.Burst,
		SlipEvery:        g.cfg.SlipEvery,
		Allowed:          g.allowed.Load(),
		Drops:            g.drops.Load(),
		Slips:            g.slips.Load(),
		Refusals:         g.refusals.Load(),
		BreakerRefusals:  g.breakerRefusals.Load(),
		CookiesValidated: g.cookiesValidated.Load(),
		CookiesIssued:    g.cookiesIssued.Load(),
		InflightMisses:   g.inflight.Load(),
		MaxInflightMiss:  g.cfg.MaxInflightMiss,
		MissRate:         g.cfg.MissRate,
	}
	if !g.cfg.DisableCookies {
		r.CookieEpoch = g.epochOf(g.cfg.Now().Unix())
	}
	return r
}

package guard

import (
	"encoding/binary"
	"testing"
)

// The SipHash-2-4 reference test vectors (Aumasson & Bernstein, appendix A):
// key bytes 00..0f, message bytes 00..n-1, 64-bit little-endian outputs.
var sipVectors = []uint64{
	0x726fdb47dd0e0e31, // len 0
	0x74f839c593dc67fd, // len 1
	0x0d6c8009d9a94f5a, // len 2
	0x85676696d7fb7e2d, // len 3
	0xcf2794e0277187b7, // len 4
	0x18765564cd99a68d, // len 5
	0xcbc9466e58fee3ce, // len 6
	0xab0200f58b01d137, // len 7
	0x93f5f5799a932462, // len 8
}

func TestSipHashReferenceVectors(t *testing.T) {
	k0 := uint64(0x0706050403020100)
	k1 := uint64(0x0f0e0d0c0b0a0908)
	msg := make([]byte, len(sipVectors))
	for i := range msg {
		msg[i] = byte(i)
	}
	for n, want := range sipVectors {
		if got := siphashBytes(k0, k1, msg[:n]); got != want {
			t.Errorf("siphashBytes len %d = %#x, want %#x", n, got, want)
		}
	}
}

func TestSipHashWordMatchesBytes(t *testing.T) {
	k0 := uint64(0x0706050403020100)
	k1 := uint64(0x0f0e0d0c0b0a0908)
	words := []uint64{0, 1, 0xdeadbeefcafef00d, 1<<64 - 1}
	var buf []byte
	for i := 1; i <= len(words); i++ {
		buf = buf[:0]
		for _, w := range words[:i] {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		if got, want := siphash24(k0, k1, words[:i]...), siphashBytes(k0, k1, buf); got != want {
			t.Errorf("siphash24 over %d words = %#x, siphashBytes = %#x", i, got, want)
		}
	}
}

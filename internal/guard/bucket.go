package guard

import (
	"math"
	"sync"
)

// The per-client state table. Clients hash to fixed slots — no map, no
// insertion, no eviction — so the allow path is a mutex, an index and a
// few arithmetic operations regardless of how many distinct source
// addresses an attack sprays: memory is bounded by construction, and a
// source-rotating flood collides into a bounded set of buckets that
// collectively rate-limit it (the approximation classic DNS RRL makes with
// its own fixed hash table). Two clients sharing a slot share a rate
// budget; with the default 4096 slots that needs thousands of concurrently
// active clients before honest traffic notices.
//
// Slots are grouped into lock-striped shards: one mutex guards a
// contiguous slot block, chosen by the low bits of the client key, so
// concurrent checks from different sources rarely contend.

// slot is one client's (or colliding client set's) guard state, guarded by
// its shard mutex.
type slot struct {
	// tokens is the query-rate bucket fill, refilled lazily from lastNs.
	tokens float64
	lastNs int64
	// debt counts consecutive rate-limited responses, driving the RRL slip
	// cadence (every SlipEvery-th limited response is TC instead of drop).
	debt uint32
	// missScore is the exponentially-decayed miss counter (per-client miss
	// rate EWMA), decayed from missNs with the configured half-life.
	missScore float64
	missNs    int64
}

// bucketShard is one lock stripe of the slot table.
type bucketShard struct {
	mu    sync.Mutex
	slots []slot
	// pad keeps neighbouring shards' mutexes off one cache line.
	_ [40]byte
}

// newShards builds nshards stripes of slotsPerShard slots each; both are
// powers of two.
func newShards(nshards, slotsPerShard int) []bucketShard {
	shards := make([]bucketShard, nshards)
	for i := range shards {
		shards[i].slots = make([]slot, slotsPerShard)
	}
	return shards
}

// slotFor locates the slot for a client key: low bits pick the lock
// stripe, upper bits the slot within it, so the two indices are
// independent.
func (g *Guard) slotFor(key uint64) (*bucketShard, *slot) {
	sh := &g.shards[key&uint64(len(g.shards)-1)]
	return sh, &sh.slots[(key>>20)&uint64(len(sh.slots)-1)]
}

// allowQuery runs the token-bucket admission for one query at nowNs.
// When the bucket is empty it also advances the slip cadence and reports
// whether this limited response should slip (TC) rather than drop.
// Zero-allocation: callers on the UDP hot path depend on it.
func (g *Guard) allowQuery(key uint64, nowNs int64) (allowed, slip bool) {
	sh, s := g.slotFor(key)
	sh.mu.Lock()
	if s.lastNs == 0 {
		s.tokens = g.burst
	} else if dt := nowNs - s.lastNs; dt > 0 {
		s.tokens += float64(dt) * g.ratePerNs
		if s.tokens > g.burst {
			s.tokens = g.burst
		}
	}
	s.lastNs = nowNs
	if s.tokens >= 1 {
		s.tokens--
		sh.mu.Unlock()
		return true, false
	}
	s.debt++
	slip = g.cfg.SlipEvery > 0 && s.debt%uint32(g.cfg.SlipEvery) == 0
	sh.mu.Unlock()
	return false, slip
}

// chargeMiss records one cache-miss attempt for key at nowNs and reports
// whether the client's decayed miss rate is still under the breaker
// threshold. Refused attempts are charged too: a flood that keeps pushing
// keeps its breaker open.
func (g *Guard) chargeMiss(key uint64, nowNs int64) (under bool) {
	sh, s := g.slotFor(key)
	sh.mu.Lock()
	if s.missNs != 0 {
		if dt := nowNs - s.missNs; dt > 0 {
			s.missScore *= math.Exp2(-float64(dt) / float64(g.missHalfLifeNs))
		}
	}
	s.missNs = nowNs
	s.missScore++
	under = s.missScore <= g.missThreshold
	sh.mu.Unlock()
	return under
}

// tokensSnapshot sums the current token fill per shard (refill not
// applied) — the observability hook the bucket-invariant property test
// asserts against.
func (g *Guard) tokensSnapshot() []float64 {
	out := make([]float64, len(g.shards))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		sum := 0.0
		for j := range sh.slots {
			sum += sh.slots[j].tokens
		}
		sh.mu.Unlock()
		out[i] = sum
	}
	return out
}

package guard

import "testing"

// fuzzSeeds are the corpus anchors: well-formed queries with and without
// cookies, plus the malformed shapes the scanner must survive — truncated
// headers, lying counts, compression pointers, and options whose lengths
// overrun their OPT record.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0x12, 0x34, 0x01, 0x00, 0x00, 0x01})    // truncated header
	f.Add(packQuery(f, "example.com", nil))              // plain query
	f.Add(packQuery(f, "example.com", make([]byte, 8)))  // client cookie
	f.Add(packQuery(f, "example.com", make([]byte, 24))) // full cookie, zero hash
	f.Add(packQuery(f, "example.com", make([]byte, 3)))  // undersized option
	f.Add(packQuery(f, "example.com", make([]byte, 41))) // oversized option
	q := packQuery(f, "example.com", make([]byte, 24))
	f.Add(q[:len(q)-5]) // option data truncated mid-cookie
	lie := append([]byte{}, packQuery(f, "a.b", nil)...)
	lie[11] = 7 // ARCOUNT=7 with no records
	f.Add(lie)
	ptr := []byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1,
		0xC0, 0x0C, 0, 1, 0, 1, // compressed question name
		0, 0, 41, 0, 0, 0, 0, 0, 0, 0, 4, 0, 10, 0, 0} // OPT, empty cookie
	f.Add(ptr)
}

// FuzzCookieParse pins that the zero-alloc cookie/question scanners and
// the response synthesizer survive arbitrary bytes: no panics, no slice
// overruns, and whatever parses stays inside the input's bounds.
func FuzzCookieParse(f *testing.F) {
	fuzzSeeds(f)
	clk := newFakeClock()
	g := New(Config{CookieSecret: 0xfeed, Now: clk.Now}, nil)
	f.Fuzz(func(t *testing.T, wire []byte) {
		cc, sc, ok := cookieOption(wire)
		if ok {
			if len(cc) != clientCookieLen || len(sc) > 32 {
				t.Fatalf("cookie bounds: cc=%d sc=%d", len(cc), len(sc))
			}
			g.validCookie(cc, sc, 1, clk.Now())
		}
		if end, ok := questionEnd(wire); ok && (end < dnsHeaderLen || end > len(wire)) {
			t.Fatalf("questionEnd %d outside [%d,%d]", end, dnsHeaderLen, len(wire))
		}
		if resp, ok := g.AppendLimited(nil, wire, 1, ActionSlip); ok {
			if len(resp) < dnsHeaderLen {
				t.Fatalf("synthesized %d-byte response", len(resp))
			}
			if resp[2]&0x80 == 0 {
				t.Fatal("synthesized response without QR")
			}
		}
		g.AppendLimited(nil, wire, 1, ActionRefuse)
		g.ServerCookie(nil, wire, 1)
	})
}

// FuzzGuardDecision pins determinism: two guards with identical config and
// clock make identical decisions for any (client, wire) input — the
// property the adversarial scenario test's reproducibility rests on.
func FuzzGuardDecision(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, wire []byte) {
		mk := func() *Guard {
			clk := newFakeClock()
			return New(Config{ClientQPS: 3, Burst: 3, SlipEvery: 2,
				CookieSecret: 0xfeed, Now: clk.Now}, nil)
		}
		g1, g2 := mk(), mk()
		for i := 0; i < 8; i++ {
			key := uint64(i % 3)
			a1, a2 := g1.CheckUDP(key, wire), g2.CheckUDP(key, wire)
			if a1 != a2 {
				t.Fatalf("step %d: %v vs %v for identical inputs", i, a1, a2)
			}
			if s1, s2 := g1.CheckStream(key), g2.CheckStream(key); s1 != s2 {
				t.Fatalf("step %d stream: %v vs %v", i, s1, s2)
			}
		}
		r1, r2 := g1.Report(), g2.Report()
		r1.CookieEpoch, r2.CookieEpoch = 0, 0
		if r1 != r2 {
			t.Fatalf("diverging reports:\n%+v\n%+v", r1, r2)
		}
	})
}

package guard

// SipHash-2-4 (Aumasson & Bernstein), the keyed hash RFC 7873 recommends
// for DNS server cookies: fast enough to run per datagram, keyed so an
// off-path attacker cannot forge a cookie without the server secret. The
// implementation is self-contained (no dependency beyond the standard
// library) and operates on up to two input blocks passed as uint64 words —
// the cookie hash input is fixed-size, so the general variable-length tail
// handling collapses to a compile-time-known layout.

// sipRound is one SipHash round over the four lanes.
func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = v1<<13 | v1>>51
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>48
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>43
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>47
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	return v0, v1, v2, v3
}

// siphash24 computes SipHash-2-4 over the message words ms with key
// (k0, k1). Each element of ms is one full 8-byte little-endian block; the
// final length block (len%256 in the top byte, RFC-conformant for inputs
// that are a multiple of 8 bytes) is appended internally.
func siphash24(k0, k1 uint64, ms ...uint64) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573
	for _, m := range ms {
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
	}
	last := uint64(len(ms)*8%256) << 56
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last
	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

// siphashBytes hashes an arbitrary byte string with SipHash-2-4 — the
// variable-length form used to derive per-epoch secrets and to key clients
// by address bytes. Little-endian block loading matches the reference
// implementation, so the test vectors from the SipHash paper apply.
func siphashBytes(k0, k1 uint64, p []byte) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573
	n := len(p)
	for len(p) >= 8 {
		m := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
		p = p[8:]
	}
	last := uint64(n%256) << 56
	for i := len(p) - 1; i >= 0; i-- {
		last |= uint64(p[i]) << (8 * uint(i))
	}
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last
	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

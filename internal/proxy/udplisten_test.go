package proxy

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
)

// TestProxyUDPListenBatchedRealSocket brings the proxy up with the
// real-socket batched UDP listener (Config.UDPListen) and exchanges
// through a kernel socket end to end: first query misses to the netsim
// upstream, repeats hit the cache through the batched fast path, and the
// cost report carries per-shard counters.
func TestProxyUDPListenBatchedRealSocket(t *testing.T) {
	n := netsim.New(41)
	up := startUpstream(t, n, "recursive.upstream")
	p, err := New(Config{
		Upstreams:       []dnstransport.PoolUpstream{tcpUpstream(n, "proxy.dns", up.host)},
		UpstreamTimeout: 2 * time.Second,
		UDPListen:       "127.0.0.1:0",
		UDPShards:       2,
		UDPBatch:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	addr := p.UDPAddr()
	if addr == nil {
		t.Fatal("UDPAddr is nil with UDPListen configured")
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	cli := dnstransport.NewUDPClient(pc, addr)
	t.Cleanup(func() { cli.Close() })

	for i := 0; i < 10; i++ {
		resp, err := cli.Exchange(context.Background(), dnswire.NewQuery(0, "real.example.", dnswire.TypeA))
		if err != nil {
			t.Fatalf("query %d over real socket: %v", i, err)
		}
		if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
			t.Fatalf("query %d: resp = %v", i, resp)
		}
		if a := resp.Answers[0].Data.(*dnswire.A); a.Addr != netip.MustParseAddr("192.0.2.77") {
			t.Fatalf("query %d: answer = %v", i, a.Addr)
		}
	}
	if got := up.queries.Load(); got != 1 {
		t.Errorf("upstream saw %d queries, want 1 (9 repeats served from cache)", got)
	}

	report := p.CostReport()
	if len(report.UDPShards) == 0 {
		t.Fatal("CostReport has no udp_shards with the batched listener up")
	}
	var datagrams, fastHits uint64
	for _, sc := range report.UDPShards {
		datagrams += sc.Datagrams
		fastHits += sc.FastHits
	}
	if datagrams < 10 {
		t.Errorf("shards read %d datagrams, want >= 10", datagrams)
	}
	if fastHits < 9 {
		t.Errorf("shards served %d fast hits, want >= 9 (cache repeats)", fastHits)
	}
	if report.Telemetry.UDPBatchReads == 0 {
		t.Error("telemetry recorded no batched reads")
	}

	// /debug/cost must render the shard counters.
	buf := new(strings.Builder)
	if err := report.Telemetry.WritePrometheus(buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dohcost_udp_batch_reads_total") {
		t.Error("/metrics exposition missing dohcost_udp_batch_reads_total")
	}
}

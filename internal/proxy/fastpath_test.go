package proxy

import (
	"context"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
)

// TestConcurrentHotNameAllTransports hammers one hot name from many
// goroutines over UDP, TCP, DoT and DoH at once — the workload the wire
// fast path serves from immutable packed cache entries and pooled buffers.
// Under -race (CI runs this package with the detector) it is the proof
// that entry immutability, not per-hit deep copying, is what makes the
// hit path safe; without it, every response also checks that no pooled
// buffer was recycled mid-write (a corrupted answer would fail
// validation or carry the wrong address).
func TestConcurrentHotNameAllTransports(t *testing.T) {
	n := netsim.New(7)
	up := startUpstream(t, n, "recursive.upstream")
	p, chain := startProxy(t, n, "proxy.dns", "recursive.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)

	const hot = dnswire.Name("hot.fastpath.example.")

	// Prime the cache so the storm below is all hits.
	warm := dnswire.NewQuery(0, hot, dnswire.TypeA)
	if _, err := clients["udp"].Exchange(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	const (
		goroutinesPerTransport = 6
		queriesPerGoroutine    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, 4*goroutinesPerTransport)
	for name, c := range clients {
		for g := 0; g < goroutinesPerTransport; g++ {
			wg.Add(1)
			go func(name string, c dnstransport.Resolver, g int) {
				defer wg.Done()
				for i := 0; i < queriesPerGoroutine; i++ {
					q := dnswire.NewQuery(uint16(g*queriesPerGoroutine+i), hot, dnswire.TypeA)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					resp, err := c.Exchange(ctx, q)
					cancel()
					if err != nil {
						errs <- err
						return
					}
					if !resp.Response || resp.Question1().Name.Canonical() != hot {
						t.Errorf("%s: response echoes question %s, want %s", name, resp.Question1(), hot)
						return
					}
					if len(resp.Answers) != 1 {
						t.Errorf("%s: %d answers, want 1", name, len(resp.Answers))
						return
					}
					if a, ok := resp.Answers[0].Data.(*dnswire.A); !ok || a.Addr.String() != "192.0.2.77" {
						t.Errorf("%s: wrong answer %v", name, resp.Answers[0].Data)
						return
					}
					if resp.Answers[0].TTL > 300 {
						t.Errorf("%s: TTL %d exceeds original 300", name, resp.Answers[0].TTL)
						return
					}
				}
			}(name, c, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One upstream exchange total: everything else was served from the
	// cache (wire fast path for UDP/TCP/DoT and wireformat DoH).
	if got := up.queries.Load(); got != 1 {
		t.Errorf("upstream saw %d queries, want 1", got)
	}
	s := p.CacheStats()
	want := int64(4*goroutinesPerTransport*queriesPerGoroutine) + 1 // + the priming query's... hit count excludes the miss
	if s.Hits != want-1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v, want %d hits / 1 miss", s, want-1)
	}
	// Telemetry agrees: every transaction finished ok, none lost.
	snap := p.Telemetry().Snapshot()
	var total uint64
	for _, v := range snap.Queries {
		total += v
	}
	if total != uint64(want) {
		t.Errorf("telemetry recorded %d transactions, want %d", total, want)
	}
	if snap.Verdicts["servfail"] != 0 || snap.Verdicts["canceled"] != 0 {
		t.Errorf("verdicts = %+v, want all ok", snap.Verdicts)
	}
}

// TestFastPathServesWireHits pins the fast path on, not just around: after
// priming, UDP hits must be answered without the handler's Message path
// ever running (the upstream counter cannot distinguish, so this asserts
// via the cache outcome telemetry that hits were recorded — and that the
// responses carry decayed TTLs and the client's IDs, which only the wire
// patch path stamps on stored bytes).
func TestFastPathServesWireHits(t *testing.T) {
	n := netsim.New(8)
	startUpstream(t, n, "recursive.upstream")
	p, chain := startProxy(t, n, "proxy.dns", "recursive.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)

	q := dnswire.NewQuery(100, "pin.fastpath.example.", dnswire.TypeA)
	if _, err := clients["udp"].Exchange(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(uint16(200+i), "pin.fastpath.example.", dnswire.TypeA)
		resp, err := clients["udp"].Exchange(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Response || len(resp.Answers) != 1 {
			t.Fatalf("hit response malformed: %s", resp)
		}
		if resp.Answers[0].TTL > 300 {
			t.Errorf("TTL %d not decayed within the original 300", resp.Answers[0].TTL)
		}
	}
	snap := p.Telemetry().Snapshot()
	if snap.CacheEvents["hit"] != 5 {
		t.Errorf("cache hits in telemetry = %d, want 5", snap.CacheEvents["hit"])
	}
	if snap.CacheEvents["miss"] != 1 {
		t.Errorf("cache misses in telemetry = %d, want 1", snap.CacheEvents["miss"])
	}
}

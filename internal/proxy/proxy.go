// Package proxy assembles the production forwarding path the study's
// findings point at: the full listener set (UDP :53, TCP :53, DoT :853,
// DoH :443) in front of a sharded TTL cache with singleflight coalescing
// and a pool of persistent upstream connections with failover.
//
// The paper shows DoH's cost is dominated by connection setup and
// resolver-side behaviour; a forwarding proxy amortizes the former with
// the connection pool and erases most of the latter with the cache, which
// is exactly how the public resolvers in Table 1 keep their DoH latencies
// close to UDP.
package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"dohcost/internal/dialer"
	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/netsim"
	"dohcost/internal/qtrace"
	"dohcost/internal/steer"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
	"dohcost/internal/udpio"
)

// Config assembles a forwarding proxy.
type Config struct {
	// Upstreams are the recursive resolvers to forward cache misses to, in
	// failover preference order. Required.
	Upstreams []dnstransport.PoolUpstream
	// Pool tunes the upstream connection pool (conns per upstream, health
	// thresholds, backoff).
	Pool dnstransport.PoolConfig
	// CacheEntries bounds the response cache; 0 means the dnscache default.
	CacheEntries int
	// CacheBudget bounds the response cache in accounted bytes instead of
	// entries (dnscache.WithMemoryBudget); 0 keeps the entry-count bound.
	CacheBudget int64
	// CacheAdmission selects the cache admission policy: "" or "lru"
	// (admit everything, evict LRU) or "tinylfu" (frequency-gated
	// admission, dnscache.WithTinyLFU). A CacheBudget without an explicit
	// choice defaults to "tinylfu" — the combination built for heavy-tailed
	// name streams.
	CacheAdmission string
	// CacheShards sets the cache's lock partitions; 0 means the default.
	CacheShards int
	// MinTTL/MaxTTL clamp cached TTLs; zero values use dnscache defaults.
	MinTTL, MaxTTL time.Duration
	// NegativeTTL caps NXDOMAIN/NODATA caching; 0 means the default.
	NegativeTTL time.Duration
	// UpstreamTimeout bounds each forwarded exchange (on top of the
	// client-connection-lifetime context); 0 means 5s.
	UpstreamTimeout time.Duration
	// Chain supplies TLS material for the DoT and DoH listeners; nil
	// serves UDP/TCP only.
	Chain *tlsx.Chain
	// Endpoints configures DoH paths; nil serves the RFC default.
	Endpoints []dnsserver.Endpoint
	// InOrderDoT disables the out-of-order DoT reply scheduling that is
	// otherwise the production default (the paper found only Cloudflare
	// did this, and credits it for DoT's best-case behaviour).
	InOrderDoT bool
	// MaxUDPSize caps UDP response datagrams below the client's EDNS
	// buffer (resolver max-udp-size policy); responses over the cap are
	// truncated so clients retry over TCP instead of losing oversized
	// datagrams on small-MTU paths. Zero applies no cap.
	MaxUDPSize int
	// UDPBatch, when positive, serves UDP with the batched loop at that
	// vector size: up to UDPBatch datagrams per read syscall, cache hits
	// flushed in one write syscall (dnsserver.UDPServer.ServeBatch). It
	// applies to the simulated-network listener and to UDPListen sockets.
	// Zero keeps the per-packet loop.
	UDPBatch int
	// UDPListen, when non-empty, additionally serves classic UDP DNS on
	// real kernel sockets at this address (e.g. "127.0.0.1:5300") with
	// the batched loop — the deployment face of the serving path, where
	// recvmmsg/sendmmsg and SO_REUSEPORT sharding actually pay off.
	UDPListen string
	// UDPShards is the SO_REUSEPORT socket count for UDPListen; 0 means
	// one per GOMAXPROCS, and platforms without SO_REUSEPORT clamp to 1.
	UDPShards int
	// Policy selects the upstream steering policy: "failover" (default and
	// the pre-steering behaviour: static preference order with health
	// failover), "fastest" (SRTT-ranked with periodic exploration probes)
	// or "hedged" (a delayed second exchange races the primary, first
	// answer wins).
	Policy string
	// HedgeDelay is the hedged policy's wait before the second exchange;
	// 0 adapts per query to the primary upstream's live SRTT + 4·RTTVAR.
	HedgeDelay time.Duration
	// ExploreEvery is the fastest policy's exploration cadence (every Nth
	// query probes a non-best upstream); 0 means the steer default,
	// negative disables exploration.
	ExploreEvery int
	// ServeStale keeps expired cache entries answerable this long past
	// expiry (RFC 8767): stale hits are served immediately while one
	// background refresh re-populates the entry. Zero disables.
	ServeStale time.Duration
	// PrefetchWindow refreshes hot cache entries in the background when a
	// hit finds them within this much of expiry. Zero disables.
	PrefetchWindow time.Duration
	// Guard, when non-nil, arms the abuse guard (internal/guard) on every
	// listener: per-client response rate limiting with slip/TC on UDP,
	// honest REFUSED on stream transports, RFC 7873 server cookies whose
	// holders bypass the UDP limits, and a cache-miss circuit breaker
	// between the cache and the upstream steerer. Zero-valued fields take
	// the guard defaults; nil serves unguarded.
	Guard *guard.Config
	// Dialer, when non-nil, is the Happy-Eyeballs racing dialer the
	// Upstreams' Dial closures were built over. The proxy does not dial
	// through it directly — the closures already do — but registering it
	// here puts its per-upstream race memory (winning family, demotion
	// state) into CostReport and /debug/cost.
	Dialer *dialer.HappyEyeballs
	// Bootstrap, when non-nil, is the reachability prober: Start sweeps
	// it synchronously before the listeners come up, seeding the
	// steering scoreboard with per-upstream verdicts so the first real
	// queries never explore a combination the probe saw black-hole, and
	// an error storm on the forwarding path kicks an asynchronous
	// re-sweep (network-change recovery). Its Seeder defaults to the
	// proxy's steerer when unset.
	Bootstrap *dialer.Prober
	// Storm tunes the error-storm detector that triggers Bootstrap
	// re-sweeps; nil with Bootstrap set uses the dialer defaults
	// (5 consecutive failures, 30 s cooldown).
	Storm *dialer.Storm
	// Telemetry, when non-nil, is the metrics sink shared with the caller;
	// nil makes the proxy create its own (telemetry is always on — its
	// hot path is sharded atomics, cheap enough to never gate).
	Telemetry *telemetry.Metrics
	// OnTransaction, when non-nil, receives one Summary per completed
	// query — the embedder hook mirroring the DNSSummary idiom. It is
	// installed on the Telemetry sink with SetListener, so when several
	// proxies share one sink the listener is shared too (the last
	// configured one wins); give each proxy its own sink for per-proxy
	// callbacks.
	OnTransaction telemetry.Listener
	// Tracing, when non-nil, arms per-query lifecycle tracing
	// (internal/qtrace): every serving layer records monotonic phase
	// spans into a per-transaction record, and completed records are
	// tail-sampled — errored always, slower than the adaptive per-class
	// p99 always, 1-in-SampleEvery otherwise — into a lock-free ring
	// served on /debug/trace. Zero-valued fields take the qtrace
	// defaults; nil keeps the untraced zero-overhead path.
	Tracing *qtrace.Config
	// Profiling mounts net/http/pprof under /debug/pprof/ on the
	// Observability handler and appends Go runtime gauges (goroutines,
	// heap bytes, GC pause p99) to /metrics. Off by default: the ops
	// plane should opt into exposing profiles.
	Profiling bool
}

// Proxy is a forwarding resolver deployment: cache → singleflight →
// steering → upstream pool, exposed over every transport the study
// compares. The steering layer (internal/steer) decides which upstream a
// miss is forwarded to — static failover order, SRTT-ranked fastest, or
// hedged — and the cache can serve stale and prefetch around it.
type Proxy struct {
	pool    *dnstransport.Pool
	steer   *steer.Steerer
	cache   *dnscache.Cache
	guard   *guard.Guard
	timeout time.Duration
	server  *dnsserver.Server
	run     *dnsserver.Running
	tel     *telemetry.Metrics

	// Real-socket batched UDP listener (Config.UDPListen), alongside the
	// simulated-network listener set.
	udpListen string
	udpShards int
	udpBatch  int
	udpSrv    *dnsserver.UDPServer
	udpConns  []udpio.BatchConn
	udpWG     sync.WaitGroup

	// Resilient-connectivity layer (Config.Dialer / Config.Bootstrap).
	dialer    *dialer.HappyEyeballs
	bootstrap *dialer.Prober
	storm     *dialer.Storm

	// Observability extras (Config.Tracing / Config.Profiling).
	tracer    *qtrace.Tracer
	profiling bool
}

// New builds the forwarding pipeline. Close releases it.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Upstreams) == 0 {
		return nil, fmt.Errorf("proxy: no upstreams configured")
	}
	pool, err := dnstransport.NewPool(cfg.Upstreams, cfg.Pool)
	if err != nil {
		return nil, err
	}
	policy, err := steer.ParsePolicy(cfg.Policy)
	if err != nil {
		pool.Close()
		return nil, err
	}
	var opts []dnscache.Option
	if cfg.CacheEntries > 0 {
		opts = append(opts, dnscache.WithMaxEntries(cfg.CacheEntries))
	}
	if cfg.CacheBudget > 0 {
		opts = append(opts, dnscache.WithMemoryBudget(cfg.CacheBudget))
	}
	switch cfg.CacheAdmission {
	case "", "lru":
		if cfg.CacheAdmission == "" && cfg.CacheBudget > 0 {
			opts = append(opts, dnscache.WithTinyLFU())
		}
	case "tinylfu":
		opts = append(opts, dnscache.WithTinyLFU())
	default:
		pool.Close()
		return nil, fmt.Errorf("proxy: unknown cache admission policy %q (want lru or tinylfu)", cfg.CacheAdmission)
	}
	if cfg.CacheShards > 0 {
		opts = append(opts, dnscache.WithShards(cfg.CacheShards))
	}
	if cfg.MinTTL > 0 || cfg.MaxTTL > 0 {
		opts = append(opts, dnscache.WithTTLBounds(cfg.MinTTL, cfg.MaxTTL))
	}
	if cfg.NegativeTTL > 0 {
		opts = append(opts, dnscache.WithNegativeTTL(cfg.NegativeTTL))
	}
	timeout := cfg.UpstreamTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	if cfg.ServeStale > 0 {
		opts = append(opts, dnscache.WithServeStale(cfg.ServeStale))
	}
	if cfg.PrefetchWindow > 0 {
		opts = append(opts, dnscache.WithPrefetch(cfg.PrefetchWindow))
	}
	// Background refreshes (serve-stale, prefetch) carry no client
	// context, so they get the same bound a forwarded query would.
	opts = append(opts, dnscache.WithRefreshTimeout(timeout))
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	// …and their upstream traffic stays visible in the cost accounting.
	opts = append(opts, dnscache.WithTelemetry(tel))
	if cfg.OnTransaction != nil {
		tel.SetListener(cfg.OnTransaction)
	}
	var tracer *qtrace.Tracer
	if cfg.Tracing != nil {
		tracer = qtrace.New(*cfg.Tracing)
		tel.SetTracer(tracer)
	}
	st := steer.New(pool, steer.Config{
		Policy:       policy,
		HedgeDelay:   cfg.HedgeDelay,
		ExploreEvery: cfg.ExploreEvery,
	})
	bootstrap := cfg.Bootstrap
	storm := cfg.Storm
	var resolver dnstransport.Resolver = st
	if bootstrap != nil {
		if bootstrap.Seeder == nil {
			bootstrap.Seeder = st
		}
		if storm == nil {
			storm = &dialer.Storm{}
		}
		if storm.OnStorm == nil {
			storm.OnStorm = func() { bootstrap.Kick(context.Background()) }
		}
		// The storm detector watches final forwarding outcomes, above the
		// steerer: a query fails there only after steering and failover
		// exhausted every upstream — and a run of those is what an
		// access-network change looks like. Watching per-attempt pool
		// events instead would starve the detector the moment the pool's
		// slots settle into redial backoff (refusals bypass the observer).
		resolver = stormResolver{storm: storm, next: st}
	}
	var g *guard.Guard
	// The breaker sits between the cache and the steerer, so every miss —
	// foreground or background refresh — passes through AdmitMiss before
	// it can occupy an upstream connection. It wraps outside the storm
	// detector: breaker-refused misses are policy, not network evidence.
	if cfg.Guard != nil {
		g = guard.New(*cfg.Guard, tel)
		resolver = breakerResolver{g: g, next: resolver}
	}
	p := &Proxy{
		pool:      pool,
		steer:     st,
		cache:     dnscache.New(resolver, opts...),
		guard:     g,
		timeout:   timeout,
		tel:       tel,
		udpListen: cfg.UDPListen,
		udpShards: cfg.UDPShards,
		udpBatch:  cfg.UDPBatch,
		dialer:    cfg.Dialer,
		bootstrap: bootstrap,
		storm:     storm,
		tracer:    tracer,
		profiling: cfg.Profiling,
	}
	p.server = &dnsserver.Server{
		Handler:       p.Handler(),
		Chain:         cfg.Chain,
		Endpoints:     cfg.Endpoints,
		DoTOutOfOrder: !cfg.InOrderDoT,
		MaxUDPSize:    cfg.MaxUDPSize,
		UDPBatch:      cfg.UDPBatch,
		Guard:         g,
		Telemetry:     tel,
	}
	return p, nil
}

// breakerResolver gates upstream exchanges behind the guard's cache-miss
// circuit breaker: a per-client miss-rate check (when the serving layer
// put a client key in ctx) plus the global in-flight-miss ceiling. Refused
// misses return guard.ErrMissBudget without touching the steerer; the
// serving handler maps that to a DNS REFUSED.
type breakerResolver struct {
	g    *guard.Guard
	next dnstransport.Resolver
}

func (r breakerResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	// The breaker decision is the guard phase of a forwarded miss; on the
	// listener side the guard runs before the transaction exists, so this
	// span is the one place miss admission shows up in a trace.
	tx := telemetry.FromContext(ctx)
	tg := tx.TraceStart()
	err := r.g.AdmitMiss(ctx)
	tx.TraceSpan(qtrace.PhaseGuard, tg)
	if err != nil {
		return nil, err
	}
	defer r.g.MissDone()
	return r.next.Exchange(ctx, q)
}

func (r breakerResolver) Close() error { return r.next.Close() }

// stormResolver feeds every final forwarding outcome to the error-storm
// detector. It sits directly above the steerer: an error here means
// steering and pool failover exhausted every upstream for this query.
// Caller cancellations are neither success nor failure — a departed
// client says nothing about the network.
type stormResolver struct {
	storm *dialer.Storm
	next  dnstransport.Resolver
}

func (r stormResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	resp, err := r.next.Exchange(ctx, q)
	if err == nil || !errors.Is(err, context.Canceled) {
		r.storm.Note(err)
	}
	return resp, err
}

func (r stormResolver) Close() error { return r.next.Close() }

// fastHandler is the proxy's serving handler. It implements both serving
// paths the servers know about: the Message path (ServeDNS: cache →
// singleflight → upstream pool with a per-query timeout) and the wire fast
// path (ServeDNSWire: a packed-cache hit copied, ID-patched and
// TTL-decayed straight into the server's pooled buffer — no Unpack, no
// clone, no Pack). Servers try the wire path first and fall back to the
// Message path for misses and uncacheable shapes.
type fastHandler struct{ p *Proxy }

// ServeDNS implements dnsserver.Handler. Errors propagate to the server
// layer, which synthesizes SERVFAIL.
func (h fastHandler) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	ctx, cancel := context.WithTimeout(ctx, h.p.timeout)
	defer cancel()
	resp, err := h.p.cache.Exchange(ctx, q)
	if err != nil && errors.Is(err, guard.ErrMissBudget) {
		// A breaker-refused miss is a policy decision, not a server
		// failure: answer REFUSED so well-behaved clients back off or
		// fail over instead of retrying a SERVFAIL.
		r := q.Reply()
		r.RCode = dnswire.RCodeRefused
		return r, nil
	}
	return resp, err
}

// ServeDNSWire implements dnsserver.WireResponder: the zero-allocation
// cache-hit pipeline. Telemetry verdicts are unchanged from the Message
// path — the server began tx and records the ok verdict; only the cache
// outcome is annotated here.
func (h fastHandler) ServeDNSWire(tx *telemetry.Transaction, q *dnswire.Query, dst []byte, limit int) ([]byte, bool) {
	resp, outcome, ok := h.p.cache.ServeWire(tx, q, dst, limit)
	if !ok {
		return nil, false
	}
	tx.SetCache(outcome)
	return resp, true
}

// Handler returns the forwarding handler, usable behind any dnsserver
// transport: answer from cache, coalesce concurrent identical misses, and
// forward to the upstream pool with a per-query timeout. The handler also
// implements dnsserver.WireResponder, so servers that consult the wire
// fast path serve cache hits without building a Message.
func (p *Proxy) Handler() dnsserver.Handler {
	return fastHandler{p: p}
}

// Start brings up the full listener set on a simulated network host
// (UDP/TCP :53, and with a Chain, DoT :853 and DoH :443), plus — when
// Config.UDPListen is set — the real-socket batched UDP listener.
func (p *Proxy) Start(n *netsim.Network, host string) error {
	if p.run != nil {
		return fmt.Errorf("proxy: already started")
	}
	if p.bootstrap != nil {
		// Sweep reachability before accepting queries: by the time the
		// listeners are up, the steering scoreboard already knows which
		// upstream×protocol combinations are dead, so the first clients
		// never pay to rediscover them.
		p.bootstrap.Run(context.Background())
	}
	run, err := p.server.Start(n, host)
	if err != nil {
		return err
	}
	p.run = run
	if p.udpListen != "" {
		if err := p.startUDPListen(); err != nil {
			p.run.Close()
			p.run = nil
			return err
		}
	}
	return nil
}

// startUDPListen binds the SO_REUSEPORT shard sockets and serves them
// with the batched loop.
func (p *Proxy) startUDPListen() error {
	conns, err := udpio.ListenShards("udp", p.udpListen, p.udpShards)
	if err != nil {
		return fmt.Errorf("proxy: udp listen %s: %w", p.udpListen, err)
	}
	p.udpConns = conns
	p.udpSrv = &dnsserver.UDPServer{
		Handler:   p.Handler(),
		Guard:     p.guard,
		Telemetry: p.tel,
	}
	p.udpWG.Add(1)
	go func() {
		defer p.udpWG.Done()
		p.udpSrv.ServeBatch(conns, p.udpBatch)
	}()
	return nil
}

// UDPAddr returns the real-socket UDP listener's bound address, or nil
// without Config.UDPListen — the way to discover the port after ":0".
func (p *Proxy) UDPAddr() net.Addr {
	if len(p.udpConns) == 0 {
		return nil
	}
	return p.udpConns[0].LocalAddr()
}

// UDPShardCount reports how many SO_REUSEPORT shard sockets the
// real-socket UDP listener bound (0 without Config.UDPListen). Unlike
// UDPShardStats it is populated as soon as Start returns, without
// waiting for the serve loops to spin up.
func (p *Proxy) UDPShardCount() int {
	return len(p.udpConns)
}

// UDPShardStats snapshots the batched UDP listener's per-shard counters:
// the real-socket listener's when one is up, otherwise the simulated
// listener's (non-nil only with Config.UDPBatch set).
func (p *Proxy) UDPShardStats() []dnsserver.UDPShardStats {
	if p.udpSrv != nil {
		return p.udpSrv.ShardStats()
	}
	if p.run != nil {
		return p.run.UDPShardStats()
	}
	return nil
}

// Close stops the listeners (if started) and releases the cache and every
// pooled upstream connection.
func (p *Proxy) Close() error {
	for _, c := range p.udpConns {
		c.Close()
	}
	p.udpWG.Wait()
	p.udpConns = nil
	p.udpSrv = nil
	if p.run != nil {
		p.run.Close()
		p.run = nil
	}
	err := p.cache.Close() // closes the steerer, and beneath it the pool
	if p.tracer != nil {
		// After the cache is down no foreground transaction can finish;
		// closing last means every trace had its chance to reach the log.
		p.tracer.Close()
	}
	return err
}

// CacheStats snapshots cache effectiveness.
func (p *Proxy) CacheStats() dnscache.Stats { return p.cache.Stats() }

// UpstreamStats snapshots per-upstream pool health.
func (p *Proxy) UpstreamStats() []dnstransport.UpstreamStats { return p.pool.Stats() }

// SteeringReport snapshots the steering layer: the active policy and each
// upstream's live SRTT/success model, best-ranked first.
func (p *Proxy) SteeringReport() steer.Report { return p.steer.Report() }

// Guard returns the proxy's abuse guard, or nil when Config.Guard was not
// set — for tests and embedders that want the live Report.
func (p *Proxy) Guard() *guard.Guard { return p.guard }

// Bootstrap returns the proxy's reachability prober, or nil when
// Config.Bootstrap was not set — for embedders that want to Kick a
// re-sweep on an external network-change signal.
func (p *Proxy) Bootstrap() *dialer.Prober { return p.bootstrap }

// Telemetry returns the proxy's metrics sink, for snapshots beyond what
// CostReport packages or for registering a transaction Listener late.
func (p *Proxy) Telemetry() *telemetry.Metrics { return p.tel }

// CacheReport is the cache section of a CostReport.
type CacheReport struct {
	dnscache.Stats
	// Entries is the live entry count; Shards the lock-partition count.
	Entries int `json:"entries"`
	Shards  int `json:"shards"`
	// BudgetBytes is the configured memory budget; omitted when the cache
	// is entry-count bounded (bytes_live in Stats still reports footprint).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// HitRatio is cache-answered lookups — fresh and stale hits — over
	// all lookups (hits+stale_hits+misses+coalesced), 0–1. Stale hits
	// count as hits: with serve-stale carrying traffic through an
	// upstream outage, the ratio must show the cache working, not
	// collapsing.
	HitRatio float64 `json:"hit_ratio"`
}

// CostReport is the /debug/cost payload: the telemetry snapshot joined
// with the structural state only the proxy can see — cache occupancy and
// per-upstream pool health.
type CostReport struct {
	Telemetry *telemetry.Snapshot          `json:"telemetry"`
	Cache     CacheReport                  `json:"cache"`
	Upstreams []dnstransport.UpstreamStats `json:"upstreams"`
	Steering  steer.Report                 `json:"steering"`
	// Guard is the abuse guard's decision counters and live breaker state;
	// omitted when the proxy runs unguarded.
	Guard *guard.Report `json:"guard,omitempty"`
	// Dialer is the Happy-Eyeballs race memory (winning family per
	// upstream, demotion state); omitted without Config.Dialer.
	Dialer *dialer.Report `json:"dialer,omitempty"`
	// Bootstrap is the reachability prober's cached verdict table;
	// omitted without Config.Bootstrap.
	Bootstrap *dialer.ProbeReport `json:"bootstrap,omitempty"`
	// StormsFired counts error storms that triggered a bootstrap
	// re-sweep.
	StormsFired int `json:"storms_fired,omitempty"`
	// UDPShards is the batched UDP listener's per-shard serving counters;
	// omitted when UDP runs the per-packet loop.
	UDPShards []dnsserver.UDPShardStats `json:"udp_shards,omitempty"`
	// Trace is the tail sampler's decision counters and live slow
	// thresholds; omitted without Config.Tracing.
	Trace *qtrace.Stats `json:"trace,omitempty"`
}

// CostReport assembles the current cost view of the proxy.
func (p *Proxy) CostReport() CostReport {
	cs := p.cache.Stats()
	cr := CacheReport{
		Stats:       cs,
		Entries:     p.cache.Len(),
		Shards:      p.cache.Shards(),
		BudgetBytes: p.cache.MemoryBudget(),
	}
	if total := cs.Hits + cs.StaleHits + cs.Misses + cs.Coalesced; total > 0 {
		cr.HitRatio = float64(cs.Hits+cs.StaleHits) / float64(total)
	}
	report := CostReport{
		Telemetry: p.tel.Snapshot(),
		Cache:     cr,
		Upstreams: p.pool.Stats(),
		Steering:  p.steer.Report(),
		UDPShards: p.UDPShardStats(),
	}
	if p.guard != nil {
		gr := p.guard.Report()
		report.Guard = &gr
	}
	if p.dialer != nil {
		dr := p.dialer.Report()
		report.Dialer = &dr
	}
	if p.bootstrap != nil {
		br := p.bootstrap.Report()
		report.Bootstrap = &br
	}
	if p.storm != nil {
		report.StormsFired = p.storm.Fired()
	}
	if p.tracer != nil {
		ts := p.tracer.Stats()
		report.Trace = &ts
	}
	return report
}

// Tracer returns the proxy's query tracer, or nil when Config.Tracing was
// not set — for embedders that want Traces or Stats without HTTP.
func (p *Proxy) Tracer() *qtrace.Tracer { return p.tracer }

// Observability returns an HTTP handler exposing the proxy's runtime cost
// accounting on two paths:
//
//   - /metrics — Prometheus text exposition: telemetry counters and
//     latency summaries plus scrape-time gauges for cache occupancy and
//     per-upstream health (and, with Config.Profiling, Go runtime
//     gauges).
//   - /debug/cost — the CostReport as JSON, for humans and scripts.
//   - /debug/trace — sampled query traces as JSON (Config.Tracing),
//     filterable with ?verdict=, ?upstream=, ?min_ms= and ?n=.
//   - /debug/pprof/ — the stdlib profiler (Config.Profiling).
//
// The handler is stdlib net/http (the ops plane runs on a real socket,
// not the simulated network) and is safe to serve while the proxy is
// under load.
func (p *Proxy) Observability() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		report := p.CostReport()
		if err := report.Telemetry.WritePrometheus(w); err != nil {
			return
		}
		writeGauges(w, report)
		if p.profiling {
			writeRuntimeGauges(w)
		}
	})
	mux.HandleFunc("/debug/cost", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.CostReport())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if p.tracer == nil {
			http.Error(w, "tracing disabled (set proxy.Config.Tracing)", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		f := qtrace.Filter{
			Verdict:  q.Get("verdict"),
			Upstream: q.Get("upstream"),
		}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad min_ms: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDur = time.Duration(ms * float64(time.Millisecond))
		}
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(TraceReport{Stats: p.tracer.Stats(), Traces: p.tracer.Traces(f)})
	})
	if p.profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// TraceReport is the /debug/trace payload: the tail sampler's counters
// followed by the sampled traces, newest first.
type TraceReport struct {
	// Stats counts offers, keeps by reason, and drops, and reports the
	// live adaptive slow thresholds per class.
	Stats qtrace.Stats `json:"stats"`
	// Traces are the ring's sampled records after filtering.
	Traces []qtrace.View `json:"traces"`
}

// writeGauges appends the scrape-time series /metrics can only learn from
// the proxy itself — cache occupancy and hit ratio, per-upstream pool
// exchanges, failures and up/down state — rendered from the same
// CostReport /debug/cost serves, so the two endpoints can never
// disagree. The exposition format itself lives in telemetry.TextWriter.
func writeGauges(w io.Writer, report CostReport) error {
	t := telemetry.NewTextWriter(w)
	t.Family("dohcost_cache_entries", "Live cache entries.", "gauge")
	t.Value("dohcost_cache_entries", report.Cache.Entries)
	t.Family("dohcost_cache_hit_ratio", "Fresh+stale hits over all lookups since start.", "gauge")
	t.Value("dohcost_cache_hit_ratio", report.Cache.HitRatio)
	t.Family("dohcost_cache_bytes_live", "Accounted bytes of live cache entries (payload + keys + index overhead).", "gauge")
	t.Value("dohcost_cache_bytes_live", report.Cache.BytesLive)
	t.Family("dohcost_cache_arena_epochs_total", "Cache arena epoch rotations (live entries compacted, slabs recycled).", "counter")
	t.Value("dohcost_cache_arena_epochs_total", report.Cache.ArenaEpochs)
	t.Family("dohcost_cache_sketch_resets_total", "TinyLFU sketch aging resets (counters halved, doorkeeper cleared).", "counter")
	t.Value("dohcost_cache_sketch_resets_total", report.Cache.SketchResets)
	t.Family("dohcost_upstream_exchanges_total", "Successful exchanges per upstream.", "counter")
	for _, u := range report.Upstreams {
		t.LabeledValue("dohcost_upstream_exchanges_total", "upstream", u.Name, u.Exchanges)
	}
	t.Family("dohcost_upstream_failures_total", "Failed exchanges per upstream.", "counter")
	for _, u := range report.Upstreams {
		t.LabeledValue("dohcost_upstream_failures_total", "upstream", u.Name, u.Failures)
	}
	t.Family("dohcost_upstream_up", "Whether the upstream is accepting traffic (0 = in backoff).", "gauge")
	for _, u := range report.Upstreams {
		up := 1
		if u.Down {
			up = 0
		}
		t.LabeledValue("dohcost_upstream_up", "upstream", u.Name, up)
	}
	t.Family("dohcost_upstream_srtt_seconds", "Steering model: smoothed RTT per upstream (0 until sampled).", "gauge")
	for _, u := range report.Steering.Upstreams {
		t.LabeledValue("dohcost_upstream_srtt_seconds", "upstream", u.Name, u.SRTTMs/1e3)
	}
	t.Family("dohcost_upstream_success_rate", "Steering model: attempt-success EWMA per upstream.", "gauge")
	for _, u := range report.Steering.Upstreams {
		t.LabeledValue("dohcost_upstream_success_rate", "upstream", u.Name, u.SuccessRate)
	}
	if b := report.Bootstrap; b != nil {
		t.Family("dohcost_bootstrap_sweeps_total", "Completed reachability probe sweeps.", "counter")
		t.Value("dohcost_bootstrap_sweeps_total", b.Sweeps)
		t.Family("dohcost_bootstrap_target_ok", "Latest probe verdict per upstream/protocol combination (1 = reachable).", "gauge")
		for _, v := range b.Verdicts {
			ok := 0
			if v.OK {
				ok = 1
			}
			t.LabeledValue2("dohcost_bootstrap_target_ok", "upstream", v.Upstream, "proto", v.Proto, ok)
		}
		t.Family("dohcost_storms_fired_total", "Error storms that triggered a bootstrap re-sweep.", "counter")
		t.Value("dohcost_storms_fired_total", report.StormsFired)
	}
	if g := report.Guard; g != nil {
		t.Family("dohcost_guard_inflight_misses", "Cache misses currently holding a breaker slot.", "gauge")
		t.Value("dohcost_guard_inflight_misses", g.InflightMisses)
		t.Family("dohcost_guard_cookie_epoch", "Current server-cookie rotation epoch (0 when cookies are disabled).", "gauge")
		t.Value("dohcost_guard_cookie_epoch", g.CookieEpoch)
	}
	if tr := report.Trace; tr != nil {
		t.Family("dohcost_trace_offered_total", "Completed transactions offered to the tail sampler.", "counter")
		t.Value("dohcost_trace_offered_total", tr.Offered)
		t.Family("dohcost_trace_kept_total", "Traces kept by the tail sampler, by reason.", "counter")
		t.LabeledValue("dohcost_trace_kept_total", "reason", "errored", tr.KeptErrored)
		t.LabeledValue("dohcost_trace_kept_total", "reason", "slow", tr.KeptSlow)
		t.LabeledValue("dohcost_trace_kept_total", "reason", "baseline", tr.KeptBaseline)
		t.Family("dohcost_trace_ring_dropped_total", "Kept traces dropped at the ring (slot contended mid-write).", "counter")
		t.Value("dohcost_trace_ring_dropped_total", tr.RingDropped)
		t.Family("dohcost_trace_slow_threshold_seconds", "Live adaptive slow threshold per trace class.", "gauge")
		for _, cl := range [...]string{"error", "cache", "upstream"} {
			t.LabeledValue("dohcost_trace_slow_threshold_seconds", "class", cl, tr.SlowThresholdMs[cl]/1e3)
		}
	}
	return t.Err()
}

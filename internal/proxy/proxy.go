// Package proxy assembles the production forwarding path the study's
// findings point at: the full listener set (UDP :53, TCP :53, DoT :853,
// DoH :443) in front of a sharded TTL cache with singleflight coalescing
// and a pool of persistent upstream connections with failover.
//
// The paper shows DoH's cost is dominated by connection setup and
// resolver-side behaviour; a forwarding proxy amortizes the former with
// the connection pool and erases most of the latter with the cache, which
// is exactly how the public resolvers in Table 1 keep their DoH latencies
// close to UDP.
package proxy

import (
	"context"
	"fmt"
	"time"

	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// Config assembles a forwarding proxy.
type Config struct {
	// Upstreams are the recursive resolvers to forward cache misses to, in
	// failover preference order. Required.
	Upstreams []dnstransport.PoolUpstream
	// Pool tunes the upstream connection pool (conns per upstream, health
	// thresholds, backoff).
	Pool dnstransport.PoolConfig
	// CacheEntries bounds the response cache; 0 means the dnscache default.
	CacheEntries int
	// CacheShards sets the cache's lock partitions; 0 means the default.
	CacheShards int
	// MinTTL/MaxTTL clamp cached TTLs; zero values use dnscache defaults.
	MinTTL, MaxTTL time.Duration
	// NegativeTTL caps NXDOMAIN/NODATA caching; 0 means the default.
	NegativeTTL time.Duration
	// UpstreamTimeout bounds each forwarded exchange (on top of the
	// client-connection-lifetime context); 0 means 5s.
	UpstreamTimeout time.Duration
	// Chain supplies TLS material for the DoT and DoH listeners; nil
	// serves UDP/TCP only.
	Chain *tlsx.Chain
	// Endpoints configures DoH paths; nil serves the RFC default.
	Endpoints []dnsserver.Endpoint
	// InOrderDoT disables the out-of-order DoT reply scheduling that is
	// otherwise the production default (the paper found only Cloudflare
	// did this, and credits it for DoT's best-case behaviour).
	InOrderDoT bool
}

// Proxy is a forwarding resolver deployment: cache → singleflight →
// upstream pool, exposed over every transport the study compares.
type Proxy struct {
	pool    *dnstransport.Pool
	cache   *dnscache.Cache
	timeout time.Duration
	server  *dnsserver.Server
	run     *dnsserver.Running
}

// New builds the forwarding pipeline. Close releases it.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Upstreams) == 0 {
		return nil, fmt.Errorf("proxy: no upstreams configured")
	}
	pool, err := dnstransport.NewPool(cfg.Upstreams, cfg.Pool)
	if err != nil {
		return nil, err
	}
	var opts []dnscache.Option
	if cfg.CacheEntries > 0 {
		opts = append(opts, dnscache.WithMaxEntries(cfg.CacheEntries))
	}
	if cfg.CacheShards > 0 {
		opts = append(opts, dnscache.WithShards(cfg.CacheShards))
	}
	if cfg.MinTTL > 0 || cfg.MaxTTL > 0 {
		opts = append(opts, dnscache.WithTTLBounds(cfg.MinTTL, cfg.MaxTTL))
	}
	if cfg.NegativeTTL > 0 {
		opts = append(opts, dnscache.WithNegativeTTL(cfg.NegativeTTL))
	}
	timeout := cfg.UpstreamTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	p := &Proxy{
		pool:    pool,
		cache:   dnscache.New(pool, opts...),
		timeout: timeout,
	}
	p.server = &dnsserver.Server{
		Handler:       p.Handler(),
		Chain:         cfg.Chain,
		Endpoints:     cfg.Endpoints,
		DoTOutOfOrder: !cfg.InOrderDoT,
	}
	return p, nil
}

// Handler returns the forwarding handler, usable behind any dnsserver
// transport: answer from cache, coalesce concurrent identical misses, and
// forward to the upstream pool with a per-query timeout. Errors propagate
// to the server layer, which synthesizes SERVFAIL.
func (p *Proxy) Handler() dnsserver.Handler {
	return dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		ctx, cancel := context.WithTimeout(ctx, p.timeout)
		defer cancel()
		return p.cache.Exchange(ctx, q)
	})
}

// Start brings up the full listener set on a simulated network host
// (UDP/TCP :53, and with a Chain, DoT :853 and DoH :443).
func (p *Proxy) Start(n *netsim.Network, host string) error {
	if p.run != nil {
		return fmt.Errorf("proxy: already started")
	}
	run, err := p.server.Start(n, host)
	if err != nil {
		return err
	}
	p.run = run
	return nil
}

// Close stops the listeners (if started) and releases the cache and every
// pooled upstream connection.
func (p *Proxy) Close() error {
	if p.run != nil {
		p.run.Close()
		p.run = nil
	}
	return p.cache.Close() // closes the pool beneath it
}

// CacheStats snapshots cache effectiveness.
func (p *Proxy) CacheStats() dnscache.Stats { return p.cache.Stats() }

// UpstreamStats snapshots per-upstream pool health.
func (p *Proxy) UpstreamStats() []dnstransport.UpstreamStats { return p.pool.Stats() }

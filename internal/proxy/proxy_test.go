package proxy

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// upstreamHost is one authoritative deployment behind the proxy.
type upstreamHost struct {
	host    string
	queries atomic.Int64
	run     *dnsserver.Running
}

// startUpstream deploys a counting Static resolver at host (UDP/TCP only —
// the proxy forwards over TCP here).
func startUpstream(t *testing.T, n *netsim.Network, host string) *upstreamHost {
	t.Helper()
	u := &upstreamHost{host: host}
	inner := dnsserver.Static(netip.MustParseAddr("192.0.2.77"), 300)
	srv := &dnsserver.Server{
		Handler: dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			u.queries.Add(1)
			return inner.ServeDNS(ctx, q)
		}),
	}
	run, err := srv.Start(n, host)
	if err != nil {
		t.Fatal(err)
	}
	u.run = run
	t.Cleanup(run.Close)
	return u
}

// tcpUpstream builds a pool upstream forwarding to host over TCP.
func tcpUpstream(n *netsim.Network, proxyHost, host string) dnstransport.PoolUpstream {
	return dnstransport.PoolUpstream{
		Name: host,
		Dial: func(ctx context.Context) (dnstransport.Resolver, error) {
			return dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
				return n.DialContext(ctx, proxyHost, host+":53")
			}), nil
		},
	}
}

// startProxy brings up a full-listener proxy at proxyHost forwarding to the
// given upstream hosts.
func startProxy(t *testing.T, n *netsim.Network, proxyHost string, upstreams ...string) (*Proxy, *tlsx.Chain) {
	t.Helper()
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(proxyHost))
	if err != nil {
		t.Fatal(err)
	}
	var ups []dnstransport.PoolUpstream
	for _, h := range upstreams {
		ups = append(ups, tcpUpstream(n, proxyHost, h))
	}
	p, err := New(Config{
		Upstreams:       ups,
		Pool:            dnstransport.PoolConfig{ConnsPerUpstream: 2, MaxFailures: 1, BackoffBase: time.Minute},
		Chain:           chain,
		Endpoints:       []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
		UpstreamTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(n, proxyHost); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, chain
}

func proxyClients(t *testing.T, n *netsim.Network, host string, chain *tlsx.Chain) map[string]dnstransport.Resolver {
	t.Helper()
	pc, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	udp := dnstransport.NewUDPClient(pc, netsim.Addr(host+":53"))
	tcp := dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", host+":53") })
	dot := dnstransport.NewDoTClient(func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", host+":853") }, chain.ClientConfig(host))
	doh := &dnstransport.DoHClient{
		Dial:       func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", host+":443") },
		TLS:        chain.ClientConfig(host),
		Persistent: true,
	}
	clients := map[string]dnstransport.Resolver{"udp": udp, "tcp": tcp, "dot": dot, "doh": doh}
	for _, c := range clients {
		c := c
		t.Cleanup(func() { c.Close() })
	}
	return clients
}

func TestProxyServesAllTransportsFromCacheAndPool(t *testing.T) {
	n := netsim.New(1)
	up := startUpstream(t, n, "recursive.upstream")
	p, chain := startProxy(t, n, "proxy.dns", "recursive.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)

	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			// Same qname over every transport: the first transport pays the
			// upstream round trip, the rest hit the shared cache.
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "shared.example.", dnswire.TypeA))
			if err != nil {
				t.Fatal(err)
			}
			if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
				t.Fatalf("resp = %v", resp)
			}
			if a := resp.Answers[0].Data.(*dnswire.A); a.Addr != netip.MustParseAddr("192.0.2.77") {
				t.Fatalf("answer = %v", a.Addr)
			}
		})
	}
	if got := up.queries.Load(); got != 1 {
		t.Errorf("upstream saw %d queries, want 1 (cache shared across listeners)", got)
	}
	s := p.CacheStats()
	if s.Misses != 1 || s.Hits != 3 {
		t.Errorf("cache stats = %+v, want 1 miss + 3 hits", s)
	}
}

func TestProxyCoalescesConcurrentMisses(t *testing.T) {
	n := netsim.New(2)
	// A slow upstream widens the coalescing window.
	slow := &upstreamHost{host: "slow.upstream"}
	inner := dnsserver.Static(netip.MustParseAddr("192.0.2.77"), 300)
	srv := &dnsserver.Server{
		Handler: dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			slow.queries.Add(1)
			time.Sleep(30 * time.Millisecond)
			return inner.ServeDNS(ctx, q)
		}),
	}
	run, err := srv.Start(n, slow.host)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)

	p, chain := startProxy(t, n, "proxy.dns", slow.host)
	clients := proxyClients(t, n, "proxy.dns", chain)
	c := clients["tcp"]

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "co.example.", dnswire.TypeA))
			if err != nil {
				t.Errorf("exchange: %v", err)
				return
			}
			if len(resp.Answers) != 1 {
				t.Errorf("answers = %v", resp.Answers)
			}
		}()
	}
	wg.Wait()
	if got := slow.queries.Load(); got != 1 {
		t.Errorf("upstream saw %d exchanges, want 1 (singleflight)", got)
	}
	if s := p.CacheStats(); s.Coalesced != 11 {
		t.Errorf("coalesced = %d, want 11", s.Coalesced)
	}
}

func TestProxyFailsOverAcrossUpstreams(t *testing.T) {
	n := netsim.New(3)
	prim := startUpstream(t, n, "primary.upstream")
	sec := startUpstream(t, n, "secondary.upstream")
	p, chain := startProxy(t, n, "proxy.dns", "primary.upstream", "secondary.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)
	c := clients["udp"]

	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "one.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if prim.queries.Load() != 1 || sec.queries.Load() != 0 {
		t.Fatalf("primary=%d secondary=%d", prim.queries.Load(), sec.queries.Load())
	}

	// Kill the primary; fresh names must be answered by the secondary.
	prim.run.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("fo%d.example.", i)), dnswire.TypeA))
		if err != nil {
			t.Fatalf("failover query %d: %v", i, err)
		}
		if resp.RCode != dnswire.RCodeSuccess {
			t.Fatalf("failover query %d: rcode %v", i, resp.RCode)
		}
	}
	if sec.queries.Load() == 0 {
		t.Error("secondary never reached after primary died")
	}
	stats := p.UpstreamStats()
	if !stats[0].Down {
		t.Errorf("primary not marked down: %+v", stats)
	}
}

func TestProxyAnswersSERVFAILWhenAllUpstreamsDown(t *testing.T) {
	n := netsim.New(4)
	up := startUpstream(t, n, "only.upstream")
	_, chain := startProxy(t, n, "proxy.dns", "only.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)
	up.run.Close()

	for name, c := range clients {
		if name == "udp" {
			continue // UDP would retry into its timeout; streams fail fast
		}
		t.Run(name, func(t *testing.T) {
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, dnswire.Name("dead-"+name+".example."), dnswire.TypeA))
			if err != nil {
				t.Fatal(err)
			}
			if resp.RCode != dnswire.RCodeServerFailure {
				t.Errorf("rcode = %v, want SERVFAIL", resp.RCode)
			}
		})
	}
}

func TestProxyNegativeAnswersForwarded(t *testing.T) {
	n := netsim.New(5)
	// Upstream is a zone: names outside it get NXDOMAIN with authority.
	zone := dnsserver.NewZone("example.org.")
	zone.AddA("www.example.org.", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")})
	srv := &dnsserver.Server{Handler: zone}
	run, err := srv.Start(n, "zone.upstream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)

	p, chain := startProxy(t, n, "proxy.dns", "zone.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)
	c := clients["dot"]

	for i := 0; i < 3; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "missing.example.org.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode != dnswire.RCodeNameError {
			t.Fatalf("rcode = %v, want NXDOMAIN", resp.RCode)
		}
	}
	if s := p.CacheStats(); s.Hits != 2 {
		t.Errorf("negative answer not cached: %+v", s)
	}
}

// TestProxyHedgedPolicySteersAroundDegradedUpstream deploys the preferred
// upstream behind a 100ms (one-way) link and a clean runner-up, with the
// hedged policy and a 10ms hedge delay: queries must be answered far below
// the degraded upstream's RTT, the hedge counters must move, and the
// steering model must learn to rank the clean upstream first.
func TestProxyHedgedPolicySteersAroundDegradedUpstream(t *testing.T) {
	n := netsim.New(6)
	slow := startUpstream(t, n, "slow.upstream")
	fast := startUpstream(t, n, "fast.upstream")
	n.SetLink("proxy.dns", "slow.upstream", netsim.Link{Delay: 100 * time.Millisecond})

	p, err := New(Config{
		Upstreams: []dnstransport.PoolUpstream{
			tcpUpstream(n, "proxy.dns", "slow.upstream"),
			tcpUpstream(n, "proxy.dns", "fast.upstream"),
		},
		Policy:          "hedged",
		HedgeDelay:      10 * time.Millisecond,
		UpstreamTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}
	pc, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	c := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	t.Cleanup(func() { c.Close() })

	for i := 0; i < 6; i++ {
		start := time.Now()
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("h%d.example.", i)), dnswire.TypeA))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.RCode != dnswire.RCodeSuccess {
			t.Fatalf("query %d: rcode %v", i, resp.RCode)
		}
		if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
			t.Errorf("query %d took %v, hedging should beat the 200ms degraded round trip", i, elapsed)
		}
	}
	if fast.queries.Load() == 0 {
		t.Error("clean upstream never answered: hedging did not steer")
	}
	snap := p.Telemetry().Snapshot()
	if snap.HedgesFired == 0 {
		t.Errorf("hedges fired = 0 with a degraded primary; snapshot: %+v", snap)
	}
	rep := p.SteeringReport()
	if rep.Policy != "hedged" {
		t.Errorf("steering policy = %q, want hedged", rep.Policy)
	}
	if len(rep.Upstreams) != 2 || rep.Upstreams[0].Name != "fast.upstream" {
		t.Errorf("steering rank = %+v, want fast.upstream first", rep.Upstreams)
	}
	_ = slow

	// The new steering series reach /metrics alongside the hedge counters.
	srv := httptest.NewServer(p.Observability())
	t.Cleanup(srv.Close)
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dohcost_hedges_fired_total",
		"dohcost_upstream_srtt_seconds{upstream=\"fast.upstream\"}",
		"dohcost_upstream_success_rate{upstream=\"slow.upstream\"}",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestProxyServeStaleAnswersWithDeadUpstream clamps cached TTLs to 500ms,
// lets the only entry expire, kills the only upstream, and checks the
// proxy keeps answering from the stale entry (RFC 8767) instead of
// SERVFAILing.
func TestProxyServeStaleAnswersWithDeadUpstream(t *testing.T) {
	n := netsim.New(7)
	up := startUpstream(t, n, "mortal.upstream")
	p, err := New(Config{
		Upstreams:       []dnstransport.PoolUpstream{tcpUpstream(n, "proxy.dns", "mortal.upstream")},
		MaxTTL:          500 * time.Millisecond,
		ServeStale:      time.Minute,
		UpstreamTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}
	pc, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	c := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	c.Timeout = 2 * time.Second
	t.Cleanup(func() { c.Close() })

	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "st.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond) // past the clamped TTL
	up.run.Close()                     // upstream gone

	start := time.Now()
	resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "st.example.", dnswire.TypeA))
	if err != nil {
		t.Fatalf("stale query: %v", err)
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("stale answer = %v, want the cached A record", resp)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("stale answer took %v, must not wait on the dead upstream", elapsed)
	}
	snap := p.Telemetry().Snapshot()
	if got := snap.CacheEvents["stale_hit"]; got == 0 {
		t.Error("stale_hit never counted")
	}
	if s := p.CacheStats(); s.StaleHits == 0 || s.Refreshes == 0 {
		t.Errorf("cache stats = %+v, want stale hit + attempted refresh", s)
	}
	// The background refresh's failed attempt against the dead upstream is
	// visible in the aggregate accounting (it runs in a background
	// Transaction)…
	deadline := time.Now().Add(2 * time.Second)
	for snap.PoolFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		snap = p.Telemetry().Snapshot()
	}
	if snap.PoolFailures == 0 {
		t.Error("background refresh failure invisible to telemetry")
	}
	// …but it is not a client query.
	if got := snap.Queries["udp"]; got != 2 {
		t.Errorf("udp queries = %d, want 2 (background refresh must not count)", got)
	}
}

package proxy

// Go runtime gauges for /metrics, behind Config.Profiling. Sourced from
// runtime/metrics — the sampled, allocation-free successor to
// runtime.ReadMemStats — so a scrape never stops the world.

import (
	"io"
	"math"
	"runtime/metrics"

	"dohcost/internal/telemetry"
)

// runtimeSamples is the fixed sample set every scrape reads. Package-level
// so the name→index layout is built once; metrics.Read fills values in
// place and is safe for concurrent scrapes only with distinct sample
// slices, so writeRuntimeGauges copies it per call.
var runtimeSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/pauses:seconds"},
}

// writeRuntimeGauges appends the Go runtime's health gauges to a /metrics
// scrape: live goroutines, heap object bytes, and the p99 GC pause from
// the runtime's own pause histogram.
func writeRuntimeGauges(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	metrics.Read(samples)

	t := telemetry.NewTextWriter(w)
	t.Family("dohcost_go_goroutines", "Live goroutines.", "gauge")
	t.Value("dohcost_go_goroutines", sampleValue(samples[0]))
	t.Family("dohcost_go_heap_bytes", "Bytes of live heap objects.", "gauge")
	t.Value("dohcost_go_heap_bytes", sampleValue(samples[1]))
	t.Family("dohcost_go_gc_pause_seconds", "p99 stop-the-world GC pause since process start.", "gauge")
	if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
		t.Value("dohcost_go_gc_pause_seconds", histQuantile(samples[2].Value.Float64Histogram(), 0.99))
	} else {
		t.Value("dohcost_go_gc_pause_seconds", 0)
	}
	return t.Err()
}

// sampleValue flattens a scalar runtime/metrics sample to float64;
// unexpected kinds read as 0 rather than panicking a scrape.
func sampleValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// histQuantile reads quantile q out of a runtime/metrics cumulative
// histogram, reporting the upper edge of the bucket the quantile falls in
// (the conservative answer for a pause-time gauge). Empty histograms
// report 0.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is this bucket's upper edge; the last bucket's
			// can be +Inf, where the lower edge is the best finite answer.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

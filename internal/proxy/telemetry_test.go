package proxy

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// TestProxyTelemetryEndToEnd drives queries through the full pipeline over
// UDP and DoH and asserts the telemetry subsystem observed what actually
// happened at every layer: listener accept, cache outcome, pool checkout,
// upstream exchange bytes, and final verdict — then scrapes /metrics and
// /debug/cost and checks both expositions carry the same story.
func TestProxyTelemetryEndToEnd(t *testing.T) {
	n := netsim.New(1)
	up := startUpstream(t, n, "up0.recursive")
	p, chain := startProxy(t, n, "proxy.dns", up.host)

	var summaries []*telemetry.Summary
	var mu sync.Mutex
	p.Telemetry().SetListener(telemetry.ListenerFunc(func(s *telemetry.Summary) {
		mu.Lock()
		summaries = append(summaries, s)
		mu.Unlock()
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	pc, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	udp := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	defer udp.Close()
	doh := &dnstransport.DoHClient{
		Dial:       func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, "client", "proxy.dns:443") },
		TLS:        chain.ClientConfig("proxy.dns"),
		Persistent: true,
	}
	defer doh.Close()

	// Query 1 (UDP): cold cache → miss, pool dial, upstream exchange.
	// Query 2 (UDP): same name → hit. Query 3 (DoH): same name → hit.
	q := dnswire.NewQuery(0, "telemetry.example.", dnswire.TypeA)
	for i, r := range []dnstransport.Resolver{udp, udp, doh} {
		if _, err := r.Exchange(ctx, q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	snap := p.Telemetry().Snapshot()
	for _, tt := range []struct {
		name      string
		got, want uint64
	}{
		{"queries[udp]", snap.Queries["udp"], 2},
		{"queries[doh]", snap.Queries["doh"], 1},
		{"verdicts[ok]", snap.Verdicts["ok"], 3},
		{"cache misses", snap.CacheEvents["miss"], 1},
		{"cache hits", snap.CacheEvents["hit"], 2},
		{"pool dials", snap.PoolDials, 1},
		{"pool exchanges", snap.PoolExchanges, 1},
	} {
		if tt.got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, tt.got, tt.want)
		}
	}
	if snap.UpstreamBytesSent == 0 || snap.UpstreamBytesReceived == 0 {
		t.Errorf("upstream byte accounting empty: sent=%d received=%d",
			snap.UpstreamBytesSent, snap.UpstreamBytesReceived)
	}
	if d := snap.Latency["udp"]; d == nil || d.Count != 2 {
		t.Errorf("udp latency distribution = %+v, want count 2", d)
	}
	if snap.UpstreamLatency.Count != 1 {
		t.Errorf("upstream latency count = %d, want 1", snap.UpstreamLatency.Count)
	}

	mu.Lock()
	if len(summaries) != 3 {
		t.Fatalf("listener saw %d summaries, want 3", len(summaries))
	}
	var missSummary *telemetry.Summary
	for _, s := range summaries {
		if s.Cache == "miss" {
			missSummary = s
		}
	}
	if missSummary == nil || missSummary.Server != up.host || missSummary.BytesReceived == 0 {
		t.Errorf("miss summary should name the upstream and carry bytes: %+v", missSummary)
	}
	mu.Unlock()

	// Scrape the ops plane the way Prometheus would.
	srv := httptest.NewServer(p.Observability())
	defer srv.Close()

	metrics := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		`dohcost_queries_total{proto="udp"} 2`,
		`dohcost_queries_total{proto="doh"} 1`,
		`dohcost_cache_events_total{event="hit"} 2`,
		"dohcost_pool_exchanges_total 1",
		`dohcost_query_latency_seconds{proto="udp",quantile="0.99"}`,
		"dohcost_cache_entries 1",
		`dohcost_upstream_up{upstream="up0.recursive"} 1`,
		`dohcost_upstream_exchanges_total{upstream="up0.recursive"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var report CostReport
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/cost")), &report); err != nil {
		t.Fatalf("/debug/cost is not JSON: %v", err)
	}
	if report.Telemetry.Queries["udp"] != 2 {
		t.Errorf("/debug/cost udp queries = %d, want 2", report.Telemetry.Queries["udp"])
	}
	if report.Cache.Hits != 2 || report.Cache.Entries != 1 {
		t.Errorf("/debug/cost cache = %+v, want 2 hits / 1 entry", report.Cache)
	}
	if len(report.Upstreams) != 1 || report.Upstreams[0].Exchanges != 1 {
		t.Errorf("/debug/cost upstreams = %+v, want 1 upstream with 1 exchange", report.Upstreams)
	}
}

// TestProxyTelemetrySERVFAILVerdict checks the failure half of the verdict
// accounting: with every upstream unreachable the pipeline synthesizes
// SERVFAIL, and telemetry must say so rather than counting an ok.
func TestProxyTelemetrySERVFAILVerdict(t *testing.T) {
	n := netsim.New(2)
	up := startUpstream(t, n, "up0.recursive")
	p, _ := startProxy(t, n, "proxy.dns", up.host)
	up.run.Close() // upstream gone before the first query

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pc, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	udp := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	defer udp.Close()

	resp, err := udp.Exchange(ctx, dnswire.NewQuery(0, "doomed.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServerFailure {
		t.Fatalf("rcode = %v, want SERVFAIL", resp.RCode)
	}
	snap := p.Telemetry().Snapshot()
	if snap.Verdicts["servfail"] != 1 {
		t.Errorf("servfail verdicts = %d, want 1", snap.Verdicts["servfail"])
	}
	if snap.PoolFailures == 0 {
		t.Error("pool failures should be counted when every upstream is down")
	}
}

// httpGet fetches a URL and returns the body.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

package proxy

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// TestProxyUnderLossyWifi drives 200 UDP queries from concurrent clients
// through the proxy over the lossy-wifi impairment profile and checks the
// serving path degrades the way a production resolver should: the failure
// rate stays bounded (the stub's retransmissions recover almost all
// drops), the cache keeps answering (hit counters advance), and the
// server-side verdicts stay clean — loss on the access link must not
// synthesize SERVFAILs.
func TestProxyUnderLossyWifi(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second lossy e2e under -short")
	}
	const (
		clients        = 10
		queriesPerConn = 20
		total          = clients * queriesPerConn
	)
	n := netsim.New(99)
	startUpstream(t, n, "up1.example")
	p, _ := startProxy(t, n, "proxy.dns", "up1.example")

	prof, ok := netsim.LookupProfile("lossy-wifi")
	if !ok {
		t.Fatal("lossy-wifi profile missing")
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures int
	)
	for c := 0; c < clients; c++ {
		host := clientName(c)
		n.ApplyProfile(host, "proxy.dns", prof)
		pc, err := n.ListenPacket(host + ":5353")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, pc *netsim.PacketConn) {
			defer wg.Done()
			u := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
			u.Timeout = 200 * time.Millisecond
			u.Retries = 2
			defer u.Close()
			for i := 0; i < queriesPerConn; i++ {
				// Few names per client: most queries must be cache hits.
				name := dnswire.Name(clientName(c) + "-n" + string(rune('a'+i%4)) + ".example.")
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				resp, err := u.Exchange(ctx, dnswire.NewQuery(0, name, dnswire.TypeA))
				cancel()
				if err != nil || resp.RCode != dnswire.RCodeSuccess {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}(c, pc)
	}
	wg.Wait()

	// 8% per-datagram loss, 3 attempts: P(all lost) ≈ 0.4%; a 10% bound
	// catches a broken retry path without flaking on an unlucky schedule.
	if failures > total/10 {
		t.Errorf("%d/%d queries failed on lossy-wifi, want <= %d (retransmission must bound the failure rate)",
			failures, total, total/10)
	}
	snap := p.Telemetry().Snapshot()
	if snap.CacheEvents["hit"] == 0 {
		t.Error("cache hit counter did not advance under loss")
	}
	if snap.CacheEvents["miss"] == 0 {
		t.Error("cache miss counter did not advance")
	}
	if snap.Verdicts["servfail"] != 0 {
		t.Errorf("server synthesized %d SERVFAILs — access-link loss must surface as client timeouts, not handler errors",
			snap.Verdicts["servfail"])
	}
	if got := snap.Queries["udp"]; got < uint64(total-failures) {
		t.Errorf("server saw %d udp queries, want >= %d", got, total-failures)
	}
}

func clientName(c int) string { return "lossy-c" + string(rune('0'+c%10)) + string(rune('a'+c/10)) }

// bigAnswerHandler returns enough A records to push the response past any
// small-MTU UDP cap while remaining well-formed.
func bigAnswerHandler(count int) dnsserver.Handler {
	return dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		r.Authoritative = true
		qq := q.Question1()
		base := netip.MustParseAddr("192.0.2.0").As4()
		for i := 0; i < count; i++ {
			a := base
			a[3] = byte(i + 1)
			r.Answers = append(r.Answers, dnswire.ResourceRecord{
				Name: qq.Name.Canonical(), Class: dnswire.ClassINET, TTL: 300,
				Data: &dnswire.A{Addr: netip.AddrFrom4(a)},
			})
		}
		return r, nil
	})
}

// TestProxyTCFallbackSmallMTU pins the RFC 7766 §5 escape hatch on
// small-MTU paths: with the link MTU below the response size and the proxy
// clamping UDP responses to the path MTU (MaxUDPSize), the oversized
// answer comes back as an honest TC=1 instead of a blackholed datagram,
// the client's TCP fallback fires (telemetry-visible), and the full answer
// arrives over the stream. The 29-record case lands in the (cap, 512]
// window, pinning that the clamp honors values below RFC 1035's 512-byte
// default — rounding it up there would re-blackhole the response.
func TestProxyTCFallbackSmallMTU(t *testing.T) {
	for _, answers := range []int{60, 29} {
		answers := answers
		t.Run(fmt.Sprintf("%d-answers", answers), func(t *testing.T) {
			testTCFallbackSmallMTU(t, answers)
		})
	}
}

func testTCFallbackSmallMTU(t *testing.T, answers int) {
	const mtu = 512
	n := netsim.New(5)

	// Upstream reached over TCP (no truncation); answer sizes over the UDP
	// cap are chosen by the caller.
	srv := &dnsserver.Server{Handler: bigAnswerHandler(answers)}
	upRun, err := srv.Start(n, "up1.example")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(upRun.Close)

	p, err := New(Config{
		Upstreams:  []dnstransport.PoolUpstream{tcpUpstream(n, "proxy.dns", "up1.example")},
		MaxUDPSize: mtu - netsim.DatagramHeaderBytes, // clamp responses to the path MTU
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}

	// Small-MTU access link: anything larger than 512 bytes on the wire is
	// blackholed, so only the clamp's TC=1 referral can get through.
	link := netsim.Link{Delay: 2 * time.Millisecond, MTU: mtu}
	n.SetLink("cli", "proxy.dns", link)

	pc, err := n.ListenPacket("cli:5353")
	if err != nil {
		t.Fatal(err)
	}
	u := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	u.Timeout = 300 * time.Millisecond
	u.Fallback = dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
		return n.DialContext(ctx, "cli", "proxy.dns:53")
	})
	defer u.Close()

	// Client-side telemetry sees the fallback decision.
	m := telemetry.New()
	tx := m.Begin(telemetry.ProtoUDP)
	ctx, cancel := context.WithTimeout(telemetry.NewContext(context.Background(), tx), 5*time.Second)
	defer cancel()
	resp, err := u.Exchange(ctx, dnswire.NewQuery(0, "big.example.", dnswire.TypeA))
	tx.Finish()
	if err != nil {
		t.Fatalf("exchange over small-MTU path: %v", err)
	}
	if resp.Truncated {
		t.Fatal("final answer still truncated — TCP fallback did not complete")
	}
	if len(resp.Answers) != answers {
		t.Fatalf("got %d answers, want the full %d over TCP", len(resp.Answers), answers)
	}
	snap := m.Snapshot()
	if snap.TCFallbacks == 0 {
		t.Error("client telemetry recorded no TC->TCP fallback")
	}
	server := p.Telemetry().Snapshot()
	if server.Queries["udp"] == 0 || server.Queries["tcp"] == 0 {
		t.Errorf("proxy should have served the query over udp then tcp, saw %v", server.Queries)
	}
}

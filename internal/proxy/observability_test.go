package proxy

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/qtrace"
	"dohcost/internal/tlsx"
)

// startTracedProxy brings up a proxy with tracing and profiling armed.
func startTracedProxy(t *testing.T, n *netsim.Network, proxyHost string, upstreams ...string) (*Proxy, *tlsx.Chain) {
	t.Helper()
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(proxyHost))
	if err != nil {
		t.Fatal(err)
	}
	var ups []dnstransport.PoolUpstream
	for _, h := range upstreams {
		ups = append(ups, tcpUpstream(n, proxyHost, h))
	}
	p, err := New(Config{
		Upstreams:       ups,
		Pool:            dnstransport.PoolConfig{ConnsPerUpstream: 2, MaxFailures: 1, BackoffBase: time.Minute},
		Chain:           chain,
		Endpoints:       []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
		UpstreamTimeout: 2 * time.Second,
		Tracing:         &qtrace.Config{SampleEvery: 1},
		Profiling:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(n, proxyHost); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, chain
}

// obsGet fetches one path from the proxy's observability mux.
func obsGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestObservabilityTraceEndpoint(t *testing.T) {
	n := netsim.New(7)
	startUpstream(t, n, "recursive.upstream")
	p, chain := startTracedProxy(t, n, "proxy.dns", "recursive.upstream")
	clients := proxyClients(t, n, "proxy.dns", chain)

	// One miss then repeated hits, over UDP and DoT so several proto
	// labels land in the rings.
	for i := 0; i < 4; i++ {
		for _, proto := range []string{"udp", "dot"} {
			if _, err := clients[proto].Exchange(context.Background(), dnswire.NewQuery(0, "traced.example.", dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		}
	}

	srv := httptest.NewServer(p.Observability())
	defer srv.Close()

	code, body := obsGet(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d: %s", code, body)
	}
	var report TraceReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("bad /debug/trace JSON: %v", err)
	}
	if report.Stats.Offered < 8 {
		t.Errorf("stats.offered = %d, want >= 8", report.Stats.Offered)
	}
	if len(report.Traces) < 8 {
		t.Fatalf("got %d traces, want >= 8 with SampleEvery=1", len(report.Traces))
	}
	for _, v := range report.Traces {
		if v.QName != "traced.example." {
			t.Errorf("trace qname = %q", v.QName)
		}
		if len(v.Spans) == 0 {
			t.Errorf("trace %s/%s has no spans", v.Proto, v.Verdict)
		}
	}

	// The upstream filter keeps only the miss that went to the pool.
	code, body = obsGet(t, srv, "/debug/trace?upstream=recursive.upstream")
	if code != http.StatusOK {
		t.Fatalf("filtered /debug/trace = %d", code)
	}
	var filtered TraceReport
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Traces) == 0 {
		t.Error("upstream filter matched no traces; the miss should carry the upstream label")
	}
	for _, v := range filtered.Traces {
		if v.Upstream != "recursive.upstream" {
			t.Errorf("filtered trace upstream = %q", v.Upstream)
		}
	}

	// min_ms high enough to exclude everything.
	code, body = obsGet(t, srv, "/debug/trace?min_ms=60000")
	if code != http.StatusOK {
		t.Fatalf("min_ms /debug/trace = %d", code)
	}
	var none TraceReport
	if err := json.Unmarshal([]byte(body), &none); err != nil {
		t.Fatal(err)
	}
	if len(none.Traces) != 0 {
		t.Errorf("min_ms=60000 still returned %d traces", len(none.Traces))
	}

	// Bad parameters are a client error, not a panic.
	if code, _ = obsGet(t, srv, "/debug/trace?min_ms=bogus"); code != http.StatusBadRequest {
		t.Errorf("min_ms=bogus = %d, want 400", code)
	}

	// Metrics expose the trace sampler and runtime gauges.
	code, body = obsGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, series := range []string{
		"dohcost_trace_offered_total",
		"dohcost_trace_kept_total",
		"dohcost_trace_slow_threshold_seconds",
		"dohcost_go_goroutines",
		"dohcost_go_heap_bytes",
		"dohcost_go_gc_pause_seconds",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// pprof rides along when profiling is on.
	if code, _ = obsGet(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
}

func TestObservabilityTraceDisabled(t *testing.T) {
	n := netsim.New(8)
	startUpstream(t, n, "recursive.upstream")
	p, _ := startProxy(t, n, "proxy.dns", "recursive.upstream")

	srv := httptest.NewServer(p.Observability())
	defer srv.Close()

	if code, _ := obsGet(t, srv, "/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without tracing = %d, want 404", code)
	}
	// Runtime gauges are profiling-gated; the default proxy omits them.
	code, body := obsGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if strings.Contains(body, "dohcost_go_goroutines") {
		t.Error("/metrics exposes runtime gauges without Profiling")
	}
}

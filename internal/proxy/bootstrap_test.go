package proxy

import (
	"context"
	"net"
	"testing"
	"time"

	"dohcost/internal/dialer"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
)

// probeTarget builds a bootstrap probe that performs one real TCP
// exchange against host from proxyHost.
func probeTarget(n *netsim.Network, proxyHost, host string) dialer.Target {
	return dialer.Target{
		Upstream: host,
		Proto:    "tcp",
		Probe: func(ctx context.Context) (time.Duration, error) {
			r := dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
				return n.DialContext(ctx, proxyHost, host+":53")
			})
			defer r.Close()
			t0 := time.Now()
			if _, err := r.Exchange(ctx, dnswire.NewQuery(0, "probe.example.", dnswire.TypeA)); err != nil {
				return 0, err
			}
			return time.Since(t0), nil
		},
	}
}

// TestBootstrapSeedsSteering is the end-to-end bootstrap path: one
// upstream black-holes dials, the pre-listen probe sweep discovers it,
// and the seeded steering scoreboard routes the first real queries to
// the healthy upstream — the dead one's server never sees a query and
// no client ever pays its dial timeout.
func TestBootstrapSeedsSteering(t *testing.T) {
	n := netsim.New(31)
	alive := startUpstream(t, n, "alive.up")
	dead := startUpstream(t, n, "dead.up")
	n.SetDialFault("dead.up", netsim.DialFault{Blackhole: true})

	prober := &dialer.Prober{
		Timeout: 150 * time.Millisecond,
		Targets: []dialer.Target{
			// The dead upstream is listed FIRST: without seeding, the
			// fastest policy's cold-start cost of zero would send the
			// very first query into the blackhole.
			probeTarget(n, "proxy.dns", "dead.up"),
			probeTarget(n, "proxy.dns", "alive.up"),
		},
	}
	p, err := New(Config{
		Upstreams: []dnstransport.PoolUpstream{
			tcpUpstream(n, "proxy.dns", "dead.up"),
			tcpUpstream(n, "proxy.dns", "alive.up"),
		},
		Policy:    "fastest",
		Bootstrap: prober,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}

	// Start ran the sweep synchronously: verdicts are cached already.
	report := p.Bootstrap().Report()
	if report.Sweeps != 1 || len(report.Verdicts) != 2 {
		t.Fatalf("bootstrap report %+v, want one completed sweep of two targets", report)
	}
	for _, v := range report.Verdicts {
		if want := v.Upstream == "alive.up"; v.OK != want {
			t.Fatalf("verdict %+v", v)
		}
	}

	// The scoreboard is seeded: dead.up carries one synthetic failure
	// sample at the probe timeout, so it ranks behind alive.up.
	sr := p.SteeringReport()
	if len(sr.Upstreams) != 2 || sr.Upstreams[0].Name != "alive.up" {
		t.Fatalf("steering rank %+v, want alive.up first", sr.Upstreams)
	}
	if s := sr.Upstreams[1]; s.Name != "dead.up" || s.Samples != 1 || s.SuccessRate != 0 {
		t.Fatalf("dead.up seed %+v, want one failure sample", s)
	}

	// First real queries (fewer than the exploration cadence) go
	// straight to the healthy upstream, fast.
	h := p.Handler()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		start := time.Now()
		resp, err := h.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "seeded.example.", dnswire.TypeA))
		cancel()
		if err != nil || resp.RCode != dnswire.RCodeSuccess {
			t.Fatalf("query %d: resp=%v err=%v", i, resp, err)
		}
		if e := time.Since(start); e > 500*time.Millisecond {
			t.Fatalf("query %d took %v; it explored the blackhole", i, e)
		}
	}
	if got := dead.queries.Load(); got != 0 {
		t.Fatalf("dead upstream served %d queries, want 0", got)
	}
	if alive.queries.Load() == 0 {
		t.Fatal("alive upstream served nothing")
	}
}

// TestStormKicksBootstrap feeds the proxy's observer chain an error
// storm and requires a rate-limited prober re-sweep.
func TestStormKicksBootstrap(t *testing.T) {
	n := netsim.New(32)
	startUpstream(t, n, "alive.up")

	prober := &dialer.Prober{
		Timeout:      100 * time.Millisecond,
		KickInterval: time.Nanosecond, // let the storm's kick through immediately
		Targets:      []dialer.Target{probeTarget(n, "proxy.dns", "alive.up")},
	}
	storm := &dialer.Storm{Threshold: 3, Cooldown: time.Hour}
	p, err := New(Config{
		Upstreams: []dnstransport.PoolUpstream{tcpUpstream(n, "proxy.dns", "alive.up")},
		Bootstrap: prober,
		Storm:     storm,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Start(n, "proxy.dns"); err != nil {
		t.Fatal(err)
	}
	if prober.Report().Sweeps != 1 {
		t.Fatal("start did not sweep")
	}

	// Sever the upstream and hammer it: consecutive failures cross the
	// storm threshold, which kicks an async re-sweep.
	n.SetDialFault("alive.up", netsim.DialFault{ResetProb: 1})
	h := p.Handler()
	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		h.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "storm.example.", dnswire.TypeA))
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for storm.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if storm.Fired() == 0 {
		t.Fatal("error storm never fired")
	}
	for prober.Report().Sweeps < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := prober.Report().Sweeps; got < 2 {
		t.Fatalf("sweeps=%d, want a storm-triggered re-sweep", got)
	}
	if p.CostReport().StormsFired == 0 {
		t.Fatal("cost report does not surface the storm")
	}
}

package telemetry

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketLayout walks every bucket and checks the log-linear layout is
// gapless and self-consistent: bounds tile the value space, and every
// value maps back into the bucket whose bounds contain it.
func TestBucketLayout(t *testing.T) {
	var prevHi uint64
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if i > 0 && lo != prevHi {
			t.Fatalf("bucket %d: lo=%d, want %d (gap or overlap)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lo, hi)
		}
		prevHi = hi
		for _, v := range []uint64{lo, hi - 1} {
			if got := bucketIndex(v); got != i {
				t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, i)
			}
		}
	}
	// Out-of-range values clamp into the top bucket.
	if got := bucketIndex(1 << 60); got != histBuckets-1 {
		t.Fatalf("bucketIndex(2^60) = %d, want top bucket %d", got, histBuckets-1)
	}
}

// TestHistogramQuantileAccuracyConcurrent hammers one histogram from many
// goroutines with a known uniform distribution and checks p50/p95/p99
// land within the structural error bound (1/16 per bucket, allow 10% for
// the interpolation at the edges) — the property that makes quantiles
// trustworthy without sorting or locks.
func TestHistogramQuantileAccuracyConcurrent(t *testing.T) {
	m := New(withShards(8))
	const (
		goroutines = 8
		perG       = 20000
		maxMs      = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				// Uniform latencies in (0, 1s]: quantile q should read ~q·1s.
				d := time.Duration(rng.Int63n(maxMs*1000)+1) * time.Microsecond
				tx := m.Begin(ProtoUDP)
				tx.start = time.Now().Add(-d) // backdate so Finish observes d
				tx.SetVerdict(VerdictOK)
				tx.Finish()
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	snap := m.Snapshot()
	d := snap.Latency["udp"]
	if d == nil {
		t.Fatal("no udp latency distribution")
	}
	if d.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost observations under concurrency)", d.Count, goroutines*perG)
	}
	for _, tt := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := d.Quantile(tt.q)
		err := float64(got-tt.want) / float64(tt.want)
		if err < 0 {
			err = -err
		}
		if err > 0.10 {
			t.Errorf("q%.2f = %v, want %v ± 10%% (err %.1f%%)", tt.q, got, tt.want, err*100)
		}
	}
}

// TestTransactionCountersAndListener drives transactions through every
// annotation path and checks the snapshot and the listener summary agree
// with what happened.
func TestTransactionCountersAndListener(t *testing.T) {
	var summaries []*Summary
	var mu sync.Mutex
	m := New(withShards(2), WithListener(ListenerFunc(func(s *Summary) {
		mu.Lock()
		summaries = append(summaries, s)
		mu.Unlock()
	})))

	tx := m.Begin(ProtoDoH)
	tx.SetCache(CacheMiss)
	tx.PoolDial()
	tx.ObserveUpstream("recursive0", 3*time.Millisecond)
	tx.AddBytesSent(40)
	tx.AddBytesReceived(120)
	tx.SetVerdict(VerdictOK)
	tx.Finish()
	tx.Finish() // idempotent: must not double count

	tx2 := m.Begin(ProtoUDP)
	tx2.SetCache(CacheHit)
	tx2.SetVerdict(VerdictOK)
	tx2.TCFallback()
	tx2.Finish()

	tx3 := m.Begin(ProtoUDP)
	tx3.SetCache(CacheMiss)
	tx3.PoolFailure()
	tx3.SetVerdict(VerdictServFail)
	tx3.Finish()

	tx4 := m.Begin(ProtoDoT)
	tx4.SetCache(CacheStaleHit)
	tx4.HedgeFired()
	tx4.HedgeWon()
	tx4.Prefetch()
	tx4.SetVerdict(VerdictOK)
	tx4.Finish()

	s := m.Snapshot()
	for _, tt := range []struct {
		name      string
		got, want uint64
	}{
		{"queries[doh]", s.Queries["doh"], 1},
		{"queries[udp]", s.Queries["udp"], 2},
		{"queries[dot]", s.Queries["dot"], 1},
		{"verdicts[ok]", s.Verdicts["ok"], 3},
		{"verdicts[servfail]", s.Verdicts["servfail"], 1},
		{"cache[miss]", s.CacheEvents["miss"], 2},
		{"cache[hit]", s.CacheEvents["hit"], 1},
		{"cache[stale_hit]", s.CacheEvents["stale_hit"], 1},
		{"pool dials", s.PoolDials, 1},
		{"pool exchanges", s.PoolExchanges, 1},
		{"pool failures", s.PoolFailures, 1},
		{"hedges fired", s.HedgesFired, 1},
		{"hedges won", s.HedgesWon, 1},
		{"prefetches", s.Prefetches, 1},
		{"tc fallbacks", s.TCFallbacks, 1},
		{"bytes sent", s.UpstreamBytesSent, 40},
		{"bytes received", s.UpstreamBytesReceived, 120},
		{"upstream latency count", s.UpstreamLatency.Count, 1},
	} {
		if tt.got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, tt.got, tt.want)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(summaries) != 4 {
		t.Fatalf("listener got %d summaries, want 4", len(summaries))
	}
	if summaries[3].Cache != "stale_hit" {
		t.Errorf("fourth summary cache = %q, want stale_hit", summaries[3].Cache)
	}
	first := summaries[0]
	if first.Proto != "doh" || first.Server != "recursive0" || first.Verdict != "ok" ||
		first.Cache != "miss" || first.BytesSent != 40 || first.BytesReceived != 120 {
		t.Errorf("unexpected first summary: %+v", first)
	}
	if !summaries[1].TCFallback {
		t.Error("second summary should report the TC fallback")
	}
}

// TestNilMetricsIsNoOp proves the telemetry-off mode: a nil Metrics hands
// out nil Transactions whose every method (and context round-trip) is
// safe, so instrumented packages never branch on enablement.
func TestNilMetricsIsNoOp(t *testing.T) {
	var m *Metrics
	tx := m.Begin(ProtoUDP)
	if tx != nil {
		t.Fatal("nil Metrics should Begin a nil Transaction")
	}
	ctx := NewContext(context.Background(), tx)
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil tx should not be installed in context")
	}
	// None of these may panic.
	tx.SetCache(CacheHit)
	tx.SetVerdict(VerdictOK)
	tx.CacheEvicted(3)
	tx.PoolDial()
	tx.PoolFailure()
	tx.ObserveUpstream("u", time.Millisecond)
	tx.AddBytesSent(1)
	tx.AddBytesReceived(1)
	tx.TCFallback()
	tx.HedgeFired()
	tx.HedgeWon()
	tx.Prefetch()
	tx.Finish()
	m.SetListener(ListenerFunc(func(*Summary) {}))
	if s := m.Snapshot(); s == nil || len(s.Queries) != 0 {
		t.Fatal("nil Metrics should snapshot empty")
	}
}

// TestContextRoundTrip checks annotations survive the context plumbing the
// pipeline actually uses, including the WithoutCancel detachment the
// cache applies before going upstream.
func TestContextRoundTrip(t *testing.T) {
	m := New(withShards(1))
	tx := m.Begin(ProtoTCP)
	ctx := NewContext(context.Background(), tx)
	detached := context.WithoutCancel(ctx)
	FromContext(detached).SetCache(CacheMiss)
	FromContext(detached).ObserveUpstream("up", time.Millisecond)
	tx.SetVerdict(VerdictOK)
	tx.Finish()
	s := m.Snapshot()
	if s.CacheEvents["miss"] != 1 || s.PoolExchanges != 1 {
		t.Fatalf("annotations lost across WithoutCancel: %+v", s)
	}
}

// TestWritePrometheus checks the exposition has the families, labels and
// summary quantiles the docs promise, in scrapeable shape.
func TestWritePrometheus(t *testing.T) {
	m := New(withShards(1))
	tx := m.Begin(ProtoUDP)
	tx.SetCache(CacheHit)
	tx.SetVerdict(VerdictOK)
	tx.Finish()

	var b strings.Builder
	if err := m.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dohcost_queries_total counter",
		`dohcost_queries_total{proto="udp"} 1`,
		`dohcost_query_verdicts_total{verdict="ok"} 1`,
		`dohcost_cache_events_total{event="hit"} 1`,
		"# TYPE dohcost_query_latency_seconds summary",
		`dohcost_query_latency_seconds{proto="udp",quantile="0.5"}`,
		`dohcost_query_latency_seconds_count{proto="udp"} 1`,
		"dohcost_pool_exchanges_total 0",
		"# TYPE dohcost_hedges_fired_total counter",
		"dohcost_hedges_fired_total 0",
		"dohcost_hedges_won_total 0",
		"dohcost_prefetches_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

// TestSnapshotUnderLoad takes snapshots while writers are running — the
// scrape-during-traffic case — and checks monotonicity, the only property
// a concurrent scrape can promise.
func TestSnapshotUnderLoad(t *testing.T) {
	m := New(withShards(4))
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tx := m.Begin(ProtoDoH)
				tx.SetCache(CacheHit)
				tx.SetVerdict(VerdictOK)
				tx.Finish()
			}
		}()
	}
	var last uint64
	for i := 0; i < 50; i++ {
		s := m.Snapshot()
		if s.Queries["doh"] < last {
			t.Fatalf("queries went backwards: %d after %d", s.Queries["doh"], last)
		}
		last = s.Queries["doh"]
	}
	stop.Store(true)
	wg.Wait()
}

// BenchmarkTransactionLifecycle measures the full per-query telemetry
// cost: Begin, three annotations, Finish. This is the budget the proxy
// hot path pays per query.
func BenchmarkTransactionLifecycle(b *testing.B) {
	m := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tx := m.Begin(ProtoUDP)
			tx.SetCache(CacheHit)
			tx.SetVerdict(VerdictOK)
			tx.Finish()
		}
	})
}

// TestBackgroundTransaction checks the cache-refresh accounting mode:
// resource annotations land in the aggregate counters, but Finish records
// no query, verdict, cache event, latency sample or listener call.
func TestBackgroundTransaction(t *testing.T) {
	var calls int
	m := New(withShards(1), WithListener(ListenerFunc(func(*Summary) { calls++ })))
	tx := m.BeginBackground()
	tx.PoolDial()
	tx.ObserveUpstream("refresh-target", 2*time.Millisecond)
	tx.AddBytesSent(30)
	tx.AddBytesReceived(90)
	tx.Finish()

	s := m.Snapshot()
	if s.PoolDials != 1 || s.PoolExchanges != 1 || s.UpstreamBytesSent != 30 || s.UpstreamBytesReceived != 90 {
		t.Errorf("background resources lost: %+v", s)
	}
	if s.UpstreamLatency.Count != 1 {
		t.Errorf("background upstream latency lost: %+v", s.UpstreamLatency)
	}
	if len(s.Queries) != 0 || len(s.Verdicts) != 0 || len(s.CacheEvents) != 0 {
		t.Errorf("background transaction counted as a client query: %+v", s)
	}
	if calls != 0 {
		t.Errorf("listener called %d times for background work, want 0", calls)
	}
	var nilM *Metrics
	nilM.BeginBackground().Finish() // nil-safe like Begin
}

// TestUDPBatchMetrics checks the batched-serving counters: histogram
// bucketing, spill accounting, snapshot aggregation and exposition.
func TestUDPBatchMetrics(t *testing.T) {
	m := New(withShards(2))
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 31, 32, 64, 200} {
		m.ObserveUDPBatch(n)
	}
	m.ObserveUDPBatch(0)  // ignored
	m.ObserveUDPBatch(-5) // ignored
	m.UDPSpill()
	m.UDPSpill()

	s := m.Snapshot()
	if s.UDPBatchReads != 11 {
		t.Errorf("UDPBatchReads = %d, want 11", s.UDPBatchReads)
	}
	if want := uint64(1 + 2 + 3 + 4 + 7 + 8 + 16 + 31 + 32 + 64 + 200); s.UDPBatchDatagrams != want {
		t.Errorf("UDPBatchDatagrams = %d, want %d", s.UDPBatchDatagrams, want)
	}
	wantBuckets := map[string]uint64{
		"1": 1, "2-3": 2, "4-7": 2, "8-15": 1, "16-31": 2, "32-63": 1, "64+": 2,
	}
	for k, v := range wantBuckets {
		if s.UDPBatchSizes[k] != v {
			t.Errorf("bucket %q = %d, want %d (all: %v)", k, s.UDPBatchSizes[k], v, s.UDPBatchSizes)
		}
	}
	if s.UDPSpills != 2 {
		t.Errorf("UDPSpills = %d, want 2", s.UDPSpills)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dohcost_udp_spills_total 2",
		"dohcost_udp_batch_reads_total 11",
		"# TYPE dohcost_udp_batch_size_reads_total counter",
		`dohcost_udp_batch_size_reads_total{datagrams="64+"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Nil receiver safety for the serving loop's unconditional calls.
	var nilM *Metrics
	nilM.ObserveUDPBatch(8)
	nilM.UDPSpill()
}

package telemetry

import (
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
)

// TestTransactionTraceLifecycle walks a traced transaction end to end:
// Begin attaches a record, the Trace* helpers fill spans and identity,
// and Finish stamps the outcome labels and offers it to the sampler.
func TestTransactionTraceLifecycle(t *testing.T) {
	m := New()
	tr := qtrace.New(qtrace.Config{SampleEvery: 1})
	m.SetTracer(tr)
	if !m.Tracing() || m.Tracer() != tr {
		t.Fatal("tracer not installed")
	}

	tx := m.Begin(ProtoDoT)
	if !tx.Traced() {
		t.Fatal("transaction not traced with tracer installed")
	}
	t0 := tx.TraceStart()
	if t0.IsZero() {
		t.Fatal("TraceStart returned zero time on a traced transaction")
	}
	tx.TraceSpan(qtrace.PhaseCache, t0)
	tx.TraceSpanBetween(qtrace.PhaseUpstream, t0, t0.Add(3*time.Millisecond))
	q, ok := dnswire.ParseQuery(packQuery(t, "traced.example."))
	if !ok {
		t.Fatal("fast parse failed")
	}
	tx.TraceQuery(&q)
	tx.AttributeUpstream("up0")
	tx.SetCache(CacheMiss)
	tx.SetVerdict(VerdictServFail)
	tx.Finish()

	views := tr.Traces(qtrace.Filter{})
	if len(views) != 1 {
		t.Fatalf("sampler kept %d traces, want 1", len(views))
	}
	v := views[0]
	if v.QName != "traced.example." || v.QType != uint16(dnswire.TypeA) {
		t.Errorf("identity = %q/%d", v.QName, v.QType)
	}
	if v.Proto != "dot" || v.Verdict != "servfail" || v.Cache != "miss" || v.Upstream != "up0" {
		t.Errorf("labels = %s/%s/%s/%s", v.Proto, v.Verdict, v.Cache, v.Upstream)
	}
	if len(v.Spans) != 2 || v.Spans[0].Phase != "cache" || v.Spans[1].Phase != "upstream" || v.Spans[1].DurMs != 3 {
		t.Errorf("spans = %+v", v.Spans)
	}
	if st := tr.Stats(); st.KeptErrored != 1 {
		t.Errorf("servfail trace not kept as errored: %+v", st)
	}
}

// packQuery renders one A query's wire bytes.
func packQuery(t *testing.T, name dnswire.Name) []byte {
	t.Helper()
	wire, err := dnswire.NewQuery(0x7777, name, dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestBackgroundTransactionsUntraced: background refreshes are not client
// queries; they must not consume trace records or show up in the rings.
func TestBackgroundTransactionsUntraced(t *testing.T) {
	m := New()
	tr := qtrace.New(qtrace.Config{SampleEvery: 1})
	m.SetTracer(tr)
	tx := m.BeginBackground()
	if tx.Traced() {
		t.Fatal("background transaction carries a trace")
	}
	if !tx.TraceStart().IsZero() {
		t.Fatal("TraceStart on background tx should be the zero no-op")
	}
	tx.SetVerdict(VerdictOK)
	tx.Finish()
	if st := tr.Stats(); st.Offered != 0 {
		t.Errorf("background finish reached the sampler: %+v", st)
	}
}

// TestUntracedHelpersNoop: with no tracer installed, every Trace helper is
// an inert nil test — including on a nil transaction.
func TestUntracedHelpersNoop(t *testing.T) {
	m := New()
	tx := m.Begin(ProtoUDP)
	if tx.Traced() || !tx.TraceStart().IsZero() {
		t.Fatal("transaction traced without a tracer")
	}
	tx.TraceSpan(qtrace.PhaseCache, time.Now())
	tx.TraceQueryName("x.example.", 1)
	tx.SetVerdict(VerdictOK)
	tx.Finish()

	var nilTx *Transaction
	if nilTx.Traced() || !nilTx.TraceStart().IsZero() {
		t.Fatal("nil transaction claims tracing")
	}
	nilTx.TraceSpan(qtrace.PhaseCache, time.Now())
	nilTx.TraceSpanBetween(qtrace.PhaseCache, time.Now(), time.Now())
	nilTx.TraceQueryName("x.example.", 1)
}

// TestTracedPathAllocFree pins the tentpole's zero-allocation contract:
// a fully traced wire-hit-shaped transaction — record acquire, parse span,
// qname capture, cache span, finish, sampler offer with baseline sampling
// active — allocates nothing in steady state.
func TestTracedPathAllocFree(t *testing.T) {
	m := New()
	m.SetTracer(qtrace.New(qtrace.Config{SampleEvery: 16}))
	wire := packQuery(t, "alloc.example.")
	// Warm the pools (first transactions and records allocate once).
	for i := 0; i < 100; i++ {
		tracedWireHit(m, wire)
	}
	if avg := testing.AllocsPerRun(1000, func() { tracedWireHit(m, wire) }); avg != 0 {
		t.Errorf("traced wire-hit path allocates %.2f/op, want 0", avg)
	}
}

// tracedWireHit mirrors the UDP server's traced fast path shape.
func tracedWireHit(m *Metrics, wire []byte) {
	tParse := time.Now()
	q, ok := dnswire.ParseQuery(wire)
	if !ok {
		panic("fast parse failed")
	}
	tx := m.Begin(ProtoUDP)
	if tx.Traced() {
		tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
		tx.TraceQuery(&q)
	}
	tc := tx.TraceStart()
	tx.TraceSpan(qtrace.PhaseCache, tc)
	tw := tx.TraceStart()
	tx.TraceSpan(qtrace.PhaseWrite, tw)
	tx.SetCache(CacheHit)
	tx.SetVerdict(VerdictOK)
	tx.Finish()
}

package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear, the layout HDR-style recorders use: values
// below 2^histSubBits are binned exactly; above that, each power of two is
// split into 2^histSubBits linear sub-buckets, so the relative width of
// any bucket is at most 1/2^histSubBits (6.25%) and a quantile read off
// the bucket boundaries carries at most that relative error — no sorting,
// no sampling, constant memory.
//
// Values are recorded in microseconds: bucket 0 absorbs sub-microsecond
// observations and the top bucket clamps at ~2^31 µs (≈36 minutes),
// far beyond any DNS timeout.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histMaxExp   = 31
	histBuckets  = histSubCount * (histMaxExp - histSubBits + 2)
)

// histogram is one write-side latency recorder: a fixed bucket array of
// atomic counters plus a running sum. It lives inside a shard, so writes
// are already striped; individual adds are plain atomic increments.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64 // microseconds
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d / time.Microsecond)
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1
	if e > histMaxExp {
		e = histMaxExp
		v = 1<<(histMaxExp+1) - 1
	}
	sub := (v >> (uint(e) - histSubBits)) & (histSubCount - 1)
	return (e-histSubBits+1)*histSubCount + int(sub)
}

// bucketBounds returns bucket i's half-open value range [lo, hi) in
// microseconds.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSubCount {
		return uint64(i), uint64(i) + 1
	}
	e := uint(i/histSubCount + histSubBits - 1)
	sub := uint64(i % histSubCount)
	width := uint64(1) << (e - histSubBits)
	lo = uint64(1)<<e + sub*width
	return lo, lo + width
}

// Distribution is a merged, read-side histogram snapshot. The JSON fields
// carry the pre-computed ops numbers; Quantile serves callers that want
// other points on the curve.
type Distribution struct {
	counts [histBuckets]uint64

	// Count is the number of observations.
	Count uint64 `json:"count"`
	// MeanMs, P50Ms, P95Ms and P99Ms are milliseconds, the unit the
	// paper's figures use.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// merge folds one shard's histogram into the snapshot.
func (d *Distribution) merge(h *histogram) (count, sumMicros uint64) {
	for i := range h.counts {
		c := h.counts[i].Load()
		d.counts[i] += c
		count += c
	}
	return count, h.sum.Load()
}

// finalize computes the exported summary fields. Called once after all
// shards are merged.
func (d *Distribution) finalize(count, sumMicros uint64) {
	d.Count = count
	if count == 0 {
		return
	}
	d.MeanMs = float64(sumMicros) / float64(count) / 1e3
	d.P50Ms = float64(d.Quantile(0.50)) / float64(time.Millisecond)
	d.P95Ms = float64(d.Quantile(0.95)) / float64(time.Millisecond)
	d.P99Ms = float64(d.Quantile(0.99)) / float64(time.Millisecond)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) with linear
// interpolation inside the landing bucket; the result's relative error is
// bounded by the bucket width, at most 1/16. Zero observations yield zero.
func (d *Distribution) Quantile(q float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	var cum float64
	for i, c := range d.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := 0.5 // rank==cum boundary case: bucket midpoint
			if next > cum {
				frac = (rank - cum) / (next - cum)
				if frac < 0 {
					frac = 0
				}
			}
			micros := float64(lo) + frac*float64(hi-lo)
			return time.Duration(micros * float64(time.Microsecond))
		}
		cum = next
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return time.Duration(lo) * time.Microsecond
}

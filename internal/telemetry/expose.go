package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// TextWriter emits metric families in the Prometheus text exposition
// format (version 0.0.4). It is the single implementation of the format
// in this repository: the telemetry snapshot renders through it, and the
// proxy reuses it for its scrape-time gauges, so a format fix lands
// everywhere at once. The first write error latches and suppresses all
// further output; check Err when done.
type TextWriter struct {
	w   io.Writer
	err error
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter { return &TextWriter{w: w} }

// Err returns the first write error, if any.
func (t *TextWriter) Err() error { return t.err }

func (t *TextWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// Family emits the # HELP / # TYPE header of a metric family. typ is a
// Prometheus metric type ("counter", "gauge", "summary").
func (t *TextWriter) Family(name, help, typ string) {
	t.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value emits one unlabelled sample. v may be any integer or float; it
// is rendered with %v, which matches the exposition's number syntax.
func (t *TextWriter) Value(name string, v any) {
	t.printf("%s %v\n", name, v)
}

// LabeledValue emits one sample carrying a single label.
func (t *TextWriter) LabeledValue(name, label, labelVal string, v any) {
	t.printf("%s{%s=%q} %v\n", name, label, labelVal, v)
}

// LabeledValue2 emits one sample carrying two labels.
func (t *TextWriter) LabeledValue2(name, l1, v1, l2, v2 string, v any) {
	t.printf("%s{%s=%q,%s=%q} %v\n", name, l1, v1, l2, v2, v)
}

// counter emits a labelless counter family with its single sample.
func (t *TextWriter) counter(name, help string, v uint64) {
	t.Family(name, help, "counter")
	t.Value(name, v)
}

// counterVec emits a counter family with one sample per label value, in
// sorted order so scrapes are diffable.
func (t *TextWriter) counterVec(name, help, label string, vals map[string]uint64) {
	t.Family(name, help, "counter")
	for _, k := range sortedKeys(vals) {
		t.LabeledValue(name, label, k, vals[k])
	}
}

// summaryVec emits a summary family with one series per label value.
func (t *TextWriter) summaryVec(name, help, label string, vals map[string]*Distribution) {
	if len(vals) == 0 {
		return
	}
	t.Family(name, help, "summary")
	for _, k := range sortedKeys(vals) {
		t.summarySeries(name, label, k, vals[k])
	}
}

// summarySeries emits the quantile/sum/count samples of one summary
// series; label may be empty for a labelless series.
func (t *TextWriter) summarySeries(name, label, labelVal string, d *Distribution) {
	lbl := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return fmt.Sprintf("{%s=%q}", label, labelVal)
		}
		return fmt.Sprintf("{%s=%q,%s}", label, labelVal, extra)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		t.printf("%s%s %g\n", name,
			lbl(fmt.Sprintf(`quantile="%g"`, q)), d.Quantile(q).Seconds())
	}
	sum := float64(d.Count) * d.MeanMs / 1e3 // mean ms × count → seconds
	t.printf("%s_sum%s %g\n", name, lbl(""), sum)
	t.printf("%s_count%s %d\n", name, lbl(""), d.Count)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, dependency-free: counters as counter families with label
// dimensions, latency distributions as summary families with the
// p50/p95/p99 quantiles the histograms were built to answer.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	t := NewTextWriter(w)
	t.counterVec("dohcost_queries_total",
		"Completed DNS transactions by listener transport.", "proto", s.Queries)
	t.counterVec("dohcost_query_verdicts_total",
		"Final query fates: ok, servfail, canceled.", "verdict", s.Verdicts)
	t.counterVec("dohcost_cache_events_total",
		"Cache outcomes per query: hit, negative_hit, miss, coalesced, bypass, none.", "event", s.CacheEvents)
	t.counter("dohcost_cache_evictions_total",
		"LRU evictions performed while inserting answers.", s.CacheEvictions)
	t.counter("dohcost_cache_admission_rejects_total",
		"Cache insert candidates refused by the TinyLFU admission filter.", s.CacheAdmissionRejects)
	t.counter("dohcost_pool_dials_total",
		"Fresh upstream connections established by the pool.", s.PoolDials)
	t.counter("dohcost_pool_exchanges_total",
		"Successful upstream exchanges.", s.PoolExchanges)
	t.counter("dohcost_pool_failures_total",
		"Failed upstream attempts (dial or exchange) before failover.", s.PoolFailures)
	t.counter("dohcost_pool_backoffs_total",
		"Pool connection checkouts refused locally in redial backoff (no network activity).", s.PoolBackoffs)
	if len(s.Dials) > 0 {
		t.Family("dohcost_dials_total",
			"Socket dial attempts by address family and outcome (ok, error, backoff).", "counter")
		for _, fam := range sortedKeys(s.Dials) {
			for _, outcome := range sortedKeys(s.Dials[fam]) {
				t.LabeledValue2("dohcost_dials_total", "family", fam, "outcome", outcome, s.Dials[fam][outcome])
			}
		}
	}
	if len(s.DialWins) > 0 {
		t.counterVec("dohcost_dial_wins_total",
			"Happy-Eyeballs dial race wins by address family.", "family", s.DialWins)
	}
	t.counter("dohcost_hedges_fired_total",
		"Hedge exchanges launched by the steering layer (second attempt raced after the hedge delay).", s.HedgesFired)
	t.counter("dohcost_hedges_won_total",
		"Hedge exchanges whose answer beat the primary back to the client.", s.HedgesWon)
	t.counter("dohcost_prefetches_total",
		"Near-expiry background cache refreshes triggered by hits on hot names.", s.Prefetches)
	t.counter("dohcost_udp_tc_tcp_retries_total",
		"Truncated UDP answers retried over TCP (RFC 7766).", s.TCFallbacks)
	t.counter("dohcost_udp_retransmits_total",
		"UDP query attempts re-sent after per-attempt timeouts.", s.UDPRetransmits)
	t.counter("dohcost_udp_spills_total",
		"UDP packets shed from a saturated worker pool to bounded transient goroutines.", s.UDPSpills)
	t.counter("dohcost_udp_batch_reads_total",
		"Batched UDP read syscalls (recvmmsg wakeups) on the serving path.", s.UDPBatchReads)
	t.counter("dohcost_udp_batch_datagrams_total",
		"Datagrams returned by batched UDP reads; divide by reads for datagrams per syscall.", s.UDPBatchDatagrams)
	if len(s.UDPBatchSizes) > 0 {
		t.counterVec("dohcost_udp_batch_size_reads_total",
			"Batched UDP reads by datagrams-returned bucket.", "datagrams", s.UDPBatchSizes)
	}
	t.counter("dohcost_guard_drops_total",
		"UDP datagrams silently discarded by the abuse guard's per-client rate limit.", s.GuardDrops)
	t.counter("dohcost_guard_slips_total",
		"Rate-limited UDP queries answered with a minimal TC=1 slip instead of a drop.", s.GuardSlips)
	t.counter("dohcost_guard_refusals_total",
		"Queries answered REFUSED by the abuse guard (stream rate limit or miss breaker).", s.GuardRefusals)
	t.counter("dohcost_guard_breaker_refusals_total",
		"Cache misses refused by the miss-flood circuit breaker.", s.GuardBreakerRefusals)
	t.counter("dohcost_guard_cookies_validated_total",
		"UDP queries whose DNS server cookie validated, earning the rate-limit bypass.", s.GuardCookiesValidated)
	t.counter("dohcost_guard_cookies_issued_total",
		"Fresh DNS server cookies attached to responses.", s.GuardCookiesIssued)
	t.counter("dohcost_upstream_bytes_sent_total",
		"DNS message bytes sent to upstreams.", s.UpstreamBytesSent)
	t.counter("dohcost_upstream_bytes_received_total",
		"DNS message bytes received from upstreams.", s.UpstreamBytesReceived)

	t.summaryVec("dohcost_query_latency_seconds",
		"Accept-to-response latency by listener transport.", "proto", s.Latency)
	t.summaryVec("dohcost_dial_latency_seconds",
		"Socket dial attempt duration by address family.", "family", s.DialLatency)
	if s.UpstreamLatency != nil && s.UpstreamLatency.Count > 0 {
		t.Family("dohcost_upstream_latency_seconds",
			"Upstream exchange latency (cache misses only).", "summary")
		t.summarySeries("dohcost_upstream_latency_seconds", "", "", s.UpstreamLatency)
	}
	return t.Err()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package telemetry is the per-query cost accounting subsystem: the
// production counterpart of the paper's offline measurements. Where the
// study instruments its clients to report bytes, packets and latency per
// resolution, this package threads a Transaction record through the whole
// serving path — server accept, cache consultation, singleflight
// coalescing, pool checkout, upstream exchange (bytes both ways, TC→TCP
// retries) and final verdict — and aggregates the records into lock-free
// sharded counters and log-linear latency histograms.
//
// The design goals, in order:
//
//   - Zero interference with the hot path. All aggregation is
//     shard-striped atomic adds; there is no lock anywhere, and a nil
//     *Metrics (telemetry disabled) degrades every call to a nil-receiver
//     no-op, so instrumented packages never branch on "is telemetry on".
//   - Quantiles without sorting. Latency histograms are log-linear
//     (16 sub-buckets per power of two), so p50/p95/p99 come from a bucket
//     scan with bounded ~6% relative error and constant memory.
//   - Two consumers: machines scrape Snapshot via the Prometheus text
//     exposition (WritePrometheus) or a JSON report, and embedders can
//     register a per-transaction Listener — the DNSSummary idiom from
//     outline-go-tun2socks — to receive one Summary per completed query.
//
// Instrumented packages obtain the Transaction with FromContext; servers
// create it with Metrics.Begin and install it with NewContext. Because
// dnscache detaches upstream exchanges from client cancellation with
// context.WithoutCancel (which preserves values), annotations made deep in
// the pool and transport layers land on the right record.
package telemetry

import (
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
)

// Proto identifies the listener transport that carried a query into the
// server — the paper's comparison axis. The zero value is ProtoTCP so that
// a zero-configured StreamServer labels itself correctly.
type Proto uint8

// The transports the study compares.
const (
	// ProtoTCP is classic DNS over TCP (RFC 1035 §4.2.2 framing).
	ProtoTCP Proto = iota
	// ProtoUDP is classic DNS over UDP datagrams.
	ProtoUDP
	// ProtoDoT is DNS-over-TLS (RFC 7858).
	ProtoDoT
	// ProtoDoH is DNS-over-HTTPS (RFC 8484).
	ProtoDoH

	numProtos
)

// String returns the lower-case label used in metrics ("udp", "tcp",
// "dot", "doh").
func (p Proto) String() string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	case ProtoDoT:
		return "dot"
	case ProtoDoH:
		return "doh"
	}
	return "unknown"
}

// DialFamily labels the address family of one socket dial attempt — the
// Happy-Eyeballs dialer's comparison axis. DialFamilyUnknown covers dials
// whose family the recording layer cannot see (the pool's resolver-level
// backoff refusals).
type DialFamily uint8

// Dial attempt address families.
const (
	// DialFamilyUnknown is a dial whose address family is not visible to
	// the recording layer.
	DialFamilyUnknown DialFamily = iota
	// DialFamilyV4 is an IPv4 dial attempt.
	DialFamilyV4
	// DialFamilyV6 is an IPv6 dial attempt.
	DialFamilyV6

	numDialFamilies
)

// String returns the metrics label for the family ("v4", "v6", "unknown").
func (f DialFamily) String() string {
	switch f {
	case DialFamilyV4:
		return "v4"
	case DialFamilyV6:
		return "v6"
	}
	return "unknown"
}

// DialOutcome classifies one dial attempt for the dials_total counters.
type DialOutcome uint8

// Dial attempt outcomes.
const (
	// DialOK is an attempt that established a connection.
	DialOK DialOutcome = iota
	// DialError is an attempt that failed (refused, reset, timed out).
	DialError
	// DialBackoff is a pool checkout refused locally because the slot was
	// still in redial backoff — no socket was dialed.
	DialBackoff

	numDialOutcomes
)

// String returns the metrics label for the outcome ("ok", "error",
// "backoff").
func (o DialOutcome) String() string {
	switch o {
	case DialOK:
		return "ok"
	case DialError:
		return "error"
	}
	return "backoff"
}

// CacheOutcome classifies what the cache did with a query.
type CacheOutcome uint8

// Cache outcomes, in the order a query can experience them.
const (
	// CacheNone means no cache was consulted (no cache in the pipeline).
	CacheNone CacheOutcome = iota
	// CacheHit is a fresh positive answer served from memory.
	CacheHit
	// CacheNegativeHit is a cached NXDOMAIN/NODATA answer (RFC 2308).
	CacheNegativeHit
	// CacheStaleHit is an expired-but-stale answer served from memory while
	// a background refresh re-populates the entry (RFC 8767 serve-stale).
	CacheStaleHit
	// CacheMiss led this query upstream as the singleflight leader.
	CacheMiss
	// CacheCoalesced joined another query's in-flight upstream exchange.
	CacheCoalesced
	// CacheBypass is an uncacheable shape (multi-question, ANY) passed
	// straight through.
	CacheBypass

	numCacheOutcomes
)

// String returns the metrics label for the outcome.
func (o CacheOutcome) String() string {
	switch o {
	case CacheHit:
		return "hit"
	case CacheNegativeHit:
		return "negative_hit"
	case CacheStaleHit:
		return "stale_hit"
	case CacheMiss:
		return "miss"
	case CacheCoalesced:
		return "coalesced"
	case CacheBypass:
		return "bypass"
	}
	return "none"
}

// Verdict is the final fate of a query as the client saw it.
type Verdict uint8

// Verdicts.
const (
	// VerdictNone means the transaction never reached a response (should
	// not happen on complete pipelines; kept for accounting honesty).
	VerdictNone Verdict = iota
	// VerdictOK is a handler-produced response (any RCode the upstream
	// chose, including NXDOMAIN).
	VerdictOK
	// VerdictServFail is a synthesized SERVFAIL from a handler error.
	VerdictServFail
	// VerdictCanceled is a query abandoned by its client (context ended
	// before the handler finished).
	VerdictCanceled

	numVerdicts
)

// String returns the metrics label for the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictServFail:
		return "servfail"
	case VerdictCanceled:
		return "canceled"
	}
	return "none"
}

// Transaction is one query's cost record, created at server accept and
// finished when the response (or failure) leaves. It is written by exactly
// one goroutine at a time — the serving goroutine, and during a cache miss
// the singleflight leader, which is the same goroutine — so its fields
// need no synchronization; only Finish publishes into the shared Metrics.
//
// All methods are nil-receiver safe: a pipeline without telemetry passes
// nil Transactions around at the cost of a pointer test per call site.
type Transaction struct {
	m     *Metrics
	sh    *shard
	proto Proto
	start time.Time

	cache      CacheOutcome
	verdict    Verdict
	upstream   string
	sent, recv int
	tcRetry    bool
	udpRetries int
	background bool
	finished   bool

	// trace is the query's lifecycle record, attached at Begin when a
	// tracer is installed on the Metrics and offered to the tracer's
	// tail sampler at Finish. Nil when tracing is off — every Trace*
	// method degrades to one pointer test.
	trace *qtrace.Rec
}

// Summary is the completed-transaction report delivered to a Listener —
// the same unit of DoH cost accounting as outline-go-tun2socks's
// DNSSummary: one record per resolution with server, status, latency and
// bytes both ways.
type Summary struct {
	// Proto is the listener transport ("udp", "tcp", "dot", "doh").
	Proto string
	// Server names the upstream that answered; empty when the answer came
	// from cache (or the query failed before reaching an upstream).
	Server string
	// Verdict is "ok", "servfail" or "canceled".
	Verdict string
	// Cache is the cache outcome label ("hit", "miss", …, or "none").
	Cache string
	// Latency is the accept-to-response duration.
	Latency time.Duration
	// BytesSent and BytesReceived are the upstream exchange's message
	// bytes (zero for cache hits).
	BytesSent, BytesReceived int
	// TCFallback reports a UDP answer that arrived truncated and was
	// retried over TCP (RFC 7766 §5).
	TCFallback bool
	// UDPRetransmits counts query attempts re-sent after per-attempt
	// timeouts within this transaction.
	UDPRetransmits int
	// Start is when the server accepted the query.
	Start time.Time
}

// Listener receives one Summary per completed transaction. Implementations
// must be fast and safe for concurrent use: they run inline on serving
// goroutines.
type Listener interface {
	OnTransaction(*Summary)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(*Summary)

// OnTransaction implements Listener.
func (f ListenerFunc) OnTransaction(s *Summary) { f(s) }

// SetCache records the cache's treatment of the query.
func (t *Transaction) SetCache(o CacheOutcome) {
	if t != nil {
		t.cache = o
	}
}

// SetVerdict records the query's final fate.
func (t *Transaction) SetVerdict(v Verdict) {
	if t != nil {
		t.verdict = v
	}
}

// CacheEvicted charges n LRU evictions performed while inserting this
// query's answer.
func (t *Transaction) CacheEvicted(n int) {
	if t != nil && n > 0 {
		t.sh.cacheEvictions.Add(uint64(n))
	}
}

// CacheAdmissionRejected counts one insert candidate refused by the
// cache's TinyLFU admission filter while handling this query.
func (t *Transaction) CacheAdmissionRejected() {
	if t != nil {
		t.sh.admissionRejects.Add(1)
	}
}

// PoolDial counts one fresh upstream connection established for this query
// (initial fill or redial after a failure).
func (t *Transaction) PoolDial() {
	if t != nil {
		t.sh.poolDials.Add(1)
	}
}

// PoolFailure counts one failed upstream attempt — a dial error or a
// broken exchange — before any failover.
func (t *Transaction) PoolFailure() {
	if t != nil {
		t.sh.poolFailures.Add(1)
	}
}

// PoolBackoff counts one pool connection checkout refused locally because
// the slot was still in redial backoff. Counted apart from PoolFailure
// (nothing touched the network) and mirrored into the
// dials_total{family="unknown",outcome="backoff"} ledger.
func (t *Transaction) PoolBackoff() {
	if t != nil {
		t.sh.poolBackoffs.Add(1)
		t.sh.dials[DialFamilyUnknown][DialBackoff].Add(1)
	}
}

// ObserveUpstream records a successful upstream exchange: which upstream
// answered and how long the exchange took (pool checkout excluded).
func (t *Transaction) ObserveUpstream(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.upstream = name
	t.sh.poolExchanges.Add(1)
	t.sh.upstreamLatency.observe(d)
}

// AttributeUpstream records which upstream's answer was returned without
// charging any exchange counter or latency sample — for layers whose
// wire-level accounting happened on another Transaction, like the hedged
// steering policy, whose racing legs each carry their own background
// record.
func (t *Transaction) AttributeUpstream(name string) {
	if t != nil {
		t.upstream = name
	}
}

// Metrics returns the sink this Transaction reports to (nil for a nil
// Transaction), so a layer holding only the query's record can open
// sibling background records against the same sink.
func (t *Transaction) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.m
}

// AddBytesSent charges n message bytes sent toward an upstream (per
// attempt, so UDP retransmissions count each time).
func (t *Transaction) AddBytesSent(n int) {
	if t != nil && n > 0 {
		t.sent += n
		t.sh.bytesSent.Add(uint64(n))
	}
}

// AddBytesReceived charges n message bytes received from an upstream.
func (t *Transaction) AddBytesReceived(n int) {
	if t != nil && n > 0 {
		t.recv += n
		t.sh.bytesRecv.Add(uint64(n))
	}
}

// HedgeFired counts one hedge exchange launched for this query: the
// steering layer gave up waiting on its first pick and raced a second
// upstream for the answer.
func (t *Transaction) HedgeFired() {
	if t != nil {
		t.sh.hedgesFired.Add(1)
	}
}

// HedgeWon marks the hedge exchange — not the primary — as the one whose
// answer was returned to the client. The hedges_won/hedges_fired ratio is
// the live usefulness of the hedging policy.
func (t *Transaction) HedgeWon() {
	if t != nil {
		t.sh.hedgesWon.Add(1)
	}
}

// Prefetch counts one near-expiry background refresh triggered by this
// query's cache hit (the cache's hot-name prefetch).
func (t *Transaction) Prefetch() {
	if t != nil {
		t.sh.prefetches.Add(1)
	}
}

// TCFallback marks the exchange as retried over TCP after a truncated UDP
// answer (RFC 7766 §5) — the overhead mode Figure 3's ≤512-byte cliff is
// about.
func (t *Transaction) TCFallback() {
	if t != nil {
		t.tcRetry = true
		t.sh.tcFallbacks.Add(1)
	}
}

// UDPRetransmit counts one UDP query attempt re-sent after a per-attempt
// timeout. On impaired links this is how datagram loss becomes visible in
// the aggregate: each retransmission is a drop the client recovered from.
func (t *Transaction) UDPRetransmit() {
	if t != nil {
		t.udpRetries++
		t.sh.udpRetransmits.Add(1)
	}
}

// Traced reports whether this transaction carries a trace record — the
// cheap test instrumentation points use to skip clock reads entirely when
// tracing is off or the query was not selected.
func (t *Transaction) Traced() bool {
	return t != nil && t.trace != nil
}

// TraceStart returns the current time when the transaction is traced and
// the zero time otherwise, so call sites pay for a clock read only on
// traced queries:
//
//	t0 := tx.TraceStart()
//	... phase work ...
//	tx.TraceSpan(qtrace.PhaseCache, t0)
func (t *Transaction) TraceStart() time.Time {
	if t == nil || t.trace == nil {
		return time.Time{}
	}
	return time.Now()
}

// TraceSpan records a phase interval from t0 to now on the trace. A zero
// t0 (from TraceStart on an untraced transaction) is a no-op, so the
// TraceStart/TraceSpan pair needs no branching at the call site.
func (t *Transaction) TraceSpan(p qtrace.Phase, t0 time.Time) {
	if t == nil || t.trace == nil || t0.IsZero() {
		return
	}
	t.trace.AddSpan(p, t0.Sub(t.start), time.Since(t0))
}

// TraceSpanBetween records a phase interval with an explicit end — for
// work timed before the transaction existed (guard checks and parsing run
// before Begin; their offsets come out slightly negative) or shared
// intervals like the batched-UDP flush.
func (t *Transaction) TraceSpanBetween(p qtrace.Phase, t0, end time.Time) {
	if t == nil || t.trace == nil || t0.IsZero() {
		return
	}
	t.trace.AddSpan(p, t0.Sub(t.start), end.Sub(t0))
}

// TraceQuery stamps the trace with the wire fast path's parsed query
// identity. The canonical name is appended straight into the record's
// inline buffer, so the traced wire path stays allocation-free.
func (t *Transaction) TraceQuery(q *dnswire.Query) {
	if t == nil || t.trace == nil {
		return
	}
	t.trace.CommitQName(q.AppendCanonicalName(t.trace.QNameBuf()), uint16(q.Type))
}

// TraceQueryName stamps the trace with a query identity already in
// presentation form (the Message path's question name).
func (t *Transaction) TraceQueryName(name string, qtype uint16) {
	if t == nil || t.trace == nil {
		return
	}
	t.trace.SetQName(name, qtype)
}

// Finish closes the record: the accept-to-now latency lands in the proto's
// histogram, every counter the transaction accumulated becomes visible in
// snapshots, and the Listener (if any) receives the Summary. Finish must
// be called exactly once per Begin, and the Transaction must not be used
// afterwards — the record goes back to a pool for the next query.
func (t *Transaction) Finish() {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	if t.background {
		// Background work (cache refreshes) annotated its resource
		// counters as it went; it is not a client query, so no query,
		// verdict, cache event, latency sample or Listener call.
		if t.trace != nil {
			// Defensive: BeginBackground detaches the trace up front.
			qtrace.Release(t.trace)
			t.trace = nil
		}
		txPool.Put(t)
		return
	}
	d := time.Since(t.start)
	if rec := t.trace; rec != nil {
		t.trace = nil
		rec.Dur = d
		rec.Proto = t.proto.String()
		rec.Verdict = t.verdict.String()
		rec.Cache = t.cache.String()
		rec.Upstream = t.upstream
		rec.Failed = t.verdict != VerdictOK
		// Offer makes the tail-sampling keep decision and releases the
		// record either way; the tracer may have been swapped since
		// Begin, in which case the record is simply recycled.
		t.m.tracer.Load().Offer(rec)
	}
	sh := t.sh
	sh.queries[t.proto].Add(1)
	sh.verdicts[t.verdict].Add(1)
	sh.cacheEvents[t.cache].Add(1)
	sh.latency[t.proto].observe(d)
	if l := t.m.listener.Load(); l != nil {
		l.l.OnTransaction(&Summary{
			Proto:          t.proto.String(),
			Server:         t.upstream,
			Verdict:        t.verdict.String(),
			Cache:          t.cache.String(),
			Latency:        d,
			BytesSent:      t.sent,
			BytesReceived:  t.recv,
			TCFallback:     t.tcRetry,
			UDPRetransmits: t.udpRetries,
			Start:          t.start,
		})
	}
	txPool.Put(t)
}

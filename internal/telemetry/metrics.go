package telemetry

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/qtrace"
)

// shard is one stripe of the aggregate state. Transactions are spread
// round-robin across shards at Begin, so under load each core tends to
// write a different shard and counter updates never rendezvous on one
// cache line — the same trick the sharded cache plays with its locks,
// done here with no locks at all.
type shard struct {
	queries     [numProtos]atomic.Uint64
	verdicts    [numVerdicts]atomic.Uint64
	cacheEvents [numCacheOutcomes]atomic.Uint64

	cacheEvictions   atomic.Uint64
	admissionRejects atomic.Uint64
	poolDials        atomic.Uint64
	poolExchanges    atomic.Uint64
	poolFailures     atomic.Uint64
	poolBackoffs     atomic.Uint64
	hedgesFired      atomic.Uint64
	hedgesWon        atomic.Uint64
	prefetches       atomic.Uint64
	tcFallbacks      atomic.Uint64
	udpRetransmits   atomic.Uint64
	bytesSent        atomic.Uint64
	bytesRecv        atomic.Uint64

	// Batched-UDP serving: spills are packets a saturated worker pool
	// shed to bounded transient goroutines; batch reads/datagrams and the
	// size buckets together form the datagrams-per-syscall histogram.
	udpSpills         atomic.Uint64
	udpBatchReads     atomic.Uint64
	udpBatchDatagrams atomic.Uint64
	udpBatchSize      [numBatchBuckets]atomic.Uint64

	// Abuse-guard decisions: UDP rate-limit drops and TC slips, stream and
	// breaker refusals, and the DNS-cookie handshake counters.
	guardDrops            atomic.Uint64
	guardSlips            atomic.Uint64
	guardRefusals         atomic.Uint64
	guardBreakerRefusals  atomic.Uint64
	guardCookiesValidated atomic.Uint64
	guardCookiesIssued    atomic.Uint64

	// Dial-layer ledger: socket dial attempts by family × outcome (the
	// Happy-Eyeballs dialer records v4/v6 attempts; the pool mirrors its
	// backoff refusals under family "unknown"), race wins by family, and
	// per-family attempt latency.
	dials    [numDialFamilies][numDialOutcomes]atomic.Uint64
	dialWins [numDialFamilies]atomic.Uint64

	// The histograms dominate the shard's footprint (and pad the small
	// counter block above away from the next shard's).
	latency         [numProtos]histogram
	upstreamLatency histogram
	dialLatency     [numDialFamilies]histogram
}

// Metrics is the aggregation sink for Transactions. One Metrics instance
// covers one serving deployment (a proxy); create it with New, hand it to
// the servers, and read it with Snapshot. All methods are safe for
// concurrent use, and a nil *Metrics is a valid "telemetry off" sink.
type Metrics struct {
	shards   []*shard
	cursor   atomic.Uint64
	listener atomic.Pointer[listenerBox]
	tracer   atomic.Pointer[qtrace.Tracer]
}

// listenerBox keeps atomic.Pointer to one concrete type regardless of the
// Listener implementation stored.
type listenerBox struct{ l Listener }

// Option configures New.
type Option func(*Metrics)

// WithListener registers a per-transaction Listener at construction.
func WithListener(l Listener) Option {
	return func(m *Metrics) { m.SetListener(l) }
}

// withShards overrides the shard count (tests).
func withShards(n int) Option {
	return func(m *Metrics) { m.shards = make([]*shard, nextPow2(n)) }
}

// New builds a Metrics with one shard per CPU (rounded up to a power of
// two, capped at 64).
func New(opts ...Option) *Metrics {
	m := &Metrics{}
	for _, o := range opts {
		o(m)
	}
	if m.shards == nil {
		n := runtime.GOMAXPROCS(0)
		if n > 64 {
			n = 64
		}
		m.shards = make([]*shard, nextPow2(n))
	}
	for i := range m.shards {
		m.shards[i] = new(shard)
	}
	return m
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetListener installs (or, with nil, removes) the per-transaction
// callback. Safe to call while serving.
func (m *Metrics) SetListener(l Listener) {
	if m == nil {
		return
	}
	if l == nil {
		m.listener.Store(nil)
		return
	}
	m.listener.Store(&listenerBox{l: l})
}

// SetTracer installs (or, with nil, removes) the per-query lifecycle
// tracer: while installed, every Begin attaches a pooled trace record to
// the Transaction and every Finish offers it to the tracer's tail
// sampler. Safe to call while serving.
func (m *Metrics) SetTracer(tr *qtrace.Tracer) {
	if m == nil {
		return
	}
	m.tracer.Store(tr)
}

// Tracer returns the installed lifecycle tracer, or nil. Nil-safe.
func (m *Metrics) Tracer() *qtrace.Tracer {
	if m == nil {
		return nil
	}
	return m.tracer.Load()
}

// Tracing reports whether a lifecycle tracer is installed — the cheap
// gate servers use to decide whether pre-Begin work (guard checks,
// parsing) is worth timestamping at all.
func (m *Metrics) Tracing() bool {
	return m != nil && m.tracer.Load() != nil
}

// txPool recycles Transaction records. Beyond saving the allocation, the
// pool is what makes the shard striping effective: sync.Pool is
// per-P-local, so a serving goroutine tends to get back a record it (or a
// neighbour on the same core) finished, carrying a shard whose counter
// cache lines are already resident on that core. Round-robin assignment
// only seeds records the pool has never seen.
var txPool = sync.Pool{New: func() any { return new(Transaction) }}

// Begin opens a Transaction for a query arriving over proto. On a nil
// Metrics it returns a nil Transaction, whose every method is a no-op.
// Each Transaction must be finished exactly once and not touched after
// Finish: the record is recycled.
func (m *Metrics) Begin(proto Proto) *Transaction {
	if m == nil {
		return nil
	}
	tx := txPool.Get().(*Transaction)
	sh := tx.sh
	if sh == nil || tx.m != m {
		sh = m.shards[m.cursor.Add(1)&uint64(len(m.shards)-1)]
	}
	*tx = Transaction{m: m, sh: sh, proto: proto, start: time.Now()}
	if tr := m.tracer.Load(); tr != nil {
		tx.trace = tr.Acquire(tx.start)
	}
	return tx
}

// BeginBackground opens a Transaction for internal background work — the
// cache's serve-stale and prefetch refreshes. Resource annotations (pool
// dials, failures, exchanges, upstream latency, bytes) land in the
// aggregate counters exactly as for client queries, so the upstream cost
// the resilience features generate stays visible in /metrics; Finish,
// however, records no query, verdict, cache event or latency sample and
// calls no Listener — background work is not a client query.
func (m *Metrics) BeginBackground() *Transaction {
	tx := m.Begin(ProtoUDP) // proto is irrelevant: a background Finish records none
	if tx != nil {
		tx.background = true
		if tx.trace != nil {
			// Background records never reach the tail sampler; hand the
			// trace back immediately instead of carrying dead weight.
			qtrace.Release(tx.trace)
			tx.trace = nil
		}
	}
	return tx
}

// numBatchBuckets is the datagrams-per-syscall histogram's bucket count:
// powers of two from 1 to 64+ (the udpio.MaxBatch ceiling).
const numBatchBuckets = 7

// batchBucketLabels are the exposition labels, index-aligned with the
// shard's udpBatchSize array.
var batchBucketLabels = [numBatchBuckets]string{"1", "2-3", "4-7", "8-15", "16-31", "32-63", "64+"}

// batchBucket maps a batch size to its histogram bucket.
func batchBucket(n int) int {
	b := 0
	for n > 1 && b < numBatchBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// pick returns a shard for Metrics-level (not per-Transaction) counters,
// round-robin like Begin so concurrent shard readers don't rendezvous on
// one cache line.
func (m *Metrics) pick() *shard {
	return m.shards[m.cursor.Add(1)&uint64(len(m.shards)-1)]
}

// ObserveUDPBatch records one batched-read syscall that returned n
// datagrams — the sample feeding the datagrams-per-syscall histogram and
// the batch read/datagram totals. Nil-safe like every sink method.
func (m *Metrics) ObserveUDPBatch(n int) {
	if m == nil || n <= 0 {
		return
	}
	sh := m.pick()
	sh.udpBatchReads.Add(1)
	sh.udpBatchDatagrams.Add(uint64(n))
	sh.udpBatchSize[batchBucket(n)].Add(1)
}

// UDPSpill counts one packet shed from a saturated UDP worker pool to a
// bounded transient goroutine (dohcost_udp_spills_total) — the signal that
// slow-query load is exceeding the resident workers.
func (m *Metrics) UDPSpill() {
	if m == nil {
		return
	}
	m.pick().udpSpills.Add(1)
}

// ObserveDial records one socket dial attempt: its address family, its
// outcome, and its duration (which lands in the per-family dial latency
// distribution). The Happy-Eyeballs dialer is the primary writer; any
// layer that dials sockets directly may record here too.
func (m *Metrics) ObserveDial(fam DialFamily, outcome DialOutcome, d time.Duration) {
	if m == nil {
		return
	}
	if fam >= numDialFamilies {
		fam = DialFamilyUnknown
	}
	if outcome >= numDialOutcomes {
		outcome = DialError
	}
	sh := m.pick()
	sh.dials[fam][outcome].Add(1)
	sh.dialLatency[fam].observe(d)
}

// DialWin records which family's attempt won a Happy-Eyeballs dial race
// (or was the sole attempt that established the connection).
func (m *Metrics) DialWin(fam DialFamily) {
	if m == nil {
		return
	}
	if fam >= numDialFamilies {
		fam = DialFamilyUnknown
	}
	m.pick().dialWins[fam].Add(1)
}

// GuardDrop counts one UDP datagram silently discarded by the abuse
// guard's per-client rate limit.
func (m *Metrics) GuardDrop() {
	if m != nil {
		m.pick().guardDrops.Add(1)
	}
}

// GuardSlip counts one rate-limited UDP query answered with a minimal
// TC=1 truncation instead of a drop (the RRL slip escape hatch).
func (m *Metrics) GuardSlip() {
	if m != nil {
		m.pick().guardSlips.Add(1)
	}
}

// GuardRefusal counts one query answered REFUSED by the guard — stream
// rate limiting or the miss breaker.
func (m *Metrics) GuardRefusal() {
	if m != nil {
		m.pick().guardRefusals.Add(1)
	}
}

// GuardBreakerRefusal counts one cache miss refused by the miss-flood
// circuit breaker (a subset of GuardRefusal's total on serve paths).
func (m *Metrics) GuardBreakerRefusal() {
	if m != nil {
		m.pick().guardBreakerRefusals.Add(1)
	}
}

// GuardCookieValid counts one UDP query whose server cookie validated,
// earning the rate-limit bypass.
func (m *Metrics) GuardCookieValid() {
	if m != nil {
		m.pick().guardCookiesValidated.Add(1)
	}
}

// GuardCookieIssued counts one fresh server cookie attached to a response.
func (m *Metrics) GuardCookieIssued() {
	if m != nil {
		m.pick().guardCookiesIssued.Add(1)
	}
}

// ctxKey is the context key for the Transaction.
type ctxKey struct{}

// NewContext returns ctx carrying tx; instrumented layers downstream
// retrieve it with FromContext. A nil tx returns ctx unchanged.
func NewContext(ctx context.Context, tx *Transaction) context.Context {
	if tx == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tx)
}

// FromContext returns the Transaction carried by ctx, or nil — which is a
// fully usable no-op Transaction — when there is none.
func FromContext(ctx context.Context) *Transaction {
	tx, _ := ctx.Value(ctxKey{}).(*Transaction)
	return tx
}

// DetachContext returns ctx with any carried Transaction shadowed:
// FromContext on the result yields nil. A Transaction is single-goroutine
// property that is recycled at Finish, so any layer fanning work out to
// goroutines that can outlive the serving request — the hedged steering
// policy's racing exchanges — must detach first; a straggler annotating
// the recycled record would corrupt a later query's accounting.
func DetachContext(ctx context.Context) context.Context {
	if FromContext(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, (*Transaction)(nil))
}

// Snapshot merges every shard into one coherent view. Counters are read
// with atomic loads, so a snapshot taken under load is a consistent-enough
// scrape (individual counters are exact; cross-counter skew is bounded by
// in-flight transactions). A nil Metrics yields an empty snapshot.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Queries:         map[string]uint64{},
		Verdicts:        map[string]uint64{},
		CacheEvents:     map[string]uint64{},
		Latency:         map[string]*Distribution{},
		UpstreamLatency: &Distribution{},
	}
	if m == nil {
		return s
	}
	var latency [numProtos]Distribution
	var latCount, latSum [numProtos]uint64
	var upCount, upSum uint64
	var dialLat [numDialFamilies]Distribution
	var dialCount, dialSum [numDialFamilies]uint64
	var dials [numDialFamilies][numDialOutcomes]uint64
	var dialWins [numDialFamilies]uint64
	for _, sh := range m.shards {
		for p := Proto(0); p < numProtos; p++ {
			s.Queries[p.String()] += sh.queries[p].Load()
			c, sum := latency[p].merge(&sh.latency[p])
			latCount[p] += c
			latSum[p] += sum
		}
		for v := Verdict(0); v < numVerdicts; v++ {
			s.Verdicts[v.String()] += sh.verdicts[v].Load()
		}
		for o := CacheOutcome(0); o < numCacheOutcomes; o++ {
			s.CacheEvents[o.String()] += sh.cacheEvents[o].Load()
		}
		s.CacheEvictions += sh.cacheEvictions.Load()
		s.CacheAdmissionRejects += sh.admissionRejects.Load()
		s.PoolDials += sh.poolDials.Load()
		s.PoolExchanges += sh.poolExchanges.Load()
		s.PoolFailures += sh.poolFailures.Load()
		s.PoolBackoffs += sh.poolBackoffs.Load()
		for f := DialFamily(0); f < numDialFamilies; f++ {
			for o := DialOutcome(0); o < numDialOutcomes; o++ {
				dials[f][o] += sh.dials[f][o].Load()
			}
			dialWins[f] += sh.dialWins[f].Load()
			c, sum := dialLat[f].merge(&sh.dialLatency[f])
			dialCount[f] += c
			dialSum[f] += sum
		}
		s.HedgesFired += sh.hedgesFired.Load()
		s.HedgesWon += sh.hedgesWon.Load()
		s.Prefetches += sh.prefetches.Load()
		s.TCFallbacks += sh.tcFallbacks.Load()
		s.UDPRetransmits += sh.udpRetransmits.Load()
		s.UDPSpills += sh.udpSpills.Load()
		s.GuardDrops += sh.guardDrops.Load()
		s.GuardSlips += sh.guardSlips.Load()
		s.GuardRefusals += sh.guardRefusals.Load()
		s.GuardBreakerRefusals += sh.guardBreakerRefusals.Load()
		s.GuardCookiesValidated += sh.guardCookiesValidated.Load()
		s.GuardCookiesIssued += sh.guardCookiesIssued.Load()
		s.UDPBatchReads += sh.udpBatchReads.Load()
		s.UDPBatchDatagrams += sh.udpBatchDatagrams.Load()
		for b := 0; b < numBatchBuckets; b++ {
			if v := sh.udpBatchSize[b].Load(); v > 0 {
				if s.UDPBatchSizes == nil {
					s.UDPBatchSizes = map[string]uint64{}
				}
				s.UDPBatchSizes[batchBucketLabels[b]] += v
			}
		}
		s.UpstreamBytesSent += sh.bytesSent.Load()
		s.UpstreamBytesReceived += sh.bytesRecv.Load()
		c, sum := s.UpstreamLatency.merge(&sh.upstreamLatency)
		upCount += c
		upSum += sum
	}
	// Drop zero-valued labels so scrapes and JSON stay readable; a proxy
	// without DoT traffic should not advertise a dot series.
	for k, v := range s.Queries {
		if v == 0 {
			delete(s.Queries, k)
		}
	}
	for k, v := range s.Verdicts {
		if v == 0 {
			delete(s.Verdicts, k)
		}
	}
	for k, v := range s.CacheEvents {
		if v == 0 {
			delete(s.CacheEvents, k)
		}
	}
	for p := Proto(0); p < numProtos; p++ {
		if latCount[p] == 0 {
			continue
		}
		latency[p].finalize(latCount[p], latSum[p])
		d := latency[p]
		s.Latency[p.String()] = &d
	}
	s.UpstreamLatency.finalize(upCount, upSum)
	for f := DialFamily(0); f < numDialFamilies; f++ {
		for o := DialOutcome(0); o < numDialOutcomes; o++ {
			if dials[f][o] == 0 {
				continue
			}
			if s.Dials == nil {
				s.Dials = map[string]map[string]uint64{}
			}
			if s.Dials[f.String()] == nil {
				s.Dials[f.String()] = map[string]uint64{}
			}
			s.Dials[f.String()][o.String()] = dials[f][o]
		}
		if dialWins[f] > 0 {
			if s.DialWins == nil {
				s.DialWins = map[string]uint64{}
			}
			s.DialWins[f.String()] = dialWins[f]
		}
		if dialCount[f] > 0 {
			dialLat[f].finalize(dialCount[f], dialSum[f])
			d := dialLat[f]
			if s.DialLatency == nil {
				s.DialLatency = map[string]*Distribution{}
			}
			s.DialLatency[f.String()] = &d
		}
	}
	return s
}

// Snapshot is a merged view of a Metrics at one instant, shaped for the
// /debug/cost JSON report; WritePrometheus renders the same data in the
// Prometheus text exposition.
type Snapshot struct {
	// Queries counts completed transactions by listener transport.
	Queries map[string]uint64 `json:"queries_total"`
	// Verdicts counts final fates ("ok", "servfail", "canceled").
	Verdicts map[string]uint64 `json:"verdicts_total"`
	// CacheEvents counts cache outcomes ("hit", "negative_hit", "miss",
	// "coalesced", "bypass"; "none" when no cache was in the path).
	CacheEvents map[string]uint64 `json:"cache_events_total"`
	// CacheEvictions counts LRU evictions charged to insertions.
	CacheEvictions uint64 `json:"cache_evictions_total"`
	// CacheAdmissionRejects counts insert candidates the cache's TinyLFU
	// admission filter refused.
	CacheAdmissionRejects uint64 `json:"cache_admission_rejects_total"`
	// PoolDials counts fresh upstream connections established.
	PoolDials uint64 `json:"pool_dials_total"`
	// PoolExchanges counts successful upstream exchanges.
	PoolExchanges uint64 `json:"pool_exchanges_total"`
	// PoolFailures counts failed upstream attempts (dial errors, broken
	// exchanges) before failover; PoolBackoffs counts checkouts refused
	// locally in redial backoff, kept apart so /debug/cost does not read
	// a resting upstream as a failing one.
	PoolFailures uint64 `json:"pool_failures_total"`
	PoolBackoffs uint64 `json:"pool_backoffs_total"`
	// Dials is the dial-layer ledger: family ("v4", "v6", "unknown") →
	// outcome ("ok", "error", "backoff") → attempts. DialWins counts
	// Happy-Eyeballs race wins per family, and DialLatency holds the
	// per-family attempt duration distributions.
	Dials       map[string]map[string]uint64 `json:"dials_total,omitempty"`
	DialWins    map[string]uint64            `json:"dial_wins_total,omitempty"`
	DialLatency map[string]*Distribution     `json:"dial_latency,omitempty"`
	// HedgesFired counts hedge exchanges launched by the steering layer;
	// HedgesWon counts the ones whose answer beat the primary back.
	HedgesFired uint64 `json:"hedges_fired_total"`
	HedgesWon   uint64 `json:"hedges_won_total"`
	// Prefetches counts near-expiry background refreshes triggered by
	// cache hits on hot names.
	Prefetches uint64 `json:"prefetches_total"`
	// TCFallbacks counts truncated UDP answers retried over TCP.
	TCFallbacks uint64 `json:"udp_tc_tcp_retries_total"`
	// UDPRetransmits counts UDP query attempts re-sent after a per-attempt
	// timeout — the client-visible face of datagram loss on the path.
	UDPRetransmits uint64 `json:"udp_retransmits_total"`
	// UDPSpills counts packets shed from a saturated UDP worker pool to
	// bounded transient goroutines (slow-query bursts outrunning workers).
	UDPSpills uint64 `json:"udp_spills_total"`
	// UDPBatchReads / UDPBatchDatagrams count batched-read syscalls and
	// the datagrams they returned; their ratio is the live mean
	// datagrams-per-syscall of the batch serving path.
	UDPBatchReads     uint64 `json:"udp_batch_reads_total"`
	UDPBatchDatagrams uint64 `json:"udp_batch_datagrams_total"`
	// UDPBatchSizes is the datagrams-per-syscall histogram: bucket label
	// ("1", "2-3", …, "64+") → batched reads returning that many.
	UDPBatchSizes map[string]uint64 `json:"udp_batch_size_reads,omitempty"`
	// GuardDrops / GuardSlips count UDP datagrams the abuse guard rate-
	// limited: silently discarded vs answered with a minimal TC=1 slip.
	GuardDrops uint64 `json:"guard_drops_total"`
	GuardSlips uint64 `json:"guard_slips_total"`
	// GuardRefusals counts queries answered REFUSED by the guard;
	// GuardBreakerRefusals is the miss-flood circuit breaker's share.
	GuardRefusals        uint64 `json:"guard_refusals_total"`
	GuardBreakerRefusals uint64 `json:"guard_breaker_refusals_total"`
	// GuardCookiesValidated counts rate-limit bypasses earned by valid DNS
	// server cookies; GuardCookiesIssued counts cookies attached to
	// responses.
	GuardCookiesValidated uint64 `json:"guard_cookies_validated_total"`
	GuardCookiesIssued    uint64 `json:"guard_cookies_issued_total"`
	// UpstreamBytesSent / UpstreamBytesReceived are upstream message
	// bytes, the paper's Figure 3 axis.
	UpstreamBytesSent     uint64 `json:"upstream_bytes_sent_total"`
	UpstreamBytesReceived uint64 `json:"upstream_bytes_received_total"`
	// Latency holds the accept-to-response distribution per transport.
	Latency map[string]*Distribution `json:"query_latency"`
	// UpstreamLatency is the upstream-exchange distribution (cache misses
	// only, checkout excluded).
	UpstreamLatency *Distribution `json:"upstream_latency"`
}

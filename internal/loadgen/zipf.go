package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"dohcost/internal/dnswire"
)

// This file is the heavy-tailed workload half of the cache-at-scale story:
// DoH client traffic characterizations find name popularity strongly
// Zipf-skewed, which is exactly the regime where a cache's admission
// policy, not its raw capacity, decides the hit rate. Scenario.ZipfNames
// switches the generator from the per-client Alexa cycles to ranks drawn
// from this distribution over a universe of millions of distinct names —
// most asked once, a head asked constantly.

// Zipf samples ranks 1..n with P(rank) ∝ rank^(-s). Unlike math/rand's
// Zipf it supports the classic web exponent s = 1.0 exactly (and any
// s > 0), via the inverse CDF of the continuous power-law approximation —
// a closed form, no per-rank tables, so a 10M-name universe costs nothing
// to set up. Safe for concurrent use; the caller's *rand.Rand is not.
type Zipf struct {
	n int
	s float64
}

// NewZipf builds a sampler over ranks 1..n (n floored at 1). Non-positive
// s falls back to 1.0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 0 {
		s = 1.0
	}
	return &Zipf{n: n, s: s}
}

// N reports the universe size.
func (z *Zipf) N() int { return z.n }

// Rank draws one rank in [1, n] from rng.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	fn := float64(z.n)
	var r int
	if z.s == 1 {
		// CDF(x) ∝ ln x  ⇒  x = n^u.
		r = int(math.Pow(fn, u))
	} else {
		// CDF(x) ∝ (x^(1-s) − 1)  ⇒  x = (u·(n^(1-s) − 1) + 1)^(1/(1-s)).
		r = int(math.Pow(u*(math.Pow(fn, 1-z.s)-1)+1, 1/(1-z.s)))
	}
	if r < 1 {
		r = 1
	}
	if r > z.n {
		r = z.n
	}
	return r
}

// ZipfName renders rank r's query name — a stable synthetic domain, so the
// same rank always maps to the same cache entry.
func ZipfName(r int) dnswire.Name {
	return dnswire.Name(fmt.Sprintf("z%08d.zipf.example.", r))
}

package loadgen

import (
	"reflect"
	"testing"
	"time"
)

// TestScenarioSmokeIdeal drives a small closed-loop scenario over ideal
// links across all four transports and checks the harvest's internal
// consistency: full query counts, zero failures, advancing latency and
// byte counters, and a warm proxy cache.
func TestScenarioSmokeIdeal(t *testing.T) {
	res, err := Run(Scenario{
		Clients: 3,
		Queries: 30,
		Names:   5,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTransport) != len(Transports) {
		t.Fatalf("got %d transport results, want %d", len(res.PerTransport), len(Transports))
	}
	for i, tr := range res.PerTransport {
		if tr.Transport != Transports[i] {
			t.Errorf("result %d is %q, want %q (run order)", i, tr.Transport, Transports[i])
		}
		if tr.Queries != 30 {
			t.Errorf("%s: %d queries completed, want 30", tr.Transport, tr.Queries)
		}
		if tr.Failures != 0 {
			t.Errorf("%s: %d failures on ideal links", tr.Transport, tr.Failures)
		}
		if tr.BytesSent == 0 || tr.BytesReceived == 0 {
			t.Errorf("%s: byte counters did not advance: %+v", tr.Transport, tr)
		}
		if tr.P99Ms < tr.P50Ms {
			t.Errorf("%s: p99 %.2fms < p50 %.2fms", tr.Transport, tr.P99Ms, tr.P50Ms)
		}
		if tr.QPS <= 0 {
			t.Errorf("%s: qps = %f", tr.Transport, tr.QPS)
		}
	}
	// 3 clients × 5 names × 4 transports = 60 distinct names; everything
	// else must hit the proxy cache.
	if res.Cache.Misses != 60 {
		t.Errorf("cache misses = %d, want 60 (names are disjoint per client and transport)", res.Cache.Misses)
	}
	if res.Cache.Hits != 4*30-60 {
		t.Errorf("cache hits = %d, want %d", res.Cache.Hits, 4*30-60)
	}
	if res.Server == nil || res.Server.Queries["udp"] == 0 || res.Server.Queries["doh"] == 0 {
		t.Errorf("server snapshot missing per-proto queries: %+v", res.Server)
	}
}

// counters projects the seed-reproducible slice of a result: everything
// except wall-clock-derived numbers (latency quantiles, elapsed, qps).
func counters(res *Result) any {
	type row struct {
		Transport                string
		Queries, Failures        uint64
		Retransmits, TCFallbacks uint64
		BytesSent, BytesReceived uint64
	}
	rows := make([]row, 0, len(res.PerTransport))
	for _, tr := range res.PerTransport {
		rows = append(rows, row{tr.Transport, tr.Queries, tr.Failures,
			tr.UDPRetransmits, tr.TCFallbacks, tr.BytesSent, tr.BytesReceived})
	}
	return []any{rows, res.Cache, res.Server.CacheEvents, res.Server.PoolExchanges,
		res.Server.UpstreamBytesSent, res.Server.UpstreamBytesReceived}
}

// TestScenarioDeterministicCounters is the loadgen reproducibility
// contract: a closed-loop run under an impaired profile reproduces its
// aggregate counters exactly when re-run with the same seed.
func TestScenarioDeterministicCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second impaired scenario under -short")
	}
	s := Scenario{
		Profile:    "lossy-wifi",
		Transports: []string{"udp", "doh"},
		Clients:    4,
		Queries:    100,
		Names:      4,
		Seed:       7,
		// Generous vs the ~50ms worst-case path RTT: a retransmission must
		// only ever mean a genuinely dropped datagram, not a scheduler or
		// GC stall on a loaded CI runner — a spurious timeout in one run
		// would consume extra link-RNG draws and break the equality below.
		UDPAttemptTimeout: 600 * time.Millisecond,
	}
	res1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counters(res1), counters(res2)) {
		t.Errorf("aggregate counters differ across same-seed runs:\n  run1 %+v\n  run2 %+v",
			counters(res1), counters(res2))
	}
	// At 8% per-datagram loss the UDP leg must show visible recovery work.
	udp := res1.PerTransport[0]
	if udp.UDPRetransmits == 0 {
		t.Errorf("udp on lossy-wifi recorded no retransmissions: %+v", udp)
	}
	doh := res1.PerTransport[1]
	if doh.Failures != 0 {
		t.Errorf("doh (reliable stream) recorded %d failures under loss", doh.Failures)
	}
}

// TestScenarioOpenLoop covers the Poisson arrival model end to end.
func TestScenarioOpenLoop(t *testing.T) {
	res, err := Run(Scenario{
		Transports: []string{"udp"},
		Clients:    2,
		Queries:    20,
		Names:      4,
		Seed:       3,
		Arrival:    "open",
		Rate:       200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTransport[0].Queries; got != 20 {
		t.Errorf("open-loop completed %d queries, want 20", got)
	}
	if res.PerTransport[0].Failures != 0 {
		t.Errorf("open-loop failures = %d", res.PerTransport[0].Failures)
	}
}

// TestScenarioValidation covers config rejection paths.
func TestScenarioValidation(t *testing.T) {
	cases := []Scenario{
		{Profile: "5g"},
		{Transports: []string{"doq"}},
		{Arrival: "batch"},
	}
	for _, s := range cases {
		if _, err := Run(s); err == nil {
			t.Errorf("Run(%+v) accepted invalid config", s)
		}
	}
}

// TestHedgedBeatsFailoverWithDegradedUpstream is the steering acceptance
// scenario: two upstreams behind the proxy, the preferred one degraded to
// a 600ms round trip, clients on an impaired access link. Static failover
// keeps paying the degraded RTT on every miss — the upstream still
// answers, so the pool never fails over — while the hedged policy races
// the clean runner-up after 40ms and must cut the client-observed p99.
// Every query is a cache miss by construction (each client's name cycle is
// as long as its query count), so the upstream leg is on every path.
func TestHedgedBeatsFailoverWithDegradedUpstream(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second impairment scenario")
	}
	for _, profile := range []string{"lossy-wifi", "satellite"} {
		t.Run(profile, func(t *testing.T) {
			base := Scenario{
				Profile:             profile,
				Transports:          []string{"doh"},
				Clients:             3,
				Queries:             18,
				Names:               6, // = queries per client → all misses
				Seed:                7,
				Upstreams:           2,
				UpstreamRTT:         4 * time.Millisecond,
				DegradedUpstreamRTT: 600 * time.Millisecond,
				HedgeDelay:          40 * time.Millisecond,
				Timeout:             30 * time.Second,
			}
			run := func(policy string) *Result {
				t.Helper()
				s := base
				s.Policy = policy
				res, err := Run(s)
				if err != nil {
					t.Fatalf("%s run: %v", policy, err)
				}
				if len(res.PerTransport) != 1 || res.PerTransport[0].Queries == 0 {
					t.Fatalf("%s run harvested nothing: %+v", policy, res.PerTransport)
				}
				return res
			}
			failover := run("failover")
			hedged := run("hedged")

			fp99 := failover.PerTransport[0].P99Ms
			hp99 := hedged.PerTransport[0].P99Ms
			// Failover pays the degraded 600ms upstream leg on every miss,
			// so its p99 must carry it; hedging must beat it outright.
			if fp99 < 500 {
				t.Fatalf("failover p99 = %.1fms, expected ≥500ms through the degraded upstream", fp99)
			}
			if hp99 >= fp99 {
				t.Errorf("hedged p99 = %.1fms did not beat failover p99 = %.1fms", hp99, fp99)
			}
			if hedged.Server.HedgesFired == 0 {
				t.Error("hedged run fired no hedges")
			}
			if failover.Server.HedgesFired != 0 {
				t.Errorf("failover run fired %d hedges, want 0", failover.Server.HedgesFired)
			}
			if hedged.Steering.Policy != "hedged" || failover.Steering.Policy != "failover" {
				t.Errorf("policies reported as %q/%q", hedged.Steering.Policy, failover.Steering.Policy)
			}
			t.Logf("%s: failover p99 %.1fms vs hedged p99 %.1fms (%d hedges fired, %d won)",
				profile, fp99, hp99, hedged.Server.HedgesFired, hedged.Server.HedgesWon)
		})
	}
}

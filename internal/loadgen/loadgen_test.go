package loadgen

import (
	"reflect"
	"testing"
	"time"
)

// TestScenarioSmokeIdeal drives a small closed-loop scenario over ideal
// links across all four transports and checks the harvest's internal
// consistency: full query counts, zero failures, advancing latency and
// byte counters, and a warm proxy cache.
func TestScenarioSmokeIdeal(t *testing.T) {
	res, err := Run(Scenario{
		Clients: 3,
		Queries: 30,
		Names:   5,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTransport) != len(Transports) {
		t.Fatalf("got %d transport results, want %d", len(res.PerTransport), len(Transports))
	}
	for i, tr := range res.PerTransport {
		if tr.Transport != Transports[i] {
			t.Errorf("result %d is %q, want %q (run order)", i, tr.Transport, Transports[i])
		}
		if tr.Queries != 30 {
			t.Errorf("%s: %d queries completed, want 30", tr.Transport, tr.Queries)
		}
		if tr.Failures != 0 {
			t.Errorf("%s: %d failures on ideal links", tr.Transport, tr.Failures)
		}
		if tr.BytesSent == 0 || tr.BytesReceived == 0 {
			t.Errorf("%s: byte counters did not advance: %+v", tr.Transport, tr)
		}
		if tr.P99Ms < tr.P50Ms {
			t.Errorf("%s: p99 %.2fms < p50 %.2fms", tr.Transport, tr.P99Ms, tr.P50Ms)
		}
		if tr.QPS <= 0 {
			t.Errorf("%s: qps = %f", tr.Transport, tr.QPS)
		}
	}
	// 3 clients × 5 names × 4 transports = 60 distinct names; everything
	// else must hit the proxy cache.
	if res.Cache.Misses != 60 {
		t.Errorf("cache misses = %d, want 60 (names are disjoint per client and transport)", res.Cache.Misses)
	}
	if res.Cache.Hits != 4*30-60 {
		t.Errorf("cache hits = %d, want %d", res.Cache.Hits, 4*30-60)
	}
	if res.Server == nil || res.Server.Queries["udp"] == 0 || res.Server.Queries["doh"] == 0 {
		t.Errorf("server snapshot missing per-proto queries: %+v", res.Server)
	}
}

// counters projects the seed-reproducible slice of a result: everything
// except wall-clock-derived numbers (latency quantiles, elapsed, qps).
func counters(res *Result) any {
	type row struct {
		Transport                string
		Queries, Failures        uint64
		Retransmits, TCFallbacks uint64
		BytesSent, BytesReceived uint64
	}
	rows := make([]row, 0, len(res.PerTransport))
	for _, tr := range res.PerTransport {
		rows = append(rows, row{tr.Transport, tr.Queries, tr.Failures,
			tr.UDPRetransmits, tr.TCFallbacks, tr.BytesSent, tr.BytesReceived})
	}
	return []any{rows, res.Cache, res.Server.CacheEvents, res.Server.PoolExchanges,
		res.Server.UpstreamBytesSent, res.Server.UpstreamBytesReceived}
}

// TestScenarioDeterministicCounters is the loadgen reproducibility
// contract: a closed-loop run under an impaired profile reproduces its
// aggregate counters exactly when re-run with the same seed.
func TestScenarioDeterministicCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second impaired scenario under -short")
	}
	s := Scenario{
		Profile:    "lossy-wifi",
		Transports: []string{"udp", "doh"},
		Clients:    4,
		Queries:    100,
		Names:      4,
		Seed:       7,
		// Generous vs the ~50ms worst-case path RTT: a retransmission must
		// only ever mean a genuinely dropped datagram, not a scheduler or
		// GC stall on a loaded CI runner — a spurious timeout in one run
		// would consume extra link-RNG draws and break the equality below.
		UDPAttemptTimeout: 600 * time.Millisecond,
	}
	res1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counters(res1), counters(res2)) {
		t.Errorf("aggregate counters differ across same-seed runs:\n  run1 %+v\n  run2 %+v",
			counters(res1), counters(res2))
	}
	// At 8% per-datagram loss the UDP leg must show visible recovery work.
	udp := res1.PerTransport[0]
	if udp.UDPRetransmits == 0 {
		t.Errorf("udp on lossy-wifi recorded no retransmissions: %+v", udp)
	}
	doh := res1.PerTransport[1]
	if doh.Failures != 0 {
		t.Errorf("doh (reliable stream) recorded %d failures under loss", doh.Failures)
	}
}

// TestScenarioOpenLoop covers the Poisson arrival model end to end.
func TestScenarioOpenLoop(t *testing.T) {
	res, err := Run(Scenario{
		Transports: []string{"udp"},
		Clients:    2,
		Queries:    20,
		Names:      4,
		Seed:       3,
		Arrival:    "open",
		Rate:       200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTransport[0].Queries; got != 20 {
		t.Errorf("open-loop completed %d queries, want 20", got)
	}
	if res.PerTransport[0].Failures != 0 {
		t.Errorf("open-loop failures = %d", res.PerTransport[0].Failures)
	}
}

// TestScenarioValidation covers config rejection paths.
func TestScenarioValidation(t *testing.T) {
	cases := []Scenario{
		{Profile: "5g"},
		{Transports: []string{"doq"}},
		{Arrival: "batch"},
	}
	for _, s := range cases {
		if _, err := Run(s); err == nil {
			t.Errorf("Run(%+v) accepted invalid config", s)
		}
	}
}

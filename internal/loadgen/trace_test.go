package loadgen

import (
	"strings"
	"testing"
)

// TestScenarioTraceHarvest runs an impaired lossy-wifi scenario with
// tracing armed and checks the acceptance contract: the result carries
// sampler stats and a slowest-traces digest whose entries have phase
// spans — slow and errored queries under loss must be captured.
func TestScenarioTraceHarvest(t *testing.T) {
	res, err := Run(Scenario{
		Profile:     "lossy-wifi",
		Transports:  []string{"udp", "doh"},
		Clients:     4,
		Queries:     60,
		Names:       6,
		Seed:        11,
		Trace:       true,
		TraceSample: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Scenario.Trace did not harvest sampler stats")
	}
	if res.Trace.Offered < 2*60 {
		t.Errorf("tracer saw %d offers, want >= %d (one per served query)", res.Trace.Offered, 2*60)
	}
	if kept := res.Trace.KeptErrored + res.Trace.KeptSlow + res.Trace.KeptBaseline; kept == 0 {
		t.Error("lossy-wifi run sampled no traces")
	}
	if len(res.Trace.SlowThresholdMs) == 0 {
		t.Error("no adaptive slow thresholds in harvested stats")
	}
	if len(res.SlowTraces) == 0 {
		t.Fatal("no slowest-traces digest harvested")
	}
	for i, v := range res.SlowTraces {
		if len(v.Spans) == 0 {
			t.Errorf("slow trace %d (%s %.1fms) has no phase spans", i, v.QName, v.DurationMs)
		}
		if i > 0 && v.DurationMs > res.SlowTraces[i-1].DurationMs {
			t.Errorf("digest not sorted slowest-first at %d", i)
		}
	}

	// The rendered table surfaces the digest.
	out := Render(res)
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "slowest:") {
		t.Errorf("Render missing trace digest lines:\n%s", out)
	}
}

// TestScenarioTraceOverhead pins the tentpole's overhead budget: on clean
// broadband links a traced run must complete within 5% of the wall-clock
// throughput of an identical untraced run. Simulated link latency
// dominates either way, so a pass is expected — the test exists to catch
// a regression that puts blocking work (locks, I/O) on the hot path.
func TestScenarioTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead comparison is a timing test; skipped in -short")
	}
	base := Scenario{
		Profile:    "broadband",
		Transports: []string{"udp"},
		Clients:    8,
		Queries:    400,
		Names:      8,
		Seed:       7,
	}
	run := func(s Scenario) float64 {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTransport[0].QPS
	}
	plain := run(base)
	traced := base
	traced.Trace = true
	tracedQPS := run(traced)
	if tracedQPS < 0.95*plain {
		t.Errorf("traced run %.1f qps vs untraced %.1f qps: overhead above 5%%", tracedQPS, plain)
	}
}

package loadgen

import (
	"testing"
	"time"
)

// TestBrokenV6ConvergesToV4 runs the broken-v6 regime: every upstream's
// IPv6 home black-holes SYNs while IPv4 works. The bootstrap probe's
// dial race must discover this before the listeners come up — one probe
// cycle — so the clients' first queries ride the remembered IPv4 winner
// and the whole run completes without a failure, with first-query
// latency bounded by roughly one stagger interval rather than a dial
// timeout.
func TestBrokenV6ConvergesToV4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario; skipped in -short")
	}
	stagger := 50 * time.Millisecond
	res, err := Run(Scenario{
		Transports:     []string{"udp"},
		Clients:        2,
		Queries:        40,
		Seed:           11,
		HappyEyeballs:  true,
		HEStagger:      stagger,
		DialFault:      "broken-v6",
		BootstrapProbe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.PerTransport[0]
	if tr.Failures != 0 {
		t.Fatalf("%d client-visible failures under broken-v6, want 0", tr.Failures)
	}
	if res.Dialer == nil || len(res.Dialer.Hosts) == 0 {
		t.Fatal("no dialer report")
	}
	for _, h := range res.Dialer.Hosts {
		if h.Winner != "v4" {
			t.Fatalf("upstream %s winner %q, want v4 (report %+v)", h.Host, h.Winner, res.Dialer)
		}
	}
	if res.Bootstrap == nil || res.Bootstrap.Sweeps != 1 {
		t.Fatalf("bootstrap report %+v, want exactly one pre-listen sweep", res.Bootstrap)
	}
	for _, v := range res.Bootstrap.Verdicts {
		if !v.OK {
			t.Fatalf("bootstrap verdict %+v, want reachable via the v4 fallback", v)
		}
	}
	// The v6 lead of each race is a blackhole: with the winner converged
	// before serving started, no client query waits anywhere near the
	// 5 s dial timeout. p99 over the whole run stays within a few
	// stagger intervals (cache hits make most queries far faster).
	if bound := 5 * float64(stagger/time.Millisecond); tr.P99Ms > bound {
		t.Fatalf("p99 %.1fms under broken-v6, want < %.0fms (≈stagger-bounded)", tr.P99Ms, bound)
	}
	// The race memory means v6 is attempted once per upstream (the probe
	// race), not once per dial: v4 wins outnumber v6 attempts' wins.
	if res.Server.DialWins["v6"] != 0 {
		t.Fatalf("v6 recorded %d race wins under blackhole", res.Server.DialWins["v6"])
	}
	if res.Server.DialWins["v4"] == 0 {
		t.Fatal("no v4 race wins recorded")
	}
}

// TestLinkFlapRecoversWithoutServfails schedules a mid-run outage of
// upstream 0 (both homes sever established connections and refuse new
// dials for the flap window) and requires the pool/steering stack to
// ride it out on upstream 1 with zero client-visible failures.
func TestLinkFlapRecoversWithoutServfails(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario; skipped in -short")
	}
	res, err := Run(Scenario{
		Transports: []string{"udp"},
		Clients:    3,
		Queries:    150,
		Names:      64, // more names than queries per client: all misses, so upstream traffic spans the flap
		Think:      4 * time.Millisecond,
		Seed:       23,
		Upstreams:  2,
		FlapAfter:  50 * time.Millisecond,
		FlapFor:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.PerTransport[0]
	if tr.Failures != 0 {
		t.Fatalf("%d client-visible failures across the link flap, want 0", tr.Failures)
	}
	// The flap must actually have bitten: the pool saw upstream attempts
	// fail and failed over.
	if res.Server.PoolFailures == 0 {
		t.Fatal("flap produced no pool failures; the outage never landed")
	}
	// Both upstreams carried traffic: upstream 0 before (and possibly
	// after) the flap, upstream 1 during it.
	var ups [2]uint64
	for i, u := range res.Steering.Upstreams {
		_ = i
		switch u.Name {
		case upstreamHost(0):
			ups[0] = u.Samples
		case upstreamHost(1):
			ups[1] = u.Samples
		}
	}
	if ups[0] == 0 || ups[1] == 0 {
		t.Fatalf("traffic did not span both upstreams across the flap: samples %v", ups)
	}
}

// TestFaultInjectionSmoke is the CI gate: one short scenario per dial
// fault profile, each required to finish with zero honest-client
// failures. Single-client closed-loop runs keep every per-host fault
// RNG's draw sequence deterministic, so these assertions are exact, not
// probabilistic.
func TestFaultInjectionSmoke(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
	}{
		{"broken-v6", Scenario{
			Transports:     []string{"udp"},
			Clients:        1,
			Queries:        30,
			Seed:           7,
			HappyEyeballs:  true,
			HEStagger:      40 * time.Millisecond,
			DialFault:      "broken-v6",
			BootstrapProbe: true,
		}},
		{"flaky-dial", Scenario{
			Transports:     []string{"udp"},
			Clients:        1,
			Queries:        30,
			Seed:           7,
			Upstreams:      2,
			HappyEyeballs:  true,
			HEStagger:      40 * time.Millisecond,
			DialFault:      "flaky-dial",
			BootstrapProbe: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.s)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range res.PerTransport {
				if tr.Failures != 0 {
					t.Fatalf("%s: %d honest-client failures under %s, want 0",
						tr.Transport, tr.Failures, tc.name)
				}
				if tr.Queries == 0 {
					t.Fatalf("%s: no queries completed", tr.Transport)
				}
			}
		})
	}
}

// Package loadgen drives multi-client workloads against the forwarding
// proxy under configurable network impairment — the scenario harness the
// paper's methodology implies but never ships. Where internal/core replays
// the paper's controlled single-client experiments, loadgen answers the
// production question: with N concurrent stub resolvers on a degraded
// access network (3G, lossy Wi-Fi, satellite, …), how do Do53, TCP, DoT
// and DoH compare on latency, bytes and failure rate?
//
// A Scenario deploys one upstream recursive resolver and one forwarding
// proxy on a simulated network, gives every client its own host (and
// therefore its own deterministically seeded impairment schedule — see
// netsim), and replays an Alexa-derived query workload per transport under
// a closed-loop (send, wait, think) or open-loop (Poisson arrivals)
// model. All reported numbers are harvested from internal/telemetry: each
// client query runs inside its own Transaction, so latency quantiles,
// byte counts, retransmissions, TC fallbacks and failure verdicts come
// from the same accounting subsystem the proxy exposes in production.
//
// Closed-loop runs with one seed reproduce their aggregate counters
// (queries, failures, retransmissions, bytes, cache events) exactly:
// every client's traffic is sequential, so the per-link RNGs replay the
// same loss/jitter/reorder schedule on every run. Open-loop arrivals
// allow in-flight overlap per client, which trades that exactness for
// arrival realism.
package loadgen

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/dialer"
	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/netsim"
	"dohcost/internal/proxy"
	"dohcost/internal/qtrace"
	"dohcost/internal/steer"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
)

// Simulated host names of a scenario deployment.
const (
	// ProxyHost is where the forwarding proxy serves all four transports.
	ProxyHost = "proxy.dns"
	// UpstreamHost is the recursive resolver behind the proxy.
	UpstreamHost = "recursive.upstream"
)

// Transports lists every transport a Scenario can drive, in the paper's
// comparison order.
var Transports = []string{"udp", "tcp", "dot", "doh"}

// Scenario configures one load-generation run. The zero value is usable:
// defaults are filled by Run.
type Scenario struct {
	// Profile names the netsim impairment profile on every client's access
	// link ("broadband", "4g", "3g", "lossy-wifi", "satellite"); empty runs
	// ideal links. The proxy↔upstream link is always clean — the degraded
	// regime under study is the access network, as in Hounsel et al.
	Profile string
	// Transports is the subset of transports to drive, in order; nil runs
	// all four.
	Transports []string
	// Clients is the number of concurrent simulated clients per transport
	// (default 10). Each client gets its own simulated host.
	Clients int
	// Queries is the total query count per transport, split across clients
	// (default 1000).
	Queries int
	// Seed drives the workload, the arrival processes, and (via netsim)
	// every link's impairment schedule.
	Seed int64
	// Arrival selects the load model: "closed" (default) has each client
	// wait for a response (plus Think) before its next query; "open" issues
	// queries at per-client Poisson arrival times regardless of completions.
	Arrival string
	// Rate is the open-loop per-client arrival rate in queries/second
	// (default 20).
	Rate float64
	// Think is the closed-loop pause between a response and the client's
	// next query (default 0: back-to-back).
	Think time.Duration
	// Names is how many distinct query names each client cycles through
	// (default 16). Smaller means a hotter proxy cache. Names are disjoint
	// across clients and transports, so cache behaviour is per-client
	// deterministic. Ignored when ZipfNames selects the heavy-tailed
	// generator.
	Names int
	// ZipfNames, when positive, replaces the per-client Alexa name cycles
	// with ranks drawn from a Zipf distribution over this many distinct
	// names, shared by all clients of a transport — the heavy-tailed
	// popularity real DoH client traffic shows, and the regime where cache
	// admission policy decides the hit rate. Supports universes of 10M+
	// names (ranks are sampled in closed form, never materialized).
	ZipfNames int
	// ZipfS is the Zipf exponent (default 1.0, the classic web skew).
	ZipfS float64
	// CacheBudget bounds the proxy cache in accounted bytes
	// (proxy.Config.CacheBudget); 0 keeps the entry-count default.
	CacheBudget int64
	// CacheAdmission selects the proxy cache's admission policy ("lru",
	// "tinylfu", or empty for the proxy default).
	CacheAdmission string
	// Timeout bounds one whole client query, fallback legs included
	// (default 10s).
	Timeout time.Duration
	// UDPAttemptTimeout is the UDP client's per-attempt wait before it
	// retransmits; zero derives max(6×(profile delay+jitter), 500ms) so
	// impaired paths retry on genuine loss, not on their own tail latency.
	UDPAttemptTimeout time.Duration
	// UDPRetries is how many retransmissions follow a timed-out UDP
	// attempt (default 2, the stub-resolver classic).
	UDPRetries int
	// UpstreamRTT is the clean proxy↔upstream round trip (default 4ms).
	UpstreamRTT time.Duration
	// Upstreams is how many recursive resolvers stand behind the proxy
	// (default 1); the pool prefers them in index order.
	Upstreams int
	// DegradedUpstreamRTT, when positive, slows the FIRST (preferred)
	// upstream's proxy↔upstream link to this round trip while the others
	// keep UpstreamRTT — the one-degraded-upstream regime where steering
	// policies separate: static failover keeps paying the degraded RTT
	// because the upstream still answers, while fastest/hedged route
	// around it.
	DegradedUpstreamRTT time.Duration
	// Policy selects the proxy's upstream steering policy ("failover",
	// "fastest", "hedged"); empty means failover.
	Policy string
	// HedgeDelay is the hedged policy's wait before its second exchange
	// (0 = adaptive from the primary's live latency model).
	HedgeDelay time.Duration
	// ServeStale and PrefetchWindow configure the proxy cache's RFC 8767
	// stale window and near-expiry prefetch (0 disables each).
	ServeStale     time.Duration
	PrefetchWindow time.Duration
	// UDPBatch, when positive, serves the proxy's UDP listener with the
	// batched loop at this vector size (see proxy.Config.UDPBatch); 0
	// keeps the per-packet loop.
	UDPBatch int
	// Attackers, when positive, adds that many flooder clients running
	// concurrently with every transport leg: each blasts random-subdomain
	// queries over UDP (cache-busting — every query is a guaranteed miss)
	// from its own simulated host at AttackQPS. This is the adversarial
	// population the proxy's abuse guard exists for; the flooders' harvest
	// lands in Result.Attack, on a telemetry sink separate from the honest
	// clients'.
	Attackers int
	// AttackQPS is each flooder's target query rate (default 200).
	AttackQPS float64
	// Guard, when non-nil, arms the proxy's abuse guard
	// (proxy.Config.Guard); nil runs the proxy unguarded, which is how the
	// no-guard comparison baseline is measured.
	Guard *guard.Config
	// HappyEyeballs dual-homes every upstream (v4.<host> and v6.<host>
	// each run a full resolver) and opens the proxy's upstream
	// connections through the RFC 8305 racing dialer instead of a direct
	// single-homed dial: family-interleaved staggered attempts, first
	// established connection wins, winning family remembered per
	// upstream. This is the substrate the dial-fault scenarios measure
	// recovery on.
	HappyEyeballs bool
	// HEStagger overrides the racing dialer's connection-attempt delay
	// (default dialer.DefaultStagger, the RFC's 250 ms).
	HEStagger time.Duration
	// DialFault names a netsim dial impairment profile ("broken-v6",
	// "flaky-dial") applied to every upstream's address pair. Most
	// profiles need HappyEyeballs set to matter: without dual-homing
	// only the profile's V4 fault lands, on the single-homed host.
	DialFault string
	// FlapAfter, when positive, schedules a link flap on upstream 0 (all
	// of its homes): the link drops FlapAfter after the clients start
	// and recovers after FlapFor (default 100 ms) — the mid-run network
	// change the dialer/pool/steering stack must ride out without
	// client-visible failures.
	FlapAfter time.Duration
	FlapFor   time.Duration
	// BootstrapProbe sweeps upstream reachability through the proxy's
	// bootstrap prober before the listeners come up, seeding the
	// steering scoreboard (and, with HappyEyeballs, warming each
	// upstream's winning-family memory) so the first client queries
	// never explore a dead combination.
	BootstrapProbe bool
	// Trace arms the proxy's per-query lifecycle tracing
	// (proxy.Config.Tracing): every served query records phase spans and
	// the tail sampler keeps errored, slow and 1-in-TraceSample baseline
	// traces. The harvest lands in Result.Trace and Result.SlowTraces.
	Trace bool
	// TraceSample is the tracer's baseline keep rate (1-in-N
	// unremarkable traces; 0 = the qtrace default 64).
	TraceSample int
}

// withDefaults fills unset fields.
func (s Scenario) withDefaults() (Scenario, netsim.Profile, error) {
	var prof netsim.Profile
	if s.Profile != "" {
		p, ok := netsim.LookupProfile(s.Profile)
		if !ok {
			return s, prof, fmt.Errorf("loadgen: unknown impairment profile %q (have %v)", s.Profile, netsim.ProfileNames())
		}
		prof = p
	}
	if s.Transports == nil {
		s.Transports = Transports
	}
	for _, tr := range s.Transports {
		switch tr {
		case "udp", "tcp", "dot", "doh":
		default:
			return s, prof, fmt.Errorf("loadgen: unknown transport %q (have %v)", tr, Transports)
		}
	}
	if s.Clients <= 0 {
		s.Clients = 10
	}
	if s.Queries <= 0 {
		s.Queries = 1000
	}
	switch s.Arrival {
	case "":
		s.Arrival = "closed"
	case "closed", "open":
	default:
		return s, prof, fmt.Errorf("loadgen: unknown arrival model %q (want closed or open)", s.Arrival)
	}
	if s.Rate <= 0 {
		s.Rate = 20
	}
	if s.Names <= 0 {
		s.Names = 16
	}
	if s.ZipfNames > 0 && s.ZipfS <= 0 {
		s.ZipfS = 1.0
	}
	if s.Timeout <= 0 {
		s.Timeout = 10 * time.Second
	}
	if s.UDPAttemptTimeout <= 0 {
		s.UDPAttemptTimeout = 6 * (prof.Link.Delay + prof.Link.Jitter)
		if s.UDPAttemptTimeout < 500*time.Millisecond {
			s.UDPAttemptTimeout = 500 * time.Millisecond
		}
	}
	if s.UDPRetries <= 0 {
		s.UDPRetries = 2
	}
	if s.UpstreamRTT <= 0 {
		s.UpstreamRTT = 4 * time.Millisecond
	}
	if s.Upstreams <= 0 {
		s.Upstreams = 1
	}
	if _, err := steer.ParsePolicy(s.Policy); err != nil {
		return s, prof, fmt.Errorf("loadgen: %w", err)
	}
	if s.Attackers > 0 && s.AttackQPS <= 0 {
		s.AttackQPS = 200
	}
	if s.DialFault != "" {
		if _, ok := netsim.LookupDialProfile(s.DialFault); !ok {
			return s, prof, fmt.Errorf("loadgen: unknown dial fault profile %q (have %v)", s.DialFault, netsim.DialProfileNames())
		}
	}
	if s.FlapAfter > 0 && s.FlapFor <= 0 {
		s.FlapFor = 100 * time.Millisecond
	}
	return s, prof, nil
}

// TransportResult is one transport's harvest, sourced from the client-side
// telemetry sink (one Transaction per query).
type TransportResult struct {
	// Transport is "udp", "tcp", "dot" or "doh".
	Transport string `json:"transport"`
	// Queries is the number of completed transactions.
	Queries uint64 `json:"queries"`
	// Failures counts queries that errored, timed out, or returned a
	// non-success RCode.
	Failures uint64 `json:"failures"`
	// UDPRetransmits counts query attempts re-sent after per-attempt
	// timeouts (UDP only; loss made visible).
	UDPRetransmits uint64 `json:"udp_retransmits"`
	// TCFallbacks counts truncated UDP answers retried over TCP.
	TCFallbacks uint64 `json:"tc_fallbacks"`
	// BytesSent and BytesReceived are DNS message bytes on the client side
	// (retransmitted attempts count each time).
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
	// P50Ms, P95Ms, P99Ms and MeanMs summarize client-observed resolution
	// latency in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Elapsed is the wall-clock span of the transport's run; QPS is
	// Queries/Elapsed.
	Elapsed time.Duration `json:"elapsed_ns"`
	QPS     float64       `json:"qps"`
}

// AttackResult is the flooder population's harvest: how the guard
// disposed of the flood, as observed from the attacking clients. Refused
// and Truncated are the guard's explicit verdicts (breaker REFUSED,
// RRL slip with TC=1); Dropped are queries that drew no response before
// the flooder's per-query timeout — the silently rate-limited majority.
type AttackResult struct {
	Attackers int    `json:"attackers"`
	Queries   uint64 `json:"queries"`
	Answered  uint64 `json:"answered"`
	Refused   uint64 `json:"refused"`
	Truncated uint64 `json:"truncated"`
	Dropped   uint64 `json:"dropped"`
}

// Result is one scenario run: per-transport client-side harvests plus the
// proxy's own server-side view of the same traffic.
type Result struct {
	// Scenario echoes the configuration with defaults resolved.
	Scenario Scenario `json:"scenario"`
	// Profile is the resolved impairment profile (zero Name on ideal links).
	Profile netsim.Profile `json:"profile"`
	// PerTransport holds one harvest per driven transport, in run order.
	PerTransport []TransportResult `json:"per_transport"`
	// Server is the proxy-side telemetry snapshot across all transports.
	Server *telemetry.Snapshot `json:"server"`
	// Cache is the proxy cache's effectiveness over the whole run.
	Cache dnscache.Stats `json:"cache"`
	// Steering is the proxy's end-of-run steering model: policy and
	// per-upstream SRTT/success scores, best-ranked first.
	Steering steer.Report `json:"steering"`
	// Attack is the flooder population's harvest; nil without Attackers.
	Attack *AttackResult `json:"attack,omitempty"`
	// Guard is the proxy guard's end-of-run report; nil when unguarded.
	Guard *guard.Report `json:"guard,omitempty"`
	// Dialer is the Happy-Eyeballs race memory at end of run (winning
	// family and demotion state per upstream); nil without
	// Scenario.HappyEyeballs.
	Dialer *dialer.Report `json:"dialer,omitempty"`
	// Bootstrap is the reachability prober's verdict table; nil without
	// Scenario.BootstrapProbe.
	Bootstrap *dialer.ProbeReport `json:"bootstrap,omitempty"`
	// Trace is the tail sampler's decision counters and live slow
	// thresholds; nil without Scenario.Trace.
	Trace *qtrace.Stats `json:"trace,omitempty"`
	// SlowTraces is the slow-trace digest: the slowest sampled traces of
	// the run (up to five), phase spans included, slowest first. Nil
	// without Scenario.Trace.
	SlowTraces []qtrace.View `json:"slow_traces,omitempty"`
}

// Run executes the scenario and returns the harvest.
func Run(s Scenario) (*Result, error) {
	s, prof, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	n := netsim.New(s.Seed)
	if s.Profile != "" {
		for c := 0; c < s.Clients; c++ {
			n.ApplyProfile(clientHost(c), ProxyHost, prof)
		}
	}

	// The shared metrics sink: the proxy's server-side view, also fed by
	// the racing dialer's per-family attempt counters.
	tel := telemetry.New()
	var he *dialer.HappyEyeballs
	if s.HappyEyeballs {
		he = dialer.New(dialer.Config{
			Resolve: func(ctx context.Context, host string) ([]string, []string, error) {
				return []string{"v4." + host + ":53"}, []string{"v6." + host + ":53"}, nil
			},
			Dial: func(ctx context.Context, addr string) (net.Conn, error) {
				return n.DialContext(ctx, ProxyHost, addr)
			},
			Stagger: s.HEStagger,
			// Lead with v6, as RFC 8305 clients do — which is exactly what
			// makes the broken-v6 profile interesting.
			PreferV6:  true,
			Telemetry: tel,
		})
	}

	var (
		poolUps   []dnstransport.PoolUpstream
		probes    []dialer.Target
		flapHosts []string
	)
	for i := 0; i < s.Upstreams; i++ {
		uhost := upstreamHost(i)
		rtt := s.UpstreamRTT
		if i == 0 && s.DegradedUpstreamRTT > 0 {
			rtt = s.DegradedUpstreamRTT
		}
		homes := []string{uhost}
		if s.HappyEyeballs {
			homes = []string{"v4." + uhost, "v6." + uhost}
		}
		for _, home := range homes {
			n.SetLink(ProxyHost, home, netsim.Link{Delay: rtt / 2})
			upstream := &dnsserver.Server{Handler: dnsserver.Static(netip.MustParseAddr("192.0.2.53"), 300)}
			upRun, err := upstream.Start(n, home)
			if err != nil {
				return nil, fmt.Errorf("loadgen: starting upstream %s: %w", home, err)
			}
			defer upRun.Close()
		}
		if s.DialFault != "" {
			dp, _ := netsim.LookupDialProfile(s.DialFault)
			if s.HappyEyeballs {
				n.ApplyDialProfile("v4."+uhost, "v6."+uhost, dp)
			} else {
				n.SetDialFault(uhost, dp.V4)
			}
		}
		if s.FlapAfter > 0 && i == 0 {
			flapHosts = homes
		}
		dialConn := func(ctx context.Context) (net.Conn, error) {
			if he != nil {
				return he.DialContext(ctx, uhost)
			}
			return n.DialContext(ctx, ProxyHost, uhost+":53")
		}
		poolUps = append(poolUps, dnstransport.PoolUpstream{
			Name: uhost,
			Dial: func(ctx context.Context) (dnstransport.Resolver, error) {
				return dnstransport.NewTCPClient(dialConn), nil
			},
		})
		if s.BootstrapProbe {
			probes = append(probes, dialer.Target{
				Upstream: uhost,
				Proto:    "tcp",
				Probe: func(ctx context.Context) (time.Duration, error) {
					r := dnstransport.NewTCPClient(dialConn)
					defer r.Close()
					t0 := time.Now()
					resp, err := r.Exchange(ctx, dnswire.NewQuery(0, "probe.bootstrap.invalid.", dnswire.TypeA))
					if err != nil {
						return 0, err
					}
					if resp.RCode != dnswire.RCodeSuccess {
						return 0, fmt.Errorf("probe rcode %v", resp.RCode)
					}
					return time.Since(t0), nil
				},
			})
		}
	}
	var prober *dialer.Prober
	if s.BootstrapProbe {
		prober = &dialer.Prober{Targets: probes, Timeout: 2 * time.Second}
	}

	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike(ProxyHost))
	if err != nil {
		return nil, err
	}
	var trcfg *qtrace.Config
	if s.Trace {
		trcfg = &qtrace.Config{SampleEvery: s.TraceSample}
	}
	maxUDP := 0
	if prof.Link.MTU > 0 {
		// Clamp UDP responses to the path MTU so oversized answers come
		// back as honest TC=1 (driving the RFC 7766 TCP fallback) instead
		// of being blackholed by the link.
		maxUDP = prof.Link.MTU - netsim.DatagramHeaderBytes
	}
	p, err := proxy.New(proxy.Config{
		Upstreams:      poolUps,
		Chain:          chain,
		Endpoints:      []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
		MaxUDPSize:     maxUDP,
		Policy:         s.Policy,
		HedgeDelay:     s.HedgeDelay,
		ServeStale:     s.ServeStale,
		PrefetchWindow: s.PrefetchWindow,
		UDPBatch:       s.UDPBatch,
		CacheBudget:    s.CacheBudget,
		CacheAdmission: s.CacheAdmission,
		Guard:          s.Guard,
		Dialer:         he,
		Bootstrap:      prober,
		Telemetry:      tel,
		Tracing:        trcfg,
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.Start(n, ProxyHost); err != nil {
		return nil, err
	}

	// The shared third-party pool gives clients realistic name popularity;
	// the per-client prefix (see clientNames) keeps cache interaction
	// deterministic by construction. The Zipf generator needs no corpus:
	// names are rendered from sampled ranks on the fly.
	var domains []string
	if s.ZipfNames <= 0 {
		corpus := alexa.Generate(alexa.Config{Pages: s.Clients*s.Names/15 + 20, Seed: s.Seed})
		domains = corpus.AllDomains()
	}

	res := &Result{Scenario: s, Profile: prof}

	// The flooders run for the whole scenario, overlapping every honest
	// transport leg — the regime the guard's fairness claim is about.
	var (
		atk     attackCounters
		atkStop chan struct{}
		atkWG   sync.WaitGroup
	)
	if s.Attackers > 0 {
		atkStop = make(chan struct{})
		for a := 0; a < s.Attackers; a++ {
			atkWG.Add(1)
			go func(a int) {
				defer atkWG.Done()
				runAttacker(n, s, a, atkStop, &atk)
			}(a)
		}
	}

	// Arm the mid-run flap now, not at topology-build time: the windows
	// offset from this call, so FlapAfter counts from (just before) the
	// moment clients start issuing queries.
	for _, h := range flapHosts {
		n.SetLinkFlap(h, netsim.FlapWindow{Start: s.FlapAfter, End: s.FlapAfter + s.FlapFor})
	}

	for _, tr := range s.Transports {
		trRes, err := runTransport(n, chain, s, tr, domains)
		if err != nil {
			if atkStop != nil {
				close(atkStop)
				atkWG.Wait()
			}
			return nil, fmt.Errorf("loadgen: transport %s: %w", tr, err)
		}
		res.PerTransport = append(res.PerTransport, trRes)
	}
	if atkStop != nil {
		close(atkStop)
		atkWG.Wait()
		res.Attack = &AttackResult{
			Attackers: s.Attackers,
			Queries:   atk.queries.Load(),
			Answered:  atk.answered.Load(),
			Refused:   atk.refused.Load(),
			Truncated: atk.truncated.Load(),
			Dropped:   atk.dropped.Load(),
		}
	}
	res.Server = p.Telemetry().Snapshot()
	res.Cache = p.CacheStats()
	res.Steering = p.SteeringReport()
	if g := p.Guard(); g != nil {
		gr := g.Report()
		res.Guard = &gr
	}
	if he != nil {
		dr := he.Report()
		res.Dialer = &dr
	}
	if prober != nil {
		br := prober.Report()
		res.Bootstrap = &br
	}
	if tr := p.Tracer(); tr != nil {
		st := tr.Stats()
		res.Trace = &st
		res.SlowTraces = slowestTraces(tr, 5)
	}
	return res, nil
}

// slowestTraces digests the tracer's ring into the n slowest sampled
// traces of the run, slowest first — the queries worth a human's
// attention after a scenario, phase spans included.
func slowestTraces(tr *qtrace.Tracer, n int) []qtrace.View {
	// Limit well past any ring capacity: the digest wants the global
	// slowest, not the newest page.
	views := tr.Traces(qtrace.Filter{Limit: 1 << 20})
	sort.Slice(views, func(i, j int) bool { return views[i].DurationMs > views[j].DurationMs })
	if len(views) > n {
		views = views[:n]
	}
	return views
}

// attackCounters is the flooder population's shared harvest, written by
// every attacker goroutine.
type attackCounters struct {
	queries, answered, refused, truncated, dropped atomic.Uint64
}

// attackerHost names flooder a's simulated host — distinct from every
// honest client's host, so the guard sees the flood as its own client
// identities.
func attackerHost(a int) string { return fmt.Sprintf("atk%d", a) }

// attackTimeout is how long a flooder waits for any one response; guard
// drops leave it to expire, so it stays short to keep the flood flowing.
const attackTimeout = 250 * time.Millisecond

// runAttacker floods the proxy's UDP listener with random-subdomain
// queries at ~s.AttackQPS until stop closes. Every name is unique, so
// every admitted query is a cache miss headed for the upstream — the
// cache-busting flood the miss breaker exists to absorb. Responses are
// classified into the shared counters; errors (dominated by guard drops
// timing out) count as Dropped.
func runAttacker(n *netsim.Network, s Scenario, a int, stop <-chan struct{}, res *attackCounters) {
	host := attackerHost(a)
	pc, err := n.ListenPacket(fmt.Sprintf("%s:%d", host, 5353))
	if err != nil {
		return
	}
	u := dnstransport.NewUDPClient(pc, netsim.Addr(ProxyHost+":53"))
	u.Timeout = attackTimeout
	u.Retries = 0
	defer u.Close()

	rng := rand.New(rand.NewSource(s.Seed ^ 0x6174746b ^ int64(a)<<32))
	// Queries go out in small per-tick bursts rather than one per tick:
	// a per-query timer at flood rates would be at the mercy of timer
	// granularity and quietly undershoot the target QPS.
	const atkTick = 2 * time.Millisecond
	batch := int(s.AttackQPS*atkTick.Seconds() + 0.5)
	if batch < 1 {
		batch = 1
	}
	// In-flight queries are bounded so a fully-dropped flood (every query
	// waiting out attackTimeout) throttles instead of accumulating
	// goroutines without limit.
	sem := make(chan struct{}, 256)
	var qwg sync.WaitGroup
	tick := time.NewTicker(atkTick)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			qwg.Wait()
			return
		case <-tick.C:
		}
		for b := 0; b < batch; b++ {
			select {
			case sem <- struct{}{}:
			case <-stop:
				qwg.Wait()
				return
			}
			name := dnswire.Name(fmt.Sprintf("x%08x.flood-a%d.invalid.", rng.Uint32(), a))
			qwg.Add(1)
			go func(name dnswire.Name) {
				defer qwg.Done()
				defer func() { <-sem }()
				res.queries.Add(1)
				ctx, cancel := context.WithTimeout(context.Background(), attackTimeout)
				defer cancel()
				resp, err := u.Exchange(ctx, dnswire.NewQuery(0, name, dnswire.TypeA))
				switch {
				case err != nil:
					res.dropped.Add(1)
				case resp.Truncated:
					res.truncated.Add(1)
				case resp.RCode == dnswire.RCodeRefused:
					res.refused.Add(1)
				default:
					res.answered.Add(1)
				}
			}(name)
		}
	}
}

// clientHost names client c's simulated host. Every client owning its own
// host is what gives it a private access link — and with it a private,
// seed-stable impairment schedule.
func clientHost(c int) string { return fmt.Sprintf("c%d", c) }

// upstreamHost names upstream i's simulated host; upstream 0 keeps the
// historical single-upstream name.
func upstreamHost(i int) string {
	if i == 0 {
		return UpstreamHost
	}
	return fmt.Sprintf("recursive%d.upstream", i)
}

// clientNames builds client c's query-name cycle for one transport:
// Alexa-derived base domains under a client+transport-unique label, so no
// two clients (and no two transports) ever contend for a cache entry.
func clientNames(tr string, c, count int, domains []string) []dnswire.Name {
	names := make([]dnswire.Name, count)
	for j := 0; j < count; j++ {
		d := domains[(c*count+j)%len(domains)]
		names[j] = dnswire.Name(fmt.Sprintf("%s-c%d.%s.", tr, c, d))
	}
	return names
}

// transportSeed decorrelates the per-client workload RNG across transports
// (open-loop arrival schedules must differ between, say, the udp and doh
// legs of one scenario).
func transportSeed(tr string) int64 {
	h := fnv.New64a()
	io.WriteString(h, tr)
	return int64(h.Sum64() >> 1)
}

// protoFor maps a transport label to its telemetry proto.
func protoFor(tr string) telemetry.Proto {
	switch tr {
	case "udp":
		return telemetry.ProtoUDP
	case "dot":
		return telemetry.ProtoDoT
	case "doh":
		return telemetry.ProtoDoH
	}
	return telemetry.ProtoTCP
}

// runTransport drives one transport's full workload and harvests its
// client-side telemetry sink.
func runTransport(n *netsim.Network, chain *tlsx.Chain, s Scenario, tr string, domains []string) (TransportResult, error) {
	m := telemetry.New()
	proto := protoFor(tr)

	var wg sync.WaitGroup
	errs := make(chan error, s.Clients)
	start := time.Now()
	for c := 0; c < s.Clients; c++ {
		count := s.Queries / s.Clients
		if c < s.Queries%s.Clients {
			count++
		}
		if count == 0 {
			continue
		}
		var names []dnswire.Name
		if s.ZipfNames <= 0 {
			names = clientNames(tr, c, s.Names, domains)
		}
		wg.Add(1)
		go func(c, count int, names []dnswire.Name) {
			defer wg.Done()
			if err := runClient(n, chain, s, tr, m, proto, c, count, names); err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c, count, names)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return TransportResult{}, err
	default:
	}

	snap := m.Snapshot()
	out := TransportResult{
		Transport:      tr,
		UDPRetransmits: snap.UDPRetransmits,
		TCFallbacks:    snap.TCFallbacks,
		BytesSent:      snap.UpstreamBytesSent,
		BytesReceived:  snap.UpstreamBytesReceived,
		Elapsed:        elapsed,
	}
	for _, v := range snap.Queries {
		out.Queries += v
	}
	for verdict, v := range snap.Verdicts {
		if verdict != telemetry.VerdictOK.String() {
			out.Failures += v
		}
	}
	// All of this transport's transactions live in one proto bucket: the
	// proto is fixed at Begin, so even a UDP query that completed over the
	// TCP fallback is charged to the udp series.
	if d := snap.Latency[proto.String()]; d != nil {
		out.P50Ms, out.P95Ms, out.P99Ms, out.MeanMs = d.P50Ms, d.P95Ms, d.P99Ms, d.MeanMs
	}
	if elapsed > 0 {
		out.QPS = float64(out.Queries) / elapsed.Seconds()
	}
	return out, nil
}

// runClient executes one client's share of the workload: resolver setup,
// then closed- or open-loop query issue.
func runClient(n *netsim.Network, chain *tlsx.Chain, s Scenario, tr string, m *telemetry.Metrics, proto telemetry.Proto, c, count int, names []dnswire.Name) error {
	r, err := newResolver(n, chain, s, tr, c)
	if err != nil {
		return err
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(s.Seed + 7919*int64(c) + transportSeed(tr)))
	// nextName picks query i's name: a rank sampled from the shared Zipf
	// universe (rendered with a transport prefix so the scenario's legs
	// never share cache entries), or the client's private Alexa cycle. It
	// runs on the issuing goroutine — rng is not safe for concurrent use,
	// so open-loop mode samples before spawning the query goroutine.
	var zipf *Zipf
	if s.ZipfNames > 0 {
		zipf = NewZipf(s.ZipfNames, s.ZipfS)
	}
	nextName := func(i int) dnswire.Name {
		if zipf != nil {
			return dnswire.Name(fmt.Sprintf("%s-%s", tr, ZipfName(zipf.Rank(rng))))
		}
		return names[i%len(names)]
	}
	if s.Arrival == "open" {
		t0 := time.Now()
		var qwg sync.WaitGroup
		at := time.Duration(0)
		for i := 0; i < count; i++ {
			at += time.Duration(rng.ExpFloat64() / s.Rate * float64(time.Second))
			name := nextName(i)
			qwg.Add(1)
			go func(at time.Duration, name dnswire.Name) {
				defer qwg.Done()
				time.Sleep(time.Until(t0.Add(at)))
				query(m, proto, r, name, s.Timeout)
			}(at, name)
		}
		qwg.Wait()
		return nil
	}
	for i := 0; i < count; i++ {
		query(m, proto, r, nextName(i), s.Timeout)
		if s.Think > 0 {
			time.Sleep(s.Think)
		}
	}
	return nil
}

// query runs one resolution inside its own telemetry Transaction: the
// transport layers annotate bytes and retransmissions through the context,
// and the verdict records success, failure or non-success RCode.
func query(m *telemetry.Metrics, proto telemetry.Proto, r dnstransport.Resolver, name dnswire.Name, timeout time.Duration) {
	tx := m.Begin(proto)
	defer tx.Finish()
	ctx, cancel := context.WithTimeout(telemetry.NewContext(context.Background(), tx), timeout)
	defer cancel()
	resp, err := r.Exchange(ctx, dnswire.NewQuery(0, name, dnswire.TypeA))
	switch {
	case err != nil:
		tx.SetVerdict(telemetry.VerdictServFail)
	case resp.RCode != dnswire.RCodeSuccess:
		tx.SetVerdict(telemetry.VerdictServFail)
	default:
		tx.SetVerdict(telemetry.VerdictOK)
	}
}

// newResolver opens client c's resolver toward the proxy over one
// transport. UDP carries the RFC 7766 TCP fallback for truncated answers.
func newResolver(n *netsim.Network, chain *tlsx.Chain, s Scenario, tr string, c int) (dnstransport.Resolver, error) {
	host := clientHost(c)
	dial53 := func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, host, ProxyHost+":53") }
	switch tr {
	case "udp":
		pc, err := n.ListenPacket(fmt.Sprintf("%s:%d", host, 5353))
		if err != nil {
			return nil, err
		}
		u := dnstransport.NewUDPClient(pc, netsim.Addr(ProxyHost+":53"))
		u.Timeout = s.UDPAttemptTimeout
		u.Retries = s.UDPRetries
		u.Fallback = dnstransport.NewTCPClient(dial53)
		return u, nil
	case "tcp":
		return dnstransport.NewTCPClient(dial53), nil
	case "dot":
		return dnstransport.NewDoTClient(func(ctx context.Context) (net.Conn, error) {
			return n.DialContext(ctx, host, ProxyHost+":853")
		}, chain.ClientConfig(ProxyHost)), nil
	case "doh":
		return &dnstransport.DoHClient{
			Dial:       func(ctx context.Context) (net.Conn, error) { return n.DialContext(ctx, host, ProxyHost+":443") },
			TLS:        chain.ClientConfig(ProxyHost),
			Mode:       dnstransport.ModeH2,
			Persistent: true,
		}, nil
	}
	return nil, fmt.Errorf("unknown transport %q", tr)
}

// Render formats the result as the comparison table the paper's figures
// distil: one row per transport, latency quantiles, wire bytes, failures.
func Render(r *Result) string {
	var sb strings.Builder
	label := r.Profile.Name
	if label == "" {
		label = "ideal"
	}
	fmt.Fprintf(&sb, "scenario: %d clients × %s arrivals, %d queries/transport, profile %s, policy %s, seed %d\n",
		r.Scenario.Clients, r.Scenario.Arrival, r.Scenario.Queries, label, r.Steering.Policy, r.Scenario.Seed)
	if r.Profile.Name != "" {
		fmt.Fprintf(&sb, "access link: %s\n", r.Profile)
	}
	fmt.Fprintf(&sb, "\n%-6s %8s %8s %8s %8s | %9s %9s %9s | %11s %8s\n",
		"proto", "queries", "fail", "rexmit", "tc-tcp", "p50", "p95", "p99", "bytes", "qps")
	for _, t := range r.PerTransport {
		fmt.Fprintf(&sb, "%-6s %8d %8d %8d %8d | %7.1fms %7.1fms %7.1fms | %11d %8.0f\n",
			t.Transport, t.Queries, t.Failures, t.UDPRetransmits, t.TCFallbacks,
			t.P50Ms, t.P95Ms, t.P99Ms, t.BytesSent+t.BytesReceived, t.QPS)
	}
	cs := r.Cache
	total := cs.Hits + cs.StaleHits + cs.Misses + cs.Coalesced
	ratio := 0.0
	if total > 0 {
		ratio = float64(cs.Hits+cs.StaleHits) / float64(total) * 100
	}
	if a := r.Attack; a != nil {
		fmt.Fprintf(&sb, "\nattack: %d flooders, %d queries → %d answered / %d refused / %d tc-slipped / %d dropped\n",
			a.Attackers, a.Queries, a.Answered, a.Refused, a.Truncated, a.Dropped)
	}
	if g := r.Guard; g != nil {
		fmt.Fprintf(&sb, "guard: %d allowed / %d dropped / %d slipped / %d refused (%d breaker), %d cookies issued, %d validated\n",
			g.Allowed, g.Drops, g.Slips, g.Refusals, g.BreakerRefusals, g.CookiesIssued, g.CookiesValidated)
	}
	if d := r.Dialer; d != nil {
		fmt.Fprintf(&sb, "dialer: %.0fms stagger", d.StaggerMs)
		for _, h := range d.Hosts {
			w := h.Winner
			if w == "" {
				w = "none"
			}
			fmt.Fprintf(&sb, "; %s→%s", h.Host, w)
		}
		sb.WriteString("\n")
	}
	if b := r.Bootstrap; b != nil {
		fmt.Fprintf(&sb, "bootstrap: %d sweeps", b.Sweeps)
		for _, v := range b.Verdicts {
			state := "dead"
			if v.OK {
				state = fmt.Sprintf("%.1fms", v.RTTMs)
			}
			fmt.Fprintf(&sb, "; %s/%s %s", v.Upstream, v.Proto, state)
		}
		sb.WriteString("\n")
	}
	if t := r.Trace; t != nil {
		fmt.Fprintf(&sb, "trace: %d offered, kept %d errored / %d slow / %d baseline, %d ring-dropped\n",
			t.Offered, t.KeptErrored, t.KeptSlow, t.KeptBaseline, t.RingDropped)
		for _, v := range r.SlowTraces {
			fmt.Fprintf(&sb, "slowest: %-4s %-24s %7.1fms verdict=%s", v.Proto, v.QName, v.DurationMs, v.Verdict)
			for _, sp := range v.Spans {
				fmt.Fprintf(&sb, " %s=%.1fms", sp.Phase, sp.DurMs)
			}
			sb.WriteString("\n")
		}
	}
	fmt.Fprintf(&sb, "\nproxy: %d hits / %d stale / %d misses / %d coalesced (%.1f%% hit rate)",
		cs.Hits, cs.StaleHits, cs.Misses, cs.Coalesced, ratio)
	if r.Server != nil {
		fmt.Fprintf(&sb, "; upstream %d exchanges, %d B up, %d B down\n",
			r.Server.PoolExchanges, r.Server.UpstreamBytesSent, r.Server.UpstreamBytesReceived)
	} else {
		sb.WriteString("\n")
	}
	return sb.String()
}

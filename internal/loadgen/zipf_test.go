package loadgen

import (
	"context"
	"math/rand"
	"testing"

	"dohcost/internal/dnscache"
	"dohcost/internal/dnswire"
)

func TestZipfSampler(t *testing.T) {
	z := NewZipf(1_000_000, 1.0)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	headDraws, head := 0, z.N()/100
	for i := 0; i < 100_000; i++ {
		ra, rb := z.Rank(a), z.Rank(b)
		if ra != rb {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, ra, rb)
		}
		if ra < 1 || ra > z.N() {
			t.Fatalf("rank %d outside [1, %d]", ra, z.N())
		}
		if ra <= head {
			headDraws++
		}
	}
	// s=1.0 over 1M names puts ~2/3 of the mass on the top 1% of ranks —
	// the skew the admission filter exists for. Assert well below the
	// analytic value so the test pins the shape, not sampling noise.
	if frac := float64(headDraws) / 100_000; frac < 0.5 {
		t.Errorf("top 1%% of ranks drew %.1f%% of queries, want > 50%% (distribution not heavy-tailed)", 100*frac)
	}
	if ZipfName(42) != ZipfName(42) || ZipfName(1) == ZipfName(2) {
		t.Error("ZipfName is not a stable injective rank mapping")
	}
	if NewZipf(0, -1).Rank(a) != 1 {
		t.Error("degenerate sampler must pin rank 1")
	}
}

// zipfUpstream answers every A query positively with a long TTL, so cache
// hit rate in the Zipf regression below is decided purely by capacity and
// admission, never by expiry.
type zipfUpstream struct{}

func (zipfUpstream) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	r := q.Reply()
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 86400,
		Data: &dnswire.TXT{Strings: []string{"zipf"}},
	})
	return r, nil
}

func (zipfUpstream) Close() error { return nil }

// TestZipfTinyLFUBeatsLRU is the paper-scale regression for the admission
// filter: the same Zipf(s=1.0) name stream over a million-name universe,
// the same byte budget, and the hit rate with TinyLFU admission must beat
// plain LRU by a recorded margin. The stream is seeded, so the two runs
// see the identical query sequence.
func TestZipfTinyLFUBeatsLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("million-name Zipf replay skipped in -short")
	}
	const (
		universe = 1_200_000
		queries  = 400_000
		budget   = 2 << 20
	)
	run := func(opts ...dnscache.Option) float64 {
		c := dnscache.New(zipfUpstream{}, append([]dnscache.Option{
			dnscache.WithMemoryBudget(budget),
			dnscache.WithShards(8),
		}, opts...)...)
		defer c.Close()
		z := NewZipf(universe, 1.0)
		rng := rand.New(rand.NewSource(99))
		ctx := context.Background()
		for i := 0; i < queries; i++ {
			if _, err := c.Exchange(ctx, dnswire.NewQuery(uint16(i), ZipfName(z.Rank(rng)), dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		}
		s := c.Stats()
		if s.BytesLive > budget {
			t.Fatalf("live bytes %d exceed the %d budget", s.BytesLive, budget)
		}
		return float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	lru := run()
	tlfu := run(dnscache.WithTinyLFU())
	t.Logf("hit rate over %d Zipf queries at %d B: lru %.4f, tinylfu %.4f", queries, budget, lru, tlfu)
	// Measured on this workload across sketch seeds: LRU 0.528, TinyLFU
	// 0.569–0.573 — a stable gap of +0.041 to +0.045. Assert well under
	// the observed minimum so the regression fails only on real policy
	// breakage, not run-to-run hash-seed noise.
	const margin = 0.03
	if tlfu < lru+margin {
		t.Errorf("TinyLFU hit rate %.4f does not beat LRU %.4f by %.2f", tlfu, lru, margin)
	}
}

// TestScenarioZipfSmoke runs the full harness — clients, netsim links,
// proxy — in Zipf mode with a byte-budgeted TinyLFU cache and checks the
// knobs actually reached the cache: a shared heavy-tailed name stream
// (hits despite a huge universe) and admission activity.
func TestScenarioZipfSmoke(t *testing.T) {
	res, err := Run(Scenario{
		Transports:     []string{"udp", "doh"},
		Clients:        4,
		Queries:        400,
		Seed:           11,
		ZipfNames:      200_000,
		CacheBudget:    16 << 10,
		CacheAdmission: "tinylfu",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits == 0 {
		t.Error("no cache hits: Zipf head names should repeat across clients")
	}
	if res.Cache.Misses == 0 {
		t.Error("no cache misses over a 200k-name universe")
	}
	if res.Cache.AdmissionRejects == 0 {
		t.Error("no admission rejects: the Zipf tail should overflow a 16 KiB budget")
	}
	if res.Cache.BytesLive == 0 || res.Cache.BytesLive > 16<<10 {
		t.Errorf("bytes live = %d, want within (0, 16384]", res.Cache.BytesLive)
	}
}

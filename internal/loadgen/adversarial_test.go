package loadgen

import (
	"testing"
	"time"

	"dohcost/internal/guard"
)

// adversarialBase is the shared shape of the abuse scenario: 9 honest
// clients on a Zipf workload over UDP — so when one flooder joins, the
// population is 90% honest / 10% adversarial. Honest clients pace
// themselves with a small think time, keeping each one far below the
// guard's per-client rate; every flooder query is a unique random
// subdomain, so everything a flooder slips past the rate limit is a
// cache miss aimed at the upstream.
func adversarialBase() Scenario {
	return Scenario{
		Transports: []string{"udp"},
		Clients:    9,
		Queries:    45 * 9,
		ZipfNames:  64,
		Seed:       1109,
		Think:      3 * time.Millisecond,
		AttackQPS:  5000,
	}
}

// adversarialGuard tunes the guard so the scenario separates cleanly:
// honest clients (≤ ~300 qps each, thanks to Think) never approach the
// 2000 qps limit, while the 4000 qps flooder drains the small burst in
// ~25ms and then lives under RRL; the flood fraction the limiter still
// admits is all misses and trips the per-client breaker within ~70
// queries.
func adversarialGuard() *guard.Config {
	return &guard.Config{
		ClientQPS:       2000,
		Burst:           50,
		SlipEvery:       2,
		MissRate:        25,
		MissHalfLife:    time.Second,
		MaxInflightMiss: 256,
		CookieSecret:    0xadbeef,
	}
}

// TestAdversarialFloodGuarded is the abuse-resilience acceptance
// scenario: 90% honest Zipf clients + 10% random-subdomain flooders
// against the guarded proxy. Honest latency must stay within 2x of the
// no-attack baseline, honest queries must not fail, and the flood must
// be disposed of by the guard — silent drops, TC=1 slips, and breaker
// REFUSED — rather than answered. The unguarded comparison lives in
// TestAdversarialFloodUnguarded.
func TestAdversarialFloodGuarded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run adversarial scenario under -short")
	}
	base := adversarialBase()
	base.Guard = adversarialGuard()
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	attacked := base
	attacked.Attackers = 1
	res, err := Run(attacked)
	if err != nil {
		t.Fatal(err)
	}

	honest := res.PerTransport[0]
	if honest.Queries != uint64(base.Queries) {
		t.Fatalf("honest population completed %d queries, want %d", honest.Queries, base.Queries)
	}
	if honest.Failures != 0 {
		t.Errorf("honest clients saw %d failures under attack; the guard must not harm them", honest.Failures)
	}

	// The fairness claim: honest p99 under attack stays within 2x of the
	// no-attack baseline. The absolute floor keeps sub-millisecond
	// baselines from turning scheduler noise on a loaded runner into a
	// flaky 2x violation.
	basep99 := baseline.PerTransport[0].P99Ms
	limit := 2 * basep99
	if floor := basep99 + 10; limit < floor {
		limit = floor
	}
	if honest.P99Ms > limit {
		t.Errorf("honest p99 under attack = %.2fms, want ≤ %.2fms (2x no-attack baseline %.2fms)",
			honest.P99Ms, limit, basep99)
	}

	a := res.Attack
	if a == nil || a.Queries == 0 {
		t.Fatalf("attack harvest missing: %+v", a)
	}
	// The flood's disposition: every guard verdict must appear. Dropped
	// is the silently rate-limited majority, Truncated the TC=1 slips
	// (every SlipEvery-th limited response), Refused the breaker's
	// answer to admitted cache-busting misses.
	if a.Dropped == 0 {
		t.Errorf("flood saw no silent drops: %+v", a)
	}
	if a.Truncated == 0 {
		t.Errorf("flood saw no TC=1 slips: %+v", a)
	}
	if a.Refused == 0 {
		t.Errorf("flood saw no breaker REFUSED: %+v", a)
	}
	if a.Answered > a.Queries/5 {
		t.Errorf("flood got %d/%d answered — guard let more than 20%% through", a.Answered, a.Queries)
	}

	g := res.Guard
	if g == nil {
		t.Fatal("guarded run returned no guard report")
	}
	if g.Drops == 0 || g.Slips == 0 || g.BreakerRefusals == 0 {
		t.Errorf("guard report missing verdicts: %+v", g)
	}
	// The guard's own counters and the proxy telemetry snapshot are two
	// views of the same decisions and must agree.
	if res.Server.GuardDrops != g.Drops || res.Server.GuardSlips != g.Slips ||
		res.Server.GuardBreakerRefusals != g.BreakerRefusals {
		t.Errorf("telemetry disagrees with guard report: server drops/slips/breaker %d/%d/%d vs %d/%d/%d",
			res.Server.GuardDrops, res.Server.GuardSlips, res.Server.GuardBreakerRefusals,
			g.Drops, g.Slips, g.BreakerRefusals)
	}

	t.Logf("no-attack p99 %.2fms; under attack p99 %.2fms (limit %.2fms)", basep99, honest.P99Ms, limit)
	t.Logf("flood: %d queries → %d answered / %d refused / %d tc / %d dropped",
		a.Queries, a.Answered, a.Refused, a.Truncated, a.Dropped)
}

// TestAdversarialFloodUnguarded documents the comparison the guarded
// scenario is measured against: the same 90/10 population with no guard.
// Without RRL or a breaker nothing refuses or truncates the flood — every
// flooder query that survives the upstream path gets a real answer, and
// the upstream does the work.
func TestAdversarialFloodUnguarded(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial scenario under -short")
	}
	s := adversarialBase()
	s.Attackers = 1
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guard != nil {
		t.Fatalf("unguarded run produced a guard report: %+v", res.Guard)
	}
	a := res.Attack
	if a == nil || a.Queries == 0 {
		t.Fatalf("attack harvest missing: %+v", a)
	}
	if a.Refused != 0 || a.Truncated != 0 {
		t.Errorf("unguarded proxy refused/truncated the flood (%d/%d) — nothing should", a.Refused, a.Truncated)
	}
	if a.Answered == 0 {
		t.Errorf("unguarded proxy answered none of the flood: %+v", a)
	}
	if misses := uint64(res.Cache.Misses); misses < a.Answered {
		t.Errorf("cache misses %d < answered flood %d: the flood must be all misses", misses, a.Answered)
	}
	t.Logf("unguarded flood: %d queries → %d answered / %d dropped; honest p99 %.2fms; upstream exchanges %d",
		a.Queries, a.Answered, a.Dropped, res.PerTransport[0].P99Ms, res.Server.PoolExchanges)
}

package dnsserver

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
	"dohcost/internal/udpio"
)

// listenLoopback binds an ephemeral real UDP socket (the batch path
// exists for real sockets; netsim conns exercise the fallback elsewhere).
func listenLoopback(t *testing.T) net.PacketConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc
}

// collectResponses sends one query per entry of queries to addr and reads
// until every ID has answered, returning raw response bytes keyed by ID.
// Lost datagrams are re-sent: UDP gives no delivery guarantee even on
// loopback under buffer pressure.
func collectResponses(t *testing.T, addr string, queries map[uint16][]byte) map[uint16][]byte {
	t.Helper()
	c, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(map[uint16][]byte, len(queries))
	buf := make([]byte, 65535)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(queries) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d responses", len(got), len(queries))
		}
		for id, q := range queries {
			if _, ok := got[id]; !ok {
				if _, err := c.Write(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		for {
			n, err := c.Read(buf)
			if err != nil {
				break // retry window over; resend what's missing
			}
			if n < 12 {
				t.Fatalf("short response: %d bytes", n)
			}
			id := uint16(buf[0])<<8 | uint16(buf[1])
			if _, known := queries[id]; !known {
				t.Fatalf("response for unknown ID %#x", id)
			}
			if _, dup := got[id]; !dup {
				got[id] = append([]byte(nil), buf[:n]...)
			}
		}
	}
	return got
}

// TestBatchEquivalence drives the same query stream through the
// per-packet Serve loop and the batched ServeBatch loop and requires
// byte-identical responses — the contract that lets the batch path be a
// pure performance change. The stream mixes fast-path hits with queries
// the wire responder declines, so both the batched flush and the
// worker-pool peel-off are covered.
func TestBatchEquivalence(t *testing.T) {
	stub := newWireStub(t, "fast.example.")

	pcA := listenLoopback(t)
	srvA := &UDPServer{Handler: stub}
	go srvA.Serve(pcA)

	pcB := listenLoopback(t)
	srvB := &UDPServer{Handler: stub}
	go srvB.ServeBatch([]udpio.BatchConn{udpio.Wrap(pcB)}, 16)

	queries := make(map[uint16][]byte)
	for i := 0; i < 64; i++ {
		id := uint16(i + 1)
		name := "fast.example."
		if i%3 == 0 {
			name = fmt.Sprintf("slow%d.example.", i)
		}
		wire, err := dnswire.NewQuery(id, dnswire.Name(name), dnswire.TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		queries[id] = wire
	}

	gotA := collectResponses(t, pcA.LocalAddr().String(), queries)
	gotB := collectResponses(t, pcB.LocalAddr().String(), queries)
	for id := range queries {
		if !bytes.Equal(gotA[id], gotB[id]) {
			t.Errorf("ID %#x: per-packet and batch responses differ:\n per-packet %x\n batch      %x",
				id, gotA[id], gotB[id])
		}
	}
	if stub.fastServed.Load() == 0 || stub.msgServed.Load() == 0 {
		t.Fatalf("stream did not cover both paths: fast=%d msg=%d",
			stub.fastServed.Load(), stub.msgServed.Load())
	}
}

// TestBatchShardedHotName hammers one cached name through SO_REUSEPORT
// shards from concurrent clients — the -race workout for the sharded
// fast path's reused read/write vectors — and checks the shard counters
// account for the traffic.
func TestBatchShardedHotName(t *testing.T) {
	stub := newWireStub(t, "hot.example.")
	conns, err := udpio.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	srv := &UDPServer{Handler: stub, Telemetry: tel}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeBatch(conns, 32) }()
	addr := conns[0].LocalAddr().String()

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := make(map[uint16][]byte, perClient)
			for i := 0; i < perClient; i++ {
				id := uint16(g*perClient + i + 1)
				wire, err := dnswire.NewQuery(id, "hot.example.", dnswire.TypeA).Pack()
				if err != nil {
					errs <- err
					return
				}
				queries[id] = wire
			}
			for id, raw := range collectResponses(t, addr, queries) {
				var m dnswire.Message
				if err := m.Unpack(raw); err != nil {
					errs <- fmt.Errorf("client %d: bad response: %w", g, err)
					return
				}
				if m.ID != id || len(m.Answers) != 1 || m.Answers[0].TTL != 42 {
					errs <- fmt.Errorf("client %d ID %#x: wrong response %s", g, id, &m)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := srv.ShardStats()
	if len(stats) != len(conns) {
		t.Fatalf("ShardStats returned %d shards, want %d", len(stats), len(conns))
	}
	var hits, datagrams uint64
	for _, st := range stats {
		hits += st.FastHits
		datagrams += st.Datagrams
	}
	if hits < clients*perClient {
		t.Errorf("shards served %d fast hits, want >= %d", hits, clients*perClient)
	}
	if datagrams < hits {
		t.Errorf("shards read %d datagrams but served %d hits", datagrams, hits)
	}
	if s := tel.Snapshot(); s.UDPBatchReads == 0 || s.UDPBatchDatagrams < uint64(clients*perClient) {
		t.Errorf("batch telemetry reads=%d datagrams=%d, want nonzero/>=%d",
			s.UDPBatchReads, s.UDPBatchDatagrams, clients*perClient)
	}

	for _, c := range conns {
		c.Close()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBatch did not return after conns closed")
	}
}

// TestSpillBounded pins the satellite contract on the shared worker
// pool: when every worker and the queue are saturated, overflow goes to
// at most MaxSpill transient goroutines (counted in telemetry) and the
// reader then blocks — concurrency never exceeds Workers+MaxSpill.
func TestSpillBounded(t *testing.T) {
	const workers, maxSpill = 2, 2
	var inflight, peak atomic.Int64
	release := make(chan struct{})
	handler := HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		r := q.Reply()
		r.Answers = append(r.Answers, dnswire.ResourceRecord{
			Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 1,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.9")},
		})
		return r, nil
	})
	tel := telemetry.New()
	pc := listenLoopback(t)
	srv := &UDPServer{Handler: handler, Readers: 1, Workers: workers, MaxSpill: maxSpill, Telemetry: tel}
	go srv.Serve(pc)

	c, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const total = 16
	for i := 0; i < total; i++ {
		wire, err := dnswire.NewQuery(uint16(i+1), "blocked.example.", dnswire.TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(wire); err != nil {
			t.Fatal(err)
		}
	}

	// With 1 reader, 2 workers, queue cap 2 and spill budget 2, the pool
	// must reach exactly maxSpill spills while saturated and then hold
	// the reader (more spills may follow once handlers unblock and slots
	// recycle — the budget bounds concurrency, not the lifetime count).
	waitFor(t, func() bool { return tel.Snapshot().UDPSpills >= maxSpill })
	if got := tel.Snapshot().UDPSpills; got != maxSpill {
		t.Errorf("spills while saturated = %d, want exactly %d (budget exhausted, then backpressure)", got, maxSpill)
	}
	close(release)
	waitFor(t, func() bool { return tel.Snapshot().Queries["udp"] == total })

	if p := peak.Load(); p > workers+maxSpill {
		t.Errorf("peak handler concurrency %d exceeds workers+maxSpill = %d", p, workers+maxSpill)
	}
}

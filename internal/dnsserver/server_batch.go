package dnsserver

// Kernel-assisted batched UDP serving. ServeBatch is the sharded
// counterpart of UDPServer.Serve: one goroutine per SO_REUSEPORT shard
// socket pulls up to a batch of datagrams in a single recvmmsg, answers
// every cache hit into a per-shard response vector, and flushes the
// vector in a single sendmmsg — so under load the syscall cost of the
// fast path is amortized over tens of datagrams. Misses and unparseable
// packets peel off to the same bounded worker pool Serve uses.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
	"dohcost/internal/udpio"
)

// DefaultBatch is the read/write vector size ServeBatch uses when the
// caller passes batch<=0 — large enough to amortize syscalls under load,
// small enough that a batch of maximum-size messages stays cache-warm.
const DefaultBatch = 32

// shardCounters is one shard socket's serving counters, written by its
// serve goroutine and read concurrently by ShardStats.
type shardCounters struct {
	reads        atomic.Uint64
	datagrams    atomic.Uint64
	fastHits     atomic.Uint64
	slowPath     atomic.Uint64
	guardDropped atomic.Uint64
	spills       atomic.Uint64
	flushes      atomic.Uint64
	flushed      atomic.Uint64
}

// UDPShardStats is a point-in-time snapshot of one shard socket's
// counters, exported in /debug/cost.
type UDPShardStats struct {
	// Shard is the socket's index in the listen vector.
	Shard int `json:"shard"`
	// Reads counts batched read syscalls; Datagrams the datagrams they
	// returned — their ratio is this shard's datagrams per syscall.
	Reads     uint64 `json:"reads"`
	Datagrams uint64 `json:"datagrams"`
	// FastHits were answered inline from the batch loop; SlowPath were
	// handed to the worker pool (cache miss, unparseable, or a shape the
	// wire path declines); GuardDropped were consumed by the abuse guard
	// before reaching either (silently dropped or answered with a minimal
	// TC=1 slip). Every read datagram lands in exactly one of the three,
	// so Datagrams == FastHits + SlowPath + GuardDropped — guard-limited
	// datagrams still count in the batch-size histogram, which samples at
	// read time, consistent with the per-packet path.
	FastHits     uint64 `json:"fast_hits"`
	SlowPath     uint64 `json:"slow_path"`
	GuardDropped uint64 `json:"guard_dropped"`
	// Spills counts slow-path packets that overflowed the worker queue
	// into bounded transient goroutines.
	Spills uint64 `json:"spills"`
	// Flushes counts batched write syscalls; FlushedDatagrams the
	// responses they carried.
	Flushes          uint64 `json:"flushes"`
	FlushedDatagrams uint64 `json:"flushed_datagrams"`
}

// ShardStats snapshots the per-shard counters of a running (or finished)
// ServeBatch; nil before ServeBatch installs them.
func (s *UDPServer) ShardStats() []UDPShardStats {
	scs := s.shardStats.Load()
	if scs == nil {
		return nil
	}
	out := make([]UDPShardStats, len(*scs))
	for i := range *scs {
		sc := &(*scs)[i]
		out[i] = UDPShardStats{
			Shard:            i,
			Reads:            sc.reads.Load(),
			Datagrams:        sc.datagrams.Load(),
			FastHits:         sc.fastHits.Load(),
			SlowPath:         sc.slowPath.Load(),
			GuardDropped:     sc.guardDropped.Load(),
			Spills:           sc.spills.Load(),
			Flushes:          sc.flushes.Load(),
			FlushedDatagrams: sc.flushed.Load(),
		}
	}
	return out
}

// ServeBatch serves conns until they close, one batch loop per shard
// socket, sharing a single worker pool for the slow path. batch<=0 means
// DefaultBatch; values above udpio.MaxBatch are clamped. Like Serve, the
// first persistent socket error shuts every shard down and is returned.
func (s *UDPServer) ServeBatch(conns []udpio.BatchConn, batch int) error {
	if len(conns) == 0 {
		return errors.New("dnsserver: ServeBatch needs at least one conn")
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	if batch > udpio.MaxBatch {
		batch = udpio.MaxBatch
	}
	base := s.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	workers, maxSpill := s.poolSizes()
	pool := s.startWorkers(ctx, workers, maxSpill)

	scs := make([]shardCounters, len(conns))
	s.shardStats.Store(&scs)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i, c := range conns {
		wg.Add(1)
		go func(c udpio.BatchConn, sc *shardCounters) {
			defer wg.Done()
			if err := s.serveShard(c, batch, pool, sc); err != nil {
				errOnce.Do(func() {
					firstErr = err
					for _, cc := range conns {
						cc.Close()
					}
				})
			}
		}(c, &scs[i])
	}
	wg.Wait()
	// Shards are done: cancel in-flight handler contexts before draining
	// the workers so shutdown is never held hostage by a slow upstream.
	cancel()
	pool.stop()
	return firstErr
}

// batchVec is one shard's reusable read and write state: every slot of
// the read vector owns a pooled buffer (swapped out, never copied, when a
// packet is handed to the worker pool), and every slot of the write
// vector owns a pooled buffer responses are packed into.
type batchVec struct {
	ms    []udpio.Message
	bufs  []*[]byte
	out   []udpio.Message
	obufs []*[]byte
	txs   []*telemetry.Transaction
}

func newBatchVec(batch int) *batchVec {
	v := &batchVec{
		ms:    make([]udpio.Message, batch),
		bufs:  make([]*[]byte, batch),
		out:   make([]udpio.Message, batch),
		obufs: make([]*[]byte, batch),
		txs:   make([]*telemetry.Transaction, 0, batch),
	}
	for i := 0; i < batch; i++ {
		v.bufs[i] = getBuf()
		v.ms[i].Buf = *v.bufs[i]
		v.obufs[i] = getBuf()
	}
	return v
}

// release returns every pooled buffer.
func (v *batchVec) release() {
	for i := range v.bufs {
		putBuf(v.bufs[i])
		putBuf(v.obufs[i])
	}
}

// serveShard runs one socket's read→answer→flush loop until the conn
// closes or persistently errors.
func (s *UDPServer) serveShard(c udpio.BatchConn, batch int, pool *workPool, sc *shardCounters) error {
	wr, fast := s.Handler.(WireResponder)
	v := newBatchVec(batch)
	defer v.release()
	consecutive := 0
	for {
		n, err := c.ReadBatch(v.ms)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Same transient-error policy as Serve's readers: retry with
			// a pause, give up only when the socket looks persistently
			// broken.
			consecutive++
			if consecutive >= maxReadRetries {
				return err
			}
			time.Sleep(readRetryPause)
			continue
		}
		consecutive = 0
		s.Telemetry.ObserveUDPBatch(n)
		sc.reads.Add(1)
		sc.datagrams.Add(uint64(n))
		tracing := s.Telemetry.Tracing()

		// Answer the batch: fast-path hits pack into the write vector,
		// everything else peels off to the worker pool.
		nw := 0
		v.txs = v.txs[:0]
		for i := 0; i < n; i++ {
			pkt := v.ms[i].Buf[:v.ms[i].N]
			if s.Guard != nil {
				gkey := guard.ClientKey(v.ms[i].Addr)
				switch s.Guard.CheckUDP(gkey, pkt) {
				case guard.ActionDrop:
					sc.guardDropped.Add(1)
					continue
				case guard.ActionSlip:
					// The slip rides the batch's write vector like a fast
					// hit, with a nil transaction slot (guard decisions are
					// counted in guard metrics, not as served queries).
					if resp, ok := s.Guard.AppendLimited((*v.obufs[nw])[:0], pkt, gkey, guard.ActionSlip); ok {
						if len(resp) > 0 && &resp[0] != &(*v.obufs[nw])[0] {
							resp = append((*v.obufs[nw])[:0], resp...)
						}
						v.out[nw] = udpio.Message{Buf: *v.obufs[nw], N: len(resp), Addr: v.ms[i].Addr}
						nw++
						v.txs = append(v.txs, nil)
					}
					sc.guardDropped.Add(1)
					continue
				}
			}
			if fast {
				var tParse time.Time
				if tracing {
					tParse = time.Now()
				}
				if q, ok := dnswire.ParseQuery(pkt); ok {
					tx := s.Telemetry.Begin(telemetry.ProtoUDP)
					if tx.Traced() {
						tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
						tx.TraceQuery(&q)
					}
					tc := tx.TraceStart()
					dst := (*v.obufs[nw])[:0]
					if resp, handled := wr.ServeDNSWire(tx, &q, dst, s.udpLimit(q.HasEDNS, q.UDPSize)); handled {
						tx.TraceSpan(qtrace.PhaseCache, tc)
						if len(resp) > 0 && &resp[0] != &(*v.obufs[nw])[0] {
							// The responder reallocated (or returned its
							// own storage); fold the bytes back into the
							// pooled slot — a UDP response always fits.
							resp = append((*v.obufs[nw])[:0], resp...)
						}
						// Responses flush before the next ReadBatch, so
						// sharing the read vector's Addr is safe.
						v.out[nw] = udpio.Message{Buf: *v.obufs[nw], N: len(resp), Addr: v.ms[i].Addr}
						nw++
						v.txs = append(v.txs, tx)
						sc.fastHits.Add(1)
						continue
					}
					s.batchHandoff(c, v, i, tx, pool, sc)
					continue
				}
			}
			s.batchHandoff(c, v, i, nil, pool, sc)
		}

		// One sendmmsg for the whole batch of hits. A write error is not
		// fatal to the shard (the kernel can refuse one destination);
		// the affected clients retry, like any dropped datagram.
		if nw > 0 {
			// Traced hits share the flush interval: every response in the
			// vector left in the same sendmmsg, so each transaction's write
			// span is the batched syscall itself.
			var tFlush time.Time
			if tracing {
				tFlush = time.Now()
			}
			c.WriteBatch(v.out[:nw])
			sc.flushes.Add(1)
			sc.flushed.Add(uint64(nw))
			var flushEnd time.Time
			if tracing {
				flushEnd = time.Now()
			}
			for _, tx := range v.txs {
				tx.TraceSpanBetween(qtrace.PhaseWrite, tFlush, flushEnd)
				tx.SetVerdict(telemetry.VerdictOK)
				tx.Finish()
			}
		}
	}
}

// batchHandoff hands read-vector slot i to the worker pool: the slot's
// pooled buffer travels with the packet and a fresh one takes its place,
// and the source address is cloned out of the reusable vector. tx is the
// transaction a declined fast-path attempt already began, or nil.
func (s *UDPServer) batchHandoff(c udpio.BatchConn, v *batchVec, i int, tx *telemetry.Transaction, pool *workPool, sc *shardCounters) {
	sc.slowPath.Add(1)
	pb := v.bufs[i]
	n := v.ms[i].N
	from := udpio.CloneAddr(v.ms[i].Addr)
	v.bufs[i] = getBuf()
	v.ms[i].Buf = *v.bufs[i]
	if pool.dispatch(packet{buf: pb, n: n, from: from, w: c, tx: tx, msgOnly: true}) {
		sc.spills.Add(1)
	}
}

package dnsserver

import (
	"bytes"
	"context"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// wireStub is a Handler+WireResponder whose fast path serves a canned
// packed response (for one magic name) and declines everything else,
// counting which path each query took.
type wireStub struct {
	resp        []byte // served by the fast path for fastName
	fastName    dnswire.Name
	fastServed  atomic.Int64
	msgServed   atomic.Int64
	lastOutcome telemetry.CacheOutcome
}

func (s *wireStub) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	s.msgServed.Add(1)
	r := q.Reply()
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.200")},
	})
	return r, nil
}

func (s *wireStub) ServeDNSWire(tx *telemetry.Transaction, q *dnswire.Query, dst []byte, limit int) ([]byte, bool) {
	name := dnswire.Name(q.AppendCanonicalName(nil))
	if name != s.fastName || (limit > 0 && len(s.resp) > limit) {
		return nil, false
	}
	s.fastServed.Add(1)
	out := append(dst, s.resp...)
	dnswire.PatchID(out, q.ID)
	tx.SetCache(telemetry.CacheHit)
	return out, true
}

func newWireStub(t *testing.T, fastName dnswire.Name) *wireStub {
	t.Helper()
	m := &dnswire.Message{
		ID: 0xAAAA, Response: true, RecursionAvailable: true,
		Questions: []dnswire.Question{{Name: fastName, Type: dnswire.TypeA, Class: dnswire.ClassINET}},
		Answers: []dnswire.ResourceRecord{{
			Name: fastName, Class: dnswire.ClassINET, TTL: 42,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.100")},
		}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return &wireStub{resp: wire, fastName: fastName}
}

func TestUDPServerWireFastPath(t *testing.T) {
	n := netsim.New(3)
	pc, err := n.ListenPacket("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	stub := newWireStub(t, "fast.example.")
	tel := telemetry.New()
	srv := &UDPServer{Handler: stub, Telemetry: tel}
	go srv.Serve(pc)
	cli, err := n.ListenPacket("cli:5353")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	// A fast-served name comes back as the stub's canned bytes with the
	// client's ID patched in — the Message handler never runs.
	raw := exchangeRaw(t, cli, dnswire.NewQuery(0x0707, "fast.example.", dnswire.TypeA))
	want := append([]byte(nil), stub.resp...)
	dnswire.PatchID(want, 0x0707)
	if !bytes.Equal(raw, want) {
		t.Errorf("fast path bytes:\n got  %x\n want %x", raw, want)
	}
	if stub.fastServed.Load() != 1 || stub.msgServed.Load() != 0 {
		t.Errorf("served fast=%d msg=%d, want 1/0", stub.fastServed.Load(), stub.msgServed.Load())
	}

	// A declined name falls back to the Message path — and the transaction
	// begun for the fast attempt is reused, not double-counted.
	raw = exchangeRaw(t, cli, dnswire.NewQuery(0x0808, "slow.example.", dnswire.TypeA))
	var resp dnswire.Message
	if err := resp.Unpack(raw); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 0x0808 || len(resp.Answers) != 1 {
		t.Errorf("fallback response = %s", &resp)
	}
	if stub.msgServed.Load() != 1 {
		t.Errorf("message path served %d, want 1", stub.msgServed.Load())
	}
	waitFor(t, func() bool { return tel.Snapshot().Queries["udp"] == 2 })
	snap := tel.Snapshot()
	if snap.Queries["udp"] != 2 {
		t.Errorf("telemetry counted %d udp queries, want 2 (no double Begin)", snap.Queries["udp"])
	}
	if snap.Verdicts["ok"] != 2 {
		t.Errorf("verdicts = %+v, want 2 ok", snap.Verdicts)
	}
	if snap.CacheEvents["hit"] != 1 {
		t.Errorf("cache events = %+v, want 1 hit from the fast path", snap.CacheEvents)
	}
}

func TestStreamServerWireFastPath(t *testing.T) {
	n := netsim.New(4)
	l, err := n.Listen("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	stub := newWireStub(t, "fast.example.")
	srv := &StreamServer{Handler: stub, OutOfOrder: true}
	go srv.Serve(l)

	conn, err := n.Dial("cli", "srv:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	send := func(q *dnswire.Message) {
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteStreamMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *dnswire.Message {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		wire, err := ReadStreamMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		var m dnswire.Message
		if err := m.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		return &m
	}

	send(dnswire.NewQuery(0x1111, "fast.example.", dnswire.TypeA))
	if m := recv(); m.ID != 0x1111 || m.Answers[0].TTL != 42 {
		t.Errorf("fast stream reply = %s", m)
	}
	send(dnswire.NewQuery(0x2222, "slow.example.", dnswire.TypeA))
	if m := recv(); m.ID != 0x2222 || len(m.Answers) != 1 {
		t.Errorf("fallback stream reply = %s", m)
	}
	if stub.fastServed.Load() != 1 || stub.msgServed.Load() != 1 {
		t.Errorf("served fast=%d msg=%d, want 1/1", stub.fastServed.Load(), stub.msgServed.Load())
	}
}

// TestUDPServeShutdownCancelsInFlight pins the worker-pool shutdown
// contract: closing the socket must cancel every in-flight handler's
// context and let Serve return promptly, never waiting out a query
// parked on a slow upstream.
func TestUDPServeShutdownCancelsInFlight(t *testing.T) {
	n := netsim.New(5)
	pc, err := n.ListenPacket("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	srv := &UDPServer{Handler: HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		started <- struct{}{}
		<-ctx.Done() // park until the serve loop cancels us
		return nil, ctx.Err()
	})}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(pc) }()

	cli, err := n.ListenPacket("cli:5353")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	wire, err := dnswire.NewQuery(1, "stuck.example.", dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteTo(wire, netsim.Addr("srv:53")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	pc.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve hung on an in-flight handler after close")
	}
}

// TestUDPServeGivesUpOnBrokenSocket pins the reader-loop error policy: a
// socket that fails every read (here: a permanently expired deadline)
// must make Serve return the error promptly — one reader gives up after
// its retry budget and closes the socket so its peers unblock — instead
// of limping forever at reduced read capacity.
func TestUDPServeGivesUpOnBrokenSocket(t *testing.T) {
	n := netsim.New(6)
	pc, err := n.ListenPacket("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	pc.SetReadDeadline(time.Unix(1, 0)) // every ReadFrom times out
	srv := &UDPServer{Handler: Static(netip.MustParseAddr("192.0.2.1"), 60)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(pc) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil for a persistently broken socket")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never gave up on a broken socket")
	}
}

// waitFor polls cond until it holds or a deadline passes — UDP telemetry
// finishes just after the response datagram leaves, so a reader can
// observe the reply marginally before the counters settle.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

package dnsserver

import (
	"context"
	"encoding/base64"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dohcost/internal/dnsjson"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/h1"
	"dohcost/internal/h2"
	"dohcost/internal/hpack"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
)

// MIME types a DoH endpoint may speak.
const (
	ContentTypeWire = "application/dns-message"
	ContentTypeJSON = dnsjson.ContentType
)

// Endpoint is one DoH URL path and the content types it accepts, modelling
// the per-provider diversity Table 1 documents (Google's /resolve speaks
// only JSON while /dns-query speaks only wireformat; Cloudflare serves both
// on one path; CleanBrowsing uses /doh/family-filter; and so on).
type Endpoint struct {
	Path string
	Wire bool // application/dns-message (RFC 8484)
	JSON bool // application/dns-json
}

// DefaultEndpoints is the RFC-style single wireformat endpoint.
var DefaultEndpoints = []Endpoint{{Path: "/dns-query", Wire: true}}

// DoH adapts a DNS Handler to HTTP, implementing both this repository's
// HTTP/1.1 and HTTP/2 server handler interfaces.
type DoH struct {
	Handler   Handler
	Endpoints []Endpoint
	// AltSvc, when non-empty, is attached to successful responses as an
	// Alt-Svc header; providers with HTTP/3 advertise QUIC this way, which
	// is what the landscape prober looks for.
	AltSvc string
	// Processing models the extra per-request latency of the HTTPS
	// frontend (TLS record handling, HTTP parsing, routing) relative to a
	// raw UDP socket — the "added overhead for encryption and transport"
	// the paper cites for DoH's slower resolution times. Zero for
	// controlled transport experiments.
	Processing time.Duration
	// Guard, when non-nil, rate-limits queries per client, keyed by the
	// identity the accept loop installed in the bound context (Bind);
	// over-limit queries get a DNS-level REFUSED in an HTTP 200, the way
	// RFC 8484 surfaces resolution errors. Unbound handlers (no identity
	// in context) are not limited.
	Guard *guard.Guard
	// Telemetry, when non-nil, receives one Transaction per decoded DNS
	// query (HTTP-level rejections — bad paths, bad encodings — are not
	// DNS transactions and are not counted).
	Telemetry *telemetry.Metrics
}

var (
	_ h2.Handler = (*DoH)(nil)
	_ h1.Handler = (*DoH)(nil)
)

// ServeH2 implements h2.Handler with a background context; servers that
// track connection lifetime use Bind instead.
func (d *DoH) ServeH2(req *h2.Request) *h2.Response {
	return d.serveH2(context.Background(), req)
}

// ServeH1 implements h1.Handler with a background context; servers that
// track connection lifetime use Bind instead.
func (d *DoH) ServeH1(req *h1.Request) *h1.Response {
	return d.serveH1(context.Background(), req)
}

// Bind derives per-connection HTTP handlers whose DNS queries inherit ctx.
// Server accept loops bind once per connection, cancelling ctx when the
// connection closes, so every in-flight handler learns its client is gone.
func (d *DoH) Bind(ctx context.Context) (h2.Handler, h1.Handler) {
	return h2.HandlerFunc(func(req *h2.Request) *h2.Response { return d.serveH2(ctx, req) }),
		h1.HandlerFunc(func(req *h1.Request) *h1.Response { return d.serveH1(ctx, req) })
}

func (d *DoH) serveH2(ctx context.Context, req *h2.Request) *h2.Response {
	var ct string
	for _, f := range req.Header {
		if f.Name == "content-type" {
			ct = f.Value
		}
	}
	status, respCT, body := d.serve(ctx, req.Method, req.Path, ct, req.Body)
	resp := &h2.Response{Status: status, Body: body}
	if respCT != "" {
		resp.Header = append(resp.Header, hpack.HeaderField{Name: "content-type", Value: respCT})
	}
	if d.AltSvc != "" && status == 200 {
		resp.Header = append(resp.Header, hpack.HeaderField{Name: "alt-svc", Value: d.AltSvc})
	}
	return resp
}

func (d *DoH) serveH1(ctx context.Context, req *h1.Request) *h1.Response {
	status, respCT, body := d.serve(ctx, req.Method, req.Path, req.Header.Get("Content-Type"), req.Body)
	resp := &h1.Response{Status: status, Body: body}
	if respCT != "" {
		resp.Header.Set("Content-Type", respCT)
	}
	if d.AltSvc != "" && status == 200 {
		resp.Header.Set("Alt-Svc", d.AltSvc)
	}
	return resp
}

// serve is the transport-independent DoH core: it routes by path, decodes
// the query per RFC 8484 (POST body or GET ?dns= base64url) or the JSON
// convention (GET ?name=&type=), runs the handler, and encodes the answer
// in the same representation.
func (d *DoH) serve(ctx context.Context, method, rawPath, contentType string, body []byte) (status int, respCT string, respBody []byte) {
	if d.Processing > 0 {
		if err := sleepCtx(ctx, d.Processing); err != nil {
			return 500, "", nil
		}
	}
	endpoints := d.Endpoints
	if endpoints == nil {
		endpoints = DefaultEndpoints
	}
	u, err := url.ParseRequestURI(rawPath)
	if err != nil {
		return 400, "", nil
	}
	var ep *Endpoint
	for i := range endpoints {
		if endpoints[i].Path == u.Path {
			ep = &endpoints[i]
			break
		}
	}
	if ep == nil {
		return 404, "", nil
	}

	values := u.Query()
	wantJSON := false
	var rawQ []byte
	var q *dnswire.Message
	switch method {
	case "POST":
		if contentType != ContentTypeWire || !ep.Wire {
			return 415, "", nil
		}
		rawQ = body
	case "GET":
		if dns := values.Get("dns"); dns != "" {
			if !ep.Wire {
				return 415, "", nil
			}
			raw, err := base64.RawURLEncoding.DecodeString(dns)
			if err != nil {
				return 400, "", nil
			}
			rawQ = raw
		} else if values.Get("name") != "" {
			if !ep.JSON {
				return 415, "", nil
			}
			wantJSON = true
			q, err = dnsjson.ParseQuery(values)
			if err != nil {
				return 400, "", nil
			}
		} else {
			return 400, "", nil
		}
	default:
		return 405, "", nil
	}

	if d.Guard != nil {
		if key, bound := guard.KeyFromContext(ctx); bound &&
			d.Guard.CheckStream(key) == guard.ActionRefuse {
			if rawQ != nil {
				if resp, ok := d.Guard.AppendLimited(nil, rawQ, key, guard.ActionRefuse); ok {
					return 200, ContentTypeWire, resp
				}
				return 400, "", nil
			}
			// JSON queries already parsed to a Message; refuse in kind.
			r := q.Reply()
			r.RCode = dnswire.RCodeRefused
			if out, err := dnsjson.Encode(r); err == nil {
				return 200, ContentTypeJSON, out
			}
			return 500, "", nil
		}
	}

	// The transaction spans decode → handler → DNS-payload encode; the
	// HTTP framing and socket write below this layer are not included
	// (UDP and stream servers include their single write syscall, a few
	// microseconds of skew at most).
	var tx *telemetry.Transaction
	if rawQ != nil {
		// Wire-format queries get the serving fast path when the handler
		// offers one: a cache hit's packed bytes become the HTTP body with
		// no Message in between. The body escapes into the HTTP response,
		// so it is appended to a fresh slice rather than a pooled buffer.
		if wr, ok := d.Handler.(WireResponder); ok {
			var tParse time.Time
			if d.Telemetry.Tracing() {
				tParse = time.Now()
			}
			if fq, ok := dnswire.ParseQuery(rawQ); ok {
				tx = d.Telemetry.Begin(telemetry.ProtoDoH)
				if tx.Traced() {
					tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
					tx.TraceQuery(&fq)
				}
				tc := tx.TraceStart()
				if out, handled := wr.ServeDNSWire(tx, &fq, nil, dnswire.MaxMessageLen); handled {
					tx.TraceSpan(qtrace.PhaseCache, tc)
					tx.SetVerdict(telemetry.VerdictOK)
					tx.Finish()
					return 200, ContentTypeWire, out
				}
				// Unhandled: the Message path below reuses the transaction.
			}
		}
		q = new(dnswire.Message)
		if err := q.Unpack(rawQ); err != nil {
			if tx != nil {
				tx.SetVerdict(telemetry.VerdictServFail)
				tx.Finish()
			}
			return 400, "", nil
		}
	}
	if tx == nil {
		tx = d.Telemetry.Begin(telemetry.ProtoDoH)
	}
	if tx.Traced() && len(q.Questions) > 0 {
		tx.TraceQueryName(string(q.Questions[0].Name.Canonical()), uint16(q.Questions[0].Type))
	}
	defer tx.Finish()
	ctx = telemetry.NewContext(ctx, tx)
	// Handler failures surface as DNS-level SERVFAIL in an HTTP 200, the
	// way RFC 8484 servers report resolution (not transport) errors.
	resp := Respond(ctx, d.Handler, q)
	if wantJSON {
		out, err := dnsjson.Encode(resp)
		if err != nil {
			// The client sees HTTP 500, not the ok response Respond
			// recorded — correct the verdict to match its fate.
			tx.SetVerdict(telemetry.VerdictServFail)
			return 500, "", nil
		}
		return 200, ContentTypeJSON, out
	}
	out, err := resp.Pack()
	if err != nil {
		tx.SetVerdict(telemetry.VerdictServFail)
		return 500, "", nil
	}
	return 200, ContentTypeWire, out
}

// EncodeGETPath renders the RFC 8484 GET form of a query for the given
// endpoint path.
func EncodeGETPath(path string, queryWire []byte) string {
	return path + "?dns=" + base64.RawURLEncoding.EncodeToString(queryWire)
}

// EncodeJSONGETPath renders the JSON GET form (?name=&type=).
func EncodeJSONGETPath(path string, name dnswire.Name, t dnswire.Type) string {
	v := url.Values{}
	v.Set("name", strings.TrimSuffix(string(name.Canonical()), "."))
	v.Set("type", strconv.Itoa(int(t)))
	return path + "?" + v.Encode()
}

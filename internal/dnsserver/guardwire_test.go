package dnsserver

// Serving-path coverage for the abuse guard: the per-packet UDP loop's
// slip/drop/cookie behaviour, the batch loop's guard accounting, and the
// stream path's REFUSED synthesis. The guard's own semantics (bucket math,
// cookie crypto, breaker) are pinned in internal/guard; here we prove the
// servers consult it and account for it correctly.

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/telemetry"
	"dohcost/internal/udpio"
)

// noRefill is a client QPS low enough that buckets effectively never
// refill within a test run, making limit decisions deterministic.
const noRefill = 1e-6

// cookieQuery packs a query for name carrying the given COOKIE option data.
func cookieQuery(t *testing.T, id uint16, name dnswire.Name, cookie []byte) []byte {
	t.Helper()
	m := dnswire.NewQuery(id, name, dnswire.TypeA)
	m.EDNS = &dnswire.EDNS{UDPSize: 1232, Options: []dnswire.EDNS0Option{
		{Code: guard.EDNS0CookieCode, Data: cookie},
	}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// sendRecv writes one datagram and reads one response.
func sendRecv(t *testing.T, c net.Conn, q []byte) *dnswire.Message {
	t.Helper()
	if _, err := c.Write(q); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var m dnswire.Message
	if err := m.Unpack(buf[:n]); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	return &m
}

// respCookie extracts the COOKIE option data from a response.
func respCookie(m *dnswire.Message) []byte {
	if m.EDNS == nil {
		return nil
	}
	for _, o := range m.EDNS.Options {
		if o.Code == guard.EDNS0CookieCode {
			return o.Data
		}
	}
	return nil
}

// TestUDPGuardSlipAndCookieBypass walks the full RRL + cookie story over
// the per-packet UDP loop: answers carry server cookies, over-limit
// queries degrade to TC=1 slips (never silence, with SlipEvery=1), and
// presenting the issued cookie bypasses the exhausted bucket.
func TestUDPGuardSlipAndCookieBypass(t *testing.T) {
	g := guard.New(guard.Config{
		ClientQPS: noRefill, Burst: 2, SlipEvery: 1, CookieSecret: 0xc0ffee,
	}, nil)
	pc := listenLoopback(t)
	srv := &UDPServer{
		Handler: Static(netip.MustParseAddr("192.0.2.7"), 60),
		Guard:   g,
	}
	go srv.Serve(pc)
	c, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cc := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	// Query 1: answered on the Message path, cookie echoed.
	r1 := sendRecv(t, c, cookieQuery(t, 1, "a.example.", cc))
	if r1.Truncated || len(r1.Answers) != 1 {
		t.Fatalf("query 1: truncated=%v answers=%d", r1.Truncated, len(r1.Answers))
	}
	full := respCookie(r1)
	if len(full) != 24 {
		t.Fatalf("response cookie %d bytes, want 24", len(full))
	}
	// Query 2 drains the burst; query 3 is over-limit and must slip TC=1
	// with the question echoed and no records.
	sendRecv(t, c, cookieQuery(t, 2, "a.example.", cc))
	r3 := sendRecv(t, c, cookieQuery(t, 3, "a.example.", cc))
	if !r3.Truncated || len(r3.Answers) != 0 {
		t.Fatalf("query 3: truncated=%v answers=%d, want TC referral", r3.Truncated, len(r3.Answers))
	}
	if r3.ID != 3 || len(r3.Questions) != 1 || r3.Questions[0].Name.Canonical() != "a.example." {
		t.Fatalf("slip did not echo the question: %v", r3)
	}
	if sc := respCookie(r3); len(sc) != 24 {
		t.Fatalf("slip response cookie %d bytes, want 24 (clients must be able to graduate)", len(sc))
	}
	// Query 4 presents the issued server cookie: rate limit bypassed.
	r4 := sendRecv(t, c, cookieQuery(t, 4, "a.example.", full))
	if r4.Truncated || len(r4.Answers) != 1 {
		t.Fatalf("cookie-validated query: truncated=%v answers=%d", r4.Truncated, len(r4.Answers))
	}
	rep := g.Report()
	if rep.Slips == 0 || rep.CookiesValidated == 0 || rep.CookiesIssued == 0 {
		t.Fatalf("guard report %+v: want slips, validations and issues", rep)
	}
}

// TestBatchGuardDroppedAccounting pins the ServeBatch fix: datagrams the
// guard consumes (drops and slips) land in their own shard counter and the
// batch ledger stays exact — Datagrams == FastHits + SlowPath +
// GuardDropped — while the batch-size histogram keeps counting every read
// datagram, consistent with the per-packet path.
func TestBatchGuardDroppedAccounting(t *testing.T) {
	stub := newWireStub(t, "hot.example.")
	g := guard.New(guard.Config{ClientQPS: noRefill, Burst: 3, SlipEvery: 2}, nil)
	conns, err := udpio.ListenShards("udp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	srv := &UDPServer{Handler: stub, Guard: g, Telemetry: tel}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeBatch(conns, 8) }()

	c, err := net.Dial("udp", conns[0].LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const total = 12
	for i := 0; i < total; i++ {
		wire, err := dnswire.NewQuery(uint16(i+1), "hot.example.", dnswire.TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(wire); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let each datagram land; ordering keeps burst math exact
	}

	accounted := func() (fast, slow, guarded, datagrams uint64) {
		for _, st := range srv.ShardStats() {
			fast += st.FastHits
			slow += st.SlowPath
			guarded += st.GuardDropped
			datagrams += st.Datagrams
		}
		return
	}
	waitFor(t, func() bool { _, _, _, d := accounted(); return d >= total })
	fast, slow, guarded, datagrams := accounted()
	if fast+slow+guarded != datagrams {
		t.Fatalf("ledger broken: fast %d + slow %d + guarded %d != datagrams %d",
			fast, slow, guarded, datagrams)
	}
	if fast != 3 || guarded != total-3 {
		t.Fatalf("fast=%d guarded=%d, want 3 and %d (burst then limits)", fast, guarded, total-3)
	}
	if s := tel.Snapshot(); s.UDPBatchDatagrams != datagrams {
		t.Fatalf("batch histogram datagrams %d != shard datagrams %d (guard-dropped must still be sampled)",
			s.UDPBatchDatagrams, datagrams)
	}
	rep := g.Report()
	if rep.Drops+rep.Slips != guarded {
		t.Fatalf("guard drops %d + slips %d != shard guarded %d", rep.Drops, rep.Slips, guarded)
	}

	for _, cc := range conns {
		cc.Close()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBatch did not return")
	}
}

// TestBatchGuardConcurrentHotName mirrors TestBatchShardedHotName with the
// guard engaged: concurrent clients hammer one hot name through sharded
// batch loops while token-bucket refills race the per-datagram guard
// checks — the -race workout for the bucket's striped state on the batch
// path. Limits are set high so every query is admitted and answered.
func TestBatchGuardConcurrentHotName(t *testing.T) {
	stub := newWireStub(t, "hot.example.")
	g := guard.New(guard.Config{ClientQPS: 1e6, Burst: 1 << 20, Shards: 2, Slots: 64}, nil)
	conns, err := udpio.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := &UDPServer{Handler: stub, Guard: g}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeBatch(conns, 32) }()
	addr := conns[0].LocalAddr().String()

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	for gi := 0; gi < clients; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			queries := make(map[uint16][]byte, perClient)
			for i := 0; i < perClient; i++ {
				id := uint16(gi*perClient + i + 1)
				wire, err := dnswire.NewQuery(id, "hot.example.", dnswire.TypeA).Pack()
				if err != nil {
					t.Error(err)
					return
				}
				queries[id] = wire
			}
			collectResponses(t, addr, queries)
		}(gi)
	}
	wg.Wait()

	if rep := g.Report(); rep.Allowed < clients*perClient {
		t.Fatalf("guard admitted %d, want >= %d", rep.Allowed, clients*perClient)
	}
	for _, c := range conns {
		c.Close()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBatch did not return")
	}
}

// TestStreamGuardRefuses pins the stream policy: over-limit queries on a
// connection-oriented transport get an honest REFUSED — question echoed,
// no TC, connection intact — and service resumes within the same
// connection once the bucket refills.
func TestStreamGuardRefuses(t *testing.T) {
	g := guard.New(guard.Config{ClientQPS: noRefill, Burst: 1}, nil)
	srv := &StreamServer{Handler: Static(netip.MustParseAddr("192.0.2.7"), 60), Guard: g}
	client, server := net.Pipe()
	defer client.Close()
	go srv.ServeConn(server)

	exchange := func(id uint16) *dnswire.Message {
		t.Helper()
		wire, err := dnswire.NewQuery(id, "a.example.", dnswire.TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteStreamMessage(client, wire); err != nil {
			t.Fatal(err)
		}
		raw, err := ReadStreamMessage(client)
		if err != nil {
			t.Fatal(err)
		}
		var m dnswire.Message
		if err := m.Unpack(raw); err != nil {
			t.Fatal(err)
		}
		return &m
	}
	if r := exchange(1); r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("first query: rcode %v answers %d", r.RCode, len(r.Answers))
	}
	r := exchange(2)
	if r.RCode != dnswire.RCodeRefused || r.Truncated || len(r.Answers) != 0 {
		t.Fatalf("over-limit stream query: rcode %v tc %v answers %d, want clean REFUSED",
			r.RCode, r.Truncated, len(r.Answers))
	}
	if r.ID != 2 || len(r.Questions) != 1 {
		t.Fatalf("refusal did not echo the question: %v", r)
	}
}

// TestDoHGuardRefuses drives the DoH core directly: a bound context
// carries the client identity, and an over-limit wire query comes back as
// a DNS REFUSED inside an HTTP 200, per RFC 8484's resolution-error model.
func TestDoHGuardRefuses(t *testing.T) {
	g := guard.New(guard.Config{ClientQPS: noRefill, Burst: 1}, nil)
	d := &DoH{Handler: Static(netip.MustParseAddr("192.0.2.7"), 60), Guard: g}
	ctx := guard.NewContext(t.Context(), 424242)

	q, err := dnswire.NewQuery(9, "a.example.", dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	status, ct, body := d.serve(ctx, "POST", "/dns-query", ContentTypeWire, q)
	if status != 200 || ct != ContentTypeWire {
		t.Fatalf("first query: %d %q", status, ct)
	}
	status, ct, body = d.serve(ctx, "POST", "/dns-query", ContentTypeWire, q)
	if status != 200 || ct != ContentTypeWire {
		t.Fatalf("refused query: %d %q, want DNS-level refusal in HTTP 200", status, ct)
	}
	var m dnswire.Message
	if err := m.Unpack(body); err != nil {
		t.Fatal(err)
	}
	if m.RCode != dnswire.RCodeRefused || m.ID != 9 {
		t.Fatalf("refused query: rcode %v id %d", m.RCode, m.ID)
	}
	// An unbound context (no client identity) is never limited.
	for i := 0; i < 5; i++ {
		status, _, _ = d.serve(t.Context(), "POST", "/dns-query", ContentTypeWire, q)
		if status != 200 {
			t.Fatalf("unbound query %d: %d", i, status)
		}
	}
}

package dnsserver

import (
	"context"
	"sync"

	"dohcost/internal/dnswire"
)

// Zone is a small in-memory authoritative zone: exact-name matching with
// CNAME chasing, NXDOMAIN for unknown names, and NODATA (empty NOERROR) for
// known names without records of the asked type. It backs the example
// applications and the landscape survey's CAA lookups.
type Zone struct {
	Origin dnswire.Name

	mu      sync.RWMutex
	records map[dnswire.Name]map[dnswire.Type][]dnswire.ResourceRecord
}

// NewZone creates an empty zone rooted at origin.
func NewZone(origin dnswire.Name) *Zone {
	return &Zone{
		Origin:  origin.Canonical(),
		records: make(map[dnswire.Name]map[dnswire.Type][]dnswire.ResourceRecord),
	}
}

// Add inserts a record. The record name must fall inside the zone.
func (z *Zone) Add(rr dnswire.ResourceRecord) {
	name := rr.Name.Canonical()
	rr.Name = name
	z.mu.Lock()
	defer z.mu.Unlock()
	byType, ok := z.records[name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.ResourceRecord)
		z.records[name] = byType
	}
	byType[rr.Type()] = append(byType[rr.Type()], rr)
}

// AddA is shorthand for adding an A record from presentation values.
func (z *Zone) AddA(name dnswire.Name, ttl uint32, a *dnswire.A) {
	z.Add(dnswire.ResourceRecord{Name: name, Class: dnswire.ClassINET, TTL: ttl, Data: a})
}

// ServeDNS implements Handler.
func (z *Zone) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	r := q.Reply()
	r.Authoritative = true
	qq := q.Question1()
	name := qq.Name.Canonical()
	if !name.IsSubdomainOf(z.Origin) {
		r.RCode = dnswire.RCodeRefused
		return r, nil
	}

	z.mu.RLock()
	defer z.mu.RUnlock()
	// Chase CNAMEs up to a sane depth.
	for depth := 0; depth < 8; depth++ {
		byType, known := z.records[name]
		if !known {
			r.RCode = dnswire.RCodeNameError
			return r, nil
		}
		if rrs, ok := byType[qq.Type]; ok && qq.Type != dnswire.TypeCNAME {
			r.Answers = append(r.Answers, rrs...)
			return r, nil
		}
		if qq.Type == dnswire.TypeCNAME {
			if rrs, ok := byType[dnswire.TypeCNAME]; ok {
				r.Answers = append(r.Answers, rrs...)
			}
			return r, nil
		}
		if cnames, ok := byType[dnswire.TypeCNAME]; ok && len(cnames) > 0 {
			r.Answers = append(r.Answers, cnames[0])
			name = cnames[0].Data.(*dnswire.CNAME).Target.Canonical()
			if !name.IsSubdomainOf(z.Origin) {
				return r, nil // target outside the zone: return the alias only
			}
			continue
		}
		// Known name, no data of this type.
		return r, nil
	}
	r.RCode = dnswire.RCodeServerFailure
	return r, nil
}

// Package dnsserver provides the resolver side of every transport the study
// compares: classic UDP and TCP, DNS-over-TLS (RFC 7858, with selectable
// in-order or out-of-order reply scheduling), and DNS-over-HTTPS (RFC 8484,
// over this repository's HTTP/1.1 and HTTP/2 stacks, wireformat and JSON).
//
// Handlers compose as middleware. The experiment setup from the paper — a
// CoreDNS instance answering every name with the same address, with one in
// every 25 queries delayed by a second — is Static + DelayEvery.
package dnsserver

import (
	"context"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use; servers may dispatch queries from many connections at once.
//
// The context is derived from the lifetime of whatever carried the query —
// the stream connection, the HTTP request's connection, or the server
// itself for UDP — so handlers doing real work (forwarding upstream,
// recursing) can abandon queries whose client is gone. A handler returns
// either a response or an error; servers synthesize SERVFAIL from errors,
// so handlers never need to build failure responses themselves.
type Handler interface {
	ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, q)
}

// ServFail synthesizes the SERVFAIL response servers send when a handler
// returns an error (or nil without an error).
func ServFail(q *dnswire.Message) *dnswire.Message {
	r := q.Reply()
	r.RCode = dnswire.RCodeServerFailure
	return r
}

// Respond runs h and folds any error into a SERVFAIL response, the way
// every server transport surfaces handler failures to clients. It is also
// the verdict point of the telemetry pipeline: the query's Transaction (if
// the server began one) learns here whether it ended ok, as a synthesized
// SERVFAIL, or canceled by its client.
func Respond(ctx context.Context, h Handler, q *dnswire.Message) *dnswire.Message {
	resp, err := h.ServeDNS(ctx, q)
	tx := telemetry.FromContext(ctx)
	if err != nil || resp == nil {
		if ctx.Err() != nil {
			tx.SetVerdict(telemetry.VerdictCanceled)
		} else {
			tx.SetVerdict(telemetry.VerdictServFail)
		}
		return ServFail(q)
	}
	tx.SetVerdict(telemetry.VerdictOK)
	return resp
}

// sleepCtx pauses for d unless the context ends first, in which case it
// reports the context's error. Delay middlewares use it so an abandoned
// query does not hold a serving goroutine hostage.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Static answers every A/AAAA query with the same address and TTL,
// independent of the queried name — the paper's trick for isolating
// transport behaviour from resolution behaviour (§3: "we instruct our
// resolver to always return the same IP address").
func Static(addr netip.Addr, ttl uint32) Handler {
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		r.Authoritative = true
		qq := q.Question1()
		switch {
		case qq.Type == dnswire.TypeA && addr.Is4():
			r.Answers = append(r.Answers, dnswire.ResourceRecord{
				Name: qq.Name.Canonical(), Class: dnswire.ClassINET, TTL: ttl,
				Data: &dnswire.A{Addr: addr},
			})
		case qq.Type == dnswire.TypeAAAA && addr.Is6():
			r.Answers = append(r.Answers, dnswire.ResourceRecord{
				Name: qq.Name.Canonical(), Class: dnswire.ClassINET, TTL: ttl,
				Data: &dnswire.AAAA{Addr: addr},
			})
		}
		return r, nil
	})
}

// DelayEvery delays every nth query through it by d before passing it on.
// With n=25 and d=1s this is exactly the paper's Figure 2 fault injection.
func DelayEvery(n int, d time.Duration, next Handler) Handler {
	var counter atomic.Int64
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if c := counter.Add(1); n > 0 && c%int64(n) == 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
		}
		return next.ServeDNS(ctx, q)
	})
}

// Delay sleeps for a fixed duration on every query — the building block for
// emulating resolver-side processing latency.
func Delay(d time.Duration, next Handler) Handler {
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
		return next.ServeDNS(ctx, q)
	})
}

// Refuse answers everything with the given RCode.
func Refuse(rcode dnswire.RCode) Handler {
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		r.RCode = rcode
		return r, nil
	})
}

// CacheMissDelay models recursive-resolver behaviour: with probability
// missRate a query "misses the cache" and pays an upstream recursion delay
// drawn uniformly from [min, max]. The paper's local university resolver
// resolves misses itself, while the big cloud resolvers enjoy very hot
// shared caches — which is why §5 finds cloud UDP resolution *faster* than
// the local resolver.
func CacheMissDelay(seed int64, missRate float64, min, max time.Duration, next Handler) Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		mu.Lock()
		miss := rng.Float64() < missRate
		var extra time.Duration
		if miss && max > min {
			extra = min + time.Duration(rng.Int63n(int64(max-min)))
		} else if miss {
			extra = min
		}
		mu.Unlock()
		if extra > 0 {
			if err := sleepCtx(ctx, extra); err != nil {
				return nil, err
			}
		}
		return next.ServeDNS(ctx, q)
	})
}

// EDNS0PaddingCode is the EDNS(0) option code for Padding (RFC 7830).
const EDNS0PaddingCode = 12

// PadResponses pads every response's wire form up to a multiple of
// blockSize using the EDNS(0) Padding option, per the RFC 8467 server
// policy. Google's DoH frontends do this (468-byte blocks), which is part
// of why the paper measures larger per-resolution payloads against Google
// than against Cloudflare even on persistent connections.
func PadResponses(blockSize int, next Handler) Handler {
	return HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r, err := next.ServeDNS(ctx, q)
		if err != nil || r == nil || blockSize <= 0 {
			return r, err
		}
		if r.EDNS == nil {
			r.EDNS = &dnswire.EDNS{UDPSize: 512}
		}
		wire, err := r.Pack()
		if err != nil {
			return r, nil
		}
		// A fresh padding option costs 4 octets of option header.
		unpadded := len(wire) + 4
		pad := (blockSize - unpadded%blockSize) % blockSize
		r.EDNS.Options = append(r.EDNS.Options, dnswire.EDNS0Option{
			Code: EDNS0PaddingCode, Data: make([]byte, pad),
		})
		return r, nil
	})
}

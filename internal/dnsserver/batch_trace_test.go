package dnsserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
	"dohcost/internal/udpio"
)

// TestBatchShardedTracing drives concurrent clients through SO_REUSEPORT
// batch shards with the per-query tracer armed — the -race workout for
// concurrent trace-record writes from every shard goroutine into the
// shared sampler rings — and checks the sampled traces carry the wire
// fast path's phase spans.
func TestBatchShardedTracing(t *testing.T) {
	stub := newWireStub(t, "hot.example.")
	conns, err := udpio.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	tr := qtrace.New(qtrace.Config{SampleEvery: 2})
	tel.SetTracer(tr)
	srv := &UDPServer{Handler: stub, Telemetry: tel}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeBatch(conns, 32) }()
	addr := conns[0].LocalAddr().String()

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := make(map[uint16][]byte, perClient)
			for i := 0; i < perClient; i++ {
				id := uint16(g*perClient + i + 1)
				wire, err := dnswire.NewQuery(id, "hot.example.", dnswire.TypeA).Pack()
				if err != nil {
					errs <- err
					return
				}
				queries[id] = wire
			}
			for id, raw := range collectResponses(t, addr, queries) {
				var m dnswire.Message
				if err := m.Unpack(raw); err != nil {
					errs <- fmt.Errorf("client %d: bad response: %w", g, err)
					return
				}
				if m.ID != id {
					errs <- fmt.Errorf("client %d: response ID %#x != %#x", g, m.ID, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := tr.Stats()
	if st.Offered < clients*perClient {
		t.Errorf("tracer saw %d offers, want >= %d", st.Offered, clients*perClient)
	}
	if kept := st.KeptErrored + st.KeptSlow + st.KeptBaseline; kept == 0 {
		t.Error("no traces sampled with SampleEvery=2")
	}
	views := tr.Traces(qtrace.Filter{Limit: 1 << 20})
	if len(views) == 0 {
		t.Fatal("sampler rings empty after traced batch run")
	}
	for _, v := range views {
		if v.QName != "hot.example." || v.Proto != "udp" {
			t.Fatalf("trace identity = %q/%s, want hot.example./udp", v.QName, v.Proto)
		}
		phases := make(map[string]bool, len(v.Spans))
		for _, sp := range v.Spans {
			phases[sp.Phase] = true
		}
		for _, want := range []string{"parse", "cache", "write"} {
			if !phases[want] {
				t.Fatalf("trace missing %s span: %+v", want, v.Spans)
			}
		}
	}

	for _, c := range conns {
		c.Close()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBatch did not return after conns closed")
	}
	tr.Close()
}

package dnsserver

import (
	"bytes"
	"context"
	"encoding/base64"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
)

// serveT runs a handler with a background context, failing the test on
// handler error.
func serveT(t *testing.T, h Handler, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	r, err := h.ServeDNS(context.Background(), q)
	if err != nil {
		t.Fatalf("ServeDNS: %v", err)
	}
	return r
}

func TestStaticHandlerA(t *testing.T) {
	h := Static(netip.MustParseAddr("192.0.2.1"), 60)
	q := dnswire.NewQuery(9, "anything.at.all.example.", dnswire.TypeA)
	r := serveT(t, h, q)
	if !r.Response || r.ID != 9 || len(r.Answers) != 1 {
		t.Fatalf("reply = %+v", r)
	}
	if a := r.Answers[0].Data.(*dnswire.A); a.Addr != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("addr = %v", a.Addr)
	}
	// AAAA query against a v4 static handler: NOERROR, no answers.
	q6 := dnswire.NewQuery(10, "x.example.", dnswire.TypeAAAA)
	r6 := serveT(t, h, q6)
	if len(r6.Answers) != 0 || r6.RCode != dnswire.RCodeSuccess {
		t.Errorf("aaaa reply = %+v", r6)
	}
}

func TestStaticHandlerAAAA(t *testing.T) {
	h := Static(netip.MustParseAddr("2001:db8::1"), 60)
	r := serveT(t, h, dnswire.NewQuery(1, "x.example.", dnswire.TypeAAAA))
	if len(r.Answers) != 1 {
		t.Fatalf("answers = %v", r.Answers)
	}
	if _, ok := r.Answers[0].Data.(*dnswire.AAAA); !ok {
		t.Error("not an AAAA answer")
	}
}

func TestDelayEveryCadence(t *testing.T) {
	h := DelayEvery(2, 40*time.Millisecond, Static(netip.MustParseAddr("192.0.2.1"), 60))
	var delayed int
	for i := 0; i < 4; i++ {
		start := time.Now()
		serveT(t, h, dnswire.NewQuery(uint16(i), "x.example.", dnswire.TypeA))
		if time.Since(start) > 30*time.Millisecond {
			delayed++
		}
	}
	if delayed != 2 {
		t.Errorf("delayed %d of 4 queries, want 2", delayed)
	}
}

func TestRefuseHandler(t *testing.T) {
	h := Refuse(dnswire.RCodeRefused)
	r := serveT(t, h, dnswire.NewQuery(1, "x.example.", dnswire.TypeA))
	if r.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", r.RCode)
	}
}

func TestZoneNodata(t *testing.T) {
	z := NewZone("example.com.")
	z.AddA("www.example.com.", 60, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")})
	r := serveT(t, z, dnswire.NewQuery(1, "www.example.com.", dnswire.TypeAAAA))
	if r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 0 {
		t.Errorf("nodata reply = %+v", r)
	}
}

func TestZoneCNAMEChainToExternalTarget(t *testing.T) {
	z := NewZone("example.com.")
	z.Add(dnswire.ResourceRecord{Name: "a.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAME{Target: "cdn.other.net."}})
	r := serveT(t, z, dnswire.NewQuery(1, "a.example.com.", dnswire.TypeA))
	if len(r.Answers) != 1 {
		t.Fatalf("answers = %v", r.Answers)
	}
	if r.RCode != dnswire.RCodeSuccess {
		t.Errorf("rcode = %v", r.RCode)
	}
}

func TestZoneCNAMELoopTerminates(t *testing.T) {
	z := NewZone("example.com.")
	z.Add(dnswire.ResourceRecord{Name: "a.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAME{Target: "b.example.com."}})
	z.Add(dnswire.ResourceRecord{Name: "b.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAME{Target: "a.example.com."}})
	done := make(chan *dnswire.Message, 1)
	go func() {
		done <- Respond(context.Background(), z, dnswire.NewQuery(1, "a.example.com.", dnswire.TypeA))
	}()
	select {
	case r := <-done:
		if r.RCode != dnswire.RCodeServerFailure {
			t.Errorf("rcode = %v, want SERVFAIL", r.RCode)
		}
	case <-time.After(time.Second):
		t.Fatal("CNAME loop did not terminate")
	}
}

func TestZoneDirectCNAMEQuery(t *testing.T) {
	z := NewZone("example.com.")
	z.Add(dnswire.ResourceRecord{Name: "a.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAME{Target: "b.example.com."}})
	r := serveT(t, z, dnswire.NewQuery(1, "a.example.com.", dnswire.TypeCNAME))
	if len(r.Answers) != 1 {
		t.Fatalf("answers = %v", r.Answers)
	}
}

// dohServe is a test shim over the unexported core.
func dohServe(d *DoH, method, path, ct string, body []byte) (int, string, []byte) {
	return d.serve(context.Background(), method, path, ct, body)
}

func TestDoHServeRouting(t *testing.T) {
	d := &DoH{
		Handler: Static(netip.MustParseAddr("192.0.2.1"), 60),
		Endpoints: []Endpoint{
			{Path: "/dns-query", Wire: true},
			{Path: "/resolve", JSON: true},
		},
	}
	q := dnswire.NewQuery(0, "probe.example.", dnswire.TypeA)
	wire, _ := q.Pack()

	// POST wireformat on the wire endpoint.
	status, ct, body := dohServe(d, "POST", "/dns-query", ContentTypeWire, wire)
	if status != 200 || ct != ContentTypeWire {
		t.Errorf("post: %d %s", status, ct)
	}
	var resp dnswire.Message
	if err := resp.Unpack(body); err != nil || len(resp.Answers) != 1 {
		t.Errorf("post body: %v %v", err, resp.Answers)
	}

	// GET base64url on the wire endpoint.
	status, _, _ = dohServe(d, "GET", "/dns-query?dns="+base64.RawURLEncoding.EncodeToString(wire), "", nil)
	if status != 200 {
		t.Errorf("get: %d", status)
	}

	// JSON on the JSON endpoint.
	status, ct, body = dohServe(d, "GET", "/resolve?name=probe.example&type=A", "", nil)
	if status != 200 || ct != ContentTypeJSON || !bytes.Contains(body, []byte(`"Status":0`)) {
		t.Errorf("json: %d %s %s", status, ct, body)
	}

	// Content-type mismatches.
	if status, _, _ = dohServe(d, "POST", "/dns-query", "text/plain", wire); status != 415 {
		t.Errorf("bad content type: %d", status)
	}
	if status, _, _ = dohServe(d, "POST", "/resolve", ContentTypeWire, wire); status != 415 {
		t.Errorf("wire on json endpoint: %d", status)
	}
	if status, _, _ = dohServe(d, "GET", "/resolve?dns=AAAA", "", nil); status != 415 {
		t.Errorf("b64 on json endpoint: %d", status)
	}

	// Unknown path, bad method, bad encodings.
	if status, _, _ = dohServe(d, "POST", "/nope", ContentTypeWire, wire); status != 404 {
		t.Errorf("unknown path: %d", status)
	}
	if status, _, _ = dohServe(d, "DELETE", "/dns-query", "", nil); status != 405 {
		t.Errorf("bad method: %d", status)
	}
	if status, _, _ = dohServe(d, "GET", "/dns-query?dns=!!!", "", nil); status != 400 {
		t.Errorf("bad base64: %d", status)
	}
	if status, _, _ = dohServe(d, "POST", "/dns-query", ContentTypeWire, []byte{1, 2}); status != 400 {
		t.Errorf("bad wire body: %d", status)
	}
	if status, _, _ = dohServe(d, "GET", "/dns-query", "", nil); status != 400 {
		t.Errorf("no query: %d", status)
	}
}

func TestDoHDefaultEndpoints(t *testing.T) {
	d := &DoH{Handler: Static(netip.MustParseAddr("192.0.2.1"), 60)}
	q := dnswire.NewQuery(0, "x.example.", dnswire.TypeA)
	wire, _ := q.Pack()
	if status, _, _ := dohServe(d, "POST", "/dns-query", ContentTypeWire, wire); status != 200 {
		t.Errorf("default endpoint: %d", status)
	}
	// JSON is not enabled by default.
	if status, _, _ := dohServe(d, "GET", "/dns-query?name=x.example", "", nil); status != 415 {
		t.Errorf("json on default endpoint: %d", status)
	}
}

func TestStreamMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("hello dns")
	if err := WriteStreamMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(msg)+2 {
		t.Errorf("framed length = %d", buf.Len())
	}
	got, err := ReadStreamMessage(&buf)
	if err != nil || !bytes.Equal(got, msg) {
		t.Errorf("read = %q, %v", got, err)
	}
	// Oversized messages are refused.
	if err := WriteStreamMessage(&buf, bytes.Repeat([]byte{0}, 70000)); err == nil {
		t.Error("70KB message accepted")
	}
	// Truncated stream errors.
	if _, err := ReadStreamMessage(strings.NewReader("\x00\x10abc")); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEncodeGETPaths(t *testing.T) {
	p := EncodeGETPath("/dns-query", []byte{0xFF, 0x00})
	if !strings.HasPrefix(p, "/dns-query?dns=") || strings.Contains(p, "=?") {
		t.Errorf("path = %s", p)
	}
	j := EncodeJSONGETPath("/resolve", "WWW.Example.COM.", dnswire.TypeAAAA)
	if !strings.Contains(j, "name=www.example.com") || !strings.Contains(j, "type=28") {
		t.Errorf("json path = %s", j)
	}
}

func TestPadResponses(t *testing.T) {
	h := PadResponses(468, Static(netip.MustParseAddr("192.0.2.1"), 60))
	r := serveT(t, h, dnswire.NewQuery(1, "pad.example.", dnswire.TypeA))
	wire, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire)%468 != 0 {
		t.Errorf("padded response = %d bytes, want multiple of 468", len(wire))
	}
	if r.EDNS == nil || len(r.EDNS.Options) == 0 || r.EDNS.Options[len(r.EDNS.Options)-1].Code != EDNS0PaddingCode {
		t.Error("padding option missing")
	}
	// Block size 0 disables padding.
	plain := PadResponses(0, Static(netip.MustParseAddr("192.0.2.1"), 60))
	r2 := serveT(t, plain, dnswire.NewQuery(1, "pad.example.", dnswire.TypeA))
	if r2.EDNS != nil && len(r2.EDNS.Options) > 0 {
		t.Error("padding applied with block size 0")
	}
}

// startClampedUDP serves a many-answer handler over a simulated datagram
// socket with the given MaxUDPSize and returns a client conn toward it.
func startClampedUDP(t *testing.T, maxUDP, answers int) *netsim.PacketConn {
	t.Helper()
	n := netsim.New(1)
	pc, err := n.ListenPacket("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	handler := HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		for i := 0; i < answers; i++ {
			r.Answers = append(r.Answers, dnswire.ResourceRecord{
				Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 60,
				Data: &dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})},
			})
		}
		return r, nil
	})
	srv := &UDPServer{Handler: handler, MaxUDPSize: maxUDP}
	go srv.Serve(pc)
	cli, err := n.ListenPacket("cli:5353")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// exchangeRaw sends q and returns the raw response datagram.
func exchangeRaw(t *testing.T, cli *netsim.PacketConn, q *dnswire.Message) []byte {
	t.Helper()
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteTo(wire, netsim.Addr("srv:53")); err != nil {
		t.Fatal(err)
	}
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65535)
	nn, _, err := cli.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:nn]
}

// TestUDPMaxSizeClamp pins the max-udp-size policy: responses over the cap
// are truncated even when the client's EDNS buffer allows more, the cap is
// honored below RFC 1035's 512-byte default (small-MTU paths), and on
// aggressive caps where even the referral would exceed the limit the OPT
// record is shed to keep the TC=1 signal deliverable.
func TestUDPMaxSizeClamp(t *testing.T) {
	t.Run("clamp-below-edns", func(t *testing.T) {
		cli := startClampedUDP(t, 484, 60) // ~1000-byte answer, cap in the sub-512 regime
		raw := exchangeRaw(t, cli, dnswire.NewQuery(7, "big.example.", dnswire.TypeA))
		if len(raw) > 484 {
			t.Fatalf("response is %d bytes, want <= the 484-byte cap", len(raw))
		}
		var resp dnswire.Message
		if err := resp.Unpack(raw); err != nil {
			t.Fatal(err)
		}
		if !resp.Truncated || len(resp.Answers) != 0 {
			t.Errorf("want empty TC=1 referral, got tc=%v answers=%d", resp.Truncated, len(resp.Answers))
		}
	})
	t.Run("referral-sheds-opt", func(t *testing.T) {
		long := strings.Repeat("verylonglabel.", 10) + "example."
		cli := startClampedUDP(t, 80, 4)
		raw := exchangeRaw(t, cli, dnswire.NewQuery(9, dnswire.Name(long), dnswire.TypeA))
		var resp dnswire.Message
		if err := resp.Unpack(raw); err != nil {
			t.Fatal(err)
		}
		if !resp.Truncated {
			t.Error("want TC=1 referral")
		}
		if resp.EDNS != nil {
			t.Errorf("referral kept its OPT record (%d bytes) despite exceeding the cap", len(raw))
		}
	})
}

package dnsserver

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/h1"
	"dohcost/internal/h2"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
)

// UDPServer serves classic DNS over a datagram endpoint. Queries are
// handled concurrently — UDP has no ordering, which is why Figure 2 shows
// it immune to slow-query knock-on effects.
type UDPServer struct {
	Handler Handler
	// BaseContext, when non-nil, parents every query's context; the default
	// is context.Background. UDP is connectionless, so per-query contexts
	// end with the server itself rather than with any one client.
	BaseContext context.Context
	// MaxUDPSize, when non-zero, caps response datagrams below the client's
	// advertised EDNS buffer — the max-udp-size knob production resolvers
	// use on small-MTU paths, where an honest TC=1 (and the RFC 7766 TCP
	// retry it triggers) beats a blackholed oversized datagram. Responses
	// over the cap are truncated. The cap is honored even below RFC 1035's
	// 512-byte default: on a path whose MTU is under 540, rounding the cap
	// up would re-blackhole exactly the responses it exists to save, and
	// the TC=1 referral itself (header + question) stays tiny.
	MaxUDPSize int
	// Telemetry, when non-nil, receives one Transaction per parsed query.
	Telemetry *telemetry.Metrics
}

// Serve reads queries from pc until it closes. Every in-flight handler's
// context is cancelled when the serve loop exits.
func (s *UDPServer) Serve(pc net.PacketConn) error {
	base := s.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	buf := make([]byte, 65535)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go s.handlePacket(ctx, pc, pkt, from)
	}
}

func (s *UDPServer) handlePacket(ctx context.Context, pc net.PacketConn, pkt []byte, from net.Addr) {
	var q dnswire.Message
	if err := q.Unpack(pkt); err != nil {
		return // drop unparseable datagrams, like real servers
	}
	tx := s.Telemetry.Begin(telemetry.ProtoUDP)
	defer tx.Finish()
	ctx = telemetry.NewContext(ctx, tx)
	resp := Respond(ctx, s.Handler, &q)
	wire, err := resp.Pack()
	if err != nil {
		// The client receives nothing; don't let Respond's ok verdict
		// stand for a reply that never left.
		tx.SetVerdict(telemetry.VerdictServFail)
		return
	}
	// Truncate to the client's advertised UDP capacity (RFC 6891), or the
	// classic 512-byte limit without EDNS, further capped by the server's
	// own MaxUDPSize policy.
	limit := 512
	if q.EDNS != nil && int(q.EDNS.UDPSize) > limit {
		limit = int(q.EDNS.UDPSize)
	}
	if s.MaxUDPSize > 0 && limit > s.MaxUDPSize {
		limit = s.MaxUDPSize
	}
	if len(wire) > limit {
		trunc := *resp
		trunc.Truncated = true
		trunc.Answers, trunc.Authorities, trunc.Additionals = nil, nil, nil
		if wire, err = trunc.Pack(); err != nil {
			tx.SetVerdict(telemetry.VerdictServFail)
			return
		}
		if len(wire) > limit && trunc.EDNS != nil {
			// On aggressive MaxUDPSize caps a long QNAME can push even the
			// referral over the limit; the OPT record is the only thing
			// left to shed (header + question cannot shrink further).
			trunc.EDNS = nil
			if wire, err = trunc.Pack(); err != nil {
				tx.SetVerdict(telemetry.VerdictServFail)
				return
			}
		}
	}
	pc.WriteTo(wire, from)
}

// StreamServer serves DNS with two-octet length framing (RFC 1035 §4.2.2)
// over any stream transport: raw TCP, or TLS for DoT.
//
// OutOfOrder selects the reply scheduling the DoT RFC merely recommends:
// when false the server handles one query at a time per connection, so a
// slow query blocks every reply behind it (the paper found only Cloudflare
// implemented out-of-order responses, and identifies this serialization as
// a key reason DoT underperforms).
type StreamServer struct {
	Handler    Handler
	OutOfOrder bool
	// Proto labels this listener's transactions; the zero value is
	// telemetry.ProtoTCP, and the DoT accept loop sets ProtoDoT.
	Proto telemetry.Proto
	// Telemetry, when non-nil, receives one Transaction per framed query.
	Telemetry *telemetry.Metrics
}

// Serve accepts connections until the listener closes.
func (s *StreamServer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn handles one connection until EOF. Every query's context is
// derived from the connection's lifetime: when the connection closes (or
// the serve loop exits on a protocol error), outstanding handlers are
// cancelled so abandoned queries stop consuming resolver work.
func (s *StreamServer) ServeConn(conn net.Conn) error {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writeMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		wire, err := ReadStreamMessage(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		var q dnswire.Message
		if err := q.Unpack(wire); err != nil {
			return fmt.Errorf("dnsserver: bad query on stream: %w", err)
		}
		if s.OutOfOrder {
			qc := q // copy; the loop reuses nothing, Unpack reallocated slices
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.answerStream(ctx, conn, &writeMu, &qc)
			}()
			continue
		}
		if err := s.answerStream(ctx, conn, &writeMu, &q); err != nil {
			return err
		}
	}
}

func (s *StreamServer) answerStream(ctx context.Context, conn net.Conn, writeMu *sync.Mutex, q *dnswire.Message) error {
	tx := s.Telemetry.Begin(s.Proto)
	defer tx.Finish()
	ctx = telemetry.NewContext(ctx, tx)
	resp := Respond(ctx, s.Handler, q)
	wire, err := resp.Pack()
	if err != nil {
		// The connection is being torn down without this reply; the
		// verdict must not read ok.
		tx.SetVerdict(telemetry.VerdictServFail)
		return err
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	return WriteStreamMessage(conn, wire)
}

// ReadStreamMessage reads one length-prefixed DNS message.
func ReadStreamMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// WriteStreamMessage writes one length-prefixed DNS message as a single
// flight.
func WriteStreamMessage(w io.Writer, msg []byte) error {
	if len(msg) > dnswire.MaxMessageLen {
		return dnswire.ErrMessageTooLarge
	}
	buf := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(buf, uint16(len(msg)))
	copy(buf[2:], msg)
	_, err := w.Write(buf)
	return err
}

// Server bundles one resolver deployment: the same handler reachable over
// UDP (:53), TCP (:53), DoT (:853) and DoH (:443), the way the public
// providers in Table 1 deploy theirs.
type Server struct {
	Handler Handler
	// Chain supplies TLS material for DoT and DoH; nil disables both.
	Chain *tlsx.Chain
	// TLSMin/TLSMax bound the offered protocol versions (zero = 1.2/1.3).
	TLSMin, TLSMax uint16
	// DoTOutOfOrder enables Cloudflare-style reply scheduling on DoT.
	DoTOutOfOrder bool
	// Endpoints configures the DoH paths and content types; nil serves
	// the RFC-default wireformat endpoint at /dns-query.
	Endpoints []Endpoint
	// DisableDoT drops the :853 listener (several Table 1 providers do
	// not run DoT).
	DisableDoT bool
	// HTTP1Only forces the DoH listener to negotiate only http/1.1 —
	// used by the transport-comparison experiment.
	HTTP1Only bool
	// AltSvc is attached to successful DoH responses (QUIC advertisement).
	AltSvc string
	// DoHProcessing models HTTPS frontend per-request latency; see
	// DoH.Processing.
	DoHProcessing time.Duration
	// DoHHandler, when non-nil, answers DoH queries instead of Handler —
	// providers that pad encrypted responses (RFC 8467) but not classic
	// UDP/TCP need the split.
	DoHHandler Handler
	// MaxUDPSize caps UDP response datagrams regardless of the client's
	// EDNS buffer (see UDPServer.MaxUDPSize); zero applies no cap.
	MaxUDPSize int
	// Telemetry, when non-nil, is propagated to every listener so each
	// query produces one cost Transaction (see internal/telemetry).
	Telemetry *telemetry.Metrics
}

// Running tracks a started Server's listeners.
type Running struct {
	Host    string
	closers []io.Closer
	wg      sync.WaitGroup
}

// Close shuts down all listeners and waits for serving loops.
func (r *Running) Close() {
	for _, c := range r.closers {
		c.Close()
	}
	r.wg.Wait()
}

// Start brings the deployment up on a simulated network host. Ports follow
// convention: UDP/TCP 53, DoT 853, DoH 443.
func (s *Server) Start(n *netsim.Network, host string) (*Running, error) {
	r := &Running{Host: host}

	pc, err := n.ListenPacket(host + ":53")
	if err != nil {
		return nil, err
	}
	r.closers = append(r.closers, pc)
	udp := &UDPServer{Handler: s.Handler, MaxUDPSize: s.MaxUDPSize, Telemetry: s.Telemetry}
	r.wg.Add(1)
	go func() { defer r.wg.Done(); udp.Serve(pc) }()

	tcpL, err := n.Listen(host + ":53")
	if err != nil {
		r.Close()
		return nil, err
	}
	r.closers = append(r.closers, tcpL)
	tcp := &StreamServer{Handler: s.Handler, OutOfOrder: s.DoTOutOfOrder, Telemetry: s.Telemetry}
	r.wg.Add(1)
	go func() { defer r.wg.Done(); tcp.Serve(tcpL) }()

	if s.Chain == nil {
		return r, nil
	}

	if !s.DisableDoT {
		dotL, err := n.Listen(host + ":853")
		if err != nil {
			r.Close()
			return nil, err
		}
		r.closers = append(r.closers, dotL)
		dot := &StreamServer{Handler: s.Handler, OutOfOrder: s.DoTOutOfOrder, Proto: telemetry.ProtoDoT, Telemetry: s.Telemetry}
		cfg := s.Chain.ServerConfig(s.TLSMin, s.TLSMax)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				conn, err := dotL.Accept()
				if err != nil {
					return
				}
				go dot.ServeConn(tls.Server(conn, cfg))
			}
		}()
	}

	dohL, err := n.Listen(host + ":443")
	if err != nil {
		r.Close()
		return nil, err
	}
	r.closers = append(r.closers, dohL)
	dohHandler := s.DoHHandler
	if dohHandler == nil {
		dohHandler = s.Handler
	}
	doh := &DoH{Handler: dohHandler, Endpoints: s.Endpoints, AltSvc: s.AltSvc, Processing: s.DoHProcessing, Telemetry: s.Telemetry}
	protos := []string{"h2", "http/1.1"}
	if s.HTTP1Only {
		protos = []string{"http/1.1"}
	}
	cfg := s.Chain.ServerConfig(s.TLSMin, s.TLSMax, protos...)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			conn, err := dohL.Accept()
			if err != nil {
				return
			}
			go func() {
				tc := tls.Server(conn, cfg)
				if err := tc.Handshake(); err != nil {
					tc.Close()
					return
				}
				// Bind per connection: DNS handler contexts end when this
				// HTTPS connection does.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				h2h, h1h := doh.Bind(ctx)
				switch tc.ConnectionState().NegotiatedProtocol {
				case "h2":
					(&h2.Server{Handler: h2h}).ServeConn(tc)
				default:
					(&h1.Server{Handler: h1h}).ServeConn(tc)
				}
			}()
		}
	}()
	return r, nil
}

package dnsserver

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/h1"
	"dohcost/internal/h2"
	"dohcost/internal/netsim"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
	"dohcost/internal/tlsx"
	"dohcost/internal/udpio"
)

// WireResponder is implemented by handlers that can answer some queries
// entirely in packed wire form — the serving fast path. Servers consult it
// (when their Handler implements it) after a successful dnswire.ParseQuery
// and before any Message is built: a handled query's response bytes are
// appended to dst, a pooled buffer the server writes and reclaims, with no
// Unpack, clone or Pack in between.
//
// tx is the query's telemetry transaction, already begun by the server,
// which also finishes it; implementations annotate it (cache outcome) but
// must not call Finish. handled=false sends the server to the Message path
// with the same transaction — a miss, an uncacheable shape, or a response
// that needs Message-level surgery (truncation over limit). dst may be
// sliced from a pooled buffer: the returned slice must be its extension
// (or a reallocation the caller only uses before reclaiming dst), and
// implementations must not retain it.
type WireResponder interface {
	ServeDNSWire(tx *telemetry.Transaction, q *dnswire.Query, dst []byte, limit int) ([]byte, bool)
}

// bufLen is the pooled scratch size: a maximum DNS message plus the
// two-octet stream length prefix, so one pool serves packet reads,
// response packing and stream frames without reallocation.
const bufLen = 2 + dnswire.MaxMessageLen

// bufPool recycles serving-path scratch buffers. Pointers-to-slices keep
// the pool allocation-free (a bare []byte would be boxed on every Put).
var bufPool = sync.Pool{New: func() any { b := make([]byte, bufLen); return &b }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// UDPServer serves classic DNS over a datagram endpoint. Queries are
// handled concurrently — UDP has no ordering, which is why Figure 2 shows
// it immune to slow-query knock-on effects.
//
// The serve loop is a small pipeline: Readers goroutines pull datagrams
// from the socket into pooled buffers and feed a bounded pool of Workers
// goroutines, which answer on the wire fast path when the Handler offers
// one (WireResponder) and on the Unpack → Respond → AppendPack Message
// path otherwise. Both paths pack and write from pooled buffers; the
// cache-hit fast path allocates nothing per query.
type UDPServer struct {
	Handler Handler
	// Guard, when non-nil, is consulted per datagram before any parse or
	// handler work: rate-limited packets are dropped or answered with a
	// minimal TC=1 slip, and the client's identity rides the query context
	// so the cache-miss breaker downstream can attribute upstream work.
	Guard *guard.Guard
	// BaseContext, when non-nil, parents every query's context; the default
	// is context.Background. UDP is connectionless, so per-query contexts
	// end with the server itself rather than with any one client.
	BaseContext context.Context
	// MaxUDPSize, when non-zero, caps response datagrams below the client's
	// advertised EDNS buffer — the max-udp-size knob production resolvers
	// use on small-MTU paths, where an honest TC=1 (and the RFC 7766 TCP
	// retry it triggers) beats a blackholed oversized datagram. Responses
	// over the cap are truncated. The cap is honored even below RFC 1035's
	// 512-byte default: on a path whose MTU is under 540, rounding the cap
	// up would re-blackhole exactly the responses it exists to save, and
	// the TC=1 referral itself (header + question) stays tiny.
	MaxUDPSize int
	// Readers is the number of goroutines blocked in ReadFrom; 0 means
	// max(2, GOMAXPROCS). Real sockets benefit from several concurrent
	// receivers; every reader reads into a pooled buffer handed off to the
	// workers, never copied.
	Readers int
	// Workers sizes the resident worker pool; 0 means 4×GOMAXPROCS. The
	// pool absorbs the steady state — fast-path hits take microseconds, so
	// a handful of workers serve enormous hit rates with zero goroutine
	// churn. When every worker is busy and the queue is full (a burst of
	// slow queries blocking on upstream or emulated delays), the reader
	// spills the packet to a transient goroutine rather than stalling the
	// socket: slow queries cost a goroutine each, exactly as the
	// goroutine-per-packet design did, while the hot path never does.
	Workers int
	// MaxSpill bounds the transient spill goroutines alive at once; 0
	// means 8×Workers. With the budget exhausted the reader blocks on the
	// work queue instead — socket backpressure beats unbounded goroutine
	// growth when an attack or upstream brownout makes every query slow.
	// Spills are counted in telemetry (dohcost_udp_spills_total).
	MaxSpill int
	// Telemetry, when non-nil, receives one Transaction per parsed query.
	Telemetry *telemetry.Metrics

	// shardStats is installed by ServeBatch: one counter block per shard
	// socket, read by ShardStats while serving runs.
	shardStats atomic.Pointer[[]shardCounters]
}

// packetWriter is the slice of net.PacketConn the response paths need;
// both net.PacketConn and udpio.BatchConn satisfy it.
type packetWriter interface {
	WriteTo(b []byte, addr net.Addr) (int, error)
}

// packet is one received datagram travelling from a reader to a worker,
// carrying its pooled buffer and the conn to answer on. tx, when non-nil,
// is a transaction the reader already began; msgOnly routes straight to
// the Message path (the batch reader already tried — or ruled out — the
// wire fast path before handing off).
type packet struct {
	buf     *[]byte
	n       int
	from    net.Addr
	w       packetWriter
	tx      *telemetry.Transaction
	msgOnly bool
}

// workPool is the bounded worker pool both serve loops dispatch into:
// resident workers for the steady state, a spill budget of transient
// goroutines for slow-query bursts, blocking backpressure beyond that.
type workPool struct {
	s        *UDPServer
	ctx      context.Context
	work     chan packet
	spillSem chan struct{}
	wg       sync.WaitGroup
}

// startWorkers spins up the resident workers and sizes the spill budget.
func (s *UDPServer) startWorkers(ctx context.Context, workers, maxSpill int) *workPool {
	p := &workPool{
		s:        s,
		ctx:      ctx,
		work:     make(chan packet, workers),
		spillSem: make(chan struct{}, maxSpill),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for pkt := range p.work {
				p.serve(pkt)
			}
		}()
	}
	return p
}

// serve answers one packet and reclaims its buffer.
func (p *workPool) serve(pkt packet) {
	if pkt.msgOnly {
		p.s.serveMessage(p.ctx, pkt.w, (*pkt.buf)[:pkt.n], pkt.from, pkt.tx)
	} else {
		p.s.servePacket(p.ctx, pkt.w, (*pkt.buf)[:pkt.n], pkt.from)
	}
	putBuf(pkt.buf)
}

// dispatch hands pkt to a resident worker; when the pool and queue are
// saturated (a burst of slow queries blocking on upstream or emulated
// delays) it spills to a transient goroutine within the spill budget, so
// the socket never head-of-line blocks (UDP's Figure 2 immunity depends
// on it) while goroutine growth stays bounded. Returns whether it
// spilled.
func (p *workPool) dispatch(pkt packet) bool {
	select {
	case p.work <- pkt:
		return false
	default:
	}
	select {
	case p.work <- pkt:
		return false
	case p.spillSem <- struct{}{}:
		p.s.Telemetry.UDPSpill()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() { <-p.spillSem }()
			p.serve(pkt)
		}()
		return true
	}
}

// stop drains the queue and waits for every worker and spill goroutine.
func (p *workPool) stop() {
	close(p.work)
	p.wg.Wait()
}

// poolSizes resolves the Workers/MaxSpill defaults.
func (s *UDPServer) poolSizes() (workers, maxSpill int) {
	workers = s.Workers
	if workers <= 0 {
		workers = 4 * runtime.GOMAXPROCS(0)
	}
	maxSpill = s.MaxSpill
	if maxSpill <= 0 {
		maxSpill = 8 * workers
	}
	return workers, maxSpill
}

// Serve reads queries from pc until it closes. Every in-flight handler's
// context is cancelled when the serve loop exits, which also drains and
// stops the worker pool.
func (s *UDPServer) Serve(pc net.PacketConn) error {
	base := s.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	readers := s.Readers
	if readers <= 0 {
		// Scale receive capacity with the machine: sharded deployments
		// spread readers across sockets, a single socket still benefits
		// from concurrent receivers.
		readers = max(2, runtime.GOMAXPROCS(0))
	}
	workers, maxSpill := s.poolSizes()
	pool := s.startWorkers(ctx, workers, maxSpill)

	var (
		readerWG sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			consecutive := 0
			for {
				buf := getBuf()
				n, from, err := pc.ReadFrom(*buf)
				if err != nil {
					putBuf(buf)
					if errors.Is(err, net.ErrClosed) {
						return
					}
					// Transient read errors (ICMP-induced, momentary
					// resource pressure) must not kill a reader and
					// silently shrink read capacity; retry with a small
					// pause. A reader that gives up closes the socket so
					// its peers unblock and Serve fails fast with the
					// first error instead of limping at reduced capacity
					// (the socket is persistently broken at that point —
					// closing it destroys nothing usable).
					consecutive++
					if consecutive >= maxReadRetries {
						errOnce.Do(func() { firstErr = err; pc.Close() })
						return
					}
					time.Sleep(readRetryPause)
					continue
				}
				consecutive = 0
				pool.dispatch(packet{buf: buf, n: n, from: from, w: pc})
			}
		}()
	}
	readerWG.Wait()
	// Readers are done (socket closed or broken): cancel every in-flight
	// handler context before draining the workers, so shutdown is never
	// held hostage by queries parked on a slow upstream — the property
	// the goroutine-per-packet loop had by returning immediately.
	cancel()
	pool.stop()
	return firstErr
}

// Reader-loop error policy: how many consecutive failed ReadFrom calls a
// reader tolerates (pausing between attempts) before declaring the socket
// dead and shutting the serve loop down.
const (
	maxReadRetries = 100
	readRetryPause = 5 * time.Millisecond
)

// udpLimit derives the response size cap: the client's advertised EDNS
// buffer (RFC 6891) or the classic 512-byte default, further capped by the
// server's own MaxUDPSize policy.
func (s *UDPServer) udpLimit(hasEDNS bool, udpSize uint16) int {
	limit := 512
	if hasEDNS && int(udpSize) > limit {
		limit = int(udpSize)
	}
	if s.MaxUDPSize > 0 && limit > s.MaxUDPSize {
		limit = s.MaxUDPSize
	}
	return limit
}

// servePacket answers one datagram: guard verdict first (drop or slip
// without parsing), then wire fast path, then the Message path, all
// writing from pooled buffers.
func (s *UDPServer) servePacket(ctx context.Context, w packetWriter, pkt []byte, from net.Addr) {
	// Guard and parse run before a Transaction exists, so their spans are
	// timed here and recorded (with slightly negative offsets) once Begin
	// has created the trace; the clock reads happen only when a tracer is
	// actually installed.
	var tGuard, tParse time.Time
	tracing := s.Telemetry.Tracing()
	if s.Guard != nil {
		if tracing {
			tGuard = time.Now()
		}
		if !s.guardAdmitUDP(w, pkt, from) {
			return
		}
	}
	if wr, ok := s.Handler.(WireResponder); ok {
		if tracing {
			tParse = time.Now()
		}
		if q, ok := dnswire.ParseQuery(pkt); ok {
			out := getBuf()
			tx := s.Telemetry.Begin(telemetry.ProtoUDP)
			if tx.Traced() {
				now := time.Now()
				if !tGuard.IsZero() {
					tx.TraceSpanBetween(qtrace.PhaseGuard, tGuard, tParse)
				}
				tx.TraceSpanBetween(qtrace.PhaseParse, tParse, now)
				tx.TraceQuery(&q)
			}
			tc := tx.TraceStart()
			if resp, handled := wr.ServeDNSWire(tx, &q, (*out)[:0], s.udpLimit(q.HasEDNS, q.UDPSize)); handled {
				tx.TraceSpan(qtrace.PhaseCache, tc)
				tw := tx.TraceStart()
				w.WriteTo(resp, from)
				tx.TraceSpan(qtrace.PhaseWrite, tw)
				tx.SetVerdict(telemetry.VerdictOK)
				tx.Finish()
				putBuf(out)
				return
			}
			putBuf(out)
			// Fall through to the Message path with the same transaction.
			s.serveMessage(ctx, w, pkt, from, tx)
			return
		}
	}
	s.serveMessage(ctx, w, pkt, from, nil)
}

// guardAdmitUDP runs the guard's UDP verdict for one datagram. It reports
// whether the packet may proceed to the serve path; limited packets are
// dropped silently or answered with the guard's minimal TC=1 slip.
func (s *UDPServer) guardAdmitUDP(w packetWriter, pkt []byte, from net.Addr) bool {
	key := guard.ClientKey(from)
	switch s.Guard.CheckUDP(key, pkt) {
	case guard.ActionAllow:
		return true
	case guard.ActionSlip:
		out := getBuf()
		if resp, ok := s.Guard.AppendLimited((*out)[:0], pkt, key, guard.ActionSlip); ok {
			w.WriteTo(resp, from)
		}
		putBuf(out)
	}
	return false
}

// serveMessage runs the Unpack → Respond → AppendPack path for one
// datagram, with the truncation and OPT-shedding policy UDP demands. tx
// is the transaction an attempted fast path already began, or nil to
// begin one here; serveMessage finishes it either way.
func (s *UDPServer) serveMessage(ctx context.Context, w packetWriter, pkt []byte, from net.Addr, tx *telemetry.Transaction) {
	out := getBuf()
	defer putBuf(out)
	var tParse time.Time
	if tx == nil && s.Telemetry.Tracing() {
		tParse = time.Now()
	}
	var q dnswire.Message
	if err := q.Unpack(pkt); err != nil {
		// Drop unparseable datagrams, like real servers. ParseQuery is
		// strictly narrower than Unpack, so a fast-parse success cannot
		// leave an open transaction here — but close one defensively.
		if tx != nil {
			tx.SetVerdict(telemetry.VerdictServFail)
			tx.Finish()
		}
		return
	}
	if tx == nil {
		tx = s.Telemetry.Begin(telemetry.ProtoUDP)
		tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
	}
	if tx.Traced() && len(q.Questions) > 0 {
		tx.TraceQueryName(string(q.Questions[0].Name.Canonical()), uint16(q.Questions[0].Type))
	}
	defer tx.Finish()
	ctx = telemetry.NewContext(ctx, tx)
	var gkey uint64
	if s.Guard != nil {
		// Attribute downstream work (the cache-miss breaker) to the client.
		gkey = guard.ClientKey(from)
		ctx = guard.NewContext(ctx, gkey)
	}
	resp := Respond(ctx, s.Handler, &q)
	if s.Guard != nil {
		// Echo a DNS cookie so the client can earn the rate-limit bypass.
		// Cached entries share their EDNS between clones, so attach to a
		// fresh one instead of mutating in place.
		if data, ok := s.Guard.ServerCookie(nil, pkt, gkey); ok {
			e := &dnswire.EDNS{UDPSize: 1232}
			if resp.EDNS != nil {
				cp := *resp.EDNS
				cp.Options = append([]dnswire.EDNS0Option(nil), resp.EDNS.Options...)
				e = &cp
			}
			e.Options = append(e.Options, dnswire.EDNS0Option{Code: guard.EDNS0CookieCode, Data: data})
			resp.EDNS = e
		}
	}
	wire, err := resp.AppendPack((*out)[:0])
	if err != nil {
		// The client receives nothing; don't let Respond's ok verdict
		// stand for a reply that never left.
		tx.SetVerdict(telemetry.VerdictServFail)
		return
	}
	var udpSize uint16
	if q.EDNS != nil {
		udpSize = q.EDNS.UDPSize
	}
	limit := s.udpLimit(q.EDNS != nil, udpSize)
	if len(wire) > limit {
		trunc := *resp
		trunc.Truncated = true
		trunc.Answers, trunc.Authorities, trunc.Additionals = nil, nil, nil
		if wire, err = trunc.AppendPack((*out)[:0]); err != nil {
			tx.SetVerdict(telemetry.VerdictServFail)
			return
		}
		if len(wire) > limit && trunc.EDNS != nil {
			// On aggressive MaxUDPSize caps a long QNAME can push even the
			// referral over the limit; the OPT record is the only thing
			// left to shed (header + question cannot shrink further).
			trunc.EDNS = nil
			if wire, err = trunc.AppendPack((*out)[:0]); err != nil {
				tx.SetVerdict(telemetry.VerdictServFail)
				return
			}
		}
	}
	tw := tx.TraceStart()
	w.WriteTo(wire, from)
	tx.TraceSpan(qtrace.PhaseWrite, tw)
}

// StreamServer serves DNS with two-octet length framing (RFC 1035 §4.2.2)
// over any stream transport: raw TCP, or TLS for DoT.
//
// OutOfOrder selects the reply scheduling the DoT RFC merely recommends:
// when false the server handles one query at a time per connection, so a
// slow query blocks every reply behind it (the paper found only Cloudflare
// implemented out-of-order responses, and identifies this serialization as
// a key reason DoT underperforms).
//
// Like the UDP server, a Handler that implements WireResponder gets the
// wire fast path: cache hits are answered inline from the read loop —
// packed bytes behind a length prefix in one pooled write — before slower
// queries are (with OutOfOrder) dispatched to their own goroutines.
type StreamServer struct {
	Handler    Handler
	OutOfOrder bool
	// Guard, when non-nil, rate-limits queries per client. Stream sources
	// are proven by the connection handshake, so over-limit queries get an
	// honest REFUSED (never the UDP path's silent drop or TC slip).
	Guard *guard.Guard
	// Proto labels this listener's transactions; the zero value is
	// telemetry.ProtoTCP, and the DoT accept loop sets ProtoDoT.
	Proto telemetry.Proto
	// Telemetry, when non-nil, receives one Transaction per framed query.
	Telemetry *telemetry.Metrics
}

// Serve accepts connections until the listener closes.
func (s *StreamServer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn handles one connection until EOF. Every query's context is
// derived from the connection's lifetime: when the connection closes (or
// the serve loop exits on a protocol error), outstanding handlers are
// cancelled so abandoned queries stop consuming resolver work.
func (s *StreamServer) ServeConn(conn net.Conn) error {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writeMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	rbuf := getBuf()
	defer putBuf(rbuf)
	wr, fast := s.Handler.(WireResponder)
	var gkey uint64
	if s.Guard != nil {
		gkey = guard.ClientKey(conn.RemoteAddr())
		ctx = guard.NewContext(ctx, gkey)
	}
	for {
		wire, err := readStreamMessageInto(conn, (*rbuf)[:dnswire.MaxMessageLen])
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if s.Guard != nil && s.Guard.CheckStream(gkey) == guard.ActionRefuse {
			if err := s.writeRefusal(conn, &writeMu, wire, gkey); err != nil {
				return err
			}
			continue
		}
		var tx *telemetry.Transaction
		var tParse time.Time
		if s.Telemetry.Tracing() {
			tParse = time.Now()
		}
		if fast {
			if q, ok := dnswire.ParseQuery(wire); ok {
				tx = s.Telemetry.Begin(s.Proto)
				if tx.Traced() {
					tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
					tx.TraceQuery(&q)
				}
				handled, err := s.answerWire(conn, &writeMu, wr, tx, &q)
				if handled {
					if err != nil {
						return err
					}
					continue
				}
				// Unhandled: the Message path below reuses the transaction.
			}
		}
		var q dnswire.Message
		if err := q.Unpack(wire); err != nil {
			if tx != nil {
				tx.SetVerdict(telemetry.VerdictServFail)
				tx.Finish()
			}
			return fmt.Errorf("dnsserver: bad query on stream: %w", err)
		}
		if s.OutOfOrder {
			qc := q // copy; the loop reuses nothing, Unpack reallocated slices
			txc := tx
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.answerStream(ctx, conn, &writeMu, &qc, txc)
			}()
			continue
		}
		if err := s.answerStream(ctx, conn, &writeMu, &q, tx); err != nil {
			return err
		}
	}
}

// writeRefusal frames and writes the guard's minimal REFUSED response for
// one rate-limited stream query; un-echoable queries get nothing (the
// connection stays up — stream framing is intact, only this query was
// malformed past the question).
func (s *StreamServer) writeRefusal(conn net.Conn, writeMu *sync.Mutex, wire []byte, gkey uint64) error {
	out := getBuf()
	defer putBuf(out)
	resp, ok := s.Guard.AppendLimited((*out)[2:2], wire, gkey, guard.ActionRefuse)
	if !ok || len(resp) > dnswire.MaxMessageLen {
		return nil
	}
	if &resp[0] != &(*out)[2] {
		resp = append((*out)[2:2], resp...)
	}
	frame := (*out)[:2+len(resp)]
	binary.BigEndian.PutUint16(frame, uint16(len(resp)))
	writeMu.Lock()
	defer writeMu.Unlock()
	_, err := conn.Write(frame)
	return err
}

// answerWire serves one query on the wire fast path: the response is
// appended behind a two-octet length prefix in a pooled buffer and written
// in one flight. handled=false leaves the connection untouched (and tx
// unfinished) for the Message path.
func (s *StreamServer) answerWire(conn net.Conn, writeMu *sync.Mutex, wr WireResponder, tx *telemetry.Transaction, q *dnswire.Query) (bool, error) {
	out := getBuf()
	tc := tx.TraceStart()
	resp, handled := wr.ServeDNSWire(tx, q, (*out)[2:2], dnswire.MaxMessageLen)
	if !handled || len(resp) < 12 /* DNS header */ || len(resp) > dnswire.MaxMessageLen {
		putBuf(out)
		return false, nil
	}
	tx.TraceSpan(qtrace.PhaseCache, tc)
	if &resp[0] != &(*out)[2] {
		// The responder reallocated (or returned its own storage); fold
		// the bytes back behind the prefix — cap suffices, resp fits.
		resp = append((*out)[2:2], resp...)
	}
	frame := (*out)[:2+len(resp)]
	binary.BigEndian.PutUint16(frame, uint16(len(resp)))
	tw := tx.TraceStart()
	writeMu.Lock()
	_, err := conn.Write(frame)
	writeMu.Unlock()
	tx.TraceSpan(qtrace.PhaseWrite, tw)
	putBuf(out)
	tx.SetVerdict(telemetry.VerdictOK)
	tx.Finish()
	return true, err
}

// answerStream runs the Message path for one query. tx is the transaction
// an attempted fast path already began, or nil to begin one here.
func (s *StreamServer) answerStream(ctx context.Context, conn net.Conn, writeMu *sync.Mutex, q *dnswire.Message, tx *telemetry.Transaction) error {
	if tx == nil {
		tx = s.Telemetry.Begin(s.Proto)
	}
	if tx.Traced() && len(q.Questions) > 0 {
		tx.TraceQueryName(string(q.Questions[0].Name.Canonical()), uint16(q.Questions[0].Type))
	}
	defer tx.Finish()
	ctx = telemetry.NewContext(ctx, tx)
	resp := Respond(ctx, s.Handler, q)
	out := getBuf()
	defer putBuf(out)
	// Pack directly behind the length prefix (AppendPack keeps compression
	// pointers message-relative) so the reply leaves in one pooled write.
	buf, err := resp.AppendPack((*out)[:2])
	if err != nil {
		// The connection is being torn down without this reply; the
		// verdict must not read ok.
		tx.SetVerdict(telemetry.VerdictServFail)
		return err
	}
	binary.BigEndian.PutUint16(buf, uint16(len(buf)-2))
	tw := tx.TraceStart()
	writeMu.Lock()
	defer writeMu.Unlock()
	_, err = conn.Write(buf)
	tx.TraceSpan(qtrace.PhaseWrite, tw)
	return err
}

// ReadStreamMessage reads one length-prefixed DNS message.
func ReadStreamMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// readStreamMessageInto reads one length-prefixed DNS message into buf,
// which must hold dnswire.MaxMessageLen bytes — the pooled no-allocation
// variant of ReadStreamMessage used by the serving loop.
func readStreamMessageInto(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := buf[:binary.BigEndian.Uint16(lenBuf[:])]
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// WriteStreamMessage writes one length-prefixed DNS message as a single
// flight. The frame is assembled in a pooled buffer, not allocated per
// write.
func WriteStreamMessage(w io.Writer, msg []byte) error {
	if len(msg) > dnswire.MaxMessageLen {
		return dnswire.ErrMessageTooLarge
	}
	out := getBuf()
	defer putBuf(out)
	buf := (*out)[:2+len(msg)]
	binary.BigEndian.PutUint16(buf, uint16(len(msg)))
	copy(buf[2:], msg)
	_, err := w.Write(buf)
	return err
}

// Server bundles one resolver deployment: the same handler reachable over
// UDP (:53), TCP (:53), DoT (:853) and DoH (:443), the way the public
// providers in Table 1 deploy theirs.
type Server struct {
	Handler Handler
	// Guard, when non-nil, is the deployment's shared abuse-resilience
	// layer: every listener consults it, so a client's budget spans
	// transports (see internal/guard).
	Guard *guard.Guard
	// Chain supplies TLS material for DoT and DoH; nil disables both.
	Chain *tlsx.Chain
	// TLSMin/TLSMax bound the offered protocol versions (zero = 1.2/1.3).
	TLSMin, TLSMax uint16
	// DoTOutOfOrder enables Cloudflare-style reply scheduling on DoT.
	DoTOutOfOrder bool
	// Endpoints configures the DoH paths and content types; nil serves
	// the RFC-default wireformat endpoint at /dns-query.
	Endpoints []Endpoint
	// DisableDoT drops the :853 listener (several Table 1 providers do
	// not run DoT).
	DisableDoT bool
	// HTTP1Only forces the DoH listener to negotiate only http/1.1 —
	// used by the transport-comparison experiment.
	HTTP1Only bool
	// AltSvc is attached to successful DoH responses (QUIC advertisement).
	AltSvc string
	// DoHProcessing models HTTPS frontend per-request latency; see
	// DoH.Processing.
	DoHProcessing time.Duration
	// DoHHandler, when non-nil, answers DoH queries instead of Handler —
	// providers that pad encrypted responses (RFC 8467) but not classic
	// UDP/TCP need the split.
	DoHHandler Handler
	// MaxUDPSize caps UDP response datagrams regardless of the client's
	// EDNS buffer (see UDPServer.MaxUDPSize); zero applies no cap.
	MaxUDPSize int
	// UDPReaders/UDPWorkers tune the UDP listener's reader and worker
	// pools (see UDPServer.Readers/Workers); zero uses the defaults.
	UDPReaders, UDPWorkers int
	// UDPBatch, when positive, serves the UDP listener with the batched
	// loop (UDPServer.ServeBatch) at that vector size — one kernel batch
	// read/write per wakeup where the platform supports it, the portable
	// per-packet fallback elsewhere. Zero keeps the per-packet Serve.
	UDPBatch int
	// Telemetry, when non-nil, is propagated to every listener so each
	// query produces one cost Transaction (see internal/telemetry).
	Telemetry *telemetry.Metrics
}

// Running tracks a started Server's listeners.
type Running struct {
	Host    string
	closers []io.Closer
	wg      sync.WaitGroup
	udp     *UDPServer
}

// UDPShardStats snapshots the UDP listener's per-shard batch counters;
// nil when the listener runs the per-packet loop.
func (r *Running) UDPShardStats() []UDPShardStats {
	if r.udp == nil {
		return nil
	}
	return r.udp.ShardStats()
}

// Close shuts down all listeners and waits for serving loops.
func (r *Running) Close() {
	for _, c := range r.closers {
		c.Close()
	}
	r.wg.Wait()
}

// Start brings the deployment up on a simulated network host. Ports follow
// convention: UDP/TCP 53, DoT 853, DoH 443.
func (s *Server) Start(n *netsim.Network, host string) (*Running, error) {
	r := &Running{Host: host}

	pc, err := n.ListenPacket(host + ":53")
	if err != nil {
		return nil, err
	}
	r.closers = append(r.closers, pc)
	udp := &UDPServer{
		Handler:    s.Handler,
		Guard:      s.Guard,
		MaxUDPSize: s.MaxUDPSize,
		Readers:    s.UDPReaders,
		Workers:    s.UDPWorkers,
		Telemetry:  s.Telemetry,
	}
	r.udp = udp
	r.wg.Add(1)
	if s.UDPBatch > 0 {
		conn := udpio.Wrap(pc)
		go func() { defer r.wg.Done(); udp.ServeBatch([]udpio.BatchConn{conn}, s.UDPBatch) }()
	} else {
		go func() { defer r.wg.Done(); udp.Serve(pc) }()
	}

	tcpL, err := n.Listen(host + ":53")
	if err != nil {
		r.Close()
		return nil, err
	}
	r.closers = append(r.closers, tcpL)
	tcp := &StreamServer{Handler: s.Handler, OutOfOrder: s.DoTOutOfOrder, Guard: s.Guard, Telemetry: s.Telemetry}
	r.wg.Add(1)
	go func() { defer r.wg.Done(); tcp.Serve(tcpL) }()

	if s.Chain == nil {
		return r, nil
	}

	if !s.DisableDoT {
		dotL, err := n.Listen(host + ":853")
		if err != nil {
			r.Close()
			return nil, err
		}
		r.closers = append(r.closers, dotL)
		dot := &StreamServer{Handler: s.Handler, OutOfOrder: s.DoTOutOfOrder, Proto: telemetry.ProtoDoT, Guard: s.Guard, Telemetry: s.Telemetry}
		cfg := s.Chain.ServerConfig(s.TLSMin, s.TLSMax)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				conn, err := dotL.Accept()
				if err != nil {
					return
				}
				go dot.ServeConn(tls.Server(conn, cfg))
			}
		}()
	}

	dohL, err := n.Listen(host + ":443")
	if err != nil {
		r.Close()
		return nil, err
	}
	r.closers = append(r.closers, dohL)
	dohHandler := s.DoHHandler
	if dohHandler == nil {
		dohHandler = s.Handler
	}
	doh := &DoH{Handler: dohHandler, Endpoints: s.Endpoints, AltSvc: s.AltSvc, Processing: s.DoHProcessing, Guard: s.Guard, Telemetry: s.Telemetry}
	protos := []string{"h2", "http/1.1"}
	if s.HTTP1Only {
		protos = []string{"http/1.1"}
	}
	cfg := s.Chain.ServerConfig(s.TLSMin, s.TLSMax, protos...)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			conn, err := dohL.Accept()
			if err != nil {
				return
			}
			go func() {
				tc := tls.Server(conn, cfg)
				if err := tc.Handshake(); err != nil {
					tc.Close()
					return
				}
				// Bind per connection: DNS handler contexts end when this
				// HTTPS connection does.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				if s.Guard != nil {
					// The client's guard identity rides the connection
					// context into every DoH query it carries.
					ctx = guard.NewContext(ctx, guard.ClientKey(conn.RemoteAddr()))
				}
				h2h, h1h := doh.Bind(ctx)
				switch tc.ConnectionState().NegotiatedProtocol {
				case "h2":
					(&h2.Server{Handler: h2h}).ServeConn(tc)
				default:
					(&h1.Server{Handler: h1h}).ServeConn(tc)
				}
			}()
		}
	}()
	return r, nil
}

// Package hpack implements HPACK header compression (RFC 7541) for this
// repository's HTTP/2 stack: static and dynamic tables, Huffman string
// coding, and the integer primitives. The paper's Figure 5 shows how
// HTTP/2's differential header transmission — subsequent requests index
// fields the dynamic table already holds — shrinks the per-request "Hdr"
// layer on persistent DoH connections; the Encoder here is what produces
// that effect, and its dynamic table can be disabled for the ablation bench.
package hpack

import (
	"errors"
	"fmt"
)

// DefaultMaxDynamicTableSize is the SETTINGS_HEADER_TABLE_SIZE default.
const DefaultMaxDynamicTableSize = 4096

// Encoder compresses header lists. Not safe for concurrent use; HTTP/2
// serializes HEADERS frames per connection, which provides the ordering
// HPACK requires.
type Encoder struct {
	table dynamicTable
	// DisableHuffman turns off string compression (literals go raw).
	DisableHuffman bool
	// DisableDynamic stops the encoder from inserting entries into the
	// dynamic table, so every request is encoded from scratch — the
	// "no differential headers" ablation.
	DisableDynamic bool

	pendingSizeUpdate bool
	newMaxSize        int
}

// NewEncoder returns an encoder with the default table size.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.table.setMaxSize(DefaultMaxDynamicTableSize)
	return e
}

// SetMaxDynamicTableSize schedules a table-size update, emitted at the start
// of the next header block as the protocol requires.
func (e *Encoder) SetMaxDynamicTableSize(n int) {
	e.pendingSizeUpdate = true
	e.newMaxSize = n
}

// AppendEncode appends the HPACK encoding of fields to dst.
func (e *Encoder) AppendEncode(dst []byte, fields []HeaderField) []byte {
	if e.pendingSizeUpdate {
		e.pendingSizeUpdate = false
		e.table.setMaxSize(e.newMaxSize)
		dst = appendInteger(dst, 0x20, 5, uint64(e.newMaxSize))
	}
	for _, f := range fields {
		dst = e.appendField(dst, f)
	}
	return dst
}

func (e *Encoder) appendField(dst []byte, f HeaderField) []byte {
	if f.Sensitive {
		// Never-indexed literal (prefix 0001).
		idx, _ := e.table.lookup(HeaderField{Name: f.Name})
		dst = appendInteger(dst, 0x10, 4, uint64(idx))
		if idx == 0 {
			dst = e.appendString(dst, f.Name)
		}
		return e.appendString(dst, f.Value)
	}
	idx, full := e.table.lookup(f)
	if full {
		// Indexed representation (prefix 1).
		return appendInteger(dst, 0x80, 7, uint64(idx))
	}
	if e.DisableDynamic {
		// Literal without indexing (prefix 0000).
		dst = appendInteger(dst, 0x00, 4, uint64(idx))
		if idx == 0 {
			dst = e.appendString(dst, f.Name)
		}
		return e.appendString(dst, f.Value)
	}
	// Literal with incremental indexing (prefix 01).
	dst = appendInteger(dst, 0x40, 6, uint64(idx))
	if idx == 0 {
		dst = e.appendString(dst, f.Name)
	}
	dst = e.appendString(dst, f.Value)
	e.table.add(f)
	return dst
}

// appendString emits a length-prefixed string, Huffman-coded when that is
// strictly smaller (matching common implementations).
func (e *Encoder) appendString(dst []byte, s string) []byte {
	if !e.DisableHuffman {
		if hl := HuffmanEncodeLength(s); hl < len(s) {
			dst = appendInteger(dst, 0x80, 7, uint64(hl))
			return AppendHuffmanEncode(dst, s)
		}
	}
	dst = appendInteger(dst, 0x00, 7, uint64(len(s)))
	return append(dst, s...)
}

// appendInteger emits the RFC 7541 §5.1 prefixed integer: pattern carries
// the representation bits above an n-bit prefix.
func appendInteger(dst []byte, pattern byte, prefixBits uint, v uint64) []byte {
	maxPrefix := uint64(1)<<prefixBits - 1
	if v < maxPrefix {
		return append(dst, pattern|byte(v))
	}
	dst = append(dst, pattern|byte(maxPrefix))
	v -= maxPrefix
	for v >= 128 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Decoding errors.
var (
	ErrInvalidIndex    = errors.New("hpack: invalid table index")
	ErrIntegerOverflow = errors.New("hpack: integer overflow")
	ErrTruncated       = errors.New("hpack: truncated header block")
	ErrTableSizeBound  = errors.New("hpack: table size update above bound")
)

// Decoder decompresses header blocks. Not safe for concurrent use.
type Decoder struct {
	table dynamicTable
	// maxAllowedTableSize bounds size updates, per the connection's
	// SETTINGS_HEADER_TABLE_SIZE.
	maxAllowedTableSize int
}

// NewDecoder returns a decoder with the default table size.
func NewDecoder() *Decoder {
	d := &Decoder{maxAllowedTableSize: DefaultMaxDynamicTableSize}
	d.table.setMaxSize(DefaultMaxDynamicTableSize)
	return d
}

// SetMaxAllowedTableSize adjusts the ceiling the peer may raise its encoder
// table to (from our SETTINGS).
func (d *Decoder) SetMaxAllowedTableSize(n int) { d.maxAllowedTableSize = n }

// Decode parses one complete header block.
func (d *Decoder) Decode(data []byte) ([]HeaderField, error) {
	var fields []HeaderField
	for len(data) > 0 {
		b := data[0]
		switch {
		case b&0x80 != 0: // indexed
			idx, rest, err := readInteger(data, 7)
			if err != nil {
				return nil, err
			}
			data = rest
			f, ok := d.table.at(int(idx))
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrInvalidIndex, idx)
			}
			fields = append(fields, f)
		case b&0xC0 == 0x40: // literal with incremental indexing
			f, rest, err := d.readLiteral(data, 6)
			if err != nil {
				return nil, err
			}
			data = rest
			d.table.add(f)
			fields = append(fields, f)
		case b&0xE0 == 0x20: // dynamic table size update
			size, rest, err := readInteger(data, 5)
			if err != nil {
				return nil, err
			}
			if int(size) > d.maxAllowedTableSize {
				return nil, ErrTableSizeBound
			}
			d.table.setMaxSize(int(size))
			data = rest
		case b&0xF0 == 0x10: // never-indexed literal
			f, rest, err := d.readLiteral(data, 4)
			if err != nil {
				return nil, err
			}
			f.Sensitive = true
			data = rest
			fields = append(fields, f)
		default: // 0000: literal without indexing
			f, rest, err := d.readLiteral(data, 4)
			if err != nil {
				return nil, err
			}
			data = rest
			fields = append(fields, f)
		}
	}
	return fields, nil
}

func (d *Decoder) readLiteral(data []byte, prefixBits uint) (HeaderField, []byte, error) {
	idx, rest, err := readInteger(data, prefixBits)
	if err != nil {
		return HeaderField{}, nil, err
	}
	data = rest
	var f HeaderField
	if idx > 0 {
		e, ok := d.table.at(int(idx))
		if !ok {
			return HeaderField{}, nil, fmt.Errorf("%w: %d", ErrInvalidIndex, idx)
		}
		f.Name = e.Name
	} else {
		f.Name, data, err = readString(data)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, data, err = readString(data)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, data, nil
}

func readInteger(data []byte, prefixBits uint) (uint64, []byte, error) {
	if len(data) == 0 {
		return 0, nil, ErrTruncated
	}
	maxPrefix := uint64(1)<<prefixBits - 1
	v := uint64(data[0]) & maxPrefix
	data = data[1:]
	if v < maxPrefix {
		return v, data, nil
	}
	var shift uint
	for i := 0; ; i++ {
		if i >= len(data) {
			return 0, nil, ErrTruncated
		}
		if shift > 56 {
			return 0, nil, ErrIntegerOverflow
		}
		b := data[i]
		v += uint64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			return v, data[i+1:], nil
		}
	}
}

func readString(data []byte) (string, []byte, error) {
	if len(data) == 0 {
		return "", nil, ErrTruncated
	}
	huff := data[0]&0x80 != 0
	n, rest, err := readInteger(data, 7)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrTruncated
	}
	raw := rest[:n]
	rest = rest[n:]
	if !huff {
		return string(raw), rest, nil
	}
	s, err := HuffmanDecode(raw)
	if err != nil {
		return "", nil, err
	}
	return s, rest, nil
}

// EncodedSize returns the bytes AppendEncode would emit for fields right
// now, without mutating encoder state. It drives header-cost projections in
// the overhead experiments.
func (e *Encoder) EncodedSize(fields []HeaderField) int {
	clone := &Encoder{
		table: dynamicTable{
			entries: append([]HeaderField(nil), e.table.entries...),
			size:    e.table.size,
			maxSize: e.table.maxSize,
		},
		DisableHuffman:    e.DisableHuffman,
		DisableDynamic:    e.DisableDynamic,
		pendingSizeUpdate: e.pendingSizeUpdate,
		newMaxSize:        e.newMaxSize,
	}
	return len(clone.AppendEncode(nil, fields))
}

package hpack

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// RFC 7541 Appendix C.4.1: "www.example.com" Huffman-encodes to these bytes.
func TestHuffmanGoldenRFC(t *testing.T) {
	got := AppendHuffmanEncode(nil, "www.example.com")
	want := []byte{0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff}
	if !bytes.Equal(got, want) {
		t.Errorf("huffman(www.example.com):\n got %x\nwant %x", got, want)
	}
	if HuffmanEncodeLength("www.example.com") != len(want) {
		t.Error("HuffmanEncodeLength mismatch")
	}
}

// RFC 7541 Appendix C.4.2: "no-cache" → a8eb 1064 9cbf.
func TestHuffmanGoldenNoCache(t *testing.T) {
	got := AppendHuffmanEncode(nil, "no-cache")
	want := []byte{0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf}
	if !bytes.Equal(got, want) {
		t.Errorf("huffman(no-cache):\n got %x\nwant %x", got, want)
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		enc := AppendHuffmanEncode(nil, s)
		dec, err := HuffmanDecode(enc)
		return err == nil && dec == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanDecodeRejectsBadPadding(t *testing.T) {
	// '0' encodes as 00000 (5 bits); pad with zeros instead of ones.
	bad := []byte{0x00} // 00000 000 — padding bits are zeros
	if _, err := HuffmanDecode(bad); !errors.Is(err, ErrHuffmanPadding) {
		t.Errorf("zero padding: err = %v", err)
	}
	// 8+ bits of EOS prefix (a full 0xFF byte after a symbol-free start) is
	// over-long padding.
	if _, err := HuffmanDecode([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("30-bit EOS accepted")
	}
}

func TestIntegerGoldenRFC(t *testing.T) {
	// C.1.1: encode 10 with 5-bit prefix → 0x0a.
	if got := appendInteger(nil, 0, 5, 10); !bytes.Equal(got, []byte{0x0a}) {
		t.Errorf("encode 10/5 = %x", got)
	}
	// C.1.2: 1337 with 5-bit prefix → 1f 9a 0a.
	if got := appendInteger(nil, 0, 5, 1337); !bytes.Equal(got, []byte{0x1f, 0x9a, 0x0a}) {
		t.Errorf("encode 1337/5 = %x", got)
	}
	// C.1.3: 42 with 8-bit prefix → 2a.
	if got := appendInteger(nil, 0, 8, 42); !bytes.Equal(got, []byte{0x2a}) {
		t.Errorf("encode 42/8 = %x", got)
	}
	v, rest, err := readInteger([]byte{0x1f, 0x9a, 0x0a}, 5)
	if err != nil || v != 1337 || len(rest) != 0 {
		t.Errorf("decode 1337: %d %v %v", v, rest, err)
	}
}

func TestIntegerRoundTripProperty(t *testing.T) {
	f := func(v uint32, prefix uint8) bool {
		p := uint(prefix%8) + 1
		enc := appendInteger(nil, 0, p, uint64(v))
		got, rest, err := readInteger(enc, p)
		return err == nil && got == uint64(v) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntegerDecodeErrors(t *testing.T) {
	if _, _, err := readInteger(nil, 5); !errors.Is(err, ErrTruncated) {
		t.Error("empty input")
	}
	if _, _, err := readInteger([]byte{0x1f, 0x80}, 5); !errors.Is(err, ErrTruncated) {
		t.Error("unterminated continuation")
	}
	over := []byte{0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readInteger(over, 5); !errors.Is(err, ErrIntegerOverflow) {
		t.Error("overflow not detected")
	}
}

// RFC 7541 C.2.1: literal with indexing, custom-key: custom-header.
func TestLiteralWithIndexingGolden(t *testing.T) {
	e := NewEncoder()
	e.DisableHuffman = true
	got := e.AppendEncode(nil, []HeaderField{{Name: "custom-key", Value: "custom-header"}})
	want := append([]byte{0x40, 0x0a}, "custom-key"...)
	want = append(want, 0x0d)
	want = append(want, "custom-header"...)
	if !bytes.Equal(got, want) {
		t.Errorf("encoding:\n got %x\nwant %x", got, want)
	}
	d := NewDecoder()
	fields, err := d.Decode(got)
	if err != nil || len(fields) != 1 || fields[0].Name != "custom-key" || fields[0].Value != "custom-header" {
		t.Errorf("decode = %v, %v", fields, err)
	}
	// The entry is now in the decoder's dynamic table at index 62.
	f, ok := d.table.at(62)
	if !ok || f.Name != "custom-key" {
		t.Errorf("dynamic table entry = %v %v", f, ok)
	}
}

// RFC 7541 C.2.4: fully indexed :method GET is the single byte 0x82.
func TestIndexedStaticGolden(t *testing.T) {
	e := NewEncoder()
	got := e.AppendEncode(nil, []HeaderField{{Name: ":method", Value: "GET"}})
	if !bytes.Equal(got, []byte{0x82}) {
		t.Errorf("encoding = %x, want 82", got)
	}
}

func requestFields(path string) []HeaderField {
	return []HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "cloudflare-dns.com"},
		{Name: ":path", Value: path},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-length", Value: "33"},
	}
}

func TestDifferentialHeadersShrink(t *testing.T) {
	e := NewEncoder()
	first := len(e.AppendEncode(nil, requestFields("/dns-query")))
	second := len(e.AppendEncode(nil, requestFields("/dns-query")))
	if second >= first {
		t.Errorf("second request (%dB) not smaller than first (%dB)", second, first)
	}
	// Everything indexable is indexed: the repeat encoding should be tiny
	// (one byte per field).
	if second > len(requestFields(""))+3 {
		t.Errorf("differential encoding = %dB, want near-minimal", second)
	}
}

func TestDisableDynamicAblation(t *testing.T) {
	e := NewEncoder()
	e.DisableDynamic = true
	first := len(e.AppendEncode(nil, requestFields("/dns-query")))
	second := len(e.AppendEncode(nil, requestFields("/dns-query")))
	if first != second {
		t.Errorf("static-only encoder not stateless: %d then %d", first, second)
	}
	// And both decode correctly without dynamic entries.
	d := NewDecoder()
	enc := e.AppendEncode(nil, requestFields("/dns-query"))
	fields, err := d.Decode(enc)
	if err != nil || len(fields) != 7 {
		t.Fatalf("decode = %v, %v", fields, err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	// Three requests over one connection, mixed with a response block.
	blocks := [][]HeaderField{
		requestFields("/dns-query"),
		requestFields("/dns-query"),
		{{Name: ":status", Value: "200"}, {Name: "content-type", Value: "application/dns-message"}},
		requestFields("/other-path"),
	}
	for i, fields := range blocks {
		enc := e.AppendEncode(nil, fields)
		got, err := d.Decode(enc)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("block %d:\n got %v\nwant %v", i, got, fields)
		}
	}
}

func TestSensitiveNeverIndexed(t *testing.T) {
	e := NewEncoder()
	f := HeaderField{Name: "authorization", Value: "secret-token", Sensitive: true}
	enc := e.AppendEncode(nil, []HeaderField{f})
	if enc[0]&0xF0 != 0x10 {
		t.Errorf("first byte %#x, want never-indexed prefix 0001", enc[0])
	}
	// Encoding again must not have learned the value.
	enc2 := e.AppendEncode(nil, []HeaderField{f})
	if len(enc2) != len(enc) {
		t.Error("sensitive value was indexed")
	}
	d := NewDecoder()
	got, err := d.Decode(enc)
	if err != nil || !got[0].Sensitive || got[0].Value != "secret-token" {
		t.Errorf("decode = %+v, %v", got, err)
	}
}

func TestTableSizeUpdate(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	// Warm the tables.
	blk := e.AppendEncode(nil, requestFields("/dns-query"))
	if _, err := d.Decode(blk); err != nil {
		t.Fatal(err)
	}
	// Shrinking to zero evicts everything and emits an update.
	e.SetMaxDynamicTableSize(0)
	blk = e.AppendEncode(nil, []HeaderField{{Name: ":method", Value: "GET"}})
	if blk[0]&0xE0 != 0x20 {
		t.Errorf("first byte %#x, want size-update prefix 001", blk[0])
	}
	if _, err := d.Decode(blk); err != nil {
		t.Fatal(err)
	}
	if len(d.table.entries) != 0 {
		t.Error("decoder table not flushed")
	}
	// An update above the allowed bound is a protocol error.
	d2 := NewDecoder()
	d2.SetMaxAllowedTableSize(100)
	e2 := NewEncoder()
	e2.SetMaxDynamicTableSize(4096)
	blk2 := e2.AppendEncode(nil, nil)
	if _, err := d2.Decode(blk2); !errors.Is(err, ErrTableSizeBound) {
		t.Errorf("oversize update: err = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := NewDecoder()
	if _, err := d.Decode([]byte{0xFF, 0xEA, 0x7F}); !errors.Is(err, ErrInvalidIndex) {
		t.Errorf("huge index: %v", err)
	}
	if _, err := d.Decode([]byte{0x40, 0x0a, 'x'}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated literal: %v", err)
	}
	if _, err := d.Decode([]byte{0x80}); err == nil {
		t.Error("index 0 accepted")
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	d := NewDecoder()
	f := func(data []byte) bool {
		_, _ = d.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEvictionBoundsTable(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	// Insert far more than 4096 bytes of distinct entries.
	for i := 0; i < 300; i++ {
		f := []HeaderField{{Name: "x-header-" + strings.Repeat("a", i%40), Value: strings.Repeat("v", 30)}}
		blk := e.AppendEncode(nil, f)
		if _, err := d.Decode(blk); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if e.table.size > e.table.maxSize || d.table.size > d.table.maxSize {
		t.Errorf("table exceeded bound: enc=%d dec=%d", e.table.size, d.table.size)
	}
}

func TestEncodedSizeDoesNotMutate(t *testing.T) {
	e := NewEncoder()
	fields := requestFields("/dns-query")
	sz := e.EncodedSize(fields)
	real := len(e.AppendEncode(nil, fields))
	if sz != real {
		t.Errorf("EncodedSize = %d, actual = %d", sz, real)
	}
	// First actual encode should still be "first" (table untouched by the
	// size probe): a second probe now must be smaller.
	if e.EncodedSize(fields) >= sz {
		t.Error("EncodedSize probe mutated encoder state")
	}
}

func TestStaticTableLookups(t *testing.T) {
	var tbl dynamicTable
	f, ok := tbl.at(2)
	if !ok || f.Name != ":method" || f.Value != "GET" {
		t.Errorf("static[2] = %v", f)
	}
	if _, ok := tbl.at(62); ok {
		t.Error("empty dynamic table had an entry")
	}
	if _, ok := tbl.at(0); ok {
		t.Error("index 0 resolved")
	}
	idx, full := tbl.lookup(HeaderField{Name: "content-type", Value: "nope"})
	if full || idx != 31 {
		t.Errorf("name-only lookup = %d %v", idx, full)
	}
}

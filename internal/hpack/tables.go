package hpack

// HeaderField is one (name, value) pair. Sensitive fields are encoded as
// never-indexed literals so intermediaries must not remember them.
type HeaderField struct {
	Name      string
	Value     string
	Sensitive bool
}

// size is the RFC 7541 §4.1 entry size: octets plus 32 bytes of overhead.
func (f HeaderField) size() int { return len(f.Name) + len(f.Value) + 32 }

// staticTable is RFC 7541 Appendix A. Index 1 is staticTable[0].
var staticTable = [61]HeaderField{
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticIndex maps exact (name, value) pairs and bare names to static
// indices for the encoder's lookups. Built once at init.
var (
	staticPairIndex = map[HeaderField]int{}
	staticNameIndex = map[string]int{}
)

func init() {
	for i, f := range staticTable {
		staticPairIndex[HeaderField{Name: f.Name, Value: f.Value}] = i + 1
		if _, ok := staticNameIndex[f.Name]; !ok {
			staticNameIndex[f.Name] = i + 1
		}
	}
}

// dynamicTable is the shared FIFO of recently encoded/decoded fields
// (RFC 7541 §2.3.2). Entry 0 is the most recently added.
type dynamicTable struct {
	entries []HeaderField // entries[0] = newest
	size    int
	maxSize int
}

func (t *dynamicTable) add(f HeaderField) {
	f.Sensitive = false
	t.entries = append([]HeaderField{f}, t.entries...)
	t.size += f.size()
	t.evict()
}

func (t *dynamicTable) setMaxSize(n int) {
	t.maxSize = n
	t.evict()
}

func (t *dynamicTable) evict() {
	for t.size > t.maxSize && len(t.entries) > 0 {
		last := t.entries[len(t.entries)-1]
		t.entries = t.entries[:len(t.entries)-1]
		t.size -= last.size()
	}
	if len(t.entries) == 0 {
		t.size = 0
	}
}

// at returns the field at absolute HPACK index i (1-based across static then
// dynamic).
func (t *dynamicTable) at(i int) (HeaderField, bool) {
	if i <= 0 {
		return HeaderField{}, false
	}
	if i <= len(staticTable) {
		return staticTable[i-1], true
	}
	di := i - len(staticTable) - 1
	if di >= len(t.entries) {
		return HeaderField{}, false
	}
	return t.entries[di], true
}

// lookup finds the best index for f: a full match (indexed representation)
// or a name-only match. Returns (index, nameOnly) with index 0 for no match.
func (t *dynamicTable) lookup(f HeaderField) (idx int, full bool) {
	if i, ok := staticPairIndex[HeaderField{Name: f.Name, Value: f.Value}]; ok {
		return i, true
	}
	for di, e := range t.entries {
		if e.Name == f.Name && e.Value == f.Value {
			return len(staticTable) + 1 + di, true
		}
	}
	if i, ok := staticNameIndex[f.Name]; ok {
		return i, false
	}
	for di, e := range t.entries {
		if e.Name == f.Name {
			return len(staticTable) + 1 + di, false
		}
	}
	return 0, false
}

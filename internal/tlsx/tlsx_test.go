package tlsx

import (
	"crypto/tls"
	"io"
	"net"
	"testing"

	"dohcost/internal/netsim"
)

func TestGenerateChainHitsTargetSize(t *testing.T) {
	for _, tt := range []struct {
		name   string
		spec   ChainSpec
		target int
	}{
		{"cloudflare", CloudflareLike("cloudflare-dns.com"), CloudflareChainBytes},
		{"google", GoogleLike("dns.google.com"), GoogleChainBytes},
	} {
		t.Run(tt.name, func(t *testing.T) {
			c, err := GenerateChain(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			if diff := c.WireBytes - tt.target; diff < -16 || diff > 16 {
				t.Errorf("chain wire bytes = %d, want %d ±16", c.WireBytes, tt.target)
			}
			if len(c.Certificate.Certificate) != 2 {
				t.Errorf("sent %d certificates, want 2", len(c.Certificate.Certificate))
			}
		})
	}
}

func TestGenerateChainUnpadded(t *testing.T) {
	c, err := GenerateChain(ChainSpec{CommonName: "x.test", DNSNames: []string{"x.test"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.WireBytes <= 0 || c.WireBytes > 2000 {
		t.Errorf("unpadded chain = %d bytes", c.WireBytes)
	}
}

func TestGenerateChainTargetTooSmall(t *testing.T) {
	spec := ChainSpec{CommonName: "x.test", TargetWireBytes: 100}
	if _, err := GenerateChain(spec); err == nil {
		t.Fatal("absurdly small target accepted")
	}
}

func TestChainExtensions(t *testing.T) {
	spec := ChainSpec{
		CommonName: "probe.test", DNSNames: []string{"probe.test"},
		EmbedSCT: true, OCSPMustStaple: true, Seed: 42,
	}
	c, err := GenerateChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !HasExtension(c.Leaf, OIDSignedCertificateTimestamps) {
		t.Error("SCT extension missing")
	}
	if !HasExtension(c.Leaf, OIDOCSPMustStaple) {
		t.Error("must-staple extension missing")
	}
	plain, err := GenerateChain(ChainSpec{CommonName: "plain.test", Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if HasExtension(plain.Leaf, OIDOCSPMustStaple) {
		t.Error("unexpected must-staple extension")
	}
}

func TestChainDeterministicBySeed(t *testing.T) {
	a, err := GenerateChain(ChainSpec{CommonName: "d.test", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChain(ChainSpec{CommonName: "d.test", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Key material is seed-deterministic (certificates differ by random
	// x509 serial-agnostic fields only through signatures).
	ka := a.Certificate.PrivateKey
	kb := b.Certificate.PrivateKey
	if ka == nil || kb == nil {
		t.Fatal("missing keys")
	}
}

// tlsEcho starts a TLS server over netsim that echoes one message.
func tlsEcho(t *testing.T, n *netsim.Network, addr string, cfg *tls.Config) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				tc := tls.Server(raw, cfg)
				defer tc.Close()
				buf := make([]byte, 256)
				nn, err := tc.Read(buf)
				if err != nil {
					return
				}
				tc.Write(buf[:nn])
			}()
		}
	}()
}

func TestTLSHandshakeOverNetsim(t *testing.T) {
	chain, err := GenerateChain(CloudflareLike("doh.test"))
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	tlsEcho(t, n, "doh.test:443", chain.ServerConfig(0, 0))

	raw, err := n.Dial("client", "doh.test:443")
	if err != nil {
		t.Fatal(err)
	}
	tc := tls.Client(raw, chain.ClientConfig("doh.test"))
	defer tc.Close()
	if err := tc.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if v := tc.ConnectionState().Version; v != tls.VersionTLS13 {
		t.Errorf("negotiated %s, want TLS 1.3", VersionName(v))
	}
	tc.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(tc, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
}

func TestProbeVersions(t *testing.T) {
	chain, err := GenerateChain(ChainSpec{CommonName: "v.test", DNSNames: []string{"v.test"}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	// Server allows only TLS 1.2; 1.0/1.1/1.3 probes must fail.
	tlsEcho(t, n, "v.test:443", chain.ServerConfig(tls.VersionTLS12, tls.VersionTLS12))

	dial := func() (net.Conn, error) { return n.Dial("prober", "v.test:443") }
	got, err := ProbeVersions(dial, chain.ClientConfig("v.test"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint16]bool{
		tls.VersionTLS10: false,
		tls.VersionTLS11: false,
		tls.VersionTLS12: true,
		tls.VersionTLS13: false,
	}
	for v, w := range want {
		if got[v] != w {
			t.Errorf("%s supported = %v, want %v", VersionName(v), got[v], w)
		}
	}
}

func TestProbeOldVersions(t *testing.T) {
	chain, err := GenerateChain(ChainSpec{CommonName: "old.test", DNSNames: []string{"old.test"}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	tlsEcho(t, n, "old.test:443", chain.ServerConfig(tls.VersionTLS10, tls.VersionTLS13))
	dial := func() (net.Conn, error) { return n.Dial("prober", "old.test:443") }
	got, err := ProbeVersions(dial, chain.ClientConfig("old.test"))
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range got {
		if !ok {
			t.Errorf("%s: handshake failed against permissive server", VersionName(v))
		}
	}
}

func TestProbeVersionsWideServer(t *testing.T) {
	chain, err := GenerateChain(ChainSpec{CommonName: "w.test", DNSNames: []string{"w.test"}, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	tlsEcho(t, n, "w.test:443", chain.ServerConfig(tls.VersionTLS10, tls.VersionTLS13))
	dial := func() (net.Conn, error) { return n.Dial("prober", "w.test:443") }
	got, err := ProbeVersions(dial, chain.ClientConfig("w.test"))
	if err != nil {
		t.Fatal(err)
	}
	if !got[tls.VersionTLS12] || !got[tls.VersionTLS13] {
		t.Errorf("modern versions not supported: %v", got)
	}
}

func TestVersionName(t *testing.T) {
	if VersionName(tls.VersionTLS13) != "TLS 1.3" {
		t.Error("1.3 name")
	}
	if VersionName(0x9999) == "" {
		t.Error("unknown version name empty")
	}
}

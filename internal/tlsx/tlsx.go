// Package tlsx generates the TLS material the DoH cost study needs:
// self-signed certificate chains padded to match the wire sizes the paper
// measured for Cloudflare (two certificates, 1,960 bytes) and Google (two
// certificates, 3,101 bytes), optional certificate attributes the landscape
// survey probes for (embedded SCTs for Certificate Transparency, the OCSP
// must-staple extension), and a TLS version prober.
//
// The paper attributes the byte-overhead gap between the two providers to
// certificate chain size; reproducing the chain sizes reproduces the gap
// mechanism without any real CA involvement.
package tlsx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"math/big"
	mrand "math/rand"
	"net"
	"time"
)

// Extension OIDs recognized by the survey prober.
var (
	// OIDSignedCertificateTimestamps marks embedded SCTs (RFC 6962 §3.3),
	// the signal that a certificate participates in Certificate
	// Transparency.
	OIDSignedCertificateTimestamps = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 11129, 2, 4, 2}
	// OIDOCSPMustStaple is the TLS feature extension (RFC 7633) carrying
	// status_request, i.e. OCSP must-staple.
	OIDOCSPMustStaple = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 24}
	// oidChainPadding is a private extension used only to inflate DER size
	// to the target; real chains get their bulk from RSA keys and CA
	// baggage our ECDSA test chains lack.
	oidChainPadding = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 99999, 1}
)

// ChainSpec describes the chain to generate.
type ChainSpec struct {
	// CommonName and DNSNames go into the leaf certificate.
	CommonName string
	DNSNames   []string
	// TargetWireBytes, when non-zero, pads leaf+intermediate DER to this
	// combined size (±Tolerance). This models provider certificate bulk.
	TargetWireBytes int
	// Tolerance bounds the padding search; defaults to 16 bytes.
	Tolerance int
	// EmbedSCT adds a synthetic signed-certificate-timestamp extension.
	EmbedSCT bool
	// OCSPMustStaple adds the RFC 7633 must-staple extension.
	OCSPMustStaple bool
	// Seed makes key generation deterministic for reproducible chains.
	Seed int64
}

// Chain bundles everything an experiment endpoint needs.
type Chain struct {
	// Certificate is ready for tls.Config.Certificates on the server; it
	// sends leaf + intermediate.
	Certificate tls.Certificate
	// Roots verifies the chain on the client.
	Roots *x509.CertPool
	// Leaf and Intermediate are the parsed certificates as sent.
	Leaf         *x509.Certificate
	Intermediate *x509.Certificate
	// WireBytes is the combined DER size of the certificates actually sent
	// (leaf + intermediate), the quantity the paper reports.
	WireBytes int
}

// Paper-measured certificate chain wire sizes (IMC'19 §4).
const (
	CloudflareChainBytes = 1960
	GoogleChainBytes     = 3101
)

// CloudflareLike returns a spec mimicking Cloudflare's 2018 chain size.
func CloudflareLike(host string) ChainSpec {
	return ChainSpec{
		CommonName: host, DNSNames: []string{host},
		TargetWireBytes: CloudflareChainBytes, EmbedSCT: true, Seed: 0xCF,
	}
}

// GoogleLike returns a spec mimicking Google's 2018 chain size.
func GoogleLike(host string) ChainSpec {
	return ChainSpec{
		CommonName: host, DNSNames: []string{host},
		TargetWireBytes: GoogleChainBytes, EmbedSCT: true, Seed: 0x60,
	}
}

// GenerateChain builds root → intermediate → leaf and pads the sent pair to
// the spec's target size.
func GenerateChain(spec ChainSpec) (*Chain, error) {
	if spec.Tolerance <= 0 {
		spec.Tolerance = 16
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	krng := mrand.New(mrand.NewSource(seed))

	rootKey, err := ecdsa.GenerateKey(elliptic.P256(), krng)
	if err != nil {
		return nil, fmt.Errorf("tlsx: generating root key: %w", err)
	}
	interKey, err := ecdsa.GenerateKey(elliptic.P256(), krng)
	if err != nil {
		return nil, fmt.Errorf("tlsx: generating intermediate key: %w", err)
	}
	leafKey, err := ecdsa.GenerateKey(elliptic.P256(), krng)
	if err != nil {
		return nil, fmt.Errorf("tlsx: generating leaf key: %w", err)
	}

	notBefore := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	notAfter := notBefore.AddDate(20, 0, 0)

	rootTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dohcost study root CA", Organization: []string{"dohcost"}},
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	rootDER, err := x509.CreateCertificate(rand.Reader, rootTmpl, rootTmpl, &rootKey.PublicKey, rootKey)
	if err != nil {
		return nil, fmt.Errorf("tlsx: creating root: %w", err)
	}
	root, err := x509.ParseCertificate(rootDER)
	if err != nil {
		return nil, err
	}

	// Measure an unpadded build first, then rebuild with the remaining
	// bytes split across the two sent certificates. ECDSA signatures
	// wobble by a couple of bytes, so retry until within tolerance.
	pad := 0
	for attempt := 0; attempt < 32; attempt++ {
		interDER, leafDER, err := buildPair(spec, root, rootKey, interKey, leafKey, notBefore, notAfter, pad)
		if err != nil {
			return nil, err
		}
		size := len(interDER) + len(leafDER)
		if spec.TargetWireBytes == 0 || abs(size-spec.TargetWireBytes) <= spec.Tolerance {
			leaf, err := x509.ParseCertificate(leafDER)
			if err != nil {
				return nil, err
			}
			inter, err := x509.ParseCertificate(interDER)
			if err != nil {
				return nil, err
			}
			pool := x509.NewCertPool()
			pool.AddCert(root)
			return &Chain{
				Certificate: tls.Certificate{
					Certificate: [][]byte{leafDER, interDER},
					PrivateKey:  leafKey,
					Leaf:        leaf,
				},
				Roots:        pool,
				Leaf:         leaf,
				Intermediate: inter,
				WireBytes:    size,
			}, nil
		}
		if spec.TargetWireBytes < size && pad == 0 {
			return nil, fmt.Errorf("tlsx: target %d bytes below minimum chain size %d", spec.TargetWireBytes, size)
		}
		pad += spec.TargetWireBytes - size
		if pad < 0 {
			pad = 0
		}
	}
	return nil, fmt.Errorf("tlsx: could not hit target %d bytes within tolerance %d", spec.TargetWireBytes, spec.Tolerance)
}

// buildPair creates the intermediate and leaf with pad bytes of filler split
// between them.
func buildPair(spec ChainSpec, root *x509.Certificate, rootKey, interKey, leafKey *ecdsa.PrivateKey,
	notBefore, notAfter time.Time, pad int) (interDER, leafDER []byte, err error) {

	interPad, leafPad := pad/2, pad-pad/2
	interTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(2),
		Subject:               pkix.Name{CommonName: "dohcost study intermediate CA", Organization: []string{"dohcost"}},
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		IsCA:                  true,
		MaxPathLenZero:        true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	addPadding(interTmpl, interPad)
	interDER, err = x509.CreateCertificate(rand.Reader, interTmpl, root, &interKey.PublicKey, rootKey)
	if err != nil {
		return nil, nil, fmt.Errorf("tlsx: creating intermediate: %w", err)
	}
	inter, err := x509.ParseCertificate(interDER)
	if err != nil {
		return nil, nil, err
	}

	leafTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(3),
		Subject:      pkix.Name{CommonName: spec.CommonName},
		DNSNames:     spec.DNSNames,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if spec.EmbedSCT {
		// A plausible-size synthetic SCT list (real ones run ~120 bytes per
		// log); content is irrelevant, presence is what the prober checks.
		leafTmpl.ExtraExtensions = append(leafTmpl.ExtraExtensions, pkix.Extension{
			Id: OIDSignedCertificateTimestamps, Value: deterministicBytes(238, spec.Seed),
		})
	}
	if spec.OCSPMustStaple {
		// status_request TLS feature (RFC 7633): SEQUENCE { INTEGER 5 }.
		leafTmpl.ExtraExtensions = append(leafTmpl.ExtraExtensions, pkix.Extension{
			Id: OIDOCSPMustStaple, Value: []byte{0x30, 0x03, 0x02, 0x01, 0x05},
		})
	}
	addPadding(leafTmpl, leafPad)
	leafDER, err = x509.CreateCertificate(rand.Reader, leafTmpl, inter, &leafKey.PublicKey, interKey)
	if err != nil {
		return nil, nil, fmt.Errorf("tlsx: creating leaf: %w", err)
	}
	return interDER, leafDER, nil
}

// addPadding attaches the filler extension. DER framing costs ~15 bytes, so
// small positive pads are folded in once they exceed the framing cost.
func addPadding(tmpl *x509.Certificate, pad int) {
	const framing = 15
	if pad <= framing {
		return
	}
	tmpl.ExtraExtensions = append(tmpl.ExtraExtensions, pkix.Extension{
		Id: oidChainPadding, Value: deterministicBytes(pad-framing, int64(pad)),
	})
}

// deterministicBytes returns n pseudo-random but reproducible bytes.
func deterministicBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	mrand.New(mrand.NewSource(seed)).Read(b)
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// HasExtension reports whether cert carries an extension with the given OID.
func HasExtension(cert *x509.Certificate, oid asn1.ObjectIdentifier) bool {
	for _, e := range cert.Extensions {
		if e.Id.Equal(oid) {
			return true
		}
	}
	return false
}

// ServerConfig returns a TLS server config for the chain restricted to
// [minVersion, maxVersion]; zero values default to TLS 1.2–1.3.
func (c *Chain) ServerConfig(minVersion, maxVersion uint16, nextProtos ...string) *tls.Config {
	if minVersion == 0 {
		minVersion = tls.VersionTLS12
	}
	if maxVersion == 0 {
		maxVersion = tls.VersionTLS13
	}
	return &tls.Config{
		Certificates: []tls.Certificate{c.Certificate},
		MinVersion:   minVersion,
		MaxVersion:   maxVersion,
		NextProtos:   nextProtos,
	}
}

// ClientConfig returns a TLS client config trusting the chain's root.
func (c *Chain) ClientConfig(serverName string, nextProtos ...string) *tls.Config {
	return &tls.Config{
		RootCAs:    c.Roots,
		ServerName: serverName,
		MinVersion: tls.VersionTLS10, // the prober needs to offer old versions
		MaxVersion: tls.VersionTLS13,
		NextProtos: nextProtos,
	}
}

// Versions enumerates the TLS protocol versions the survey probes.
var Versions = []uint16{tls.VersionTLS10, tls.VersionTLS11, tls.VersionTLS12, tls.VersionTLS13}

// VersionName renders a TLS version constant as the paper writes it.
func VersionName(v uint16) string {
	switch v {
	case tls.VersionTLS10:
		return "TLS 1.0"
	case tls.VersionTLS11:
		return "TLS 1.1"
	case tls.VersionTLS12:
		return "TLS 1.2"
	case tls.VersionTLS13:
		return "TLS 1.3"
	}
	return fmt.Sprintf("TLS(%#x)", v)
}

// ProbeVersions attempts one handshake per protocol version and reports
// which succeed. dial must return a fresh connection per call; base supplies
// trust anchors and server name.
func ProbeVersions(dial func() (net.Conn, error), base *tls.Config) (map[uint16]bool, error) {
	supported := make(map[uint16]bool, len(Versions))
	for _, v := range Versions {
		raw, err := dial()
		if err != nil {
			return supported, fmt.Errorf("tlsx: probe dial: %w", err)
		}
		cfg := base.Clone()
		cfg.MinVersion = v
		cfg.MaxVersion = v
		// Old TLS versions are probed for protocol support only; Go refuses
		// to verify modern chains under TLS ≤ 1.1 signature algorithms.
		if v < tls.VersionTLS12 {
			cfg.InsecureSkipVerify = true
		}
		tc := tls.Client(raw, cfg)
		tc.SetDeadline(time.Now().Add(5 * time.Second))
		err = tc.Handshake()
		supported[v] = err == nil
		tc.Close()
	}
	return supported, nil
}

package tlsx

import (
	"crypto/tls"
	"net"
	"testing"

	"dohcost/internal/netsim"
)

func TestProbeOldVersions(t *testing.T) {
	chain, err := GenerateChain(ChainSpec{CommonName: "old.test", DNSNames: []string{"old.test"}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	tlsEcho(t, n, "old.test:443", chain.ServerConfig(tls.VersionTLS10, tls.VersionTLS13))
	dial := func() (net.Conn, error) { return n.Dial("prober", "old.test:443") }
	got, err := ProbeVersions(dial, chain.ClientConfig("old.test"))
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range got {
		if !ok {
			t.Errorf("%s: handshake failed against permissive server", VersionName(v))
		}
	}
}

package alexa

import (
	"testing"

	"dohcost/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Pages: 200, Seed: 7})
	b := Generate(Config{Pages: 200, Seed: 7})
	if a.TotalQueries != b.TotalQueries || a.UniqueDomains != b.UniqueDomains {
		t.Fatal("same seed produced different corpora")
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || len(a.Pages[i].Domains) != len(b.Pages[i].Domains) {
			t.Fatalf("page %d differs", i)
		}
	}
	c := Generate(Config{Pages: 200, Seed: 8})
	if c.TotalQueries == a.TotalQueries {
		t.Log("different seeds produced equal query totals (possible but unlikely)")
	}
}

func TestFigure1Anchors(t *testing.T) {
	// The paper's Figure 1 reads: about 50% of pages need ≥ 20 queries,
	// and the tail reaches ~250 but no further.
	w := Generate(Config{Pages: 20000, Seed: 1})
	cdf := stats.NewCDF(w.QueriesPerPage())
	median := cdf.Quantile(0.5)
	if median < 14 || median > 26 {
		t.Errorf("median queries/page = %.1f, want ≈ 20", median)
	}
	if max := cdf.Quantile(1); max > 250 {
		t.Errorf("max queries/page = %.0f, want ≤ 250", max)
	}
	if p10 := cdf.Quantile(0.10); p10 < 1 || p10 > 10 {
		t.Errorf("p10 = %.1f, want small-but-positive head", p10)
	}
	if p95 := cdf.Quantile(0.95); p95 < 50 {
		t.Errorf("p95 = %.1f, want a heavy tail", p95)
	}
}

func TestSection4Anchors(t *testing.T) {
	// §4: 100k pages → 2,178,235 queries and 281,414 unique names;
	// top-15 names ≈ 25% of queries. Check at 20k pages that the scaled
	// anchors hold within tolerance (the generator is scale-invariant in
	// queries/page and top-share; unique names scale slightly sublinearly).
	w := Generate(Config{Pages: 20000, Seed: 3})
	avg := float64(w.TotalQueries) / float64(len(w.Pages))
	if avg < 18 || avg > 26 {
		t.Errorf("avg queries/page = %.2f, want ≈ 21.8", avg)
	}
	share := w.TopShare(15)
	if share < 0.17 || share > 0.33 {
		t.Errorf("top-15 share = %.2f, want ≈ 0.25", share)
	}
	uniqueRatio := float64(w.UniqueDomains) / float64(w.TotalQueries)
	// Paper: 281,414 / 2,178,235 ≈ 0.129.
	if uniqueRatio < 0.08 || uniqueRatio > 0.20 {
		t.Errorf("unique/total = %.3f, want ≈ 0.13", uniqueRatio)
	}
}

func TestPageStructure(t *testing.T) {
	w := Generate(Config{Pages: 50, Seed: 2})
	for _, p := range w.Pages {
		if len(p.Domains) < 1 {
			t.Fatalf("page %d has no domains", p.Rank)
		}
		if p.Domains[0] != "www.site"+p.URL[len("https://www.site"):len("https://www.site")+6]+".example" {
			// Own domain must come first; spot-check format loosely.
			if p.Domains[0][:8] != "www.site" {
				t.Errorf("page %d first domain = %s", p.Rank, p.Domains[0])
			}
		}
	}
	if w.Pages[0].Rank != 1 || w.Pages[49].Rank != 50 {
		t.Error("ranks not sequential")
	}
}

func TestAllDomainsUnique(t *testing.T) {
	w := Generate(Config{Pages: 300, Seed: 5})
	all := w.AllDomains()
	if len(all) != w.UniqueDomains {
		t.Errorf("AllDomains = %d, UniqueDomains = %d", len(all), w.UniqueDomains)
	}
	seen := map[string]bool{}
	for _, d := range all {
		if seen[d] {
			t.Fatalf("duplicate domain %s", d)
		}
		seen[d] = true
	}
}

func TestTopShareMonotone(t *testing.T) {
	w := Generate(Config{Pages: 2000, Seed: 9})
	if w.TopShare(5) > w.TopShare(15) || w.TopShare(15) > w.TopShare(50) {
		t.Error("top-share not monotone in k")
	}
}

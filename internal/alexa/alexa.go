// Package alexa generates the synthetic stand-in for the Alexa top-list
// page corpus the paper crawled. The generator is calibrated to the
// anchors the paper reports:
//
//   - Figure 1: about half of the top-100k pages need at least 20 DNS
//     queries, with a long tail out to ~250 (queries-per-page is modelled
//     log-normally).
//   - §4: 100,000 page fetches issued 2,178,235 queries (≈21.8 per page)
//     resolving 281,414 unique names, and the fifteen most frequently
//     queried names account for almost 25% of all queries (third-party
//     domain popularity is Zipf-distributed).
//
// Everything is deterministic for a given seed, so figures regenerate
// bit-identically.
package alexa

import (
	"fmt"
	"math"
	"math/rand"

	"dohcost/internal/stats"
)

// Config parameterizes workload generation. Zero fields take defaults
// matching the paper's corpus.
type Config struct {
	// Pages is the ranking depth (the paper uses 100k for Figure 1 and the
	// overhead study, 1k for the page-load study).
	Pages int
	// Seed drives all randomness.
	Seed int64

	// QueriesMu/QueriesSigma parameterize the log-normal queries-per-page
	// distribution. Defaults yield median ≈ 20 and mean ≈ 21.8.
	QueriesMu    float64
	QueriesSigma float64
	MaxQueries   int
	// PopularDomains is the size of the shared third-party pool and
	// ZipfS its popularity exponent.
	PopularDomains int
	ZipfS          float64
	// FreshFraction is the probability a third-party reference goes to a
	// page-unique host instead of the shared pool, which controls the
	// unique-name count.
	FreshFraction float64
}

func (c Config) withDefaults() Config {
	if c.Pages == 0 {
		c.Pages = 1000
	}
	if c.QueriesMu == 0 {
		c.QueriesMu = math.Log(17)
	}
	if c.QueriesSigma == 0 {
		c.QueriesSigma = 0.82
	}
	if c.MaxQueries == 0 {
		c.MaxQueries = 250
	}
	if c.PopularDomains == 0 {
		c.PopularDomains = 30000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.02
	}
	if c.FreshFraction == 0 {
		c.FreshFraction = 0.085
	}
	return c
}

// Page is one ranked site and the domains a full load resolves, in
// dependency order: the page's own domain first, then third parties.
type Page struct {
	Rank    int
	URL     string
	Domains []string
}

// Workload is a generated corpus.
type Workload struct {
	Config Config
	Pages  []Page

	// TotalQueries counts domain references across all pages (one DNS
	// query each, caches cold per page as in the paper's method).
	TotalQueries int
	// UniqueDomains counts distinct names across the corpus.
	UniqueDomains int
	// TopDomainQueries[i] counts references to the i-th most popular name.
	TopDomainQueries []int
}

// Generate builds the corpus.
func Generate(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := stats.Zipf(cfg.PopularDomains, cfg.ZipfS)

	// Cumulative weights for fast sampling.
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	samplePopular := func() int {
		r := rng.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	w := &Workload{Config: cfg}
	popCount := make([]int, cfg.PopularDomains)
	unique := make(map[string]struct{}, cfg.Pages*3)

	for rank := 1; rank <= cfg.Pages; rank++ {
		own := fmt.Sprintf("www.site%06d.example", rank)
		n := int(stats.LogNormal(rng, cfg.QueriesMu, cfg.QueriesSigma))
		if n < 1 {
			n = 1
		}
		if n > cfg.MaxQueries {
			n = cfg.MaxQueries
		}
		domains := make([]string, 0, n)
		domains = append(domains, own)
		unique[own] = struct{}{}
		fresh := 0
		for len(domains) < n {
			if rng.Float64() < cfg.FreshFraction {
				fresh++
				d := fmt.Sprintf("asset%d.site%06d.example", fresh, rank)
				domains = append(domains, d)
				unique[d] = struct{}{}
				continue
			}
			idx := samplePopular()
			popCount[idx]++
			d := popularDomain(idx)
			domains = append(domains, d)
			unique[d] = struct{}{}
		}
		w.Pages = append(w.Pages, Page{
			Rank:    rank,
			URL:     "https://" + own + "/",
			Domains: domains,
		})
		w.TotalQueries += len(domains)
	}
	w.UniqueDomains = len(unique)
	w.TopDomainQueries = popCount
	return w
}

// popularDomain names the idx-th most popular shared third-party host.
// Low indices read like the ad/CDN/analytics hosts that dominate real
// crawls.
func popularDomain(idx int) string {
	heads := []string{"ads", "cdn", "static", "fonts", "apis", "metrics", "tags", "pixel", "img", "js"}
	return fmt.Sprintf("%s%d.thirdparty.example", heads[idx%len(heads)], idx)
}

// QueriesPerPage extracts the Figure 1 sample set.
func (w *Workload) QueriesPerPage() []float64 {
	out := make([]float64, len(w.Pages))
	for i, p := range w.Pages {
		out[i] = float64(len(p.Domains))
	}
	return out
}

// TopShare returns the fraction of all queries going to the k most
// frequently queried domains (the paper reports ≈25% for k=15).
func (w *Workload) TopShare(k int) float64 {
	if w.TotalQueries == 0 {
		return 0
	}
	counts := append([]int(nil), w.TopDomainQueries...)
	// The pool is already in descending popularity order by construction
	// of the Zipf weights, but sampling noise can swap neighbours; take
	// the top k by actual count.
	topSum := 0
	for i := 0; i < k; i++ {
		best := -1
		for j, c := range counts {
			if best == -1 || c > counts[best] {
				best = j
			}
			_ = c
		}
		topSum += counts[best]
		counts[best] = -1
	}
	return float64(topSum) / float64(w.TotalQueries)
}

// AllDomains returns every distinct name in the corpus, in first-seen
// order — the overhead experiments resolve a sample of these.
func (w *Workload) AllDomains() []string {
	seen := make(map[string]struct{}, w.UniqueDomains)
	out := make([]string, 0, w.UniqueDomains)
	for _, p := range w.Pages {
		for _, d := range p.Domains {
			if _, ok := seen[d]; !ok {
				seen[d] = struct{}{}
				out = append(out, d)
			}
		}
	}
	return out
}

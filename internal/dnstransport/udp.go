package dnstransport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// UDPClient is a classic RFC 1035 stub resolver client: one datagram socket
// multiplexing any number of concurrent queries by transaction ID, with
// timeout-driven retransmission. Figure 2's immunity of UDP to slow-query
// knock-on comes from exactly this independence between exchanges.
type UDPClient struct {
	pc     net.PacketConn
	server net.Addr

	// Timeout is the per-attempt wait; Retries is how many additional
	// attempts follow a timeout.
	Timeout time.Duration
	Retries int
	// Fallback, when set, re-resolves queries whose UDP response arrives
	// truncated (TC=1) — RFC 7766 §5's retry-over-TCP. Without it the
	// truncated response is returned as-is, leaving the caller to cope.
	// The fallback resolver is closed with the client.
	Fallback Resolver
	// Recorder, when set, receives per-exchange costs.
	Recorder CostRecorder

	mu      sync.Mutex
	pending *pendingMap
	nextID  uint16
	closed  bool
}

// NewUDPClient wraps an open packet socket and starts the response
// demultiplexer.
func NewUDPClient(pc net.PacketConn, server net.Addr) *UDPClient {
	c := &UDPClient{
		pc:      pc,
		server:  server,
		Timeout: 2 * time.Second,
		Retries: 2,
		pending: newPendingMap(),
		nextID:  1,
	}
	go c.readLoop()
	return c
}

// Close implements Resolver.
func (c *UDPClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.pending.failAll()
	c.mu.Unlock()
	if c.Fallback != nil {
		c.Fallback.Close()
	}
	return c.pc.Close()
}

func (c *UDPClient) readLoop() {
	buf := make([]byte, 65535)
	for {
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			c.mu.Lock()
			c.pending.failAll()
			c.mu.Unlock()
			return
		}
		m := new(dnswire.Message)
		if err := m.Unpack(buf[:n]); err != nil {
			continue // ignore malformed datagrams
		}
		c.mu.Lock()
		c.pending.deliver(m.ID, m, n)
		c.mu.Unlock()
	}
}

// Exchange implements Resolver.
func (c *UDPClient) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	start := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	id, ch, err := c.pending.reserve(c.nextID)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID = id + 1
	c.mu.Unlock()

	msg := cloneWithID(q, id)
	// The packed query lives in a pooled buffer across every retransmit;
	// WriteTo copies it onto the wire, so releasing on return is safe.
	wire, release, err := packQuery(msg)
	if err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("dnstransport: packing query: %w", err)
	}
	defer release()

	tx := telemetry.FromContext(ctx)
	var payloads []int
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			// A dropped query or response surfaces here as a per-attempt
			// timeout; the retransmission is telemetry-visible so impaired
			// paths show their loss rate, not just their tail latency.
			tx.UDPRetransmit()
		}
		if _, err := c.pc.WriteTo(wire, c.server); err != nil {
			c.unregister(id)
			return nil, fmt.Errorf("dnstransport: udp send: %w", err)
		}
		payloads = append(payloads, len(wire))
		tx.AddBytesSent(len(wire))

		timer := time.NewTimer(c.Timeout)
		select {
		case d, ok := <-ch:
			timer.Stop()
			if !ok {
				return nil, ErrClosed
			}
			resp := d.msg
			if err := dnswire.ValidateResponse(msg, resp); err != nil {
				return nil, err
			}
			tx.AddBytesReceived(d.size)
			if resp.Truncated && c.Fallback != nil {
				// RFC 7766 §5: a TC=1 answer is a referral to TCP, not an
				// answer. The UDP attempt's payloads still went over the
				// wire, so they are recorded here; the fallback's TCP leg
				// is accounted by the fallback's own Recorder.
				tx.TCFallback()
				c.record(Cost{
					UDPPayloads: append(payloads, d.size),
					Duration:    time.Since(start),
				})
				return c.Fallback.Exchange(ctx, q)
			}
			c.record(Cost{
				UDPPayloads: append(payloads, d.size),
				Duration:    time.Since(start),
			})
			return resp, nil
		case <-ctx.Done():
			timer.Stop()
			c.unregister(id)
			return nil, ctx.Err()
		case <-timer.C:
			// fall through to retransmit
		}
	}
	c.unregister(id)
	return nil, fmt.Errorf("%w after %d attempts", ErrTimeout, c.Retries+1)
}

func (c *UDPClient) unregister(id uint16) {
	c.mu.Lock()
	c.pending.drop(id)
	c.mu.Unlock()
}

func (c *UDPClient) record(cost Cost) {
	if c.Recorder != nil {
		c.Recorder.RecordCost(cost)
	}
}

package dnstransport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
)

// PoolUpstream names one upstream resolver deployment and how to open a
// persistent connection to it. Dial is called whenever the pool needs a
// fresh connection (initial fill, or redial after a failure); it should
// return a persistent Resolver (StreamClient, DoHClient, …) and honor the
// context, which carries the triggering exchange's deadline.
type PoolUpstream struct {
	Name string
	Dial func(ctx context.Context) (Resolver, error)
}

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// ConnsPerUpstream is the number of persistent connections multiplexed
	// per upstream; 0 means 2.
	ConnsPerUpstream int
	// MaxFailures is how many consecutive exchange failures mark an
	// upstream down; 0 means 3.
	MaxFailures int
	// BackoffBase seeds the exponential redial/health backoff; 0 means
	// 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff; 0 means 15s.
	BackoffMax time.Duration

	// now is the clock, replaceable in tests.
	now func() time.Time
	// rand is the backoff jitter source in [0,1), replaceable in tests.
	rand func() float64
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ConnsPerUpstream <= 0 {
		c.ConnsPerUpstream = 2
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.rand == nil {
		c.rand = rand.Float64
	}
	return c
}

// Pool is a Resolver that multiplexes queries over N persistent connections
// per upstream, with per-upstream health tracking, exponential-backoff
// redial of broken connections, and failover across upstreams in the order
// given. It is the production counterpart of the paper's persistent-
// connection scenarios: connection setup — the dominant DoH cost in
// Figures 3–5 — is paid once per pooled connection instead of per query.
//
// Safe for concurrent use.
type Pool struct {
	cfg PoolConfig
	ups []*poolUpstream

	observer atomic.Pointer[ExchangeObserver]
	closed   atomic.Bool
}

// ExchangeObserver receives the outcome of every exchange attempt the pool
// runs: the upstream's name, the attempt's duration (connection checkout
// included, so setup cost — the dominant DoH cost — is visible), and the
// error (nil on success). Attempts abandoned by the caller's cancellation
// are reported with context.Canceled; scorers should ignore those — a
// cancelled hedge loser says nothing about the upstream. Checkouts refused
// locally because the slot is in redial backoff (ErrBackoff) are not
// reported at all: nothing touched the network, and the dial failure that
// started the backoff was already observed. A deadline that
// expired mid-exchange is charged like any failure, by the pool and by
// scorers alike: an upstream that ate the whole budget is exactly what the
// model must learn. Observers run inline on the exchange path and must be
// fast and concurrency-safe.
type ExchangeObserver func(upstream string, d time.Duration, err error)

// SetExchangeObserver installs (or, with nil, removes) the per-attempt
// outcome callback. Safe to call while exchanges run; the steering layer
// installs its scorer here so every policy's traffic feeds the same model.
func (p *Pool) SetExchangeObserver(fn ExchangeObserver) {
	if fn == nil {
		p.observer.Store(nil)
		return
	}
	p.observer.Store(&fn)
}

// observe reports one attempt outcome to the installed observer, if any.
func (p *Pool) observe(name string, d time.Duration, err error) {
	if fn := p.observer.Load(); fn != nil {
		(*fn)(name, d, err)
	}
}

// poolConn is one persistent connection slot, lazily dialed.
type poolConn struct {
	mu       sync.Mutex
	r        Resolver
	redialAt time.Time
	backoff  time.Duration
}

// poolUpstream is one upstream's connection set and health state.
type poolUpstream struct {
	name  string
	dial  func(ctx context.Context) (Resolver, error)
	conns []*poolConn
	next  atomic.Uint64 // round-robin cursor over conns

	mu        sync.Mutex
	failures  int // consecutive failures across all conns
	downUntil time.Time
	backoff   time.Duration
	exchanges int64
	errors    int64
}

// UpstreamStats snapshots one upstream's health. The JSON tags match the
// snake_case style of the telemetry snapshot, which sits next to these
// in the proxy's /debug/cost report.
type UpstreamStats struct {
	Name      string `json:"name"`
	Exchanges int64  `json:"exchanges"` // successful exchanges
	Failures  int64  `json:"failures"`  // failed exchanges (including dial errors)
	Down      bool   `json:"down"`      // currently marked down (in backoff)
}

// NewPool builds a pool over the given upstreams. The first upstream is
// preferred; later ones serve as failover targets while earlier ones are
// marked down.
func NewPool(upstreams []PoolUpstream, cfg PoolConfig) (*Pool, error) {
	if len(upstreams) == 0 {
		return nil, fmt.Errorf("dnstransport: pool needs at least one upstream")
	}
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg}
	for _, u := range upstreams {
		pu := &poolUpstream{name: u.Name, dial: u.Dial}
		for i := 0; i < cfg.ConnsPerUpstream; i++ {
			pu.conns = append(pu.conns, &poolConn{})
		}
		p.ups = append(p.ups, pu)
	}
	return p, nil
}

// Close implements Resolver: every pooled connection is closed and the pool
// refuses further exchanges.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for _, u := range p.ups {
		for _, c := range u.conns {
			c.mu.Lock()
			if c.r != nil {
				c.r.Close()
				c.r = nil
			}
			c.mu.Unlock()
		}
	}
	return nil
}

// Stats snapshots per-upstream health counters.
func (p *Pool) Stats() []UpstreamStats {
	now := p.cfg.now()
	out := make([]UpstreamStats, 0, len(p.ups))
	for _, u := range p.ups {
		u.mu.Lock()
		out = append(out, UpstreamStats{
			Name:      u.name,
			Exchanges: u.exchanges,
			Failures:  u.errors,
			Down:      now.Before(u.downUntil),
		})
		u.mu.Unlock()
	}
	return out
}

// healthy reports whether the upstream is accepting traffic.
func (u *poolUpstream) healthy(now time.Time) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return !now.Before(u.downUntil)
}

// succeed resets the upstream's failure accounting.
func (u *poolUpstream) succeed() {
	u.mu.Lock()
	u.exchanges++
	u.failures = 0
	u.backoff = 0
	u.downUntil = time.Time{}
	u.mu.Unlock()
}

// nextBackoff advances an exponential backoff: base on the first failure,
// doubling up to the cap afterwards. The growth itself is deterministic;
// the delay actually slept is spread by jitterBackoff so peers broken at
// the same instant do not retry in lockstep.
func nextBackoff(cur time.Duration, cfg PoolConfig) time.Duration {
	if cur == 0 {
		return cfg.BackoffBase
	}
	if cur *= 2; cur > cfg.BackoffMax {
		return cfg.BackoffMax
	}
	return cur
}

// jitterBackoff spreads a backoff delay uniformly over [d/2, d) — the
// "equal jitter" scheme. Without it, every connection to an upstream that
// died at one instant computes the same deterministic schedule and redials
// in lockstep, aiming a thundering herd at the recovering upstream.
func jitterBackoff(d time.Duration, cfg PoolConfig) time.Duration {
	if d <= 0 {
		return d
	}
	half := d / 2
	return half + time.Duration(cfg.rand()*float64(half))
}

// fail counts one failure and, past the threshold, marks the upstream down
// with jittered exponential backoff.
func (u *poolUpstream) fail(cfg PoolConfig) {
	u.mu.Lock()
	u.errors++
	u.failures++
	if u.failures >= cfg.MaxFailures {
		u.backoff = nextBackoff(u.backoff, cfg)
		u.downUntil = cfg.now().Add(jitterBackoff(u.backoff, cfg))
	}
	u.mu.Unlock()
}

// get returns the slot's live resolver, dialing if the slot is empty and
// its redial backoff has elapsed; dialed reports whether this checkout
// established a fresh connection. A slot still in backoff refuses with an
// error wrapping ErrBackoff so callers can tell local refusal from a dial
// that actually failed.
func (c *poolConn) get(ctx context.Context, p *Pool, u *poolUpstream) (r Resolver, dialed bool, err error) {
	cfg := p.cfg
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.r != nil {
		return c.r, false, nil
	}
	if cfg.now().Before(c.redialAt) {
		return nil, false, fmt.Errorf("dnstransport: pool upstream %s: %w", u.name, ErrBackoff)
	}
	// Re-check under the slot lock: Close sets the flag before walking the
	// slots, so either we see it here or Close's walk will close whatever
	// we dial. Without this check a racing Exchange could redial after
	// Close passed this slot and leak the connection.
	if p.closed.Load() {
		return nil, false, ErrClosed
	}
	r, err = u.dial(ctx)
	if err != nil {
		c.noteBroken(cfg)
		return nil, false, fmt.Errorf("dnstransport: pool dial %s: %w", u.name, err)
	}
	c.r = r
	c.backoff = 0
	return r, true, nil
}

// drop discards the slot's resolver after a failure; the next get redials
// once the backoff elapses.
func (c *poolConn) drop(r Resolver, cfg PoolConfig) {
	c.mu.Lock()
	if c.r == r && r != nil {
		r.Close()
		c.r = nil
	}
	c.noteBroken(cfg)
	c.mu.Unlock()
}

// noteBroken advances the slot's redial backoff. The next dial time is
// jittered so slots broken together spread their redials. Caller holds
// c.mu.
func (c *poolConn) noteBroken(cfg PoolConfig) {
	c.backoff = nextBackoff(c.backoff, cfg)
	c.redialAt = cfg.now().Add(jitterBackoff(c.backoff, cfg))
}

// Exchange implements Resolver. The query goes to the first healthy
// upstream's next pooled connection; on failure the connection is dropped
// for redial, the upstream's health is charged, and the exchange fails over
// to the next upstream. When every upstream is marked down the pool tries
// them anyway — returning an error without asking the network would turn a
// transient blip into an outage.
func (p *Pool) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	now := p.cfg.now()
	var lastErr error
	for _, skipDown := range []bool{true, false} {
		for _, u := range p.ups {
			if skipDown && !u.healthy(now) {
				continue
			}
			if !skipDown && u.healthy(now) {
				continue // already tried in the first pass
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			resp, err := p.exchangeVia(ctx, u, q)
			if err == nil {
				return resp, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, lastErr
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dnstransport: pool: no upstream available")
	}
	return nil, lastErr
}

// exchangeVia runs one exchange attempt on u's next connection. The
// query's telemetry Transaction (when present in ctx) is charged for the
// checkout — fresh dials, failed attempts — and credited with the
// answering upstream's name and exchange latency on success; the pool's
// ExchangeObserver (when installed) sees the attempt either way. An
// exchange that failed because the caller *cancelled* charges nothing —
// the upstream did nothing wrong, so neither the connection nor the
// upstream's health pays for a hedge loser's cancellation or a departed
// client. A deadline expiring mid-exchange is an ordinary failure: a
// black-holing upstream must still be marked down.
func (p *Pool) exchangeVia(ctx context.Context, u *poolUpstream, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	start := time.Now()
	slot := u.conns[u.next.Add(1)%uint64(len(u.conns))]
	r, dialed, err := slot.get(ctx, p, u)
	if dialed {
		tx.PoolDial()
		if tx.Traced() {
			// The dial span separates connection setup from the exchange
			// itself — the paper's connection-setup vs resolution split.
			tx.TraceSpanBetween(qtrace.PhaseDial, start, time.Now())
		}
	}
	if err != nil {
		if errors.Is(err, ErrBackoff) {
			// The slot refused locally: nothing touched the network, so the
			// observer (scoreboard) learns nothing and telemetry counts the
			// refusal apart from dial failures — conflating the two made
			// /debug/cost overstate how broken an upstream was while it was
			// merely resting. Health IS still charged: an upstream whose
			// only slots are resting cannot serve, and counting refusals
			// toward MaxFailures is what lets the pool mark it down and
			// skip it instead of bouncing off the backoff every query.
			tx.PoolBackoff()
			u.fail(p.cfg)
			return nil, err
		}
		tx.PoolFailure()
		u.fail(p.cfg)
		p.observe(u.name, time.Since(start), err)
		return nil, err
	}
	t0 := time.Now()
	resp, err := r.Exchange(ctx, q)
	if tx.Traced() {
		// Recorded for failures too: a trace of a SERVFAIL query should
		// show where the time went before the attempt died.
		tx.TraceSpanBetween(qtrace.PhaseUpstream, t0, time.Now())
	}
	if err != nil {
		if !errors.Is(ctx.Err(), context.Canceled) {
			tx.PoolFailure()
			slot.drop(r, p.cfg)
			u.fail(p.cfg)
		}
		p.observe(u.name, time.Since(start), err)
		return nil, err
	}
	tx.ObserveUpstream(u.name, time.Since(t0))
	u.succeed()
	p.observe(u.name, time.Since(start), nil)
	return resp, nil
}

// NumUpstreams reports how many upstreams the pool multiplexes.
func (p *Pool) NumUpstreams() int { return len(p.ups) }

// UpstreamName returns the configured name of upstream i, in the
// preference order NewPool received.
func (p *Pool) UpstreamName(i int) string { return p.ups[i].name }

// UpstreamHealthy reports whether upstream i is currently accepting
// traffic (not marked down in failure backoff).
func (p *Pool) UpstreamHealthy(i int) bool { return p.ups[i].healthy(p.cfg.now()) }

// ExchangeUpstream runs one exchange against upstream i specifically — no
// failover — so a steering layer can aim traffic by score instead of by
// static preference order. Connection checkout, health accounting and
// redial backoff work exactly as in Exchange; the upstream is tried even
// when marked down, because a directed probe is how a steering policy
// discovers recovery.
func (p *Pool) ExchangeUpstream(ctx context.Context, i int, q *dnswire.Message) (*dnswire.Message, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if i < 0 || i >= len(p.ups) {
		return nil, fmt.Errorf("dnstransport: pool has no upstream %d", i)
	}
	return p.exchangeVia(ctx, p.ups[i], q)
}

var _ Resolver = (*Pool)(nil)

// Package dnstransport implements the client side of every DNS transport
// the study compares, behind one Resolver interface: classic UDP with ID
// demultiplexing and retry, TCP and DNS-over-TLS with RFC 1035 stream
// framing (IDs let the client accept out-of-order replies whenever the
// server is willing to produce them), and DNS-over-HTTPS over this
// repository's HTTP/1.1 (pipelined) and HTTP/2 stacks, in persistent and
// per-query connection modes, with wireformat POST/GET and JSON encodings.
//
// Each client can report a per-exchange Cost — wire bytes, segments and
// packets from the simulated network, plus HTTP/2 frame-layer tallies —
// which is the raw material for Figures 3, 4 and 5.
package dnstransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/meter"
	"dohcost/internal/netsim"
)

// Resolver is a DNS client over some transport. Implementations are safe
// for concurrent use.
type Resolver interface {
	// Exchange sends q and returns the matching response. The client owns
	// transaction-ID assignment; the caller's q is not mutated.
	Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error)
	// Close releases connections. The resolver is unusable afterwards.
	Close() error
}

// Cost is the measured wire cost of one exchange (or of one connection's
// lifetime for aggregate accounting).
type Cost struct {
	// Wire is the stream-level delta: bytes/segments/packets both ways.
	// Zero for UDP.
	Wire netsim.ConnStats
	// H2 is the HTTP/2 frame-layer delta; zero for non-DoH transports.
	H2 meter.H2Layer
	// UDPPayloads lists the datagram payload sizes of the exchange
	// (queries sent, including retries, and the response received).
	UDPPayloads []int
	// IncludesSetup reports whether connection establishment (TCP
	// handshake, TLS handshake, HTTP/2 preface/SETTINGS) happened within
	// this exchange and is included in the deltas.
	IncludesSetup bool
	// Duration is the caller-visible resolution time.
	Duration time.Duration
}

// WireCost folds the cost into the paper's bytes/packets pair (Figures 3-4).
func (c Cost) WireCost() meter.WireCost {
	if len(c.UDPPayloads) > 0 {
		return meter.UDPWireCost(c.UDPPayloads)
	}
	return meter.TCPWireCost(c.Wire, c.IncludesSetup)
}

// Breakdown folds the cost into the paper's per-layer stack (Figure 5).
func (c Cost) Breakdown() meter.Breakdown {
	return meter.ComposeBreakdown(c.Wire, c.H2, c.IncludesSetup)
}

// CostRecorder receives per-exchange costs.
type CostRecorder interface {
	RecordCost(c Cost)
}

// CostFunc adapts a function to CostRecorder.
type CostFunc func(Cost)

// RecordCost implements CostRecorder.
func (f CostFunc) RecordCost(c Cost) { f(c) }

// Transport errors.
var (
	ErrClosed  = errors.New("dnstransport: resolver closed")
	ErrTimeout = errors.New("dnstransport: query timed out")
	// ErrBackoff marks a pool connection checkout refused locally because
	// the slot is still in redial backoff: nothing touched the network, so
	// it is bookkeeping, not fresh evidence against the upstream. Match
	// with errors.Is.
	ErrBackoff = errors.New("dnstransport: connection in redial backoff")
)

// DefaultDialTimeout caps connection establishment when no explicit
// DialTimeout is configured. Connection setup is the cost the paper's
// Figures 3–5 dwell on; five seconds is far beyond any honest handshake and
// exists only to put a floor under blackholed paths.
const DefaultDialTimeout = 5 * time.Second

// dialContext derives the context a dial attempt runs under: ctx capped by
// the configured timeout (0 selects DefaultDialTimeout, negative disables
// the cap). The caller must call the returned cancel func.
func dialContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}
	if timeout < 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}

// statsConn is the wire-statistics capability of simulated connections.
type statsConn interface {
	Stats() netsim.ConnStats
}

// wireStats unwraps a connection stack down to the simulated network layer
// and snapshots its counters; connections without stats report zero.
func wireStats(conn net.Conn) netsim.ConnStats {
	if sc, ok := conn.(statsConn); ok {
		return sc.Stats()
	}
	return netsim.ConnStats{}
}

// exchangeID produces the transaction ID policy for one transport: DoH uses
// zero (RFC 8484 §4.1, cache friendliness), everything else uses a
// generated ID from the client's sequence.
func cloneWithID(q *dnswire.Message, id uint16) *dnswire.Message {
	cp := *q
	cp.ID = id
	return &cp
}

// packBufPool recycles per-exchange query-packing scratch. Queries are
// small (a question plus OPT), so the buffers start at 512 bytes and the
// pool keeps whatever growth padding or long names forced.
var packBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// packQuery serializes m into a pooled buffer. The returned release
// func recycles the buffer; the wire slice must not be used after calling
// it (writes to the network copy the bytes before release is due).
func packQuery(m *dnswire.Message) (wire []byte, release func(), err error) {
	bp := packBufPool.Get().(*[]byte)
	wire, err = m.AppendPack((*bp)[:0])
	if err != nil {
		packBufPool.Put(bp)
		return nil, nil, err
	}
	*bp = wire[:0] // keep any growth for the next exchange
	return wire, func() { packBufPool.Put(bp) }, nil
}

// delivery is one demultiplexed response together with its wire size —
// retained at receive time so cost accounting never re-packs a message it
// already saw on the wire.
type delivery struct {
	msg  *dnswire.Message
	size int
}

// pendingMap tracks in-flight queries by transaction ID.
type pendingMap struct {
	ch map[uint16]chan delivery
}

func newPendingMap() *pendingMap {
	return &pendingMap{ch: make(map[uint16]chan delivery)}
}

// reserve picks a free ID starting from a hint.
func (p *pendingMap) reserve(hint uint16) (uint16, chan delivery, error) {
	id := hint
	for i := 0; i < 65536; i++ {
		if _, taken := p.ch[id]; !taken {
			ch := make(chan delivery, 1)
			p.ch[id] = ch
			return id, ch, nil
		}
		id++
	}
	return 0, nil, fmt.Errorf("dnstransport: no free transaction IDs")
}

func (p *pendingMap) deliver(id uint16, m *dnswire.Message, size int) {
	if ch, ok := p.ch[id]; ok {
		delete(p.ch, id)
		ch <- delivery{msg: m, size: size}
	}
}

func (p *pendingMap) drop(id uint16) { delete(p.ch, id) }

// failAll closes every waiter's channel, signalling an error.
func (p *pendingMap) failAll() {
	for id, ch := range p.ch {
		close(ch)
		delete(p.ch, id)
	}
}

package dnstransport

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"

	"dohcost/internal/dnsjson"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnswire"
	"dohcost/internal/h1"
	"dohcost/internal/h2"
	"dohcost/internal/hpack"
	"dohcost/internal/meter"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// DoHMode selects the HTTP version carrying the DoH exchange.
type DoHMode int

// DoH HTTP modes.
const (
	// ModeH2 is RFC 8484's recommended minimum, with stream multiplexing.
	ModeH2 DoHMode = iota
	// ModeH1 runs DoH over pipelined HTTP/1.1, the configuration the paper
	// uses to demonstrate in-order-delivery head-of-line blocking.
	ModeH1
)

// DoHEncoding selects how queries are represented in HTTP.
type DoHEncoding int

// DoH request encodings.
const (
	// EncodingPOST sends the DNS wireformat as a POST body (RFC 8484).
	EncodingPOST DoHEncoding = iota
	// EncodingGET sends the wireformat base64url-encoded in ?dns= (RFC 8484).
	EncodingGET
	// EncodingJSON uses the application/dns-json GET convention.
	EncodingJSON
)

// DoHClient resolves DNS over HTTPS. The zero value is not usable; fill the
// exported configuration and call Exchange. Safe for concurrent use.
type DoHClient struct {
	// Dial opens the raw transport to the server's :443. It receives the
	// dial context (the exchange context capped by DialTimeout) and must
	// honor its cancellation — a blackholed address must surface as a dial
	// error within the budget, not a stalled exchange.
	Dial func(ctx context.Context) (net.Conn, error)
	// DialTimeout caps connection establishment (dial, TLS handshake, HTTP
	// setup) independently of the exchange context. 0 means
	// DefaultDialTimeout; negative disables the cap.
	DialTimeout time.Duration
	// TLS must carry trust anchors and server name; ALPN is set per Mode.
	TLS *tls.Config
	// Mode selects HTTP/2 (default) or pipelined HTTP/1.1.
	Mode DoHMode
	// Encoding selects POST wireformat (default), GET wireformat, or JSON.
	Encoding DoHEncoding
	// Persistent keeps the HTTPS connection across exchanges; otherwise
	// every exchange pays TCP+TLS+HTTP setup, the paper's "H" scenario.
	Persistent bool
	// Path is the DoH endpoint path; default "/dns-query".
	Path string
	// Authority is the :authority / Host value; default the TLS server name.
	Authority string
	// ResumeSessions enables TLS session resumption across the
	// non-persistent client's reconnects (a shared ClientSessionCache).
	// TLS 1.3 resumption skips the certificate retransmission, recovering
	// much of the per-connection overhead Figures 3–5 charge to the "H"
	// scenarios — an extension the paper's §7 hints at.
	ResumeSessions bool
	// Recorder, when set, receives per-exchange costs.
	Recorder CostRecorder

	mu        sync.Mutex
	genmu     sync.Mutex
	h2c       *h2.ClientConn
	h1c       *h1.PipelineClient
	raw       net.Conn
	lastWire  netsim.ConnStats
	lastH2    meter.H2Layer
	closed    bool
	sessCache tls.ClientSessionCache
}

func (c *DoHClient) path() string {
	if c.Path == "" {
		return "/dns-query"
	}
	return c.Path
}

func (c *DoHClient) authority() string {
	if c.Authority != "" {
		return c.Authority
	}
	return c.TLS.ServerName
}

// Close implements Resolver.
func (c *DoHClient) Close() error {
	c.mu.Lock()
	c.closed = true
	h2c, h1c := c.h2c, c.h1c
	c.h2c, c.h1c = nil, nil
	c.mu.Unlock()
	if h2c != nil {
		h2c.Close()
	}
	if h1c != nil {
		h1c.Close()
	}
	return nil
}

// connect establishes TLS with the right ALPN and builds the HTTP client.
// ctx bounds the dial and the TLS handshake.
func (c *DoHClient) connect(ctx context.Context) error {
	raw, err := c.Dial(ctx)
	if err != nil {
		return err
	}
	cfg := c.TLS.Clone()
	if c.Mode == ModeH2 {
		cfg.NextProtos = []string{"h2"}
	} else {
		cfg.NextProtos = []string{"http/1.1"}
	}
	if c.ResumeSessions {
		c.mu.Lock()
		if c.sessCache == nil {
			c.sessCache = tls.NewLRUClientSessionCache(8)
		}
		cfg.ClientSessionCache = c.sessCache
		c.mu.Unlock()
	}
	tc := tls.Client(raw, cfg)
	if err := tc.HandshakeContext(ctx); err != nil {
		raw.Close()
		return fmt.Errorf("dnstransport: doh handshake: %w", err)
	}
	if c.Mode == ModeH2 && tc.ConnectionState().NegotiatedProtocol != "h2" {
		tc.Close()
		return fmt.Errorf("dnstransport: server did not negotiate h2")
	}

	c.mu.Lock()
	c.raw = raw
	// The connection is brand new: start deltas at zero so the TCP/TLS
	// setup traffic is charged to the first exchange (IncludesSetup).
	c.lastWire = netsim.ConnStats{}
	c.lastH2 = meter.H2Layer{}
	c.mu.Unlock()

	if c.Mode == ModeH2 {
		h2c, err := h2.NewClientConn(tc)
		if err != nil {
			tc.Close()
			return err
		}
		c.mu.Lock()
		c.h2c = h2c
		c.mu.Unlock()
		return nil
	}
	c.mu.Lock()
	c.h1c = h1.NewPipelineClient(tc)
	c.mu.Unlock()
	return nil
}

// ensure returns live HTTP clients, dialing when needed. Dials run under
// ctx capped by DialTimeout.
func (c *DoHClient) ensure(ctx context.Context) (h2c *h2.ClientConn, h1c *h1.PipelineClient, fresh bool, err error) {
	c.genmu.Lock()
	defer c.genmu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, false, ErrClosed
	}
	h2c, h1c = c.h2c, c.h1c
	c.mu.Unlock()
	if h2c != nil || h1c != nil {
		return h2c, h1c, false, nil
	}
	dctx, cancel := dialContext(ctx, c.DialTimeout)
	err = c.connect(dctx)
	cancel()
	if err != nil {
		return nil, nil, false, err
	}
	c.mu.Lock()
	h2c, h1c = c.h2c, c.h1c
	c.mu.Unlock()
	return h2c, h1c, true, nil
}

// dropConn discards the current connection after a failure or for
// non-persistent operation.
func (c *DoHClient) dropConn() {
	c.mu.Lock()
	h2c, h1c := c.h2c, c.h1c
	c.h2c, c.h1c = nil, nil
	c.mu.Unlock()
	if h2c != nil {
		h2c.Close()
	}
	if h1c != nil {
		h1c.Close()
	}
}

// Exchange implements Resolver.
func (c *DoHClient) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	start := time.Now()
	h2c, h1c, fresh, err := c.ensure(ctx)
	if err != nil {
		return nil, err
	}

	// RFC 8484 §4.1: DoH queries SHOULD use transaction ID 0 so caches see
	// identical bytes for identical questions.
	msg := cloneWithID(q, 0)

	var resp *dnswire.Message
	switch {
	case h2c != nil:
		resp, err = c.exchangeH2(ctx, h2c, msg)
	case h1c != nil:
		resp, err = c.exchangeH1(ctx, h1c, msg)
	default:
		return nil, ErrClosed
	}
	if err != nil {
		c.dropConn()
		return nil, err
	}
	c.finish(fresh, start)
	if !c.Persistent {
		c.dropConn()
	}
	return resp, nil
}

// buildH2 builds the HTTP/2 request for msg per the configured encoding.
// querySize is the query's size in its chosen representation — the POST
// body, the wireformat a GET carries base64url-encoded, or the JSON GET
// path — so telemetry byte accounting works for every encoding.
func (c *DoHClient) buildH2(msg *dnswire.Message) (req *h2.Request, querySize int, err error) {
	switch c.Encoding {
	case EncodingPOST:
		body, err := msg.Pack()
		if err != nil {
			return nil, 0, err
		}
		return &h2.Request{
			Method: "POST", Scheme: "https", Authority: c.authority(), Path: c.path(),
			Header: []hpack.HeaderField{
				{Name: "content-type", Value: dnsserver.ContentTypeWire},
				{Name: "accept", Value: dnsserver.ContentTypeWire},
			},
			Body: body,
		}, len(body), nil
	case EncodingGET:
		wire, err := msg.Pack()
		if err != nil {
			return nil, 0, err
		}
		return &h2.Request{
			Method: "GET", Scheme: "https", Authority: c.authority(),
			Path:   dnsserver.EncodeGETPath(c.path(), wire),
			Header: []hpack.HeaderField{{Name: "accept", Value: dnsserver.ContentTypeWire}},
		}, len(wire), nil
	case EncodingJSON:
		qq := msg.Question1()
		path := dnsserver.EncodeJSONGETPath(c.path(), qq.Name, qq.Type)
		return &h2.Request{
			Method: "GET", Scheme: "https", Authority: c.authority(),
			Path:   path,
			Header: []hpack.HeaderField{{Name: "accept", Value: dnsserver.ContentTypeJSON}},
		}, len(path), nil
	}
	return nil, 0, fmt.Errorf("dnstransport: unknown encoding %d", c.Encoding)
}

func (c *DoHClient) exchangeH2(ctx context.Context, h2c *h2.ClientConn, msg *dnswire.Message) (*dnswire.Message, error) {
	req, querySize, err := c.buildH2(msg)
	if err != nil {
		return nil, err
	}
	tx := telemetry.FromContext(ctx)
	tx.AddBytesSent(querySize)
	resp, err := h2c.RoundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	tx.AddBytesReceived(len(resp.Body))
	return c.parseResponse(msg, resp.Status, resp.HeaderValue("content-type"), resp.Body)
}

func (c *DoHClient) exchangeH1(ctx context.Context, h1c *h1.PipelineClient, msg *dnswire.Message) (*dnswire.Message, error) {
	var req *h1.Request
	var querySize int
	switch c.Encoding {
	case EncodingPOST:
		body, err := msg.Pack()
		if err != nil {
			return nil, err
		}
		req = &h1.Request{
			Method: "POST", Path: c.path(), Host: c.authority(),
			Header: h1.Header{
				{"Content-Type", dnsserver.ContentTypeWire},
				{"Accept", dnsserver.ContentTypeWire},
			},
			Body: body,
		}
		querySize = len(body)
	case EncodingGET:
		wire, err := msg.Pack()
		if err != nil {
			return nil, err
		}
		req = &h1.Request{
			Method: "GET", Path: dnsserver.EncodeGETPath(c.path(), wire), Host: c.authority(),
			Header: h1.Header{{"Accept", dnsserver.ContentTypeWire}},
		}
		querySize = len(wire)
	case EncodingJSON:
		qq := msg.Question1()
		req = &h1.Request{
			Method: "GET", Path: dnsserver.EncodeJSONGETPath(c.path(), qq.Name, qq.Type), Host: c.authority(),
			Header: h1.Header{{"Accept", dnsserver.ContentTypeJSON}},
		}
		querySize = len(req.Path)
	default:
		return nil, fmt.Errorf("dnstransport: unknown encoding %d", c.Encoding)
	}
	tx := telemetry.FromContext(ctx)
	tx.AddBytesSent(querySize)
	resp, err := h1c.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	tx.AddBytesReceived(len(resp.Body))
	return c.parseResponse(msg, resp.Status, resp.Header.Get("Content-Type"), resp.Body)
}

// parseResponse decodes the HTTP payload back into a DNS message.
func (c *DoHClient) parseResponse(q *dnswire.Message, status int, contentType string, body []byte) (*dnswire.Message, error) {
	if status != 200 {
		return nil, fmt.Errorf("dnstransport: doh server returned HTTP %d", status)
	}
	switch contentType {
	case dnsserver.ContentTypeJSON:
		resp, err := dnsjson.Decode(body)
		if err != nil {
			return nil, err
		}
		return resp, nil
	default:
		resp := new(dnswire.Message)
		if err := resp.Unpack(body); err != nil {
			return nil, fmt.Errorf("dnstransport: bad doh body: %w", err)
		}
		if err := dnswire.ValidateResponse(q, resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
}

// finish records the per-exchange cost deltas.
func (c *DoHClient) finish(fresh bool, start time.Time) {
	if c.Recorder == nil {
		return
	}
	c.mu.Lock()
	var wireDelta netsim.ConnStats
	if c.raw != nil {
		now := wireStats(c.raw)
		wireDelta = now.Sub(c.lastWire)
		c.lastWire = now
	}
	var h2Delta meter.H2Layer
	if c.h2c != nil {
		now := c.h2c.Stats().Layer()
		h2Delta = meter.H2Layer{
			BodyBytes:  now.BodyBytes - c.lastH2.BodyBytes,
			HdrBytes:   now.HdrBytes - c.lastH2.HdrBytes,
			MgmtBytes:  now.MgmtBytes - c.lastH2.MgmtBytes,
			TotalBytes: now.TotalBytes - c.lastH2.TotalBytes,
		}
		c.lastH2 = now
	}
	c.mu.Unlock()
	c.Recorder.RecordCost(Cost{
		Wire:          wireDelta,
		H2:            h2Delta,
		IncludesSetup: fresh,
		Duration:      time.Since(start),
	})
}

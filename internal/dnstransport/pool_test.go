package dnstransport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
)

// fakeResolver is a scriptable in-process Resolver for pool tests.
type fakeResolver struct {
	name      string
	exchanges atomic.Int64
	fail      atomic.Bool
	closed    atomic.Bool
	slow      atomic.Bool // block until the context ends
}

func (f *fakeResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	f.exchanges.Add(1)
	if f.slow.Load() {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if f.fail.Load() {
		return nil, fmt.Errorf("fake %s: injected failure", f.name)
	}
	r := q.Reply()
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.TXT{Strings: []string{f.name}},
	})
	return r, nil
}

func (f *fakeResolver) Close() error { f.closed.Store(true); return nil }

// answeredBy extracts which fake answered the response.
func answeredBy(t *testing.T, resp *dnswire.Message) string {
	t.Helper()
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	return resp.Answers[0].Data.(*dnswire.TXT).Strings[0]
}

// fakeUpstream tracks every connection dialed toward one upstream.
type fakeUpstream struct {
	name     string
	mu       sync.Mutex
	conns    []*fakeResolver
	attempts atomic.Int64
	// dialErr, when set, makes dialing fail.
	dialErr atomic.Bool
	// failNew makes newly dialed connections fail their exchanges.
	failNew atomic.Bool
}

func (u *fakeUpstream) poolUpstream() PoolUpstream {
	return PoolUpstream{Name: u.name, Dial: func(ctx context.Context) (Resolver, error) {
		u.attempts.Add(1)
		if u.dialErr.Load() {
			return nil, fmt.Errorf("%s: dial refused", u.name)
		}
		f := &fakeResolver{name: u.name}
		f.fail.Store(u.failNew.Load())
		u.mu.Lock()
		u.conns = append(u.conns, f)
		u.mu.Unlock()
		return f, nil
	}}
}

func (u *fakeUpstream) dialed() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.conns)
}

func (u *fakeUpstream) failAll(fail bool) {
	u.failNew.Store(fail)
	u.mu.Lock()
	for _, c := range u.conns {
		c.fail.Store(fail)
	}
	u.mu.Unlock()
}

func q(name string) *dnswire.Message {
	return dnswire.NewQuery(0, dnswire.Name(name), dnswire.TypeA)
}

func TestPoolMultiplexesOverConns(t *testing.T) {
	up := &fakeUpstream{name: "primary"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 9; i++ {
		resp, err := p.Exchange(context.Background(), q(fmt.Sprintf("m%d.example.", i)))
		if err != nil {
			t.Fatal(err)
		}
		if got := answeredBy(t, resp); got != "primary" {
			t.Fatalf("answered by %s", got)
		}
	}
	if up.dialed() != 3 {
		t.Errorf("dialed %d conns, want 3 (round-robin over the pool)", up.dialed())
	}
	// All three connections should have carried traffic.
	up.mu.Lock()
	defer up.mu.Unlock()
	for _, c := range up.conns {
		if c.exchanges.Load() != 3 {
			t.Errorf("conn carried %d exchanges, want 3", c.exchanges.Load())
		}
	}
}

func TestPoolFailsOverAcrossUpstreams(t *testing.T) {
	prim := &fakeUpstream{name: "primary"}
	sec := &fakeUpstream{name: "secondary"}
	p, err := NewPool(
		[]PoolUpstream{prim.poolUpstream(), sec.poolUpstream()},
		PoolConfig{ConnsPerUpstream: 1, MaxFailures: 2, BackoffBase: time.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Healthy primary answers everything.
	resp, err := p.Exchange(context.Background(), q("a.example."))
	if err != nil || answeredBy(t, resp) != "primary" {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if sec.dialed() != 0 {
		t.Fatal("secondary dialed while primary healthy")
	}

	// Break the primary: queries fail over per-exchange.
	prim.failAll(true)
	resp, err = p.Exchange(context.Background(), q("b.example."))
	if err != nil {
		t.Fatal(err)
	}
	if got := answeredBy(t, resp); got != "secondary" {
		t.Fatalf("failover answered by %s", got)
	}

	// After MaxFailures the primary is marked down and skipped entirely.
	p.Exchange(context.Background(), q("c.example."))
	p.Exchange(context.Background(), q("d.example."))
	stats := p.Stats()
	if !stats[0].Down {
		t.Errorf("primary not marked down: %+v", stats)
	}
	primDialsWhenDown := prim.dialed()
	if _, err := p.Exchange(context.Background(), q("e.example.")); err != nil {
		t.Fatal(err)
	}
	if prim.dialed() != primDialsWhenDown {
		t.Error("down upstream still being dialed")
	}
	if stats[1].Down {
		t.Errorf("secondary wrongly down: %+v", stats)
	}
}

func TestPoolRecoversAfterBackoff(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	up := &fakeUpstream{name: "flaky"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{
		ConnsPerUpstream: 1, MaxFailures: 1,
		BackoffBase: time.Second, BackoffMax: 8 * time.Second,
		now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	up.failAll(true)
	if _, err := p.Exchange(context.Background(), q("x.example.")); err == nil {
		t.Fatal("exchange against broken upstream succeeded")
	}
	// Repair the upstream; within the backoff window the pool still tries
	// (sole upstream — the all-down fallback), dialing a fresh connection.
	up.failAll(false)
	now = now.Add(2 * time.Second) // past the 1s redial backoff
	resp, err := p.Exchange(context.Background(), q("y.example."))
	if err != nil {
		t.Fatal(err)
	}
	if answeredBy(t, resp) != "flaky" {
		t.Fatal("wrong upstream")
	}
	if s := p.Stats(); s[0].Down {
		t.Errorf("upstream still down after success: %+v", s)
	}
}

func TestPoolRedialBackoffThrottlesDialing(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	up := &fakeUpstream{name: "dead"}
	up.dialErr.Store(true)
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{
		ConnsPerUpstream: 1, MaxFailures: 100, // keep "healthy" so we exercise conn backoff
		BackoffBase: time.Second, now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Exchange(context.Background(), q("a.example.")); err == nil {
		t.Fatal("dial failure swallowed")
	}
	// Immediately after, the slot is in redial backoff: no second dial.
	if _, err := p.Exchange(context.Background(), q("b.example.")); err == nil {
		t.Fatal("backoff exchange succeeded")
	}
	if got := up.attempts.Load(); got != 1 {
		t.Errorf("dial attempts = %d, want 1 (second is throttled)", got)
	}
	now = now.Add(2 * time.Second)
	up.dialErr.Store(false)
	if _, err := p.Exchange(context.Background(), q("c.example.")); err != nil {
		t.Fatalf("exchange after backoff: %v", err)
	}
}

func TestPoolCloseClosesConns(t *testing.T) {
	up := &fakeUpstream{name: "c"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Exchange(context.Background(), q("a.example."))
	p.Exchange(context.Background(), q("b.example."))
	p.Close()
	up.mu.Lock()
	defer up.mu.Unlock()
	for _, c := range up.conns {
		if !c.closed.Load() {
			t.Error("pooled connection left open after Close")
		}
	}
	if _, err := p.Exchange(context.Background(), q("c.example.")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestPoolConcurrentExchanges(t *testing.T) {
	up := &fakeUpstream{name: "conc"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Exchange(context.Background(), q(fmt.Sprintf("c%d.example.", i))); err != nil {
				t.Errorf("exchange %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if up.dialed() > 4 {
		t.Errorf("dialed %d conns, want ≤ 4", up.dialed())
	}
}

// TestBackoffJitterSpreadsRedials breaks two connection slots at the same
// instant with the same config and checks their next-dial times differ —
// the anti-thundering-herd property — while both stay inside the
// [base/2, base) jitter window.
func TestBackoffJitterSpreadsRedials(t *testing.T) {
	now := time.Now()
	cfg := PoolConfig{BackoffBase: time.Second, now: func() time.Time { return now }}.withDefaults()
	c1, c2 := &poolConn{}, &poolConn{}
	c1.noteBroken(cfg)
	c2.noteBroken(cfg)
	if c1.redialAt.Equal(c2.redialAt) {
		t.Errorf("two conns broken together redial at the same instant %v (lockstep herd)", c1.redialAt)
	}
	for i, c := range []*poolConn{c1, c2} {
		d := c.redialAt.Sub(now)
		if d < cfg.BackoffBase/2 || d >= cfg.BackoffBase {
			t.Errorf("conn %d redial delay %v outside jitter window [%v, %v)", i, d, cfg.BackoffBase/2, cfg.BackoffBase)
		}
	}
	// The underlying exponential growth stays deterministic: doubling, then
	// capped.
	if got := nextBackoff(time.Second, cfg); got != 2*time.Second {
		t.Errorf("nextBackoff(1s) = %v, want 2s", got)
	}
	if got := nextBackoff(20*time.Second, cfg); got != cfg.BackoffMax {
		t.Errorf("nextBackoff(20s) = %v, want cap %v", got, cfg.BackoffMax)
	}
}

// TestExchangeUpstreamTargetsSpecific checks the steering entry point aims
// one exchange at exactly the named upstream, bypassing preference order.
func TestExchangeUpstreamTargetsSpecific(t *testing.T) {
	prim := &fakeUpstream{name: "primary"}
	sec := &fakeUpstream{name: "secondary"}
	p, err := NewPool([]PoolUpstream{prim.poolUpstream(), sec.poolUpstream()}, PoolConfig{ConnsPerUpstream: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got, want := p.NumUpstreams(), 2; got != want {
		t.Fatalf("NumUpstreams = %d, want %d", got, want)
	}
	if p.UpstreamName(0) != "primary" || p.UpstreamName(1) != "secondary" {
		t.Fatalf("names = %q, %q", p.UpstreamName(0), p.UpstreamName(1))
	}
	resp, err := p.ExchangeUpstream(context.Background(), 1, q("aim.example."))
	if err != nil {
		t.Fatal(err)
	}
	if got := answeredBy(t, resp); got != "secondary" {
		t.Errorf("answered by %s, want secondary", got)
	}
	if prim.dialed() != 0 {
		t.Error("primary dialed by a secondary-directed exchange")
	}
	if _, err := p.ExchangeUpstream(context.Background(), 5, q("oob.example.")); err == nil {
		t.Error("out-of-range upstream index accepted")
	}
}

// TestExchangeObserverSeesOutcomes installs an observer and checks it sees
// both the success and the failure, with the right upstream names.
func TestExchangeObserverSeesOutcomes(t *testing.T) {
	up := &fakeUpstream{name: "watched"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	type seen struct {
		name string
		err  error
	}
	var mu sync.Mutex
	var outcomes []seen
	p.SetExchangeObserver(func(name string, d time.Duration, err error) {
		mu.Lock()
		outcomes = append(outcomes, seen{name, err})
		mu.Unlock()
	})
	if _, err := p.Exchange(context.Background(), q("ok.example.")); err != nil {
		t.Fatal(err)
	}
	up.failAll(true)
	p.Exchange(context.Background(), q("bad.example."))
	mu.Lock()
	defer mu.Unlock()
	if len(outcomes) != 2 {
		t.Fatalf("observer saw %d outcomes, want 2: %v", len(outcomes), outcomes)
	}
	if outcomes[0].name != "watched" || outcomes[0].err != nil {
		t.Errorf("first outcome = %+v, want watched success", outcomes[0])
	}
	if outcomes[1].err == nil {
		t.Error("failure outcome reported as success")
	}
}

// TestCancelledExchangeChargesNothing cancels an in-flight exchange and
// checks the upstream's health and the connection slot are untouched: a
// hedge loser's cancellation (or a departed client) must not mark a
// healthy upstream down or force a redial.
func TestCancelledExchangeChargesNothing(t *testing.T) {
	up := &fakeUpstream{name: "innocent"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 1, MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Warm the connection, then make it block.
	if _, err := p.Exchange(context.Background(), q("warm.example.")); err != nil {
		t.Fatal(err)
	}
	up.mu.Lock()
	up.conns[0].slow.Store(true)
	up.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Exchange(ctx, q("hung.example."))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled exchange returned no error")
	}
	stats := p.Stats()
	if stats[0].Failures != 0 || stats[0].Down {
		t.Errorf("cancellation charged the upstream: %+v", stats[0])
	}
	// The connection survived: the next exchange reuses it, no redial.
	up.mu.Lock()
	up.conns[0].slow.Store(false)
	up.mu.Unlock()
	if _, err := p.Exchange(context.Background(), q("after.example.")); err != nil {
		t.Fatalf("exchange after cancellation: %v", err)
	}
	if up.dialed() != 1 {
		t.Errorf("dialed %d conns, want 1 (cancellation must not drop the slot)", up.dialed())
	}
}

// TestDeadlineExceededChargesUpstream is the counterpart of the
// cancellation test: a deadline that expires mid-exchange IS charged —
// health, failure counter, and connection drop — because a black-holing
// upstream must still be marked down and redialed.
func TestDeadlineExceededChargesUpstream(t *testing.T) {
	up := &fakeUpstream{name: "blackhole"}
	p, err := NewPool([]PoolUpstream{up.poolUpstream()}, PoolConfig{ConnsPerUpstream: 1, MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Exchange(context.Background(), q("warm.example.")); err != nil {
		t.Fatal(err)
	}
	up.mu.Lock()
	up.conns[0].slow.Store(true)
	up.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Exchange(ctx, q("hole.example.")); err == nil {
		t.Fatal("black-holed exchange returned no error")
	}
	stats := p.Stats()
	if stats[0].Failures != 1 || !stats[0].Down {
		t.Errorf("deadline expiry not charged: %+v", stats[0])
	}
}

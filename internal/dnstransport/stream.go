package dnstransport

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// StreamClient resolves over a stream transport with RFC 1035 two-octet
// length framing: plain TCP, or DNS-over-TLS when the dialer performs a TLS
// handshake. Concurrent queries are written onto the connection as they
// arrive and responses are matched by transaction ID, so a server willing
// to answer out of order (Cloudflare-style DoT) is fully exploited — and a
// server that serializes (the common case the paper found) produces exactly
// the knock-on delays of Figure 2.
type StreamClient struct {
	dial func(ctx context.Context) (net.Conn, error)

	// Persistent keeps one connection across exchanges; otherwise each
	// exchange dials, resolves and closes.
	Persistent bool
	// DialTimeout caps connection establishment (dial plus any TLS
	// handshake) independently of the exchange context: a blackholed
	// address must not eat a caller's whole query budget. 0 means
	// DefaultDialTimeout; negative disables the cap (the caller's context
	// still applies).
	DialTimeout time.Duration
	// Recorder, when set, receives per-exchange costs. On persistent
	// connections costs are per-exchange deltas.
	Recorder CostRecorder

	mu        sync.Mutex
	conn      net.Conn
	raw       net.Conn // bottom of the stack, for wire stats
	pending   *pendingMap
	nextID    uint16
	lastStats netsim.ConnStats
	closed    bool
	genmu     sync.Mutex // serializes connection (re)establishment
}

// NewTCPClient builds a StreamClient over plain TCP. The dial function
// receives the dial context (the exchange context capped by DialTimeout)
// and must honor its cancellation.
func NewTCPClient(dial func(ctx context.Context) (net.Conn, error)) *StreamClient {
	return &StreamClient{dial: dial, Persistent: true, pending: newPendingMap(), nextID: 1}
}

// NewDoTClient builds a StreamClient that performs a TLS handshake over the
// dialed connection (RFC 7858). cfg must carry trust anchors and server
// name. The dial context covers the TLS handshake too, so a stalled
// middlebox cannot hold the exchange past the dial budget.
func NewDoTClient(dial func(ctx context.Context) (net.Conn, error), cfg *tls.Config) *StreamClient {
	return &StreamClient{
		dial: func(ctx context.Context) (net.Conn, error) {
			raw, err := dial(ctx)
			if err != nil {
				return nil, err
			}
			tc := tls.Client(raw, cfg)
			if err := tc.HandshakeContext(ctx); err != nil {
				raw.Close()
				return nil, fmt.Errorf("dnstransport: dot handshake: %w", err)
			}
			return tc, nil
		},
		Persistent: true,
		pending:    newPendingMap(),
		nextID:     1,
	}
}

// Close implements Resolver.
func (c *StreamClient) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.pending.failAll()
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// ensureConn returns the live connection, dialing if necessary, and reports
// whether this call established it. Dials run under ctx capped by
// DialTimeout, so a caller's deadline always bounds connection setup.
func (c *StreamClient) ensureConn(ctx context.Context) (net.Conn, bool, error) {
	c.genmu.Lock()
	defer c.genmu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, false, nil
	}
	c.mu.Unlock()

	dctx, cancel := dialContext(ctx, c.DialTimeout)
	conn, err := c.dial(dctx)
	cancel()
	if err != nil {
		return nil, false, err
	}
	raw := unwrapRaw(conn)
	c.mu.Lock()
	c.conn = conn
	c.raw = raw
	// Fresh connection: charge its TLS/TCP setup bytes to the first
	// exchange rather than silently discarding them.
	c.lastStats = netsim.ConnStats{}
	c.mu.Unlock()
	go c.readLoop(conn)
	return conn, true, nil
}

// unwrapRaw digs beneath a TLS layer to the transport conn for statistics.
func unwrapRaw(conn net.Conn) net.Conn {
	if tc, ok := conn.(*tls.Conn); ok {
		return tc.NetConn()
	}
	return conn
}

func (c *StreamClient) readLoop(conn net.Conn) {
	for {
		wire, err := dnsserver.ReadStreamMessage(conn)
		if err != nil {
			c.dropConn(conn)
			return
		}
		m := new(dnswire.Message)
		if err := m.Unpack(wire); err != nil {
			c.dropConn(conn)
			return
		}
		c.mu.Lock()
		c.pending.deliver(m.ID, m, len(wire))
		c.mu.Unlock()
	}
}

// dropConn abandons a broken connection; pending queries fail and the next
// exchange redials.
func (c *StreamClient) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.pending.failAll()
	c.mu.Unlock()
}

// Exchange implements Resolver.
func (c *StreamClient) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	start := time.Now()
	conn, fresh, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	id, ch, err := c.pending.reserve(c.nextID)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID = id + 1
	c.mu.Unlock()

	msg := cloneWithID(q, id)
	// Pooled pack scratch: WriteStreamMessage copies the bytes into its
	// own pooled frame, so the buffer is free again right after the write.
	wire, release, err := packQuery(msg)
	if err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("dnstransport: packing query: %w", err)
	}
	sent := len(wire)
	werr := dnsserver.WriteStreamMessage(conn, wire)
	release()
	if werr != nil {
		c.unregister(id)
		c.dropConn(conn)
		return nil, fmt.Errorf("dnstransport: stream send: %w", werr)
	}
	tx := telemetry.FromContext(ctx)
	tx.AddBytesSent(sent)

	select {
	case d, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("dnstransport: connection failed mid-query")
		}
		resp := d.msg
		if err := dnswire.ValidateResponse(msg, resp); err != nil {
			return nil, err
		}
		tx.AddBytesReceived(d.size)
		c.finish(conn, fresh, start)
		return resp, nil
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	}
}

// finish records cost and closes per-query connections.
func (c *StreamClient) finish(conn net.Conn, fresh bool, start time.Time) {
	if c.Recorder != nil {
		c.mu.Lock()
		now := wireStats(c.raw)
		delta := now.Sub(c.lastStats)
		c.lastStats = now
		c.mu.Unlock()
		c.Recorder.RecordCost(Cost{
			Wire:          delta,
			IncludesSetup: fresh,
			Duration:      time.Since(start),
		})
	}
	if !c.Persistent {
		c.dropConn(conn)
	}
}

func (c *StreamClient) unregister(id uint16) {
	c.mu.Lock()
	c.pending.drop(id)
	c.mu.Unlock()
}

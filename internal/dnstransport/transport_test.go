package dnstransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// testbed is a full resolver deployment on a simulated network.
type testbed struct {
	net   *netsim.Network
	chain *tlsx.Chain
	host  string
	run   *dnsserver.Running
}

func newTestbed(t *testing.T, handler dnsserver.Handler, mutate func(*dnsserver.Server)) *testbed {
	t.Helper()
	n := netsim.New(1)
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike("resolver.test"))
	if err != nil {
		t.Fatal(err)
	}
	srv := &dnsserver.Server{
		Handler: handler,
		Chain:   chain,
		Endpoints: []dnsserver.Endpoint{
			{Path: "/dns-query", Wire: true, JSON: true},
		},
	}
	if mutate != nil {
		mutate(srv)
	}
	run, err := srv.Start(n, "resolver.test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)
	return &testbed{net: n, chain: chain, host: "resolver.test", run: run}
}

func staticHandler() dnsserver.Handler {
	return dnsserver.Static(netip.MustParseAddr("192.0.2.53"), 300)
}

func (tb *testbed) udpClient(t *testing.T) *UDPClient {
	t.Helper()
	pc, err := tb.net.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	c := NewUDPClient(pc, netsim.Addr(tb.host+":53"))
	t.Cleanup(func() { c.Close() })
	return c
}

func (tb *testbed) tcpClient(t *testing.T) *StreamClient {
	t.Helper()
	c := NewTCPClient(func(ctx context.Context) (net.Conn, error) { return tb.net.DialContext(ctx, "client", tb.host+":53") })
	t.Cleanup(func() { c.Close() })
	return c
}

func (tb *testbed) dotClient(t *testing.T) *StreamClient {
	t.Helper()
	c := NewDoTClient(
		func(ctx context.Context) (net.Conn, error) { return tb.net.DialContext(ctx, "client", tb.host+":853") },
		tb.chain.ClientConfig(tb.host),
	)
	t.Cleanup(func() { c.Close() })
	return c
}

func (tb *testbed) dohClient(t *testing.T, mode DoHMode, persistent bool) *DoHClient {
	t.Helper()
	c := &DoHClient{
		Dial:       func(ctx context.Context) (net.Conn, error) { return tb.net.DialContext(ctx, "client", tb.host+":443") },
		TLS:        tb.chain.ClientConfig(tb.host),
		Mode:       mode,
		Persistent: persistent,
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func checkAnswer(t *testing.T, resp *dnswire.Message, name dnswire.Name) {
	t.Helper()
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	a, ok := resp.Answers[0].Data.(*dnswire.A)
	if !ok || a.Addr != netip.MustParseAddr("192.0.2.53") {
		t.Fatalf("answer = %v", resp.Answers[0])
	}
	if resp.Answers[0].Name != name.Canonical() {
		t.Fatalf("answer name = %v, want %v", resp.Answers[0].Name, name)
	}
}

func TestAllTransportsResolve(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	clients := map[string]Resolver{
		"udp":            tb.udpClient(t),
		"tcp":            tb.tcpClient(t),
		"dot":            tb.dotClient(t),
		"doh-h2":         tb.dohClient(t, ModeH2, true),
		"doh-h1":         tb.dohClient(t, ModeH1, true),
		"doh-h2-oneshot": tb.dohClient(t, ModeH2, false),
	}
	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			q := dnswire.NewQuery(0, "www.example.com.", dnswire.TypeA)
			resp, err := c.Exchange(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			checkAnswer(t, resp, "www.example.com.")
		})
	}
}

func TestDoHEncodings(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	for _, enc := range []struct {
		name string
		e    DoHEncoding
	}{{"post", EncodingPOST}, {"get", EncodingGET}, {"json", EncodingJSON}} {
		t.Run(enc.name, func(t *testing.T) {
			c := tb.dohClient(t, ModeH2, true)
			c.Encoding = enc.e
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "enc.example.com.", dnswire.TypeA))
			if err != nil {
				t.Fatal(err)
			}
			checkAnswer(t, resp, "enc.example.com.")
		})
	}
}

func TestDoHUnsupportedPath(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	c := tb.dohClient(t, ModeH2, true)
	c.Path = "/resolve" // not configured on this deployment
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "x.com.", dnswire.TypeA)); err == nil {
		t.Fatal("query to unknown path succeeded")
	}
}

func TestDoHJSONOnlyEndpointRejectsWire(t *testing.T) {
	tb := newTestbed(t, staticHandler(), func(s *dnsserver.Server) {
		s.Endpoints = []dnsserver.Endpoint{{Path: "/resolve", JSON: true}}
	})
	wire := tb.dohClient(t, ModeH2, true)
	wire.Path = "/resolve"
	if _, err := wire.Exchange(context.Background(), dnswire.NewQuery(0, "x.com.", dnswire.TypeA)); err == nil {
		t.Fatal("wireformat accepted on JSON-only endpoint")
	}
	jsonc := tb.dohClient(t, ModeH2, true)
	jsonc.Path = "/resolve"
	jsonc.Encoding = EncodingJSON
	resp, err := jsonc.Exchange(context.Background(), dnswire.NewQuery(0, "y.example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, resp, "y.example.com.")
}

func TestConcurrentQueriesEveryTransport(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	clients := map[string]Resolver{
		"udp":    tb.udpClient(t),
		"tcp":    tb.tcpClient(t),
		"dot":    tb.dotClient(t),
		"doh-h2": tb.dohClient(t, ModeH2, true),
	}
	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 25; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					qname := dnswire.Name(fmt.Sprintf("host%02d.example.com.", i))
					resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, qname, dnswire.TypeA))
					if err != nil {
						t.Errorf("query %d: %v", i, err)
						return
					}
					if len(resp.Questions) > 0 && resp.Questions[0].Name != qname {
						t.Errorf("query %d: echoed question %v", i, resp.Questions[0].Name)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestUDPRetryOnLoss(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	// 60% loss: with 4 attempts the exchange should almost always succeed.
	tb.net.SetLink("lossy", "resolver.test", netsim.Link{Loss: 0.6})
	pc, err := tb.net.ListenPacket("lossy:1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewUDPClient(pc, netsim.Addr("resolver.test:53"))
	c.Timeout = 50 * time.Millisecond
	c.Retries = 8
	defer c.Close()
	resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "retry.example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, resp, "retry.example.com.")
}

func TestUDPTimesOutWithoutServer(t *testing.T) {
	n := netsim.New(1)
	pc, _ := n.ListenPacket("cli:1")
	c := NewUDPClient(pc, netsim.Addr("void:53"))
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	defer c.Close()
	start := time.Now()
	_, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "x.com.", dnswire.TypeA))
	if err == nil {
		t.Fatal("query into the void succeeded")
	}
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Errorf("gave up after %v, want ≥ 2 attempts × 20ms", d)
	}
}

func TestUDPTruncationOnSmallEDNS(t *testing.T) {
	// Handler returning a large answer set; client advertises a small
	// buffer, so the server must set TC and strip the answers.
	tb := newTestbed(t, bigHandler(), nil)
	c := tb.udpClient(t)
	q := dnswire.NewQuery(0, "big.example.com.", dnswire.TypeTXT)
	q.EDNS.UDPSize = 512
	resp, err := c.Exchange(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("oversized response not truncated")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("truncated response carries %d answers", len(resp.Answers))
	}
	// The same query over TCP returns everything.
	tc := tb.tcpClient(t)
	resp, err = tc.Exchange(context.Background(), dnswire.NewQuery(0, "big.example.com.", dnswire.TypeTXT))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answers) != 40 {
		t.Errorf("tcp fallback: tc=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
}

// bigHandler answers every query with an answer set far beyond any UDP
// payload limit, forcing the server-side TC=1 path.
func bigHandler() dnsserver.Handler {
	return dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		for i := 0; i < 40; i++ {
			r.Answers = append(r.Answers, dnswire.ResourceRecord{
				Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 60,
				Data: &dnswire.TXT{Strings: []string{fmt.Sprintf("record number %02d with some padding text", i)}},
			})
		}
		return r, nil
	})
}

func TestUDPTruncationFallsBackToTCP(t *testing.T) {
	// RFC 7766 §5: a TC=1 UDP response must be retried over TCP. The
	// server's answer set overflows the client's advertised 512-byte
	// buffer, so without the fallback the client would surface a stripped,
	// truncated response (the case TestUDPTruncationOnSmallEDNS pins down).
	tb := newTestbed(t, bigHandler(), nil)
	c := tb.udpClient(t)
	c.Fallback = NewTCPClient(func(ctx context.Context) (net.Conn, error) { return tb.net.DialContext(ctx, "client", tb.host+":53") })
	q := dnswire.NewQuery(0, "fb.example.com.", dnswire.TypeTXT)
	q.EDNS.UDPSize = 512
	resp, err := c.Exchange(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("fallback response still truncated")
	}
	if len(resp.Answers) != 40 {
		t.Errorf("fallback answers = %d, want 40", len(resp.Answers))
	}
}

func TestDoTOutOfOrderVsInOrder(t *testing.T) {
	// A slow first query blocks the second on an in-order DoT server but
	// not on an out-of-order one. This is the paper's §3 DoT finding and
	// the ablation benchmark's subject.
	slowThenFast := func() dnsserver.Handler {
		var n int
		var mu sync.Mutex
		return dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			mu.Lock()
			n++
			first := n == 1
			mu.Unlock()
			if first {
				time.Sleep(200 * time.Millisecond)
			}
			return staticHandler().ServeDNS(ctx, q)
		})
	}
	run := func(t *testing.T, ooo bool) time.Duration {
		tb := newTestbed(t, slowThenFast(), func(s *dnsserver.Server) {
			s.DoTOutOfOrder = ooo
		})
		c := tb.dotClient(t)
		// Prime the connection so the handshake is out of the way.
		// (The first handler call is the slow one; fire it async.)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Exchange(context.Background(), dnswire.NewQuery(0, "slow.example.com.", dnswire.TypeA))
		}()
		time.Sleep(50 * time.Millisecond)
		start := time.Now()
		_, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "fast.example.com.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		wg.Wait()
		return d
	}
	inOrder := run(t, false)
	outOfOrder := run(t, true)
	if inOrder < 100*time.Millisecond {
		t.Errorf("in-order DoT fast query = %v, expected head-of-line blocking", inOrder)
	}
	if outOfOrder > 100*time.Millisecond {
		t.Errorf("out-of-order DoT fast query = %v, expected independence", outOfOrder)
	}
}

func TestStreamClientReconnectsAfterServerClose(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	c := tb.tcpClient(t)
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "a.example.com.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection from underneath.
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	conn.Close()
	time.Sleep(10 * time.Millisecond)
	resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "b.example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatalf("exchange after connection loss: %v", err)
	}
	checkAnswer(t, resp, "b.example.com.")
}

func TestCostRecordingUDP(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	var costs []Cost
	c := tb.udpClient(t)
	c.Recorder = CostFunc(func(cost Cost) { costs = append(costs, cost) })
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "cost.example.com.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if len(costs) != 1 {
		t.Fatalf("recorded %d costs", len(costs))
	}
	wc := costs[0].WireCost()
	if wc.Packets != 2 {
		t.Errorf("udp packets = %d, want 2", wc.Packets)
	}
	// Query ~45B + response ~80B + 2×28B headers ≈ 180B — the paper's
	// median UDP resolution is 182 bytes.
	if wc.Bytes < 120 || wc.Bytes > 320 {
		t.Errorf("udp bytes = %d, want ~180", wc.Bytes)
	}
}

func TestCostRecordingDoHNonPersistent(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	var costs []Cost
	c := tb.dohClient(t, ModeH2, false)
	c.Recorder = CostFunc(func(cost Cost) { costs = append(costs, cost) })
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "cost.example.com.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if len(costs) != 1 || !costs[0].IncludesSetup {
		t.Fatalf("costs = %+v", costs)
	}
	wc := costs[0].WireCost()
	// Non-persistent DoH must be dominated by TLS setup: thousands of
	// bytes, tens of packets (paper: 5737 B / 27 packets for Cloudflare).
	if wc.Bytes < 3000 {
		t.Errorf("non-persistent DoH bytes = %d, want > 3000", wc.Bytes)
	}
	if wc.Packets < 12 {
		t.Errorf("non-persistent DoH packets = %d, want > 12", wc.Packets)
	}
	bd := costs[0].Breakdown()
	if bd.TLS < 1900 {
		t.Errorf("TLS layer = %d bytes, want > cert chain size", bd.TLS)
	}
	if bd.Body <= 0 || bd.Hdr <= 0 || bd.Mgmt <= 0 {
		t.Errorf("breakdown = %+v", bd)
	}
}

func TestCostRecordingDoHPersistentAmortizes(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	var mu sync.Mutex
	var costs []Cost
	c := tb.dohClient(t, ModeH2, true)
	c.Recorder = CostFunc(func(cost Cost) {
		mu.Lock()
		costs = append(costs, cost)
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		name := dnswire.Name(fmt.Sprintf("amort%d.example.com.", i))
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, name, dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	if len(costs) != 10 {
		t.Fatalf("recorded %d costs", len(costs))
	}
	first := costs[0].WireCost()
	later := costs[9].WireCost()
	if !costs[0].IncludesSetup || costs[9].IncludesSetup {
		t.Error("setup attribution wrong")
	}
	if later.Bytes >= first.Bytes/2 {
		t.Errorf("steady-state cost %d not ≪ setup cost %d", later.Bytes, first.Bytes)
	}
	// Paper: persistent DoH ≈ 864 bytes / 8 packets per resolution.
	if later.Bytes < 200 || later.Bytes > 2500 {
		t.Errorf("steady-state DoH bytes = %d, want few hundred", later.Bytes)
	}
	if later.Packets < 3 || later.Packets > 16 {
		t.Errorf("steady-state DoH packets = %d, want ~8", later.Packets)
	}
}

func TestZoneHandlerThroughTransports(t *testing.T) {
	zone := dnsserver.NewZone("example.org.")
	zone.AddA("www.example.org.", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")})
	zone.Add(dnswire.ResourceRecord{
		Name: "alias.example.org.", Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.CNAME{Target: "www.example.org."},
	})
	tb := newTestbed(t, zone, nil)
	c := tb.dohClient(t, ModeH2, true)

	resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "alias.example.org.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 2 {
		t.Fatalf("cname chase answers = %v", resp.Answers)
	}
	if _, ok := resp.Answers[0].Data.(*dnswire.CNAME); !ok {
		t.Error("first answer not the CNAME")
	}

	resp, err = c.Exchange(context.Background(), dnswire.NewQuery(0, "missing.example.org.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.RCode)
	}

	resp, err = c.Exchange(context.Background(), dnswire.NewQuery(0, "outside.net.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestDelayEveryInjectsDelay(t *testing.T) {
	h := dnsserver.DelayEvery(3, 120*time.Millisecond, staticHandler())
	tb := newTestbed(t, h, nil)
	c := tb.udpClient(t)
	c.Timeout = 2 * time.Second
	var times []time.Duration
	for i := 0; i < 6; i++ {
		start := time.Now()
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("d%d.example.com.", i)), dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
		times = append(times, time.Since(start))
	}
	// Queries 3 and 6 (1-indexed) are delayed.
	for i, d := range times {
		delayed := (i+1)%3 == 0
		if delayed && d < 100*time.Millisecond {
			t.Errorf("query %d took %v, expected injected delay", i+1, d)
		}
		if !delayed && d > 100*time.Millisecond {
			t.Errorf("query %d took %v, expected fast path", i+1, d)
		}
	}
}

func TestDoHH1GETAndJSONEncodings(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	for _, enc := range []struct {
		name string
		e    DoHEncoding
	}{{"get", EncodingGET}, {"json", EncodingJSON}} {
		t.Run(enc.name, func(t *testing.T) {
			c := tb.dohClient(t, ModeH1, true)
			c.Encoding = enc.e
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "h1enc.example.com.", dnswire.TypeA))
			if err != nil {
				t.Fatal(err)
			}
			checkAnswer(t, resp, "h1enc.example.com.")
		})
	}
}

func TestDoHSessionResumptionShrinksReconnect(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	run := func(resume bool) (first, second int64) {
		var costs []Cost
		c := tb.dohClient(t, ModeH2, false) // non-persistent: dial per query
		c.ResumeSessions = resume
		c.Recorder = CostFunc(func(cost Cost) { costs = append(costs, cost) })
		for i := 0; i < 2; i++ {
			name := dnswire.Name(fmt.Sprintf("resume%d.example.com.", i))
			if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, name, dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		}
		return costs[0].WireCost().Bytes, costs[1].WireCost().Bytes
	}
	_, fullSecond := run(false)
	_, resumedSecond := run(true)
	// A resumed handshake omits the ~2KB certificate flight.
	if resumedSecond >= fullSecond-1000 {
		t.Errorf("resumed reconnect = %dB, full = %dB; expected ≥1KB saving", resumedSecond, fullSecond)
	}
}

func TestDoHClosedClientRefusesExchange(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	c := tb.dohClient(t, ModeH2, true)
	c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "x.example.", dnswire.TypeA)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestStreamClosedClientRefusesExchange(t *testing.T) {
	tb := newTestbed(t, staticHandler(), nil)
	c := tb.tcpClient(t)
	c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "x.example.", dnswire.TypeA)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Profile is a named access-network impairment: the per-direction link
// settings of one of the degraded regimes the DoH cost literature sweeps.
// The paper's own testbed is the "broadband" case; Hounsel et al.
// ("Comparing the Effects of DNS, DoT, and DoH on Web Performance") emulate
// the cellular regimes where the transport ranking inverts, and Kosek et
// al. ("DNS Privacy with Speed?") run the same impairment-sweep methodology
// for DoQ. Apply one with Network.ApplyProfile, or layer extra propagation
// delay per destination first with WithExtraDelay.
type Profile struct {
	// Name is the stable lookup key ("broadband", "4g", …).
	Name string
	// Description says which network regime the profile models.
	Description string
	// Link carries the per-direction impairment parameters.
	Link Link
}

// WithExtraDelay returns a copy of the profile with d added to the one-way
// propagation delay — for layering a per-destination base RTT under the
// access-network impairment.
func (p Profile) WithExtraDelay(d time.Duration) Profile {
	p.Link.Delay += d
	return p
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s (delay=%v jitter=%v loss=%.1f%% reorder=%.1f%% bw=%dB/s mtu=%d)",
		p.Name, p.Link.Delay, p.Link.Jitter, p.Link.Loss*100, p.Link.Reorder*100,
		p.Link.Bandwidth, p.Link.MTU)
}

// The built-in impairment profiles. Delays are one-way; loss and reorder
// are per-packet probabilities; bandwidth is bytes/second per direction.
var profiles = map[string]Profile{
	"broadband": {
		Name:        "broadband",
		Description: "wired access network, the paper's own measurement regime (§3): low fixed delay, negligible jitter, no loss",
		Link:        Link{Delay: 10 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 12_500_000, MTU: 1500},
	},
	"4g": {
		Name:        "4g",
		Description: "emulated LTE access link (Hounsel et al. §4): moderate delay and jitter, sporadic loss",
		Link:        Link{Delay: 25 * time.Millisecond, Jitter: 8 * time.Millisecond, Loss: 0.005, Reorder: 0.005, Bandwidth: 1_500_000, MTU: 1428},
	},
	"3g": {
		Name:        "3g",
		Description: "emulated 3G access link (Hounsel et al. §4), the regime where connection setup and loss recovery dominate and the Do53-vs-DoH ranking inverts",
		Link:        Link{Delay: 75 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.02, Reorder: 0.01, Bandwidth: 250_000, MTU: 1400},
	},
	"lossy-wifi": {
		Name:        "lossy-wifi",
		Description: "congested 802.11 link: short paths but heavy random loss and reordering, the head-of-line stressor for stream transports",
		Link:        Link{Delay: 15 * time.Millisecond, Jitter: 10 * time.Millisecond, Loss: 0.08, Reorder: 0.03, Bandwidth: 3_000_000, MTU: 1500},
	},
	"satellite": {
		Name:        "satellite",
		Description: "GEO satellite access: extreme propagation delay, where every handshake round trip the paper counts (§5) costs ~600ms",
		Link:        Link{Delay: 300 * time.Millisecond, Jitter: 15 * time.Millisecond, Loss: 0.01, Bandwidth: 1_250_000, MTU: 1500},
	},
}

// Profiles returns the built-in impairment profiles sorted by name.
func Profiles() []Profile {
	out := make([]Profile, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfileNames returns the built-in profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupProfile returns the named built-in profile.
func LookupProfile(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// ApplyProfile installs the profile's link symmetrically between two hosts,
// like SetLink. Configure before traffic flows: installing resets the
// pair's random schedule.
func (n *Network) ApplyProfile(a, b string, p Profile) {
	n.SetLink(a, b, p.Link)
}

package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// startEcho runs a listener that echoes everything back on each conn.
func startEcho(t *testing.T, n *Network, addr string) *Listener {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, err := c.Write(buf[:n]); err != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

func TestDialEchoRoundTrip(t *testing.T) {
	n := New(1)
	startEcho(t, n, "server:80")
	c, err := n.Dial("client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello across the simulated wire")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestDialUnknownHostRefused(t *testing.T) {
	n := New(1)
	if _, err := n.Dial("client", "nobody:80"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestListenAddressInUse(t *testing.T) {
	n := New(1)
	if _, err := n.Listen("host:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("host:1"); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestLatencyIsCharged(t *testing.T) {
	n := New(1)
	n.SetLink("client", "server", Link{Delay: 20 * time.Millisecond})
	startEcho(t, n, "server:80")

	start := time.Now()
	c, err := n.Dial("client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dialTime := time.Since(start)
	// Dial pays one RTT (SYN + SYN-ACK) = 40ms.
	if dialTime < 35*time.Millisecond {
		t.Errorf("dial took %v, want >= ~40ms handshake", dialTime)
	}

	start = time.Now()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 35*time.Millisecond || rtt > 200*time.Millisecond {
		t.Errorf("echo RTT = %v, want ~40ms", rtt)
	}
}

func TestCloseGivesPeerEOF(t *testing.T) {
	n := New(1)
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	c.Write([]byte("bye"))
	c.Close()
	// Peer drains pending data first, then sees EOF.
	buf := make([]byte, 16)
	nn, err := srv.Read(buf)
	if err != nil || string(buf[:nn]) != "bye" {
		t.Fatalf("read = %q, %v", buf[:nn], err)
	}
	if _, err := srv.Read(buf); err != io.EOF {
		t.Errorf("after close err = %v, want EOF", err)
	}
	// Writing on the closed end fails.
	if _, err := c.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write after close = %v, want ErrClosed", err)
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(1)
	startEcho(t, n, "srv:1")
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond || d > 500*time.Millisecond {
		t.Errorf("deadline fired after %v, want ~30ms", d)
	}
	// Clearing the deadline makes reads block again (verify via data path).
	c.SetReadDeadline(time.Time{})
	c.Write([]byte("z"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestWriteBoundariesPreserved(t *testing.T) {
	n := New(1)
	l, _ := n.Listen("srv:1")
	go func() {
		c, _ := l.Accept()
		c.Write([]byte("first"))
		c.Write([]byte("second"))
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	nn, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	// A single Read must not cross a segment boundary.
	if string(buf[:nn]) != "first" {
		t.Errorf("first read = %q, want \"first\"", buf[:nn])
	}
	nn, err = c.Read(buf)
	if err != nil || string(buf[:nn]) != "second" {
		t.Errorf("second read = %q, %v", buf[:nn], err)
	}
}

func TestOrderingPreservedUnderJitter(t *testing.T) {
	n := New(7)
	n.SetLink("cli", "srv", Link{Delay: time.Millisecond, Jitter: 5 * time.Millisecond})
	l, _ := n.Listen("srv:1")
	done := make(chan []byte, 1)
	go func() {
		c, _ := l.Accept()
		var all []byte
		buf := make([]byte, 256)
		for len(all) < 100 {
			nn, err := c.Read(buf)
			all = append(all, buf[:nn]...)
			if err != nil {
				break
			}
		}
		done <- all
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var want []byte
	for i := 0; i < 100; i++ {
		b := []byte{byte(i)}
		want = append(want, b...)
		c.Write(b)
	}
	got := <-done
	if !bytes.Equal(got, want) {
		t.Error("stream reordered under jitter")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	n := New(1)
	// 1 MB/s: a 100 KB segment takes 100 ms to serialize.
	n.SetLink("cli", "srv", Link{Bandwidth: 1 << 20})
	l, _ := n.Listen("srv:1")
	go func() {
		c, _ := l.Accept()
		io.Copy(io.Discard, c)
	}()
	recv := make(chan time.Duration, 1)
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = recv
	start := time.Now()
	c.Write(make([]byte, 100<<10))
	// Write returns immediately (buffered)…
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("write blocked %v", d)
	}
}

func TestPacketConnRoundTrip(t *testing.T) {
	n := New(1)
	srv, err := n.ListenPacket("dns:53")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 512)
		for {
			nn, from, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			srv.WriteTo(buf[:nn], from)
		}
	}()
	cli, err := n.ListenPacket("")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.WriteTo([]byte("query"), Addr("dns:53")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	nn, from, err := cli.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nn]) != "query" || from.String() != "dns:53" {
		t.Errorf("got %q from %v", buf[:nn], from)
	}
}

func TestPacketLoss(t *testing.T) {
	n := New(99)
	n.SetLink("cli", "dns", Link{Loss: 1.0}) // drop everything
	srv, _ := n.ListenPacket("dns:53")
	defer srv.Close()
	cli, _ := n.ListenPacket("cli:1000")
	defer cli.Close()
	if _, err := cli.WriteTo([]byte("q"), Addr("dns:53")); err != nil {
		t.Fatal(err)
	}
	srv.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := srv.ReadFrom(make([]byte, 64)); err == nil {
		t.Fatal("datagram survived 100% loss link")
	}
}

func TestPacketTruncation(t *testing.T) {
	n := New(1)
	srv, _ := n.ListenPacket("dns:53")
	defer srv.Close()
	cli, _ := n.ListenPacket("cli:1")
	defer cli.Close()
	cli.WriteTo([]byte("0123456789"), Addr("dns:53"))
	buf := make([]byte, 4)
	nn, _, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if nn != 4 || string(buf) != "0123" {
		t.Errorf("truncated read = %q (%d)", buf[:nn], nn)
	}
}

func TestPacketWriteToDeadHostIsSilent(t *testing.T) {
	n := New(1)
	cli, _ := n.ListenPacket("cli:1")
	defer cli.Close()
	if _, err := cli.WriteTo([]byte("x"), Addr("gone:53")); err != nil {
		t.Errorf("fire-and-forget write errored: %v", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := New(1)
	l, _ := n.Listen("srv:1")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Accept after close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock")
	}
	// Address is released: relisten succeeds.
	if _, err := n.Listen("srv:1"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	n := New(1)
	startEcho(t, n, "srv:1")
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("cli", "srv:1")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 100)
			c.Write(msg)
			got := make([]byte, 100)
			if _, err := io.ReadFull(c, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d echoed wrong data", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestStreamDeliveryProperty(t *testing.T) {
	// Any sequence of writes is received as the identical concatenated byte
	// stream, regardless of chunk sizes.
	f := func(chunks [][]byte) bool {
		n := New(3)
		l, err := n.Listen("s:1")
		if err != nil {
			return false
		}
		defer l.Close()
		var want []byte
		for _, c := range chunks {
			want = append(want, c...)
		}
		got := make(chan []byte, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				got <- nil
				return
			}
			all, _ := io.ReadAll(c)
			got <- all
		}()
		c, err := n.Dial("c", "s:1")
		if err != nil {
			return false
		}
		for _, chunk := range chunks {
			if len(chunk) == 0 {
				continue
			}
			if _, err := c.Write(chunk); err != nil {
				return false
			}
		}
		c.Close()
		return bytes.Equal(<-got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddrHost(t *testing.T) {
	if Addr("host:443").host() != "host" {
		t.Error("host with port")
	}
	if Addr("bare").host() != "bare" {
		t.Error("bare host")
	}
	if Addr("x:1").Network() != "sim" {
		t.Error("network name")
	}
}

func TestConnStats(t *testing.T) {
	n := New(1)
	n.SetMSS(10)
	l, _ := n.Listen("srv:1")
	serverDone := make(chan ConnStats, 1)
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 64)
		io.ReadFull(c, buf[:25])
		c.Write([]byte("pong"))
		sc := c.(*Conn)
		serverDone <- sc.Stats()
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cc := c.(*Conn)
	cc.Write(make([]byte, 25)) // 25 bytes at MSS 10 → 3 packets, 1 segment
	buf := make([]byte, 4)
	io.ReadFull(cc, buf)
	got := cc.Stats()
	if got.OutBytes != 25 || got.OutSegments != 1 || got.OutPackets != 3 {
		t.Errorf("out stats = %+v", got)
	}
	if got.InBytes != 4 || got.InSegments != 1 || got.InPackets != 1 {
		t.Errorf("in stats = %+v", got)
	}
	srv := <-serverDone
	// The server's view mirrors the client's.
	if srv.OutBytes != got.InBytes || srv.InBytes != got.OutBytes {
		t.Errorf("server stats = %+v, client = %+v", srv, got)
	}
	if got.Total() != 29 {
		t.Errorf("Total = %d", got.Total())
	}
	delta := got.Sub(ConnStats{OutBytes: 20, OutPackets: 2, OutSegments: 1})
	if delta.OutBytes != 5 || delta.OutPackets != 1 || delta.OutSegments != 0 {
		t.Errorf("Sub = %+v", delta)
	}
}

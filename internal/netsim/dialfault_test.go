package netsim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDialContextBlackholeHonorsDeadline(t *testing.T) {
	n := New(1)
	defer startEcho(t, n, "v6.up:53").Close()
	n.SetDialFault("v6.up", DialFault{Blackhole: true})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.DialContext(ctx, "client", "v6.up:53")
	if err == nil {
		t.Fatal("blackholed dial succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > time.Second {
		t.Fatalf("blackholed dial returned after %v, want ~50ms", el)
	}
}

func TestDialContextConnectDelay(t *testing.T) {
	n := New(1)
	defer startEcho(t, n, "up:53").Close()
	n.SetDialFault("up", DialFault{ConnectDelay: 60 * time.Millisecond})

	start := time.Now()
	c, err := n.DialContext(context.Background(), "client", "up:53")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Close()
	if el := time.Since(start); el < 55*time.Millisecond {
		t.Fatalf("connect delay not charged: dial took %v", el)
	}
}

func TestDialContextResetDeterministic(t *testing.T) {
	outcomes := func() []bool {
		n := New(7)
		defer startEcho(t, n, "up:53").Close()
		n.SetDialFault("up", DialFault{ResetProb: 0.5})
		var out []bool
		for i := 0; i < 20; i++ {
			c, err := n.DialContext(context.Background(), "client", "up:53")
			out = append(out, err == nil)
			if err == nil {
				c.Close()
			} else if !strings.Contains(err.Error(), "reset") {
				t.Fatalf("unexpected dial error: %v", err)
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	var resets int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset schedule not reproducible at attempt %d", i)
		}
		if !a[i] {
			resets++
		}
	}
	if resets == 0 || resets == len(a) {
		t.Fatalf("ResetProb 0.5 gave %d/%d resets, want a mix", resets, len(a))
	}
}

func TestLinkFlapSeversConnsAndBlocksDials(t *testing.T) {
	n := New(1)
	defer startEcho(t, n, "up:53").Close()

	c, err := n.DialContext(context.Background(), "client", "up:53")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("pre-flap write: %v", err)
	}

	n.SetLinkFlap("up", FlapWindow{Start: 0, End: 80 * time.Millisecond})

	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on flapped link succeeded, want reset")
	}
	if _, err := n.DialContext(context.Background(), "client", "up:53"); err == nil {
		t.Fatal("dial during flap succeeded, want refusal")
	}

	time.Sleep(100 * time.Millisecond)
	// Outage over: new dials work again.
	c2, err := n.DialContext(context.Background(), "client", "up:53")
	if err != nil {
		t.Fatalf("post-flap dial: %v", err)
	}
	c2.Close()
}

func TestDialProfilesRegistry(t *testing.T) {
	for _, name := range []string{"broken-v6", "flaky-dial"} {
		p, ok := LookupDialProfile(name)
		if !ok {
			t.Fatalf("profile %q missing", name)
		}
		if p.Name != name || p.Description == "" {
			t.Fatalf("profile %q malformed: %+v", name, p)
		}
	}
	if len(DialProfiles()) != len(DialProfileNames()) {
		t.Fatal("DialProfiles and DialProfileNames disagree")
	}
	bv6, _ := LookupDialProfile("broken-v6")
	if !bv6.V6.Blackhole || bv6.V4.active() {
		t.Fatalf("broken-v6 should blackhole only v6: %+v", bv6)
	}

	// ApplyDialProfile fans the per-family faults out to the right hosts.
	n := New(1)
	defer startEcho(t, n, "v4.up:53").Close()
	defer startEcho(t, n, "v6.up:53").Close()
	n.ApplyDialProfile("v4.up", "v6.up", bv6)
	c, err := n.DialContext(context.Background(), "client", "v4.up:53")
	if err != nil {
		t.Fatalf("v4 dial under broken-v6: %v", err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := n.DialContext(ctx, "client", "v6.up:53"); err == nil {
		t.Fatal("v6 dial under broken-v6 succeeded")
	}
}

// Package netsim provides an in-memory network for the DoH cost study: named
// hosts, stream connections with TCP-like reliable ordered delivery, and
// datagram endpoints with UDP-like loss. Links carry configurable one-way
// delay, jitter, loss, reordering, MTU and bandwidth, so experiments that the
// paper ran across a university network, two cloud resolvers, and PlanetLab
// can run hermetically and deterministically — including the degraded-network
// regimes (lossy 3G/4G, satellite) where the paper's follow-ups found the
// transport ranking inverts. Named impairment Profiles bundle the settings.
//
// Every link draws its random decisions (jitter, loss, reordering, stream
// retransmissions) from its own RNG, seeded from the network seed and the
// directed host pair. Traffic on one link therefore sees the same schedule
// on every run with the same seed, no matter how goroutines on other links
// interleave.
//
// Conns preserve write boundaries: each Write becomes one timed segment on
// the link, which is what lets the metering layer (internal/meter) translate
// observed flights into TCP segment and packet counts.
//
// All connection types implement the corresponding net interfaces, so
// crypto/tls, and this repository's HTTP/1.1 and HTTP/2 stacks, run over
// them unmodified.
package netsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Link describes one direction of a path between two hosts.
type Link struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the per-packet loss probability in [0,1]. A lost datagram is
	// dropped outright (the receiver never sees it; clients observe a
	// timeout). A lost stream packet is retransmitted by the simulated TCP:
	// the segment still arrives, but its delivery is delayed by one RTO per
	// retransmission and the retransmission is counted in ConnStats.
	Loss float64
	// Bandwidth, when non-zero, is the link rate in bytes/second;
	// transmission time len/Bandwidth is added per segment.
	Bandwidth int64
	// Reorder is the probability in [0,1] that a datagram is held back an
	// extra ReorderDelay, letting datagrams sent after it overtake. Stream
	// conns are immune: TCP resequences, so reordering there surfaces (like
	// loss) only as delay, which the Jitter knob already models.
	Reorder float64
	// ReorderDelay is the extra hold applied to reordered datagrams; zero
	// derives Delay/2 + Jitter.
	ReorderDelay time.Duration
	// MTU, when non-zero, is the maximum on-wire packet size in bytes
	// including network/transport headers. Datagrams whose payload plus the
	// 28-byte IP+UDP header exceed it are dropped (DF-style blackholing —
	// the failure mode RFC 7766 §5's TCP fallback exists for), and stream
	// segments packetize at min(network MSS, MTU-40).
	MTU int
	// RTO is the retransmission timeout charged per lost stream packet;
	// zero derives max(2*(Delay+Jitter), 50ms).
	RTO time.Duration
}

// transmission returns the serialization time for n bytes.
func (l Link) transmission(n int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
}

// rto returns the retransmission timeout for lost stream packets.
func (l Link) rto() time.Duration {
	if l.RTO > 0 {
		return l.RTO
	}
	if d := 2 * (l.Delay + l.Jitter); d > 50*time.Millisecond {
		return d
	}
	return 50 * time.Millisecond
}

// DatagramHeaderBytes is the IP+UDP header cost counted against a link MTU
// (20 bytes IPv4 + 8 bytes UDP, matching internal/meter's accounting).
// A datagram fits a link when payload + DatagramHeaderBytes <= MTU; anyone
// sizing payloads to a path (e.g. a resolver's max-udp-size clamp) should
// derive the cap from this constant rather than re-guessing the header.
const DatagramHeaderBytes = 28

// mss returns the stream packetization size for this link: the network MSS
// capped by the link MTU minus 40 bytes of IP+TCP headers.
func (l Link) mss(networkMSS int) int {
	mss := networkMSS
	if mss <= 0 {
		mss = DefaultMSS
	}
	if l.MTU > 40 && l.MTU-40 < mss {
		mss = l.MTU - 40
	}
	return mss
}

// Addr is a netsim endpoint address. Its network is "sim" and its string
// form is the host name given to Listen/Dial, e.g. "resolver.example:443".
type Addr string

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// host strips an optional ":port" suffix: link profiles attach to hosts.
func (a Addr) host() string {
	if i := strings.LastIndexByte(string(a), ':'); i >= 0 {
		return string(a)[:i]
	}
	return string(a)
}

type linkKey struct{ from, to string }

// DefaultMSS is the TCP maximum segment size assumed for packet accounting,
// matching a 1500-byte Ethernet MTU minus 40 bytes of IP+TCP headers.
const DefaultMSS = 1460

// Network is a simulated network: a namespace of listeners and packet
// endpoints joined by configurable links. The zero value is not usable;
// construct with New.
type Network struct {
	mu        sync.Mutex
	seed      int64
	def       Link
	mss       int
	links     map[linkKey]Link
	states    map[linkKey]*linkState
	listeners map[Addr]*Listener
	packets   map[Addr]*PacketConn
	nextEphem int

	// faults holds per-host dial faults and link-flap schedules (see
	// dialfault.go). faultsActive counts installed fault states so the
	// per-write flap check stays lock-free on un-faulted networks.
	faults       map[string]*hostFault
	faultsActive atomic.Int32
}

// SetMSS overrides the TCP maximum segment size used for packet accounting.
func (n *Network) SetMSS(mss int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mss = mss
}

func (n *Network) mssValue() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mss <= 0 {
		return DefaultMSS
	}
	return n.mss
}

// New returns an empty network whose links default to zero delay. seed
// drives jitter, loss, reordering and retransmission decisions so runs are
// reproducible.
func New(seed int64) *Network {
	return &Network{
		seed:      seed,
		links:     make(map[linkKey]Link),
		states:    make(map[linkKey]*linkState),
		listeners: make(map[Addr]*Listener),
		packets:   make(map[Addr]*PacketConn),
	}
}

// SetDefaultLink sets the profile used for host pairs without a specific
// link.
func (n *Network) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = l
	// Links without a specific profile resolve through the default; their
	// cached states (including RNG position) must restart from it.
	for k := range n.states {
		if _, specific := n.links[k]; !specific {
			delete(n.states, k)
		}
	}
}

// SetLink installs a symmetric link profile between two hosts (both
// directions). Installing a profile resets the pair's random schedule, so
// configure links before traffic flows for reproducible runs.
func (n *Network) SetLink(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ab := linkKey{Addr(a).host(), Addr(b).host()}
	ba := linkKey{Addr(b).host(), Addr(a).host()}
	n.links[ab] = l
	n.links[ba] = l
	delete(n.states, ab)
	delete(n.states, ba)
}

// linkState joins a directed link's profile with its private RNG. One state
// exists per directed host pair; all random decisions for traffic on that
// direction draw from it in operation order, which is what makes per-link
// schedules independent of unrelated goroutine interleaving.
type linkState struct {
	Link

	mu  sync.Mutex
	rng *rand.Rand
}

// stateFor returns (creating if needed) the directed link state from → to.
func (n *Network) stateFor(from, to Addr) *linkState {
	key := linkKey{from.host(), to.host()}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ls, ok := n.states[key]; ok {
		return ls
	}
	l, ok := n.links[key]
	if !ok {
		l = n.def
	}
	ls := &linkState{Link: l, rng: rand.New(rand.NewSource(n.seed ^ linkSeed(key)))}
	n.states[key] = ls
	return ls
}

// linkSeed derives a stable per-directed-link seed component from the host
// pair (FNV-1a over "from\x00to").
func linkSeed(k linkKey) int64 {
	h := fnv.New64a()
	io.WriteString(h, k.from)
	h.Write([]byte{0})
	io.WriteString(h, k.to)
	return int64(h.Sum64())
}

// delay samples one propagation + jitter delay.
func (ls *linkState) delay() time.Duration {
	d := ls.Delay
	if ls.Jitter > 0 {
		ls.mu.Lock()
		d += time.Duration(ls.rng.Int63n(int64(ls.Jitter)))
		ls.mu.Unlock()
	}
	return d
}

// dropDatagram samples the loss decision for one datagram.
func (ls *linkState) dropDatagram() bool {
	if ls.Loss <= 0 {
		return false
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.rng.Float64() < ls.Loss
}

// reorderExtra samples the reordering decision for one datagram: zero, or
// the extra hold that lets later datagrams overtake this one.
func (ls *linkState) reorderExtra() time.Duration {
	if ls.Reorder <= 0 {
		return 0
	}
	ls.mu.Lock()
	hit := ls.rng.Float64() < ls.Reorder
	ls.mu.Unlock()
	if !hit {
		return 0
	}
	if ls.ReorderDelay > 0 {
		return ls.ReorderDelay
	}
	return ls.Delay/2 + ls.Jitter
}

// maxStreamRetransmits caps per-packet retransmission attempts; the
// simulated TCP never aborts the connection, it just stops re-rolling.
const maxStreamRetransmits = 8

// streamRetransmits samples how many retransmissions a flight of packets
// suffers: each packet is re-sent (and re-rolled) until it survives the
// per-packet loss probability, up to maxStreamRetransmits.
func (ls *linkState) streamRetransmits(packets int64) int64 {
	if ls.Loss <= 0 || packets <= 0 {
		return 0
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var lost int64
	for i := int64(0); i < packets; i++ {
		for tries := 0; tries < maxStreamRetransmits && ls.rng.Float64() < ls.Loss; tries++ {
			lost++
		}
	}
	return lost
}

// ephemeral mints a unique client address for dialers that don't name one.
func (n *Network) ephemeral(host string) Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextEphem++
	return Addr(fmt.Sprintf("%s:%d", host, 49152+n.nextEphem))
}

// Listen opens a stream listener on addr. It fails if addr is taken.
func (n *Network) Listen(addr string) (*Listener, error) {
	a := Addr(addr)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[a]; ok {
		return nil, fmt.Errorf("netsim: listen %s: address in use", addr)
	}
	l := &Listener{
		addr:    a,
		net:     n,
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[a] = l
	return l, nil
}

// Dial opens a stream connection from the named client host to a listener.
// It charges one round-trip time up front, modelling the TCP SYN/SYN-ACK
// exchange, so connection setup latency is visible to the experiments.
// Dial cannot be interrupted and blocks indefinitely on blackholed
// destinations; fault-injected experiments should use DialContext with a
// deadline.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	return n.DialContext(context.Background(), from, to)
}

// Listener accepts stream connections on one address.
type Listener struct {
	addr    Addr
	net     *Network
	backlog chan *Conn
	done    chan struct{}
	once    sync.Once
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close releases the address and unblocks Accept.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "netsim: " + e.op + " deadline exceeded" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// Package netsim provides an in-memory network for the DoH cost study: named
// hosts, stream connections with TCP-like reliable ordered delivery, and
// datagram endpoints with UDP-like loss. Links carry configurable one-way
// delay, jitter, loss (datagrams only) and bandwidth, so experiments that the
// paper ran across a university network, two cloud resolvers, and PlanetLab
// can run hermetically and deterministically.
//
// Conns preserve write boundaries: each Write becomes one timed segment on
// the link, which is what lets the metering layer (internal/meter) translate
// observed flights into TCP segment and packet counts.
//
// All connection types implement the corresponding net interfaces, so
// crypto/tls, and this repository's HTTP/1.1 and HTTP/2 stacks, run over
// them unmodified.
package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// Link describes one direction of a path between two hosts.
type Link struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a datagram is dropped.
	// Stream segments are never dropped (TCP retransmission is modelled as
	// already having happened; loss on streams shows up as added delay).
	Loss float64
	// Bandwidth, when non-zero, is the link rate in bytes/second;
	// transmission time len/Bandwidth is added per segment.
	Bandwidth int64
}

// transmission returns the serialization time for n bytes.
func (l Link) transmission(n int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
}

// Addr is a netsim endpoint address. Its network is "sim" and its string
// form is the host name given to Listen/Dial, e.g. "resolver.example:443".
type Addr string

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// host strips an optional ":port" suffix: link profiles attach to hosts.
func (a Addr) host() string {
	if i := strings.LastIndexByte(string(a), ':'); i >= 0 {
		return string(a)[:i]
	}
	return string(a)
}

type linkKey struct{ from, to string }

// DefaultMSS is the TCP maximum segment size assumed for packet accounting,
// matching a 1500-byte Ethernet MTU minus 40 bytes of IP+TCP headers.
const DefaultMSS = 1460

// Network is a simulated network: a namespace of listeners and packet
// endpoints joined by configurable links. The zero value is not usable;
// construct with New.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	def       Link
	mss       int
	links     map[linkKey]Link
	listeners map[Addr]*Listener
	packets   map[Addr]*PacketConn
	nextEphem int
}

// SetMSS overrides the TCP maximum segment size used for packet accounting.
func (n *Network) SetMSS(mss int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mss = mss
}

func (n *Network) mssValue() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mss <= 0 {
		return DefaultMSS
	}
	return n.mss
}

// New returns an empty network whose links default to zero delay. seed
// drives jitter and loss decisions so runs are reproducible.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		links:     make(map[linkKey]Link),
		listeners: make(map[Addr]*Listener),
		packets:   make(map[Addr]*PacketConn),
	}
}

// SetDefaultLink sets the profile used for host pairs without a specific
// link.
func (n *Network) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = l
}

// SetLink installs a symmetric link profile between two hosts (both
// directions).
func (n *Network) SetLink(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{Addr(a).host(), Addr(b).host()}] = l
	n.links[linkKey{Addr(b).host(), Addr(a).host()}] = l
}

// linkFor returns the directed profile from → to.
func (n *Network) linkFor(from, to Addr) Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[linkKey{from.host(), to.host()}]; ok {
		return l
	}
	return n.def
}

// delayFor samples the per-segment delay (propagation + jitter) from → to.
func (n *Network) delayFor(l Link) time.Duration {
	d := l.Delay
	if l.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(l.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// dropDatagram samples the loss decision for one datagram.
func (n *Network) dropDatagram(l Link) bool {
	if l.Loss <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < l.Loss
}

// ephemeral mints a unique client address for dialers that don't name one.
func (n *Network) ephemeral(host string) Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextEphem++
	return Addr(fmt.Sprintf("%s:%d", host, 49152+n.nextEphem))
}

// Listen opens a stream listener on addr. It fails if addr is taken.
func (n *Network) Listen(addr string) (*Listener, error) {
	a := Addr(addr)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[a]; ok {
		return nil, fmt.Errorf("netsim: listen %s: address in use", addr)
	}
	l := &Listener{
		addr:    a,
		net:     n,
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[a] = l
	return l, nil
}

// Dial opens a stream connection from the named client host to a listener.
// It charges one round-trip time up front, modelling the TCP SYN/SYN-ACK
// exchange, so connection setup latency is visible to the experiments.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	local := Addr(from)
	if !strings.Contains(from, ":") {
		local = n.ephemeral(from)
	}
	remote := Addr(to)
	n.mu.Lock()
	l, ok := n.listeners[remote]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: dial %s: connection refused", to)
	}

	c2s := newHalf()
	s2c := newHalf()
	fwd := n.linkFor(local, remote)
	rev := n.linkFor(remote, local)
	client := &Conn{local: local, remote: remote, in: s2c, out: c2s, link: fwd, net: n}
	server := &Conn{local: remote, remote: local, in: c2s, out: s2c, link: rev, net: n}

	// SYN / SYN-ACK round trip before the connection is usable.
	handshake := n.delayFor(fwd) + n.delayFor(rev)
	if handshake > 0 {
		time.Sleep(handshake)
	}
	select {
	case l.backlog <- server:
	case <-l.done:
		return nil, fmt.Errorf("netsim: dial %s: connection refused (listener closed)", to)
	}
	return client, nil
}

// Listener accepts stream connections on one address.
type Listener struct {
	addr    Addr
	net     *Network
	backlog chan *Conn
	done    chan struct{}
	once    sync.Once
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close releases the address and unblocks Accept.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "netsim: " + e.op + " deadline exceeded" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

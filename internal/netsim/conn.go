package netsim

import (
	"io"
	"net"
	"sync"
	"time"
)

// segment is one timed unit of data in flight. Stream reads never coalesce
// across segments that have not yet "arrived", so per-flight timing is
// preserved.
type segment struct {
	data []byte
	at   time.Time // delivery time
}

// halfConn is one direction of a stream connection: an ordered queue of
// timed segments with deadline-aware blocking reads.
type halfConn struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []segment
	pos      int // read offset into queue[0].data
	closed   bool
	deadline time.Time
	lastAt   time.Time // monotone delivery horizon (keeps FIFO under jitter)

	// Wire accounting, updated per push. Packets counts MSS-sized slices of
	// each segment: one Write that fits in the MSS is one packet. Retrans
	// counts packets the link lost and the simulated TCP re-sent.
	bytes    int64
	segments int64
	packets  int64
	retrans  int64
}

func newHalf() *halfConn {
	h := &halfConn{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// push enqueues a copy of data for delivery after delay (plus serialization
// at the link rate). It never blocks: the sender has already paid its
// modelled costs, and TCP send buffers absorb the rest. packets and retrans
// are the flight's wire accounting, already sampled by the caller.
func (h *halfConn) push(data []byte, delay, transmission time.Duration, packets, retrans int64) {
	cp := make([]byte, len(data))
	copy(cp, data)
	now := time.Now()
	h.mu.Lock()
	at := now.Add(delay)
	if at.Before(h.lastAt) {
		at = h.lastAt // preserve ordering under jitter
	}
	at = at.Add(transmission)
	h.lastAt = at
	h.queue = append(h.queue, segment{data: cp, at: at})
	h.bytes += int64(len(data))
	h.segments++
	h.packets += packets
	h.retrans += retrans
	h.mu.Unlock()
	h.cond.Broadcast()
}

// stats returns the accumulated push-side counters.
func (h *halfConn) stats() (bytes, segments, packets, retrans int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes, h.segments, h.packets, h.retrans
}

// closeWrite marks the stream finished; readers drain then see EOF.
func (h *halfConn) closeWrite() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// setDeadline updates the read deadline and wakes blocked readers so they
// can re-evaluate.
func (h *halfConn) setDeadline(t time.Time) {
	h.mu.Lock()
	h.deadline = t
	h.mu.Unlock()
	h.cond.Broadcast()
}

// read blocks until data has arrived, the stream is closed, or the deadline
// passes.
func (h *halfConn) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		now := time.Now()
		if !h.deadline.IsZero() && !now.Before(h.deadline) {
			return 0, &timeoutError{op: "read"}
		}
		if len(h.queue) > 0 && !h.queue[0].at.After(now) {
			seg := &h.queue[0]
			n := copy(p, seg.data[h.pos:])
			h.pos += n
			if h.pos >= len(seg.data) {
				h.queue = h.queue[1:]
				h.pos = 0
			}
			return n, nil
		}
		if len(h.queue) == 0 && h.closed {
			return 0, io.EOF
		}
		// Sleep until the earliest of: segment arrival, deadline, or a
		// broadcast (new data, close, deadline change).
		var wake time.Time
		if len(h.queue) > 0 {
			wake = h.queue[0].at
		}
		if !h.deadline.IsZero() && (wake.IsZero() || h.deadline.Before(wake)) {
			wake = h.deadline
		}
		var timer *time.Timer
		if !wake.IsZero() {
			// The callback must take the lock before broadcasting: it can
			// only acquire it once cond.Wait below has registered this
			// goroutine, which closes the missed-wakeup window for timers
			// that would otherwise fire between here and Wait.
			timer = time.AfterFunc(time.Until(wake), func() {
				h.mu.Lock()
				h.cond.Broadcast()
				h.mu.Unlock()
			})
		}
		h.cond.Wait()
		if timer != nil {
			timer.Stop()
		}
	}
}

// Conn is one end of a simulated stream connection. It implements net.Conn.
type Conn struct {
	local, remote Addr
	in            *halfConn  // peer → us
	out           *halfConn  // us → peer
	link          *linkState // applied to our writes
	net           *Network

	mu     sync.Mutex
	closed bool
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := c.in.read(p)
	if err == io.EOF {
		c.mu.Lock()
		selfClosed := c.closed
		c.mu.Unlock()
		if selfClosed {
			return n, net.ErrClosed
		}
	}
	return n, err
}

// Write implements net.Conn. Each call becomes one segment on the wire,
// packetized at the link's effective MSS. On lossy links, lost packets are
// retransmitted by the simulated TCP: delivery of the segment (and, via
// FIFO ordering, of everything behind it) is delayed one RTO per
// retransmission, which is exactly the loss-induced head-of-line cost the
// degraded-network experiments measure.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	if len(p) == 0 {
		return 0, nil
	}
	if c.net.connSevered(c.local, c.remote) {
		// A flap window covers one endpoint: the path is gone, so the write
		// surfaces as a reset instead of silently queueing — severing
		// established connections is the point of the flap schedule.
		return 0, errLinkDown("write", string(c.remote))
	}
	mss := c.link.mss(c.net.mssValue())
	packets := int64((len(p) + mss - 1) / mss)
	retrans := c.link.streamRetransmits(packets)
	delay := c.link.delay() + time.Duration(retrans)*c.link.rto()
	c.out.push(p, delay, c.link.transmission(len(p)), packets, retrans)
	return len(p), nil
}

// ConnStats is the wire-level accounting of one stream connection:
// bytes, write flights (segments), MSS-sized packets, and loss-triggered
// retransmissions per direction. "Out" is this endpoint's transmissions,
// "In" is the peer's. Retransmissions are counted separately from Packets
// so the paper's steady-state byte/packet figures stay comparable across
// impairment profiles; the latency cost of each retransmission is already
// charged on the wire as one RTO of added delivery delay.
type ConnStats struct {
	OutBytes    int64
	OutSegments int64
	OutPackets  int64
	OutRetrans  int64
	InBytes     int64
	InSegments  int64
	InPackets   int64
	InRetrans   int64
}

// Total returns the byte total across both directions.
func (s ConnStats) Total() int64 { return s.OutBytes + s.InBytes }

// Sub returns s - prev, for per-request delta accounting on persistent
// connections.
func (s ConnStats) Sub(prev ConnStats) ConnStats {
	return ConnStats{
		OutBytes:    s.OutBytes - prev.OutBytes,
		OutSegments: s.OutSegments - prev.OutSegments,
		OutPackets:  s.OutPackets - prev.OutPackets,
		OutRetrans:  s.OutRetrans - prev.OutRetrans,
		InBytes:     s.InBytes - prev.InBytes,
		InSegments:  s.InSegments - prev.InSegments,
		InPackets:   s.InPackets - prev.InPackets,
		InRetrans:   s.InRetrans - prev.InRetrans,
	}
}

// Stats snapshots the connection's wire counters. Both directions are
// visible from either endpoint.
func (c *Conn) Stats() ConnStats {
	ob, os, op, or := c.out.stats()
	ib, is, ip, ir := c.in.stats()
	return ConnStats{
		OutBytes: ob, OutSegments: os, OutPackets: op, OutRetrans: or,
		InBytes: ib, InSegments: is, InPackets: ip, InRetrans: ir,
	}
}

// Close shuts down both directions. The peer drains queued data and then
// reads EOF, matching TCP FIN semantics.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.out.closeWrite()
	c.in.closeWrite() // our own pending reads drain, then fail
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes never block in the simulator
// (send buffers are unbounded), so the deadline is accepted and ignored.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

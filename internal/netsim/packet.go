package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// datagram is one UDP-like message in flight or queued for delivery.
type datagram struct {
	data []byte
	from Addr
	at   time.Time
}

// PacketConn is a UDP-like endpoint: unreliable, unordered-in-principle
// (ordering in practice follows delivery times), message-boundary-
// preserving. It implements net.PacketConn.
type PacketConn struct {
	addr Addr
	net  *Network

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []datagram
	closed   bool
	deadline time.Time
}

var _ net.PacketConn = (*PacketConn)(nil)

// ListenPacket opens a datagram endpoint on addr; "" binds an ephemeral
// client address.
func (n *Network) ListenPacket(addr string) (*PacketConn, error) {
	a := Addr(addr)
	if addr == "" {
		a = n.ephemeral("client")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.packets[a]; ok {
		return nil, fmt.Errorf("netsim: listen packet %s: address in use", a)
	}
	p := &PacketConn{addr: a, net: n}
	p.cond = sync.NewCond(&p.mu)
	n.packets[a] = p
	return p, nil
}

// WriteTo sends one datagram toward addr, subject to the link's loss, MTU,
// reordering and delay. A dropped datagram still counts as sent (the bytes
// left this host); the receiver simply never sees it, so clients observe
// the drop as a read timeout — the failure mode their retransmission logic
// exists for.
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	dst := Addr(addr.String())
	p.net.mu.Lock()
	target, ok := p.net.packets[dst]
	p.net.mu.Unlock()
	if !ok {
		// UDP is fire-and-forget: writing to a dead host is not an error.
		return len(b), nil
	}
	if p.net.connSevered(p.addr, dst) {
		// Inside a flap window the path is down: datagrams vanish like any
		// other traffic, and the sender finds out via its own timeout.
		return len(b), nil
	}
	link := p.net.stateFor(p.addr, dst)
	if link.MTU > 0 && len(b)+DatagramHeaderBytes > link.MTU {
		// Oversized for the path: blackholed, DF-style. No RNG draw — MTU
		// drops are structural, not stochastic.
		return len(b), nil
	}
	if link.dropDatagram() {
		return len(b), nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	delay := link.delay() + link.reorderExtra()
	at := time.Now().Add(delay).Add(link.transmission(len(b)))
	target.mu.Lock()
	target.queue = append(target.queue, datagram{data: cp, from: p.addr, at: at})
	target.mu.Unlock()
	target.cond.Broadcast()
	return len(b), nil
}

// ReadFrom blocks for the next datagram; oversized datagrams are truncated
// to len(b) exactly as UDP sockets do.
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		now := time.Now()
		if p.closed {
			return 0, nil, net.ErrClosed
		}
		if !p.deadline.IsZero() && !now.Before(p.deadline) {
			return 0, nil, &timeoutError{op: "read"}
		}
		// Find the deliverable datagram that arrived first. Scanning for
		// the minimum at (rather than the first deliverable in send order)
		// is what lets a reorder-held datagram actually be overtaken.
		idx := -1
		for i := range p.queue {
			if p.queue[i].at.After(now) {
				continue
			}
			if idx < 0 || p.queue[i].at.Before(p.queue[idx].at) {
				idx = i
			}
		}
		if idx >= 0 {
			d := p.queue[idx]
			p.queue = append(p.queue[:idx], p.queue[idx+1:]...)
			n := copy(b, d.data)
			return n, d.from, nil
		}
		var wake time.Time
		for i := range p.queue {
			if wake.IsZero() || p.queue[i].at.Before(wake) {
				wake = p.queue[i].at
			}
		}
		if !p.deadline.IsZero() && (wake.IsZero() || p.deadline.Before(wake)) {
			wake = p.deadline
		}
		var timer *time.Timer
		if !wake.IsZero() {
			// Locking in the callback serializes the broadcast behind
			// cond.Wait's registration, preventing a missed wakeup when
			// the timer fires immediately.
			timer = time.AfterFunc(time.Until(wake), func() {
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			})
		}
		p.cond.Wait()
		if timer != nil {
			timer.Stop()
		}
	}
}

// Close releases the address and unblocks readers.
func (p *PacketConn) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.net.mu.Lock()
	delete(p.net.packets, p.addr)
	p.net.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// LocalAddr implements net.PacketConn.
func (p *PacketConn) LocalAddr() net.Addr { return p.addr }

// SetDeadline implements net.PacketConn.
func (p *PacketConn) SetDeadline(t time.Time) error { return p.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (p *PacketConn) SetReadDeadline(t time.Time) error {
	p.mu.Lock()
	p.deadline = t
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// SetWriteDeadline implements net.PacketConn; sends never block.
func (p *PacketConn) SetWriteDeadline(time.Time) error { return nil }

package netsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"time"
)

// DialFault is a connection-setup impairment attached to a destination host.
// It models the failure modes that motivate Happy-Eyeballs dialing (RFC 8305
// §1): paths where one address family silently blackholes SYNs, where
// middleboxes slow or reset handshakes, while established connections (and
// the other family) still work. Faults act at dial time only; use link-flap
// windows (SetLinkFlap) for outages that also sever established traffic.
type DialFault struct {
	// Blackhole silently discards connection attempts: DialContext blocks
	// until the caller's context is cancelled, exactly like a SYN into a
	// null route. Dials with no context deadline block forever, so always
	// pair fault injection with DialContext and a deadline.
	Blackhole bool
	// ConnectDelay is added before the handshake, modelling slow-path
	// middleboxes or overloaded accept queues. It is interruptible by the
	// dial context.
	ConnectDelay time.Duration
	// ResetProb is the probability in [0,1] that the attempt is reset
	// (connection refused) after ConnectDelay — the flaky reset-on-connect
	// regime. 1 resets every attempt. Draws come from a per-host seeded RNG
	// so fault schedules are reproducible.
	ResetProb float64
}

// active reports whether the fault impairs anything.
func (f DialFault) active() bool {
	return f.Blackhole || f.ConnectDelay > 0 || f.ResetProb > 0
}

// FlapWindow is one outage interval of a link-flap schedule, expressed as
// offsets from the moment SetLinkFlap was called.
type FlapWindow struct {
	// Start is when the outage begins, relative to SetLinkFlap.
	Start time.Duration
	// End is when the outage ends (exclusive), relative to SetLinkFlap.
	End time.Duration
}

// hostFault is the per-host fault state: the dial fault, its private RNG
// (seeded from the network seed and the host name, so reset schedules are
// deterministic), and any link-flap schedule.
type hostFault struct {
	fault DialFault
	rng   *rand.Rand

	flapBase    time.Time
	flapWindows []FlapWindow
}

// faultSeed derives the per-host RNG seed component (FNV-1a over
// "dialfault\x00host", disjoint from linkSeed's keyspace).
func faultSeed(host string) int64 {
	h := fnv.New64a()
	io.WriteString(h, "dialfault")
	h.Write([]byte{0})
	io.WriteString(h, host)
	return int64(h.Sum64())
}

// faultFor returns the fault state for a host, or nil. The faultsActive
// fast path lets un-faulted networks skip the lock entirely on hot paths
// (every Conn.Write consults the flap schedule).
func (n *Network) faultFor(host string) *hostFault {
	if n.faultsActive.Load() == 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults[host]
}

// ensureFault returns (creating if needed) the fault state for host.
// Caller must hold n.mu.
func (n *Network) ensureFault(host string) *hostFault {
	if n.faults == nil {
		n.faults = make(map[string]*hostFault)
	}
	hf, ok := n.faults[host]
	if !ok {
		hf = &hostFault{rng: rand.New(rand.NewSource(n.seed ^ faultSeed(host)))}
		n.faults[host] = hf
		n.faultsActive.Add(1)
	}
	return hf
}

// SetDialFault installs (or replaces) the dial fault for connections dialed
// to host. Like SetLink, configure before traffic flows: installing resets
// the host's fault RNG schedule.
func (n *Network) SetDialFault(host string, f DialFault) {
	h := Addr(host).host()
	n.mu.Lock()
	defer n.mu.Unlock()
	hf := n.ensureFault(h)
	hf.fault = f
	hf.rng = rand.New(rand.NewSource(n.seed ^ faultSeed(h)))
}

// ClearDialFault removes the dial fault for host, keeping any flap schedule.
func (n *Network) ClearDialFault(host string) {
	h := Addr(host).host()
	n.mu.Lock()
	defer n.mu.Unlock()
	if hf, ok := n.faults[h]; ok {
		hf.fault = DialFault{}
	}
}

// SetLinkFlap installs a link-flap schedule for host: during each window
// (measured from the moment of this call) the host is unreachable — new
// dials to it are refused, and writes on established connections touching
// it fail with a reset, severing them mid-run. This is the "network change"
// event the dialer's recovery path is tested against: flap the winning
// address's host and a resilient proxy must re-converge without
// client-visible failures.
func (n *Network) SetLinkFlap(host string, windows ...FlapWindow) {
	h := Addr(host).host()
	n.mu.Lock()
	defer n.mu.Unlock()
	hf := n.ensureFault(h)
	hf.flapBase = time.Now()
	hf.flapWindows = append([]FlapWindow(nil), windows...)
}

// linkDown reports whether host is inside one of its flap outage windows.
func (n *Network) linkDown(host string) bool {
	hf := n.faultFor(host)
	if hf == nil || len(hf.flapWindows) == 0 {
		return false
	}
	off := time.Since(hf.flapBase)
	for _, w := range hf.flapWindows {
		if off >= w.Start && off < w.End {
			return true
		}
	}
	return false
}

// connSevered reports whether either endpoint of a connection is currently
// flapped; Conn.Write consults it so outages sever established streams.
func (n *Network) connSevered(a, b Addr) bool {
	if n.faultsActive.Load() == 0 {
		return false
	}
	return n.linkDown(a.host()) || n.linkDown(b.host())
}

// errLinkDown marks flap-window failures; callers can match on the message.
func errLinkDown(op, target string) error {
	return fmt.Errorf("netsim: %s %s: connection reset (link down)", op, target)
}

// sleepCtx sleeps for d or until ctx is cancelled, returning ctx.Err() on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DialContext is Dial with context cancellation and fault injection: the
// handshake round trip (and any injected connect delay) is interruptible,
// blackholed destinations block until the context ends, and flapped or
// reset-faulted destinations refuse the attempt. Every dial path that can
// face an impaired network should come through here with a deadline.
func (n *Network) DialContext(ctx context.Context, from, to string) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", to, err)
	}
	local := Addr(from)
	if !strings.Contains(from, ":") {
		local = n.ephemeral(from)
	}
	remote := Addr(to)

	if hf := n.faultFor(remote.host()); hf != nil && hf.fault.active() {
		f := hf.fault
		if f.Blackhole {
			// A SYN into a null route: nothing ever comes back. The caller's
			// deadline is the only way out, exactly the stall Happy Eyeballs
			// exists to race against.
			<-ctx.Done()
			return nil, fmt.Errorf("netsim: dial %s: blackholed: %w", to, ctx.Err())
		}
		if f.ConnectDelay > 0 {
			if err := sleepCtx(ctx, f.ConnectDelay); err != nil {
				return nil, fmt.Errorf("netsim: dial %s: %w", to, err)
			}
		}
		if f.ResetProb > 0 {
			n.mu.Lock()
			hit := hf.rng.Float64() < f.ResetProb
			n.mu.Unlock()
			if hit {
				return nil, fmt.Errorf("netsim: dial %s: connection reset during handshake", to)
			}
		}
	}
	if n.connSevered(local, remote) {
		return nil, errLinkDown("dial", to)
	}

	n.mu.Lock()
	l, ok := n.listeners[remote]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: dial %s: connection refused", to)
	}

	c2s := newHalf()
	s2c := newHalf()
	fwd := n.stateFor(local, remote)
	rev := n.stateFor(remote, local)
	client := &Conn{local: local, remote: remote, in: s2c, out: c2s, link: fwd, net: n}
	server := &Conn{local: remote, remote: local, in: c2s, out: s2c, link: rev, net: n}

	// SYN / SYN-ACK round trip before the connection is usable.
	if handshake := fwd.delay() + rev.delay(); handshake > 0 {
		if err := sleepCtx(ctx, handshake); err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", to, err)
		}
	}
	select {
	case l.backlog <- server:
	case <-l.done:
		return nil, fmt.Errorf("netsim: dial %s: connection refused (listener closed)", to)
	case <-ctx.Done():
		return nil, fmt.Errorf("netsim: dial %s: %w", to, ctx.Err())
	}
	return client, nil
}

// DialProfile is a named bundle of per-family dial faults, the dial-time
// analogue of Profile: apply one to an upstream's IPv4/IPv6 host pair to
// replay a connectivity pathology.
type DialProfile struct {
	// Name is the stable lookup key ("broken-v6", "flaky-dial").
	Name string
	// Description says which connectivity pathology the profile models.
	Description string
	// V4 is the fault applied to the upstream's IPv4 host.
	V4 DialFault
	// V6 is the fault applied to the upstream's IPv6 host.
	V6 DialFault
}

// String implements fmt.Stringer.
func (p DialProfile) String() string {
	return fmt.Sprintf("%s (v4: blackhole=%v delay=%v reset=%.0f%%; v6: blackhole=%v delay=%v reset=%.0f%%)",
		p.Name, p.V4.Blackhole, p.V4.ConnectDelay, p.V4.ResetProb*100,
		p.V6.Blackhole, p.V6.ConnectDelay, p.V6.ResetProb*100)
}

// The built-in dial-fault profiles.
var dialProfiles = map[string]DialProfile{
	"broken-v6": {
		Name:        "broken-v6",
		Description: "IPv6 SYNs blackholed while IPv4 works — the asymmetric-connectivity case RFC 8305 was written for; without Happy Eyeballs every cold dial stalls a full dial timeout",
		V6:          DialFault{Blackhole: true},
	},
	"flaky-dial": {
		Name:        "flaky-dial",
		Description: "both families slow and flaky at connection setup: 40ms extra handshake latency and a 25% chance each attempt is reset, the regime where staggered racing and winner stickiness pay off",
		V4:          DialFault{ConnectDelay: 40 * time.Millisecond, ResetProb: 0.25},
		V6:          DialFault{ConnectDelay: 40 * time.Millisecond, ResetProb: 0.25},
	},
}

// DialProfiles returns the built-in dial-fault profiles sorted by name.
func DialProfiles() []DialProfile {
	out := make([]DialProfile, 0, len(dialProfiles))
	for _, p := range dialProfiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DialProfileNames returns the built-in dial-fault profile names, sorted.
func DialProfileNames() []string {
	names := make([]string, 0, len(dialProfiles))
	for name := range dialProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupDialProfile returns the named built-in dial-fault profile.
func LookupDialProfile(name string) (DialProfile, bool) {
	p, ok := dialProfiles[name]
	return p, ok
}

// ApplyDialProfile installs the profile's per-family faults on an upstream's
// IPv4 and IPv6 hosts.
func (n *Network) ApplyDialProfile(v4Host, v6Host string, p DialProfile) {
	n.SetDialFault(v4Host, p.V4)
	n.SetDialFault(v6Host, p.V6)
}

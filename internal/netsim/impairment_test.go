package netsim

import (
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"
)

// driveProfile runs one deterministic traffic pattern over a fresh network
// with the profile installed between client and server: a stream connection
// carrying a fixed write schedule, and a datagram flow whose arrivals are
// recorded as a loss schedule. It returns the stream's ConnStats and the
// per-datagram delivered/lost bitmap.
func driveProfile(t *testing.T, seed int64, p Profile, datagrams int) (ConnStats, []bool) {
	t.Helper()
	n := New(seed)
	n.ApplyProfile("cli", "srv", p)

	// Stream leg: fixed write schedule from both ends, stats snapshotted
	// after all pushes (push-side counters update synchronously, so no
	// waiting on simulated delivery times is needed).
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serverUp := make(chan io.Closer, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for i := 0; i < 10; i++ {
			c.Write(make([]byte, 700+i*211))
		}
		serverUp <- c
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := c.Write(make([]byte, 80+i*137)); err != nil {
			t.Fatal(err)
		}
	}
	sc := <-serverUp
	stats := c.(*Conn).Stats()
	sc.Close()
	c.Close()

	// Datagram leg: fixed-size sends, sequence number in the payload; the
	// delivered-set is the link's loss schedule. The reader waits past the
	// worst-case delivery time (delay + jitter + reorder hold).
	srv, err := n.ListenPacket("srv:53")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.ListenPacket("cli:53")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < datagrams; i++ {
		pkt := make([]byte, 64)
		pkt[0], pkt[1] = byte(i>>8), byte(i)
		if _, err := cli.WriteTo(pkt, Addr("srv:53")); err != nil {
			t.Fatal(err)
		}
	}
	worst := p.Link.Delay + p.Link.Jitter + p.Link.ReorderDelay + p.Link.Delay/2 + 250*time.Millisecond
	srv.SetReadDeadline(time.Now().Add(worst))
	delivered := make([]bool, datagrams)
	buf := make([]byte, 64)
	for {
		nn, _, err := srv.ReadFrom(buf)
		if err != nil {
			break
		}
		if nn >= 2 {
			delivered[int(buf[0])<<8|int(buf[1])] = true
		}
	}
	return stats, delivered
}

// TestProfileDeterminism is the impairment contract: the same seed and
// profile reproduce byte-identical stream ConnStats (bytes, segments,
// packets, retransmissions) and the identical datagram loss schedule, for
// every built-in profile.
func TestProfileDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second impairment sweep under -short")
	}
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			const seed, datagrams = 1234, 120
			stats1, sched1 := driveProfile(t, seed, p, datagrams)
			stats2, sched2 := driveProfile(t, seed, p, datagrams)
			if stats1 != stats2 {
				t.Errorf("ConnStats differ across runs:\n  run1 %+v\n  run2 %+v", stats1, stats2)
			}
			if !reflect.DeepEqual(sched1, sched2) {
				t.Errorf("datagram loss schedule differs across runs:\n  run1 %v\n  run2 %v", bitmapString(sched1), bitmapString(sched2))
			}
			if p.Link.Loss > 0.01 && countTrue(sched1) == datagrams {
				t.Errorf("profile %s (loss %.1f%%) delivered all %d datagrams", p.Name, p.Link.Loss*100, datagrams)
			}
			if countTrue(sched1) == 0 {
				t.Errorf("profile %s delivered no datagrams", p.Name)
			}
		})
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func bitmapString(b []bool) string {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// TestStreamLossRetransmission checks the stream half of loss semantics:
// on a lossy link data still arrives intact (TCP reliability), the
// retransmissions are counted in ConnStats, and delivery is delayed by at
// least one RTO relative to the nominal path.
func TestStreamLossRetransmission(t *testing.T) {
	n := New(11)
	rto := 40 * time.Millisecond
	n.SetLink("cli", "srv", Link{Loss: 0.5, RTO: rto})
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	received := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		all, _ := io.ReadAll(c)
		received <- all
	}()
	c, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const writes = 20
	for i := 0; i < writes; i++ {
		c.Write([]byte{byte(i)})
	}
	stats := c.(*Conn).Stats()
	if stats.OutRetrans == 0 {
		t.Fatalf("no retransmissions recorded at 50%% loss over %d packets: %+v", writes, stats)
	}
	if stats.OutPackets != writes {
		t.Errorf("OutPackets = %d, want %d (retransmissions must not inflate the packet count)", stats.OutPackets, writes)
	}
	c.Close()
	got := <-received
	if len(got) != writes {
		t.Fatalf("received %d bytes, want %d — loss must not lose stream data", len(got), writes)
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("byte %d = %d, want %d — loss must not reorder stream data", i, b, i)
		}
	}
	// Penalties on back-to-back writes overlap (the delivery horizon is a
	// running max), so the guaranteed floor is one RTO, not the sum.
	if elapsed := time.Since(start); elapsed < rto {
		t.Errorf("delivery took %v, want >= one RTO (%v) of retransmission delay", elapsed, rto)
	}
}

// TestMTUDropsOversizedDatagrams checks DF-style blackholing: datagrams
// whose payload+28 exceeds the link MTU never arrive, smaller ones do.
func TestMTUDropsOversizedDatagrams(t *testing.T) {
	n := New(1)
	n.SetLink("cli", "srv", Link{MTU: 512})
	srv, _ := n.ListenPacket("srv:53")
	defer srv.Close()
	cli, _ := n.ListenPacket("cli:53")
	defer cli.Close()
	if _, err := cli.WriteTo(make([]byte, 600), Addr("srv:53")); err != nil {
		t.Fatalf("oversized write must be fire-and-forget, got %v", err)
	}
	if _, err := cli.WriteTo(make([]byte, 484), Addr("srv:53")); err != nil {
		t.Fatal(err)
	}
	srv.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1024)
	nn, _, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatalf("within-MTU datagram lost: %v", err)
	}
	if nn != 484 {
		t.Errorf("delivered %d bytes, want the 484-byte datagram (600-byte one must be dropped)", nn)
	}
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := srv.ReadFrom(buf); err == nil {
		t.Error("oversized datagram survived an MTU-512 link")
	}
}

// TestDatagramReordering checks that a reorder-held datagram is overtaken
// by one sent after it.
func TestDatagramReordering(t *testing.T) {
	n := New(1)
	n.SetLink("cli", "srv", Link{Reorder: 1.0, ReorderDelay: 80 * time.Millisecond})
	srv, _ := n.ListenPacket("srv:53")
	defer srv.Close()
	cli, _ := n.ListenPacket("cli:53")
	defer cli.Close()
	cli.WriteTo([]byte{0}, Addr("srv:53"))
	// Clear the reorder hold for the second datagram only.
	n.SetLink("cli", "srv", Link{})
	cli.WriteTo([]byte{1}, Addr("srv:53"))
	srv.SetReadDeadline(time.Now().Add(time.Second))
	var order []byte
	buf := make([]byte, 8)
	for len(order) < 2 {
		nn, _, err := srv.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if nn > 0 {
			order = append(order, buf[0])
		}
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("delivery order = %v, want the held datagram overtaken ([1 0])", order)
	}
}

// TestLinkMSS checks the MTU cap on stream packetization.
func TestLinkMSS(t *testing.T) {
	cases := []struct {
		link       Link
		networkMSS int
		want       int
	}{
		{Link{}, 0, DefaultMSS},
		{Link{}, 100, 100},
		{Link{MTU: 1500}, 0, 1460},
		{Link{MTU: 576}, 0, 536},
		{Link{MTU: 576}, 100, 100},
	}
	for _, c := range cases {
		if got := c.link.mss(c.networkMSS); got != c.want {
			t.Errorf("Link{MTU:%d}.mss(%d) = %d, want %d", c.link.MTU, c.networkMSS, got, c.want)
		}
	}
}

// TestProfileRegistry checks the profile registry's invariants: five named
// profiles, stable lookups, and WithExtraDelay layering.
func TestProfileRegistry(t *testing.T) {
	names := ProfileNames()
	want := []string{"3g", "4g", "broadband", "lossy-wifi", "satellite"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ProfileNames() = %v, want %v", names, want)
	}
	if len(Profiles()) != len(want) {
		t.Fatalf("Profiles() returned %d entries, want %d", len(Profiles()), len(want))
	}
	for _, name := range names {
		p, ok := LookupProfile(name)
		if !ok || p.Name != name {
			t.Errorf("LookupProfile(%q) = %+v, %v", name, p, ok)
		}
		if p.Description == "" {
			t.Errorf("profile %s has no description", name)
		}
		if p.Link.Delay <= 0 || p.Link.Bandwidth <= 0 || p.Link.MTU <= 0 {
			t.Errorf("profile %s has unset core parameters: %+v", name, p.Link)
		}
	}
	if _, ok := LookupProfile("5g"); ok {
		t.Error("LookupProfile invented a profile")
	}
	base, _ := LookupProfile("3g")
	layered := base.WithExtraDelay(30 * time.Millisecond)
	if layered.Link.Delay != base.Link.Delay+30*time.Millisecond {
		t.Errorf("WithExtraDelay delay = %v", layered.Link.Delay)
	}
	if layered.Link.Loss != base.Link.Loss {
		t.Error("WithExtraDelay must not touch loss")
	}
	if s := layered.String(); s == "" || s == base.String() {
		t.Errorf("String() = %q, want delay-reflecting form", s)
	}
	// fmt.Stringer sanity for docs/CLIs.
	if got := fmt.Sprintf("%v", base); got != base.String() {
		t.Errorf("Sprintf(%%v) = %q", got)
	}
}

// Package steer is the adaptive upstream-steering layer between the
// forwarding proxy and the connection pool: it decides *which* upstream
// answers each query, using a live per-upstream latency and health model
// instead of the pool's static preference order.
//
// The paper's central finding is that DoH cost is dominated by resolver
// choice and network conditions, not by the transport itself — and Hounsel
// et al. show resolver choice swings tail latency more than the
// DoH-vs-Do53 decision. Production resolvers therefore steer: they rank
// upstreams by smoothed RTT, hedge slow exchanges, and keep probing
// demoted upstreams so a recovered one can win traffic back. This package
// is that closed loop, fed by the same per-exchange outcomes the
// telemetry subsystem records.
//
// Three policies are provided:
//
//   - PolicyFailover preserves the pre-steering behaviour: the pool's
//     static order with health-based failover. The Steerer still scores
//     every exchange, so /debug/cost shows the model the other policies
//     would act on.
//   - PolicyFastest sends each query to the upstream with the lowest
//     effective score (EWMA SRTT inflated by failure rate), with periodic
//     exploration probes to non-best upstreams so scores never go stale.
//   - PolicyHedged sends to the best upstream and, if no answer arrives
//     within the hedge delay (configured, or derived per query from the
//     primary's SRTT + 4·RTTVAR — roughly its live p95), fires the same
//     query at the runner-up; the first answer wins and the loser's
//     exchange is cancelled.
//
// The Steerer is a dnstransport.Resolver, so it slots between the cache
// and the pool without either knowing.
package steer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
)

// Policy selects how the steerer spreads queries over the pool's
// upstreams.
type Policy uint8

// The steering policies.
const (
	// PolicyFailover is the pool's native behaviour: static preference
	// order with health-based failover.
	PolicyFailover Policy = iota
	// PolicyFastest routes each query to the lowest-scored upstream, with
	// periodic exploration probes keeping every score live.
	PolicyFastest
	// PolicyHedged races a delayed second exchange against the primary;
	// the first answer wins and the loser is cancelled.
	PolicyHedged
)

// String returns the flag/metrics label for the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFastest:
		return "fastest"
	case PolicyHedged:
		return "hedged"
	}
	return "failover"
}

// ParsePolicy maps a policy name ("failover", "fastest", "hedged") to its
// Policy; the empty string is PolicyFailover, matching a zero Config.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "failover":
		return PolicyFailover, nil
	case "fastest":
		return PolicyFastest, nil
	case "hedged":
		return PolicyHedged, nil
	}
	return PolicyFailover, fmt.Errorf("steer: unknown policy %q (want failover, fastest or hedged)", s)
}

// Backend is the upstream capability the steerer drives. dnstransport.Pool
// implements it; tests substitute scripted fakes.
type Backend interface {
	// Exchange is the backend's native (failover-ordered) exchange.
	Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error)
	// ExchangeUpstream aims one exchange at upstream i, no failover.
	ExchangeUpstream(ctx context.Context, i int, q *dnswire.Message) (*dnswire.Message, error)
	// NumUpstreams reports the upstream count; UpstreamName names them in
	// preference order; UpstreamHealthy reports backoff state.
	NumUpstreams() int
	UpstreamName(i int) string
	UpstreamHealthy(i int) bool
	// SetExchangeObserver installs the per-attempt outcome callback the
	// steerer scores from.
	SetExchangeObserver(dnstransport.ExchangeObserver)
	// Close releases the backend.
	Close() error
}

// Config tunes a Steerer. The zero value is PolicyFailover with default
// knobs.
type Config struct {
	// Policy selects the steering behaviour.
	Policy Policy
	// HedgeDelay is how long PolicyHedged waits before firing the second
	// exchange. Zero derives the delay per query from the primary's live
	// latency model — SRTT + 4·RTTVAR, the TCP RTO formula, which sits
	// near the attempt distribution's p95 — clamped to
	// [MinHedgeDelay, MaxHedgeDelay] (DefaultHedgeDelay while the primary
	// is unsampled).
	HedgeDelay time.Duration
	// ExploreEvery is PolicyFastest's exploration cadence: every Nth query
	// is routed to a non-best upstream, rotating through the runners-up,
	// so a demoted upstream keeps producing fresh samples and can win
	// traffic back after it recovers. Zero means DefaultExploreEvery;
	// negative disables exploration.
	ExploreEvery int
}

// Steering timing defaults.
const (
	// DefaultExploreEvery is the exploration cadence when Config leaves it
	// zero: one probe per 16 queries.
	DefaultExploreEvery = 16
	// DefaultHedgeDelay is the adaptive hedge delay before the primary has
	// any samples.
	DefaultHedgeDelay = 25 * time.Millisecond
	// MinHedgeDelay and MaxHedgeDelay clamp the adaptive hedge delay.
	MinHedgeDelay = time.Millisecond
	MaxHedgeDelay = 2 * time.Second
)

// Steerer routes queries over a Backend's upstreams according to a Policy,
// scoring every exchange attempt (its own and anything else the backend
// carries) through the backend's ExchangeObserver. It implements
// dnstransport.Resolver. Safe for concurrent use.
type Steerer struct {
	backend Backend
	cfg     Config
	scores  []*score
	byName  map[string]int
	n       atomic.Uint64 // query counter driving the exploration cadence
}

// New wraps backend with a steering layer and installs the scorer as the
// backend's exchange observer (every policy's traffic feeds the model, so
// switching policies at deploy time starts from live scores, and
// PolicyFailover deployments still expose the model in their cost report).
func New(backend Backend, cfg Config) *Steerer {
	if cfg.ExploreEvery == 0 {
		cfg.ExploreEvery = DefaultExploreEvery
	}
	n := backend.NumUpstreams()
	s := &Steerer{
		backend: backend,
		cfg:     cfg,
		scores:  make([]*score, n),
		byName:  make(map[string]int, n),
	}
	for i := 0; i < n; i++ {
		s.scores[i] = &score{}
		s.byName[backend.UpstreamName(i)] = i
	}
	backend.SetExchangeObserver(s.observe)
	return s
}

// observe feeds one exchange attempt into the upstream's score. Attempts
// that died with the caller's cancellation are ignored: a hedge loser
// cancelled because its rival answered first says nothing about the
// upstream it was aimed at.
func (s *Steerer) observe(name string, d time.Duration, err error) {
	if err != nil && errors.Is(err, context.Canceled) {
		return
	}
	if i, ok := s.byName[name]; ok {
		s.scores[i].observe(d, err == nil)
	}
}

// Observe feeds one exchange attempt into the model by upstream name. It
// is the exported face of the steerer's own observer, for callers that
// chain additional sinks onto the backend's single ExchangeObserver slot:
// replace the observer with your own and call Observe from it so the
// scoreboard keeps learning.
func (s *Steerer) Observe(name string, d time.Duration, err error) { s.observe(name, d, err) }

// Seed primes upstream name's model with one synthetic observation — a
// bootstrap probe's verdict, typically — and is a no-op once the upstream
// has real samples or when the name is unknown. ok=false plants d (the
// probe timeout) as the RTT with a zero success rate, ranking the
// upstream behind every healthy one from the first query; ok=true plants
// the probe's measured RTT as a normal first sample.
func (s *Steerer) Seed(name string, d time.Duration, ok bool) {
	if i, known := s.byName[name]; known {
		s.scores[i].seed(d, ok)
	}
}

// Close implements Resolver: the backend (and its pooled connections) is
// released.
func (s *Steerer) Close() error { return s.backend.Close() }

// Exchange implements Resolver, dispatching on the configured policy.
func (s *Steerer) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	switch s.cfg.Policy {
	case PolicyFastest:
		return s.exchangeFastest(ctx, q)
	case PolicyHedged:
		return s.exchangeHedged(ctx, q)
	}
	return s.backend.Exchange(ctx, q)
}

// rank orders upstream indices by effective score, best first. Unhealthy
// upstreams (pool backoff) sort after every healthy one regardless of
// latency; unsampled upstreams score zero and therefore sort first among
// the healthy — which is what seeds the model on a cold start.
func (s *Steerer) rank() []int {
	n := len(s.scores)
	order := make([]int, n)
	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		order[i] = i
		costs[i] = s.scores[i].cost()
		if !s.backend.UpstreamHealthy(i) {
			costs[i] += downPenalty
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
	return order
}

// downPenalty pushes upstreams in failure backoff behind every healthy
// one while preserving their relative latency order.
const downPenalty = float64(24 * time.Hour)

// exchangeFastest routes to the best-ranked upstream, falling through the
// ranking on failure. Every ExploreEvery-th query instead probes one of
// the runners-up (rotating, so each gets refreshed in turn).
func (s *Steerer) exchangeFastest(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	ts := tx.TraceStart()
	order := s.rank()
	if ee := s.cfg.ExploreEvery; ee > 0 && len(order) > 1 {
		if n := s.n.Add(1); n%uint64(ee) == 0 {
			// Rotate the probed upstream to the front rather than swapping:
			// the rest keep their rank order, so a failed probe falls back
			// to the actual best, not to whichever runner-up inherited the
			// probe's slot.
			pick := 1 + int((n/uint64(ee))%uint64(len(order)-1))
			probed := order[pick]
			copy(order[1:pick+1], order[:pick])
			order[0] = probed
		}
	}
	tx.TraceSpan(qtrace.PhaseSteer, ts)
	var lastErr error
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		resp, err := s.backend.ExchangeUpstream(ctx, i, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// exchangeHedged sends to the best-ranked upstream and races the runner-up
// after the hedge delay (or immediately, when the primary fails outright
// first). The first answer wins; the deferred cancel reaps the loser, and
// the pool's cancellation-neutral accounting keeps the loser's upstream
// unblamed. With both legs failed, the remaining ranked upstreams are
// tried in order, preserving the pool's never-give-up-silently property.
//
// The racing legs must not share the caller's telemetry Transaction — it
// is single-goroutine property that is recycled after the response
// leaves, and the losing leg can still be mid-exchange then. Each leg
// instead carries its own background Transaction against the same sink:
// dials, failures, bytes and exchange latency land in the aggregate
// counters with exactly the measurement windows the other policies use,
// and the caller's record is only attributed the winning upstream's name
// (plus the hedge counters), never written from a leg goroutine.
func (s *Steerer) exchangeHedged(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	ts := tx.TraceStart()
	order := s.rank()
	tx.TraceSpan(qtrace.PhaseSteer, ts)
	if len(order) == 1 {
		return s.backend.ExchangeUpstream(ctx, order[0], q)
	}
	hctx, cancel := context.WithCancel(telemetry.DetachContext(ctx))
	defer cancel()

	type outcome struct {
		resp  *dnswire.Message
		err   error
		hedge bool
	}
	results := make(chan outcome, 2)
	// Leg launch times live on the serving goroutine: each leg's
	// PhaseHedgeLeg span is recorded on the caller's trace when its
	// outcome arrives here, never from a leg goroutine (the caller's
	// record is single-goroutine property, like its counters).
	var legStart [2]time.Time
	launch := func(up int, hedge bool) {
		if tx.Traced() {
			idx := 0
			if hedge {
				idx = 1
			}
			legStart[idx] = time.Now()
		}
		legTx := tx.Metrics().BeginBackground()
		legCtx := telemetry.NewContext(hctx, legTx)
		go func() {
			resp, err := s.backend.ExchangeUpstream(legCtx, up, q)
			legTx.Finish()
			results <- outcome{resp, err, hedge}
		}()
	}
	launch(order[0], false)
	start := time.Now()
	timer := time.NewTimer(s.hedgeDelay(order[0]))
	defer timer.Stop()

	hedged, primaryFailed := false, false
	pending := 1
	var firstErr error
	fireHedge := func() {
		hedged = true
		pending++
		tx.HedgeFired()
		launch(order[1], true)
	}
	for {
		select {
		case <-timer.C:
			if !hedged {
				fireHedge()
			}
		case out := <-results:
			if tx.Traced() {
				idx := 0
				if out.hedge {
					idx = 1
				}
				tx.TraceSpanBetween(qtrace.PhaseHedgeLeg, legStart[idx], time.Now())
			}
			if out.err == nil {
				win := order[0]
				if out.hedge {
					win = order[1]
					tx.HedgeWon()
					if !primaryFailed {
						// The cancelled primary produces no sample of its
						// own (cancellations are ignored by the scorer), so
						// an always-losing primary would stay at cost zero
						// and hog the top rank forever. Charge it a
						// censored sample instead: its true RTT is at least
						// the time that had elapsed when its rival's answer
						// arrived. A primary that FAILED was already scored
						// as a failure and earns no such success sample.
						s.scores[order[0]].observe(time.Since(start), true)
					}
				}
				tx.AttributeUpstream(s.backend.UpstreamName(win))
				return out.resp, nil
			}
			pending--
			if firstErr == nil {
				firstErr = out.err
			}
			if !out.hedge {
				primaryFailed = true
			}
			if ctx.Err() != nil {
				return nil, firstErr
			}
			if !hedged {
				// The primary failed before the delay elapsed: there is no
				// point waiting out the timer, fire the hedge now.
				fireHedge()
			} else if pending == 0 {
				return s.exchangeRest(ctx, order[2:], q, firstErr)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// exchangeRest walks the post-hedge remainder of the ranking; firstErr is
// returned when nothing answers.
func (s *Steerer) exchangeRest(ctx context.Context, order []int, q *dnswire.Message, firstErr error) (*dnswire.Message, error) {
	for _, i := range order {
		if ctx.Err() != nil {
			break
		}
		if resp, err := s.backend.ExchangeUpstream(ctx, i, q); err == nil {
			return resp, nil
		}
	}
	return nil, firstErr
}

// hedgeDelay resolves the wait before the second exchange: the configured
// fixed delay, or the primary's SRTT + 4·RTTVAR clamped to the default
// window (DefaultHedgeDelay while unsampled).
func (s *Steerer) hedgeDelay(primary int) time.Duration {
	if s.cfg.HedgeDelay > 0 {
		return s.cfg.HedgeDelay
	}
	d := s.scores[primary].rto()
	if d == 0 {
		return DefaultHedgeDelay
	}
	if d < MinHedgeDelay {
		return MinHedgeDelay
	}
	if d > MaxHedgeDelay {
		return MaxHedgeDelay
	}
	return d
}

// UpstreamScore snapshots one upstream's steering model for the cost
// report.
type UpstreamScore struct {
	// Name is the upstream's pool name.
	Name string `json:"name"`
	// SRTTMs and RTTVarMs are the smoothed RTT model in milliseconds.
	SRTTMs   float64 `json:"srtt_ms"`
	RTTVarMs float64 `json:"rttvar_ms"`
	// SuccessRate is the attempt-success EWMA in [0,1].
	SuccessRate float64 `json:"success_rate"`
	// Samples counts the attempts scored so far.
	Samples uint64 `json:"samples"`
	// Healthy mirrors the pool's backoff state at snapshot time.
	Healthy bool `json:"healthy"`
}

// Report is the steering section of the proxy's /debug/cost payload: the
// active policy and the live model it acts on, best-ranked first.
type Report struct {
	// Policy is the active policy label.
	Policy string `json:"policy"`
	// HedgeDelayMs is the configured fixed hedge delay; 0 means adaptive.
	HedgeDelayMs float64 `json:"hedge_delay_ms"`
	// Upstreams lists the per-upstream models in current rank order.
	Upstreams []UpstreamScore `json:"upstreams"`
}

// Report snapshots the steering state.
func (s *Steerer) Report() Report {
	r := Report{
		Policy:       s.cfg.Policy.String(),
		HedgeDelayMs: float64(s.cfg.HedgeDelay) / float64(time.Millisecond),
	}
	for _, i := range s.rank() {
		snap := s.scores[i].snapshot()
		snap.Name = s.backend.UpstreamName(i)
		snap.Healthy = s.backend.UpstreamHealthy(i)
		r.Upstreams = append(r.Upstreams, snap)
	}
	return r
}

var _ dnstransport.Resolver = (*Steerer)(nil)
var _ Backend = (*dnstransport.Pool)(nil)

package steer

import (
	"sync"
	"time"
)

// EWMA gains, straight from the TCP RTT estimator (RFC 6298): 1/8 for the
// smoothed RTT, 1/4 for its variance, and 1/8 for the success rate so one
// failure among recent successes demotes but does not banish.
const (
	srttGain    = 8
	rttvarGain  = 4
	successGain = 8
)

// failurePenalty scales how strongly the failure fraction inflates an
// upstream's effective cost: an upstream failing every attempt looks
// (1 + failurePenalty)× slower than its SRTT says.
const failurePenalty = 8.0

// score is one upstream's live latency and health model. Successful
// attempts update the SRTT/RTTVAR pair; every attempt updates the success
// EWMA. All methods are safe for concurrent use.
type score struct {
	mu      sync.Mutex
	srtt    time.Duration
	rttvar  time.Duration
	success float64
	samples uint64
}

// observe folds one exchange attempt into the model. Failed attempts do
// not touch the RTT estimate — the time to an error is not a round trip —
// but they drag the success EWMA down, which inflates cost.
func (sc *score) observe(d time.Duration, ok bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if ok {
		if sc.srtt == 0 {
			sc.srtt, sc.rttvar = d, d/2
		} else {
			diff := sc.srtt - d
			if diff < 0 {
				diff = -diff
			}
			sc.rttvar += (diff - sc.rttvar) / rttvarGain
			sc.srtt += (d - sc.srtt) / srttGain
		}
	}
	v := 0.0
	if ok {
		v = 1.0
	}
	if sc.samples == 0 {
		sc.success = v
	} else {
		sc.success += (v - sc.success) / successGain
	}
	sc.samples++
}

// cost is the ranking key: SRTT inflated by the failure fraction. An
// unsampled upstream costs zero, so cold starts probe everything once in
// preference order. An upstream that has only ever failed has no RTT to
// inflate, so a millisecond baseline stands in — without it, a dead
// upstream would score zero forever and hog the top rank.
func (sc *score) cost() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.samples == 0 {
		return 0
	}
	base := float64(sc.srtt)
	if base == 0 {
		base = float64(time.Millisecond)
	}
	return base * (1 + failurePenalty*(1-sc.success))
}

// seed primes an unsampled model with one synthetic observation and is a
// no-op once real samples exist: bootstrap evidence must never overwrite
// the live model. A success seed plants the probe's RTT as the SRTT; a
// failure seed plants the probe timeout, which cost() inflates by the
// full failurePenalty — a known-dead upstream starts ranked behind every
// healthy one instead of at the unsampled cost of zero, so the first real
// queries never hedge into it.
func (sc *score) seed(d time.Duration, ok bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.samples != 0 {
		return
	}
	sc.srtt, sc.rttvar = d, d/2
	if ok {
		sc.success = 1
	}
	sc.samples++
}

// rto is the TCP-style retransmission bound SRTT + 4·RTTVAR — for a
// roughly normal attempt distribution it sits past the p95, which is what
// the adaptive hedge delay wants: hedge only when this attempt is already
// in the primary's own tail. Zero while unsampled.
func (sc *score) rto() time.Duration {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.srtt + 4*sc.rttvar
}

// snapshot renders the model for the cost report (Name and Healthy are
// filled by the caller).
func (sc *score) snapshot() UpstreamScore {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return UpstreamScore{
		SRTTMs:      float64(sc.srtt) / float64(time.Millisecond),
		RTTVarMs:    float64(sc.rttvar) / float64(time.Millisecond),
		SuccessRate: sc.success,
		Samples:     sc.samples,
	}
}

package steer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// fakeUpstream scripts one backend upstream: a fixed answer latency, an
// optional injected failure, and counters for directed exchanges and
// cancellations.
type fakeUpstream struct {
	name      string
	delay     time.Duration
	fail      atomic.Bool
	healthy   atomic.Bool
	exchanges atomic.Int64
	cancelled atomic.Int64
}

// fakeBackend implements Backend over scripted upstreams and reports every
// attempt to the installed observer, mirroring the pool's contract
// (including the full-attempt duration and the cancellation error).
type fakeBackend struct {
	ups      []*fakeUpstream
	observer atomic.Pointer[dnstransport.ExchangeObserver]
	native   atomic.Int64 // Exchange (failover) calls
	// onExchange, when set, sees every directed exchange's context (for
	// asserting what the steerer threads through to the legs).
	onExchange func(ctx context.Context)
}

func newFakeBackend(ups ...*fakeUpstream) *fakeBackend {
	for _, u := range ups {
		u.healthy.Store(true)
	}
	return &fakeBackend{ups: ups}
}

func (b *fakeBackend) observe(name string, d time.Duration, err error) {
	if fn := b.observer.Load(); fn != nil {
		(*fn)(name, d, err)
	}
}

func (b *fakeBackend) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	b.native.Add(1)
	return b.ExchangeUpstream(ctx, 0, q)
}

func (b *fakeBackend) ExchangeUpstream(ctx context.Context, i int, q *dnswire.Message) (*dnswire.Message, error) {
	if b.onExchange != nil {
		b.onExchange(ctx)
	}
	u := b.ups[i]
	u.exchanges.Add(1)
	start := time.Now()
	if u.delay > 0 {
		select {
		case <-time.After(u.delay):
		case <-ctx.Done():
			u.cancelled.Add(1)
			b.observe(u.name, time.Since(start), ctx.Err())
			return nil, ctx.Err()
		}
	}
	if u.fail.Load() {
		err := fmt.Errorf("%s: injected failure", u.name)
		b.observe(u.name, time.Since(start), err)
		return nil, err
	}
	r := q.Reply()
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.TXT{Strings: []string{u.name}},
	})
	b.observe(u.name, time.Since(start), nil)
	return r, nil
}

func (b *fakeBackend) NumUpstreams() int         { return len(b.ups) }
func (b *fakeBackend) UpstreamName(i int) string { return b.ups[i].name }
func (b *fakeBackend) UpstreamHealthy(i int) bool {
	return b.ups[i].healthy.Load()
}
func (b *fakeBackend) SetExchangeObserver(fn dnstransport.ExchangeObserver) {
	if fn == nil {
		b.observer.Store(nil)
		return
	}
	b.observer.Store(&fn)
}
func (b *fakeBackend) Close() error { return nil }

func q(name string) *dnswire.Message {
	return dnswire.NewQuery(0, dnswire.Name(name), dnswire.TypeA)
}

func answeredBy(t *testing.T, resp *dnswire.Message) string {
	t.Helper()
	if resp == nil || len(resp.Answers) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	return resp.Answers[0].Data.(*dnswire.TXT).Strings[0]
}

func TestParsePolicy(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyFailover, true},
		{"failover", PolicyFailover, true},
		{"fastest", PolicyFastest, true},
		{"hedged", PolicyHedged, true},
		{"bogus", PolicyFailover, false},
	} {
		got, err := ParsePolicy(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%v", tt.in, got, err, tt.want, tt.ok)
		}
	}
	for p, want := range map[Policy]string{PolicyFailover: "failover", PolicyFastest: "fastest", PolicyHedged: "hedged"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestFailoverDelegatesToBackend(t *testing.T) {
	b := newFakeBackend(&fakeUpstream{name: "a"}, &fakeUpstream{name: "b"})
	s := New(b, Config{Policy: PolicyFailover})
	defer s.Close()
	if _, err := s.Exchange(context.Background(), q("x.example.")); err != nil {
		t.Fatal(err)
	}
	if b.native.Load() != 1 {
		t.Errorf("native exchanges = %d, want 1 (failover must delegate)", b.native.Load())
	}
	// Even delegated traffic feeds the model.
	rep := s.Report()
	var samples uint64
	for _, u := range rep.Upstreams {
		samples += u.Samples
	}
	if samples == 0 {
		t.Error("failover traffic not scored")
	}
}

// seed feeds n synthetic successful samples of duration d into upstream
// name through the observer, the way live traffic would.
func seed(s *Steerer, name string, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		s.observe(name, d, nil)
	}
}

func TestFastestRoutesToLowestSRTT(t *testing.T) {
	slow := &fakeUpstream{name: "slow"}
	fast := &fakeUpstream{name: "fast"}
	b := newFakeBackend(slow, fast)
	s := New(b, Config{Policy: PolicyFastest, ExploreEvery: -1})
	defer s.Close()
	seed(s, "slow", 80*time.Millisecond, 8)
	seed(s, "fast", 2*time.Millisecond, 8)
	for i := 0; i < 10; i++ {
		resp, err := s.Exchange(context.Background(), q(fmt.Sprintf("r%d.example.", i)))
		if err != nil {
			t.Fatal(err)
		}
		if got := answeredBy(t, resp); got != "fast" {
			t.Fatalf("query %d answered by %s, want fast", i, got)
		}
	}
	if slow.exchanges.Load() != 0 {
		t.Errorf("slow upstream reached %d times with exploration disabled", slow.exchanges.Load())
	}
}

func TestFastestFailsOverOnError(t *testing.T) {
	bad := &fakeUpstream{name: "bad"}
	good := &fakeUpstream{name: "good"}
	bad.fail.Store(true)
	b := newFakeBackend(bad, good)
	s := New(b, Config{Policy: PolicyFastest, ExploreEvery: -1})
	defer s.Close()
	// Cold start ranks by index, so "bad" is tried first and fails; the
	// exchange must still answer via "good".
	resp, err := s.Exchange(context.Background(), q("fo.example."))
	if err != nil {
		t.Fatal(err)
	}
	if got := answeredBy(t, resp); got != "good" {
		t.Errorf("answered by %s, want good", got)
	}
	// After a few rounds the failure EWMA demotes "bad" below "good".
	for i := 0; i < 8; i++ {
		s.Exchange(context.Background(), q(fmt.Sprintf("d%d.example.", i)))
	}
	before := bad.exchanges.Load()
	for i := 0; i < 5; i++ {
		if _, err := s.Exchange(context.Background(), q(fmt.Sprintf("p%d.example.", i))); err != nil {
			t.Fatal(err)
		}
	}
	if bad.exchanges.Load() != before {
		t.Errorf("demoted upstream still tried first (%d new attempts)", bad.exchanges.Load()-before)
	}
}

func TestFastestExplorationProbesRunnersUp(t *testing.T) {
	best := &fakeUpstream{name: "best"}
	other := &fakeUpstream{name: "other"}
	b := newFakeBackend(best, other)
	s := New(b, Config{Policy: PolicyFastest, ExploreEvery: 4})
	defer s.Close()
	seed(s, "best", time.Millisecond, 8)
	seed(s, "other", 50*time.Millisecond, 8)
	for i := 0; i < 16; i++ {
		if _, err := s.Exchange(context.Background(), q(fmt.Sprintf("e%d.example.", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := other.exchanges.Load(); got != 4 {
		t.Errorf("runner-up probed %d times over 16 queries at cadence 4, want 4", got)
	}
	if got := best.exchanges.Load(); got != 12 {
		t.Errorf("best served %d queries, want 12", got)
	}
}

func TestHedgedFiresAndWinnerReturns(t *testing.T) {
	slow := &fakeUpstream{name: "slow", delay: 300 * time.Millisecond}
	fast := &fakeUpstream{name: "fast", delay: time.Millisecond}
	b := newFakeBackend(slow, fast)
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: 15 * time.Millisecond})
	defer s.Close()
	m := telemetry.New()
	tx := m.Begin(telemetry.ProtoUDP)
	ctx := telemetry.NewContext(context.Background(), tx)

	start := time.Now()
	resp, err := s.Exchange(ctx, q("h.example.")) // cold rank: slow is primary
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	tx.SetVerdict(telemetry.VerdictOK)
	tx.Finish()

	if got := answeredBy(t, resp); got != "fast" {
		t.Errorf("answered by %s, want the hedge winner", got)
	}
	if elapsed >= 200*time.Millisecond {
		t.Errorf("hedged exchange took %v, should not wait out the slow primary", elapsed)
	}
	snap := m.Snapshot()
	if snap.HedgesFired != 1 || snap.HedgesWon != 1 {
		t.Errorf("hedges fired/won = %d/%d, want 1/1", snap.HedgesFired, snap.HedgesWon)
	}
	// The slow primary's in-flight exchange was cancelled. The
	// cancellation is not scored as a failure — but the lost race charges
	// it a censored latency sample (its RTT is at least the winner's
	// total), which is what demotes a perpetually-losing primary.
	deadline := time.Now().Add(time.Second)
	for slow.cancelled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if slow.cancelled.Load() != 1 {
		t.Errorf("slow primary cancelled %d times, want 1", slow.cancelled.Load())
	}
	rep := s.Report()
	if rep.Upstreams[0].Name != "fast" {
		t.Errorf("rank after lost hedge = %+v, want fast first", rep.Upstreams)
	}
	for _, u := range rep.Upstreams {
		if u.Name == "slow" && (u.Samples != 1 || u.SuccessRate != 1) {
			t.Errorf("censored primary sample = %+v, want 1 sample with success rate 1 (no failure penalty)", u)
		}
	}
}

func TestHedgedPrimaryFailureFiresImmediately(t *testing.T) {
	bad := &fakeUpstream{name: "bad"}
	good := &fakeUpstream{name: "good", delay: time.Millisecond}
	bad.fail.Store(true)
	b := newFakeBackend(bad, good)
	// A huge fixed delay proves the hedge fired on the failure, not the
	// timer.
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: time.Hour})
	defer s.Close()
	m := telemetry.New()
	tx := m.Begin(telemetry.ProtoUDP)
	ctx := telemetry.NewContext(context.Background(), tx)
	start := time.Now()
	resp, err := s.Exchange(ctx, q("pf.example."))
	if err != nil {
		t.Fatal(err)
	}
	tx.Finish()
	if got := answeredBy(t, resp); got != "good" {
		t.Errorf("answered by %s, want good", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("took %v: hedge waited for the timer instead of the failure", elapsed)
	}
	if snap := m.Snapshot(); snap.HedgesFired != 1 {
		t.Errorf("hedges fired = %d, want 1", snap.HedgesFired)
	}
}

func TestHedgedBothFailFallsThroughRanking(t *testing.T) {
	a := &fakeUpstream{name: "a"}
	bb := &fakeUpstream{name: "b"}
	c := &fakeUpstream{name: "c"}
	a.fail.Store(true)
	bb.fail.Store(true)
	b := newFakeBackend(a, bb, c)
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: time.Millisecond})
	defer s.Close()
	resp, err := s.Exchange(context.Background(), q("bf.example."))
	if err != nil {
		t.Fatal(err)
	}
	if got := answeredBy(t, resp); got != "c" {
		t.Errorf("answered by %s, want the third-ranked fallback", got)
	}
	// All failed: the error out of the exchange is the first failure.
	c.fail.Store(true)
	if _, err := s.Exchange(context.Background(), q("all.example.")); err == nil {
		t.Error("all-failed hedged exchange returned no error")
	}
}

func TestHedgedSingleUpstreamNeverHedges(t *testing.T) {
	only := &fakeUpstream{name: "only", delay: 50 * time.Millisecond}
	b := newFakeBackend(only)
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: time.Millisecond})
	defer s.Close()
	m := telemetry.New()
	tx := m.Begin(telemetry.ProtoUDP)
	ctx := telemetry.NewContext(context.Background(), tx)
	if _, err := s.Exchange(ctx, q("one.example.")); err != nil {
		t.Fatal(err)
	}
	tx.Finish()
	if snap := m.Snapshot(); snap.HedgesFired != 0 {
		t.Errorf("hedge fired with a single upstream: %d", snap.HedgesFired)
	}
}

func TestRankDemotesUnhealthyUpstreams(t *testing.T) {
	down := &fakeUpstream{name: "down"}
	up := &fakeUpstream{name: "up"}
	b := newFakeBackend(down, up)
	s := New(b, Config{Policy: PolicyFastest, ExploreEvery: -1})
	defer s.Close()
	seed(s, "down", time.Millisecond, 4) // best latency...
	seed(s, "up", 40*time.Millisecond, 4)
	down.healthy.Store(false) // ...but in failure backoff
	order := s.rank()
	if b.ups[order[0]].name != "up" {
		t.Errorf("rank = %v, want the healthy upstream first", order)
	}
}

func TestAdaptiveHedgeDelay(t *testing.T) {
	b := newFakeBackend(&fakeUpstream{name: "p"}, &fakeUpstream{name: "q"})
	s := New(b, Config{Policy: PolicyHedged})
	defer s.Close()
	if got := s.hedgeDelay(0); got != DefaultHedgeDelay {
		t.Errorf("unsampled hedge delay = %v, want default %v", got, DefaultHedgeDelay)
	}
	seed(s, "p", 10*time.Millisecond, 32)
	d := s.hedgeDelay(0)
	// Steady 10ms samples converge SRTT→10ms and RTTVAR→0, so the delay
	// approaches SRTT from above while staying clamped.
	if d < MinHedgeDelay || d > 60*time.Millisecond {
		t.Errorf("adaptive hedge delay = %v, want near the primary's SRTT", d)
	}
	s2 := New(newFakeBackend(&fakeUpstream{name: "x"}, &fakeUpstream{name: "y"}), Config{Policy: PolicyHedged, HedgeDelay: 7 * time.Millisecond})
	defer s2.Close()
	if got := s2.hedgeDelay(0); got != 7*time.Millisecond {
		t.Errorf("fixed hedge delay = %v, want 7ms", got)
	}
}

// TestConcurrentExchangesRace is the -race fodder: all policies hammered
// concurrently while the report is read.
func TestConcurrentExchangesRace(t *testing.T) {
	a := &fakeUpstream{name: "a", delay: time.Millisecond}
	bu := &fakeUpstream{name: "b", delay: 2 * time.Millisecond}
	for _, policy := range []Policy{PolicyFailover, PolicyFastest, PolicyHedged} {
		b := newFakeBackend(a, bu)
		s := New(b, Config{Policy: policy, HedgeDelay: time.Millisecond})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					s.Exchange(context.Background(), q(fmt.Sprintf("c%d-%d.example.", g, i)))
				}
			}(g)
		}
		for i := 0; i < 10; i++ {
			s.Report()
		}
		wg.Wait()
		s.Close()
	}
}

// TestFastestExplorationFallbackPreservesRank pins the probe rotation:
// when an exploration probe fails, the fallthrough must land on the
// actual best upstream, not on whichever runner-up a pairwise swap left
// in front. With ExploreEvery=1 every query probes, alternating between
// the failing "bad" and the mid-ranked "mid"; bad-probe queries must be
// answered by "best", so all three exchange counts stay equal.
func TestFastestExplorationFallbackPreservesRank(t *testing.T) {
	best := &fakeUpstream{name: "best"}
	mid := &fakeUpstream{name: "mid"}
	bad := &fakeUpstream{name: "bad"}
	bad.fail.Store(true)
	b := newFakeBackend(best, mid, bad)
	s := New(b, Config{Policy: PolicyFastest, ExploreEvery: 1})
	defer s.Close()
	seed(s, "best", time.Millisecond, 16)
	seed(s, "mid", 30*time.Millisecond, 16)
	seed(s, "bad", 100*time.Millisecond, 16)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if _, err := s.Exchange(context.Background(), q(fmt.Sprintf("x%d.example.", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Probes alternate bad, mid, bad, mid…: 4 bad probes each falling back
	// to best, 4 mid probes served by mid.
	if got := bad.exchanges.Load(); got != rounds/2 {
		t.Errorf("bad probed %d times, want %d", got, rounds/2)
	}
	if got := mid.exchanges.Load(); got != rounds/2 {
		t.Errorf("mid served %d queries, want %d (only its own probes)", got, rounds/2)
	}
	if got := best.exchanges.Load(); got != rounds/2 {
		t.Errorf("best served %d fallbacks, want %d (bad-probe queries)", got, rounds/2)
	}
}

// TestHedgedDetachesTransactionFromLegs pins the transaction-safety
// contract: the racing legs must never carry the CALLER's Transaction in
// their contexts (a straggling loser would annotate a recycled record) —
// each carries its own background record against the same sink instead,
// so the wire-level accounting survives with the pool's own measurement
// windows.
func TestHedgedDetachesTransactionFromLegs(t *testing.T) {
	var sawCallerTx, sawLegTx atomic.Bool
	slow := &fakeUpstream{name: "slow", delay: 80 * time.Millisecond}
	fast := &fakeUpstream{name: "fast", delay: time.Millisecond}
	b := newFakeBackend(slow, fast)
	m := telemetry.New()
	tx := m.Begin(telemetry.ProtoUDP)
	b.onExchange = func(ctx context.Context) {
		switch telemetry.FromContext(ctx) {
		case tx:
			sawCallerTx.Store(true)
		case nil:
		default:
			sawLegTx.Store(true)
		}
	}
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: 10 * time.Millisecond})
	defer s.Close()
	ctx := telemetry.NewContext(context.Background(), tx)
	if _, err := s.Exchange(ctx, q("detach.example.")); err != nil {
		t.Fatal(err)
	}
	tx.SetVerdict(telemetry.VerdictOK)
	tx.Finish()
	if sawCallerTx.Load() {
		t.Error("a hedge leg carried the caller's Transaction — a straggling loser could annotate a recycled record")
	}
	if !sawLegTx.Load() {
		t.Error("hedge legs carried no background Transaction — their wire accounting would be lost")
	}
}

// TestHedgedFailedPrimaryEarnsNoCensoredSample pins the scoring fix: a
// primary that FAILED (not lost the race) must keep its failure score —
// the censored success sample is only for cancelled, still-healthy
// primaries.
func TestHedgedFailedPrimaryEarnsNoCensoredSample(t *testing.T) {
	bad := &fakeUpstream{name: "bad"}
	good := &fakeUpstream{name: "good", delay: time.Millisecond}
	bad.fail.Store(true)
	b := newFakeBackend(bad, good)
	s := New(b, Config{Policy: PolicyHedged, HedgeDelay: time.Hour})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Exchange(context.Background(), q(fmt.Sprintf("cf%d.example.", i))); err != nil {
			t.Fatal(err)
		}
	}
	// After the first failure the model demotes "bad" (good becomes the
	// primary and answers inside the delay), so "bad" holds exactly its one
	// failure sample — with the bug it would hold two: the failure plus a
	// bogus censored success, pinning its success rate at 0.5.
	for _, u := range s.Report().Upstreams {
		if u.Name == "bad" {
			if u.SuccessRate != 0 {
				t.Errorf("failed primary success rate = %.2f, want 0 (no bogus censored successes)", u.SuccessRate)
			}
			if u.Samples != 1 {
				t.Errorf("failed primary samples = %d, want exactly its 1 failure", u.Samples)
			}
		}
	}
}

package dnswire

import "encoding/binary"

// This file is the allocation-free fast layer of the codec: a Query view
// that exposes a packed query's header and question without building a
// Message, and in-place patch helpers that let a cache serve stored wire
// bytes directly — restamping the transaction ID and decaying TTLs by
// rewriting the packed form, with no Unpack → mutate → Pack round trip.
// The helpers are proven byte-equivalent to the Message path by
// FuzzWireRewriteEquivalence.

// Query is a zero-allocation view of a packed DNS query: the header fields
// and first question parsed in place from Raw, which the view borrows (the
// caller must keep the packet alive and unmodified while the Query is in
// use). It is produced by ParseQuery and consumed by the wire-level serving
// fast path; anything ParseQuery cannot represent takes the Message path.
type Query struct {
	// Raw is the complete packet the view was parsed from.
	Raw []byte
	// ID is the client's transaction ID.
	ID uint16
	// Type and Class are the first (only) question's type and class.
	Type  Type
	Class Class
	// RecursionDesired mirrors the header RD bit.
	RecursionDesired bool
	// HasEDNS reports a well-formed trailing OPT record; UDPSize is its
	// advertised requestor payload size (0 without EDNS).
	HasEDNS bool
	UDPSize uint16
	// nameEnd is the offset of the question name's terminal zero octet.
	nameEnd int
}

// ParseQuery attempts the fast parse of a packed query. It accepts only the
// common stub shape — a non-truncated, non-response QUERY with exactly one
// question, no answer or authority records, an uncompressed question name,
// and at most one additional record which must be a root-name version-0 OPT
// (RFC 6891) — and reports ok=false for everything else, malformed or
// merely unusual; the caller falls back to Message.Unpack, which decides
// which of the two it was. A successful parse allocates nothing.
func ParseQuery(data []byte) (Query, bool) {
	var q Query
	if len(data) < headerLen+1+4 {
		return q, false
	}
	flags := binary.BigEndian.Uint16(data[2:])
	// QR, a non-QUERY opcode, or TC: not a plain query.
	if flags&(1<<15) != 0 || OpCode(flags>>11&0xF) != OpCodeQuery || flags&(1<<9) != 0 {
		return q, false
	}
	if binary.BigEndian.Uint16(data[4:]) != 1 || // QDCOUNT
		binary.BigEndian.Uint16(data[6:]) != 0 || // ANCOUNT
		binary.BigEndian.Uint16(data[8:]) != 0 { // NSCOUNT
		return q, false
	}
	ar := binary.BigEndian.Uint16(data[10:])
	if ar > 1 {
		return q, false
	}
	// Walk the question name: plain labels only (real queries never
	// compress their own name, and rejecting pointers keeps the view a
	// contiguous borrow of Raw). Labels must be ASCII: the Message path
	// canonicalizes names with a UTF-8-aware lower-casing that rewrites
	// arbitrary high bytes, so a cache keyed on the raw label bytes would
	// diverge from one keyed on Name.Canonical — non-ASCII names (IDN is
	// punycode on the wire, so real traffic never hits this) take the
	// Message path where one canonicalization rules.
	off := headerLen
	nameLen := 0
	for {
		if off >= len(data) {
			return q, false
		}
		b := data[off]
		if b == 0 {
			off++
			break
		}
		if b&0xC0 != 0 {
			return q, false
		}
		nameLen += int(b) + 1
		if nameLen+1 > maxNameLen || off+1+int(b) > len(data) {
			return q, false
		}
		for _, c := range data[off+1 : off+1+int(b)] {
			if c >= 0x80 {
				return q, false
			}
		}
		off += 1 + int(b)
	}
	if off+4 > len(data) {
		return q, false
	}
	q.nameEnd = off - 1
	q.Type = Type(binary.BigEndian.Uint16(data[off:]))
	q.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
	off += 4
	if ar == 1 {
		// The only additional the fast path understands is a root-name OPT:
		// 00 | TYPE | CLASS=udpsize | TTL=ext-rcode/version/flags | RDLEN.
		if off+11 > len(data) || data[off] != 0 {
			return q, false
		}
		if Type(binary.BigEndian.Uint16(data[off+1:])) != TypeOPT {
			return q, false
		}
		ttl := binary.BigEndian.Uint32(data[off+5:])
		if uint8(ttl>>16) != 0 { // unknown EDNS version
			return q, false
		}
		rdlen := int(binary.BigEndian.Uint16(data[off+9:]))
		if off+11+rdlen > len(data) {
			return q, false
		}
		// Validate the option TLVs (without retaining them) so that a
		// fast-parse success implies the full codec accepts the record
		// too — otherwise a query with a mangled option would be answered
		// on a cache hit but rejected on the Message-path miss, making
		// its fate depend on cache contents.
		for opt := data[off+11 : off+11+rdlen]; len(opt) > 0; {
			if len(opt) < 4 {
				return q, false
			}
			n := int(binary.BigEndian.Uint16(opt[2:]))
			if 4+n > len(opt) {
				return q, false
			}
			opt = opt[4+n:]
		}
		q.HasEDNS = true
		q.UDPSize = binary.BigEndian.Uint16(data[off+3:])
		off += 11 + rdlen
	}
	if off != len(data) {
		return q, false
	}
	q.ID = binary.BigEndian.Uint16(data)
	q.RecursionDesired = flags&(1<<8) != 0
	q.Raw = data
	return q, true
}

// AppendCanonicalName appends the canonical presentation form of the
// question name — lower-cased labels joined and terminated by dots, "." for
// the root — to dst and returns the extended slice. It renders exactly what
// readName followed by Name.Canonical would produce for the same wire
// bytes, so wire-keyed and Message-keyed cache lookups agree, without
// allocating when dst has capacity.
func (q *Query) AppendCanonicalName(dst []byte) []byte {
	off := headerLen
	if q.nameEnd <= off {
		return append(dst, '.')
	}
	for off < q.nameEnd {
		l := int(q.Raw[off])
		off++
		for i := 0; i < l; i++ {
			c := q.Raw[off+i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
		}
		dst = append(dst, '.')
		off += l
	}
	return dst
}

// PatchID overwrites the transaction ID of a packed message in place — the
// wire-path equivalent of unpacking, restamping Message.ID and repacking.
func PatchID(wire []byte, id uint16) {
	if len(wire) >= 2 {
		binary.BigEndian.PutUint16(wire, id)
	}
}

// TTLOffsets walks a packed message and records the byte offset of every
// resource record's TTL field, skipping OPT pseudo-records (their TTL field
// encodes EDNS flags, not a lifetime — exactly the records the Message
// codec diverts into Message.EDNS). A cache computes the offsets once at
// insert time; each hit then decays the stored answer with DecayTTLs
// instead of a full unpack/repack cycle.
func TTLOffsets(wire []byte) ([]int, error) {
	if len(wire) < headerLen {
		return nil, ErrShortMessage
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	off := headerLen
	var err error
	for i := 0; i < qd; i++ {
		if off, err = skipPackedName(wire, off); err != nil {
			return nil, err
		}
		if off+4 > len(wire) {
			return nil, ErrShortMessage
		}
		off += 4
	}
	var offsets []int
	for i := 0; i < rrs; i++ {
		if off, err = skipPackedName(wire, off); err != nil {
			return nil, err
		}
		if off+10 > len(wire) {
			return nil, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(wire[off:]))
		rdlen := int(binary.BigEndian.Uint16(wire[off+8:]))
		if typ != TypeOPT {
			offsets = append(offsets, off+4)
		}
		off += 10 + rdlen
		if off > len(wire) {
			return nil, ErrRDataOutOfBounds
		}
	}
	if off != len(wire) {
		return nil, ErrTrailingGarbage
	}
	return offsets, nil
}

// DecayTTLs caps every recorded TTL at remaining seconds, rewriting the
// packed message in place. Offsets must come from TTLOffsets over the same
// bytes; out-of-range offsets are ignored rather than panicking.
func DecayTTLs(wire []byte, offsets []int, remaining uint32) {
	for _, off := range offsets {
		if off < 0 || off+4 > len(wire) {
			continue
		}
		if binary.BigEndian.Uint32(wire[off:]) > remaining {
			binary.BigEndian.PutUint32(wire[off:], remaining)
		}
	}
}

// PackTTLOffsets appends offsets as packed big-endian uint16 values to dst
// and returns the extended slice — the form a cache can store contiguously
// with the packed message it indexes (a DNS message is at most 65535
// bytes, so every TTLOffsets result fits). Decoded by DecayTTLsPacked.
func PackTTLOffsets(dst []byte, offsets []int) []byte {
	for _, off := range offsets {
		dst = append(dst, byte(off>>8), byte(off))
	}
	return dst
}

// DecayTTLsPacked is DecayTTLs for a PackTTLOffsets-encoded offset list:
// every recorded TTL is capped at remaining seconds in place. A trailing
// odd byte or an offset past the message end is ignored rather than
// panicking, mirroring DecayTTLs.
func DecayTTLsPacked(wire []byte, packed []byte, remaining uint32) {
	for i := 0; i+2 <= len(packed); i += 2 {
		off := int(binary.BigEndian.Uint16(packed[i:]))
		if off+4 > len(wire) {
			continue
		}
		if binary.BigEndian.Uint32(wire[off:]) > remaining {
			binary.BigEndian.PutUint32(wire[off:], remaining)
		}
	}
}

// skipPackedName advances past the name starting at off: consecutive plain
// labels ended by a terminal zero octet or a compression pointer.
func skipPackedName(wire []byte, off int) (int, error) {
	for {
		if off >= len(wire) {
			return 0, ErrShortMessage
		}
		b := wire[off]
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 == 0xC0:
			if off+2 > len(wire) {
				return 0, ErrShortMessage
			}
			return off + 2, nil
		case b&0xC0 != 0:
			return 0, ErrShortMessage
		default:
			off += 1 + int(b)
		}
	}
}

package dnswire

import (
	"strings"
)

// A Name is a domain name in presentation format, e.g. "www.example.com.".
// The empty string and "." both denote the root. Names compare
// case-insensitively on the wire; Canonical lower-cases for map keys.
type Name string

// Root is the DNS root name.
const Root Name = "."

// Canonical returns the name lower-cased with exactly one trailing dot,
// suitable for use as a cache or zone map key.
func (n Name) Canonical() Name {
	s := strings.ToLower(string(n))
	if s == "" || s == "." {
		return Root
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return Name(s)
}

// Labels splits the name into its labels, root excluded.
// "www.example.com." → ["www", "example", "com"].
func (n Name) Labels() []string {
	s := strings.TrimSuffix(string(n.Canonical()), ".")
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

// Parent returns the name with its leftmost label removed;
// the parent of the root is the root.
func (n Name) Parent() Name {
	labels := n.Labels()
	if len(labels) <= 1 {
		return Root
	}
	return Name(strings.Join(labels[1:], ".") + ".")
}

// IsSubdomainOf reports whether n falls at or under zone (both canonicalized).
func (n Name) IsSubdomainOf(zone Name) bool {
	nz, zz := string(n.Canonical()), string(zone.Canonical())
	if zz == "." {
		return true
	}
	return nz == zz || strings.HasSuffix(nz, "."+zz)
}

// validate checks label and total-length constraints without allocating the
// wire form. The wire length is len(canonical name) + 1 for non-root names
// (each dot becomes a length octet, plus the terminal zero octet).
func (n Name) validate() error {
	c := string(n.Canonical())
	if c == "." {
		return nil
	}
	if len(c)+1 > maxNameLen {
		return ErrNameTooLong
	}
	start := 0
	for i := 0; i < len(c); i++ {
		if c[i] != '.' {
			continue
		}
		if i == start {
			return ErrEmptyLabel
		}
		if i-start > maxLabelLen {
			return ErrLabelTooLong
		}
		start = i + 1
	}
	return nil
}

// compressionMap records the message-relative offset at which each name
// suffix was first emitted, so later occurrences can be replaced by a
// two-octet pointer (RFC 1035 §4.1.4). Only offsets representable in 14
// bits are usable. base is the buffer index of the message's first octet:
// AppendPack may serialize after existing bytes (a stream server packs
// past its two-octet length prefix), and pointers must stay relative to
// the message start, not the buffer start. The zero value (nil offsets)
// disables compression, as required inside OPT and in DNSSEC canonical
// forms.
type compressionMap struct {
	offsets map[string]int
	base    int
}

// appendName packs n at the end of msg, consulting and updating cmap. The
// name is lower-cased on the wire; DNS names are case-insensitive and the
// study never relies on 0x20 encoding.
func appendName(msg []byte, n Name, cmap compressionMap) ([]byte, error) {
	if err := n.validate(); err != nil {
		return msg, err
	}
	c := string(n.Canonical())
	if c == "." {
		return append(msg, 0), nil
	}
	// Walk suffixes: "www.example.com." then "example.com." then "com.".
	rest := c
	for rest != "" {
		if cmap.offsets != nil {
			if off, ok := cmap.offsets[rest]; ok {
				return append(msg, 0xC0|byte(off>>8), byte(off)), nil
			}
			if off := len(msg) - cmap.base; off <= 0x3FFF {
				cmap.offsets[rest] = off
			}
		}
		dot := strings.IndexByte(rest, '.')
		label := rest[:dot]
		msg = append(msg, byte(len(label)))
		msg = append(msg, label...)
		rest = rest[dot+1:]
	}
	return append(msg, 0), nil
}

// nameWireLen returns the number of octets n occupies uncompressed.
func nameWireLen(n Name) int {
	c := string(n.Canonical())
	if c == "." {
		return 1
	}
	return len(c) + 1
}

// readName decodes a possibly-compressed name starting at off in msg and
// returns the name plus the offset just past its in-place representation
// (i.e. past the first pointer if one was followed). Pointer chains may only
// jump strictly backwards, which both matches all real encoders and bounds
// the walk, preventing decompression loops.
func readName(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	next := -1 // resume offset after the first pointer, -1 while unset
	ptrBudget := len(msg)
	nameLen := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		b := msg[off]
		switch {
		case b == 0: // terminal root label
			if next == -1 {
				next = off + 1
			}
			if sb.Len() == 0 {
				return Root, next, nil
			}
			return Name(sb.String()), next, nil
		case b&0xC0 == 0xC0: // compression pointer
			if off+1 >= len(msg) {
				return "", 0, ErrShortMessage
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if target >= off {
				return "", 0, ErrCompressionLoop
			}
			if next == -1 {
				next = off + 2
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrCompressionLoop
			}
			off = target
		case b&0xC0 != 0: // 0x40/0x80 label types were never standardized
			return "", 0, ErrShortMessage
		default: // ordinary label
			end := off + 1 + int(b)
			if end > len(msg) {
				return "", 0, ErrShortMessage
			}
			nameLen += int(b) + 1
			if nameLen+1 > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			sb.Write(msg[off+1 : end])
			sb.WriteByte('.')
			off = end
		}
	}
}

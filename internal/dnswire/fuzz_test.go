package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeeds packs a corpus of messages covering the shapes the wire
// rewrite helpers must stay equivalent on: compressed names shared across
// sections, EDNS OPT records (whose TTL field is flags, not a lifetime),
// negative answers with SOA authorities, and plain queries.
func fuzzSeeds(f *testing.F) {
	seeds := []*Message{
		NewQuery(1, "www.example.com.", TypeA),
		respFixtureFuzz(),
		{ // NXDOMAIN with SOA authority (negative-cache shape).
			ID: 9, Response: true, RCode: RCodeNameError,
			Questions: []Question{{Name: "nx.example.org.", Type: TypeAAAA, Class: ClassINET}},
			Authorities: []ResourceRecord{
				{Name: "example.org.", Class: ClassINET, TTL: 900,
					Data: &SOA{MName: "ns.example.org.", RName: "root.example.org.",
						Serial: 2, Refresh: 1, Retry: 2, Expire: 3, Minimum: 60}},
			},
		},
		{ // EDNS with options and extended flags.
			ID: 11, Response: true,
			Questions: []Question{{Name: "opt.example.", Type: TypeTXT, Class: ClassINET}},
			Answers: []ResourceRecord{{Name: "opt.example.", Class: ClassINET, TTL: 1,
				Data: &TXT{Strings: []string{"hello"}}}},
			EDNS: &EDNS{UDPSize: 1232, DO: true,
				Options: []EDNS0Option{{Code: 12, Data: make([]byte, 16)}}},
		},
	}
	for _, m := range seeds {
		wire, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire, uint16(0xABCD), uint32(30))
	}
}

func respFixtureFuzz() *Message {
	return &Message{
		ID: 0xBEEF, Response: true, RecursionAvailable: true,
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}},
		Answers: []ResourceRecord{
			{Name: "www.example.com.", Class: ClassINET, TTL: 300,
				Data: &CNAME{Target: "cdn.example.com."}},
			{Name: "cdn.example.com.", Class: ClassINET, TTL: 60,
				Data: &A{Addr: netip.MustParseAddr("192.0.2.53")}},
		},
		EDNS: &EDNS{UDPSize: 4096},
	}
}

// FuzzWireRewriteEquivalence proves the in-place rewrite helpers are
// byte-equivalent to the Message path: for any unpackable input, patching
// the ID and decaying the TTLs of the canonically re-packed wire must
// produce exactly the bytes of unpack → mutate → pack. This is the
// property the packed-response cache rests on — a hit's patched bytes are
// indistinguishable from a full serialization round trip.
func FuzzWireRewriteEquivalence(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, id uint16, rem uint32) {
		var m Message
		if err := m.Unpack(data); err != nil {
			t.Skip()
		}
		wire, err := m.Pack()
		if err != nil {
			t.Skip() // unpackable but not re-packable (e.g. >64KiB growth)
		}
		offsets, err := TTLOffsets(wire)
		if err != nil {
			t.Fatalf("TTLOffsets rejects our own packer's output: %v", err)
		}

		fast := append([]byte(nil), wire...)
		PatchID(fast, id)
		DecayTTLs(fast, offsets, rem)

		var m2 Message
		if err := m2.Unpack(wire); err != nil {
			t.Fatalf("unpacking our own packer's output: %v", err)
		}
		m2.ID = id
		for _, rrs := range [][]ResourceRecord{m2.Answers, m2.Authorities, m2.Additionals} {
			for i := range rrs {
				if rrs[i].TTL > rem {
					rrs[i].TTL = rem
				}
			}
		}
		slow, err := m2.Pack()
		if err != nil {
			t.Fatalf("repacking mutated message: %v", err)
		}
		if !bytes.Equal(fast, slow) {
			t.Errorf("rewrite diverges from unpack→mutate→pack for id=%#x rem=%d:\n fast %x\n slow %x",
				id, rem, fast, slow)
		}
	})
}

// FuzzParseQueryConsistency checks the fast view against the full codec:
// whenever ParseQuery accepts bytes, Message.Unpack must agree on every
// field the view exposes, and the canonical name must match.
func FuzzParseQueryConsistency(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, _ uint16, _ uint32) {
		q, ok := ParseQuery(data)
		if !ok {
			t.Skip()
		}
		var m Message
		if err := m.Unpack(data); err != nil {
			// ParseQuery validates everything the full codec does on the
			// shapes it accepts (including OPT option TLVs), so a query's
			// fate can never depend on which path examined it — a hit
			// answered by the fast path is a query the Message path would
			// also have accepted.
			t.Fatalf("ParseQuery accepted what Unpack rejects: %v", err)
		}
		qq := m.Question1()
		if q.ID != m.ID || q.Type != qq.Type || q.Class != qq.Class ||
			q.RecursionDesired != m.RecursionDesired {
			t.Errorf("view %+v disagrees with Unpack", q)
		}
		if got, want := Name(q.AppendCanonicalName(nil)), qq.Name.Canonical(); got != want {
			t.Errorf("canonical name %q != %q", got, want)
		}
		if q.HasEDNS != (m.EDNS != nil) || (m.EDNS != nil && q.UDPSize != m.EDNS.UDPSize) {
			t.Errorf("EDNS view (%v, %d) disagrees with %+v", q.HasEDNS, q.UDPSize, m.EDNS)
		}
	})
}

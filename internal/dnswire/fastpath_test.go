package dnswire

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestParseQueryMatchesUnpack(t *testing.T) {
	for _, tt := range []struct {
		name string
		msg  *Message
	}{
		{"plain", &Message{ID: 7, RecursionDesired: true,
			Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}}}},
		{"edns", NewQuery(0x1234, "cache.test.example.", TypeAAAA)},
		{"uppercase", NewQuery(9, "WWW.Example.COM.", TypeA)},
		{"root", NewQuery(1, ".", TypeNS)},
		{"no-rd", &Message{ID: 3,
			Questions: []Question{{Name: "x.org.", Type: TypeTXT, Class: ClassCHAOS}}}},
		{"edns-do", &Message{ID: 5,
			Questions: []Question{{Name: "sig.example.", Type: TypeDS, Class: ClassINET}},
			EDNS:      &EDNS{UDPSize: 1232, DO: true}}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			wire := mustPack(t, tt.msg)
			q, ok := ParseQuery(wire)
			if !ok {
				t.Fatal("fast parse rejected a plain query")
			}
			var m Message
			if err := m.Unpack(wire); err != nil {
				t.Fatal(err)
			}
			qq := m.Question1()
			if q.ID != m.ID || q.Type != qq.Type || q.Class != qq.Class ||
				q.RecursionDesired != m.RecursionDesired {
				t.Errorf("view %+v disagrees with Unpack %+v", q, m)
			}
			if got, want := Name(q.AppendCanonicalName(nil)), qq.Name.Canonical(); got != want {
				t.Errorf("AppendCanonicalName = %q, want %q", got, want)
			}
			if (q.HasEDNS != (m.EDNS != nil)) ||
				(m.EDNS != nil && q.UDPSize != m.EDNS.UDPSize) {
				t.Errorf("EDNS view (%v, %d) disagrees with %+v", q.HasEDNS, q.UDPSize, m.EDNS)
			}
		})
	}
}

func TestParseQueryRejectsUnusualShapes(t *testing.T) {
	resp := NewQuery(1, "a.example.", TypeA)
	resp.Response = true
	multi := NewQuery(1, "a.example.", TypeA)
	multi.Questions = append(multi.Questions, Question{Name: "b.example.", Type: TypeA, Class: ClassINET})
	truncated := NewQuery(1, "a.example.", TypeA)
	truncated.Truncated = true
	withAnswer := NewQuery(1, "a.example.", TypeA)
	withAnswer.Answers = []ResourceRecord{{Name: "a.example.", Class: ClassINET, TTL: 1,
		Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	nonOPT := NewQuery(1, "a.example.", TypeA)
	nonOPT.EDNS = nil
	nonOPT.Additionals = []ResourceRecord{{Name: "key.", Class: ClassINET, TTL: 0,
		Data: &TXT{Strings: []string{"not-an-opt"}}}}

	for _, tt := range []struct {
		name string
		msg  *Message
	}{
		{"response", resp},
		{"multi-question", multi},
		{"truncated", truncated},
		{"with-answer", withAnswer},
		{"non-opt-additional", nonOPT},
	} {
		t.Run(tt.name, func(t *testing.T) {
			wire := mustPack(t, tt.msg)
			if _, ok := ParseQuery(wire); ok {
				t.Error("fast parse accepted an unusual shape")
			}
			// Every one of these must still take the Message path.
			var m Message
			if err := m.Unpack(wire); err != nil {
				t.Errorf("Message path cannot absorb the fallback: %v", err)
			}
		})
	}

	t.Run("malformed-opt-options", func(t *testing.T) {
		// A well-formed OPT header whose option TLVs overrun RDLEN: the
		// full codec rejects it, so the fast parse must too — otherwise
		// the query's fate would depend on cache contents.
		wire := mustPack(t, NewQuery(1, "a.example.", TypeA))
		// Our packed query ends with the OPT record: ...RDLEN(=0). Claim
		// two octets of options but provide a truncated TLV.
		wire[len(wire)-1] = 2
		wire = append(wire, 0x00, 0x0C)
		if _, ok := ParseQuery(wire); ok {
			t.Error("truncated option TLV accepted")
		}
		var m Message
		if err := m.Unpack(wire); err == nil {
			t.Error("full codec accepted the malformed OPT (test premise broken)")
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		wire := append(mustPack(t, NewQuery(1, "a.example.", TypeA)), 0xFF)
		if _, ok := ParseQuery(wire); ok {
			t.Error("trailing bytes accepted")
		}
	})
	t.Run("short", func(t *testing.T) {
		if _, ok := ParseQuery([]byte{0, 1, 0, 0}); ok {
			t.Error("short packet accepted")
		}
	})
}

// respFixture builds a response exercising everything the rewrite helpers
// must cope with: multiple answer records sharing compressed names, an
// authority SOA, and an EDNS OPT whose TTL field must never be decayed.
func respFixture() *Message {
	return &Message{
		ID:                 0xBEEF,
		Response:           true,
		RecursionAvailable: true,
		Questions:          []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}},
		Answers: []ResourceRecord{
			{Name: "www.example.com.", Class: ClassINET, TTL: 300,
				Data: &CNAME{Target: "cdn.example.com."}},
			{Name: "cdn.example.com.", Class: ClassINET, TTL: 60,
				Data: &A{Addr: netip.MustParseAddr("192.0.2.53")}},
			{Name: "cdn.example.com.", Class: ClassINET, TTL: 60,
				Data: &A{Addr: netip.MustParseAddr("192.0.2.54")}},
		},
		Authorities: []ResourceRecord{
			{Name: "example.com.", Class: ClassINET, TTL: 3600,
				Data: &SOA{MName: "ns1.example.com.", RName: "hostmaster.example.com.",
					Serial: 1, Refresh: 7200, Retry: 600, Expire: 86400, Minimum: 120}},
		},
		EDNS: &EDNS{UDPSize: 4096, DO: true},
	}
}

func TestPatchIDAndDecayEquivalence(t *testing.T) {
	orig := respFixture()
	wire := mustPack(t, orig)

	offsets, err := TTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(orig.Answers) + len(orig.Authorities); len(offsets) != want {
		t.Fatalf("TTLOffsets found %d records, want %d (OPT must be skipped)", len(offsets), want)
	}

	const newID, rem = 0x0102, 45
	fast := append([]byte(nil), wire...)
	PatchID(fast, newID)
	DecayTTLs(fast, offsets, rem)

	// The slow path: unpack, mutate, repack.
	var m Message
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	m.ID = newID
	for _, rrs := range [][]ResourceRecord{m.Answers, m.Authorities, m.Additionals} {
		for i := range rrs {
			if rrs[i].TTL > rem {
				rrs[i].TTL = rem
			}
		}
	}
	slow := mustPack(t, &m)
	if !bytes.Equal(fast, slow) {
		t.Errorf("wire rewrite diverges from unpack→mutate→pack:\n fast %x\n slow %x", fast, slow)
	}

	// And the rewritten bytes decode to the decayed values, OPT untouched.
	var got Message
	if err := got.Unpack(fast); err != nil {
		t.Fatal(err)
	}
	if got.ID != newID {
		t.Errorf("ID = %#x, want %#x", got.ID, newID)
	}
	for _, rr := range got.Answers {
		if rr.TTL > rem {
			t.Errorf("answer TTL %d not decayed to %d", rr.TTL, rem)
		}
	}
	if got.EDNS == nil || !got.EDNS.DO || got.EDNS.UDPSize != 4096 {
		t.Errorf("EDNS disturbed by decay: %+v", got.EDNS)
	}
}

func TestDecayTTLsKeepsSmallerTTLs(t *testing.T) {
	wire := mustPack(t, respFixture())
	offsets, err := TTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	DecayTTLs(wire, offsets, 200) // above the 60s A records, below CNAME/SOA
	var m Message
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].TTL != 200 || m.Answers[1].TTL != 60 {
		t.Errorf("TTLs = %d,%d, want 200,60 (cap, not overwrite)", m.Answers[0].TTL, m.Answers[1].TTL)
	}
}

func TestTTLOffsetsRejectsTruncatedMessage(t *testing.T) {
	wire := mustPack(t, respFixture())
	for _, cut := range []int{len(wire) - 1, len(wire) / 2, headerLen + 3} {
		if _, err := TTLOffsets(wire[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := TTLOffsets(append(wire, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestParseQueryAllocFree(t *testing.T) {
	wire := mustPack(t, NewQuery(2, "hot.example.com.", TypeA))
	dst := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		q, ok := ParseQuery(wire)
		if !ok {
			t.Fatal("parse failed")
		}
		dst = q.AppendCanonicalName(dst[:0])
		PatchID(wire, 2)
	})
	if allocs != 0 {
		t.Errorf("fast parse allocates %.1f times per query, want 0", allocs)
	}
}

func TestPatchIDShortSlice(t *testing.T) {
	PatchID(nil, 1) // must not panic
	PatchID([]byte{9}, 1)
	b := []byte{0, 0}
	PatchID(b, 0x0304)
	if binary.BigEndian.Uint16(b) != 0x0304 {
		t.Error("two-byte patch failed")
	}
}

package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Implementations append
// their wire form (without the RDLENGTH prefix — the caller patches that in)
// and decode themselves from a bounded window of the message. decode
// receives the whole message because several types (CNAME, MX, SOA, SRV…)
// may contain compressed names pointing anywhere before their own offset.
type RData interface {
	// Type reports the RR type this payload belongs to.
	Type() Type
	// appendTo packs the payload, using cmap for names where RFC 3597
	// permits compression (i.e. the "well-known" RFC 1035 types).
	appendTo(msg []byte, cmap compressionMap) ([]byte, error)
	// decodeFrom parses msg[off:off+length] as the payload.
	decodeFrom(msg []byte, off, length int) error
	// String renders the payload in zone-file presentation format.
	String() string
}

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (*A) Type() Type { return TypeA }

func (r *A) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is4() {
		return msg, fmt.Errorf("dnswire: A record address %v is not IPv4", r.Addr)
	}
	a4 := r.Addr.As4()
	return append(msg, a4[:]...), nil
}

func (r *A) decodeFrom(msg []byte, off, length int) error {
	if length != 4 {
		return fmt.Errorf("dnswire: A rdata length %d, want 4", length)
	}
	r.Addr = netip.AddrFrom4([4]byte(msg[off : off+4]))
	return nil
}

// String implements RData.
func (r *A) String() string { return r.Addr.String() }

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (*AAAA) Type() Type { return TypeAAAA }

func (r *AAAA) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return msg, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", r.Addr)
	}
	a16 := r.Addr.As16()
	return append(msg, a16[:]...), nil
}

func (r *AAAA) decodeFrom(msg []byte, off, length int) error {
	if length != 16 {
		return fmt.Errorf("dnswire: AAAA rdata length %d, want 16", length)
	}
	r.Addr = netip.AddrFrom16([16]byte(msg[off : off+16]))
	return nil
}

// String implements RData.
func (r *AAAA) String() string { return r.Addr.String() }

// CNAME is a canonical-name alias record (RFC 1035 §3.3.1).
type CNAME struct {
	Target Name
}

// Type implements RData.
func (*CNAME) Type() Type { return TypeCNAME }

func (r *CNAME) appendTo(msg []byte, cmap compressionMap) ([]byte, error) {
	return appendName(msg, r.Target, cmap)
}

func (r *CNAME) decodeFrom(msg []byte, off, length int) error {
	name, end, err := readName(msg, off)
	if err != nil {
		return err
	}
	if end != off+length {
		return ErrRDataOutOfBounds
	}
	r.Target = name
	return nil
}

// String implements RData.
func (r *CNAME) String() string { return string(r.Target) }

// NS is a name-server delegation record (RFC 1035 §3.3.11).
type NS struct {
	Host Name
}

// Type implements RData.
func (*NS) Type() Type { return TypeNS }

func (r *NS) appendTo(msg []byte, cmap compressionMap) ([]byte, error) {
	return appendName(msg, r.Host, cmap)
}

func (r *NS) decodeFrom(msg []byte, off, length int) error {
	name, end, err := readName(msg, off)
	if err != nil {
		return err
	}
	if end != off+length {
		return ErrRDataOutOfBounds
	}
	r.Host = name
	return nil
}

// String implements RData.
func (r *NS) String() string { return string(r.Host) }

// PTR is a reverse-mapping pointer record (RFC 1035 §3.3.12).
type PTR struct {
	Target Name
}

// Type implements RData.
func (*PTR) Type() Type { return TypePTR }

func (r *PTR) appendTo(msg []byte, cmap compressionMap) ([]byte, error) {
	return appendName(msg, r.Target, cmap)
}

func (r *PTR) decodeFrom(msg []byte, off, length int) error {
	name, end, err := readName(msg, off)
	if err != nil {
		return err
	}
	if end != off+length {
		return ErrRDataOutOfBounds
	}
	r.Target = name
	return nil
}

// String implements RData.
func (r *PTR) String() string { return string(r.Target) }

// MX is a mail-exchanger record (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (*MX) Type() Type { return TypeMX }

func (r *MX) appendTo(msg []byte, cmap compressionMap) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, r.Preference)
	return appendName(msg, r.Host, cmap)
}

func (r *MX) decodeFrom(msg []byte, off, length int) error {
	if length < 3 {
		return ErrShortMessage
	}
	r.Preference = binary.BigEndian.Uint16(msg[off:])
	name, end, err := readName(msg, off+2)
	if err != nil {
		return err
	}
	if end != off+length {
		return ErrRDataOutOfBounds
	}
	r.Host = name
	return nil
}

// String implements RData.
func (r *MX) String() string { return fmt.Sprintf("%d %s", r.Preference, r.Host) }

// TXT is a free-text record (RFC 1035 §3.3.14); the payload is a sequence of
// character-strings, each at most 255 octets.
type TXT struct {
	Strings []string
}

// Type implements RData.
func (*TXT) Type() Type { return TypeTXT }

func (r *TXT) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	if len(r.Strings) == 0 {
		// An empty TXT is encoded as one empty character-string.
		return append(msg, 0), nil
	}
	for _, s := range r.Strings {
		if len(s) > 255 {
			return msg, fmt.Errorf("dnswire: TXT character-string exceeds 255 octets")
		}
		msg = append(msg, byte(len(s)))
		msg = append(msg, s...)
	}
	return msg, nil
}

func (r *TXT) decodeFrom(msg []byte, off, length int) error {
	end := off + length
	r.Strings = r.Strings[:0]
	for off < end {
		n := int(msg[off])
		off++
		if off+n > end {
			return ErrRDataOutOfBounds
		}
		r.Strings = append(r.Strings, string(msg[off:off+n]))
		off += n
	}
	return nil
}

// String implements RData.
func (r *TXT) String() string {
	quoted := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// SOA is a start-of-authority record (RFC 1035 §3.3.13).
type SOA struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (*SOA) Type() Type { return TypeSOA }

func (r *SOA) appendTo(msg []byte, cmap compressionMap) ([]byte, error) {
	var err error
	if msg, err = appendName(msg, r.MName, cmap); err != nil {
		return msg, err
	}
	if msg, err = appendName(msg, r.RName, cmap); err != nil {
		return msg, err
	}
	msg = binary.BigEndian.AppendUint32(msg, r.Serial)
	msg = binary.BigEndian.AppendUint32(msg, r.Refresh)
	msg = binary.BigEndian.AppendUint32(msg, r.Retry)
	msg = binary.BigEndian.AppendUint32(msg, r.Expire)
	msg = binary.BigEndian.AppendUint32(msg, r.Minimum)
	return msg, nil
}

func (r *SOA) decodeFrom(msg []byte, off, length int) error {
	end := off + length
	var err error
	if r.MName, off, err = readName(msg, off); err != nil {
		return err
	}
	if r.RName, off, err = readName(msg, off); err != nil {
		return err
	}
	if off+20 != end {
		return ErrRDataOutOfBounds
	}
	r.Serial = binary.BigEndian.Uint32(msg[off:])
	r.Refresh = binary.BigEndian.Uint32(msg[off+4:])
	r.Retry = binary.BigEndian.Uint32(msg[off+8:])
	r.Expire = binary.BigEndian.Uint32(msg[off+12:])
	r.Minimum = binary.BigEndian.Uint32(msg[off+16:])
	return nil
}

// String implements RData.
func (r *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// SRV is a service-location record (RFC 2782). Its target name must not be
// compressed on the wire.
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   Name
}

// Type implements RData.
func (*SRV) Type() Type { return TypeSRV }

func (r *SRV) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, r.Priority)
	msg = binary.BigEndian.AppendUint16(msg, r.Weight)
	msg = binary.BigEndian.AppendUint16(msg, r.Port)
	return appendName(msg, r.Target, compressionMap{})
}

func (r *SRV) decodeFrom(msg []byte, off, length int) error {
	if length < 7 {
		return ErrShortMessage
	}
	r.Priority = binary.BigEndian.Uint16(msg[off:])
	r.Weight = binary.BigEndian.Uint16(msg[off+2:])
	r.Port = binary.BigEndian.Uint16(msg[off+4:])
	name, end, err := readName(msg, off+6)
	if err != nil {
		return err
	}
	if end != off+length {
		return ErrRDataOutOfBounds
	}
	r.Target = name
	return nil
}

// String implements RData.
func (r *SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", r.Priority, r.Weight, r.Port, r.Target)
}

// CAA is a certification-authority-authorization record (RFC 6844/8659).
// The landscape survey (Table 2) probes for these.
type CAA struct {
	Flags uint8  // bit 0x80 = issuer-critical
	Tag   string // "issue", "issuewild", "iodef"
	Value string
}

// Type implements RData.
func (*CAA) Type() Type { return TypeCAA }

func (r *CAA) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	if len(r.Tag) == 0 || len(r.Tag) > 255 {
		return msg, fmt.Errorf("dnswire: CAA tag length %d out of range", len(r.Tag))
	}
	msg = append(msg, r.Flags, byte(len(r.Tag)))
	msg = append(msg, r.Tag...)
	return append(msg, r.Value...), nil
}

func (r *CAA) decodeFrom(msg []byte, off, length int) error {
	if length < 2 {
		return ErrShortMessage
	}
	end := off + length
	r.Flags = msg[off]
	tagLen := int(msg[off+1])
	off += 2
	if off+tagLen > end {
		return ErrRDataOutOfBounds
	}
	r.Tag = string(msg[off : off+tagLen])
	r.Value = string(msg[off+tagLen : end])
	return nil
}

// String implements RData.
func (r *CAA) String() string { return fmt.Sprintf("%d %s %q", r.Flags, r.Tag, r.Value) }

// EDNS0Option is a single option inside an OPT pseudo-record (RFC 6891 §6.1.2).
type EDNS0Option struct {
	Code uint16
	Data []byte
}

// OPT is the EDNS(0) pseudo-record (RFC 6891). Its header fields are
// repurposed: CLASS carries the requestor's UDP payload size and TTL packs
// the extended RCODE, EDNS version, and the DO bit; the Message codec
// handles that mapping, so OPT itself only holds the options.
type OPT struct {
	Options []EDNS0Option
}

// Type implements RData.
func (*OPT) Type() Type { return TypeOPT }

func (r *OPT) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	for _, o := range r.Options {
		if len(o.Data) > 65535 {
			return msg, fmt.Errorf("dnswire: EDNS0 option %d too long", o.Code)
		}
		msg = binary.BigEndian.AppendUint16(msg, o.Code)
		msg = binary.BigEndian.AppendUint16(msg, uint16(len(o.Data)))
		msg = append(msg, o.Data...)
	}
	return msg, nil
}

func (r *OPT) decodeFrom(msg []byte, off, length int) error {
	end := off + length
	r.Options = r.Options[:0]
	for off < end {
		if off+4 > end {
			return ErrRDataOutOfBounds
		}
		code := binary.BigEndian.Uint16(msg[off:])
		n := int(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		if off+n > end {
			return ErrRDataOutOfBounds
		}
		data := make([]byte, n)
		copy(data, msg[off:off+n])
		r.Options = append(r.Options, EDNS0Option{Code: code, Data: data})
		off += n
	}
	return nil
}

// String implements RData.
func (r *OPT) String() string { return fmt.Sprintf("OPT(%d options)", len(r.Options)) }

// Unknown carries the raw rdata of any type this package has no structured
// decoder for (RFC 3597 treatment).
type Unknown struct {
	RRType Type
	Raw    []byte
}

// Type implements RData.
func (r *Unknown) Type() Type { return r.RRType }

func (r *Unknown) appendTo(msg []byte, _ compressionMap) ([]byte, error) {
	return append(msg, r.Raw...), nil
}

func (r *Unknown) decodeFrom(msg []byte, off, length int) error {
	r.Raw = make([]byte, length)
	copy(r.Raw, msg[off:off+length])
	return nil
}

// String implements RData.
func (r *Unknown) String() string { return fmt.Sprintf("\\# %d %x", len(r.Raw), r.Raw) }

// newRData returns a zero value of the structured type for t, or an Unknown
// if the package has none.
func newRData(t Type) RData {
	switch t {
	case TypeA:
		return &A{}
	case TypeAAAA:
		return &AAAA{}
	case TypeCNAME:
		return &CNAME{}
	case TypeNS:
		return &NS{}
	case TypePTR:
		return &PTR{}
	case TypeMX:
		return &MX{}
	case TypeTXT:
		return &TXT{}
	case TypeSOA:
		return &SOA{}
	case TypeSRV:
		return &SRV{}
	case TypeCAA:
		return &CAA{}
	case TypeOPT:
		return &OPT{}
	}
	return &Unknown{RRType: t}
}

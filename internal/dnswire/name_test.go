package dnswire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNameCanonical(t *testing.T) {
	tests := []struct {
		in   Name
		want Name
	}{
		{"", "."},
		{".", "."},
		{"example.com", "example.com."},
		{"example.com.", "example.com."},
		{"WWW.Example.COM", "www.example.com."},
	}
	for _, tt := range tests {
		if got := tt.in.Canonical(); got != tt.want {
			t.Errorf("Canonical(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNameLabels(t *testing.T) {
	if got := Name("www.example.com.").Labels(); len(got) != 3 || got[0] != "www" || got[2] != "com" {
		t.Errorf("Labels = %v", got)
	}
	if got := Root.Labels(); got != nil {
		t.Errorf("root Labels = %v, want nil", got)
	}
}

func TestNameParent(t *testing.T) {
	tests := []struct {
		in, want Name
	}{
		{"www.example.com.", "example.com."},
		{"example.com.", "com."},
		{"com.", "."},
		{".", "."},
	}
	for _, tt := range tests {
		if got := tt.in.Parent(); got != tt.want {
			t.Errorf("Parent(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNameIsSubdomainOf(t *testing.T) {
	tests := []struct {
		name, zone Name
		want       bool
	}{
		{"www.example.com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"example.com.", "www.example.com.", false},
		{"badexample.com.", "example.com.", false},
		{"anything.at.all.", ".", true},
		{"WWW.EXAMPLE.COM", "example.com.", true},
	}
	for _, tt := range tests {
		if got := tt.name.IsSubdomainOf(tt.zone); got != tt.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", tt.name, tt.zone, got, tt.want)
		}
	}
}

func TestAppendNameRoot(t *testing.T) {
	got, err := appendName(nil, Root, compressionMap{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0}) {
		t.Errorf("root wire = %x, want 00", got)
	}
}

func TestAppendNameUncompressed(t *testing.T) {
	got, err := appendName(nil, "www.example.com.", compressionMap{})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("\x03www\x07example\x03com\x00")
	if !bytes.Equal(got, want) {
		t.Errorf("wire = %q, want %q", got, want)
	}
}

func TestAppendNameLowercasesOnWire(t *testing.T) {
	got, err := appendName(nil, "WWW.Example.Com", compressionMap{})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("\x03www\x07example\x03com\x00")
	if !bytes.Equal(got, want) {
		t.Errorf("wire = %q, want %q", got, want)
	}
}

func TestAppendNameCompression(t *testing.T) {
	cmap := compressionMap{offsets: make(map[string]int)}
	msg, err := appendName(nil, "www.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	first := len(msg)
	msg, err = appendName(msg, "mail.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// The second name shares the "example.com." suffix at offset 4, so it
	// should be "mail" + pointer: 04 mail C0 04.
	wantSecond := []byte("\x04mail\xC0\x04")
	if !bytes.Equal(msg[first:], wantSecond) {
		t.Errorf("compressed tail = %x, want %x", msg[first:], wantSecond)
	}
	// A third, identical name should be a bare pointer to offset 0.
	third := len(msg)
	msg, err = appendName(msg, "www.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg[third:], []byte{0xC0, 0x00}) {
		t.Errorf("repeat name = %x, want C0 00", msg[third:])
	}
}

func TestReadNameCompressed(t *testing.T) {
	cmap := compressionMap{offsets: make(map[string]int)}
	msg, _ := appendName(nil, "www.example.com.", cmap)
	mid := len(msg)
	msg, _ = appendName(msg, "mail.example.com.", cmap)

	name, next, err := readName(msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www.example.com." || next != mid {
		t.Errorf("readName(0) = %q next=%d, want www.example.com. next=%d", name, next, mid)
	}
	name, next, err = readName(msg, mid)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mail.example.com." || next != len(msg) {
		t.Errorf("readName(mid) = %q next=%d, want mail.example.com. next=%d", name, next, len(msg))
	}
}

func TestReadNameRejectsForwardPointer(t *testing.T) {
	// Pointer at offset 0 pointing to offset 2 (forward) must be rejected.
	msg := []byte{0xC0, 0x02, 0x01, 'a', 0x00}
	if _, _, err := readName(msg, 0); !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("forward pointer: err = %v, want ErrCompressionLoop", err)
	}
}

func TestReadNameRejectsSelfPointer(t *testing.T) {
	msg := []byte{0x01, 'a', 0xC0, 0x02}
	if _, _, err := readName(msg, 2); !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("self pointer: err = %v, want ErrCompressionLoop", err)
	}
}

func TestReadNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x05, 'a', 'b'},   // label runs past end
		{0xC0},             // pointer missing second octet
		{0x01, 'a'},        // missing terminator
		{0x40, 0x01, 0x00}, // reserved label type
	}
	for i, msg := range cases {
		if _, _, err := readName(msg, 0); err == nil {
			t.Errorf("case %d (%x): expected error", i, msg)
		}
	}
}

func TestReadNameTooLong(t *testing.T) {
	// Chain of 9 x 31-byte labels = 288 wire octets > 255.
	var msg []byte
	for i := 0; i < 9; i++ {
		msg = append(msg, 31)
		msg = append(msg, bytes.Repeat([]byte{'a'}, 31)...)
	}
	msg = append(msg, 0)
	if _, _, err := readName(msg, 0); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

func TestNameValidate(t *testing.T) {
	long := strings.Repeat("a", 64)
	if err := Name(long + ".com.").validate(); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("63+ label: err = %v, want ErrLabelTooLong", err)
	}
	if err := Name("a..b.com.").validate(); !errors.Is(err, ErrEmptyLabel) {
		t.Errorf("empty label: err = %v, want ErrEmptyLabel", err)
	}
	var parts []string
	for i := 0; i < 10; i++ {
		parts = append(parts, strings.Repeat("x", 30))
	}
	if err := Name(strings.Join(parts, ".") + ".").validate(); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("300-octet name: err = %v, want ErrNameTooLong", err)
	}
	if err := Name("www.example.com.").validate(); err != nil {
		t.Errorf("valid name: err = %v", err)
	}
}

// genName builds an arbitrary valid name from quick-generated label sizes.
func genName(seed int64) Name {
	labels := []string{"a", "bb", "ccc", "dddd", "eeeee", "example", "com", "net", "io"}
	u := uint64(seed)
	n := int(u%4) + 1
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, labels[(u+uint64(i)*7)%uint64(len(labels))])
		u = u*6364136223846793005 + 1442695040888963407
	}
	return Name(strings.Join(parts, ".") + ".")
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		name := genName(seed)
		wire, err := appendName(nil, name, compressionMap{})
		if err != nil {
			return false
		}
		got, next, err := readName(wire, 0)
		return err == nil && got == name.Canonical() && next == len(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadNameNeverPanicsProperty(t *testing.T) {
	// Arbitrary bytes must produce either a name or an error, never a panic
	// or out-of-range read. validate() is only meaningful for ASCII names:
	// it lower-cases via UTF-8, which inflates arbitrary high bytes into
	// replacement runes and can push a legal 63-octet wire label over the
	// canonical-form limit.
	ascii := func(n Name) bool {
		for i := 0; i < len(n); i++ {
			if n[i] >= 0x80 {
				return false
			}
		}
		return true
	}
	f := func(data []byte, off uint8) bool {
		o := int(off)
		if len(data) > 0 {
			o %= len(data)
		} else {
			o = 0
		}
		name, next, err := readName(data, o)
		if err != nil {
			return true
		}
		if next > len(data) {
			return false
		}
		return !ascii(name) || name.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNameWireLen(t *testing.T) {
	for _, n := range []Name{".", "com.", "www.example.com."} {
		wire, err := appendName(nil, n, compressionMap{})
		if err != nil {
			t.Fatal(err)
		}
		if got := nameWireLen(n); got != len(wire) {
			t.Errorf("nameWireLen(%q) = %d, want %d", n, got, len(wire))
		}
	}
}

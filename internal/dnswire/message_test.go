package dnswire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackQueryGolden(t *testing.T) {
	m := &Message{
		ID:               0x1234,
		RecursionDesired: true,
		Questions:        []Question{{Name: "example.com.", Type: TypeA, Class: ClassINET}},
	}
	got, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x12, 0x34, // ID
		0x01, 0x00, // flags: RD
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // counts
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, // QTYPE A
		0x00, 0x01, // QCLASS IN
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire:\n got %x\nwant %x", got, want)
	}
}

func TestUnpackQueryGolden(t *testing.T) {
	wire := []byte{
		0x12, 0x34, 0x01, 0x00,
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, 0x00, 0x01,
	}
	var m Message
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || !m.RecursionDesired || m.Response {
		t.Errorf("header mismatch: %+v", m)
	}
	q := m.Question1()
	if q.Name != "example.com." || q.Type != TypeA || q.Class != ClassINET {
		t.Errorf("question = %v", q)
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleResponse() *Message {
	return &Message{
		ID:                 0xBEEF,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   true,
		RecursionAvailable: true,
		Questions:          []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}},
		Answers: []ResourceRecord{
			{Name: "www.example.com.", Class: ClassINET, TTL: 300,
				Data: &CNAME{Target: "cdn.example.net."}},
			{Name: "cdn.example.net.", Class: ClassINET, TTL: 60,
				Data: &A{Addr: mustAddr("192.0.2.53")}},
			{Name: "cdn.example.net.", Class: ClassINET, TTL: 60,
				Data: &AAAA{Addr: mustAddr("2001:db8::53")}},
		},
		Authorities: []ResourceRecord{
			{Name: "example.net.", Class: ClassINET, TTL: 3600,
				Data: &NS{Host: "ns1.example.net."}},
			{Name: "example.net.", Class: ClassINET, TTL: 3600, Data: &SOA{
				MName: "ns1.example.net.", RName: "hostmaster.example.net.",
				Serial: 2019091301, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
		},
		Additionals: []ResourceRecord{
			{Name: "example.net.", Class: ClassINET, TTL: 120,
				Data: &MX{Preference: 10, Host: "mx.example.net."}},
			{Name: "example.net.", Class: ClassINET, TTL: 120,
				Data: &TXT{Strings: []string{"v=spf1 -all", "second"}}},
			{Name: "_dns.example.net.", Class: ClassINET, TTL: 120,
				Data: &SRV{Priority: 1, Weight: 5, Port: 853, Target: "dot.example.net."}},
			{Name: "example.net.", Class: ClassINET, TTL: 120,
				Data: &CAA{Flags: 0, Tag: "issue", Value: "pki.goog"}},
			{Name: "53.2.0.192.in-addr.arpa.", Class: ClassINET, TTL: 120,
				Data: &PTR{Target: "cdn.example.net."}},
		},
		EDNS: &EDNS{UDPSize: 4096, DO: true,
			Options: []EDNS0Option{{Code: 10, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}},
	}
}

func TestMessageRoundTripAllTypes(t *testing.T) {
	m := sampleResponse()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatalf("unpack: %v\nwire: %x", err, wire)
	}
	// Normalize empty slices for comparison.
	if len(got.Questions) == 0 {
		got.Questions = nil
	}
	if !reflect.DeepEqual(m.Questions, got.Questions) {
		t.Errorf("questions:\n got %v\nwant %v", got.Questions, m.Questions)
	}
	if !reflect.DeepEqual(m.Answers, got.Answers) {
		t.Errorf("answers:\n got %v\nwant %v", got.Answers, m.Answers)
	}
	if !reflect.DeepEqual(m.Authorities, got.Authorities) {
		t.Errorf("authorities:\n got %v\nwant %v", got.Authorities, m.Authorities)
	}
	if !reflect.DeepEqual(m.Additionals, got.Additionals) {
		t.Errorf("additionals:\n got %v\nwant %v", got.Additionals, m.Additionals)
	}
	if !reflect.DeepEqual(m.EDNS, got.EDNS) {
		t.Errorf("edns:\n got %+v\nwant %+v", got.EDNS, m.EDNS)
	}
}

func TestCompressionShrinksRepeatedNames(t *testing.T) {
	m := &Message{
		ID:        1,
		Questions: []Question{{Name: "host.example.org.", Type: TypeA, Class: ClassINET}},
	}
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, ResourceRecord{
			Name: "host.example.org.", Class: ClassINET, TTL: 60,
			Data: &A{Addr: mustAddr(fmt.Sprintf("192.0.2.%d", i+1))},
		})
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Each answer should cost 2 (pointer) + 10 (fixed) + 4 (A) = 16 octets.
	wantLen := headerLen + (18 + 4) + 10*16
	if len(wire) != wantLen {
		t.Errorf("compressed message = %d octets, want %d", len(wire), wantLen)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 10 || got.Answers[9].Name != "host.example.org." {
		t.Errorf("unpack after compression: %v", got.Answers)
	}
}

func TestUnpackRejectsTrailingGarbage(t *testing.T) {
	m := NewQuery(7, "example.com.", TypeA)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, 0xFF)
	var got Message
	if err := got.Unpack(wire); !errors.Is(err, ErrTrailingGarbage) {
		t.Errorf("err = %v, want ErrTrailingGarbage", err)
	}
}

func TestUnpackRejectsAbsurdCounts(t *testing.T) {
	wire := make([]byte, headerLen)
	wire[4], wire[5] = 0xFF, 0xFF // QDCOUNT=65535 in a 12-byte message
	var m Message
	if err := m.Unpack(wire); !errors.Is(err, ErrTooManyRecords) {
		t.Errorf("err = %v, want ErrTooManyRecords", err)
	}
}

func TestUnpackShortHeader(t *testing.T) {
	var m Message
	if err := m.Unpack([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("err = %v, want ErrShortMessage", err)
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(9, "example.com.", TypeAAAA)
	m.EDNS.DO = true
	m.EDNS.UDPSize = 1232
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.EDNS == nil || got.EDNS.UDPSize != 1232 || !got.EDNS.DO {
		t.Errorf("EDNS = %+v", got.EDNS)
	}
	if len(got.Additionals) != 0 {
		t.Errorf("OPT leaked into additionals: %v", got.Additionals)
	}
}

func TestExtendedRCode(t *testing.T) {
	m := &Message{ID: 1, Response: true, RCode: RCode(16)} // BADVERS needs EDNS
	m.EDNS = &EDNS{UDPSize: 512, ExtendedRCode: uint8(16 >> 4)}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCode(16) {
		t.Errorf("extended rcode = %d, want 16", got.RCode)
	}
}

func TestReplySkeleton(t *testing.T) {
	q := NewQuery(42, "Example.COM", TypeA)
	r := q.Reply()
	if !r.Response || r.ID != 42 || !r.RecursionAvailable {
		t.Errorf("reply header: %+v", r)
	}
	if r.Question1().Name != "example.com." {
		t.Errorf("reply question = %v", r.Question1())
	}
	if r.EDNS == nil {
		t.Error("reply dropped EDNS")
	}
}

func TestValidateResponse(t *testing.T) {
	q := NewQuery(42, "example.com.", TypeA)
	r := q.Reply()
	if err := ValidateResponse(q, r); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
	bad := q.Reply()
	bad.ID = 43
	if err := ValidateResponse(q, bad); !errors.Is(err, ErrIDMismatch) {
		t.Errorf("id mismatch: err = %v", err)
	}
	notResp := NewQuery(42, "example.com.", TypeA)
	if err := ValidateResponse(q, notResp); !errors.Is(err, ErrNotAResponse) {
		t.Errorf("non-response: err = %v", err)
	}
	wrongQ := q.Reply()
	wrongQ.Questions[0].Name = "other.com."
	if err := ValidateResponse(q, wrongQ); err == nil {
		t.Error("mismatched question accepted")
	}
}

func TestPackRejectsNilRData(t *testing.T) {
	m := &Message{Answers: []ResourceRecord{{Name: "x.com.", Class: ClassINET}}}
	if _, err := m.Pack(); err == nil {
		t.Error("nil rdata accepted")
	}
}

func TestAppendPackAfterPrefix(t *testing.T) {
	// Packing behind existing bytes (a stream server's two-octet length
	// prefix) must produce the same message octets as a fresh pack:
	// compression pointers are message-relative, not buffer-relative.
	m := &Message{
		ID:       7,
		Response: true,
		Questions: []Question{
			{Name: "www.example.com.", Type: TypeA, Class: ClassINET},
		},
		Answers: []ResourceRecord{
			{Name: "www.example.com.", Class: ClassINET, TTL: 60,
				Data: &CNAME{Target: "cdn.example.com."}},
			{Name: "cdn.example.com.", Class: ClassINET, TTL: 60,
				Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		},
	}
	fresh, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	prefixed, err := m.AppendPack(make([]byte, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prefixed[2:], fresh) {
		t.Errorf("prefixed pack differs from fresh pack:\n  %x\n  %x", prefixed[2:], fresh)
	}
	var rt Message
	if err := rt.Unpack(prefixed[2:]); err != nil {
		t.Fatalf("unpacking prefixed pack: %v", err)
	}
}

func TestUnknownTypeRoundTrip(t *testing.T) {
	m := &Message{
		ID: 3,
		Answers: []ResourceRecord{{
			Name: "example.com.", Class: ClassINET, TTL: 30,
			Data: &Unknown{RRType: Type(999), Raw: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
		}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	u, ok := got.Answers[0].Data.(*Unknown)
	if !ok || u.RRType != Type(999) || !bytes.Equal(u.Raw, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Errorf("unknown rr = %+v", got.Answers[0])
	}
}

// randomMessage builds a random-but-valid message for property testing.
func randomMessage(rng *rand.Rand) *Message {
	m := &Message{
		ID:               uint16(rng.Uint32()),
		Response:         rng.Intn(2) == 0,
		RecursionDesired: rng.Intn(2) == 0,
		RCode:            RCode(rng.Intn(6)),
	}
	name := genName(rng.Int63())
	m.Questions = []Question{{Name: name, Type: TypeA, Class: ClassINET}}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		rr := ResourceRecord{Name: genName(rng.Int63()), Class: ClassINET, TTL: rng.Uint32() % 86400}
		switch rng.Intn(5) {
		case 0:
			rr.Data = &A{Addr: netip.AddrFrom4([4]byte{byte(rng.Intn(256)), 0, 2, byte(rng.Intn(256))})}
		case 1:
			var a16 [16]byte
			rng.Read(a16[:])
			a16[0] = 0x20 // keep it a real v6, not 4-in-6
			rr.Data = &AAAA{Addr: netip.AddrFrom16(a16)}
		case 2:
			rr.Data = &CNAME{Target: genName(rng.Int63())}
		case 3:
			rr.Data = &MX{Preference: uint16(rng.Uint32()), Host: genName(rng.Int63())}
		case 4:
			rr.Data = &TXT{Strings: []string{"abc", "with spaces"}}
		}
		m.Answers = append(m.Answers, rr)
	}
	if rng.Intn(2) == 0 {
		m.EDNS = &EDNS{UDPSize: 512 + uint16(rng.Intn(4096)), DO: rng.Intn(2) == 0}
	}
	return m
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMessage(rng)
		wire, err := m.Pack()
		if err != nil {
			t.Logf("pack(%+v): %v", m, err)
			return false
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		wire2, err := got.Pack()
		if err != nil {
			return false
		}
		// Pack→Unpack→Pack must be a fixed point (wire-level idempotence).
		return bytes.Equal(wire, wire2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnpackNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		var m Message
		_ = m.Unpack(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeCAA.String() != "CAA" {
		t.Error("type mnemonics wrong")
	}
	if Type(4242).String() != "TYPE4242" {
		t.Errorf("unknown type = %s", Type(4242))
	}
	if got, ok := ParseType("AAAA"); !ok || got != TypeAAAA {
		t.Errorf("ParseType(AAAA) = %v %v", got, ok)
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(77).String() != "RCODE77" {
		t.Error("rcode strings wrong")
	}
	if ClassINET.String() != "IN" || Class(999).String() != "CLASS999" {
		t.Error("class strings wrong")
	}
	if OpCodeQuery.String() != "QUERY" || OpCode(7).String() != "OPCODE7" {
		t.Error("opcode strings wrong")
	}
}

func TestMessageString(t *testing.T) {
	s := sampleResponse().String()
	for _, want := range []string{"response", "ANSWER", "AUTHORITY", "ADDITIONAL", "www.example.com."} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

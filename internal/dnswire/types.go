// Package dnswire implements the DNS wire format (RFC 1035 and friends):
// message packing and unpacking, domain-name compression, EDNS(0), and the
// resource-record types needed by the DoH cost study (A, NS, CNAME, SOA,
// PTR, MX, TXT, AAAA, SRV, OPT and CAA), plus a raw escape hatch for
// everything else.
//
// The codec is allocation-conscious: packing appends into a caller-supplied
// buffer, and unpacking borrows from the input only where safe (copies are
// made for retained byte slices). It is the substrate every DNS transport in
// this repository (UDP, TCP, DoT, DoH) carries on the wire.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types used by the study.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41
	TypeDS    Type = 43
	TypeRRSIG Type = 46
	TypeCAA   Type = 257
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeSRV:   "SRV",
	TypeOPT:   "OPT",
	TypeDS:    "DS",
	TypeRRSIG: "RRSIG",
	TypeCAA:   "CAA",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic ("A", "AAAA", …) or "TYPEn" for
// types without one (RFC 3597 presentation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to its Type; it accepts the same set
// String produces. The boolean reports whether the mnemonic was known.
func ParseType(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS class. Only IN sees real-world use; OPT pseudo-records
// repurpose the field for the requestor's UDP payload size (RFC 6891).
type Class uint16

// DNS classes.
const (
	ClassINET   Class = 1
	ClassCHAOS  Class = 3
	ClassHESIOD Class = 4
	ClassANY    Class = 255
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCHAOS:
		return "CH"
	case ClassHESIOD:
		return "HS"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// OpCode is a DNS operation code (header bits 1-4).
type OpCode uint8

// Operation codes.
const (
	OpCodeQuery  OpCode = 0
	OpCodeIQuery OpCode = 1
	OpCodeStatus OpCode = 2
	OpCodeNotify OpCode = 4
	OpCodeUpdate OpCode = 5
)

// String implements fmt.Stringer.
func (o OpCode) String() string {
	switch o {
	case OpCodeQuery:
		return "QUERY"
	case OpCodeIQuery:
		return "IQUERY"
	case OpCodeStatus:
		return "STATUS"
	case OpCodeNotify:
		return "NOTIFY"
	case OpCodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// RCode is a DNS response code (header bits 12-15, possibly extended by
// EDNS(0)).
type RCode uint16

// Response codes.
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

// String implements fmt.Stringer.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Wire-format size limits (RFC 1035 §2.3.4, §4.2.1).
const (
	maxLabelLen   = 63
	maxNameLen    = 255
	headerLen     = 12
	maxUDPPayload = 512   // classic DNS-over-UDP ceiling without EDNS(0)
	MaxMessageLen = 65535 // TCP/DoT/DoH length-prefix ceiling
)

// Errors returned by the codec. They are sentinel values so tests and
// callers can match on them with errors.Is.
var (
	ErrNameTooLong      = fmt.Errorf("dnswire: name exceeds %d octets", maxNameLen)
	ErrLabelTooLong     = fmt.Errorf("dnswire: label exceeds %d octets", maxLabelLen)
	ErrEmptyLabel       = fmt.Errorf("dnswire: empty label inside name")
	ErrShortMessage     = fmt.Errorf("dnswire: message truncated")
	ErrCompressionLoop  = fmt.Errorf("dnswire: compression pointer loop")
	ErrTrailingGarbage  = fmt.Errorf("dnswire: trailing bytes after message")
	ErrTooManyRecords   = fmt.Errorf("dnswire: section count exceeds message size")
	ErrMessageTooLarge  = fmt.Errorf("dnswire: message exceeds 65535 octets")
	ErrNotAResponse     = fmt.Errorf("dnswire: message is not a response")
	ErrIDMismatch       = fmt.Errorf("dnswire: response ID does not match query")
	ErrRDataOutOfBounds = fmt.Errorf("dnswire: rdata extends past message")
)

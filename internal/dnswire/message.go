package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Question is one entry of a message's question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// ResourceRecord is one RR of the answer, authority, or additional section.
// OPT pseudo-records are not represented here; the Message codec folds them
// into the EDNS fields below.
type ResourceRecord struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type reports the record's RR type, derived from its payload.
func (rr ResourceRecord) Type() Type {
	if rr.Data == nil {
		return TypeNone
	}
	return rr.Data.Type()
}

// String renders the record in zone-file presentation.
func (rr ResourceRecord) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// EDNS carries the fields of an OPT pseudo-record in unpacked form
// (RFC 6891). A nil *EDNS on a Message means no OPT record is present.
type EDNS struct {
	UDPSize       uint16 // requestor's maximum UDP payload
	ExtendedRCode uint8  // upper 8 bits of the 12-bit extended RCODE
	Version       uint8
	DO            bool // DNSSEC OK
	Options       []EDNS0Option
}

// Message is a complete DNS message in unpacked form. The zero value is a
// valid empty query.
type Message struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	RCode              RCode

	Questions   []Question
	Answers     []ResourceRecord
	Authorities []ResourceRecord
	Additionals []ResourceRecord

	// EDNS, when non-nil, is packed as an OPT record at the end of the
	// additional section and populated from one on unpack.
	EDNS *EDNS
}

// NewQuery returns a recursion-desired query for (name, type) with the given
// transaction ID and a 4096-byte EDNS(0) OPT record, mirroring what stub
// resolvers emit in practice.
func NewQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name.Canonical(), Type: t, Class: ClassINET}},
		EDNS:             &EDNS{UDPSize: 4096},
	}
}

// Reply returns a response skeleton for m: same ID, opcode and question,
// recursion bits mirrored, ready for answers to be appended.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		OpCode:             m.OpCode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
		Questions:          append([]Question(nil), m.Questions...),
	}
	if m.EDNS != nil {
		r.EDNS = &EDNS{UDPSize: maxUDPPayload, DO: m.EDNS.DO}
	}
	return r
}

// Question1 returns the first question, or a zero Question if none.
func (m *Message) Question1() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// flags packs the second header word.
func (m *Message) flags() uint16 {
	var f uint16
	if m.Response {
		f |= 1 << 15
	}
	f |= uint16(m.OpCode&0xF) << 11
	if m.Authoritative {
		f |= 1 << 10
	}
	if m.Truncated {
		f |= 1 << 9
	}
	if m.RecursionDesired {
		f |= 1 << 8
	}
	if m.RecursionAvailable {
		f |= 1 << 7
	}
	if m.AuthenticData {
		f |= 1 << 5
	}
	if m.CheckingDisabled {
		f |= 1 << 4
	}
	f |= uint16(m.RCode) & 0xF
	return f
}

func (m *Message) setFlags(f uint16) {
	m.Response = f&(1<<15) != 0
	m.OpCode = OpCode(f >> 11 & 0xF)
	m.Authoritative = f&(1<<10) != 0
	m.Truncated = f&(1<<9) != 0
	m.RecursionDesired = f&(1<<8) != 0
	m.RecursionAvailable = f&(1<<7) != 0
	m.AuthenticData = f&(1<<5) != 0
	m.CheckingDisabled = f&(1<<4) != 0
	m.RCode = RCode(f & 0xF)
}

// Pack serializes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack serializes the message onto buf and returns the extended
// slice. Compression pointers are relative to the start of the appended
// message (the initial len(buf)), so a caller may pack after existing
// bytes — the stream servers pack directly behind their two-octet length
// prefix — and the serving hot path packs into pooled buffers.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	base := len(buf)
	additionals := len(m.Additionals)
	if m.EDNS != nil {
		additionals++
	}
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authorities) > 0xFFFF || additionals > 0xFFFF {
		return buf, ErrTooManyRecords
	}

	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	buf = binary.BigEndian.AppendUint16(buf, m.flags())
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authorities)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(additionals))

	cmap := compressionMap{offsets: make(map[string]int, 8), base: base}
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmap); err != nil {
			return buf, fmt.Errorf("dnswire: packing question %s: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]ResourceRecord{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range section {
			if buf, err = appendRR(buf, rr, cmap); err != nil {
				return buf, err
			}
		}
	}
	if m.EDNS != nil {
		if buf, err = appendOPT(buf, m.EDNS); err != nil {
			return buf, err
		}
	}
	if len(buf)-base > MaxMessageLen {
		return buf, ErrMessageTooLarge
	}
	return buf, nil
}

func appendRR(buf []byte, rr ResourceRecord, cmap compressionMap) ([]byte, error) {
	if rr.Data == nil {
		return buf, fmt.Errorf("dnswire: record %s has nil rdata", rr.Name)
	}
	var err error
	if buf, err = appendName(buf, rr.Name, cmap); err != nil {
		return buf, fmt.Errorf("dnswire: packing record %s: %w", rr.Name, err)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0) // RDLENGTH placeholder
	if buf, err = rr.Data.appendTo(buf, cmap); err != nil {
		return buf, fmt.Errorf("dnswire: packing %s rdata for %s: %w", rr.Type(), rr.Name, err)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return buf, ErrMessageTooLarge
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

func appendOPT(buf []byte, e *EDNS) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, Root, compressionMap{}); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeOPT))
	buf = binary.BigEndian.AppendUint16(buf, e.UDPSize)
	ttl := uint32(e.ExtendedRCode)<<24 | uint32(e.Version)<<16
	if e.DO {
		ttl |= 1 << 15
	}
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	opt := &OPT{Options: e.Options}
	if buf, err = opt.appendTo(buf, compressionMap{}); err != nil {
		return buf, err
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(len(buf)-lenAt-2))
	return buf, nil
}

// Unpack parses a complete wire-format message, rejecting trailing bytes.
func (m *Message) Unpack(data []byte) error {
	n, err := m.unpack(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return ErrTrailingGarbage
	}
	return nil
}

func (m *Message) unpack(data []byte) (int, error) {
	if len(data) < headerLen {
		return 0, ErrShortMessage
	}
	m.ID = binary.BigEndian.Uint16(data)
	m.setFlags(binary.BigEndian.Uint16(data[2:]))
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))
	// A question needs ≥5 octets, a record ≥11; reject absurd counts early
	// so hostile headers cannot trigger huge allocations.
	if qd*5+an*11+ns*11+ar*11 > len(data)-headerLen {
		return 0, ErrTooManyRecords
	}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authorities = m.Authorities[:0]
	m.Additionals = m.Additionals[:0]
	m.EDNS = nil

	off := headerLen
	for i := 0; i < qd; i++ {
		var q Question
		var err error
		if q.Name, off, err = readName(data, off); err != nil {
			return 0, err
		}
		if off+4 > len(data) {
			return 0, ErrShortMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(data[off:]))
		q.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	var err error
	if m.Answers, off, err = m.readSection(data, off, an, m.Answers); err != nil {
		return 0, err
	}
	if m.Authorities, off, err = m.readSection(data, off, ns, m.Authorities); err != nil {
		return 0, err
	}
	if m.Additionals, off, err = m.readSection(data, off, ar, m.Additionals); err != nil {
		return 0, err
	}
	return off, nil
}

// readSection decodes count records, diverting OPT pseudo-records into
// m.EDNS rather than the returned slice.
func (m *Message) readSection(data []byte, off, count int, dst []ResourceRecord) ([]ResourceRecord, int, error) {
	for i := 0; i < count; i++ {
		name, next, err := readName(data, off)
		if err != nil {
			return dst, 0, err
		}
		off = next
		if off+10 > len(data) {
			return dst, 0, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(data[off:]))
		class := Class(binary.BigEndian.Uint16(data[off+2:]))
		ttl := binary.BigEndian.Uint32(data[off+4:])
		rdlen := int(binary.BigEndian.Uint16(data[off+8:]))
		off += 10
		if off+rdlen > len(data) {
			return dst, 0, ErrRDataOutOfBounds
		}
		if typ == TypeOPT {
			e := &EDNS{
				UDPSize:       uint16(class),
				ExtendedRCode: uint8(ttl >> 24),
				Version:       uint8(ttl >> 16),
				DO:            ttl&(1<<15) != 0,
			}
			opt := &OPT{}
			if err := opt.decodeFrom(data, off, rdlen); err != nil {
				return dst, 0, err
			}
			e.Options = opt.Options
			m.EDNS = e
			m.RCode |= RCode(e.ExtendedRCode) << 4
			off += rdlen
			continue
		}
		rd := newRData(typ)
		if err := rd.decodeFrom(data, off, rdlen); err != nil {
			return dst, 0, fmt.Errorf("dnswire: decoding %s rdata for %s: %w", typ, name, err)
		}
		off += rdlen
		dst = append(dst, ResourceRecord{Name: name, Class: class, TTL: ttl, Data: rd})
	}
	return dst, off, nil
}

// ValidateResponse checks that resp is a well-formed answer to query q:
// it must be a response, echo q's ID, and (when a question is echoed, which
// all real resolvers do) match q's first question.
func ValidateResponse(q, resp *Message) error {
	if !resp.Response {
		return ErrNotAResponse
	}
	if resp.ID != q.ID {
		return ErrIDMismatch
	}
	if len(resp.Questions) > 0 && len(q.Questions) > 0 {
		want, got := q.Questions[0], resp.Questions[0]
		if want.Name.Canonical() != got.Name.Canonical() || want.Type != got.Type || want.Class != got.Class {
			return fmt.Errorf("dnswire: response question %s does not match query %s", got, want)
		}
	}
	return nil
}

// String renders the message in a dig-like multi-section dump.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s %s id=%d rcode=%s", m.OpCode, kind, m.ID, m.RCode)
	if m.Truncated {
		sb.WriteString(" TC")
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, section := range []struct {
		label string
		rrs   []ResourceRecord
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authorities}, {"ADDITIONAL", m.Additionals}} {
		for _, rr := range section.rrs {
			fmt.Fprintf(&sb, "%s: %s\n", section.label, rr)
		}
	}
	return sb.String()
}

// Package dnsjson implements the application/dns-json representation of DNS
// messages (draft-bortzmeyer-dns-json, as deployed by Google's /resolve
// endpoint and Cloudflare's JSON API). The landscape survey (Table 2)
// probes DoH servers for this content type alongside the RFC-mandated
// application/dns-message wireformat.
package dnsjson

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"net/url"
	"strconv"
	"strings"

	"dohcost/internal/dnswire"
)

// ContentType is the MIME type of this encoding.
const ContentType = "application/dns-json"

// RR is one resource record in JSON form.
type RR struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
	TTL  uint32 `json:"TTL"`
	Data string `json:"data"`
}

// Question is one question in JSON form.
type Question struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
}

// Response is the JSON document shape.
type Response struct {
	Status     int        `json:"Status"`
	TC         bool       `json:"TC"`
	RD         bool       `json:"RD"`
	RA         bool       `json:"RA"`
	AD         bool       `json:"AD"`
	CD         bool       `json:"CD"`
	Question   []Question `json:"Question"`
	Answer     []RR       `json:"Answer,omitempty"`
	Authority  []RR       `json:"Authority,omitempty"`
	Additional []RR       `json:"Additional,omitempty"`
}

// Encode renders a DNS response message as JSON.
func Encode(m *dnswire.Message) ([]byte, error) {
	doc := Response{
		Status: int(m.RCode),
		TC:     m.Truncated,
		RD:     m.RecursionDesired,
		RA:     m.RecursionAvailable,
		AD:     m.AuthenticData,
		CD:     m.CheckingDisabled,
	}
	for _, q := range m.Questions {
		doc.Question = append(doc.Question, Question{Name: string(q.Name), Type: uint16(q.Type)})
	}
	var err error
	if doc.Answer, err = encodeSection(m.Answers); err != nil {
		return nil, err
	}
	if doc.Authority, err = encodeSection(m.Authorities); err != nil {
		return nil, err
	}
	if doc.Additional, err = encodeSection(m.Additionals); err != nil {
		return nil, err
	}
	return json.Marshal(doc)
}

func encodeSection(rrs []dnswire.ResourceRecord) ([]RR, error) {
	out := make([]RR, 0, len(rrs))
	for _, rr := range rrs {
		if rr.Data == nil {
			return nil, fmt.Errorf("dnsjson: record %s has nil rdata", rr.Name)
		}
		out = append(out, RR{
			Name: string(rr.Name),
			Type: uint16(rr.Type()),
			TTL:  rr.TTL,
			Data: rr.Data.String(),
		})
	}
	return out, nil
}

// Decode parses a JSON document back into a message. The wire ID is not
// part of the JSON representation and is left zero.
func Decode(data []byte) (*dnswire.Message, error) {
	var doc Response
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("dnsjson: %w", err)
	}
	m := &dnswire.Message{
		Response:           true,
		RCode:              dnswire.RCode(doc.Status),
		Truncated:          doc.TC,
		RecursionDesired:   doc.RD,
		RecursionAvailable: doc.RA,
		AuthenticData:      doc.AD,
		CheckingDisabled:   doc.CD,
	}
	for _, q := range doc.Question {
		m.Questions = append(m.Questions, dnswire.Question{
			Name: dnswire.Name(q.Name).Canonical(), Type: dnswire.Type(q.Type), Class: dnswire.ClassINET,
		})
	}
	var err error
	if m.Answers, err = decodeSection(doc.Answer); err != nil {
		return nil, err
	}
	if m.Authorities, err = decodeSection(doc.Authority); err != nil {
		return nil, err
	}
	if m.Additionals, err = decodeSection(doc.Additional); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeSection(rrs []RR) ([]dnswire.ResourceRecord, error) {
	var out []dnswire.ResourceRecord
	for _, rr := range rrs {
		data, err := parseRData(dnswire.Type(rr.Type), rr.Data)
		if err != nil {
			return nil, fmt.Errorf("dnsjson: %s record for %s: %w", dnswire.Type(rr.Type), rr.Name, err)
		}
		out = append(out, dnswire.ResourceRecord{
			Name:  dnswire.Name(rr.Name).Canonical(),
			Class: dnswire.ClassINET,
			TTL:   rr.TTL,
			Data:  data,
		})
	}
	return out, nil
}

func parseRData(t dnswire.Type, s string) (dnswire.RData, error) {
	switch t {
	case dnswire.TypeA:
		addr, err := netip.ParseAddr(s)
		if err != nil {
			return nil, err
		}
		return &dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		addr, err := netip.ParseAddr(s)
		if err != nil {
			return nil, err
		}
		return &dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeCNAME:
		return &dnswire.CNAME{Target: dnswire.Name(s).Canonical()}, nil
	case dnswire.TypeNS:
		return &dnswire.NS{Host: dnswire.Name(s).Canonical()}, nil
	case dnswire.TypePTR:
		return &dnswire.PTR{Target: dnswire.Name(s).Canonical()}, nil
	case dnswire.TypeMX:
		var pref uint16
		var host string
		if _, err := fmt.Sscanf(s, "%d %s", &pref, &host); err != nil {
			return nil, err
		}
		return &dnswire.MX{Preference: pref, Host: dnswire.Name(host).Canonical()}, nil
	case dnswire.TypeTXT:
		var parts []string
		for _, p := range strings.Split(s, `" "`) {
			parts = append(parts, strings.Trim(p, `"`))
		}
		return &dnswire.TXT{Strings: parts}, nil
	case dnswire.TypeCAA:
		var flags uint8
		rest := s
		if _, err := fmt.Sscanf(s, "%d", &flags); err != nil {
			return nil, err
		}
		if i := strings.IndexByte(s, ' '); i >= 0 {
			rest = s[i+1:]
		}
		tag, value, _ := strings.Cut(rest, " ")
		return &dnswire.CAA{Flags: flags, Tag: tag, Value: strings.Trim(value, `"`)}, nil
	}
	return &dnswire.Unknown{RRType: t, Raw: []byte(s)}, nil
}

// ParseQuery interprets the GET query parameters of a JSON DoH request
// (?name=example.com&type=A or numeric type) into a query message.
func ParseQuery(values url.Values) (*dnswire.Message, error) {
	name := values.Get("name")
	if name == "" {
		return nil, fmt.Errorf("dnsjson: missing name parameter")
	}
	typeStr := values.Get("type")
	t := dnswire.TypeA
	if typeStr != "" {
		if parsed, ok := dnswire.ParseType(strings.ToUpper(typeStr)); ok {
			t = parsed
		} else if n, err := strconv.Atoi(typeStr); err == nil {
			t = dnswire.Type(n)
		} else {
			return nil, fmt.Errorf("dnsjson: bad type %q", typeStr)
		}
	}
	q := dnswire.NewQuery(0, dnswire.Name(name), t)
	if values.Get("cd") == "true" || values.Get("cd") == "1" {
		q.CheckingDisabled = true
	}
	if values.Get("do") == "true" || values.Get("do") == "1" {
		q.EDNS.DO = true
	}
	return q, nil
}

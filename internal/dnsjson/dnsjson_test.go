package dnsjson

import (
	"net/netip"
	"net/url"
	"strings"
	"testing"

	"dohcost/internal/dnswire"
)

func sampleResponse() *dnswire.Message {
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)
	r := q.Reply()
	r.Answers = []dnswire.ResourceRecord{
		{Name: "www.example.com.", Class: dnswire.ClassINET, TTL: 300,
			Data: &dnswire.CNAME{Target: "cdn.example.net."}},
		{Name: "cdn.example.net.", Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}},
	}
	r.Authorities = []dnswire.ResourceRecord{
		{Name: "example.net.", Class: dnswire.ClassINET, TTL: 3600,
			Data: &dnswire.NS{Host: "ns1.example.net."}},
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleResponse()
	data, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Status":0`) {
		t.Errorf("json = %s", data)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != dnswire.RCodeSuccess || !got.Response {
		t.Errorf("header = %+v", got)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %v", got.Answers)
	}
	cname, ok := got.Answers[0].Data.(*dnswire.CNAME)
	if !ok || cname.Target != "cdn.example.net." {
		t.Errorf("answer[0] = %v", got.Answers[0])
	}
	a, ok := got.Answers[1].Data.(*dnswire.A)
	if !ok || a.Addr != netip.MustParseAddr("192.0.2.7") {
		t.Errorf("answer[1] = %v", got.Answers[1])
	}
	if len(got.Authorities) != 1 {
		t.Errorf("authorities = %v", got.Authorities)
	}
}

func TestEncodeVariousTypes(t *testing.T) {
	r := sampleResponse()
	r.Answers = append(r.Answers,
		dnswire.ResourceRecord{Name: "example.net.", Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
		dnswire.ResourceRecord{Name: "example.net.", Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.MX{Preference: 10, Host: "mx.example.net."}},
		dnswire.ResourceRecord{Name: "example.net.", Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.TXT{Strings: []string{"v=spf1 -all"}}},
		dnswire.ResourceRecord{Name: "example.net.", Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.CAA{Flags: 0, Tag: "issue", Value: "pki.goog"}},
	)
	data, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 6 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	mx := got.Answers[3].Data.(*dnswire.MX)
	if mx.Preference != 10 || mx.Host != "mx.example.net." {
		t.Errorf("mx = %v", mx)
	}
	txt := got.Answers[4].Data.(*dnswire.TXT)
	if len(txt.Strings) != 1 || txt.Strings[0] != "v=spf1 -all" {
		t.Errorf("txt = %v", txt)
	}
	caa := got.Answers[5].Data.(*dnswire.CAA)
	if caa.Tag != "issue" || caa.Value != "pki.goog" {
		t.Errorf("caa = %v", caa)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{nonsense")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := Decode([]byte(`{"Answer":[{"name":"x","type":1,"data":"not-an-ip"}]}`)); err == nil {
		t.Error("bad A data accepted")
	}
}

func TestParseQuery(t *testing.T) {
	v := url.Values{}
	v.Set("name", "example.com")
	v.Set("type", "AAAA")
	q, err := ParseQuery(v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Question1().Name != "example.com." || q.Question1().Type != dnswire.TypeAAAA {
		t.Errorf("question = %v", q.Question1())
	}
	v.Set("type", "257")
	q, err = ParseQuery(v)
	if err != nil || q.Question1().Type != dnswire.TypeCAA {
		t.Errorf("numeric type = %v, %v", q.Question1(), err)
	}
	v.Set("do", "true")
	q, _ = ParseQuery(v)
	if !q.EDNS.DO {
		t.Error("do flag ignored")
	}
	if _, err := ParseQuery(url.Values{}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := ParseQuery(url.Values{"name": {"x"}, "type": {"WAT"}}); err == nil {
		t.Error("bad type accepted")
	}
}

package qtrace

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// QueryLog is the structured query log: one JSON object per kept trace,
// newline-delimited (JSONL), with dnstap-style fields — query identity,
// transport, verdict, upstream, and the per-phase timings. The file
// rotates by size: when the active file exceeds MaxBytes it is renamed to
// <path>.1 (replacing any previous rotation) and a fresh file is started,
// bounding the on-disk footprint at roughly twice MaxBytes.
type QueryLog struct {
	mu   sync.Mutex
	path string
	max  int64
	f    *os.File
	size int64
}

// DefaultQueryLogMaxBytes is the rotation threshold applied when
// OpenQueryLog is given a non-positive maxBytes (64 MiB).
const DefaultQueryLogMaxBytes = 64 << 20

// OpenQueryLog opens (appending) or creates the JSONL query log at path,
// rotating when it exceeds maxBytes (DefaultQueryLogMaxBytes if
// non-positive).
func OpenQueryLog(path string, maxBytes int64) (*QueryLog, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultQueryLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &QueryLog{path: path, max: maxBytes, f: f, size: st.Size()}, nil
}

// logRecord is the JSONL schema (documented in docs/TRACING.md).
type logRecord struct {
	// Time is the query's accept time, RFC 3339 with nanoseconds.
	Time time.Time `json:"time"`
	// QName and QType identify the query.
	QName string `json:"qname"`
	QType uint16 `json:"qtype"`
	// Proto is the listener transport ("udp", "tcp", "dot", "doh").
	Proto string `json:"proto"`
	// Verdict, Cache and Upstream are the outcome labels.
	Verdict  string `json:"verdict"`
	Cache    string `json:"cache,omitempty"`
	Upstream string `json:"upstream,omitempty"`
	// DurationMs is the accept-to-finish latency.
	DurationMs float64 `json:"duration_ms"`
	// Spans are the phase timings.
	Spans []SpanView `json:"spans"`
}

// Write appends one trace as a JSONL line, rotating first if the active
// file is over the size threshold. Write allocates (JSON marshalling);
// it runs only for kept traces, never on the per-query fast path.
func (l *QueryLog) Write(r *Rec) error {
	v := viewOf(r)
	rec := logRecord{
		Time:       v.Time,
		QName:      v.QName,
		QType:      v.QType,
		Proto:      v.Proto,
		Verdict:    v.Verdict,
		Cache:      v.Cache,
		Upstream:   v.Upstream,
		DurationMs: v.DurationMs,
		Spans:      v.Spans,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return os.ErrClosed
	}
	if l.size+int64(len(b)) > l.max {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(b)
	l.size += int64(n)
	return err
}

// rotateLocked renames the active file to <path>.1 and starts a fresh one.
func (l *QueryLog) rotateLocked() error {
	l.f.Close()
	if err := os.Rename(l.path, l.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	l.f = f
	l.size = 0
	return nil
}

// Close flushes and closes the active file. Further Writes fail.
func (l *QueryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Package qtrace is the per-query lifecycle tracer: the layer that turns
// "p99 spiked" into "these queries spent their time in that phase". The
// aggregate telemetry (histograms, counters) says how much the population
// paid; qtrace keeps whole individual queries — each annotated with
// monotonic phase spans (parse, guard, cache lookup, admission, steering,
// hedge legs, pool dial, upstream exchange, response write) — so the tail
// can be explained query by query, the per-phase attribution the source
// paper performs offline done live in the serving path.
//
// The design is built around two constraints:
//
//   - The untraced path must cost one nil test per instrumentation point,
//     and the traced fast path must stay allocation-free: trace records
//     (Rec) are fixed-size — inline span array, inline qname buffer — and
//     recycled through a pool, so steady-state tracing allocates nothing.
//   - Keeping everything is pointless and keeping a uniform sample misses
//     the tail, so the keep decision is made at Finish (tail-based
//     sampling): errored queries are always kept, queries slower than an
//     adaptive per-class threshold (an EWMA-tracked p99 estimate) are
//     always kept, and a 1-in-N baseline keeps the healthy population
//     represented. Kept records land in sharded rings whose writers never
//     block (a contended slot is skipped, not waited on).
//
// Consumers read the rings through Tracer.Traces (the /debug/trace JSON),
// stream kept records to a rotating JSONL query log (QueryLog), or get a
// one-line console digest per slow query (Config.SlowLog).
package qtrace

import (
	"sync"
	"time"
)

// Phase identifies one stage of a query's life inside the proxy. Spans are
// recorded against these phases; their order here is the canonical
// pipeline order.
type Phase uint8

// The traced pipeline phases.
const (
	// PhaseParse is wire-format query parsing (fast-path probe or full
	// message decode).
	PhaseParse Phase = iota
	// PhaseGuard is the abuse guard's admission decision (per-packet rate
	// limit, stream check, or the miss-flood breaker).
	PhaseGuard
	// PhaseCache is the cache consultation: lookup, and on a hit the
	// in-place response build.
	PhaseCache
	// PhaseAdmit is cache admission after a miss: entry build, admission
	// filter, insert, evictions.
	PhaseAdmit
	// PhaseSteer is the steering layer's upstream ranking decision.
	PhaseSteer
	// PhaseHedgeLeg is one racing exchange launched by the hedged policy
	// (a query can carry one span per leg).
	PhaseHedgeLeg
	// PhaseDial is a fresh upstream connection dialed for this query.
	PhaseDial
	// PhaseUpstream is the upstream exchange itself (request out to answer
	// in, connection checkout excluded).
	PhaseUpstream
	// PhaseWrite is the response write back toward the client (for the
	// batched UDP path, the shared batch flush).
	PhaseWrite

	numPhases
)

// String returns the phase's label as used in /debug/trace and the query
// log.
func (p Phase) String() string {
	switch p {
	case PhaseParse:
		return "parse"
	case PhaseGuard:
		return "guard"
	case PhaseCache:
		return "cache"
	case PhaseAdmit:
		return "admit"
	case PhaseSteer:
		return "steer"
	case PhaseHedgeLeg:
		return "hedge_leg"
	case PhaseDial:
		return "dial"
	case PhaseUpstream:
		return "upstream"
	case PhaseWrite:
		return "write"
	}
	return "unknown"
}

// MaxSpans is the per-record span capacity. Records are fixed-size so the
// traced path never allocates; a query that somehow exceeds the capacity
// drops further spans rather than growing.
const MaxSpans = 16

// MaxQName is the inline qname buffer size. Presentation-form names longer
// than this (rare — the DNS ceiling is 255 octets but real names are far
// shorter) are truncated in the trace, never in the answer.
const MaxQName = 96

// Span is one recorded phase interval, stored as offsets from the record's
// Start so a Rec is position-independent. Start may be slightly negative:
// pre-accept work (guard check, parse) runs before the transaction clock
// starts.
type Span struct {
	// Phase is what the interval covers.
	Phase Phase
	// Start is the offset of the interval's beginning from Rec.Start.
	Start time.Duration
	// Dur is the interval's length.
	Dur time.Duration
}

// Rec is one query's trace record: identity, outcome and the phase spans.
// It is fixed-size and pooled; instrumented code writes it through the
// owning telemetry Transaction from a single goroutine, and the tracer
// copies it into a ring slot at Offer if the sampler keeps it.
type Rec struct {
	// Start is when the server accepted the query.
	Start time.Time
	// Dur is the accept-to-finish duration, filled at Offer time.
	Dur time.Duration
	// Proto, Verdict, Cache and Upstream are the transaction's label
	// strings (interned by the telemetry layer, so storing them allocates
	// nothing).
	Proto, Verdict, Cache, Upstream string
	// QType is the query type code.
	QType uint16
	// Failed marks a query whose verdict was not OK; the sampler always
	// keeps failed queries.
	Failed bool

	qnameLen uint8
	nspans   uint8
	qname    [MaxQName]byte
	spans    [MaxSpans]Span
}

// reset clears the record for reuse without releasing its storage.
func (r *Rec) reset(start time.Time) {
	*r = Rec{Start: start}
}

// AddSpan appends one phase interval (offset start, length dur). Spans
// beyond MaxSpans are dropped.
func (r *Rec) AddSpan(p Phase, start, dur time.Duration) {
	if r == nil || int(r.nspans) >= MaxSpans {
		return
	}
	r.spans[r.nspans] = Span{Phase: p, Start: start, Dur: dur}
	r.nspans++
}

// Spans returns the recorded intervals, in recording order. The slice
// aliases the record's inline array and is only valid while the caller
// owns the record.
func (r *Rec) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans[:r.nspans]
}

// QNameBuf returns an empty slice over the record's inline qname buffer;
// callers append the presentation-form name into it (alloc-free for names
// up to MaxQName) and hand the result to CommitQName.
func (r *Rec) QNameBuf() []byte {
	return r.qname[:0]
}

// CommitQName stores the query name and type. name may alias the buffer
// returned by QNameBuf (the common, alloc-free case) or be any other
// byte slice; over-long names are truncated.
func (r *Rec) CommitQName(name []byte, qtype uint16) {
	if r == nil {
		return
	}
	r.qnameLen = uint8(copy(r.qname[:], name))
	r.QType = qtype
}

// SetQName stores a presentation-form query name from a string, truncating
// at MaxQName. The copy out of the string is allocation-free.
func (r *Rec) SetQName(name string, qtype uint16) {
	if r == nil {
		return
	}
	r.qnameLen = uint8(copy(r.qname[:], name))
	r.QType = qtype
}

// QName returns the stored query name. The returned string allocates; it
// is meant for view building, not the hot path.
func (r *Rec) QName() string {
	if r == nil {
		return ""
	}
	return string(r.qname[:r.qnameLen])
}

// recPool recycles trace records across all tracers. Package-level rather
// than per-Tracer so a record acquired before a tracer swap can always be
// released safely.
var recPool = sync.Pool{New: func() any { return new(Rec) }}

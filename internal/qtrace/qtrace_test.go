package qtrace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// offerRec builds and offers one record with the given outcome. start is
// an arbitrary fixed base time plus seq, so newest-first ordering in the
// rings is deterministic.
func offerRec(t *Tracer, seq int, dur time.Duration, failed bool, verdict, cache, upstream string) {
	r := t.Acquire(time.Unix(1700000000, 0).Add(time.Duration(seq) * time.Millisecond))
	r.SetQName("q.example.", 1)
	r.Proto = "udp"
	r.Verdict = verdict
	r.Cache = cache
	r.Upstream = upstream
	r.Failed = failed
	r.AddSpan(PhaseParse, 0, time.Microsecond)
	r.Dur = dur
	t.Offer(r)
}

// TestTailSamplerNeverDropsErroredOrSlow is the sampler's property test:
// across a random interleaving of fast, slow and errored offers, every
// errored offer and every over-threshold offer is counted kept — the
// tail-based sampling contract — while the ring has capacity to receive
// them without slot contention.
func TestTailSamplerNeverDropsErroredOrSlow(t *testing.T) {
	tr := New(Config{Capacity: 4096, SampleEvery: -1, SlowFloor: 10 * time.Millisecond})
	rng := rand.New(rand.NewSource(7))
	var errored, slow uint64
	for i := 0; i < 1000; i++ {
		switch rng.Intn(3) {
		case 0: // healthy and fast: under every possible threshold
			offerRec(tr, i, time.Millisecond, false, "ok", "hit", "")
		case 1: // slow: 1s stays >= the adaptive estimate, which approaches
			// it from below and never reaches it
			offerRec(tr, i, time.Second, false, "ok", "", "up0")
			slow++
		case 2: // errored: kept regardless of duration
			offerRec(tr, i, time.Millisecond, true, "servfail", "", "up0")
			errored++
		}
	}
	st := tr.Stats()
	if st.Offered != 1000 {
		t.Fatalf("offered = %d, want 1000", st.Offered)
	}
	if st.KeptErrored != errored {
		t.Errorf("kept errored = %d, want %d (errored traces must never be dropped)", st.KeptErrored, errored)
	}
	if st.KeptSlow != slow {
		t.Errorf("kept slow = %d, want %d (over-threshold traces must never be dropped)", st.KeptSlow, slow)
	}
	if st.KeptBaseline != 0 {
		t.Errorf("kept baseline = %d, want 0 with baseline disabled", st.KeptBaseline)
	}
	// Single-goroutine offers can never contend a slot: everything counted
	// kept is really in the rings.
	if st.RingDropped != 0 {
		t.Errorf("ring dropped = %d, want 0", st.RingDropped)
	}
	kept := tr.Traces(Filter{Limit: 1 << 20})
	if got, want := uint64(len(kept)), min64(errored+slow, 4096); got != want {
		t.Errorf("rings hold %d traces, want %d", got, want)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestBaselineSampling pins the 1-in-N healthy baseline.
func TestBaselineSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4, SlowFloor: time.Hour})
	for i := 0; i < 100; i++ {
		offerRec(tr, i, time.Millisecond, false, "ok", "hit", "")
	}
	st := tr.Stats()
	if st.KeptBaseline != 25 {
		t.Errorf("kept baseline = %d, want 25 of 100 at 1-in-4", st.KeptBaseline)
	}
	if st.KeptErrored != 0 || st.KeptSlow != 0 {
		t.Errorf("unexpected errored/slow keeps: %+v", st)
	}
}

// TestAdaptiveThresholdTracksTail feeds a steady 100ms population and
// checks the class threshold climbs above the floor toward the stream —
// the adaptation that keeps "slow" meaningful on a slow population.
func TestAdaptiveThresholdTracksTail(t *testing.T) {
	tr := New(Config{SlowFloor: 10 * time.Millisecond, SampleEvery: -1})
	for i := 0; i < 200; i++ {
		offerRec(tr, i, 100*time.Millisecond, false, "ok", "hit", "")
	}
	st := tr.Stats()
	got := st.SlowThresholdMs["cache"]
	if got <= 10 {
		t.Errorf("cache threshold = %.2fms, want > 10ms after a 100ms stream", got)
	}
	if up := st.SlowThresholdMs["upstream"]; up != 10 {
		t.Errorf("upstream threshold = %.2fms, want untouched 10ms (classes adapt independently)", up)
	}
}

// TestTracesFilter exercises every Filter field against a mixed ring.
func TestTracesFilter(t *testing.T) {
	tr := New(Config{SampleEvery: -1})
	offerRec(tr, 0, time.Second, true, "servfail", "", "up0")
	offerRec(tr, 1, 2*time.Second, true, "canceled", "", "up1")
	offerRec(tr, 2, 3*time.Second, false, "ok", "", "up0")
	for name, tc := range map[string]struct {
		f    Filter
		want int
	}{
		"all":          {Filter{}, 3},
		"verdict":      {Filter{Verdict: "servfail"}, 1},
		"upstream":     {Filter{Upstream: "up0"}, 2},
		"min-dur":      {Filter{MinDur: 1500 * time.Millisecond}, 2},
		"limit":        {Filter{Limit: 2}, 2},
		"combined":     {Filter{Upstream: "up0", MinDur: 2 * time.Second}, 1},
		"match-none":   {Filter{Verdict: "ok", Upstream: "up1"}, 0},
		"limit-excess": {Filter{Limit: 50}, 3},
	} {
		if got := len(tr.Traces(tc.f)); got != tc.want {
			t.Errorf("%s: %d traces, want %d", name, got, tc.want)
		}
	}
	// Newest first: the seq-2 record has the latest start.
	views := tr.Traces(Filter{})
	if len(views) != 3 || views[0].Upstream != "up0" || views[0].DurationMs != 3000 {
		t.Errorf("newest-first order violated: %+v", views)
	}
}

// TestRingWrapKeepsNewest overflows a tiny ring and checks the survivors
// are the most recent keeps.
func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(Config{Capacity: 16, SampleEvery: -1})
	for i := 0; i < 100; i++ {
		offerRec(tr, i, time.Millisecond, true, "servfail", "", "up0")
	}
	views := tr.Traces(Filter{Limit: 1 << 20})
	if len(views) != 16 {
		t.Fatalf("ring holds %d, want capacity 16", len(views))
	}
	oldest := time.Unix(1700000000, 0).Add(time.Duration(100-16) * time.Millisecond)
	for _, v := range views {
		if v.Time.Before(oldest) {
			t.Errorf("ring kept %v, older than the newest 16 offers (wrap must overwrite oldest)", v.Time)
		}
	}
}

// TestViewSpansAndQName checks the record→View rendering: spans carry
// phase labels and millisecond offsets (negative pre-accept offsets
// included), and the inline qname round-trips.
func TestViewSpansAndQName(t *testing.T) {
	tr := New(Config{SampleEvery: -1})
	r := tr.Acquire(time.Unix(1700000000, 0))
	r.SetQName("spans.example.", 28)
	r.Proto = "doh"
	r.Verdict = "servfail"
	r.Failed = true
	r.AddSpan(PhaseGuard, -50*time.Microsecond, 30*time.Microsecond)
	r.AddSpan(PhaseParse, -20*time.Microsecond, 20*time.Microsecond)
	r.AddSpan(PhaseUpstream, time.Millisecond, 4*time.Millisecond)
	r.Dur = 6 * time.Millisecond
	tr.Offer(r)

	views := tr.Traces(Filter{})
	if len(views) != 1 {
		t.Fatalf("traces = %d, want 1", len(views))
	}
	v := views[0]
	if v.QName != "spans.example." || v.QType != 28 || v.Proto != "doh" {
		t.Errorf("identity = %q/%d/%s", v.QName, v.QType, v.Proto)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v.Spans))
	}
	if v.Spans[0].Phase != "guard" || v.Spans[0].StartMs >= 0 {
		t.Errorf("span 0 = %+v, want pre-accept guard span with negative offset", v.Spans[0])
	}
	if v.Spans[2].Phase != "upstream" || v.Spans[2].DurMs != 4 {
		t.Errorf("span 2 = %+v", v.Spans[2])
	}
}

// TestSpanOverflowDropped pins the fixed-size contract: spans past
// MaxSpans are dropped, never grown.
func TestSpanOverflowDropped(t *testing.T) {
	var r Rec
	for i := 0; i < MaxSpans+10; i++ {
		r.AddSpan(PhaseCache, 0, time.Microsecond)
	}
	if got := len(r.Spans()); got != MaxSpans {
		t.Errorf("spans = %d, want capped at %d", got, MaxSpans)
	}
}

// TestQNameTruncation: over-long names truncate at MaxQName instead of
// corrupting the fixed buffer, through both the string and append paths.
func TestQNameTruncation(t *testing.T) {
	long := strings.Repeat("a", 2*MaxQName)
	var r Rec
	r.SetQName(long, 1)
	if got := r.QName(); len(got) != MaxQName || got != long[:MaxQName] {
		t.Errorf("SetQName: len %d, want %d", len(got), MaxQName)
	}
	var r2 Rec
	r2.CommitQName(append(r2.QNameBuf(), "short.example."...), 1)
	if r2.QName() != "short.example." {
		t.Errorf("CommitQName via QNameBuf = %q", r2.QName())
	}
}

// TestSlowLogLine checks the console digest: one line per slow query with
// the phase breakdown appended.
func TestSlowLogLine(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{SlowFloor: 10 * time.Millisecond, SlowLog: &buf, SampleEvery: -1})
	r := tr.Acquire(time.Unix(1700000000, 0))
	r.SetQName("slow.example.", 1)
	r.Proto = "udp"
	r.Verdict = "ok"
	r.Upstream = "up0"
	r.AddSpan(PhaseUpstream, time.Millisecond, 40*time.Millisecond)
	r.Dur = 50 * time.Millisecond
	tr.Offer(r)

	line := buf.String()
	for _, want := range []string{"slow-query", "udp", "slow.example.", "verdict=ok", "upstream=up0", "total=50.0ms", "upstream=40.0ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow line %q missing %q", line, want)
		}
	}
	if strings.Count(line, "\n") != 1 {
		t.Errorf("want exactly one line, got %q", line)
	}
}

// TestQueryLogWritesAndRotates drives the JSONL log over its size cap and
// checks the rotation contract: old records land in <path>.1, the live
// file starts fresh, and every line is a parseable record.
func TestQueryLogWritesAndRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	ql, err := OpenQueryLog(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{SampleEvery: -1, Log: ql})
	for i := 0; i < 64; i++ {
		offerRec(tr, i, time.Second, false, "ok", "", "up0") // slow → kept → logged
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if st := tr.Stats(); st.LogDropped != 0 {
		t.Fatalf("log dropped %d writes", st.LogDropped)
	}

	// Rotation is single-level (<path>.1 replaces the previous rotation),
	// so the surviving footprint is the last rotated file plus the live
	// one — both bounded by the cap, every line a parseable record.
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotated file: %v", err)
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rotated) == 0 || int64(len(rotated)) > 2048 {
		t.Errorf("rotated file %d bytes, want in (0, 2048]", len(rotated))
	}
	if int64(len(live)) > 2048 {
		t.Errorf("live file %d bytes, want <= cap 2048", len(live))
	}
	lines := 0
	for _, chunk := range [][]byte{rotated, live} {
		for _, line := range bytes.Split(bytes.TrimSpace(chunk), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			lines++
			var rec struct {
				QName      string  `json:"qname"`
				DurationMs float64 `json:"duration_ms"`
				Spans      []struct {
					Phase string `json:"phase"`
				} `json:"spans"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			if rec.QName != "q.example." || rec.DurationMs != 1000 || len(rec.Spans) != 1 {
				t.Fatalf("record = %+v", rec)
			}
		}
	}
	if lines == 0 {
		t.Error("no surviving JSONL records after rotation")
	}

	// Writes after Close are reported, not lost silently.
	offerRec(tr, 99, time.Second, false, "ok", "", "up0")
	if st := tr.Stats(); st.LogDropped != 1 {
		t.Errorf("post-close log write not counted dropped: %+v", st)
	}
}

// TestNilTracerSafe: a nil *Tracer is the documented "tracing off" value
// for every method, and Offer still recycles the record.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if r := tr.Acquire(time.Now()); r != nil {
		t.Error("nil tracer Acquire returned a record")
	}
	tr.Offer(new(Rec))
	tr.Offer(nil)
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
	if got := tr.Traces(Filter{}); got != nil {
		t.Errorf("nil tracer Traces = %v", got)
	}
	if st := tr.Stats(); st.Offered != 0 {
		t.Errorf("nil tracer Stats = %+v", st)
	}
	Release(nil)
	Release(new(Rec))
}

// TestConcurrentOfferAndScrape is the package's own -race workout:
// concurrent offerers (mixed outcomes) against a scraping reader.
func TestConcurrentOfferAndScrape(t *testing.T) {
	tr := New(Config{Capacity: 64, SampleEvery: 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Traces(Filter{})
			tr.Stats()
		}
	}()
	var workers [4]chan struct{}
	for w := range workers {
		ch := make(chan struct{})
		workers[w] = ch
		go func(w int) {
			defer close(ch)
			for i := 0; i < 500; i++ {
				offerRec(tr, w*1000+i, time.Duration(i)*time.Microsecond, i%7 == 0, "ok", "hit", "")
			}
		}(w)
	}
	for _, ch := range workers {
		<-ch
	}
	<-done
	if st := tr.Stats(); st.Offered != 2000 {
		t.Errorf("offered = %d, want 2000", st.Offered)
	}
}

package qtrace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Tracer. The zero value is usable: every field has
// a serving-safe default.
type Config struct {
	// Capacity is the total kept-trace ring capacity, split across shards
	// (default 1024). The rings hold the most recent kept traces; older
	// ones are overwritten.
	Capacity int
	// SampleEvery is the healthy-query baseline: 1-in-N non-errored,
	// non-slow queries are kept so the rings also show what normal looks
	// like (default 64; negative disables the baseline entirely).
	SampleEvery int
	// SlowFloor is the minimum slow-query threshold (default 10ms). The
	// effective threshold per class is max(SlowFloor, adaptive p99
	// estimate), so on a fast population the floor keeps sub-millisecond
	// noise out of the "slow" verdict, while on a slow population the
	// adaptive estimate rises above the floor and tracks the real tail.
	SlowFloor time.Duration
	// SlowLog, when non-nil, receives one formatted line per over-threshold
	// query with its phase breakdown — the operator's no-scrape-stack view.
	// Writes are serialized by the tracer.
	SlowLog io.Writer
	// Log, when non-nil, receives every kept trace as one JSONL record
	// (the structured query log). The tracer closes it on Close.
	Log *QueryLog
}

// Sampling classes: the adaptive threshold is tracked per class so an
// error burst cannot drag the cache-hit threshold around and vice versa.
const (
	classError    = iota // Failed verdicts
	classCache           // answers served from cache memory
	classUpstream        // everything that went upstream
	numClasses
)

// classLabels are the Stats keys for the per-class thresholds.
var classLabels = [numClasses]string{"error", "cache", "upstream"}

// classify buckets a record for threshold tracking. The cache labels
// mirror telemetry.CacheOutcome's strings; qtrace cannot import telemetry
// (telemetry imports qtrace), so the coupling is by label.
func classify(r *Rec) int {
	if r.Failed {
		return classError
	}
	switch r.Cache {
	case "hit", "negative_hit", "stale_hit":
		return classCache
	}
	return classUpstream
}

// ringShards is the kept-trace ring's stripe count: enough that concurrent
// keepers (batch UDP shards, stream goroutines) rarely collide on a
// shard's sequence counter.
const ringShards = 8

// slot is one ring cell. Writers claim a slot by sequence number and take
// its mutex with TryLock — a writer that loses the try drops its sample
// instead of blocking, which is what keeps the serving path stall-free;
// readers (the /debug/trace scrape) lock normally.
type slot struct {
	mu   sync.Mutex
	full bool
	rec  Rec
}

// ring is one stripe of the kept-trace buffer.
type ring struct {
	seq   atomic.Uint64
	slots []slot
}

// Tracer owns the sampling policy, the kept-trace rings and the optional
// logs. All methods are safe for concurrent use; a nil *Tracer is a valid
// "tracing off" receiver for every method.
type Tracer struct {
	cfg    Config
	shards [ringShards]ring
	cursor atomic.Uint64 // round-robin shard pick for keepers
	tick   atomic.Uint64 // baseline 1-in-N counter

	// thresh is the per-class adaptive p99 estimate in nanoseconds,
	// updated with an asymmetric EWMA (see adapt).
	thresh [numClasses]atomic.Int64

	offered      atomic.Uint64
	keptErrored  atomic.Uint64
	keptSlow     atomic.Uint64
	keptBaseline atomic.Uint64
	ringDropped  atomic.Uint64
	logDropped   atomic.Uint64

	slowMu sync.Mutex // serializes SlowLog writes
}

// New builds a Tracer from cfg, applying defaults for unset fields.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 64
	}
	if cfg.SlowFloor <= 0 {
		cfg.SlowFloor = 10 * time.Millisecond
	}
	t := &Tracer{cfg: cfg}
	per := (cfg.Capacity + ringShards - 1) / ringShards
	if per < 1 {
		per = 1
	}
	for i := range t.shards {
		t.shards[i].slots = make([]slot, per)
	}
	for c := range t.thresh {
		t.thresh[c].Store(int64(cfg.SlowFloor))
	}
	return t
}

// Close releases the tracer's owned resources (the query log, if any).
func (t *Tracer) Close() error {
	if t == nil || t.cfg.Log == nil {
		return nil
	}
	return t.cfg.Log.Close()
}

// Acquire returns a reset trace record stamped with the query's accept
// time. Records come from a pool, so steady-state acquisition is
// allocation-free.
func (t *Tracer) Acquire(start time.Time) *Rec {
	if t == nil {
		return nil
	}
	r := recPool.Get().(*Rec)
	r.reset(start)
	return r
}

// Release returns an unoffered record to the pool (a transaction that
// turned out to be background work, or a tracer torn down mid-flight).
func Release(r *Rec) {
	if r != nil {
		recPool.Put(r)
	}
}

// Offer hands a completed record to the sampler and releases it. The
// caller must have filled Dur and the label fields; after Offer the record
// must not be touched. The keep decision is tail-based: errored always,
// slower than the class's effective threshold always, 1-in-SampleEvery
// baseline otherwise.
func (t *Tracer) Offer(r *Rec) {
	if r == nil {
		return
	}
	if t == nil {
		recPool.Put(r)
		return
	}
	t.offered.Add(1)
	cl := classify(r)
	slow := r.Dur >= t.effectiveThreshold(cl)
	t.adapt(cl, r.Dur)
	keep := false
	switch {
	case r.Failed:
		keep = true
		t.keptErrored.Add(1)
	case slow:
		keep = true
		t.keptSlow.Add(1)
	default:
		if t.cfg.SampleEvery > 0 && t.tick.Add(1)%uint64(t.cfg.SampleEvery) == 0 {
			keep = true
			t.keptBaseline.Add(1)
		}
	}
	if slow && t.cfg.SlowLog != nil {
		t.slowLine(r)
	}
	if keep {
		t.store(r)
		if t.cfg.Log != nil {
			if err := t.cfg.Log.Write(r); err != nil {
				t.logDropped.Add(1)
			}
		}
	}
	recPool.Put(r)
}

// effectiveThreshold is the slow cutoff for a class: the adaptive p99
// estimate, floored by Config.SlowFloor.
func (t *Tracer) effectiveThreshold(cl int) time.Duration {
	th := time.Duration(t.thresh[cl].Load())
	if th < t.cfg.SlowFloor {
		th = t.cfg.SlowFloor
	}
	return th
}

// adapt nudges the class's threshold toward the stream's p99 with an
// asymmetric EWMA (the Frugal-style streaming quantile trick): samples
// above the estimate pull it up with gain 1/8, samples below push it down
// with gain 1/792 ≈ (1/8)·(0.01/0.99), so the estimate settles where ~1%
// of samples exceed it. The load-modify-store race between concurrent
// adapters loses updates occasionally, which an estimator tolerates.
func (t *Tracer) adapt(cl int, d time.Duration) {
	a := &t.thresh[cl]
	cur := a.Load()
	dn := int64(d)
	if dn > cur {
		a.Store(cur + (dn-cur)/8)
	} else {
		a.Store(cur - (cur-dn)/792)
	}
}

// store copies a kept record into a ring slot. The writer claims the next
// slot in a round-robin shard and TryLocks it; on contention (a concurrent
// reader or a lapped writer holds it) the sample is dropped rather than
// waited for — the serving path never blocks on observability.
func (t *Tracer) store(r *Rec) {
	sh := &t.shards[t.cursor.Add(1)%ringShards]
	s := &sh.slots[(sh.seq.Add(1)-1)%uint64(len(sh.slots))]
	if !s.mu.TryLock() {
		t.ringDropped.Add(1)
		return
	}
	s.rec = *r
	s.full = true
	s.mu.Unlock()
}

// slowLine emits the one-line console digest for an over-threshold query.
func (t *Tracer) slowLine(r *Rec) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	fmt.Fprintf(t.slowLog(), "slow-query %s %s qtype=%d verdict=%s cache=%s upstream=%s total=%.1fms",
		r.Proto, r.QName(), r.QType, r.Verdict, orNone(r.Cache), orNone(r.Upstream),
		float64(r.Dur)/float64(time.Millisecond))
	for _, sp := range r.Spans() {
		fmt.Fprintf(t.slowLog(), " %s=%.1fms", sp.Phase, float64(sp.Dur)/float64(time.Millisecond))
	}
	io.WriteString(t.slowLog(), "\n")
}

// slowLog returns the configured slow-query writer.
func (t *Tracer) slowLog() io.Writer { return t.cfg.SlowLog }

// orNone maps an empty label to "none" for log readability.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// Stats is the tracer's own accounting, exposed in /debug/trace and the
// cost report.
type Stats struct {
	// Offered counts completed transactions the sampler examined.
	Offered uint64 `json:"offered"`
	// KeptErrored, KeptSlow and KeptBaseline break down kept traces by
	// the rule that kept them.
	KeptErrored  uint64 `json:"kept_errored"`
	KeptSlow     uint64 `json:"kept_slow"`
	KeptBaseline uint64 `json:"kept_baseline"`
	// RingDropped counts kept traces lost to slot contention (a writer
	// never blocks); LogDropped counts query-log write failures.
	RingDropped uint64 `json:"ring_dropped"`
	LogDropped  uint64 `json:"log_dropped"`
	// SlowThresholdMs is the effective per-class slow cutoff at snapshot
	// time (class → milliseconds).
	SlowThresholdMs map[string]float64 `json:"slow_threshold_ms"`
}

// Stats returns the tracer's current accounting. Nil-safe.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	s := Stats{
		Offered:         t.offered.Load(),
		KeptErrored:     t.keptErrored.Load(),
		KeptSlow:        t.keptSlow.Load(),
		KeptBaseline:    t.keptBaseline.Load(),
		RingDropped:     t.ringDropped.Load(),
		LogDropped:      t.logDropped.Load(),
		SlowThresholdMs: make(map[string]float64, numClasses),
	}
	for c := 0; c < numClasses; c++ {
		s.SlowThresholdMs[classLabels[c]] = float64(t.effectiveThreshold(c)) / float64(time.Millisecond)
	}
	return s
}

// Filter selects traces from the rings. Zero-valued fields match
// everything.
type Filter struct {
	// Verdict keeps only traces with this verdict label ("ok", "servfail",
	// "canceled").
	Verdict string
	// Upstream keeps only traces attributed to this upstream.
	Upstream string
	// MinDur keeps only traces at least this slow.
	MinDur time.Duration
	// Limit caps the returned slice (default 100), newest first.
	Limit int
}

// SpanView is one phase interval rendered for JSON consumers.
type SpanView struct {
	// Phase is the span's phase label.
	Phase string `json:"phase"`
	// StartMs is the offset from the trace's start in milliseconds
	// (slightly negative for pre-accept work like the guard check).
	StartMs float64 `json:"start_ms"`
	// DurMs is the span length in milliseconds.
	DurMs float64 `json:"duration_ms"`
}

// View is one kept trace rendered for JSON consumers (/debug/trace, the
// loadgen digest).
type View struct {
	// Time is the query's accept time.
	Time time.Time `json:"time"`
	// DurationMs is the accept-to-finish latency in milliseconds.
	DurationMs float64 `json:"duration_ms"`
	// Proto is the listener transport.
	Proto string `json:"proto"`
	// QName and QType identify the query.
	QName string `json:"qname"`
	QType uint16 `json:"qtype"`
	// Verdict, Cache and Upstream are the transaction's outcome labels.
	Verdict  string `json:"verdict"`
	Cache    string `json:"cache,omitempty"`
	Upstream string `json:"upstream,omitempty"`
	// Spans are the phase intervals, in recording order.
	Spans []SpanView `json:"spans"`
}

// viewOf renders a record.
func viewOf(r *Rec) View {
	v := View{
		Time:       r.Start,
		DurationMs: float64(r.Dur) / float64(time.Millisecond),
		Proto:      r.Proto,
		QName:      r.QName(),
		QType:      r.QType,
		Verdict:    r.Verdict,
		Cache:      r.Cache,
		Upstream:   r.Upstream,
		Spans:      make([]SpanView, 0, r.nspans),
	}
	for _, sp := range r.Spans() {
		v.Spans = append(v.Spans, SpanView{
			Phase:   sp.Phase.String(),
			StartMs: float64(sp.Start) / float64(time.Millisecond),
			DurMs:   float64(sp.Dur) / float64(time.Millisecond),
		})
	}
	return v
}

// Traces returns the kept traces matching f, newest first. Nil-safe.
func (t *Tracer) Traces(f Filter) []View {
	if t == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 100
	}
	var out []View
	for i := range t.shards {
		sh := &t.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			s.mu.Lock()
			if s.full && matches(&s.rec, f) {
				out = append(out, viewOf(&s.rec))
			}
			s.mu.Unlock()
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Time.After(out[b].Time) })
	if len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// matches applies a filter to a record.
func matches(r *Rec, f Filter) bool {
	if f.Verdict != "" && r.Verdict != f.Verdict {
		return false
	}
	if f.Upstream != "" && r.Upstream != f.Upstream {
		return false
	}
	return r.Dur >= f.MinDur
}

package dialer

import (
	"context"
	"sort"
	"sync"
	"time"
)

// DefaultProbeTimeout bounds one reachability probe.
const DefaultProbeTimeout = 3 * time.Second

// DefaultKickInterval rate-limits on-demand re-probes: error storms can
// fire Kick every few milliseconds, the network changes far slower.
const DefaultKickInterval = 5 * time.Second

// Target is one upstream×protocol combination the prober sweeps.
type Target struct {
	// Upstream is the pool/steering name of the upstream the verdict is
	// about.
	Upstream string
	// Proto labels the probed transport ("udp", "tcp", "dot", "doh").
	Proto string
	// Probe performs one small real exchange against the combination
	// and returns the observed round-trip time. The prober bounds ctx.
	Probe func(ctx context.Context) (time.Duration, error)
}

// Verdict is one cached probe outcome.
type Verdict struct {
	// Upstream and Proto identify the combination.
	Upstream string `json:"upstream"`
	Proto    string `json:"proto"`
	// OK reports whether the probe completed.
	OK bool `json:"ok"`
	// RTTMs is the probe round trip when OK.
	RTTMs float64 `json:"rtt_ms,omitempty"`
	// Err is the failure, when not OK.
	Err string `json:"err,omitempty"`
	// AgeMs is how long ago the verdict was recorded (filled at
	// snapshot time).
	AgeMs float64 `json:"age_ms"`

	at time.Time
}

// Seeder receives per-upstream bootstrap evidence; steer.Steerer
// implements it.
type Seeder interface {
	// Seed primes the model for upstream name with a synthetic
	// observation — ok=false plants d as a failure-weighted RTT.
	Seed(name string, d time.Duration, ok bool)
}

// Prober sweeps reachability across upstream×protocol combinations,
// caches the verdicts, and seeds a steering scoreboard so queries never
// have to discover a dead combination the hard way. Safe for concurrent
// use.
type Prober struct {
	// Targets is the sweep set.
	Targets []Target
	// Timeout bounds each probe; zero means DefaultProbeTimeout.
	Timeout time.Duration
	// Seeder, when non-nil, is primed after every sweep: one seed per
	// upstream, the fastest OK probe's RTT, or the probe timeout as a
	// failure when every protocol of that upstream failed. (Seeding is
	// idempotent on the steer side — live samples win.)
	Seeder Seeder
	// KickInterval rate-limits Kick-triggered re-sweeps; zero means
	// DefaultKickInterval.
	KickInterval time.Duration

	mu       sync.Mutex
	verdicts map[string]Verdict // "upstream/proto" → latest verdict
	lastRun  time.Time
	running  bool
	sweeps   int
}

// Run sweeps every target concurrently, blocks until all verdicts are
// in, caches them, and seeds the scoreboard. It returns the fresh
// verdicts sorted by upstream then protocol.
func (p *Prober) Run(ctx context.Context) []Verdict {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = DefaultProbeTimeout
	}
	out := make([]Verdict, len(p.Targets))
	var wg sync.WaitGroup
	for i, t := range p.Targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			rtt, err := t.Probe(pctx)
			v := Verdict{Upstream: t.Upstream, Proto: t.Proto, at: time.Now()}
			if err != nil {
				v.Err = err.Error()
			} else {
				v.OK = true
				v.RTTMs = float64(rtt) / float64(time.Millisecond)
			}
			out[i] = v
		}(i, t)
	}
	wg.Wait()

	p.mu.Lock()
	if p.verdicts == nil {
		p.verdicts = make(map[string]Verdict, len(out))
	}
	for _, v := range out {
		p.verdicts[v.Upstream+"/"+v.Proto] = v
	}
	p.lastRun = time.Now()
	p.sweeps++
	p.mu.Unlock()

	p.seed(out, timeout)
	sortVerdicts(out)
	return out
}

// seed distills the sweep into one synthetic observation per upstream.
func (p *Prober) seed(vs []Verdict, timeout time.Duration) {
	if p.Seeder == nil {
		return
	}
	type agg struct {
		best time.Duration
		ok   bool
	}
	byUp := make(map[string]*agg)
	var order []string
	for _, v := range vs {
		a := byUp[v.Upstream]
		if a == nil {
			a = &agg{}
			byUp[v.Upstream] = a
			order = append(order, v.Upstream)
		}
		if v.OK {
			rtt := time.Duration(v.RTTMs * float64(time.Millisecond))
			if !a.ok || rtt < a.best {
				a.best, a.ok = rtt, true
			}
		}
	}
	for _, name := range order {
		a := byUp[name]
		if a.ok {
			p.Seeder.Seed(name, a.best, true)
		} else {
			p.Seeder.Seed(name, timeout, false)
		}
	}
}

// Kick requests an asynchronous re-sweep — the network-change /
// error-storm entry point. At most one sweep runs at a time and sweeps
// are spaced at least KickInterval apart; a Kick that loses either race
// is dropped, because the sweep it wanted is already fresh or already
// running. Reports whether a sweep was started.
func (p *Prober) Kick(ctx context.Context) bool {
	interval := p.KickInterval
	if interval == 0 {
		interval = DefaultKickInterval
	}
	p.mu.Lock()
	if p.running || time.Since(p.lastRun) < interval {
		p.mu.Unlock()
		return false
	}
	p.running = true
	p.mu.Unlock()
	go func() {
		defer func() {
			p.mu.Lock()
			p.running = false
			p.mu.Unlock()
		}()
		p.Run(ctx)
	}()
	return true
}

// Verdicts snapshots the cached verdicts, sorted by upstream then
// protocol, with ages filled in.
func (p *Prober) Verdicts() []Verdict {
	p.mu.Lock()
	out := make([]Verdict, 0, len(p.verdicts))
	now := time.Now()
	for _, v := range p.verdicts {
		v.AgeMs = float64(now.Sub(v.at)) / float64(time.Millisecond)
		out = append(out, v)
	}
	p.mu.Unlock()
	sortVerdicts(out)
	return out
}

// ProbeReport is the bootstrap section of /debug/cost.
type ProbeReport struct {
	// Sweeps counts completed full sweeps.
	Sweeps int `json:"sweeps"`
	// LastRunAgeMs is how long ago the last sweep finished; -1 before
	// the first.
	LastRunAgeMs float64 `json:"last_run_age_ms"`
	// Verdicts is the cached verdict table.
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// Report snapshots the prober for the cost report.
func (p *Prober) Report() ProbeReport {
	p.mu.Lock()
	r := ProbeReport{Sweeps: p.sweeps, LastRunAgeMs: -1}
	if !p.lastRun.IsZero() {
		r.LastRunAgeMs = float64(time.Since(p.lastRun)) / float64(time.Millisecond)
	}
	p.mu.Unlock()
	r.Verdicts = p.Verdicts()
	return r
}

func sortVerdicts(vs []Verdict) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Upstream != vs[j].Upstream {
			return vs[i].Upstream < vs[j].Upstream
		}
		return vs[i].Proto < vs[j].Proto
	})
}

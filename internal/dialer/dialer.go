// Package dialer is the resilient connectivity layer under the
// transports: it decides *how* a connection to an upstream is opened,
// where dnstransport decides what flows over it and steer decides which
// upstream gets the query.
//
// Two mechanisms live here:
//
//   - HappyEyeballs races staggered connection attempts across the
//     upstream's IPv4 and IPv6 addresses (RFC 8305): the first
//     established connection wins, the losers are cancelled, and the
//     winning family is remembered per upstream so later dials lead with
//     it — until the memory expires or the family accumulates
//     consecutive failures and is demoted. A broken-IPv6 access network
//     costs one stagger interval once, not a full dial timeout per
//     query.
//
//   - Prober sweeps every upstream×protocol combination with a small
//     real query at startup and on demand (network-change or
//     error-storm signals via Kick), caches the reachability verdicts,
//     and seeds the steering scoreboard so the first real queries never
//     hedge into a combination the probe already saw black-hole.
//
// The package speaks net.Conn and plain address strings, so it fronts
// netsim in the experiments and would front a real stack unchanged.
package dialer

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dohcost/internal/telemetry"
)

// Defaults for Config's zero values.
const (
	// DefaultStagger is the RFC 8305 "Connection Attempt Delay": how long
	// the race waits for an attempt before starting the next one. The
	// RFC recommends 250 ms (§5).
	DefaultStagger = 250 * time.Millisecond
	// DefaultDialTimeout bounds each individual attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultStickyTTL bounds how long a winning family is trusted
	// without re-racing.
	DefaultStickyTTL = 10 * time.Minute
	// DefaultDemoteAfter is how many consecutive failures of the sticky
	// family revoke its preference.
	DefaultDemoteAfter = 2
)

// Config tunes a HappyEyeballs dialer. Resolve and Dial are required.
type Config struct {
	// Resolve expands an upstream host into its candidate addresses per
	// family, in preference order. Either slice may be empty (a
	// single-stack host); both empty is a resolution failure.
	Resolve func(ctx context.Context, host string) (v4, v6 []string, err error)
	// Dial opens one connection to one resolved address.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Stagger is the connection-attempt delay between successive dials
	// in the race. Zero means DefaultStagger.
	Stagger time.Duration
	// DialTimeout bounds each individual attempt. Zero means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// StickyTTL is how long a remembered winning family keeps leading
	// the race. Zero means DefaultStickyTTL; negative disables
	// stickiness.
	StickyTTL time.Duration
	// DemoteAfter is the consecutive-failure budget before the sticky
	// family loses its preference. Zero means DefaultDemoteAfter.
	DemoteAfter int
	// PreferV6 leads with IPv6 when no sticky winner applies, matching
	// RFC 8305's default preference. The zero value leads with IPv4,
	// which suits the study's v4-dominant vantage points.
	PreferV6 bool
	// Telemetry receives per-attempt dial counters and latency, plus
	// race wins, when non-nil.
	Telemetry *telemetry.Metrics
	// now is the clock, for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Stagger == 0 {
		c.Stagger = DefaultStagger
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.StickyTTL == 0 {
		c.StickyTTL = DefaultStickyTTL
	}
	if c.DemoteAfter == 0 {
		c.DemoteAfter = DefaultDemoteAfter
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// hostState is the per-upstream race memory.
type hostState struct {
	winner   telemetry.DialFamily // DialFamilyUnknown = no preference
	winnerAt time.Time
	fails    int // consecutive sticky-family failures since the last win
}

// HappyEyeballs is an RFC 8305 racing dialer with per-upstream winner
// memory. Safe for concurrent use.
type HappyEyeballs struct {
	cfg Config

	mu    sync.Mutex
	hosts map[string]*hostState
}

// New builds a dialer; it panics if Resolve or Dial is missing, which is
// programmer error.
func New(cfg Config) *HappyEyeballs {
	if cfg.Resolve == nil || cfg.Dial == nil {
		panic("dialer: Config.Resolve and Config.Dial are required")
	}
	return &HappyEyeballs{cfg: cfg.withDefaults(), hosts: make(map[string]*hostState)}
}

// attempt is one candidate in the race.
type attempt struct {
	addr string
	fam  telemetry.DialFamily
}

// result is one finished attempt.
type result struct {
	conn net.Conn
	fam  telemetry.DialFamily
	err  error
}

// preferredFamily resolves which family leads the interleave for host:
// the fresh sticky winner if there is one, else the configured default.
func (h *HappyEyeballs) preferredFamily(host string) telemetry.DialFamily {
	def := telemetry.DialFamilyV4
	if h.cfg.PreferV6 {
		def = telemetry.DialFamilyV6
	}
	if h.cfg.StickyTTL < 0 {
		return def
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.hosts[host]
	if st == nil || st.winner == telemetry.DialFamilyUnknown {
		return def
	}
	if h.cfg.now().Sub(st.winnerAt) > h.cfg.StickyTTL {
		st.winner = telemetry.DialFamilyUnknown
		return def
	}
	return st.winner
}

// noteWin records fam as host's fresh winner and clears the failure
// budget.
func (h *HappyEyeballs) noteWin(host string, fam telemetry.DialFamily) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.hosts[host]
	if st == nil {
		st = &hostState{}
		h.hosts[host] = st
	}
	st.winner, st.winnerAt, st.fails = fam, h.cfg.now(), 0
}

// noteFail charges one failed attempt of host's sticky family; after
// DemoteAfter consecutive charges the preference is revoked and the next
// race starts from the configured default order.
func (h *HappyEyeballs) noteFail(host string, fam telemetry.DialFamily) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.hosts[host]
	if st == nil || st.winner == telemetry.DialFamilyUnknown || st.winner != fam {
		return
	}
	st.fails++
	if st.fails >= h.cfg.DemoteAfter {
		st.winner = telemetry.DialFamilyUnknown
		st.fails = 0
	}
}

// interleave builds the RFC 8305 §4 attempt order: families alternate,
// starting with pref, falling back to runs of the longer list once the
// shorter is exhausted.
func interleave(v4, v6 []string, pref telemetry.DialFamily) []attempt {
	a := make([]attempt, 0, len(v4)+len(v6))
	first, second := v4, v6
	ffam, sfam := telemetry.DialFamilyV4, telemetry.DialFamilyV6
	if pref == telemetry.DialFamilyV6 {
		first, second = v6, v4
		ffam, sfam = sfam, ffam
	}
	for i := 0; i < len(first) || i < len(second); i++ {
		if i < len(first) {
			a = append(a, attempt{first[i], ffam})
		}
		if i < len(second) {
			a = append(a, attempt{second[i], sfam})
		}
	}
	return a
}

// DialContext resolves host and races connection attempts across its
// address families per RFC 8305: the preferred family's first address
// dials immediately, each further attempt starts when the previous one
// fails or after the stagger interval, whichever is sooner, and the
// first established connection wins. Losers are cancelled and closed.
func (h *HappyEyeballs) DialContext(ctx context.Context, host string) (net.Conn, error) {
	v4, v6, err := h.cfg.Resolve(ctx, host)
	if err != nil {
		return nil, fmt.Errorf("dialer: resolving %s: %w", host, err)
	}
	attempts := interleave(v4, v6, h.preferredFamily(host))
	if len(attempts) == 0 {
		return nil, fmt.Errorf("dialer: no addresses for %s", host)
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, len(attempts))
	next, pending := 0, 0
	launch := func() {
		a := attempts[next]
		next++
		pending++
		go h.dialOne(rctx, a, results)
	}
	launch()
	timer := time.NewTimer(h.cfg.Stagger)
	defer timer.Stop()

	var firstErr error
	for {
		select {
		case <-timer.C:
			if next < len(attempts) {
				launch()
				timer.Reset(h.cfg.Stagger)
			}
		case r := <-results:
			pending--
			if r.err == nil {
				h.noteWin(host, r.fam)
				if m := h.cfg.Telemetry; m != nil {
					m.DialWin(r.fam)
				}
				// Reap attempts still in flight: cancel them and close
				// any connection that completes before the cancel lands.
				cancel()
				go reap(results, pending)
				return r.conn, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			h.noteFail(host, r.fam)
			if next < len(attempts) {
				// RFC 8305 §5: a failed attempt starts the next one
				// immediately rather than waiting out the stagger.
				launch()
				timer.Reset(h.cfg.Stagger)
			} else if pending == 0 {
				return nil, fmt.Errorf("dialer: all %d attempts to %s failed: %w", len(attempts), host, firstErr)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// dialOne runs one bounded attempt and reports its outcome. Attempts
// cancelled because the race already has a winner report the
// cancellation but are not counted as dial errors in telemetry — a
// loser says nothing about the address it was aimed at.
func (h *HappyEyeballs) dialOne(ctx context.Context, a attempt, out chan<- result) {
	actx, acancel := context.WithTimeout(ctx, h.cfg.DialTimeout)
	defer acancel()
	t0 := time.Now()
	c, err := h.cfg.Dial(actx, a.addr)
	d := time.Since(t0)
	if err == nil && ctx.Err() != nil {
		c.Close()
		c, err = nil, ctx.Err()
	}
	if m := h.cfg.Telemetry; m != nil {
		switch {
		case err == nil:
			m.ObserveDial(a.fam, telemetry.DialOK, d)
		case ctx.Err() == nil:
			m.ObserveDial(a.fam, telemetry.DialError, d)
		}
	}
	out <- result{c, a.fam, err}
}

// reap drains n late results, closing any connection a cancelled loser
// still managed to establish.
func reap(results <-chan result, n int) {
	for i := 0; i < n; i++ {
		if r := <-results; r.conn != nil {
			r.conn.Close()
		}
	}
}

// HostReport is one upstream's race memory in the cost report.
type HostReport struct {
	// Host is the upstream host name.
	Host string `json:"host"`
	// Winner is the remembered winning family ("v4", "v6"), or empty
	// when no preference is held.
	Winner string `json:"winner,omitempty"`
	// WinnerAgeMs is how long ago the winner was recorded.
	WinnerAgeMs float64 `json:"winner_age_ms,omitempty"`
	// Fails counts consecutive sticky-family failures since the last
	// win.
	Fails int `json:"fails,omitempty"`
}

// Report is the dialer section of /debug/cost.
type Report struct {
	// StaggerMs is the configured connection-attempt delay.
	StaggerMs float64 `json:"stagger_ms"`
	// StickyTTLMs is the winner-memory bound; 0 when stickiness is
	// disabled.
	StickyTTLMs float64 `json:"sticky_ttl_ms"`
	// Hosts lists per-upstream race memory, sorted by host.
	Hosts []HostReport `json:"hosts,omitempty"`
}

// Report snapshots the dialer's per-upstream memory.
func (h *HappyEyeballs) Report() Report {
	r := Report{StaggerMs: float64(h.cfg.Stagger) / float64(time.Millisecond)}
	if h.cfg.StickyTTL > 0 {
		r.StickyTTLMs = float64(h.cfg.StickyTTL) / float64(time.Millisecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.now()
	for host, st := range h.hosts {
		hr := HostReport{Host: host, Fails: st.fails}
		if st.winner != telemetry.DialFamilyUnknown {
			hr.Winner = st.winner.String()
			hr.WinnerAgeMs = float64(now.Sub(st.winnerAt)) / float64(time.Millisecond)
		}
		r.Hosts = append(r.Hosts, hr)
	}
	sort.Slice(r.Hosts, func(i, j int) bool { return r.Hosts[i].Host < r.Hosts[j].Host })
	return r
}

package dialer

import (
	"sync"
	"time"
)

// Storm defaults.
const (
	// DefaultStormThreshold is how many consecutive upstream failures
	// count as a storm.
	DefaultStormThreshold = 5
	// DefaultStormCooldown spaces storm firings: once signalled, the
	// detector stays quiet until the cooldown passes, however many
	// further failures arrive.
	DefaultStormCooldown = 30 * time.Second
)

// Storm turns a stream of per-exchange outcomes into a network-change
// signal: a run of consecutive failures longer than Threshold fires
// OnStorm (typically Prober.Kick), then holds off for Cooldown. A
// single success resets the run — storms are about everything failing
// at once, which is what an access-network change looks like from the
// proxy, not about one flaky upstream. Safe for concurrent use.
type Storm struct {
	// Threshold is the consecutive-failure count that fires; zero means
	// DefaultStormThreshold.
	Threshold int
	// Cooldown spaces firings; zero means DefaultStormCooldown.
	Cooldown time.Duration
	// OnStorm is called (synchronously, without the lock) when a storm
	// is detected.
	OnStorm func()

	mu        sync.Mutex
	run       int
	lastFired time.Time
	fired     int
}

// Note feeds one exchange outcome. err == nil resets the failure run.
func (s *Storm) Note(err error) {
	var fire func()
	s.mu.Lock()
	if err == nil {
		s.run = 0
	} else {
		s.run++
		threshold := s.Threshold
		if threshold == 0 {
			threshold = DefaultStormThreshold
		}
		cooldown := s.Cooldown
		if cooldown == 0 {
			cooldown = DefaultStormCooldown
		}
		if s.run >= threshold && time.Since(s.lastFired) >= cooldown {
			s.lastFired = time.Now()
			s.run = 0
			s.fired++
			fire = s.OnStorm
		}
	}
	s.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Fired reports how many storms have been signalled.
func (s *Storm) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

package dialer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/netsim"
	"dohcost/internal/telemetry"
)

// simConfig builds a Config over a netsim network where upstream host
// "up" is dual-homed as "v4.up" and "v6.up", both listening on :53.
func simConfig(t *testing.T, n *netsim.Network) Config {
	t.Helper()
	for _, h := range []string{"v4.up", "v6.up"} {
		l, err := n.Listen(h + ":53")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
	}
	return Config{
		Resolve: func(ctx context.Context, host string) ([]string, []string, error) {
			return []string{"v4." + host + ":53"}, []string{"v6." + host + ":53"}, nil
		},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return n.DialContext(ctx, "client", addr)
		},
	}
}

func TestHappyEyeballsPrefersStickyWinner(t *testing.T) {
	n := netsim.New(1)
	cfg := simConfig(t, n)
	var dials []string
	var mu sync.Mutex
	inner := cfg.Dial
	cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		mu.Lock()
		dials = append(dials, addr)
		mu.Unlock()
		return inner(ctx, addr)
	}
	cfg.PreferV6 = true
	cfg.Stagger = 50 * time.Millisecond
	h := New(cfg)

	// First race leads with v6 (the configured preference) and v6 wins.
	c, err := h.DialContext(context.Background(), "up")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	mu.Lock()
	first := dials[0]
	mu.Unlock()
	if first != "v6.up:53" {
		t.Fatalf("first dial %s, want v6.up:53", first)
	}
	rep := h.Report()
	if len(rep.Hosts) != 1 || rep.Hosts[0].Winner != "v6" {
		t.Fatalf("report %+v, want v6 winner for up", rep.Hosts)
	}

	// Blackhole v6: the race falls over to v4 within one stagger and,
	// after DemoteAfter consecutive sticky failures, the preference is
	// revoked so v4 leads the next race outright.
	n.SetDialFault("v6.up", netsim.DialFault{Blackhole: true})
	for i := 0; i < DefaultDemoteAfter; i++ {
		c, err = h.DialContext(context.Background(), "up")
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	mu.Lock()
	dials = nil
	mu.Unlock()
	c, err = h.DialContext(context.Background(), "up")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	mu.Lock()
	first = dials[0]
	mu.Unlock()
	if first != "v4.up:53" {
		t.Fatalf("post-demotion first dial %s, want v4.up:53", first)
	}
}

func TestHappyEyeballsStickyTTLExpires(t *testing.T) {
	n := netsim.New(2)
	cfg := simConfig(t, n)
	now := time.Now()
	cfg.now = func() time.Time { return now }
	cfg.PreferV6 = false // default order leads v4
	cfg.Stagger = 20 * time.Millisecond
	h := New(cfg)

	c, err := h.DialContext(context.Background(), "up")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if h.preferredFamily("up") != telemetry.DialFamilyV4 {
		t.Fatal("v4 win not remembered")
	}
	// Force the memory to v6, then expire it.
	h.noteWin("up", telemetry.DialFamilyV6)
	if h.preferredFamily("up") != telemetry.DialFamilyV6 {
		t.Fatal("forced v6 winner not preferred")
	}
	now = now.Add(DefaultStickyTTL + time.Second)
	if h.preferredFamily("up") != telemetry.DialFamilyV4 {
		t.Fatal("expired winner still preferred")
	}
}

func TestHappyEyeballsBrokenV6BoundedByStagger(t *testing.T) {
	n := netsim.New(3)
	cfg := simConfig(t, n)
	cfg.PreferV6 = true
	cfg.Stagger = 50 * time.Millisecond
	n.SetDialFault("v6.up", netsim.DialFault{Blackhole: true})
	h := New(cfg)

	start := time.Now()
	c, err := h.DialContext(context.Background(), "up")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The blackholed v6 lead costs one stagger interval, then v4
	// connects promptly; it must not cost anything near the 5 s dial
	// timeout.
	if e := time.Since(start); e > 10*cfg.Stagger {
		t.Fatalf("broken-v6 dial took %v, want ≈%v", e, cfg.Stagger)
	}
	if h.preferredFamily("up") != telemetry.DialFamilyV4 {
		t.Fatal("v4 win not recorded after v6 blackhole")
	}
}

func TestHappyEyeballsAllFail(t *testing.T) {
	cfg := Config{
		Resolve: func(ctx context.Context, host string) ([]string, []string, error) {
			return []string{"a:1"}, []string{"b:1"}, nil
		},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, errors.New("refused")
		},
		Stagger: time.Millisecond,
	}
	h := New(cfg)
	if _, err := h.DialContext(context.Background(), "up"); err == nil {
		t.Fatal("want error when every attempt fails")
	}
}

func TestHappyEyeballsTelemetry(t *testing.T) {
	n := netsim.New(4)
	cfg := simConfig(t, n)
	m := telemetry.New()
	cfg.Telemetry = m
	cfg.PreferV6 = true
	cfg.Stagger = 20 * time.Millisecond
	n.SetDialFault("v6.up", netsim.DialFault{ResetProb: 1})
	h := New(cfg)

	c, err := h.DialContext(context.Background(), "up")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	snap := m.Snapshot()
	if snap.Dials["v6"]["error"] == 0 {
		t.Fatalf("v6 reset not counted: %+v", snap.Dials)
	}
	if snap.Dials["v4"]["ok"] == 0 {
		t.Fatalf("v4 success not counted: %+v", snap.Dials)
	}
	if snap.DialWins["v4"] != 1 {
		t.Fatalf("dial wins %+v, want one v4 win", snap.DialWins)
	}
}

func TestProberSeedsAndCaches(t *testing.T) {
	seeds := make(map[string]struct {
		d  time.Duration
		ok bool
	})
	var mu sync.Mutex
	seeder := seederFunc(func(name string, d time.Duration, ok bool) {
		mu.Lock()
		seeds[name] = struct {
			d  time.Duration
			ok bool
		}{d, ok}
		mu.Unlock()
	})
	p := &Prober{
		Timeout: 100 * time.Millisecond,
		Seeder:  seeder,
		Targets: []Target{
			{Upstream: "alive", Proto: "udp", Probe: func(ctx context.Context) (time.Duration, error) {
				return 7 * time.Millisecond, nil
			}},
			{Upstream: "alive", Proto: "doh", Probe: func(ctx context.Context) (time.Duration, error) {
				return 30 * time.Millisecond, nil
			}},
			{Upstream: "dead", Proto: "doh", Probe: func(ctx context.Context) (time.Duration, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			}},
		},
	}
	vs := p.Run(context.Background())
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts", len(vs))
	}
	if s := seeds["alive"]; !s.ok || s.d != 7*time.Millisecond {
		t.Fatalf("alive seeded %+v, want fastest OK probe", s)
	}
	if s := seeds["dead"]; s.ok || s.d != p.Timeout {
		t.Fatalf("dead seeded %+v, want timeout failure", s)
	}
	cached := p.Verdicts()
	if len(cached) != 3 || cached[0].Upstream != "alive" || !cached[0].OK {
		t.Fatalf("cached verdicts %+v", cached)
	}
	if rep := p.Report(); rep.Sweeps != 1 || rep.LastRunAgeMs < 0 {
		t.Fatalf("report %+v", rep)
	}
}

type seederFunc func(string, time.Duration, bool)

func (f seederFunc) Seed(name string, d time.Duration, ok bool) { f(name, d, ok) }

func TestProberKickRateLimited(t *testing.T) {
	var runs atomic.Int32
	done := make(chan struct{}, 8)
	p := &Prober{
		KickInterval: time.Hour,
		Targets: []Target{{Upstream: "u", Proto: "udp", Probe: func(ctx context.Context) (time.Duration, error) {
			runs.Add(1)
			done <- struct{}{}
			return time.Millisecond, nil
		}}},
	}
	if !p.Kick(context.Background()) {
		t.Fatal("first kick should start a sweep")
	}
	<-done
	// The sweep has run once; within KickInterval further kicks drop.
	for i := 0; i < 5; i++ {
		if p.Kick(context.Background()) {
			t.Fatal("kick inside the interval should be dropped")
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("probe ran %d times, want 1", got)
	}
}

func TestStormFiresAndCoolsDown(t *testing.T) {
	var fired atomic.Int32
	s := &Storm{Threshold: 3, Cooldown: time.Hour, OnStorm: func() { fired.Add(1) }}
	err := errors.New("boom")
	s.Note(err)
	s.Note(err)
	s.Note(nil) // success resets the run
	s.Note(err)
	s.Note(err)
	if fired.Load() != 0 {
		t.Fatal("storm fired before threshold")
	}
	s.Note(err)
	if fired.Load() != 1 {
		t.Fatal("storm did not fire at threshold")
	}
	for i := 0; i < 10; i++ {
		s.Note(err)
	}
	if fired.Load() != 1 {
		t.Fatal("cooldown did not suppress refiring")
	}
	if s.Fired() != 1 {
		t.Fatalf("Fired()=%d", s.Fired())
	}
}

func TestInterleaveOrders(t *testing.T) {
	v4 := []string{"a4", "b4", "c4"}
	v6 := []string{"a6"}
	got := interleave(v4, v6, telemetry.DialFamilyV6)
	want := []string{"a6", "a4", "b4", "c4"}
	for i, a := range got {
		if a.addr != want[i] {
			t.Fatalf("interleave[%d]=%s want %s (%v)", i, a.addr, want[i], got)
		}
	}
	if got := interleave(nil, nil, telemetry.DialFamilyV4); len(got) != 0 {
		t.Fatalf("empty interleave returned %v", got)
	}
}

func ExampleHappyEyeballs_DialContext() {
	n := netsim.New(0)
	l, _ := n.Listen("v4.up:53")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	h := New(Config{
		Resolve: func(ctx context.Context, host string) ([]string, []string, error) {
			return []string{"v4." + host + ":53"}, nil, nil
		},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return n.DialContext(ctx, "client", addr)
		},
	})
	c, err := h.DialContext(context.Background(), "up")
	if err == nil {
		c.Close()
	}
	fmt.Println(err)
	// Output: <nil>
}

package webload

import (
	"context"
	"errors"
	"testing"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/dnswire"
)

// fakeResolver answers after a fixed latency.
type fakeResolver struct {
	latency time.Duration
	fail    bool
}

func (f *fakeResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	select {
	case <-time.After(f.latency):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if f.fail {
		return nil, errors.New("synthetic failure")
	}
	return q.Reply(), nil
}

func (f *fakeResolver) Close() error { return nil }

func testPage(n int) alexa.Page {
	p := alexa.Page{Rank: 1, URL: "https://www.site000001.example/"}
	p.Domains = append(p.Domains, "www.site000001.example")
	for i := 1; i < n; i++ {
		p.Domains = append(p.Domains, domainName(i))
	}
	return p
}

func domainName(i int) string {
	return []string{"cdn0", "ads1", "static2", "fonts3", "apis4", "tags5", "px6", "img7", "js8", "m9"}[i%10] + ".thirdparty.example"
}

func TestWavesPartition(t *testing.T) {
	p := testPage(11)
	w := waves(p.Domains)
	if len(w) != 3 {
		t.Fatalf("waves = %d, want 3", len(w))
	}
	if len(w[0]) != 1 || w[0][0] != p.Domains[0] {
		t.Errorf("wave 0 = %v", w[0])
	}
	total := 0
	for _, wave := range w {
		total += len(wave)
	}
	if total != len(p.Domains) {
		t.Errorf("waves cover %d of %d domains", total, len(p.Domains))
	}
	if got := waves([]string{"only.example"}); len(got) != 1 {
		t.Errorf("single-domain waves = %v", got)
	}
	if got := waves(nil); got != nil {
		t.Errorf("empty waves = %v", got)
	}
}

func TestLoadBasics(t *testing.T) {
	b := NewBrowser(&fakeResolver{latency: 2 * time.Millisecond}, VantageLocal())
	res, err := b.Load(context.Background(), testPage(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DNSTimes) != 12 {
		t.Errorf("dns times = %d", len(res.DNSTimes))
	}
	var sum time.Duration
	for _, d := range res.DNSTimes {
		sum += d
	}
	if res.CumulativeDNS != sum {
		t.Error("cumulative DNS is not the serial sum")
	}
	if res.OnLoad <= 0 || res.Objects < 12 {
		t.Errorf("onload = %v objects = %d", res.OnLoad, res.Objects)
	}
	// Parallelism: onload must be far below cumulative DNS + serial fetch.
	if res.OnLoad > res.CumulativeDNS+time.Second {
		t.Errorf("onload %v looks serialized (cumDNS %v)", res.OnLoad, res.CumulativeDNS)
	}
	if res.DNSFailures != 0 {
		t.Errorf("failures = %d", res.DNSFailures)
	}
}

func TestSlowerResolverRaisesCumulativeDNSMoreThanOnload(t *testing.T) {
	// The paper's §5 punchline: switching to a slower (DoH-like) resolver
	// inflates cumulative DNS time clearly, but onload only a little,
	// because resolutions are parallel within waves.
	page := testPage(20)
	fast := NewBrowser(&fakeResolver{latency: 1 * time.Millisecond}, VantageLocal())
	slow := NewBrowser(&fakeResolver{latency: 12 * time.Millisecond}, VantageLocal())

	rf, err := fast.Load(context.Background(), page)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Load(context.Background(), page)
	if err != nil {
		t.Fatal(err)
	}
	dnsRatio := float64(rs.CumulativeDNS) / float64(rf.CumulativeDNS)
	onloadRatio := float64(rs.OnLoad) / float64(rf.OnLoad)
	if dnsRatio < 3 {
		t.Errorf("cumulative DNS ratio = %.2f, want clear inflation", dnsRatio)
	}
	if onloadRatio > 1.8 {
		t.Errorf("onload ratio = %.2f, want mild inflation", onloadRatio)
	}
	if onloadRatio >= dnsRatio {
		t.Errorf("onload inflated as much as DNS (%.2f vs %.2f)", onloadRatio, dnsRatio)
	}
}

func TestDNSFailureCountsAndCharges(t *testing.T) {
	b := NewBrowser(&fakeResolver{latency: time.Millisecond, fail: true}, VantageLocal())
	b.DNSTimeout = 30 * time.Millisecond
	res, err := b.Load(context.Background(), testPage(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.DNSFailures != 3 {
		t.Errorf("failures = %d", res.DNSFailures)
	}
	if res.DNSTimes[0] != b.DNSTimeout {
		t.Errorf("failed resolution charged %v, want timeout %v", res.DNSTimes[0], b.DNSTimeout)
	}
}

func TestContextCancellation(t *testing.T) {
	b := NewBrowser(&fakeResolver{latency: 300 * time.Millisecond}, VantageLocal())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.Load(ctx, testPage(30))
	if err == nil {
		t.Error("cancelled load returned no error")
	}
}

func TestFetchModelDeterministic(t *testing.T) {
	b := NewBrowser(&fakeResolver{}, VantageLocal())
	t1, o1 := b.fetchTime("cdn7.thirdparty.example")
	t2, o2 := b.fetchTime("cdn7.thirdparty.example")
	if t1 != t2 || o1 != o2 {
		t.Error("fetch model not deterministic")
	}
	t3, _ := b.fetchTime("other.example")
	if t3 == t1 {
		t.Log("two domains with identical fetch times (possible)")
	}
	if o1 < 1 || o1 > 12 {
		t.Errorf("objects = %d", o1)
	}
	if t1 < 2*b.Vantage.WebRTT {
		t.Errorf("fetch %v cheaper than connection setup", t1)
	}
}

func TestPlanetLabVantagesVaryAndAreSlower(t *testing.T) {
	local := VantageLocal()
	seen := map[time.Duration]bool{}
	for i := 0; i < PlanetLabNodes; i++ {
		v := VantagePlanetLab(i)
		if v.WebRTT <= local.WebRTT {
			t.Errorf("node %d RTT %v not slower than local %v", i, v.WebRTT, local.WebRTT)
		}
		if v.Bandwidth >= local.Bandwidth {
			t.Errorf("node %d bandwidth %d not below local", i, v.Bandwidth)
		}
		seen[v.WebRTT] = true
	}
	if len(seen) < 20 {
		t.Errorf("only %d distinct node RTTs; want heterogeneity", len(seen))
	}
	// Wrap-around keeps indices valid.
	if VantagePlanetLab(PlanetLabNodes).WebRTT != VantagePlanetLab(0).WebRTT {
		t.Error("vantage index wrap broken")
	}
}

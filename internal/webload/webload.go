// Package webload models the browser side of the paper's §5 experiment:
// loading ranked pages while resolving names through a pluggable DNS
// transport, and reporting both the cumulative (serialized) DNS resolution
// time and the onload time per page load.
//
// The split of responsibilities mirrors the original setup. DNS exchanges
// are real: they travel through this repository's transport stacks over the
// simulated network, so resolver choice (local vs cloud, UDP vs DoH) shows
// up in measured durations. Object fetches are analytic: a deterministic
// model of per-origin connection setup, request rounds and transfer time
// replaces Firefox's fetch engine, because the paper's question — does DoH
// slow pages down? — depends on how DNS latency composes into the critical
// path, not on bytes actually moved.
package webload

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
)

// Vantage describes the measurement host's position relative to the web:
// the analytic fetch model's parameters. (Its position relative to the
// resolver is configured on the simulated network's links.)
type Vantage struct {
	Name string
	// WebRTT is the typical round trip to content origins.
	WebRTT time.Duration
	// WebJitter spreads per-origin RTTs (deterministically by origin).
	WebJitter time.Duration
	// Bandwidth is the access link rate in bytes/second.
	Bandwidth int64
}

// VantageLocal is the paper's university-network vantage point.
func VantageLocal() Vantage {
	return Vantage{
		Name:      "local",
		WebRTT:    18 * time.Millisecond,
		WebJitter: 10 * time.Millisecond,
		Bandwidth: 12 << 20, // ~100 Mbit/s
	}
}

// PlanetLabNodes is how many usable PlanetLab vantage points the paper had.
const PlanetLabNodes = 39

// VantagePlanetLab returns the i-th PlanetLab-like node profile: farther
// from the web, more heterogeneous, on thinner links.
func VantagePlanetLab(i int) Vantage {
	i = i % PlanetLabNodes
	return Vantage{
		Name:      fmt.Sprintf("planetlab-%02d", i),
		WebRTT:    time.Duration(40+7*i) * time.Millisecond,
		WebJitter: time.Duration(20+3*i) * time.Millisecond,
		Bandwidth: int64(2+(i%5)) << 20,
	}
}

// Browser loads pages: real DNS through Resolver, analytic fetches per
// Vantage. Safe for concurrent Load calls.
type Browser struct {
	Resolver dnstransport.Resolver
	Vantage  Vantage
	// MaxConnsPerHost caps parallel object fetches per origin (browsers
	// use 6).
	MaxConnsPerHost int
	// DNSTimeout bounds each resolution; failures contribute the timeout
	// to DNS time, like a browser falling back.
	DNSTimeout time.Duration
}

// NewBrowser returns a browser with Firefox-like defaults.
func NewBrowser(r dnstransport.Resolver, v Vantage) *Browser {
	return &Browser{Resolver: r, Vantage: v, MaxConnsPerHost: 6, DNSTimeout: 5 * time.Second}
}

// PageResult is one page load's measurements.
type PageResult struct {
	URL string
	// DNSTimes holds each domain's resolution time, in resolution order.
	DNSTimes []time.Duration
	// CumulativeDNS is the serialized sum of DNSTimes — the quantity
	// Figure 6's left panels plot ("the time it would take to perform all
	// DNS queries serially, whereas in reality they can be parallelised").
	CumulativeDNS time.Duration
	// OnLoad is when the load event would fire: all waves fetched.
	OnLoad time.Duration
	// Objects counts modelled object fetches.
	Objects int
	// DNSFailures counts resolutions that errored or timed out.
	DNSFailures int
}

// waves partitions a page's domains into dependency waves: the page's own
// origin blocks everything; most third parties load next; late tags load
// last. Matches the coarse structure of real dependency graphs.
func waves(domains []string) [][]string {
	if len(domains) == 0 {
		return nil
	}
	if len(domains) == 1 {
		return [][]string{domains}
	}
	rest := domains[1:]
	cut := (len(rest) * 7) / 10
	w := [][]string{domains[:1]}
	if cut > 0 {
		w = append(w, rest[:cut])
	}
	if cut < len(rest) {
		w = append(w, rest[cut:])
	}
	return w
}

// Load performs one cold-cache page load.
func (b *Browser) Load(ctx context.Context, page alexa.Page) (*PageResult, error) {
	res := &PageResult{URL: page.URL}
	var onload time.Duration
	for _, wave := range waves(page.Domains) {
		type outcome struct {
			idx   int
			dns   time.Duration
			fetch time.Duration
			fail  bool
			objs  int
		}
		results := make([]outcome, len(wave))
		var wg sync.WaitGroup
		for i, domain := range wave {
			wg.Add(1)
			go func(i int, domain string) {
				defer wg.Done()
				dns, fail := b.resolve(ctx, domain)
				fetch, objs := b.fetchTime(domain)
				results[i] = outcome{idx: i, dns: dns, fetch: fetch, fail: fail, objs: objs}
			}(i, domain)
		}
		wg.Wait()
		var waveTime time.Duration
		for _, o := range results {
			res.DNSTimes = append(res.DNSTimes, o.dns)
			res.CumulativeDNS += o.dns
			res.Objects += o.objs
			if o.fail {
				res.DNSFailures++
			}
			if t := o.dns + o.fetch; t > waveTime {
				waveTime = t
			}
		}
		onload += waveTime
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
	}
	res.OnLoad = onload
	return res, nil
}

// resolve measures one real resolution.
func (b *Browser) resolve(ctx context.Context, domain string) (time.Duration, bool) {
	qctx, cancel := context.WithTimeout(ctx, b.DNSTimeout)
	defer cancel()
	q := dnswire.NewQuery(0, dnswire.Name(domain+"."), dnswire.TypeA)
	start := time.Now()
	_, err := b.Resolver.Exchange(qctx, q)
	d := time.Since(start)
	if err != nil {
		return b.DNSTimeout, true
	}
	return d, false
}

// fetchTime is the analytic object-fetch model for one origin: TCP+TLS
// setup, then rounds of parallel requests over up to MaxConnsPerHost
// connections.
func (b *Browser) fetchTime(domain string) (time.Duration, int) {
	h := fnv.New64a()
	h.Write([]byte(domain))
	seed := h.Sum64()

	objects := 1 + int(seed%12)
	// Object sizes: log-normal-ish via the hash, 2–80 KB, mean ~20 KB.
	sizeSeed := float64((seed>>8)%1000) / 1000
	avgObject := int64(2048 + math.Exp(sizeSeed*3.7)*1024)
	totalBytes := avgObject * int64(objects)

	rtt := b.Vantage.WebRTT
	if b.Vantage.WebJitter > 0 {
		rtt += time.Duration(seed % uint64(b.Vantage.WebJitter))
	}
	conns := b.MaxConnsPerHost
	if conns <= 0 {
		conns = 6
	}
	if objects < conns {
		conns = objects
	}
	rounds := (objects + conns - 1) / conns

	setup := 2 * rtt // TCP handshake + TLS 1.3 handshake
	transfer := time.Duration(float64(totalBytes) / float64(b.Vantage.Bandwidth) * float64(time.Second))
	return setup + time.Duration(rounds)*rtt + transfer, objects
}

package landscape

import (
	"fmt"
	"net/netip"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnswire"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// RegistryHost is the simulated stand-in for the public DNS where a prober
// looks up CAA records about the providers themselves.
const RegistryHost = "registry.sim"

// Deployment is a set of providers brought up as live server stacks on a
// simulated network, plus the registry resolver holding their CAA records.
type Deployment struct {
	Net       *netsim.Network
	Providers []Provider

	chains  map[string]*tlsx.Chain // per provider host
	running []*dnsserver.Running
}

// Deploy generates certificates and starts every provider's UDP, TCP, DoT
// and DoH listeners, plus the registry.
func Deploy(n *netsim.Network, providers []Provider) (*Deployment, error) {
	d := &Deployment{Net: n, Providers: providers, chains: map[string]*tlsx.Chain{}}

	registry := dnsserver.NewZone(".")
	for pi := range providers {
		p := &providers[pi]
		for hi, host := range p.hosts() {
			chain, err := tlsx.GenerateChain(tlsx.ChainSpec{
				CommonName:      host,
				DNSNames:        []string{host},
				TargetWireBytes: p.ChainBytes,
				EmbedSCT:        p.CT,
				OCSPMustStaple:  p.OCSPMustStaple,
				Seed:            int64(pi*17 + hi + 3),
			})
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("landscape: chain for %s: %w", host, err)
			}
			d.chains[host] = chain

			min, max := p.tlsVersions()
			altSvc := ""
			if p.QUIC {
				altSvc = `h3=":443"; ma=86400`
			}
			srv := &dnsserver.Server{
				Handler:    dnsserver.Static(netip.MustParseAddr("192.0.2.1"), 300),
				Chain:      chain,
				TLSMin:     min,
				TLSMax:     max,
				DisableDoT: !p.DoT,
				Endpoints:  p.endpoints(host),
				AltSvc:     altSvc,
			}
			run, err := srv.Start(n, host)
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("landscape: starting %s: %w", host, err)
			}
			d.running = append(d.running, run)
		}

		// Registry metadata: CAA records for providers that publish them.
		if p.CAA {
			registry.Add(dnswire.ResourceRecord{
				Name: dnswire.Name(p.Host + "."), Class: dnswire.ClassINET, TTL: 86400,
				Data: &dnswire.CAA{Flags: 0, Tag: "issue", Value: "pki.goog"},
			})
		} else {
			// Known name without CAA: the registry answers NODATA rather
			// than NXDOMAIN so the prober can distinguish "no CAA" from
			// "no such host".
			registry.Add(dnswire.ResourceRecord{
				Name: dnswire.Name(p.Host + "."), Class: dnswire.ClassINET, TTL: 86400,
				Data: &dnswire.TXT{Strings: []string{"registered"}},
			})
		}
	}

	regSrv := &dnsserver.Server{Handler: registry}
	run, err := regSrv.Start(n, RegistryHost)
	if err != nil {
		d.Close()
		return nil, fmt.Errorf("landscape: starting registry: %w", err)
	}
	d.running = append(d.running, run)
	return d, nil
}

// Chain returns the certificate chain deployed for host, for client trust.
func (d *Deployment) Chain(host string) *tlsx.Chain { return d.chains[host] }

// Close stops all listeners.
func (d *Deployment) Close() {
	for _, r := range d.running {
		r.Close()
	}
	d.running = nil
}

package landscape

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"strings"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/h2"
	"dohcost/internal/hpack"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// Features is one column of Table 2: everything the prober (re)discovered
// about one DoH service, plus the registry-sourced steering entry.
type Features struct {
	Marker string
	URL    string

	Wire bool // application/dns-message accepted
	JSON bool // application/dns-json accepted
	TLS  map[uint16]bool
	CT   bool // embedded SCTs in the served certificate
	CAA  bool // CAA records published for the provider host
	OCSP bool // OCSP must-staple demanded by the certificate
	QUIC bool // HTTP/3 advertised via Alt-Svc
	DoT  bool // an RFC 7858 service answers on :853

	Steering Steering
}

// Prober rediscovers provider features by exercising their deployments,
// mirroring the paper's methodology (§2).
type Prober struct {
	Deployment *Deployment
	// ClientHost names the vantage point on the simulated network.
	ClientHost string
	// Timeout bounds each individual probe.
	Timeout time.Duration
}

// NewProber returns a prober with sane defaults.
func NewProber(d *Deployment) *Prober {
	return &Prober{Deployment: d, ClientHost: "prober", Timeout: 5 * time.Second}
}

// ProbeAll surveys every service column of every provider, one Features per
// Table 2 column (Blahdns' three mirrors collapse into one column, as in
// the paper).
func (p *Prober) ProbeAll() ([]Features, error) {
	var out []Features
	seen := map[string]bool{}
	for pi := range p.Deployment.Providers {
		prov := &p.Deployment.Providers[pi]
		for _, svc := range prov.Services {
			if seen[svc.Marker] {
				continue
			}
			seen[svc.Marker] = true
			f, err := p.ProbeService(prov, svc)
			if err != nil {
				return nil, fmt.Errorf("landscape: probing %s: %w", svc.URL, err)
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// ProbeService probes one service column.
func (p *Prober) ProbeService(prov *Provider, svc Service) (Features, error) {
	f := Features{
		Marker:   svc.Marker,
		URL:      svc.URL,
		TLS:      make(map[uint16]bool, len(tlsx.Versions)),
		Steering: prov.Steering, // registry metadata, not wire-probeable
	}
	chain := p.Deployment.Chain(svc.Host)
	if chain == nil {
		return f, fmt.Errorf("no deployed chain for %s", svc.Host)
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.Timeout)
	defer cancel()

	dial443 := func() (net.Conn, error) { return p.Deployment.Net.Dial(p.ClientHost, svc.Host+":443") }

	// Content types: issue one query per encoding and see who answers.
	f.Wire = p.tryDoH(ctx, chain, svc, dnstransport.EncodingPOST)
	f.JSON = p.tryDoH(ctx, chain, svc, dnstransport.EncodingJSON)

	// TLS version support.
	versions, err := tlsx.ProbeVersions(dial443, chain.ClientConfig(svc.Host))
	if err != nil {
		return f, err
	}
	f.TLS = versions

	// Certificate attributes: CT (embedded SCTs) and OCSP must-staple.
	raw, err := dial443()
	if err != nil {
		return f, err
	}
	tc := tls.Client(raw, chain.ClientConfig(svc.Host))
	tc.SetDeadline(time.Now().Add(p.Timeout))
	if err := tc.Handshake(); err != nil {
		tc.Close()
		return f, fmt.Errorf("certificate probe handshake: %w", err)
	}
	if certs := tc.ConnectionState().PeerCertificates; len(certs) > 0 {
		f.CT = tlsx.HasExtension(certs[0], tlsx.OIDSignedCertificateTimestamps)
		f.OCSP = tlsx.HasExtension(certs[0], tlsx.OIDOCSPMustStaple)
	}
	tc.Close()

	// QUIC: look for an Alt-Svc advertisement on a wireformat exchange
	// (falling back to JSON-only services' GET form).
	altSvc, err := p.fetchAltSvc(ctx, chain, svc)
	if err == nil {
		f.QUIC = strings.Contains(altSvc, "h3") || strings.Contains(altSvc, "quic")
	}

	// CAA: ask the registry resolver about the provider's host.
	f.CAA, err = p.probeCAA(ctx, prov.Host)
	if err != nil {
		return f, err
	}

	// DoT: attempt a full resolution against :853.
	f.DoT = p.tryDoT(ctx, chain, svc.Host)
	return f, nil
}

// tryDoH reports whether a resolution in the given encoding succeeds.
func (p *Prober) tryDoH(ctx context.Context, chain *tlsx.Chain, svc Service, enc dnstransport.DoHEncoding) bool {
	c := &dnstransport.DoHClient{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return p.Deployment.Net.DialContext(ctx, p.ClientHost, svc.Host+":443")
		},
		TLS:  chain.ClientConfig(svc.Host),
		Path: svc.Path, Encoding: enc,
	}
	defer c.Close()
	resp, err := c.Exchange(ctx, dnswire.NewQuery(0, "probe.example.com.", dnswire.TypeA))
	return err == nil && resp.RCode == dnswire.RCodeSuccess
}

// fetchAltSvc performs one raw HTTP/2 exchange and returns the alt-svc
// header value.
func (p *Prober) fetchAltSvc(ctx context.Context, chain *tlsx.Chain, svc Service) (string, error) {
	raw, err := p.Deployment.Net.Dial(p.ClientHost, svc.Host+":443")
	if err != nil {
		return "", err
	}
	cfg := chain.ClientConfig(svc.Host, "h2")
	tc := tls.Client(raw, cfg)
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return "", err
	}
	cc, err := h2.NewClientConn(tc)
	if err != nil {
		tc.Close()
		return "", err
	}
	defer cc.Close()

	var req *h2.Request
	if svc.Wire {
		wire, err := dnswire.NewQuery(0, "probe.example.com.", dnswire.TypeA).Pack()
		if err != nil {
			return "", err
		}
		req = &h2.Request{
			Method: "POST", Scheme: "https", Authority: svc.Host, Path: svc.Path,
			Header: []hpack.HeaderField{{Name: "content-type", Value: dnsserver.ContentTypeWire}},
			Body:   wire,
		}
	} else {
		req = &h2.Request{
			Method: "GET", Scheme: "https", Authority: svc.Host,
			Path: dnsserver.EncodeJSONGETPath(svc.Path, "probe.example.com.", dnswire.TypeA),
		}
	}
	resp, err := cc.RoundTrip(ctx, req)
	if err != nil {
		return "", err
	}
	return resp.HeaderValue("alt-svc"), nil
}

// probeCAA queries the registry for CAA records on host.
func (p *Prober) probeCAA(ctx context.Context, host string) (bool, error) {
	pc, err := p.Deployment.Net.ListenPacket("")
	if err != nil {
		return false, err
	}
	c := dnstransport.NewUDPClient(pc, netsim.Addr(RegistryHost+":53"))
	defer c.Close()
	resp, err := c.Exchange(ctx, dnswire.NewQuery(0, dnswire.Name(host+"."), dnswire.TypeCAA))
	if err != nil {
		return false, err
	}
	for _, rr := range resp.Answers {
		if rr.Type() == dnswire.TypeCAA {
			return true, nil
		}
	}
	return false, nil
}

// tryDoT attempts a resolution over :853.
func (p *Prober) tryDoT(ctx context.Context, chain *tlsx.Chain, host string) bool {
	c := dnstransport.NewDoTClient(
		func(ctx context.Context) (net.Conn, error) {
			return p.Deployment.Net.DialContext(ctx, p.ClientHost, host+":853")
		},
		chain.ClientConfig(host),
	)
	defer c.Close()
	resp, err := c.Exchange(ctx, dnswire.NewQuery(0, "probe.example.com.", dnswire.TypeA))
	return err == nil && resp.RCode == dnswire.RCodeSuccess
}

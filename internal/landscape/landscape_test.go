package landscape

import (
	"strings"
	"testing"

	"dohcost/internal/netsim"
)

func TestDefaultProvidersShape(t *testing.T) {
	providers := DefaultProviders()
	if len(providers) != 9 {
		t.Fatalf("providers = %d, want 9 (Table 1)", len(providers))
	}
	var services, markers int
	seen := map[string]bool{}
	paths := map[string]bool{}
	for _, p := range providers {
		for _, s := range p.Services {
			services++
			if !seen[s.Marker] {
				seen[s.Marker] = true
				markers++
			}
			paths[s.Path] = true
		}
	}
	// Table 1: 12 endpoint URLs across 10 columns (markers).
	if services != 12 {
		t.Errorf("service URLs = %d, want 12", services)
	}
	if markers != 10 {
		t.Errorf("marker columns = %d, want 10", markers)
	}
	// §2: four distinct URL paths among the providers.
	if len(paths) != 4 {
		t.Errorf("distinct paths = %d (%v), want 4", len(paths), paths)
	}
}

func TestDeployAndProbeMatchesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full survey probe is slow under -short")
	}
	n := netsim.New(42)
	dep, err := Deploy(n, DefaultProviders())
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	got, err := NewProber(dep).ProbeAll()
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedTable2(DefaultProviders())
	if diffs := Diff(want, got); len(diffs) > 0 {
		t.Errorf("probed matrix deviates from ground truth:\n%s", strings.Join(diffs, "\n"))
		t.Logf("probed:\n%s", RenderTable2(got))
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(DefaultProviders())
	for _, want := range []string{
		"Google", "https://dns.google.com/resolve", "G1",
		"Cloudflare", "CleanBrowsing", "family-filter",
		"Commons Host", "CH",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	// Blahdns has three URLs but one marker.
	if strings.Count(out, "blahdns") != 3 {
		t.Errorf("blahdns rows = %d, want 3", strings.Count(out, "blahdns"))
	}
}

func TestRenderTable2GroundTruth(t *testing.T) {
	out := RenderTable2(ExpectedTable2(DefaultProviders()))
	for _, want := range []string{"dns-message", "dns-json", "TLS 1.3", "CT", "DNS CAA", "OCSP MS", "QUIC", "DNS-over-TLS", "Traf. Steer."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing row %q", want)
		}
	}
	lines := strings.Split(out, "\n")
	var wireRow, jsonRow, ctRow, ocspRow string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "dns-message"):
			wireRow = l
		case strings.HasPrefix(l, "dns-json"):
			jsonRow = l
		case strings.HasPrefix(l, "CT"):
			ctRow = l
		case strings.HasPrefix(l, "OCSP"):
			ocspRow = l
		}
	}
	// Paper: dns-message supported by all but G1 (9 of 10 columns).
	if strings.Count(wireRow, "Y") != 9 {
		t.Errorf("dns-message row: %q", wireRow)
	}
	// dns-json: G1, CF, Q9, BD, RF = 5 columns.
	if strings.Count(jsonRow, "Y") != 5 {
		t.Errorf("dns-json row: %q", jsonRow)
	}
	// CT everywhere, OCSP nowhere.
	if strings.Count(ctRow, "Y") != 10 {
		t.Errorf("CT row: %q", ctRow)
	}
	if strings.Count(ocspRow, "Y") != 0 {
		t.Errorf("OCSP row: %q", ocspRow)
	}
}

func TestExpectedTable2TLSVersions(t *testing.T) {
	cols := ExpectedTable2(DefaultProviders())
	byMarker := map[string]Features{}
	for _, c := range cols {
		byMarker[c.Marker] = c
	}
	// Spot-check against the paper's Table 2.
	cf := byMarker["CF"]
	if !cf.TLS[0x0301] || !cf.TLS[0x0304] { // 1.0 and 1.3
		t.Errorf("CF TLS = %v", cf.TLS)
	}
	g2 := byMarker["G2"]
	if g2.TLS[0x0301] || !g2.TLS[0x0304] {
		t.Errorf("G2 TLS = %v", g2.TLS)
	}
	cb := byMarker["CB"]
	if cb.TLS[0x0304] || !cb.TLS[0x0303] {
		t.Errorf("CB TLS = %v", cb.TLS)
	}
	rf := byMarker["RF"]
	if rf.TLS[0x0304] || !rf.TLS[0x0301] {
		t.Errorf("RF TLS = %v", rf.TLS)
	}
	if !byMarker["G1"].QUIC || byMarker["CF"].QUIC {
		t.Error("QUIC ground truth wrong")
	}
	if !byMarker["G1"].CAA || byMarker["Q9"].CAA {
		t.Error("CAA ground truth wrong")
	}
	if !byMarker["CB"].DoT || byMarker["PD"].DoT {
		t.Error("DoT ground truth wrong (following Table 2, not §2 text)")
	}
}

func TestDiffDetectsMismatch(t *testing.T) {
	want := ExpectedTable2(DefaultProviders())
	got := ExpectedTable2(DefaultProviders())
	got[0].JSON = !got[0].JSON
	got[2].DoT = !got[2].DoT
	diffs := Diff(want, got)
	if len(diffs) != 2 {
		t.Errorf("diffs = %v", diffs)
	}
	if len(Diff(want, want)) != 0 {
		t.Error("self-diff non-empty")
	}
	if len(Diff(want[:3], got)) == 0 {
		t.Error("length mismatch undetected")
	}
}

package landscape

import (
	"crypto/tls"
	"fmt"
	"strings"

	"dohcost/internal/tlsx"
)

// RenderTable1 prints the provider/endpoint listing in the paper's Table 1
// layout.
func RenderTable1(providers []Provider) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-48s %s\n", "Provider", "DoH URL", "MK")
	fmt.Fprintln(&sb, strings.Repeat("-", 70))
	for _, p := range providers {
		first := true
		seen := map[string]bool{}
		for _, s := range p.Services {
			name := ""
			if first {
				name = p.Name
			}
			mk := s.Marker
			if seen[mk] {
				mk = ""
			}
			seen[s.Marker] = true
			fmt.Fprintf(&sb, "%-14s %-48s %s\n", name, s.URL, mk)
			first = false
		}
	}
	return sb.String()
}

func mark(b bool) string {
	if b {
		return "Y"
	}
	return "-"
}

// RenderTable2 prints the probed feature matrix in the paper's Table 2
// layout: one column per service marker, one row per feature.
func RenderTable2(cols []Features) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-13s", "Feature")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %3s", c.Marker)
	}
	sb.WriteByte('\n')
	fmt.Fprintln(&sb, strings.Repeat("-", 13+4*len(cols)))

	row := func(label string, get func(Features) bool) {
		fmt.Fprintf(&sb, "%-13s", label)
		for _, c := range cols {
			fmt.Fprintf(&sb, " %3s", mark(get(c)))
		}
		sb.WriteByte('\n')
	}
	row("dns-message", func(f Features) bool { return f.Wire })
	row("dns-json", func(f Features) bool { return f.JSON })
	for _, v := range tlsx.Versions {
		v := v
		row(tlsx.VersionName(v), func(f Features) bool { return f.TLS[v] })
	}
	row("CT", func(f Features) bool { return f.CT })
	row("DNS CAA", func(f Features) bool { return f.CAA })
	row("OCSP MS", func(f Features) bool { return f.OCSP })
	row("QUIC", func(f Features) bool { return f.QUIC })
	row("DNS-over-TLS", func(f Features) bool { return f.DoT })

	fmt.Fprintf(&sb, "%-13s", "Traf. Steer.")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %3s", c.Steering)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// ExpectedTable2 returns the ground-truth feature matrix straight from the
// provider profiles, bypassing the network. Comparing it against ProbeAll's
// output validates the prober end to end.
func ExpectedTable2(providers []Provider) []Features {
	var out []Features
	seen := map[string]bool{}
	for pi := range providers {
		p := &providers[pi]
		for _, svc := range p.Services {
			if seen[svc.Marker] {
				continue
			}
			seen[svc.Marker] = true
			f := Features{
				Marker:   svc.Marker,
				URL:      svc.URL,
				Wire:     svc.Wire,
				JSON:     svc.JSON,
				TLS:      map[uint16]bool{},
				CT:       p.CT,
				CAA:      p.CAA,
				OCSP:     p.OCSPMustStaple,
				QUIC:     p.QUIC,
				DoT:      p.DoT,
				Steering: p.Steering,
			}
			for _, v := range tlsx.Versions {
				f.TLS[v] = v >= p.TLSMin && v <= p.TLSMax
			}
			out = append(out, f)
		}
	}
	return out
}

// Diff compares two feature matrices and describes mismatches; empty means
// identical.
func Diff(want, got []Features) []string {
	var diffs []string
	if len(want) != len(got) {
		return []string{fmt.Sprintf("column count: want %d, got %d", len(want), len(got))}
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Marker != g.Marker {
			diffs = append(diffs, fmt.Sprintf("col %d: marker %s vs %s", i, w.Marker, g.Marker))
			continue
		}
		check := func(field string, a, b bool) {
			if a != b {
				diffs = append(diffs, fmt.Sprintf("%s %s: want %v, got %v", w.Marker, field, a, b))
			}
		}
		check("dns-message", w.Wire, g.Wire)
		check("dns-json", w.JSON, g.JSON)
		for _, v := range []uint16{tls.VersionTLS10, tls.VersionTLS11, tls.VersionTLS12, tls.VersionTLS13} {
			check(tlsx.VersionName(v), w.TLS[v], g.TLS[v])
		}
		check("CT", w.CT, g.CT)
		check("CAA", w.CAA, g.CAA)
		check("OCSP", w.OCSP, g.OCSP)
		check("QUIC", w.QUIC, g.QUIC)
		check("DoT", w.DoT, g.DoT)
		if w.Steering != g.Steering {
			diffs = append(diffs, fmt.Sprintf("%s steering: want %v, got %v", w.Marker, w.Steering, g.Steering))
		}
	}
	return diffs
}

// Package landscape reproduces the paper's survey of the public DoH
// ecosystem (Tables 1 and 2). The nine providers the paper assessed are
// modelled as profiles — URL paths, content types, TLS version ranges,
// certificate properties, DoT support, QUIC advertisement, traffic
// steering — deployed as real server stacks on the simulated network, and a
// Prober rediscovers their feature matrix the way the authors did: by
// talking to them.
package landscape

import (
	"crypto/tls"

	"dohcost/internal/dnsserver"
	"dohcost/internal/tlsx"
)

// Steering is the traffic-steering mechanism of Table 2's last row.
type Steering int

// Steering mechanisms.
const (
	SteeringDNSLB   Steering = iota // DNS load balancing (DL)
	SteeringAnycast                 // anycast (AC)
	SteeringUnicast                 // unicast (UC)
)

// String renders the Table 2 marker.
func (s Steering) String() string {
	switch s {
	case SteeringDNSLB:
		return "DL"
	case SteeringAnycast:
		return "AC"
	case SteeringUnicast:
		return "UC"
	}
	return "??"
}

// Service is one probeable DoH service: a URL (host + path) with its
// supported content types. Table 2's columns are services, not providers —
// Google's /resolve and /dns-query behave differently.
type Service struct {
	Marker string // column identifier, e.g. "G1"
	URL    string // full URL as Table 1 prints it
	Host   string // simulated host
	Path   string
	Wire   bool // application/dns-message
	JSON   bool // application/dns-json
}

// Provider is one operator from Table 1.
type Provider struct {
	Name     string
	Host     string // primary host; also the TLS server name
	Services []Service

	// TLS configuration across the provider's deployment.
	TLSMin uint16
	TLSMax uint16
	// ChainBytes is the certificate chain wire size to emulate.
	ChainBytes int
	// CT: certificates carry embedded SCTs (all providers, per the paper).
	CT bool
	// CAA: the provider publishes DNS CAA records (only Google).
	CAA bool
	// OCSPMustStaple: certificate demands stapling (nobody, per the paper).
	OCSPMustStaple bool
	// QUIC: the provider advertises HTTP/3 via Alt-Svc (Google).
	QUIC bool
	// DoT: an RFC 7858 listener runs on :853.
	DoT bool
	// Steering is how the operator routes clients (not probeable on the
	// wire; carried as registry metadata, as the paper determined it).
	Steering Steering
}

// tlsVersions expands the provider's range into explicit offers.
func (p *Provider) tlsVersions() (min, max uint16) { return p.TLSMin, p.TLSMax }

// DefaultProviders returns the nine providers of Table 1 with the feature
// ground truth of Table 2 (as verified by the authors on 10 September 2019).
//
// One note: the paper's §2 text says PowerDNS runs DoT while Table 2 marks
// it ✗ and CleanBrowsing ✓; we follow the table.
func DefaultProviders() []Provider {
	return []Provider{
		{
			Name: "Google", Host: "dns.google.com",
			Services: []Service{
				{Marker: "G1", URL: "https://dns.google.com/resolve", Host: "dns.google.com", Path: "/resolve", JSON: true},
				{Marker: "G2", URL: "https://dns.google.com/dns-query", Host: "dns.google.com", Path: "/dns-query", Wire: true},
			},
			TLSMin: tls.VersionTLS12, TLSMax: tls.VersionTLS13,
			ChainBytes: tlsx.GoogleChainBytes,
			CT:         true, CAA: true, QUIC: true, DoT: true,
			Steering: SteeringDNSLB,
		},
		{
			Name: "Cloudflare", Host: "cloudflare-dns.com",
			Services: []Service{
				{Marker: "CF", URL: "https://cloudflare-dns.com/dns-query", Host: "cloudflare-dns.com", Path: "/dns-query", Wire: true, JSON: true},
			},
			TLSMin: tls.VersionTLS10, TLSMax: tls.VersionTLS13,
			ChainBytes: tlsx.CloudflareChainBytes,
			CT:         true, DoT: true,
			Steering: SteeringAnycast,
		},
		{
			Name: "Quad9", Host: "dns.quad9.net",
			Services: []Service{
				{Marker: "Q9", URL: "https://dns.quad9.net/dns-query", Host: "dns.quad9.net", Path: "/dns-query", Wire: true, JSON: true},
			},
			TLSMin: tls.VersionTLS12, TLSMax: tls.VersionTLS13,
			ChainBytes: 2400,
			CT:         true, DoT: true,
			Steering: SteeringAnycast,
		},
		{
			Name: "CleanBrowsing", Host: "doh.cleanbrowsing.org",
			Services: []Service{
				{Marker: "CB", URL: "https://doh.cleanbrowsing.org/doh/family-filter", Host: "doh.cleanbrowsing.org", Path: "/doh/family-filter", Wire: true},
			},
			TLSMin: tls.VersionTLS12, TLSMax: tls.VersionTLS12,
			ChainBytes: 2600,
			CT:         true, DoT: true,
			Steering: SteeringAnycast,
		},
		{
			Name: "PowerDNS", Host: "doh.powerdns.org",
			Services: []Service{
				{Marker: "PD", URL: "https://doh.powerdns.org/", Host: "doh.powerdns.org", Path: "/", Wire: true},
			},
			TLSMin: tls.VersionTLS10, TLSMax: tls.VersionTLS13,
			ChainBytes: 2800,
			CT:         true,
			Steering:   SteeringUnicast,
		},
		{
			Name: "Blahdns", Host: "doh-ch.blahdns.com",
			Services: []Service{
				{Marker: "BD", URL: "https://doh-ch.blahdns.com/dns-query", Host: "doh-ch.blahdns.com", Path: "/dns-query", Wire: true, JSON: true},
				{Marker: "BD", URL: "https://doh-jp.blahdns.com/dns-query", Host: "doh-jp.blahdns.com", Path: "/dns-query", Wire: true, JSON: true},
				{Marker: "BD", URL: "https://doh-de.blahdns.com/dns-query", Host: "doh-de.blahdns.com", Path: "/dns-query", Wire: true, JSON: true},
			},
			TLSMin: tls.VersionTLS12, TLSMax: tls.VersionTLS13,
			ChainBytes: 2500,
			CT:         true,
			Steering:   SteeringUnicast,
		},
		{
			Name: "SecureDNS", Host: "doh.securedns.eu",
			Services: []Service{
				{Marker: "SD", URL: "https://doh.securedns.eu/dns-query", Host: "doh.securedns.eu", Path: "/dns-query", Wire: true},
			},
			TLSMin: tls.VersionTLS10, TLSMax: tls.VersionTLS13,
			ChainBytes: 2700,
			CT:         true,
			Steering:   SteeringUnicast,
		},
		{
			Name: "Rubyfish", Host: "dns.rubyfish.cn",
			Services: []Service{
				{Marker: "RF", URL: "https://dns.rubyfish.cn/dns-query", Host: "dns.rubyfish.cn", Path: "/dns-query", Wire: true, JSON: true},
			},
			TLSMin: tls.VersionTLS10, TLSMax: tls.VersionTLS12,
			ChainBytes: 2900,
			CT:         true,
			Steering:   SteeringUnicast,
		},
		{
			Name: "Commons Host", Host: "commons.host",
			Services: []Service{
				{Marker: "CH", URL: "https://commons.host/", Host: "commons.host", Path: "/", Wire: true},
			},
			TLSMin: tls.VersionTLS12, TLSMax: tls.VersionTLS13,
			ChainBytes: 2300,
			CT:         true,
			Steering:   SteeringAnycast,
		},
	}
}

// endpoints converts the provider's services on one host into DoH endpoint
// configs.
func (p *Provider) endpoints(host string) []dnsserver.Endpoint {
	var eps []dnsserver.Endpoint
	for _, s := range p.Services {
		if s.Host != host {
			continue
		}
		eps = append(eps, dnsserver.Endpoint{Path: s.Path, Wire: s.Wire, JSON: s.JSON})
	}
	return eps
}

// hosts lists the distinct hosts the provider serves on.
func (p *Provider) hosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range p.Services {
		if !seen[s.Host] {
			seen[s.Host] = true
			out = append(out, s.Host)
		}
	}
	return out
}

// Package h1 implements the HTTP/1.1 subset the DoH cost study needs: a
// client that pipelines requests on one persistent connection — something
// net/http deliberately does not do — and a matching minimal server.
//
// RFC 7230 §6.3.2 requires a server to send pipelined responses in the
// order it received the requests. That in-order constraint is the whole
// point of including HTTP/1.1 in the study: one slow response blocks every
// response behind it (Figure 2's knock-on effect), which HTTP/2's stream
// multiplexing avoids. The server here processes requests sequentially,
// like the single-handler resolver the paper placed behind doh-proxy.
package h1

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Header is an ordered list of (name, value) pairs; names are matched
// case-insensitively.
type Header [][2]string

// Get returns the first value for name, or "".
func (h Header) Get(name string) string {
	for _, kv := range h {
		if strings.EqualFold(kv[0], name) {
			return kv[1]
		}
	}
	return ""
}

// Set appends or replaces the first field with the given name.
func (h *Header) Set(name, value string) {
	for i, kv := range *h {
		if strings.EqualFold(kv[0], name) {
			(*h)[i][1] = value
			return
		}
	}
	*h = append(*h, [2]string{name, value})
}

// Request is an HTTP/1.1 request.
type Request struct {
	Method string
	Path   string
	Host   string
	Header Header
	Body   []byte
}

// Response is a complete HTTP/1.1 response.
type Response struct {
	Status int
	Header Header
	Body   []byte
}

// Protocol errors.
var (
	ErrConnClosed  = errors.New("h1: connection closed")
	ErrMalformed   = errors.New("h1: malformed message")
	ErrBodyTooLong = errors.New("h1: body exceeds limit")
)

// maxBodyBytes bounds message bodies; DoH messages are ≤ 64 KB and the
// page-load simulator transfers object bytes analytically.
const maxBodyBytes = 8 << 20

// writeRequest serializes req with a Content-Length body.
func writeRequest(w io.Writer, req *Request) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", req.Method, req.Path)
	fmt.Fprintf(&sb, "Host: %s\r\n", req.Host)
	for _, kv := range req.Header {
		fmt.Fprintf(&sb, "%s: %s\r\n", kv[0], kv[1])
	}
	if len(req.Body) > 0 || req.Method == "POST" || req.Method == "PUT" {
		fmt.Fprintf(&sb, "Content-Length: %d\r\n", len(req.Body))
	}
	sb.WriteString("\r\n")
	buf := append([]byte(sb.String()), req.Body...)
	_, err := w.Write(buf) // one flight per message
	return err
}

// writeResponse serializes resp.
func writeResponse(w io.Writer, resp *Response) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", resp.Status, statusText(resp.Status))
	for _, kv := range resp.Header {
		fmt.Fprintf(&sb, "%s: %s\r\n", kv[0], kv[1])
	}
	fmt.Fprintf(&sb, "Content-Length: %d\r\n\r\n", len(resp.Body))
	buf := append([]byte(sb.String()), resp.Body...)
	_, err := w.Write(buf)
	return err
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 415:
		return "Unsupported Media Type"
	case 500:
		return "Internal Server Error"
	}
	return "Status"
}

// readHeaderBlock parses the start-line and header fields.
func readHeaderBlock(br *bufio.Reader) (startLine string, header Header, err error) {
	startLine, err = readLine(br)
	if err != nil {
		return "", nil, err
	}
	for {
		line, err := readLine(br)
		if err != nil {
			return "", nil, err
		}
		if line == "" {
			return startLine, header, nil
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return "", nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		header = append(header, [2]string{strings.TrimSpace(name), strings.TrimSpace(value)})
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readBody consumes the message body per Content-Length or chunked coding.
func readBody(br *bufio.Reader, header Header) ([]byte, error) {
	if strings.EqualFold(header.Get("Transfer-Encoding"), "chunked") {
		var body []byte
		for {
			line, err := readLine(br)
			if err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk size %q", ErrMalformed, line)
			}
			if n == 0 {
				_, err = readLine(br) // trailing CRLF after last chunk
				return body, err
			}
			if int64(len(body))+n > maxBodyBytes {
				return nil, ErrBodyTooLong
			}
			chunk := make([]byte, n)
			if _, err := io.ReadFull(br, chunk); err != nil {
				return nil, err
			}
			body = append(body, chunk...)
			if _, err := readLine(br); err != nil { // chunk CRLF
				return nil, err
			}
		}
	}
	cl := header.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return nil, ErrBodyTooLong
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Handler produces the response for one request.
type Handler interface {
	ServeH1(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// ServeH1 implements Handler.
func (f HandlerFunc) ServeH1(req *Request) *Response { return f(req) }

// Server is a minimal HTTP/1.1 server with keep-alive.
type Server struct {
	Handler Handler
}

// ServeConn handles one connection until close. Requests are processed
// strictly in order: combined with pipelining clients, a slow request
// delays every response queued behind it — the HTTP/1.1 head-of-line
// blocking the study measures.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		startLine, header, err := readHeaderBlock(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		parts := strings.SplitN(startLine, " ", 3)
		if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
			return fmt.Errorf("%w: request line %q", ErrMalformed, startLine)
		}
		body, err := readBody(br, header)
		if err != nil {
			return err
		}
		req := &Request{
			Method: parts[0],
			Path:   parts[1],
			Host:   header.Get("Host"),
			Header: header,
			Body:   body,
		}
		resp := s.Handler.ServeH1(req)
		if resp == nil {
			resp = &Response{Status: 500}
		}
		if err := writeResponse(conn, resp); err != nil {
			return err
		}
		if strings.EqualFold(header.Get("Connection"), "close") {
			return nil
		}
	}
}

// pending is one in-flight pipelined request.
type pending struct {
	resp *Response
	err  error
	done chan struct{}
}

// PipelineClient issues requests on one persistent connection without
// waiting for earlier responses, and matches responses to requests in FIFO
// order as HTTP/1.1 requires. Safe for concurrent use.
type PipelineClient struct {
	conn net.Conn

	writeMu sync.Mutex
	mu      sync.Mutex
	queue   []*pending
	closed  error
}

// NewPipelineClient starts the response reader on conn.
func NewPipelineClient(conn net.Conn) *PipelineClient {
	c := &PipelineClient{conn: conn}
	go c.readLoop()
	return c
}

// Close shuts the connection down, failing outstanding requests.
func (c *PipelineClient) Close() error {
	c.fail(ErrConnClosed)
	return c.conn.Close()
}

func (c *PipelineClient) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed == nil {
		c.closed = err
	}
	for _, p := range c.queue {
		p.err = c.closed
		close(p.done)
	}
	c.queue = nil
}

// Do pipelines req and blocks until its response arrives or ctx expires.
// Calls made while earlier requests are outstanding go onto the wire
// immediately — that is the pipelining.
func (c *PipelineClient) Do(ctx context.Context, req *Request) (*Response, error) {
	p := &pending{done: make(chan struct{})}

	// Enqueue and write under writeMu so queue order matches wire order.
	c.writeMu.Lock()
	c.mu.Lock()
	if c.closed != nil {
		c.mu.Unlock()
		c.writeMu.Unlock()
		return nil, c.closed
	}
	c.queue = append(c.queue, p)
	c.mu.Unlock()
	err := writeRequest(c.conn, req)
	c.writeMu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("h1: write: %w", err))
		return nil, err
	}

	select {
	case <-p.done:
		return p.resp, p.err
	case <-ctx.Done():
		// A pipelined stream cannot skip a response; the connection is
		// unusable once we abandon one.
		c.Close()
		return nil, ctx.Err()
	}
}

func (c *PipelineClient) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		startLine, header, err := readHeaderBlock(br)
		if err != nil {
			c.fail(fmt.Errorf("h1: read: %w", err))
			return
		}
		var status int
		parts := strings.SplitN(startLine, " ", 3)
		if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
			c.fail(fmt.Errorf("%w: status line %q", ErrMalformed, startLine))
			return
		}
		status, err = strconv.Atoi(parts[1])
		if err != nil {
			c.fail(fmt.Errorf("%w: status %q", ErrMalformed, parts[1]))
			return
		}
		body, err := readBody(br, header)
		if err != nil {
			c.fail(fmt.Errorf("h1: body: %w", err))
			return
		}
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			c.fail(fmt.Errorf("%w: response without request", ErrMalformed))
			return
		}
		p := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		p.resp = &Response{Status: status, Header: header, Body: body}
		close(p.done)
	}
}

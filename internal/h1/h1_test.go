package h1

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dohcost/internal/netsim"
)

func startServer(t *testing.T, h Handler) func() (net.Conn, error) {
	t.Helper()
	n := netsim.New(1)
	l, err := n.Listen("h1.test:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := &Server{Handler: h}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(c)
		}
	}()
	return func() (net.Conn, error) { return n.Dial("client", "h1.test:80") }
}

func echo(req *Request) *Response {
	return &Response{
		Status: 200,
		Header: Header{{"Content-Type", "application/dns-message"}},
		Body:   append([]byte("echo:"), req.Body...),
	}
}

func TestSimpleRoundTrip(t *testing.T) {
	dial := startServer(t, HandlerFunc(echo))
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewPipelineClient(conn)
	defer c.Close()
	resp, err := c.Do(context.Background(), &Request{
		Method: "POST", Path: "/dns-query", Host: "h1.test",
		Header: Header{{"Content-Type", "application/dns-message"}},
		Body:   []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:hello" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header.Get("content-type") != "application/dns-message" {
		t.Errorf("content-type = %q", resp.Header.Get("content-type"))
	}
}

func TestKeepAliveSequential(t *testing.T) {
	dial := startServer(t, HandlerFunc(echo))
	conn, _ := dial()
	c := NewPipelineClient(conn)
	defer c.Close()
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf("q%d", i)
		resp, err := c.Do(context.Background(), &Request{
			Method: "POST", Path: "/", Host: "h1.test", Body: []byte(body),
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(resp.Body) != "echo:"+body {
			t.Fatalf("request %d: %q", i, resp.Body)
		}
	}
}

func TestPipeliningOverlapsRequests(t *testing.T) {
	// The server stamps each response with its arrival order; pipelined
	// clients must receive responses matched FIFO even when issued from
	// many goroutines before any response returns.
	var mu sync.Mutex
	seq := 0
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		mu.Lock()
		seq++
		mu.Unlock()
		return &Response{Status: 200, Body: append([]byte("r:"), req.Body...)}
	}))
	conn, _ := dial()
	c := NewPipelineClient(conn)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("%02d", i)
			resp, err := c.Do(context.Background(), &Request{
				Method: "POST", Path: "/", Host: "h1.test", Body: []byte(body),
			})
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			if string(resp.Body) != "r:"+body {
				t.Errorf("req %d got %q", i, resp.Body)
			}
		}(i)
	}
	wg.Wait()
}

// TestHeadOfLineBlocking verifies the property Figure 2 measures: with
// pipelining, a slow request delays responses behind it.
func TestHeadOfLineBlocking(t *testing.T) {
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		if req.Path == "/slow" {
			time.Sleep(150 * time.Millisecond)
		}
		return &Response{Status: 200, Body: []byte(req.Path)}
	}))
	conn, _ := dial()
	c := NewPipelineClient(conn)
	defer c.Close()

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		c.Do(context.Background(), &Request{Method: "GET", Path: "/slow", Host: "h"})
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	resp, err := c.Do(context.Background(), &Request{Method: "GET", Path: "/fast", Host: "h"})
	if err != nil {
		t.Fatal(err)
	}
	fastTime := time.Since(start)
	if string(resp.Body) != "/fast" {
		t.Errorf("body = %q", resp.Body)
	}
	// The fast response must have been blocked behind the slow one.
	if fastTime < 100*time.Millisecond {
		t.Errorf("fast request returned in %v; expected head-of-line blocking ≥ ~140ms", fastTime)
	}
	<-slowDone
}

func TestChunkedResponseBody(t *testing.T) {
	// Hand-roll a server speaking chunked encoding to exercise the client
	// parser.
	n := netsim.New(1)
	l, _ := n.Listen("chunk.test:80")
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, _, err := readHeaderBlock(br); err != nil {
			return
		}
		io.WriteString(conn, "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"+
			"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n")
	}()
	conn, _ := n.Dial("cli", "chunk.test:80")
	c := NewPipelineClient(conn)
	defer c.Close()
	resp, err := c.Do(context.Background(), &Request{Method: "GET", Path: "/", Host: "chunk.test"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "Wikipedia" {
		t.Errorf("chunked body = %q", resp.Body)
	}
}

func TestContextCancelKillsConnection(t *testing.T) {
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		time.Sleep(5 * time.Second)
		return &Response{Status: 200}
	}))
	conn, _ := dial()
	c := NewPipelineClient(conn)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Do(ctx, &Request{Method: "GET", Path: "/", Host: "h"}); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	// Connection is dead afterwards: pipelining cannot skip responses.
	if _, err := c.Do(context.Background(), &Request{Method: "GET", Path: "/", Host: "h"}); err == nil {
		t.Fatal("request succeeded on abandoned pipeline")
	}
}

func TestConnectionCloseHeader(t *testing.T) {
	dial := startServer(t, HandlerFunc(echo))
	conn, _ := dial()
	c := NewPipelineClient(conn)
	defer c.Close()
	resp, err := c.Do(context.Background(), &Request{
		Method: "POST", Path: "/", Host: "h", Header: Header{{"Connection", "close"}}, Body: []byte("x"),
	})
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp = %v err = %v", resp, err)
	}
	// The server hangs up; the next request must fail.
	time.Sleep(20 * time.Millisecond)
	if _, err := c.Do(context.Background(), &Request{Method: "POST", Path: "/", Host: "h", Body: []byte("y")}); err == nil {
		t.Error("request succeeded after Connection: close")
	}
}

func TestMalformedResponseFailsCleanly(t *testing.T) {
	n := netsim.New(1)
	l, _ := n.Listen("bad.test:80")
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		readHeaderBlock(br)
		io.WriteString(conn, "NONSENSE GARBAGE\r\n\r\n")
	}()
	conn, _ := n.Dial("cli", "bad.test:80")
	c := NewPipelineClient(conn)
	defer c.Close()
	if _, err := c.Do(context.Background(), &Request{Method: "GET", Path: "/", Host: "bad.test"}); err == nil {
		t.Fatal("garbage response accepted")
	}
}

func TestHeaderGetSet(t *testing.T) {
	var h Header
	h.Set("Content-Type", "a")
	h.Set("content-type", "b")
	if len(h) != 1 || h.Get("CONTENT-TYPE") != "b" {
		t.Errorf("header = %v", h)
	}
	if h.Get("missing") != "" {
		t.Error("missing header non-empty")
	}
}

func TestRequestSerializationGolden(t *testing.T) {
	var buf bytes.Buffer
	writeRequest(&buf, &Request{
		Method: "POST", Path: "/dns-query", Host: "doh.test",
		Header: Header{{"Accept", "application/dns-message"}},
		Body:   []byte{0xAB, 0xCD},
	})
	got := buf.String()
	if !strings.HasPrefix(got, "POST /dns-query HTTP/1.1\r\nHost: doh.test\r\n") {
		t.Errorf("request start = %q", got[:40])
	}
	if !strings.Contains(got, "Content-Length: 2\r\n\r\n\xab\xcd") {
		t.Errorf("request body framing wrong:\n%q", got)
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("x"))
	h := Header{{"Content-Length", "999999999"}}
	if _, err := readBody(br, h); err == nil {
		t.Error("huge content-length accepted")
	}
}

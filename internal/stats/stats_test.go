package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("max = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF should return NaN")
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("Points on empty = %v", pts)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if got := c.Quantile(1); got != 3 {
		t.Errorf("CDF aliased caller slice: max = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		c := NewCDF(samples)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b) && c.At(a) >= 0 && c.At(b) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
	}
	c := NewCDF(samples)
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := c.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%.2f: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Median != 3 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "med=3.0") {
		t.Errorf("String() = %s", s)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Median) {
		t.Error("empty summary should be NaN")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	arr := PoissonArrivals(rng, 10, 10*time.Second)
	// Mean 100 events; allow wide tolerance.
	if len(arr) < 60 || len(arr) > 150 {
		t.Errorf("got %d arrivals, want ~100", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if arr[len(arr)-1] >= 10*time.Second {
		t.Error("arrival past horizon")
	}
	if got := PoissonArrivals(rng, 0, time.Second); got != nil {
		t.Error("rate 0 should produce nil")
	}
}

func TestPoissonDeterministicBySeed(t *testing.T) {
	a := PoissonArrivals(rand.New(rand.NewSource(42)), 10, time.Second)
	b := PoissonArrivals(rand.New(rand.NewSource(42)), 10, time.Second)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
}

func TestZipf(t *testing.T) {
	w := Zipf(100, 1.0)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatal("zipf weights not decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if w[0] < 5*w[99] {
		t.Errorf("head not heavy enough: w0=%v w99=%v", w[0], w[99])
	}
	if Zipf(0, 1) != nil {
		t.Error("Zipf(0) should be nil")
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[WeightedChoice(rng, w)]++
	}
	if counts[0] < 6500 || counts[0] > 7500 {
		t.Errorf("heavy weight chosen %d/10000, want ~7000", counts[0])
	}
	if counts[2] > counts[1] || counts[1] > counts[0] {
		t.Errorf("ordering violated: %v", counts)
	}
}

func TestLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var n int
	for i := 0; i < 1000; i++ {
		v := LogNormal(rng, 3, 0.5)
		if v <= 0 {
			t.Fatal("log-normal must be positive")
		}
		if v > math.Exp(3) {
			n++
		}
	}
	// Median of lognormal(mu=3) is e^3, so ~half should exceed it.
	if n < 400 || n > 600 {
		t.Errorf("%d/1000 above median, want ~500", n)
	}
}

func TestASCIICDF(t *testing.T) {
	out := ASCIICDF(map[string][]float64{
		"udp": {1, 2, 3, 4, 5},
		"doh": {10, 20, 30, 40, 50},
	}, 40, 10, "ms")
	if !strings.Contains(out, "udp") || !strings.Contains(out, "doh") || !strings.Contains(out, "ms") {
		t.Errorf("plot missing labels:\n%s", out)
	}
	if got := ASCIICDF(nil, 40, 10, "x"); !strings.Contains(got, "no data") {
		t.Errorf("empty plot = %q", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[4].X != 10 {
		t.Errorf("extremes = %v, %v", pts[0], pts[4])
	}
	if pts[4].P != 1 {
		t.Errorf("last P = %v", pts[4].P)
	}
}

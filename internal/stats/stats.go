// Package stats provides the small statistical toolkit the DoH cost study
// needs: empirical CDFs, five-number summaries for the paper's
// whisker-spans-full-range box plots, Poisson arrival processes for the
// head-of-line-blocking experiment, and deterministic RNG plumbing so every
// figure regenerates bit-identically for a given seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution function over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts samples. An empty sample set is valid; all
// queries against it return NaN.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (0 <= p <= 1) using nearest-rank
// interpolation; Quantile(0.5) is the median.
func (c *CDF) Quantile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF curve; it always includes the extremes.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / (n - 1)
		pts = append(pts, Point{X: c.sorted[idx], P: float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Point is one sample point of a rendered CDF.
type Point struct {
	X float64 // sample value
	P float64 // cumulative probability
}

// Summary is the five-number summary plus mean, matching the paper's box
// plots whose whiskers span the full range of values.
type Summary struct {
	N      int
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary over samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, P25: nan, Median: nan, P75: nan, Max: nan, Mean: nan}
	}
	c := NewCDF(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return Summary{
		N:      len(samples),
		Min:    c.Quantile(0),
		P25:    c.Quantile(0.25),
		Median: c.Quantile(0.5),
		P75:    c.Quantile(0.75),
		Max:    c.Quantile(1),
		Mean:   sum / float64(len(samples)),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p25=%.1f med=%.1f p75=%.1f max=%.1f mean=%.1f",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean)
}

// PoissonArrivals returns event offsets from zero for a Poisson process with
// the given mean rate (events/second) observed for the given duration.
// Inter-arrival gaps are exponentially distributed. The slice is sorted and
// may be empty for short durations.
func PoissonArrivals(rng *rand.Rand, rate float64, duration time.Duration) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	var arrivals []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		t += gap
		if t >= duration {
			return arrivals
		}
		arrivals = append(arrivals, t)
	}
}

// Zipf returns n weights following a Zipf distribution with exponent s,
// normalized to sum to 1. Rank 0 is the most popular.
func Zipf(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// WeightedChoice picks an index according to the given weights (which need
// not be normalized).
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// LogNormal draws from a log-normal distribution with the given parameters
// of the underlying normal.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// ASCIICDF renders a crude terminal plot of one or more CDFs sharing an x
// axis, for the cmd tools' --plot output. Series maps label → samples.
func ASCIICDF(series map[string][]float64, width, height int, xlabel string) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 15
	}
	var xmax float64
	cdfs := make(map[string]*CDF, len(series))
	labels := make([]string, 0, len(series))
	for label, samples := range series {
		c := NewCDF(samples)
		if c.Len() == 0 {
			continue
		}
		cdfs[label] = c
		labels = append(labels, label)
		if m := c.Quantile(0.99); m > xmax {
			xmax = m
		}
	}
	sort.Strings(labels)
	if xmax == 0 || len(labels) == 0 {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@%&"
	for li, label := range labels {
		c := cdfs[label]
		mark := marks[li%len(marks)]
		for col := 0; col < width; col++ {
			x := xmax * float64(col) / float64(width-1)
			p := c.At(x)
			row := height - 1 - int(p*float64(height-1))
			grid[row][col] = mark
		}
	}
	var sb strings.Builder
	for i, row := range grid {
		p := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%4.2f |%s|\n", p, row)
	}
	fmt.Fprintf(&sb, "      0%s%.0f  (%s)\n", strings.Repeat(" ", width-10), xmax, xlabel)
	for li, label := range labels {
		fmt.Fprintf(&sb, "      %c = %s\n", marks[li%len(marks)], label)
	}
	return sb.String()
}

package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files from the current run:
//
//	go test ./internal/core -run Golden -update
//
// Review the diff before committing — these files are the published
// numbers of the reproduction, and a silent shift here is exactly what
// the tests exist to catch.
var update = flag.Bool("update", false, "rewrite golden files from the current run")

// checkGolden compares got against testdata/<name>, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; if the change is intended, rerun with -update and review the diff.\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// marshalGolden renders a stable, human-diffable JSON form.
func marshalGolden(t *testing.T, v any) []byte {
	t.Helper()
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestTablesGolden pins the full landscape survey — Table 1's provider
// registry, Table 2's probed features, and the (empty) diff between them —
// against testdata/tables.golden.json. Every field is
// deterministic for a fixed seed, so the comparison is exact.
func TestTablesGolden(t *testing.T) {
	r, err := RunTables(1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tables.golden.json", marshalGolden(t, r))
}

// overheadSample is the deterministic projection of one resolution's cost.
// Wall-clock duration is excluded, and for stream scenarios so are raw
// wire bytes and packet counts: TLS handshakes embed freshly generated
// certificates whose ECDSA signature lengths vary by a few bytes between
// processes, so those totals are reproducible only across runs in one
// process. What is pinned is everything the DNS and HTTP/2 layers control:
// UDP payload costs exactly, and the HTTP/2 Body/Hdr/Mgmt byte stacks of
// Figure 5, which a change to message encoding, HPACK or framing would
// shift.
type overheadSample struct {
	Bytes   int64 `json:"bytes,omitempty"`
	Packets int64 `json:"packets,omitempty"`
	Body    int64 `json:"body,omitempty"`
	Hdr     int64 `json:"hdr,omitempty"`
	Mgmt    int64 `json:"mgmt,omitempty"`
	Setup   bool  `json:"setup,omitempty"`
}

// overheadScenarioGolden is one scenario's projected sample list.
type overheadScenarioGolden struct {
	Scenario string           `json:"scenario"`
	Samples  []overheadSample `json:"samples"`
}

// TestOverheadGolden pins the §4 overhead study's deterministic outputs
// against testdata/overhead.golden.json, so plumbing changes (impairment,
// transports, topology) cannot silently shift the published per-resolution
// costs.
func TestOverheadGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full overhead run under -short")
	}
	r, err := RunOverhead(OverheadConfig{Domains: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var golden []overheadScenarioGolden
	for _, sc := range r.Scenarios {
		g := overheadScenarioGolden{Scenario: sc.Scenario}
		for _, c := range sc.Costs {
			s := overheadSample{Setup: c.IncludesSetup}
			if len(c.UDPPayloads) > 0 {
				w := c.WireCost()
				s.Bytes, s.Packets = w.Bytes, w.Packets
			} else {
				s.Body, s.Hdr, s.Mgmt = c.H2.BodyBytes, c.H2.HdrBytes, c.H2.MgmtBytes
			}
			g.Samples = append(g.Samples, s)
		}
		golden = append(golden, g)
	}
	checkGolden(t, "overhead.golden.json", marshalGolden(t, golden))
}

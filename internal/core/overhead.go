package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/meter"
	"dohcost/internal/stats"
)

// OverheadScenarios lists Figure 3/4's x axis in paper order: UDP,
// non-persistent DoH, persistent DoH, each against the Cloudflare-like and
// Google-like deployments.
var OverheadScenarios = []string{"U/CF", "U/GO", "H/CF", "H/GO", "HP/CF", "HP/GO"}

// OverheadConfig parameterizes the §4 overhead measurements.
type OverheadConfig struct {
	// Domains is how many names from the synthetic Alexa corpus each
	// scenario resolves (the paper used the full 281k unique names; the
	// default keeps the runtime reasonable while the flag allows more).
	Domains int
	Seed    int64
	// Profile names a netsim impairment profile applied to the client's
	// access link (see TopologyConfig.Profile). Stream byte/packet costs
	// stay loss-independent (TCP retransmissions are accounted separately
	// in ConnStats), but UDP scenarios count every attempt's payload — a
	// dropped datagram's retry really does cost wire bytes — so under
	// lossy profiles the U/* columns inflate along with every scenario's
	// duration. Empty keeps the paper's ideal links.
	Profile string
}

func (c OverheadConfig) withDefaults() OverheadConfig {
	if c.Domains == 0 {
		c.Domains = 200
	}
	return c
}

// ScenarioCosts is one box of Figures 3–5: every resolution's cost under
// one scenario.
type ScenarioCosts struct {
	Scenario string
	Costs    []dnstransport.Cost
}

// Bytes extracts the Figure 3 sample set.
func (s ScenarioCosts) Bytes() []float64 {
	out := make([]float64, len(s.Costs))
	for i, c := range s.Costs {
		out[i] = float64(c.WireCost().Bytes)
	}
	return out
}

// Packets extracts the Figure 4 sample set.
func (s ScenarioCosts) Packets() []float64 {
	out := make([]float64, len(s.Costs))
	for i, c := range s.Costs {
		out[i] = float64(c.WireCost().Packets)
	}
	return out
}

// Breakdowns extracts the Figure 5 layer stacks (DoH scenarios only).
func (s ScenarioCosts) Breakdowns() []meter.Breakdown {
	out := make([]meter.Breakdown, len(s.Costs))
	for i, c := range s.Costs {
		out[i] = c.Breakdown()
	}
	return out
}

// OverheadResult covers Figures 3, 4 and 5 from one run.
type OverheadResult struct {
	Config    OverheadConfig
	Scenarios []ScenarioCosts
}

// Scenario returns one scenario's costs by name.
func (r *OverheadResult) Scenario(name string) *ScenarioCosts {
	for i := range r.Scenarios {
		if r.Scenarios[i].Scenario == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// RunOverhead measures every scenario over the same domain sample.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	cfg = cfg.withDefaults()
	corpus := alexa.Generate(alexa.Config{Pages: cfg.Domains/15 + 20, Seed: cfg.Seed})
	domains := corpus.AllDomains()
	if len(domains) > cfg.Domains {
		domains = domains[:cfg.Domains]
	}

	topo, err := NewTopology(TopologyConfig{Seed: cfg.Seed, Profile: cfg.Profile})
	if err != nil {
		return nil, err
	}
	defer topo.Close()

	res := &OverheadResult{Config: cfg}
	for _, scenario := range OverheadScenarios {
		costs, err := runOverheadScenario(topo, scenario, domains)
		if err != nil {
			return nil, fmt.Errorf("core: overhead %s: %w", scenario, err)
		}
		res.Scenarios = append(res.Scenarios, ScenarioCosts{Scenario: scenario, Costs: costs})
	}
	return res, nil
}

func runOverheadScenario(topo *Topology, scenario string, domains []string) ([]dnstransport.Cost, error) {
	host := CFHost
	if strings.HasSuffix(scenario, "/GO") {
		host = GOHost
	}
	var costs []dnstransport.Cost
	rec := dnstransport.CostFunc(func(c dnstransport.Cost) { costs = append(costs, c) })

	var resolver dnstransport.Resolver
	var err error
	switch {
	case strings.HasPrefix(scenario, "U/"):
		udp, uerr := topo.UDPResolver(ClientHost, host)
		if uerr != nil {
			return nil, uerr
		}
		udp.Recorder = rec
		resolver = udp
	case strings.HasPrefix(scenario, "HP/"):
		doh, derr := topo.DoHResolver(ClientHost, host, dnstransport.ModeH2, true)
		if derr != nil {
			return nil, derr
		}
		doh.Recorder = rec
		resolver = doh
	case strings.HasPrefix(scenario, "H/"):
		doh, derr := topo.DoHResolver(ClientHost, host, dnstransport.ModeH2, false)
		if derr != nil {
			return nil, derr
		}
		doh.Recorder = rec
		resolver = doh
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
	if err != nil {
		return nil, err
	}
	defer resolver.Close()

	for _, d := range domains {
		q := dnswire.NewQuery(0, dnswire.Name(d+"."), dnswire.TypeA)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err := resolver.Exchange(ctx, q)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", d, err)
		}
	}
	return costs, nil
}

// paperFig34 holds the medians the paper reports, for side-by-side output.
var paperFig34 = map[string]meter.WireCost{
	"U/CF":  {Bytes: 182, Packets: 2},
	"U/GO":  {Bytes: 182, Packets: 2},
	"H/CF":  {Bytes: 5737, Packets: 27},
	"H/GO":  {Bytes: 6941, Packets: 31},
	"HP/CF": {Bytes: 864, Packets: 8},
	"HP/GO": {Bytes: 1203, Packets: 11},
}

// RenderFig3Fig4 prints the per-scenario byte and packet distributions next
// to the paper's medians.
func RenderFig3Fig4(r *OverheadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figures 3 & 4 — per-resolution cost over %d domains\n\n", r.Config.Domains)
	fmt.Fprintf(&sb, "%-6s | %10s %10s %10s | %10s | %7s %7s %7s | %7s\n",
		"scen", "min B", "med B", "max B", "paper B", "min pkt", "med pkt", "max pkt", "paper")
	fmt.Fprintln(&sb, strings.Repeat("-", 100))
	for _, s := range r.Scenarios {
		b := stats.Summarize(s.Bytes())
		p := stats.Summarize(s.Packets())
		paper := paperFig34[s.Scenario]
		fmt.Fprintf(&sb, "%-6s | %10.0f %10.0f %10.0f | %10d | %7.0f %7.0f %7.0f | %7d\n",
			s.Scenario, b.Min, b.Median, b.Max, paper.Bytes, p.Min, p.Median, p.Max, paper.Packets)
	}
	return sb.String()
}

// Fig5Scenarios lists the four panels of Figure 5.
var Fig5Scenarios = []string{"H/CF", "HP/CF", "H/GO", "HP/GO"}

// RenderFig5 prints the per-layer medians (and maxima) per DoH scenario.
func RenderFig5(r *OverheadResult) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "Figure 5 — per-layer overhead per DoH resolution (median / max bytes)")
	fmt.Fprintln(&sb)
	fmt.Fprintf(&sb, "%-6s | %15s %15s %15s %15s %15s\n", "scen", "Body", "Hdr", "Mgmt", "TLS", "TCP")
	fmt.Fprintln(&sb, strings.Repeat("-", 90))
	for _, name := range Fig5Scenarios {
		s := r.Scenario(name)
		if s == nil {
			continue
		}
		var body, hdr, mgmt, tlsb, tcp []float64
		for _, bd := range s.Breakdowns() {
			body = append(body, float64(bd.Body))
			hdr = append(hdr, float64(bd.Hdr))
			mgmt = append(mgmt, float64(bd.Mgmt))
			tlsb = append(tlsb, float64(bd.TLS))
			tcp = append(tcp, float64(bd.TCP))
		}
		cell := func(v []float64) string {
			s := stats.Summarize(v)
			return fmt.Sprintf("%6.0f / %6.0f", s.Median, s.Max)
		}
		fmt.Fprintf(&sb, "%-6s | %15s %15s %15s %15s %15s\n",
			name, cell(body), cell(hdr), cell(mgmt), cell(tlsb), cell(tcp))
	}
	return sb.String()
}

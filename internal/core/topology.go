// Package core is the study itself: one runner per table and figure of
// "An Empirical Study of the Cost of DNS-over-HTTPS" (IMC '19), built on
// the substrate packages. Each runner constructs its experiment (network
// topology, resolver deployments, workload), executes it, and returns a
// result type with a renderer that prints the same rows and series the
// paper reports.
package core

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

// mustAddr parses a literal address; it panics only on programmer error.
func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// Study host names on the simulated network.
const (
	ClientHost = "client"
	LocalHost  = "local.resolver"
	CFHost     = "cloudflare-dns.com"
	GOHost     = "dns.google.com"
)

// Topology is the standard study network: a client, the university's local
// resolver next door, and two cloud resolvers with Cloudflare-like and
// Google-like certificate chains, all running the full transport stack.
type Topology struct {
	Net     *netsim.Network
	CFChain *tlsx.Chain
	GOChain *tlsx.Chain

	runs []*dnsserver.Running
}

// TopologyConfig tunes the standard topology.
type TopologyConfig struct {
	Seed int64
	// Handler answers queries at all three resolvers; defaults to the
	// fixed-address handler from the paper's controlled experiments.
	Handler dnsserver.Handler
	// LocalRTT, CFRTT, GORTT are client↔resolver round-trip times
	// (halved into per-direction link delays). Zero values use the study
	// defaults: 0.4 ms local, 6 ms Cloudflare, 9 ms Google.
	LocalRTT, CFRTT, GORTT time.Duration
	// Profile names a netsim impairment profile ("broadband", "4g", "3g",
	// "lossy-wifi", "satellite") applied to the client's access link. The
	// profile's delay/jitter/loss/reorder/MTU/bandwidth replace the ideal
	// client↔resolver links, with each resolver's base one-way delay
	// (RTT/2) layered on top so the relative resolver distances survive.
	// Empty keeps the ideal links of the paper's own testbed.
	Profile string
	// DoTOutOfOrder enables Cloudflare-style DoT reply scheduling.
	DoTOutOfOrder bool
	// HTTP1Only restricts DoH listeners to http/1.1 (Figure 2's H1 runs).
	HTTP1Only bool
	// LocalRecursion and CloudRecursion model cache-miss latency at the
	// resolvers (see dnsserver.CacheMissDelay). Zero specs answer
	// instantly, as the controlled experiments require.
	LocalRecursion RecursionSpec
	CloudRecursion RecursionSpec
	// DoHProcessing models HTTPS frontend per-request latency (zero for
	// the controlled transport experiments).
	DoHProcessing time.Duration
}

// RecursionSpec parameterizes a resolver's cache-miss behaviour.
type RecursionSpec struct {
	MissRate float64
	MissMin  time.Duration
	MissMax  time.Duration
}

func (r RecursionSpec) wrap(seed int64, h dnsserver.Handler) dnsserver.Handler {
	if r.MissRate <= 0 {
		return h
	}
	return dnsserver.CacheMissDelay(seed, r.MissRate, r.MissMin, r.MissMax, h)
}

func (c TopologyConfig) withDefaults() TopologyConfig {
	if c.Handler == nil {
		c.Handler = dnsserver.Static(netip.MustParseAddr("192.0.2.1"), 300)
	}
	if c.LocalRTT == 0 {
		c.LocalRTT = 400 * time.Microsecond
	}
	if c.CFRTT == 0 {
		c.CFRTT = 6 * time.Millisecond
	}
	if c.GORTT == 0 {
		c.GORTT = 9 * time.Millisecond
	}
	return c
}

// NewTopology builds and starts the standard network.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	cfg = cfg.withDefaults()
	n := netsim.New(cfg.Seed)
	if cfg.Profile == "" {
		n.SetLink(ClientHost, LocalHost, netsim.Link{Delay: cfg.LocalRTT / 2})
		n.SetLink(ClientHost, CFHost, netsim.Link{Delay: cfg.CFRTT / 2, Jitter: cfg.CFRTT / 12})
		n.SetLink(ClientHost, GOHost, netsim.Link{Delay: cfg.GORTT / 2, Jitter: cfg.GORTT / 12})
	} else {
		prof, ok := netsim.LookupProfile(cfg.Profile)
		if !ok {
			return nil, fmt.Errorf("core: unknown impairment profile %q (have %v)", cfg.Profile, netsim.ProfileNames())
		}
		n.ApplyProfile(ClientHost, LocalHost, prof.WithExtraDelay(cfg.LocalRTT/2))
		n.ApplyProfile(ClientHost, CFHost, prof.WithExtraDelay(cfg.CFRTT/2))
		n.ApplyProfile(ClientHost, GOHost, prof.WithExtraDelay(cfg.GORTT/2))
	}

	t := &Topology{Net: n}
	var err error
	if t.CFChain, err = tlsx.GenerateChain(tlsx.CloudflareLike(CFHost)); err != nil {
		return nil, err
	}
	if t.GOChain, err = tlsx.GenerateChain(tlsx.GoogleLike(GOHost)); err != nil {
		return nil, err
	}

	goHandler := cfg.CloudRecursion.wrap(cfg.Seed+3, cfg.Handler)
	deployments := []struct {
		host       string
		chain      *tlsx.Chain
		handler    dnsserver.Handler
		dohHandler dnsserver.Handler
	}{
		{LocalHost, nil, cfg.LocalRecursion.wrap(cfg.Seed+1, cfg.Handler), nil},
		{CFHost, t.CFChain, cfg.CloudRecursion.wrap(cfg.Seed+2, cfg.Handler), nil},
		// Google's frontends pad encrypted responses to 468-byte blocks
		// (RFC 8467) — DoH only, never classic UDP/TCP — one reason the
		// paper measures larger Google resolutions even on persistent
		// connections.
		{GOHost, t.GOChain, goHandler, dnsserver.PadResponses(468, goHandler)},
	}
	for _, d := range deployments {
		srv := &dnsserver.Server{
			Handler:       d.handler,
			DoHHandler:    d.dohHandler,
			Chain:         d.chain,
			DoTOutOfOrder: cfg.DoTOutOfOrder,
			HTTP1Only:     cfg.HTTP1Only,
			DoHProcessing: cfg.DoHProcessing,
			Endpoints:     []dnsserver.Endpoint{{Path: "/dns-query", Wire: true, JSON: true}},
		}
		run, err := srv.Start(n, d.host)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("core: starting %s: %w", d.host, err)
		}
		t.runs = append(t.runs, run)
	}
	return t, nil
}

// Close stops all resolver deployments.
func (t *Topology) Close() {
	for _, r := range t.runs {
		r.Close()
	}
	t.runs = nil
}

// chainFor returns the chain deployed at host.
func (t *Topology) chainFor(host string) *tlsx.Chain {
	switch host {
	case CFHost:
		return t.CFChain
	case GOHost:
		return t.GOChain
	}
	return nil
}

// UDPResolver opens a classic UDP client toward host from the given client
// host name, with the RFC 7766 TCP fallback for truncated responses.
func (t *Topology) UDPResolver(from, host string) (*dnstransport.UDPClient, error) {
	pc, err := t.Net.ListenPacket("")
	if err != nil {
		return nil, err
	}
	c := dnstransport.NewUDPClient(pc, netsim.Addr(host+":53"))
	c.Fallback = dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
		return t.Net.DialContext(ctx, from, host+":53")
	})
	return c, nil
}

// DoTResolver opens a DNS-over-TLS client toward host.
func (t *Topology) DoTResolver(from, host string) (*dnstransport.StreamClient, error) {
	chain := t.chainFor(host)
	if chain == nil {
		return nil, fmt.Errorf("core: no TLS deployment at %s", host)
	}
	return dnstransport.NewDoTClient(
		func(ctx context.Context) (net.Conn, error) { return t.Net.DialContext(ctx, from, host+":853") },
		chain.ClientConfig(host),
	), nil
}

// DoHResolver opens a DNS-over-HTTPS client toward host.
func (t *Topology) DoHResolver(from, host string, mode dnstransport.DoHMode, persistent bool) (*dnstransport.DoHClient, error) {
	chain := t.chainFor(host)
	if chain == nil {
		return nil, fmt.Errorf("core: no TLS deployment at %s", host)
	}
	return &dnstransport.DoHClient{
		Dial:       func(ctx context.Context) (net.Conn, error) { return t.Net.DialContext(ctx, from, host+":443") },
		TLS:        chain.ClientConfig(host),
		Mode:       mode,
		Persistent: persistent,
	}, nil
}

package core

import (
	"fmt"
	"strings"

	"dohcost/internal/alexa"
	"dohcost/internal/stats"
)

// Fig1Config parameterizes the queries-per-page survey. The paper crawls
// the Alexa top 100k; the default is scaled down and the cmd flag restores
// full size.
type Fig1Config struct {
	Pages int
	Seed  int64
}

// Fig1Result is the Figure 1 CDF plus the §4 corpus statistics.
type Fig1Result struct {
	Config        Fig1Config
	CDF           *stats.CDF
	TotalQueries  int
	UniqueDomains int
	Top15Share    float64
}

// RunFig1 generates the corpus and summarizes it.
func RunFig1(cfg Fig1Config) *Fig1Result {
	if cfg.Pages == 0 {
		cfg.Pages = 10000
	}
	w := alexa.Generate(alexa.Config{Pages: cfg.Pages, Seed: cfg.Seed})
	return &Fig1Result{
		Config:        cfg,
		CDF:           stats.NewCDF(w.QueriesPerPage()),
		TotalQueries:  w.TotalQueries,
		UniqueDomains: w.UniqueDomains,
		Top15Share:    w.TopShare(15),
	}
}

// RenderFig1 prints the CDF's anchor quantiles and the corpus statistics
// the paper reports in §1 and §4.
func RenderFig1(r *Fig1Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1 — DNS queries per page across the top %d pages\n\n", r.Config.Pages)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		fmt.Fprintf(&sb, "  p%-3.0f  %6.0f queries\n", p*100, r.CDF.Quantile(p))
	}
	fmt.Fprintf(&sb, "\n  share of pages needing >= 20 queries: %.0f%% (paper: ~50%%)\n",
		(1-r.CDF.At(19.999))*100)
	fmt.Fprintf(&sb, "  total queries: %d   unique names: %d (paper: 2,178,235 / 281,414 at 100k pages)\n",
		r.TotalQueries, r.UniqueDomains)
	fmt.Fprintf(&sb, "  top-15 domains' query share: %.1f%% (paper: ~25%%)\n", r.Top15Share*100)
	return sb.String()
}

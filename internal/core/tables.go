package core

import (
	"fmt"

	"dohcost/internal/landscape"
	"dohcost/internal/netsim"
)

// TableResult carries the landscape survey outputs: Table 1 straight from
// the provider registry, Table 2 from live probing, and any disagreement
// between the probe and the configured ground truth (there should be none —
// a non-empty diff means the prober or a server stack is wrong).
type TableResult struct {
	Providers []landscape.Provider
	Probed    []landscape.Features
	Diffs     []string
}

// RunTables deploys the Table 1 providers on a simulated network and probes
// them.
func RunTables(seed int64) (*TableResult, error) {
	n := netsim.New(seed)
	providers := landscape.DefaultProviders()
	dep, err := landscape.Deploy(n, providers)
	if err != nil {
		return nil, err
	}
	defer dep.Close()

	probed, err := landscape.NewProber(dep).ProbeAll()
	if err != nil {
		return nil, err
	}
	return &TableResult{
		Providers: providers,
		Probed:    probed,
		Diffs:     landscape.Diff(landscape.ExpectedTable2(providers), probed),
	}, nil
}

// RenderTables prints both tables and the verification verdict.
func RenderTables(r *TableResult) string {
	out := "Table 1 — compared DoH resolvers\n\n"
	out += landscape.RenderTable1(r.Providers)
	out += "\nTable 2 — probed resolver features\n\n"
	out += landscape.RenderTable2(r.Probed)
	if len(r.Diffs) == 0 {
		out += "\nprobe verification: all features match deployed ground truth\n"
	} else {
		out += fmt.Sprintf("\nprobe verification: %d mismatches!\n", len(r.Diffs))
		for _, d := range r.Diffs {
			out += "  " + d + "\n"
		}
	}
	return out
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/stats"
)

// Fig2Transports lists the transports Figure 2 compares, in the paper's
// column order.
var Fig2Transports = []string{"udp", "tls", "http1", "http2"}

// Fig2ExtendedTransports adds "tls-ooo", DoT against a server that answers
// out of order (the Cloudflare deployment style): an extension column
// showing DoT's head-of-line blocking is the deployment default, not the
// protocol's fate.
var Fig2ExtendedTransports = []string{"udp", "tls", "tls-ooo", "http1", "http2"}

// Fig2Config parameterizes the head-of-line-blocking experiment. The
// defaults are the paper's §3 setup: 100 unique names (5-char random prefix
// on a fixed base), Poisson arrivals at 10 queries/second, and a delayed
// scenario stalling one in every 25 queries by 1000 ms.
type Fig2Config struct {
	Queries    int
	Rate       float64 // queries per second
	DelayEvery int
	Delay      time.Duration
	Seed       int64
	// BaseRTT is the client↔resolver round trip; the paper ran on
	// localhost, so the default is 200 µs.
	BaseRTT time.Duration
	// Profile names a netsim impairment profile applied to the client's
	// access link (see TopologyConfig.Profile) — the knob that re-runs the
	// head-of-line experiment under the degraded regimes where loss
	// recovery, not resolver stalls, drives the knock-on effects. Empty
	// keeps the paper's ideal links.
	Profile string
	// Transports defaults to Fig2Transports.
	Transports []string
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.Queries == 0 {
		c.Queries = 100
	}
	if c.Rate == 0 {
		c.Rate = 10
	}
	if c.DelayEvery == 0 {
		c.DelayEvery = 25
	}
	if c.Delay == 0 {
		c.Delay = time.Second
	}
	if c.BaseRTT == 0 {
		c.BaseRTT = 200 * time.Microsecond
	}
	if c.Transports == nil {
		c.Transports = Fig2Transports
	}
	return c
}

// QuerySample is one point of Figure 2: when the query was sent (x axis)
// and how long its resolution took (y axis).
type QuerySample struct {
	SentAt     time.Duration
	Resolution time.Duration
	Err        bool
}

// Fig2Result holds both scenario rows of the figure.
type Fig2Result struct {
	Config   Fig2Config
	Baseline map[string][]QuerySample
	Delayed  map[string][]QuerySample
}

// RunFig2 executes the experiment: for each transport, a baseline run and a
// run with injected delays, each against a fresh resolver deployment.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig2Result{
		Config:   cfg,
		Baseline: make(map[string][]QuerySample, len(cfg.Transports)),
		Delayed:  make(map[string][]QuerySample, len(cfg.Transports)),
	}
	for _, transport := range cfg.Transports {
		for _, delayed := range []bool{false, true} {
			samples, err := runFig2Scenario(cfg, transport, delayed)
			if err != nil {
				return nil, fmt.Errorf("core: fig2 %s delayed=%v: %w", transport, delayed, err)
			}
			if delayed {
				res.Delayed[transport] = samples
			} else {
				res.Baseline[transport] = samples
			}
		}
	}
	return res, nil
}

func runFig2Scenario(cfg Fig2Config, transport string, delayed bool) ([]QuerySample, error) {
	handler := dnsserver.Handler(dnsserver.Static(fig2Addr, 300))
	if delayed {
		handler = dnsserver.DelayEvery(cfg.DelayEvery, cfg.Delay, handler)
	}
	topo, err := NewTopology(TopologyConfig{
		Seed:          cfg.Seed,
		Handler:       handler,
		LocalRTT:      cfg.BaseRTT,
		CFRTT:         cfg.BaseRTT,
		GORTT:         cfg.BaseRTT,
		Profile:       cfg.Profile,
		HTTP1Only:     transport == "http1",
		DoTOutOfOrder: transport == "tls-ooo",
	})
	if err != nil {
		return nil, err
	}
	defer topo.Close()

	var resolver dnstransport.Resolver
	switch transport {
	case "udp":
		resolver, err = topo.UDPResolver(ClientHost, LocalHost)
	case "tls", "tls-ooo":
		resolver, err = topo.DoTResolver(ClientHost, CFHost) // "tls" = in-order server, the common DoT deployment
	case "http1":
		resolver, err = topo.DoHResolver(ClientHost, CFHost, dnstransport.ModeH1, true)
	case "http2":
		resolver, err = topo.DoHResolver(ClientHost, CFHost, dnstransport.ModeH2, true)
	default:
		return nil, fmt.Errorf("unknown transport %q", transport)
	}
	if err != nil {
		return nil, err
	}
	defer resolver.Close()

	// Prime stream transports so connection setup is not the first sample
	// (the paper footnotes the first-query handshake cost separately).
	if transport != "udp" {
		warm := dnswire.NewQuery(0, "warmup.fig2.example.", dnswire.TypeA)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := resolver.Exchange(ctx, warm); err != nil {
			cancel()
			return nil, fmt.Errorf("warmup: %w", err)
		}
		cancel()
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	horizon := time.Duration(float64(cfg.Queries)/cfg.Rate*float64(time.Second)) + time.Second
	arrivals := stats.PoissonArrivals(rng, cfg.Rate, horizon)
	if len(arrivals) > cfg.Queries {
		arrivals = arrivals[:cfg.Queries]
	}

	// The paper's query names: random 5-character prefix, fixed base, so
	// every query is unique (no caching) but equally compressible.
	names := make([]dnswire.Name, len(arrivals))
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range names {
		prefix := make([]byte, 5)
		for j := range prefix {
			prefix[j] = letters[rng.Intn(len(letters))]
		}
		names[i] = dnswire.Name(string(prefix) + ".fig2.example.")
	}

	samples := make([]QuerySample, len(arrivals))
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range arrivals {
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(at)))
			q := dnswire.NewQuery(0, names[i], dnswire.TypeA)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			sent := time.Now()
			_, err := resolver.Exchange(ctx, q)
			samples[i] = QuerySample{
				SentAt:     at,
				Resolution: time.Since(sent),
				Err:        err != nil,
			}
		}(i, at)
	}
	wg.Wait()
	return samples, nil
}

var fig2Addr = mustAddr("192.0.2.2")

// KnockOnCount counts queries whose resolution exceeded threshold — the
// figure's visual signature of head-of-line blocking. With four injected
// delays, UDP and HTTP/2 should show ≈4 slow queries while TLS and HTTP/1.1
// show many more (each delay stalls the queue behind it).
func KnockOnCount(samples []QuerySample, threshold time.Duration) int {
	n := 0
	for _, s := range samples {
		if !s.Err && s.Resolution >= threshold {
			n++
		}
	}
	return n
}

// RenderFig2 prints per-transport resolution-time summaries for both
// scenario rows plus the knock-on counts.
func RenderFig2(r *Fig2Result) string {
	var sb strings.Builder
	threshold := r.Config.Delay / 2
	fmt.Fprintf(&sb, "Figure 2 — resolution times under Poisson arrivals (%.0f qps, %d queries)\n",
		r.Config.Rate, r.Config.Queries)
	fmt.Fprintf(&sb, "delayed scenario: 1 in %d queries stalled %v at the resolver\n\n",
		r.Config.DelayEvery, r.Config.Delay)
	fmt.Fprintf(&sb, "%-8s %-10s %10s %10s %10s %10s %8s\n",
		"scenario", "transport", "median", "p90", "p99", "max", ">50%dly")
	for _, scenario := range []struct {
		label string
		data  map[string][]QuerySample
	}{{"baseline", r.Baseline}, {"delayed", r.Delayed}} {
		keys := make([]string, 0, len(scenario.data))
		for k := range scenario.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, transport := range keys {
			samples := scenario.data[transport]
			ms := make([]float64, 0, len(samples))
			for _, s := range samples {
				if !s.Err {
					ms = append(ms, float64(s.Resolution)/float64(time.Millisecond))
				}
			}
			cdf := stats.NewCDF(ms)
			fmt.Fprintf(&sb, "%-8s %-10s %9.2fms %9.2fms %9.2fms %9.2fms %8d\n",
				scenario.label, transport,
				cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Quantile(1),
				KnockOnCount(samples, threshold))
		}
	}
	return sb.String()
}

package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/dnstransport"
	"dohcost/internal/stats"
	"dohcost/internal/webload"
)

// Fig6Configs lists the resolver configurations of Figure 6 in legend
// order: legacy UDP against the local, Cloudflare and Google resolvers, and
// DoH against the two cloud providers.
var Fig6Configs = []string{"U/LO", "U/CF", "U/GO", "H/CF", "H/GO"}

// Fig6Config parameterizes the page-load study. Paper defaults: top-1k
// pages, three loads each, cold caches.
type Fig6Config struct {
	Pages   int
	Loads   int
	Seed    int64
	Workers int
	// PlanetLab selects how many simulated PlanetLab vantage points to
	// run the reduced experiment from (0 disables; the paper had 39).
	PlanetLab int
	// PagesPerNode bounds the PlanetLab panel's per-node page sample.
	PagesPerNode int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Pages == 0 {
		c.Pages = 200
	}
	if c.Loads == 0 {
		c.Loads = 3
	}
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.PagesPerNode == 0 {
		c.PagesPerNode = 10
	}
	return c
}

// Fig6Series is one CDF line: cumulative DNS times and onload times in
// milliseconds, one sample per page load.
type Fig6Series struct {
	Config string
	DNSms  []float64
	Loadms []float64
}

// Fig6Result carries the local panels and, when enabled, the PlanetLab
// panels.
type Fig6Result struct {
	Config    Fig6Config
	Local     []Fig6Series
	PlanetLab []Fig6Series
}

// RunFig6 executes the page-load study.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	corpus := alexa.Generate(alexa.Config{Pages: cfg.Pages, Seed: cfg.Seed})

	res := &Fig6Result{Config: cfg}
	for _, rc := range Fig6Configs {
		series, err := runFig6Series(cfg, rc, corpus.Pages, webload.VantageLocal(), 1.0)
		if err != nil {
			return nil, fmt.Errorf("core: fig6 %s: %w", rc, err)
		}
		res.Local = append(res.Local, *series)
	}

	for node := 0; node < cfg.PlanetLab; node++ {
		pages := corpus.Pages
		if len(pages) > cfg.PagesPerNode {
			pages = pages[node*cfg.PagesPerNode%len(pages):]
			if len(pages) > cfg.PagesPerNode {
				pages = pages[:cfg.PagesPerNode]
			}
		}
		// Resolver paths from PlanetLab are several times longer and more
		// variable than from the university network.
		rttScale := 4.0 + float64(node%7)
		for ci, rc := range Fig6Configs {
			series, err := runFig6Series(cfg, rc, pages, webload.VantagePlanetLab(node), rttScale)
			if err != nil {
				return nil, fmt.Errorf("core: fig6 planetlab %d %s: %w", node, rc, err)
			}
			if node == 0 {
				res.PlanetLab = append(res.PlanetLab, Fig6Series{Config: rc})
			}
			res.PlanetLab[ci].DNSms = append(res.PlanetLab[ci].DNSms, series.DNSms...)
			res.PlanetLab[ci].Loadms = append(res.PlanetLab[ci].Loadms, series.Loadms...)
		}
	}
	return res, nil
}

func runFig6Series(cfg Fig6Config, rc string, pages []alexa.Page, vantage webload.Vantage, rttScale float64) (*Fig6Series, error) {
	topo, err := NewTopology(TopologyConfig{
		Seed:     cfg.Seed,
		LocalRTT: time.Duration(float64(400*time.Microsecond) * rttScale),
		CFRTT:    time.Duration(float64(6*time.Millisecond) * rttScale),
		GORTT:    time.Duration(float64(9*time.Millisecond) * rttScale),
		// The local resolver recurses its own cache misses; the cloud
		// resolvers' shared caches are hot. This asymmetry is what makes
		// the paper's cloud UDP resolution *faster* than the local
		// resolver despite the longer path.
		LocalRecursion: RecursionSpec{MissRate: 0.35, MissMin: 8 * time.Millisecond, MissMax: 45 * time.Millisecond},
		CloudRecursion: RecursionSpec{MissRate: 0.05, MissMin: 4 * time.Millisecond, MissMax: 20 * time.Millisecond},
		DoHProcessing:  2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer topo.Close()

	newResolver := func() (dnstransport.Resolver, error) {
		switch rc {
		case "U/LO":
			return topo.UDPResolver(ClientHost, LocalHost)
		case "U/CF":
			return topo.UDPResolver(ClientHost, CFHost)
		case "U/GO":
			return topo.UDPResolver(ClientHost, GOHost)
		case "H/CF":
			return topo.DoHResolver(ClientHost, CFHost, dnstransport.ModeH2, true)
		case "H/GO":
			return topo.DoHResolver(ClientHost, GOHost, dnstransport.ModeH2, true)
		}
		return nil, fmt.Errorf("unknown config %q", rc)
	}

	type job struct{ page alexa.Page }
	jobs := make(chan job)
	series := &Fig6Series{Config: rc}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error

	workers := cfg.Workers
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker is one browser instance with its own resolver
			// connection, like one Browsertime run.
			resolver, err := newResolver()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer resolver.Close()
			browser := webload.NewBrowser(resolver, vantage)
			for j := range jobs {
				for load := 0; load < cfg.Loads; load++ {
					r, err := browser.Load(context.Background(), j.page)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					series.DNSms = append(series.DNSms, float64(r.CumulativeDNS)/float64(time.Millisecond))
					series.Loadms = append(series.Loadms, float64(r.OnLoad)/float64(time.Millisecond))
					mu.Unlock()
				}
			}
		}()
	}
	for _, p := range pages {
		jobs <- job{page: p}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return series, nil
}

// RenderFig6 prints quantiles for both metrics across configurations.
func RenderFig6(r *Fig6Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6 — cumulative DNS time and page load (onload) time, %d pages x %d loads\n\n",
		r.Config.Pages, r.Config.Loads)
	render := func(title string, series []Fig6Series) {
		if len(series) == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s\n%-6s | %9s %9s %9s | %9s %9s %9s\n", title,
			"conf", "DNS p25", "DNS med", "DNS p75", "load p25", "load med", "load p75")
		fmt.Fprintln(&sb, strings.Repeat("-", 72))
		for _, s := range series {
			d := stats.NewCDF(s.DNSms)
			l := stats.NewCDF(s.Loadms)
			fmt.Fprintf(&sb, "%-6s | %8.0fms %8.0fms %8.0fms | %8.0fms %8.0fms %8.0fms\n",
				s.Config,
				d.Quantile(0.25), d.Quantile(0.5), d.Quantile(0.75),
				l.Quantile(0.25), l.Quantile(0.5), l.Quantile(0.75))
		}
		sb.WriteByte('\n')
	}
	render("local vantage", r.Local)
	render("planetlab vantage (aggregated)", r.PlanetLab)
	return sb.String()
}

// Series returns the named local series, or nil.
func (r *Fig6Result) Series(config string) *Fig6Series {
	for i := range r.Local {
		if r.Local[i].Config == config {
			return &r.Local[i]
		}
	}
	return nil
}

package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/stats"
)

func TestTopologyResolversWork(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	udp, err := topo.UDPResolver(ClientHost, LocalHost)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	dot, err := topo.DoTResolver(ClientHost, CFHost)
	if err != nil {
		t.Fatal(err)
	}
	defer dot.Close()
	doh, err := topo.DoHResolver(ClientHost, GOHost, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer doh.Close()
	for name, r := range map[string]interface {
		Exchange(context.Context, *dnswire.Message) (*dnswire.Message, error)
	}{"udp": udp, "dot": dot, "doh": doh} {
		resp, err := r.Exchange(context.Background(), dnswire.NewQuery(0, "t.example.", dnswire.TypeA))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(resp.Answers) != 1 {
			t.Errorf("%s answers = %v", name, resp.Answers)
		}
	}
	if topo.chainFor(LocalHost) != nil {
		t.Error("local resolver should have no chain")
	}
	if _, err := topo.DoTResolver(ClientHost, LocalHost); err == nil {
		t.Error("DoT against plaintext-only host succeeded")
	}
}

func TestFig1SmallRun(t *testing.T) {
	r := RunFig1(Fig1Config{Pages: 2000, Seed: 3})
	med := r.CDF.Quantile(0.5)
	if med < 14 || med > 26 {
		t.Errorf("median = %.1f", med)
	}
	out := RenderFig1(r)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "top-15") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig2ScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario run under -short")
	}
	// Scaled-down Figure 2: 30 queries at 40 qps, every 10th delayed by
	// 250 ms. The qualitative claims under test are exactly the paper's:
	// UDP and HTTP/2 see only the injected delays; DoT and pipelined
	// HTTP/1.1 see knock-on.
	cfg := Fig2Config{
		Queries: 30, Rate: 40, DelayEvery: 10, Delay: 250 * time.Millisecond,
		Seed: 7, BaseRTT: 200 * time.Microsecond,
	}
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	threshold := cfg.Delay / 2
	injected := cfg.Queries / cfg.DelayEvery // 3

	for _, tr := range Fig2Transports {
		if n := len(res.Baseline[tr]); n != cfg.Queries {
			t.Errorf("%s baseline samples = %d", tr, n)
		}
		if slow := KnockOnCount(res.Baseline[tr], threshold); slow != 0 {
			t.Errorf("%s baseline has %d slow queries", tr, slow)
		}
		for _, s := range res.Delayed[tr] {
			if s.Err {
				t.Errorf("%s delayed run had errors", tr)
				break
			}
		}
	}
	// Independent transports: slow count == injected count.
	for _, tr := range []string{"udp", "http2"} {
		if slow := KnockOnCount(res.Delayed[tr], threshold); slow != injected {
			t.Errorf("%s delayed slow queries = %d, want %d (no knock-on)", tr, slow, injected)
		}
	}
	// Serialized transports: strictly more than the injected delays.
	for _, tr := range []string{"tls", "http1"} {
		if slow := KnockOnCount(res.Delayed[tr], threshold); slow <= injected {
			t.Errorf("%s delayed slow queries = %d, want > %d (knock-on)", tr, slow, injected)
		}
	}
	out := RenderFig2(res)
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "http2") {
		t.Errorf("render:\n%s", out)
	}
}

func TestOverheadScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario run under -short")
	}
	res, err := RunOverhead(OverheadConfig{Domains: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 6 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	med := func(name string) (bytes, packets float64) {
		s := res.Scenario(name)
		if s == nil {
			t.Fatalf("missing scenario %s", name)
		}
		return stats.NewCDF(s.Bytes()).Quantile(0.5), stats.NewCDF(s.Packets()).Quantile(0.5)
	}

	ub, up := med("U/CF")
	hb, hp := med("H/CF")
	hgb, _ := med("H/GO")
	pb, pp := med("HP/CF")
	pgb, _ := med("HP/GO")

	// Paper's ordering claims (Figures 3-4):
	// UDP is tiny: ~182 B, 2 packets.
	if ub > 400 || up != 2 {
		t.Errorf("U/CF median = %.0f B / %.0f pkts, want ~182/2", ub, up)
	}
	// Non-persistent DoH costs >10x UDP in bytes (paper: >30x).
	if hb < 10*ub {
		t.Errorf("H/CF %.0f B not >> U/CF %.0f B", hb, ub)
	}
	if hp < 15 {
		t.Errorf("H/CF packets = %.0f, want tens", hp)
	}
	// Google's larger chain costs more than Cloudflare's.
	if hgb <= hb {
		t.Errorf("H/GO %.0f B not > H/CF %.0f B (certificate size effect)", hgb, hb)
	}
	// Persistence amortizes most of it away but stays above UDP.
	if pb >= hb/3 {
		t.Errorf("HP/CF %.0f B not << H/CF %.0f B", pb, hb)
	}
	if pb <= ub {
		t.Errorf("HP/CF %.0f B not > U/CF %.0f B", pb, ub)
	}
	if pp < 3 || pp > 16 {
		t.Errorf("HP/CF packets = %.0f, want ~8", pp)
	}
	if pgb <= pb {
		t.Errorf("HP/GO %.0f B not > HP/CF %.0f B", pgb, pb)
	}

	// Figure 5 invariants on the DoH breakdowns.
	for _, name := range Fig5Scenarios {
		s := res.Scenario(name)
		for i, bd := range s.Breakdowns() {
			wc := s.Costs[i].WireCost()
			if bd.Total() != wc.Bytes {
				t.Errorf("%s[%d]: breakdown total %d != wire bytes %d", name, i, bd.Total(), wc.Bytes)
			}
			if bd.Body <= 0 || bd.Mgmt < 0 || bd.TLS < 0 || bd.TCP <= 0 {
				t.Errorf("%s[%d]: nonsensical breakdown %+v", name, i, bd)
			}
		}
	}
	// Persistent connections shrink Hdr (HPACK differential) and Mgmt.
	hdrOf := func(name string) float64 {
		var v []float64
		for _, bd := range res.Scenario(name).Breakdowns() {
			v = append(v, float64(bd.Hdr))
		}
		return stats.NewCDF(v).Quantile(0.5)
	}
	tlsOf := func(name string) float64 {
		var v []float64
		for _, bd := range res.Scenario(name).Breakdowns() {
			v = append(v, float64(bd.TLS))
		}
		return stats.NewCDF(v).Quantile(0.5)
	}
	if hdrOf("HP/CF") >= hdrOf("H/CF") {
		t.Errorf("persistent Hdr %.0f not < non-persistent %.0f", hdrOf("HP/CF"), hdrOf("H/CF"))
	}
	if tlsOf("HP/CF") >= tlsOf("H/CF")/4 {
		t.Errorf("persistent TLS %.0f not << non-persistent %.0f", tlsOf("HP/CF"), tlsOf("H/CF"))
	}

	out := RenderFig3Fig4(res) + RenderFig5(res)
	for _, want := range []string{"U/CF", "HP/GO", "paper", "Body", "Mgmt"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6ScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario run under -short")
	}
	res, err := RunFig6(Fig6Config{Pages: 12, Loads: 1, Seed: 9, Workers: 6, PlanetLab: 2, PagesPerNode: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Local) != 5 {
		t.Fatalf("local series = %d", len(res.Local))
	}
	medDNS := func(cfg string) float64 {
		return stats.NewCDF(res.Series(cfg).DNSms).Quantile(0.5)
	}
	medLoad := func(cfg string) float64 {
		return stats.NewCDF(res.Series(cfg).Loadms).Quantile(0.5)
	}
	// Paper's §5 orderings:
	// DoH resolution slower than UDP to the same resolver.
	if medDNS("H/CF") <= medDNS("U/CF") {
		t.Errorf("H/CF DNS %.0fms not > U/CF %.0fms", medDNS("H/CF"), medDNS("U/CF"))
	}
	if medDNS("H/GO") <= medDNS("U/GO") {
		t.Errorf("H/GO DNS %.0fms not > U/GO %.0fms", medDNS("H/GO"), medDNS("U/GO"))
	}
	// Cloudflare faster than Google (shorter RTT in the study topology).
	if medDNS("U/CF") >= medDNS("U/GO") {
		t.Errorf("U/CF DNS %.0fms not < U/GO %.0fms", medDNS("U/CF"), medDNS("U/GO"))
	}
	// Cloud UDP beats the local resolver (hot caches beat short paths),
	// and DoH lands back in the local resolver's neighbourhood — the
	// paper's two §5 resolution-time observations.
	if medDNS("U/CF") >= medDNS("U/LO") {
		t.Errorf("U/CF DNS %.0fms not < U/LO %.0fms", medDNS("U/CF"), medDNS("U/LO"))
	}
	if ratio := medDNS("H/CF") / medDNS("U/LO"); ratio < 0.3 || ratio > 3 {
		t.Errorf("H/CF vs U/LO DNS ratio = %.2f, want comparable", ratio)
	}
	// Page load times barely move: H/CF within 35% of U/CF.
	if ratio := medLoad("H/CF") / medLoad("U/CF"); ratio > 1.35 {
		t.Errorf("onload H/CF / U/CF = %.2f, want ~1 (paper: comparable)", ratio)
	}
	// PlanetLab panels exist and are slower.
	if len(res.PlanetLab) != 5 {
		t.Fatalf("planetlab series = %d", len(res.PlanetLab))
	}
	plDNS := stats.NewCDF(res.PlanetLab[3].DNSms).Quantile(0.5) // H/CF
	if plDNS <= medDNS("H/CF") {
		t.Errorf("planetlab H/CF DNS %.0fms not > local %.0fms", plDNS, medDNS("H/CF"))
	}
	out := RenderFig6(res)
	if !strings.Contains(out, "U/LO") || !strings.Contains(out, "planetlab") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTablesEndToEnd(t *testing.T) {
	res, err := RunTables(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diffs) != 0 {
		t.Errorf("probe mismatches: %v", res.Diffs)
	}
	out := RenderTables(res)
	for _, want := range []string{"Table 1", "Table 2", "cloudflare-dns.com", "dns-json", "all features match"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig2ExtendedOutOfOrderDoT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario run under -short")
	}
	// Extension: a Cloudflare-style out-of-order DoT server behaves like
	// UDP/HTTP2 under injected delays.
	cfg := Fig2Config{
		Queries: 20, Rate: 40, DelayEvery: 10, Delay: 250 * time.Millisecond,
		Seed: 3, BaseRTT: 200 * time.Microsecond, Transports: []string{"tls-ooo"},
	}
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := cfg.Queries / cfg.DelayEvery
	if slow := KnockOnCount(res.Delayed["tls-ooo"], cfg.Delay/2); slow != injected {
		t.Errorf("tls-ooo slow queries = %d, want %d (no knock-on)", slow, injected)
	}
}

func TestTopologyImpairmentProfile(t *testing.T) {
	// Unknown profiles must fail loudly, not silently run ideal links.
	if _, err := NewTopology(TopologyConfig{Seed: 1, Profile: "5g"}); err == nil {
		t.Fatal("NewTopology accepted an unknown impairment profile")
	}
	// A valid profile builds a working topology: resolve one name over UDP
	// and check the access-link delay (profile + base RTT) is actually paid.
	topo, err := NewTopology(TopologyConfig{Seed: 1, Profile: "broadband"})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	r, err := topo.UDPResolver(ClientHost, LocalHost)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := r.Exchange(ctx, dnswire.NewQuery(0, "profiled.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	// broadband is 10ms one-way: the round trip must cost >= ~20ms where
	// the ideal local link would be ~0.4ms.
	if rtt := time.Since(start); rtt < 18*time.Millisecond {
		t.Errorf("profiled exchange took %v, want >= ~20ms of access-link delay", rtt)
	}
}

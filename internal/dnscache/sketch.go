package dnscache

// This file is the frequency half of TinyLFU admission (Einziger et al.,
// "TinyLFU: A Highly Efficient Cache Admission Policy"): a 4-bit count-min
// sketch with periodic halving, fronted by a doorkeeper bloom filter that
// absorbs the first sighting of every name. Each shard owns one sketch,
// fed under the shard lock it already holds, so the filter adds no
// synchronization and no allocation to the hit path.
//
// The estimate a sketch returns is a classic count-min upper bound on the
// true occurrence count since the last aging reset, saturated at 15 by the
// 4-bit counters, plus one if the doorkeeper has seen the key. Aging
// (reset) halves every counter and clears the doorkeeper, so across one
// reset an estimate of e can drop to no less than (e-1)/2 — floor((e-1)/2)
// from integer-halving the counters plus losing the doorkeeper bit. That
// bound, the monotonicity of add, and the determinism of the whole state
// machine for a given op sequence are pinned by FuzzSketchAdmission.

// sketchRows is the count-min row count: four independent hash rows, the
// depth at which the min estimate's error probability stops paying for
// more memory.
const sketchRows = 4

// sketchMax is the saturation ceiling of one 4-bit counter.
const sketchMax = 15

// sketch is a per-shard TinyLFU frequency filter. Not safe for concurrent
// use; callers hold the shard lock.
type sketch struct {
	// counters holds sketchRows × width 4-bit counters, two per byte; row
	// r occupies nibble indexes [r·width, (r+1)·width).
	counters []byte
	// mask is width−1 (width is a power of two).
	mask uint64
	// door is the doorkeeper bloom filter: width bits, two probes. A key's
	// first occurrence only sets its doorkeeper bits; the count-min rows
	// start counting from the second, so one-hit wonders never write the
	// counters at all.
	door []uint64
	// adds counts add calls since the last reset; at sample the sketch
	// ages itself.
	adds, sample int
	// resets counts aging resets, surfaced as the sketch_resets stat.
	resets int64
}

// newSketch sizes a sketch for roughly expected concurrently-tracked keys:
// the row width is the next power of two of 2×expected (at least 256), the
// aging sample is 8×width adds. Memory is 2×width bytes of counters plus
// width bits of doorkeeper.
func newSketch(expected int) *sketch {
	w := 256
	for w < 2*expected && w < 1<<16 {
		w <<= 1
	}
	return &sketch{
		counters: make([]byte, sketchRows*w/2),
		mask:     uint64(w - 1),
		door:     make([]uint64, w/64),
		sample:   8 * w,
	}
}

// add records one occurrence of the key hashed to h and reports whether it
// triggered an aging reset. The first occurrence after a reset lands in
// the doorkeeper; subsequent ones bump the count-min rows conservatively
// (only the rows at the current minimum move), so an estimate never
// decreases across an add.
func (s *sketch) add(h uint64) bool {
	if s.doorSeen(h) {
		s.increment(h)
	} else {
		s.doorSet(h)
	}
	s.adds++
	if s.adds >= s.sample {
		s.reset()
		return true
	}
	return false
}

// estimate returns the frequency upper bound for h since the last reset:
// the count-min row minimum plus the doorkeeper bit.
func (s *sketch) estimate(h uint64) int {
	e := s.cmsMin(h)
	if s.doorSeen(h) {
		e++
	}
	return e
}

// admit decides a TinyLFU admission duel: the candidate must strictly beat
// the victim's estimated frequency to displace it — ties keep the
// incumbent, which is what stops a stream of new names from churning an
// established working set.
func (s *sketch) admit(candidate, victim uint64) bool {
	return s.estimate(candidate) > s.estimate(victim)
}

// reset ages the sketch: every 4-bit counter is halved in place (both
// nibbles of a byte at once: (b>>1)&0x77 clears the bit each nibble
// inherits from its neighbour) and the doorkeeper is cleared, so history
// decays geometrically and the sample window restarts half-full.
func (s *sketch) reset() {
	for i, b := range s.counters {
		s.counters[i] = (b >> 1) & 0x77
	}
	for i := range s.door {
		s.door[i] = 0
	}
	s.adds /= 2
	s.resets++
}

// cmsMin is the count-min estimate: the minimum of the key's counter
// across the four rows.
func (s *sketch) cmsMin(h uint64) int {
	min := sketchMax + 1
	for r := 0; r < sketchRows; r++ {
		if c := s.counter(s.nibble(h, r)); c < min {
			min = c
		}
	}
	return min
}

// increment bumps the key's counters conservative-update style: only rows
// sitting at the current minimum move, and nothing moves once the minimum
// saturates — the variant that keeps count-min's no-underestimate
// guarantee while halving its overestimation.
func (s *sketch) increment(h uint64) {
	min := s.cmsMin(h)
	if min >= sketchMax {
		return
	}
	for r := 0; r < sketchRows; r++ {
		if i := s.nibble(h, r); s.counter(i) == min {
			s.bump(i)
		}
	}
}

// nibble maps (key hash, row) to the row's counter index. Row columns are
// derived double-hashing style from the two halves of the 64-bit hash, so
// the rows are pairwise-independent without per-row hashing.
func (s *sketch) nibble(h uint64, r int) int {
	col := (h + uint64(r+1)*(h>>32|1)) & s.mask
	return r*int(s.mask+1) + int(col)
}

// counter reads 4-bit counter i.
func (s *sketch) counter(i int) int {
	b := s.counters[i>>1]
	if i&1 == 1 {
		return int(b >> 4)
	}
	return int(b & 0x0F)
}

// bump increments 4-bit counter i (caller guarantees it is below
// saturation).
func (s *sketch) bump(i int) {
	if i&1 == 1 {
		s.counters[i>>1] += 0x10
	} else {
		s.counters[i>>1]++
	}
}

// doorProbes derives the doorkeeper's two bit positions for h.
func (s *sketch) doorProbes(h uint64) (uint64, uint64) {
	return h & s.mask, (h * 0x9E3779B97F4A7C15) & s.mask
}

// doorSeen reports whether both doorkeeper bits for h are set.
func (s *sketch) doorSeen(h uint64) bool {
	p1, p2 := s.doorProbes(h)
	return s.door[p1>>6]&(1<<(p1&63)) != 0 && s.door[p2>>6]&(1<<(p2&63)) != 0
}

// doorSet sets both doorkeeper bits for h.
func (s *sketch) doorSet(h uint64) {
	p1, p2 := s.doorProbes(h)
	s.door[p1>>6] |= 1 << (p1 & 63)
	s.door[p2>>6] |= 1 << (p2 & 63)
}

package dnscache

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
)

func TestArenaAlloc(t *testing.T) {
	a := newArena(minSlabSize)
	b1 := a.alloc(100)
	if len(b1) != 100 || cap(b1) != 100 {
		t.Errorf("block len/cap = %d/%d, want 100/100 (capacity clamp)", len(b1), cap(b1))
	}
	b2 := a.alloc(50)
	// The clamp means an append to b1 cannot run into b2's bytes.
	b1 = append(b1, 0xFF)
	if b2[0] == 0xFF {
		t.Error("append to one block scribbled on its neighbour")
	}
	if a.used != 150 {
		t.Errorf("used = %d, want 150", a.used)
	}

	// Oversize blocks get a dedicated slab, retired with the epoch.
	big := a.alloc(minSlabSize + 1)
	if len(big) != minSlabSize+1 {
		t.Fatalf("oversize block len = %d", len(big))
	}
	if len(a.done) != 1 {
		t.Errorf("dedicated slab not parked in done: %d", len(a.done))
	}

	retired := a.beginEpoch()
	if len(retired) != 2 { // dedicated slab + active slab
		t.Errorf("retired %d slabs, want 2", len(retired))
	}
	if a.used != 0 || a.off != 0 || a.cur != nil || a.done != nil {
		t.Error("beginEpoch did not reset the arena")
	}
	a.recycle(retired)
	if len(a.free) != 1 {
		t.Errorf("free list holds %d slabs, want 1 (oversize slabs are not recycled)", len(a.free))
	}

	// The next slab must come from the free list, not a fresh allocation.
	reused := a.free[0]
	blk := a.alloc(10)
	if &blk[0] != &reused[0] {
		t.Error("recycled slab not reused")
	}
}

func TestArenaFreeListBounded(t *testing.T) {
	a := newArena(minSlabSize)
	var retired [][]byte
	for i := 0; i < maxFreeSlabs+4; i++ {
		retired = append(retired, make([]byte, minSlabSize))
	}
	a.recycle(retired)
	if len(a.free) != maxFreeSlabs {
		t.Errorf("free list holds %d slabs, want %d", len(a.free), maxFreeSlabs)
	}
}

// TestArenaRotationAliasing hammers hot names through the zero-alloc wire
// path while a churn writer forces continual arena epoch rotations, under
// the race detector when enabled. It proves three properties at once:
// served bytes always match the Message path byte for byte, responses
// handed to callers never alias a slab that a later rotation recycles
// (retained responses stay intact), and rotation itself is race-free
// against concurrent readers.
func TestArenaRotationAliasing(t *testing.T) {
	now := time.Unix(9000, 0)
	up := &sizedUpstream{ttl: 300}
	c := New(up,
		withClock(func() time.Time { return now }),
		WithMemoryBudget(8<<10),
		WithShards(1),
		withArenaSlab(minSlabSize),
	)
	defer c.Close()
	ctx := context.Background()

	// Prime the hot set and record, per name, the exact bytes every future
	// wire hit must serve: the clock is frozen, so TTLs never decay and the
	// expected response is a constant.
	const hotNames = 4
	type hot struct {
		fq   dnswire.Query
		q    *dnswire.Message
		want []byte
	}
	hots := make([]*hot, hotNames)
	for i := range hots {
		name := dnswire.Name(fmt.Sprintf("hot%d.arena.example.", i))
		q := dnswire.NewQuery(uint16(0x1000+i), name, dnswire.TypeA)
		if _, err := c.Exchange(ctx, q); err != nil {
			t.Fatal(err)
		}
		fq, _ := fastParse(t, q)
		resp, _, ok := c.ServeWire(nil, &fq, nil, 0)
		if !ok {
			t.Fatalf("%s not served after priming", name)
		}
		// Cross-check against the Message path before trusting it as the
		// oracle for the concurrent phase.
		msg, err := c.Exchange(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := msg.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, want) {
			t.Fatalf("%s: wire path diverges from Message path before churn", name)
		}
		hots[i] = &hot{fq: fq, q: q, want: want}
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Readers: hammer the hot names through ServeWire, verifying every
	// response and retaining a sample of returned buffers to re-verify after
	// the churn — a response aliasing a recycled slab would be rewritten
	// under them.
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var retained [][]byte
			var retainedWant [][]byte
			dst := make([]byte, 0, 4096)
			for i := 0; !done.Load(); i++ {
				h := hots[(r+i)%hotNames]
				resp, _, ok := c.ServeWire(nil, &h.fq, dst[:0], 0)
				if !ok {
					// The churn can evict a hot entry (plain LRU, no
					// admission filter here); re-prime and move on.
					if _, err := c.Exchange(ctx, h.q); err != nil {
						fail("re-prime %s: %v", h.q.Question1().Name, err)
						return
					}
					continue
				}
				if !bytes.Equal(resp, h.want) {
					fail("reader %d: served bytes diverge for %s", r, h.q.Question1().Name)
					return
				}
				if i%256 == 0 && len(retained) < 64 {
					keep, _, ok := c.ServeWire(nil, &h.fq, nil, 0)
					if ok {
						retained = append(retained, keep)
						retainedWant = append(retainedWant, h.want)
					}
				}
			}
			for i, keep := range retained {
				if !bytes.Equal(keep, retainedWant[i]) {
					fail("reader %d: retained response %d corrupted after arena rotations", r, i)
					return
				}
			}
		}(r)
	}

	// Churn writer: a stream of unique names over a small byte budget keeps
	// evicting, piling dead bytes into the arena until rotation after
	// rotation fires.
	for i := 0; i < 4000; i++ {
		if _, err := c.Exchange(ctx, dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("churn%d.arena.example.", i)), dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if s := c.Stats(); s.ArenaEpochs == 0 {
		t.Error("churn forced no arena rotations — the test exercised nothing")
	}
	checkBudgetInvariants(t, c)
}

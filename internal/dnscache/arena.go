package dnscache

// This file is the storage half of the cache rebuild: each shard packs its
// entries' payload bytes (packed wire response + packed TTL offsets) into
// append-only slabs instead of one heap allocation per entry, so at
// production scale the garbage collector scans a handful of large []byte
// objects rather than millions of small ones. Freed entries leave dead
// bytes behind in their slab; when an epoch's dead bytes outweigh its live
// ones, the shard rotates the epoch — live entries are copied into fresh
// slabs, expired ones are dropped, and the retired slabs are recycled onto
// a bounded free list. Rotation runs under the shard lock, the same lock
// every reader copies entry bytes out under, so no response can alias a
// slab that has been recycled.

const (
	// defaultSlabSize is the arena's standard slab; budgeted shards scale
	// it down (see New) so tiny caches do not round up to 256 KiB.
	defaultSlabSize = 256 << 10
	// minSlabSize floors the scaled-down slab.
	minSlabSize = 4 << 10
	// maxFreeSlabs bounds the per-shard recycled-slab list; beyond it,
	// retired slabs go back to the GC.
	maxFreeSlabs = 8
)

// arena is a per-shard append-only block allocator. Not safe for
// concurrent use; callers hold the shard lock.
type arena struct {
	slabSize int
	// cur is the active slab, written at off; done holds this epoch's
	// filled slabs (and oversize dedicated slabs).
	cur  []byte
	off  int
	done [][]byte
	// used is the total bytes handed out this epoch, live and dead alike;
	// the rotation heuristic compares it with the shard's live payload.
	used int
	// free recycles standard-size slabs across epochs, so a steady-state
	// shard allocates no new slabs at all.
	free [][]byte
}

// newArena returns an arena cutting slabs of the given size.
func newArena(slabSize int) *arena {
	if slabSize < minSlabSize {
		slabSize = minSlabSize
	}
	return &arena{slabSize: slabSize}
}

// alloc returns an n-byte block inside the current epoch. Blocks larger
// than a slab get a dedicated slab (retired with the epoch like any
// other). The block is capacity-clamped so an append by the caller cannot
// cross into a neighbouring entry's bytes.
func (a *arena) alloc(n int) []byte {
	a.used += n
	if n > a.slabSize {
		b := make([]byte, n)
		a.done = append(a.done, b)
		return b
	}
	if len(a.cur)-a.off < n {
		if a.cur != nil {
			a.done = append(a.done, a.cur)
		}
		a.cur = a.newSlab()
		a.off = 0
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// newSlab takes a recycled slab if one is free, else cuts a fresh one.
func (a *arena) newSlab() []byte {
	if k := len(a.free); k > 0 {
		s := a.free[k-1]
		a.free = a.free[:k-1]
		return s
	}
	return make([]byte, a.slabSize)
}

// beginEpoch starts a fresh epoch and returns the retired slabs. The
// retired slabs still hold the previous epoch's bytes: the caller migrates
// live entries (alloc draws only from the free list and fresh memory,
// never from the return value) and then hands the retirees to recycle.
func (a *arena) beginEpoch() [][]byte {
	retired := a.done
	if a.cur != nil {
		retired = append(retired, a.cur)
	}
	a.cur, a.off, a.done, a.used = nil, 0, nil, 0
	return retired
}

// recycle returns retired standard-size slabs to the free list, up to
// maxFreeSlabs; oversize dedicated slabs and any overflow are dropped for
// the GC to reclaim.
func (a *arena) recycle(retired [][]byte) {
	for _, s := range retired {
		if len(s) == a.slabSize && len(a.free) < maxFreeSlabs {
			a.free = append(a.free, s)
		}
	}
}

package dnscache

import "testing"

func sketchHash(k int) uint64 {
	return (uint64(k) + 1) * 0x9E3779B97F4A7C15
}

func TestSketchDoorkeeperAbsorbsFirstSighting(t *testing.T) {
	s := newSketch(16)
	h := sketchHash(1)
	if got := s.estimate(h); got != 0 {
		t.Fatalf("fresh key estimate = %d, want 0", got)
	}
	s.add(h)
	if got := s.estimate(h); got != 1 {
		t.Errorf("after one add estimate = %d, want 1", got)
	}
	if got := s.cmsMin(h); got != 0 {
		t.Errorf("first sighting wrote the count-min rows: cmsMin = %d, want 0 (doorkeeper should absorb it)", got)
	}
	s.add(h)
	if got := s.estimate(h); got != 2 {
		t.Errorf("after two adds estimate = %d, want 2", got)
	}
	if got := s.cmsMin(h); got != 1 {
		t.Errorf("second sighting cmsMin = %d, want 1", got)
	}
}

func TestSketchSaturates(t *testing.T) {
	s := newSketch(16)
	h := sketchHash(2)
	for i := 0; i < 100; i++ {
		s.add(h)
	}
	if got := s.estimate(h); got != sketchMax+1 {
		t.Errorf("saturated estimate = %d, want %d", got, sketchMax+1)
	}
}

func TestSketchResetHalves(t *testing.T) {
	s := newSketch(16)
	h := sketchHash(3)
	for i := 0; i < 10; i++ {
		s.add(h)
	}
	if got := s.estimate(h); got != 10 { // doorkeeper 1 + cms 9
		t.Fatalf("estimate = %d, want 10", got)
	}
	s.reset()
	// Counters halve (9 -> 4) and the doorkeeper bit is lost: exactly the
	// documented floor((e-1)/2) worst case.
	if got := s.estimate(h); got != 4 {
		t.Errorf("post-reset estimate = %d, want 4", got)
	}
	if s.resets != 1 {
		t.Errorf("resets = %d, want 1", s.resets)
	}
}

func TestSketchAdmitTiesKeepIncumbent(t *testing.T) {
	s := newSketch(16)
	cand, vict := sketchHash(4), sketchHash(5)
	for i := 0; i < 3; i++ {
		s.add(cand)
		s.add(vict)
	}
	if s.admit(cand, vict) || s.admit(vict, cand) {
		t.Error("tie admitted a challenger")
	}
	s.add(cand)
	if !s.admit(cand, vict) {
		t.Error("strictly hotter candidate refused")
	}
	if s.admit(vict, cand) {
		t.Error("strictly colder candidate admitted")
	}
}

func TestSketchSampleTriggersAging(t *testing.T) {
	s := newSketch(1) // width 256, sample window 2048 adds
	fired := 0
	for i := 0; i < s.sample; i++ {
		if s.add(sketchHash(i)) {
			fired++
		}
	}
	if fired != 1 || s.resets != 1 {
		t.Errorf("fired=%d resets=%d after one full sample window, want 1/1", fired, s.resets)
	}
	if s.adds != s.sample/2 {
		t.Errorf("adds = %d after aging, want %d (window restarts half-full)", s.adds, s.sample/2)
	}
}

// FuzzSketchAdmission pins the three properties the admission filter's
// correctness rests on, against arbitrary op sequences over eight keys:
//
//  1. No underestimation: estimate(k) never drops below a shadow lower
//     bound — adds raise it by one (saturating at 16), and one aging reset
//     lowers it to no less than floor((lb-1)/2).
//  2. Monotonicity: an add that does not trigger aging never decreases any
//     key's estimate.
//  3. Determinism: two sketches fed the identical op sequence agree on
//     every estimate and every admission duel at every step.
//
// Op encoding: low 3 bits pick the key; bit 7 forces an aging reset
// (otherwise the op is an add). Aging also fires naturally when the sample
// window fills.
func FuzzSketchAdmission(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 0x80, 0, 0, 0x80, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0x81})
	f.Add([]byte{7, 3, 7, 3, 7, 0x80, 7, 3, 0x80, 0x80, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s1, s2 := newSketch(8), newSketch(8)
		var hs [8]uint64
		for k := range hs {
			hs[k] = sketchHash(k)
		}
		lb := [8]int{}
		ageAll := func() {
			for k := range lb {
				if lb[k] = (lb[k] - 1) / 2; lb[k] < 0 {
					lb[k] = 0
				}
			}
		}
		for i, op := range ops {
			k := int(op & 7)
			if op&0x80 != 0 {
				s1.reset()
				s2.reset()
				ageAll()
			} else {
				before := s1.estimate(hs[k])
				fired := s1.add(hs[k])
				if fired2 := s2.add(hs[k]); fired2 != fired {
					t.Fatalf("op %d: aging diverged between identical sketches", i)
				}
				if lb[k] = lb[k] + 1; lb[k] > sketchMax+1 {
					lb[k] = sketchMax + 1
				}
				if fired {
					ageAll()
				} else if after := s1.estimate(hs[k]); after < before {
					t.Fatalf("op %d: add decreased estimate of key %d: %d -> %d", i, k, before, after)
				}
			}
			for j, h := range hs {
				e1, e2 := s1.estimate(h), s2.estimate(h)
				if e1 != e2 {
					t.Fatalf("op %d: estimates diverged for key %d: %d vs %d", i, j, e1, e2)
				}
				if e1 < lb[j] {
					t.Fatalf("op %d: key %d underestimated: estimate %d < lower bound %d", i, j, e1, lb[j])
				}
			}
			for a := 0; a < len(hs); a++ {
				for b := 0; b < len(hs); b++ {
					if s1.admit(hs[a], hs[b]) != s2.admit(hs[a], hs[b]) {
						t.Fatalf("op %d: admission duel %d vs %d nondeterministic", i, a, b)
					}
				}
			}
		}
	})
}
